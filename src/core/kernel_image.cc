#include "core/kernel_image.hh"

#include <cstring>

#include "sim/logging.hh"

namespace dramless
{
namespace core
{

namespace
{

constexpr std::uint32_t imageMagic = 0x444C4B49; // "IKLD"

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.insert(out.end(),
               {std::uint8_t(v), std::uint8_t(v >> 8),
                std::uint8_t(v >> 16), std::uint8_t(v >> 24)});
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    put32(out, std::uint32_t(v));
    put32(out, std::uint32_t(v >> 32));
}

std::uint32_t
get32(const std::vector<std::uint8_t> &in, std::size_t &pos)
{
    fatal_if(pos + 4 > in.size(), "kernel image truncated");
    std::uint32_t v = std::uint32_t(in[pos]) |
                      std::uint32_t(in[pos + 1]) << 8 |
                      std::uint32_t(in[pos + 2]) << 16 |
                      std::uint32_t(in[pos + 3]) << 24;
    pos += 4;
    return v;
}

std::uint64_t
get64(const std::vector<std::uint8_t> &in, std::size_t &pos)
{
    std::uint64_t lo = get32(in, pos);
    std::uint64_t hi = get32(in, pos);
    return lo | (hi << 32);
}

} // anonymous namespace

KernelImage
KernelImage::pack(std::vector<KernelSegment> segments)
{
    fatal_if(segments.empty(), "packData: no segments");
    KernelImage img;
    // Metadata header: magic, segment count, then per-segment
    // (name, load address, entry offset, payload size).
    put32(img.blob_, imageMagic);
    put32(img.blob_, std::uint32_t(segments.size()));
    for (const KernelSegment &seg : segments) {
        fatal_if(seg.name.empty(), "packData: unnamed segment");
        fatal_if(seg.name.size() > 255, "packData: name too long");
        img.blob_.push_back(std::uint8_t(seg.name.size()));
        img.blob_.insert(img.blob_.end(), seg.name.begin(),
                         seg.name.end());
        put64(img.blob_, seg.loadAddress);
        put64(img.blob_, seg.entryOffset);
        put64(img.blob_, seg.payload.size());
    }
    for (const KernelSegment &seg : segments) {
        img.blob_.insert(img.blob_.end(), seg.payload.begin(),
                         seg.payload.end());
    }
    img.segments_ = std::move(segments);
    return img;
}

KernelImage
KernelImage::unpack(const std::vector<std::uint8_t> &blob)
{
    std::size_t pos = 0;
    fatal_if(get32(blob, pos) != imageMagic,
             "unpackData: bad image magic");
    std::uint32_t count = get32(blob, pos);
    fatal_if(count == 0 || count > 4096,
             "unpackData: implausible segment count");

    std::vector<KernelSegment> segs(count);
    for (KernelSegment &seg : segs) {
        fatal_if(pos >= blob.size(), "kernel image truncated");
        std::uint8_t name_len = blob[pos++];
        fatal_if(pos + name_len > blob.size(),
                 "kernel image truncated");
        seg.name.assign(blob.begin() + std::ptrdiff_t(pos),
                        blob.begin() + std::ptrdiff_t(pos) +
                            name_len);
        pos += name_len;
        seg.loadAddress = get64(blob, pos);
        seg.entryOffset = get64(blob, pos);
        seg.payload.resize(get64(blob, pos));
    }
    for (KernelSegment &seg : segs) {
        fatal_if(pos + seg.payload.size() > blob.size(),
                 "kernel image truncated");
        std::memcpy(seg.payload.data(), blob.data() + pos,
                    seg.payload.size());
        pos += seg.payload.size();
    }

    KernelImage img;
    img.blob_ = blob;
    img.segments_ = std::move(segs);
    return img;
}

const KernelSegment &
KernelImage::segment(const std::string &name) const
{
    for (const KernelSegment &seg : segments_) {
        if (seg.name == name)
            return seg;
    }
    fatal("kernel image has no segment '%s'", name.c_str());
}

} // namespace core
} // namespace dramless
