/**
 * @file
 * Public facade of the DRAM-less accelerator.
 *
 * This is the API a downstream user programs against: construct the
 * accelerator (PRAM subsystem + FPGA controllers + eight-PE compute
 * fabric), stage data, pack and offload kernels (Figure 10's
 * packData / pushData model), and collect run metrics. Time advances
 * inside the embedded event-driven simulator; every method returns
 * when its simulated effect has completed.
 */

#ifndef DRAMLESS_CORE_DRAMLESS_ACCELERATOR_HH
#define DRAMLESS_CORE_DRAMLESS_ACCELERATOR_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "accel/accelerator.hh"
#include "core/kernel_image.hh"
#include "ctrl/pram_subsystem.hh"
#include "energy/energy_model.hh"
#include "host/pcie.hh"
#include "host/software_stack.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "workload/polybench.hh"

namespace dramless
{
namespace systems
{
class PramBackend;
} // namespace systems

namespace core
{

/** Facade construction parameters. */
struct DramLessConfig
{
    /** PEs including the server (paper platform: 8). */
    std::uint32_t numPes = 8;
    /** PRAM scheduler (Figure 13 "Final" by default). */
    ctrl::SchedulerConfig scheduler =
        ctrl::SchedulerConfig::finalConfig();
    /** Enable Start-Gap wear leveling. */
    bool wearLeveling = false;
    /** Keep functional backing stores (required for data access). */
    bool functional = true;
    /** IPC/power sampling period. */
    Tick sampleInterval = fromUs(20);
    /** Energy parameters. */
    energy::EnergyParams energy =
        energy::EnergyParams::paperDefault();
};

/** Result of one kernel offload. */
struct OffloadResult
{
    /** Simulated tick the offload was issued. */
    Tick startedAt = 0;
    /** Simulated tick the last agent completed. */
    Tick completedAt = 0;
    /** Wall-clock duration in simulated seconds. */
    double seconds = 0.0;
    /** Instructions retired by all agents. */
    std::uint64_t instructions = 0;
    /** Total-IPC samples over the run. */
    stats::TimeSeries ipc;
    /** Energy consumed by the accelerator during the offload. */
    energy::EnergyBreakdown energy;
};

/**
 * The DRAM-less accelerator. One instance owns a private simulated
 * machine; methods are synchronous over simulated time.
 */
class DramLessAccelerator
{
  public:
    explicit DramLessAccelerator(
        const DramLessConfig &config = DramLessConfig{});
    ~DramLessAccelerator();

    DramLessAccelerator(const DramLessAccelerator &) = delete;
    DramLessAccelerator &operator=(const DramLessAccelerator &) =
        delete;

    /** @return current simulated tick. */
    Tick now() const;

    /** @return usable PRAM capacity in bytes (the image region at
     *  the top of the space is reserved). */
    std::uint64_t capacity() const;

    /** @name Data movement @{ */

    /**
     * Host-initiated timed write: the host pushes @p size bytes over
     * PCIe to the server, which programs them into the PRAM at
     * @p addr. Returns once the data is durable.
     */
    void writeData(std::uint64_t addr, const void *src,
                   std::uint64_t size);

    /** Host-initiated timed read of PRAM contents. */
    void readData(std::uint64_t addr, void *dst, std::uint64_t size);

    /** Untimed staging backdoor: place a dataset in the PRAM as the
     *  paper does before each evaluation. */
    void stageData(std::uint64_t addr, const void *src,
                   std::uint64_t size);

    /** Untimed functional readback (verification). */
    void fetchData(std::uint64_t addr, void *dst,
                   std::uint64_t size) const;

    /** @} */

    /** @name Kernel offload (Figure 10) @{ */

    /**
     * Offload a packed kernel image plus per-agent execution traces.
     * The image is pushed over PCIe, downloaded into the PRAM image
     * region, agents boot through the PSC and execute; declared
     * output regions are selectively pre-erased meanwhile.
     */
    OffloadResult offload(
        const KernelImage &image,
        const std::vector<accel::TraceSource *> &traces,
        const std::vector<std::pair<std::uint64_t, std::uint64_t>>
            &output_regions = {});

    /**
     * Convenience: run one Polybench-style workload split across all
     * agents, inputs at @p input_base.
     */
    OffloadResult offload(const workload::WorkloadSpec &spec,
                          std::uint64_t input_base = 0);

    /** Read back and unpack the most recently offloaded image from
     *  PRAM (demonstrates the server's unpackData). */
    KernelImage readBackImage() const;

    /** @} */

    /**
     * Dump the machine's statistics (PRAM channels and modules,
     * MCU, per-agent PE counters) to @p os, one line per stat.
     */
    void dumpStats(std::ostream &os) const;

    /** @return the PRAM subsystem (stats, wear leveling state). */
    const ctrl::PramSubsystem &pram() const { return *pram_; }
    /** @return the compute fabric. */
    const accel::Accelerator &accelerator() const { return *accel_; }
    /** @return the configuration in force. */
    const DramLessConfig &config() const { return config_; }

  private:
    /** Run the event loop until @p done becomes true. */
    void runUntilDone(const bool &done);

    DramLessConfig config_;
    EventQueue eq_;
    std::unique_ptr<ctrl::PramSubsystem> pram_;
    std::unique_ptr<systems::PramBackend> backend_;
    std::unique_ptr<accel::Accelerator> accel_;
    std::unique_ptr<host::SoftwareStack> stack_;
    std::unique_ptr<host::PcieLink> pcie_;
    std::uint64_t imageBase_ = 0;
    std::uint64_t lastImageBytes_ = 0;
    Tick readyAt_ = 0;
};

} // namespace core
} // namespace dramless

#endif // DRAMLESS_CORE_DRAMLESS_ACCELERATOR_HH
