#include "core/dramless_accelerator.hh"

#include <algorithm>

#include "systems/backends.hh"
#include "systems/energy_accounting.hh"
#include "workload/trace_gen.hh"

namespace dramless
{
namespace core
{

namespace
{

/** PRAM reserved at the top of the space for kernel images. */
constexpr std::uint64_t imageRegionBytes = 16ull << 20;

} // anonymous namespace

DramLessAccelerator::DramLessAccelerator(const DramLessConfig &config)
    : config_(config)
{
    ctrl::SubsystemConfig pcfg;
    pcfg.scheduler = config.scheduler;
    pcfg.wearLeveling = config.wearLeveling;
    pcfg.functional = config.functional;
    pram_ = std::make_unique<ctrl::PramSubsystem>(eq_, pcfg, "pram");
    readyAt_ = pram_->initialize();

    backend_ = std::make_unique<systems::PramBackend>(*pram_);

    accel::AcceleratorConfig acfg;
    acfg.numPes = config.numPes;
    acfg.sampleInterval = config.sampleInterval;
    accel_ = std::make_unique<accel::Accelerator>(eq_, acfg, "accel");
    accel_->attachBackend(backend_.get());

    stack_ = std::make_unique<host::SoftwareStack>(
        host::StackConfig::conventional(), "host");
    pcie_ = std::make_unique<host::PcieLink>(
        eq_, host::PcieConfig{}, "pcie");

    fatal_if(pram_->capacity() <= imageRegionBytes,
             "PRAM too small for the image region");
    imageBase_ = (pram_->capacity() - imageRegionBytes) / 512 * 512;
    eq_.runUntil(readyAt_); // boot the subsystem
}

DramLessAccelerator::~DramLessAccelerator()
{
    // Drain background activity (zero-fills, trailing programs) so
    // no component is destroyed with a scheduled event.
    eq_.run();
}

Tick
DramLessAccelerator::now() const
{
    return eq_.curTick();
}

std::uint64_t
DramLessAccelerator::capacity() const
{
    return imageBase_;
}

void
DramLessAccelerator::runUntilDone(const bool &done)
{
    while (!done && eq_.step()) {
    }
    panic_if(!done, "accelerator deadlocked");
}

void
DramLessAccelerator::writeData(std::uint64_t addr, const void *src,
                               std::uint64_t size)
{
    fatal_if(addr % 32 != 0 || size % 32 != 0,
             "writeData must be 32-byte aligned");
    fatal_if(addr + size > capacity(), "writeData beyond capacity");

    // Host -> accelerator PCIe transfer, then the server programs
    // the PRAM through its memory controllers.
    stack_->dmaSetupCost();
    Tick arrived = pcie_->transfer(size, eq_.curTick());
    bool done = false;
    EventFunctionWrapper kick(
        [&] {
            auto remaining =
                std::make_shared<std::uint64_t>((size + 511) / 512);
            for (std::uint64_t off = 0; off < size; off += 512) {
                std::uint32_t chunk =
                    std::uint32_t(std::min<std::uint64_t>(512,
                                                          size - off));
                accel_->mcu().write(addr + off, chunk,
                                    [&done, remaining](Tick) {
                                        if (--*remaining == 0)
                                            done = true;
                                    });
            }
        },
        "writeData");
    eq_.schedule(&kick, arrived);
    runUntilDone(done);
    // The timed path moves pattern data; place the real bytes now.
    if (config_.functional)
        pram_->functionalWrite(addr, src, size);
}

void
DramLessAccelerator::readData(std::uint64_t addr, void *dst,
                              std::uint64_t size)
{
    fatal_if(addr % 32 != 0 || size % 32 != 0,
             "readData must be 32-byte aligned");
    fatal_if(addr + size > pram_->capacity(),
             "readData beyond capacity");
    bool done = false;
    auto remaining =
        std::make_shared<std::uint64_t>((size + 511) / 512);
    for (std::uint64_t off = 0; off < size; off += 512) {
        std::uint32_t chunk = std::uint32_t(
            std::min<std::uint64_t>(512, size - off));
        accel_->mcu().read(addr + off, chunk,
                           [&done, remaining](Tick) {
                               if (--*remaining == 0)
                                   done = true;
                           });
    }
    runUntilDone(done);
    pcie_->transfer(size, eq_.curTick());
    if (config_.functional)
        pram_->functionalRead(addr, dst, size);
}

void
DramLessAccelerator::stageData(std::uint64_t addr, const void *src,
                               std::uint64_t size)
{
    fatal_if(!config_.functional,
             "stageData requires a functional configuration");
    pram_->functionalWrite(addr, src, size);
}

void
DramLessAccelerator::fetchData(std::uint64_t addr, void *dst,
                               std::uint64_t size) const
{
    fatal_if(!config_.functional,
             "fetchData requires a functional configuration");
    pram_->functionalRead(addr, dst, size);
}

OffloadResult
DramLessAccelerator::offload(
    const KernelImage &image,
    const std::vector<accel::TraceSource *> &traces,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>
        &output_regions)
{
    fatal_if(traces.empty(), "offload without traces");
    fatal_if(image.size() == 0, "offload with an empty image");

    OffloadResult result;
    result.startedAt = eq_.curTick();

    // Snapshot per-agent activity so sequential offloads bill only
    // their own window (PSC residencies are cumulative).
    struct AgentSnap
    {
        Tick busy;
        Tick active;
    };
    std::vector<AgentSnap> snap;
    for (std::uint32_t i = 0; i < traces.size(); ++i) {
        const accel::PeStats &s = accel_->agent(i).peStats();
        snap.push_back(AgentSnap{
            (s.computeCycles + s.memAccessCycles) *
                accel_->agent(i).config().clockPeriod,
            accel_->psc().residency(i + 1,
                                    accel::PowerState::active,
                                    result.startedAt)});
    }
    Tick host_busy_before = stack_->stackStats().cpuBusyTicks;
    std::uint64_t pcie_bytes_before =
        pcie_->pcieStats().bytes;
    // PRAM op-energy snapshot (zero window: no static terms).
    energy::EnergyBreakdown pram_before =
        systems::pramEnergy(*pram_, 0, config_.energy);

    // packData produced the image; pushData ships it over PCIe.
    stack_->dmaSetupCost();
    Tick arrived = pcie_->transfer(image.size(), eq_.curTick());

    accel::KernelLaunch launch;
    launch.agentTraces = traces;
    launch.imageBytes = image.size();
    launch.imageBase = imageBase_;
    launch.outputRegions = output_regions;

    bool done = false;
    Tick end = 0;
    EventFunctionWrapper kick(
        [&] {
            accel_->launch(launch, [&](Tick t) {
                done = true;
                end = t;
            });
        },
        "offload");
    eq_.schedule(&kick, arrived);
    runUntilDone(done);

    // The timed download carried pattern bytes; make the image
    // content visible for the server's unpackData.
    if (config_.functional)
        pram_->functionalWrite(imageBase_, image.bytes().data(),
                               image.size());
    lastImageBytes_ = image.size();

    result.completedAt = end;
    result.seconds = toSec(end - result.startedAt);
    result.instructions = accel_->metrics().totalInstructions;
    result.ipc = accel_->ipcSeries();
    energy::EnergyBreakdown e;
    const energy::EnergyParams &p = config_.energy;
    Tick window = end - result.startedAt;
    for (std::uint32_t i = 0; i < traces.size(); ++i) {
        const accel::PeStats &s = accel_->agent(i).peStats();
        Tick busy = (s.computeCycles + s.memAccessCycles) *
                        accel_->agent(i).config().clockPeriod -
                    snap[i].busy;
        Tick active =
            accel_->psc().residency(i + 1,
                                    accel::PowerState::active,
                                    end) -
            snap[i].active;
        busy = std::min(busy, active);
        Tick stall = active - busy;
        Tick asleep = window > active ? window - active : 0;
        e.accelCores += energy::wattsOver(p.peActiveWatts, busy) +
                        energy::wattsOver(p.peStallWatts, stall) +
                        energy::wattsOver(p.peSleepWatts, asleep);
    }
    e.accelCores += energy::wattsOver(p.uncoreWatts, window);
    energy::EnergyBreakdown pram_after =
        systems::pramEnergy(*pram_, window, p);
    e.storageMedia +=
        pram_after.storageMedia - pram_before.storageMedia;
    e.controller += pram_after.controller - pram_before.controller;
    e.hostStack += energy::wattsOver(
        p.hostActiveWatts,
        stack_->stackStats().cpuBusyTicks - host_busy_before);
    e.pcie += energy::perByte(
        p.pciePicojoulePerByte,
        pcie_->pcieStats().bytes - pcie_bytes_before);
    result.energy = e;
    return result;
}

OffloadResult
DramLessAccelerator::offload(const workload::WorkloadSpec &spec,
                             std::uint64_t input_base)
{
    std::uint32_t agents = config_.numPes - 1;
    std::vector<std::unique_ptr<workload::PolybenchTraceSource>>
        owned;
    std::vector<accel::TraceSource *> traces;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> regions;
    for (std::uint32_t i = 0; i < agents; ++i) {
        workload::TraceGenConfig tc;
        tc.spec = spec;
        tc.inputBase = input_base;
        tc.outputBase = (input_base + spec.inputBytes + 4095) /
                        4096 * 4096;
        tc.agentIndex = i;
        tc.numAgents = agents;
        owned.push_back(
            std::make_unique<workload::PolybenchTraceSource>(tc));
        traces.push_back(owned.back().get());
        regions.push_back(owned.back()->outputRegion());
    }
    // A synthetic image: one shared segment plus one app per agent.
    std::vector<KernelSegment> segs;
    segs.push_back(KernelSegment{
        "shared", 0, 0, std::vector<std::uint8_t>(4096, 0x90)});
    for (std::uint32_t i = 0; i < agents; ++i) {
        segs.push_back(KernelSegment{
            csprintf("app%u", i), (i + 1) * 0x10000, 0,
            std::vector<std::uint8_t>(1024, std::uint8_t(i))});
    }
    return offload(KernelImage::pack(std::move(segs)), traces,
                   regions);
}

void
DramLessAccelerator::dumpStats(std::ostream &os) const
{
    os << "---------- dramless @" << toUs(eq_.curTick())
       << " us ----------\n";
    for (std::uint32_t ch = 0; ch < pram_->numChannels(); ++ch) {
        const ctrl::ChannelController &c = pram_->channel(ch);
        const ctrl::ControllerStats &s = c.ctrlStats();
        os << c.name() << ".readRequests " << s.readRequests << "\n"
           << c.name() << ".writeRequests " << s.writeRequests << "\n"
           << c.name() << ".preActivesSkipped " << s.preActivesSkipped
           << "\n"
           << c.name() << ".activatesSkipped " << s.activatesSkipped
           << "\n"
           << c.name() << ".zeroFillPrograms " << s.zeroFillPrograms
           << "\n"
           << c.name() << ".readLatencyNs.mean "
           << s.readLatencyNs.mean() << "\n"
           << c.name() << ".writeLatencyNs.mean "
           << s.writeLatencyNs.mean() << "\n";
        std::uint64_t reads = 0, programs = 0, overwrites = 0;
        for (std::uint32_t m = 0; m < c.numModules(); ++m) {
            const pram::ModuleStats &ms = c.module(m).moduleStats();
            reads += ms.numReadBursts;
            programs += ms.numPrograms;
            overwrites += ms.numOverwrites;
        }
        os << c.name() << ".modules.readBursts " << reads << "\n"
           << c.name() << ".modules.programs " << programs << "\n"
           << c.name() << ".modules.overwrites " << overwrites
           << "\n";
    }
    const accel::McuStats &m = accel_->mcu().mcuStats();
    os << "mcu.reads " << m.reads << "\n"
       << "mcu.writes " << m.writes << "\n"
       << "mcu.bytesRead " << m.bytesRead << "\n"
       << "mcu.bytesWritten " << m.bytesWritten << "\n";
    for (std::uint32_t i = 0; i < accel_->numAgents(); ++i) {
        const accel::PeStats &p = accel_->agent(i).peStats();
        const std::string &n = accel_->agent(i).name();
        os << n << ".instructions " << p.instructions << "\n"
           << n << ".l2MissReads " << p.l2MissReads << "\n"
           << n << ".loadStallUs " << toUs(p.loadStallTicks) << "\n"
           << n << ".storeStallUs " << toUs(p.storeStallTicks)
           << "\n";
    }
}

KernelImage
DramLessAccelerator::readBackImage() const
{
    fatal_if(lastImageBytes_ == 0, "no image has been offloaded");
    std::vector<std::uint8_t> blob(lastImageBytes_);
    fetchData(imageBase_, blob.data(), blob.size());
    return KernelImage::unpack(blob);
}

} // namespace core
} // namespace dramless
