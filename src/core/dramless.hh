/**
 * @file
 * Single-include public header of the DRAM-less library.
 *
 * Most users need only:
 *   - core::DramLessAccelerator — the accelerator facade
 *   - core::KernelImage — the packData/unpackData programming model
 *   - workload::Polybench — the evaluated workload suite
 *   - systems::SystemFactory — the comparison systems of the paper
 */

#ifndef DRAMLESS_CORE_DRAMLESS_HH
#define DRAMLESS_CORE_DRAMLESS_HH

#include "core/dramless_accelerator.hh"
#include "core/kernel_image.hh"
#include "runner/result_sink.hh"
#include "runner/sweep_runner.hh"
#include "runner/trace_export.hh"
#include "serve/arrival.hh"
#include "serve/fleet.hh"
#include "serve/serving_sink.hh"
#include "systems/factory.hh"
#include "workload/dnn.hh"
#include "workload/graph.hh"
#include "workload/polybench.hh"
#include "workload/trace_gen.hh"
#include "workload/workload_model.hh"

#endif // DRAMLESS_CORE_DRAMLESS_HH
