/**
 * @file
 * Kernel image packing/unpacking — the packData / unpackData halves
 * of the DRAM-less programming model (Figure 10).
 *
 * The host packs per-application code segments plus shared common
 * code and metadata describing where each segment must land in the
 * accelerator's memory; the server later extracts the metadata and
 * loads the segments to their target addresses.
 */

#ifndef DRAMLESS_CORE_KERNEL_IMAGE_HH
#define DRAMLESS_CORE_KERNEL_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dramless
{
namespace core
{

/** One code segment of a packed kernel image. */
struct KernelSegment
{
    /** Application name (e.g. "app0", or "shared"). */
    std::string name;
    /** Accelerator memory address the segment loads to. */
    std::uint64_t loadAddress = 0;
    /** Boot entry offset within the segment. */
    std::uint64_t entryOffset = 0;
    /** Segment payload (code bytes). */
    std::vector<std::uint8_t> payload;
};

/** A packed kernel image: metadata header plus segment payloads. */
class KernelImage
{
  public:
    /**
     * packData: pack @p segments (apps plus shared code) with their
     * load metadata into one downloadable image.
     */
    static KernelImage pack(std::vector<KernelSegment> segments);

    /**
     * unpackData: parse an image blob back into segments (what the
     * server does after pushData).
     * @return the reconstructed image; fatal on a corrupt blob.
     */
    static KernelImage unpack(const std::vector<std::uint8_t> &blob);

    /** @return the serialized image (what pushData transfers). */
    const std::vector<std::uint8_t> &bytes() const { return blob_; }

    /** @return total image size in bytes. */
    std::uint64_t size() const { return blob_.size(); }

    /** @return the packed segments. */
    const std::vector<KernelSegment> &segments() const
    {
        return segments_;
    }

    /** @return the segment named @p name (fatal when absent). */
    const KernelSegment &segment(const std::string &name) const;

  private:
    KernelImage() = default;

    std::vector<KernelSegment> segments_;
    std::vector<std::uint8_t> blob_;
};

} // namespace core
} // namespace dramless

#endif // DRAMLESS_CORE_KERNEL_IMAGE_HH
