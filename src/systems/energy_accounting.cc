#include "systems/energy_accounting.hh"

#include <algorithm>

namespace dramless
{
namespace systems
{

using energy::EnergyBreakdown;
using energy::EnergyParams;
using energy::perBit;
using energy::perByte;
using energy::wattsOver;

EnergyBreakdown
accelCoreEnergy(const accel::Accelerator &accel, Tick start, Tick end,
                std::uint32_t launched_agents, const EnergyParams &p)
{
    EnergyBreakdown e;
    Tick duration = end > start ? end - start : 0;
    for (std::uint32_t i = 0; i < launched_agents; ++i) {
        const accel::ProcessingElement &pe = accel.agent(i);
        const accel::PeStats &s = pe.peStats();
        Tick busy = (s.computeCycles + s.memAccessCycles) *
                    pe.config().clockPeriod;
        Tick active =
            accel.psc().residency(i + 1, accel::PowerState::active,
                                  end);
        Tick stall = active > busy ? active - busy : 0;
        busy = std::min(busy, active);
        Tick asleep = duration > active ? duration - active : 0;
        e.accelCores += wattsOver(p.peActiveWatts, busy) +
                        wattsOver(p.peStallWatts, stall) +
                        wattsOver(p.peSleepWatts, asleep);
    }
    // Server PE, MCU and crossbar stay on for the whole run.
    e.accelCores += wattsOver(p.uncoreWatts, duration);
    return e;
}

EnergyBreakdown
pramEnergy(const ctrl::PramSubsystem &pram, Tick duration,
           const EnergyParams &p)
{
    EnergyBreakdown e;
    std::uint64_t modules = 0;
    for (std::uint32_t c = 0; c < pram.numChannels(); ++c) {
        const ctrl::ChannelController &ch = pram.channel(c);
        for (std::uint32_t m = 0; m < ch.numModules(); ++m) {
            const pram::ModuleStats &s =
                ch.module(m).moduleStats();
            std::uint64_t word_bits =
                std::uint64_t(
                    ch.module(m).geometry().rowBufferBytes) * 8;
            e.storageMedia +=
                perBit(p.pramReadPicojoulePerBit, s.bytesRead * 8);
            // SET-only programs, RESET-only zero-fills, and
            // RESET+SET overwrites.
            e.storageMedia += perBit(p.pramSetPicojoulePerBit,
                                     s.numPristinePrograms *
                                         word_bits);
            e.storageMedia += perBit(p.pramResetPicojoulePerBit,
                                     s.numResetOnlyPrograms *
                                         word_bits);
            e.storageMedia +=
                perBit(p.pramSetPicojoulePerBit +
                           p.pramResetPicojoulePerBit,
                       s.numOverwrites * word_bits);
            ++modules;
        }
    }
    e.storageMedia +=
        wattsOver(p.pramIdleWattsPerModule * double(modules),
                  duration);
    e.controller += wattsOver(
        p.fpgaCtrlWattsPerChannel * double(pram.numChannels()),
        duration);
    return e;
}

EnergyBreakdown
ssdEnergy(const flash::Ssd &ssd, Tick duration,
          const EnergyParams &p)
{
    EnergyBreakdown e;
    const flash::FlashArrayStats &a = ssd.arrayStats();
    e.storageMedia +=
        a.pageReads * p.flashReadMicrojoulePerPage * 1e-6;
    e.storageMedia +=
        a.pagePrograms * p.flashProgramMicrojoulePerPage * 1e-6;
    e.storageMedia +=
        a.blockErases * p.flashEraseMicrojoulePerBlock * 1e-6;

    // Every buffer insertion/hit moves one page through the DRAM.
    const flash::DramCacheStats &c = ssd.cacheStats();
    std::uint64_t page = ssd.config().buffer.pageBytes;
    e.dram += perByte(p.dramPicojoulePerByte,
                      (c.insertions + c.hits) * page);
    double gig = double(ssd.config().buffer.capacityBytes) /
                 double(1ull << 30);
    e.dram += wattsOver(p.dramStandbyWattsPerGig * gig, duration);

    e.controller +=
        wattsOver(p.ssdControllerWatts,
                  ssd.firmware().busyTicks());
    return e;
}

EnergyBreakdown
norEnergy(const flash::NorPram &nor, const EnergyParams &p)
{
    EnergyBreakdown e;
    const flash::NorPramStats &s = nor.norStats();
    e.storageMedia +=
        p.norReadNanojoulePerByte * double(s.bytesRead) * 1e-9;
    e.storageMedia +=
        p.norWriteNanojoulePerByte * double(s.bytesWritten) * 1e-9;
    return e;
}

EnergyBreakdown
hostEnergy(const host::SoftwareStack &stack, const EnergyParams &p)
{
    EnergyBreakdown e;
    e.hostStack = wattsOver(p.hostActiveWatts,
                            stack.stackStats().cpuBusyTicks);
    return e;
}

EnergyBreakdown
pcieEnergy(const host::PcieLink &link, const EnergyParams &p)
{
    EnergyBreakdown e;
    e.pcie = perByte(p.pciePicojoulePerByte,
                     link.pcieStats().bytes);
    return e;
}

EnergyBreakdown
dramEnergy(std::uint64_t bytes_moved, std::uint64_t capacity_bytes,
           Tick duration, const EnergyParams &p)
{
    EnergyBreakdown e;
    e.dram = perByte(p.dramPicojoulePerByte, bytes_moved);
    double gig = double(capacity_bytes) / double(1ull << 30);
    e.dram += wattsOver(p.dramStandbyWattsPerGig * gig, duration);
    return e;
}

stats::TimeSeries
corePowerSeries(const accel::Accelerator &accel,
                std::uint32_t launched_agents, const EnergyParams &p)
{
    stats::TimeSeries power("corePowerW");
    double n = double(launched_agents);
    for (const stats::TimePoint &pt :
         accel.activitySeries().samples()) {
        double act = pt.value;
        double watts = n * (act * p.peActiveWatts +
                            (1.0 - act) * p.peStallWatts) +
                       p.uncoreWatts;
        power.record(pt.when, watts);
    }
    return power;
}

stats::TimeSeries
cumulativeEnergySeries(const stats::TimeSeries &core_power,
                       double total_joules, Tick start, Tick end)
{
    stats::TimeSeries cum("cumulativeEnergyJ");
    if (core_power.empty() || end <= start)
        return cum;
    // Integrate the core power, then spread the non-core remainder
    // uniformly so the final point equals the run's total energy.
    // The integration must cover the full [start, end] window: the
    // stretch from the last power sample to the run's end still burns
    // the last sampled wattage, and dropping it used to leave the
    // series short of the run total.
    double core_total = 0.0;
    {
        Tick prev = start;
        double prev_w = core_power.samples().front().value;
        for (const auto &pt : core_power.samples()) {
            core_total += prev_w * toSec(pt.when - prev);
            prev = pt.when;
            prev_w = pt.value;
        }
        if (prev < end)
            core_total += prev_w * toSec(end - prev);
    }
    double non_core = std::max(0.0, total_joules - core_total);
    double acc = 0.0;
    Tick prev = start;
    double prev_w = core_power.samples().front().value;
    for (const auto &pt : core_power.samples()) {
        acc += prev_w * toSec(pt.when - prev);
        double frac = double(pt.when - start) / double(end - start);
        cum.record(pt.when, acc + non_core * std::min(1.0, frac));
        prev = pt.when;
        prev_w = pt.value;
    }
    if (prev < end) {
        acc += prev_w * toSec(end - prev);
        cum.record(end, acc + non_core);
    }
    return cum;
}

} // namespace systems
} // namespace dramless
