#include "systems/hetero_system.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "flash/ssd.hh"
#include "host/pcie.hh"
#include "host/software_stack.hh"
#include "sim/event_pool.hh"
#include "systems/backends.hh"
#include "systems/energy_accounting.hh"
#include "workload/coalesce.hh"
#include "workload/workload_model.hh"

namespace dramless
{
namespace systems
{

const char *
heteroKindName(HeteroKind kind)
{
    switch (kind) {
      case HeteroKind::hetero:
        return "Hetero";
      case HeteroKind::heterodirect:
        return "Heterodirect";
      case HeteroKind::heteroPram:
        return "Hetero-PRAM";
      case HeteroKind::heterodirectPram:
        return "Heterodirect-PRAM";
    }
    return "?";
}

namespace
{

bool
isDirect(HeteroKind kind)
{
    return kind == HeteroKind::heterodirect ||
           kind == HeteroKind::heterodirectPram;
}

bool
isPramSsd(HeteroKind kind)
{
    return kind == HeteroKind::heteroPram ||
           kind == HeteroKind::heterodirectPram;
}

/** Pooled one-shot events: slots recycle as chunks drain. */
class Sequencer
{
  public:
    explicit Sequencer(EventQueue &eq) : eq_(eq), pool_(eq, "seq") {}

    void
    at(Tick when, std::function<void()> fn)
    {
        pool_.schedule(std::max(when, eq_.curTick()), std::move(fn));
    }

  private:
    EventQueue &eq_;
    EventPool pool_;
};

} // anonymous namespace

HeteroSystem::HeteroSystem(HeteroKind kind, const SystemOptions &opts)
    : AcceleratedSystem(heteroKindName(kind), opts), kind_(kind)
{}

RunResult
HeteroSystem::doRun(const workload::WorkloadModel &model)
{
    RunResult res;
    const workload::WorkloadSpec &spec = model.spec();
    const std::uint32_t agents = opts_.numPes - 1;
    const std::uint32_t chunks = std::max<std::uint32_t>(
        1, opts_.heteroChunks);
    // The chunk model knows how the workload splits: regular kernels
    // shrink by 1/chunks, data-dependent ones (graphs) keep the
    // shared state every chunk must re-stage.
    std::shared_ptr<const workload::WorkloadModel> chunk_model =
        model.chunked(chunks);
    const workload::WorkloadSpec &chunk_spec = chunk_model->spec();

    // --------------------------- components ------------------------
    flash::SsdConfig scfg = isPramSsd(kind_)
                                ? flash::SsdConfig::optane()
                                : flash::SsdConfig::slc();
    // Preserve the paper's data:buffer ratio — volumes were grown to
    // roughly 8x the 1 GiB device buffers, so the buffer scales with
    // the (scaled) workload instead of swallowing it whole.
    scfg.buffer.capacityBytes = std::max<std::uint64_t>(
        std::uint64_t(4) * scfg.buffer.pageBytes,
        spec.totalBytes() / opts_.heteroChunks / scfg.buffer.pageBytes *
            scfg.buffer.pageBytes);
    flash::Ssd ssd(eq_, scfg, "ssd");
    ssd.populate(0, spec.inputBytes);

    host::StackConfig stack_cfg =
        isDirect(kind_) ? host::StackConfig::peerToPeer()
                        : host::StackConfig::conventional();
    host::SoftwareStack stack(stack_cfg, "host");
    host::PcieLink pcie(eq_, host::PcieConfig{}, "pcie");

    DramBackend::Config dcfg; // 1 GiB internal accelerator DRAM
    DramBackend dram(eq_, dcfg, "adram");

    accel::AcceleratorConfig acfg;
    acfg.numPes = opts_.numPes;
    acfg.sampleInterval = opts_.sampleInterval;
    accel::Accelerator accel(eq_, acfg, "accel");
    accel.attachBackend(&dram);

    Sequencer seq(eq_);

    // ------------------------- chunk pipeline ----------------------
    const std::uint64_t out_base = (dcfg.capacityBytes * 3) / 4;
    const std::uint64_t image_base = dcfg.capacityBytes - (4 << 20);
    bool done = false;
    Tick end_tick = 0;
    std::uint32_t chunk = 0;
    Tick ssd_wait = 0; // device time on the chunk load/store path
    std::vector<std::unique_ptr<workload::AgentTraceSource>>
        traces(agents);
    stats::TimeSeries ipc_all("totalIpc");
    stats::TimeSeries act_all("agentActivity");

    std::function<void()> start_chunk = [&]() {
        // 1. Read the chunk's input from the SSD.
        ctrl::MemRequest rd;
        rd.kind = ctrl::ReqKind::read;
        rd.addr = std::uint64_t(chunk) * chunk_spec.inputBytes;
        rd.size = std::uint32_t(chunk_spec.inputBytes);
        Tick load_started = eq_.curTick();
        ssd.setCallback([&, load_started](const ctrl::MemResponse &r) {
            ssd_wait += r.completedAt - load_started;
            // 2. Host software shepherds the data (copies,
            //    deserialization) and arms the accelerator DMA.
            Tick t = r.completedAt;
            t += stack.readPathCost(chunk_spec.inputBytes);
            t += stack.dmaSetupCost();
            // 3. PCIe transfer into the accelerator DRAM.
            Tick arrived =
                pcie.transfer(chunk_spec.inputBytes, t);
            if (!isDirect(kind_)) {
                // Staged path crosses PCIe twice (SSD->host DRAM
                // happened inside the SSD read; host->accel here).
            }
            seq.at(arrived, [&]() {
                // 4. Execute this chunk's kernels.
                accel.invalidateAgentCaches();
                accel::KernelLaunch launch;
                launch.imageBytes = opts_.imageBytes;
                launch.imageBase = image_base;
                launch.imageResident = chunk > 0;
                // Traditional offload re-coordinates the kernels for
                // every chunk with host assistance (Section IV), so
                // the PSC boot sequence is paid each time; the
                // agentsResident fast path models what the paper's
                // streaming model avoids and stays off here.
                for (std::uint32_t i = 0; i < agents; ++i) {
                    workload::AgentTraceParams tp;
                    tp.inputBase = 0;
                    tp.outputBase = out_base;
                    tp.agentIndex = i;
                    tp.numAgents = agents;
                    tp.seed = opts_.seed + chunk;
                    traces[i] = workload::wrapCoalescing(
                        chunk_model->makeAgentTrace(tp),
                        opts_.coalesceBytes);
                    launch.agentTraces.push_back(traces[i].get());
                }
                if (!ipc_all.empty() || chunk > 0) {
                    ipc_all.record(eq_.curTick(), 0.0);
                    act_all.record(eq_.curTick(), 0.0);
                }
                accel.launch(launch, [&](Tick t_done) {
                    for (const auto &p :
                         accel.ipcSeries().samples())
                        ipc_all.record(p.when, p.value);
                    for (const auto &p :
                         accel.activitySeries().samples())
                        act_all.record(p.when, p.value);
                    ipc_all.record(t_done, 0.0);
                    act_all.record(t_done, 0.0);
                    // 5. Write the chunk's outputs back: PCIe out,
                    //    host stack, SSD write.
                    Tick t2 = pcie.transfer(
                        chunk_spec.outputBytes, t_done);
                    t2 += stack.writePathCost(
                        chunk_spec.outputBytes);
                    seq.at(t2, [&]() {
                        ctrl::MemRequest wr;
                        wr.kind = ctrl::ReqKind::write;
                        wr.addr = spec.inputBytes +
                                  std::uint64_t(chunk) *
                                      chunk_spec.outputBytes;
                        wr.size = std::uint32_t(
                            chunk_spec.outputBytes);
                        Tick store_started = eq_.curTick();
                        ssd.setCallback(
                            [&, store_started](
                                const ctrl::MemResponse &r2) {
                                ssd_wait += r2.completedAt -
                                            store_started;
                                ++chunk;
                                if (chunk < chunks) {
                                    seq.at(r2.completedAt,
                                           start_chunk);
                                } else {
                                    done = true;
                                    end_tick = r2.completedAt;
                                }
                            });
                        ssd.enqueue(wr);
                    });
                });
            });
        });
        ssd.enqueue(rd);
    };

    seq.at(0, start_chunk);
    while (!done && eq_.step()) {
    }
    panic_if(!done, "%s: run deadlocked on %s", name_.c_str(),
             spec.name.c_str());
    // Drain trailing activity so no component is destroyed with a
    // scheduled event.
    eq_.run();

    // ---------------------------- metrics --------------------------
    res.execTime = end_tick;
    res.hostStackTime = stack.stackStats().cpuBusyTicks;
    res.transferTime = pcie.pcieStats().busyTicks;
    Tick stall_sum = 0;
    std::uint64_t instr = 0;
    for (std::uint32_t i = 0; i < agents; ++i) {
        const accel::PeStats &s = accel.agent(i).peStats();
        stall_sum += s.loadStallTicks + s.storeStallTicks;
        instr += s.instructions;
    }
    // Storage time: agent-side stalls plus the serial SSD phases of
    // the chunk pipeline (reads before compute, writebacks after).
    res.storageStallTime = stall_sum / agents + ssd_wait;
    Tick accounted = res.hostStackTime + res.transferTime +
                     res.storageStallTime;
    res.computeTime =
        res.execTime > accounted ? res.execTime - accounted : 0;
    res.totalInstructions = instr;
    res.ipc = ipc_all;

    // ---------------------------- energy ---------------------------
    energy::EnergyBreakdown e;
    e += accelCoreEnergy(accel, 0, end_tick, agents, opts_.energy);
    e += hostEnergy(stack, opts_.energy);
    // The host stays resident for the whole heterogeneous run,
    // coordinating chunk movement and kernel scheduling.
    e.hostStack += energy::wattsOver(
        opts_.energy.hostCoordinationWatts, end_tick);
    e += pcieEnergy(pcie, opts_.energy);
    e += ssdEnergy(ssd, end_tick, opts_.energy);
    e += dramEnergy(dram.bytesMoved() +
                        2 * spec.totalBytes(), // staging copies
                    dram.capacity(), end_tick, opts_.energy);
    res.energy = e;

    stats::TimeSeries power("corePowerW");
    const energy::EnergyParams &p = opts_.energy;
    for (const auto &pt : act_all.samples()) {
        double watts = double(agents) *
                           (pt.value * p.peActiveWatts +
                            (1.0 - pt.value) * p.peStallWatts) +
                       p.uncoreWatts;
        power.record(pt.when, watts);
    }
    res.corePower = power;
    res.cumulativeEnergy = cumulativeEnergySeries(
        res.corePower, e.total(), 0, end_tick);
    return res;
}

} // namespace systems
} // namespace dramless
