/**
 * @file
 * Result record of one (system, workload) run — everything the
 * benchmark harnesses need to regenerate the paper's tables and
 * figures.
 */

#ifndef DRAMLESS_SYSTEMS_METRICS_HH
#define DRAMLESS_SYSTEMS_METRICS_HH

#include <cstdint>
#include <string>

#include "energy/energy_model.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace systems
{

/** Reliability-layer outcome of one run (all zero with fault
 *  injection disabled). */
struct ReliabilityOutcome
{
    /** Program-and-verify re-pulses across all channels. */
    std::uint64_t verifyRetries = 0;
    /** Write sub-ops that exhausted every verify retry. */
    std::uint64_t failedWrites = 0;
    /** Worn-out lines remapped into the spare pool. */
    std::uint64_t badLineRemaps = 0;
    /** Spare lines consumed. */
    std::uint64_t spareLinesUsed = 0;
    /** PRAM writes performed by Start-Gap gap-move copies. */
    std::uint64_t gapMoveWrites = 0;
    /** Firmware attempts that hit the watchdog. */
    std::uint64_t firmwareTimeouts = 0;
    /** Requests whose firmware retries were all exhausted. */
    std::uint64_t firmwareGiveUps = 0;
    /** Highest per-word write wear observed. */
    std::uint64_t maxLineWear = 0;
    /** Demand writes served before the first remap (0 = none). */
    std::uint64_t writesBeforeFirstRemap = 0;
};

/** One run's metrics. */
struct RunResult
{
    std::string system;
    std::string workload;

    /** End-to-end execution time (kernel prep to last completion). */
    Tick execTime = 0;

    /** @name Execution-time decomposition (Figure 16) @{ */
    /** Host CPU time in the storage software stack. */
    Tick hostStackTime = 0;
    /** PCIe transfer occupancy. */
    Tick transferTime = 0;
    /** Mean per-agent stall time on storage accesses. */
    Tick storageStallTime = 0;
    /** Remainder: actual computation + on-chip time. */
    Tick computeTime = 0;
    /** @} */

    /** Data-processing throughput over the whole run. */
    double bandwidthMBps = 0.0;

    /** Energy decomposition (Figure 17). */
    energy::EnergyBreakdown energy;

    /** Total-IPC samples over time (Figures 18/19). */
    stats::TimeSeries ipc;
    /** Agent core power over time (Figures 20a/21a). */
    stats::TimeSeries corePower;
    /** Cumulative total energy over time (Figures 20b/21b). */
    stats::TimeSeries cumulativeEnergy;

    std::uint64_t totalInstructions = 0;
    std::uint64_t bytesProcessed = 0;
    /** Simulation-kernel events processed by the run's event queue
     *  (wall-clock perf accounting; not a figure metric). */
    std::uint64_t eventsProcessed = 0;

    /** Fault-injection outcome (zeros when disabled). */
    ReliabilityOutcome reliability;

    /**
     * Non-empty when the run aborted with an exception: the message
     * of the error that killed it. A failed row keeps its matrix
     * slot (labels stay valid) but every metric above is
     * meaningless and must not feed goldens or figures.
     */
    std::string error;

    /** @return true when this row records a failed run. */
    bool failed() const { return !error.empty(); }

    /** @return this run's bandwidth normalized to @p baseline. */
    double
    speedupOver(const RunResult &baseline) const
    {
        return double(baseline.execTime) / double(execTime);
    }
};

} // namespace systems
} // namespace dramless

#endif // DRAMLESS_SYSTEMS_METRICS_HH
