#include "systems/factory.hh"

#include <atomic>

#include "sim/logging.hh"

namespace dramless
{
namespace systems
{

std::vector<SystemKind>
SystemFactory::evaluationOrder()
{
    return {
        SystemKind::hetero,        SystemKind::heterodirect,
        SystemKind::heteroPram,    SystemKind::heterodirectPram,
        SystemKind::norIntf,       SystemKind::integratedSlc,
        SystemKind::integratedMlc, SystemKind::integratedTlc,
        SystemKind::pageBuffer,    SystemKind::dramLess,
    };
}

const char *
SystemFactory::label(SystemKind kind)
{
    return info(kind).label;
}

std::optional<SystemKind>
SystemFactory::fromLabel(const std::string &label)
{
    static const SystemKind all[] = {
        SystemKind::hetero,        SystemKind::heterodirect,
        SystemKind::heteroPram,    SystemKind::heterodirectPram,
        SystemKind::norIntf,       SystemKind::integratedSlc,
        SystemKind::integratedMlc, SystemKind::integratedTlc,
        SystemKind::pageBuffer,    SystemKind::dramLess,
        SystemKind::dramLessFirmware, SystemKind::ideal,
    };
    for (SystemKind kind : all)
        if (label == SystemFactory::label(kind))
            return kind;
    return std::nullopt;
}

SystemInfo
SystemFactory::info(SystemKind kind)
{
    switch (kind) {
      case SystemKind::hetero:
        return {kind, "Hetero", true, true, "50", "800", "3500"};
      case SystemKind::heterodirect:
        return {kind, "Heterodirect", true, true, "50", "800",
                "3500"};
      case SystemKind::heteroPram:
        return {kind, "Hetero-PRAM", true, true, "0.1", "10/18",
                "N/A"};
      case SystemKind::heterodirectPram:
        return {kind, "Heterodirect-PRAM", true, true, "0.1",
                "10/18", "N/A"};
      case SystemKind::norIntf:
        return {kind, "NOR-intf", false, false, "290", "120", "N/A"};
      case SystemKind::integratedSlc:
        return {kind, "Integrated-SLC", false, true, "25", "300",
                "2000"};
      case SystemKind::integratedMlc:
        return {kind, "Integrated-MLC", false, true, "50", "800",
                "3500"};
      case SystemKind::integratedTlc:
        return {kind, "Integrated-TLC", false, true, "80", "1250",
                "2274"};
      case SystemKind::pageBuffer:
        return {kind, "PAGE-buffer", false, true, "0.1", "10/18",
                "N/A"};
      case SystemKind::dramLess:
        return {kind, "DRAM-less", false, false, "0.1", "10/18",
                "N/A"};
      case SystemKind::dramLessFirmware:
        return {kind, "DRAM-less (firmware)", false, false, "0.1",
                "10/18", "N/A"};
      case SystemKind::ideal:
        return {kind, "Ideal", false, true, "-", "-", "-"};
    }
    fatal("unknown system kind");
}

std::unique_ptr<AcceleratedSystem>
SystemFactory::create(SystemKind kind, const SystemOptions &opts)
{
    // `shards` parallelizes multi-node co-sim fleets (one PDES
    // cluster per node behind the PCIe hop; serve::CoSimFleet). A
    // single-node system is one cluster — its MCU<->backend boundary
    // is a synchronous call with zero lookahead — so the kernel
    // stays serial here by design. Say so once instead of silently
    // swallowing the knob.
    static std::atomic<bool> warned_shards{false};
    if (opts.shards != 1 && !warned_shards.exchange(true)) {
        warn("SystemOptions::shards=%u is a no-op for single-node "
             "systems (one event cluster); it shards multi-node "
             "co-sim serving runs only",
             opts.shards);
    }
    switch (kind) {
      case SystemKind::hetero:
        return std::make_unique<HeteroSystem>(HeteroKind::hetero,
                                              opts);
      case SystemKind::heterodirect:
        return std::make_unique<HeteroSystem>(
            HeteroKind::heterodirect, opts);
      case SystemKind::heteroPram:
        return std::make_unique<HeteroSystem>(HeteroKind::heteroPram,
                                              opts);
      case SystemKind::heterodirectPram:
        return std::make_unique<HeteroSystem>(
            HeteroKind::heterodirectPram, opts);
      case SystemKind::norIntf:
        return std::make_unique<IntegratedSystem>(
            IntegratedKind::norIntf, opts);
      case SystemKind::integratedSlc:
        return std::make_unique<IntegratedSystem>(
            IntegratedKind::integratedSlc, opts);
      case SystemKind::integratedMlc:
        return std::make_unique<IntegratedSystem>(
            IntegratedKind::integratedMlc, opts);
      case SystemKind::integratedTlc:
        return std::make_unique<IntegratedSystem>(
            IntegratedKind::integratedTlc, opts);
      case SystemKind::pageBuffer:
        return std::make_unique<IntegratedSystem>(
            IntegratedKind::pageBuffer, opts);
      case SystemKind::dramLess:
        return std::make_unique<IntegratedSystem>(
            IntegratedKind::dramLess, opts);
      case SystemKind::dramLessFirmware:
        return std::make_unique<IntegratedSystem>(
            IntegratedKind::dramLessFirmware, opts);
      case SystemKind::ideal:
        return std::make_unique<IntegratedSystem>(
            IntegratedKind::ideal, opts);
    }
    fatal("unknown system kind");
}

std::unique_ptr<AcceleratedSystem>
SystemFactory::createDramLessVariant(IntegratedKind kind,
                                     const SystemOptions &opts)
{
    return std::make_unique<IntegratedSystem>(kind, opts);
}

} // namespace systems
} // namespace dramless
