#include "systems/integrated_system.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "flash/nor_pram.hh"
#include "flash/ssd.hh"
#include "host/pcie.hh"
#include "host/software_stack.hh"
#include "systems/backends.hh"
#include "systems/energy_accounting.hh"
#include "workload/coalesce.hh"
#include "workload/workload_model.hh"

namespace dramless
{
namespace systems
{

const char *
integratedKindName(IntegratedKind kind)
{
    switch (kind) {
      case IntegratedKind::dramLess:
        return "DRAM-less";
      case IntegratedKind::dramLessBareMetal:
        return "DRAM-less (Bare-metal)";
      case IntegratedKind::dramLessInterleaving:
        return "DRAM-less (Interleaving)";
      case IntegratedKind::dramLessSelectiveErase:
        return "DRAM-less (selective-erasing)";
      case IntegratedKind::dramLessFirmware:
        return "DRAM-less (firmware)";
      case IntegratedKind::norIntf:
        return "NOR-intf";
      case IntegratedKind::integratedSlc:
        return "Integrated-SLC";
      case IntegratedKind::integratedMlc:
        return "Integrated-MLC";
      case IntegratedKind::integratedTlc:
        return "Integrated-TLC";
      case IntegratedKind::pageBuffer:
        return "PAGE-buffer";
      case IntegratedKind::ideal:
        return "Ideal";
    }
    return "?";
}

namespace
{

bool
isPramKind(IntegratedKind kind)
{
    switch (kind) {
      case IntegratedKind::dramLess:
      case IntegratedKind::dramLessBareMetal:
      case IntegratedKind::dramLessInterleaving:
      case IntegratedKind::dramLessSelectiveErase:
      case IntegratedKind::dramLessFirmware:
        return true;
      default:
        return false;
    }
}

ctrl::SchedulerConfig
schedulerFor(IntegratedKind kind)
{
    switch (kind) {
      case IntegratedKind::dramLessBareMetal:
        return ctrl::SchedulerConfig::bareMetal();
      case IntegratedKind::dramLessInterleaving:
        return ctrl::SchedulerConfig::interleavingOnly();
      case IntegratedKind::dramLessSelectiveErase:
        return ctrl::SchedulerConfig::selectiveErasingOnly();
      default:
        return ctrl::SchedulerConfig::finalConfig();
    }
}

std::uint64_t
alignRegion(std::uint64_t v)
{
    // Regions align to 4 KiB so distinct regions never share an L2
    // block (1 KiB): a boundary block's writeback must not touch the
    // neighbouring region.
    return (v + 4095) / 4096 * 4096;
}

} // anonymous namespace

IntegratedSystem::IntegratedSystem(IntegratedKind kind,
                                   const SystemOptions &opts)
    : AcceleratedSystem(integratedKindName(kind), opts), kind_(kind)
{}

RunResult
IntegratedSystem::doRun(const workload::WorkloadModel &model)
{
    RunResult res;
    const workload::WorkloadSpec &spec = model.spec();
    const std::uint32_t agents = opts_.numPes - 1;

    // ------------------------- address map -------------------------
    const std::uint64_t input_base = 0;
    const std::uint64_t output_base = alignRegion(spec.inputBytes);
    const std::uint64_t image_base =
        alignRegion(output_base + spec.outputBytes + (1 << 20));

    // --------------------- storage and backend ---------------------
    std::unique_ptr<ctrl::PramSubsystem> pram;
    std::unique_ptr<flash::Ssd> ssd;
    std::unique_ptr<flash::NorPram> nor;
    std::unique_ptr<DramBackend> dram;
    std::unique_ptr<accel::MemoryBackend> base_backend;
    std::unique_ptr<FirmwareFrontedBackend> fw_backend;
    accel::MemoryBackend *backend = nullptr;
    Tick storage_ready = 0;

    if (isPramKind(kind_)) {
        ctrl::SubsystemConfig cfg;
        cfg.scheduler = opts_.schedulerOverride
                            ? *opts_.schedulerOverride
                            : schedulerFor(kind_);
        if (opts_.geometryOverride)
            cfg.geometry = *opts_.geometryOverride;
        cfg.functional = opts_.functional;
        cfg.wearLeveling = opts_.wearLeveling;
        cfg.gapMovePeriod = opts_.gapMovePeriod;
        cfg.reliability = opts_.reliability;
        pram = std::make_unique<ctrl::PramSubsystem>(eq_, cfg,
                                                     "pram");
        storage_ready = pram->initialize();
        base_backend = std::make_unique<PramBackend>(*pram);
        backend = base_backend.get();
        if (kind_ == IntegratedKind::dramLessFirmware) {
            flash::FirmwareConfig fwc =
                flash::FirmwareConfig::traditionalSsd();
            if (opts_.reliability.enabled) {
                fwc.timeoutProb = opts_.reliability.firmwareTimeoutProb;
                fwc.timeoutPenalty = opts_.reliability.firmwareTimeout;
                fwc.timeoutRetries = opts_.reliability.firmwareRetries;
                fwc.faultSeed = opts_.reliability.seed;
            }
            fw_backend = std::make_unique<FirmwareFrontedBackend>(
                eq_, *base_backend, fwc, "fwctl");
            backend = fw_backend.get();
        }
    } else if (kind_ == IntegratedKind::norIntf) {
        nor = std::make_unique<flash::NorPram>(
            eq_, flash::NorPramConfig{}, "nor");
        base_backend =
            std::make_unique<NorBackend>(eq_, *nor, "norbk");
        backend = base_backend.get();
    } else if (kind_ == IntegratedKind::ideal) {
        DramBackend::Config dcfg;
        dcfg.capacityBytes = image_base + opts_.imageBytes + (1 << 20);
        dram = std::make_unique<DramBackend>(eq_, dcfg, "dram");
        backend = dram.get();
    } else {
        flash::SsdConfig scfg;
        switch (kind_) {
          case IntegratedKind::integratedSlc:
            scfg = flash::SsdConfig::slc();
            break;
          case IntegratedKind::integratedMlc:
            scfg = flash::SsdConfig::mlc();
            break;
          case IntegratedKind::integratedTlc:
            scfg = flash::SsdConfig::tlc();
            break;
          case IntegratedKind::pageBuffer:
            scfg = flash::SsdConfig::slc();
            scfg.array.media = flash::FlashTiming::pagePram();
            break;
          default:
            panic("unhandled integrated kind");
        }
        if (kind_ == IntegratedKind::pageBuffer) {
            // One physical PRAM subsystem: a 16 KiB page spans every
            // module, so page operations serialize up to the four
            // program-buffer slots; transfers ride the two 1.6 GB/s
            // LPDDR2-NVM channels.
            scfg.array.channels = 1;
            scfg.array.diesPerChannel = 4;
            scfg.array.blocksPerDie = 1024;
            scfg.array.channelBytesPerSec = 3.2e9;
        } else {
            // Embedded flash: a handful of channels, unlike the
            // 32-die discrete NVMe SSDs of the host systems.
            scfg.array.channels = 4;
            scfg.array.diesPerChannel = 2;
            scfg.array.blocksPerDie = 512;
        }
        // Keep the paper's data-to-internal-DRAM ratio (the grown
        // volumes exceed the 1 GiB buffer roughly 8x).
        scfg.buffer.capacityBytes = std::max<std::uint64_t>(
            std::uint64_t(4) * scfg.buffer.pageBytes,
            spec.totalBytes() / 8 / scfg.buffer.pageBytes *
                scfg.buffer.pageBytes);
        if (opts_.reliability.enabled) {
            scfg.firmware.timeoutProb =
                opts_.reliability.firmwareTimeoutProb;
            scfg.firmware.timeoutPenalty =
                opts_.reliability.firmwareTimeout;
            scfg.firmware.timeoutRetries =
                opts_.reliability.firmwareRetries;
            scfg.firmware.faultSeed = opts_.reliability.seed;
        }
        ssd = std::make_unique<flash::Ssd>(eq_, scfg, "essd");
        // Inputs are staged in the persistent store before the run,
        // as in the paper's methodology.
        ssd->populate(input_base, spec.inputBytes);
        base_backend = std::make_unique<SsdBackend>(*ssd);
        backend = base_backend.get();
    }

    // -------------------------- accelerator ------------------------
    accel::AcceleratorConfig acfg;
    acfg.numPes = opts_.numPes;
    acfg.sampleInterval = opts_.sampleInterval;
    if (kind_ == IntegratedKind::norIntf) {
        // No internal DRAM and a byte-granular interface: the PEs
        // fetch fine-grained L2 lines straight from the NOR PRAM
        // instead of the two-channel 1 KiB request shape.
        acfg.pe.l2.blockBytes = 64;
    }
    accel::Accelerator accel(eq_, acfg, "accel");
    accel.attachBackend(backend);

    // ---------------------------- traces ---------------------------
    std::vector<std::unique_ptr<workload::AgentTraceSource>> traces;
    accel::KernelLaunch launch;
    launch.imageBytes = opts_.imageBytes;
    launch.imageBase = image_base;
    for (std::uint32_t i = 0; i < agents; ++i) {
        workload::AgentTraceParams tp;
        tp.inputBase = input_base;
        tp.outputBase = output_base;
        tp.agentIndex = i;
        tp.numAgents = agents;
        tp.seed = opts_.seed;
        traces.push_back(workload::wrapCoalescing(
            model.makeAgentTrace(tp), opts_.coalesceBytes));
        launch.agentTraces.push_back(traces.back().get());
        launch.outputRegions.push_back(
            traces.back()->outputRegion());
    }

    // ------------------- host-side kernel offload ------------------
    // The host only packs the kernel and pushes it over PCIe
    // (Figure 10: packData / pushData).
    host::SoftwareStack stack(host::StackConfig::conventional(),
                              "host");
    host::PcieLink pcie(eq_, host::PcieConfig{}, "pcie");
    Tick prep = stack.dmaSetupCost();
    Tick image_at_accel =
        pcie.transfer(opts_.imageBytes,
                      std::max(prep, storage_ready));

    bool done = false;
    Tick end_tick = 0;
    EventFunctionWrapper kick(
        [&] {
            accel.launch(launch, [&](Tick t) {
                done = true;
                end_tick = t;
            });
        },
        "kick");
    eq_.schedule(&kick, image_at_accel);

    while (!done && eq_.step()) {
    }
    panic_if(!done, "%s: run deadlocked on %s", name_.c_str(),
             spec.name.c_str());
    // Drain trailing activity (posted writes, background zero-fills)
    // so no component is destroyed with a scheduled event.
    eq_.run();

    // ---------------------------- metrics --------------------------
    res.execTime = end_tick;
    res.hostStackTime = stack.stackStats().cpuBusyTicks;
    res.transferTime = pcie.pcieStats().busyTicks;
    Tick stall_sum = 0;
    for (std::uint32_t i = 0; i < agents; ++i) {
        const accel::PeStats &s = accel.agent(i).peStats();
        stall_sum += s.loadStallTicks + s.storeStallTicks;
    }
    res.storageStallTime = stall_sum / agents;
    Tick accounted = res.hostStackTime + res.transferTime +
                     res.storageStallTime;
    res.computeTime =
        res.execTime > accounted ? res.execTime - accounted : 0;
    res.totalInstructions = accel.metrics().totalInstructions;
    res.ipc = accel.ipcSeries();

    // ------------------------- reliability --------------------------
    if (pram) {
        const auto &sub = pram->subsystemStats();
        res.reliability.badLineRemaps = sub.badLineRemaps;
        res.reliability.spareLinesUsed = sub.spareLinesUsed;
        res.reliability.gapMoveWrites = sub.gapMoveWrites;
        res.reliability.writesBeforeFirstRemap =
            sub.writesBeforeFirstRemap;
        for (std::uint32_t c = 0; c < pram->numChannels(); ++c) {
            const auto &cs = pram->channel(c).ctrlStats();
            res.reliability.verifyRetries += cs.verifyRetries;
            res.reliability.failedWrites += cs.verifyFailedWrites;
        }
        res.reliability.maxLineWear = pram->maxLineWear();
    }
    if (fw_backend) {
        res.reliability.firmwareTimeouts =
            fw_backend->firmware().numTimeouts();
        res.reliability.firmwareGiveUps =
            fw_backend->firmware().numTimeoutGiveUps();
    }
    if (ssd) {
        res.reliability.firmwareTimeouts +=
            ssd->firmware().numTimeouts();
        res.reliability.firmwareGiveUps +=
            ssd->firmware().numTimeoutGiveUps();
    }

    // ---------------------------- energy ---------------------------
    energy::EnergyBreakdown e;
    e += accelCoreEnergy(accel, 0, end_tick, agents, opts_.energy);
    e += hostEnergy(stack, opts_.energy);
    e += pcieEnergy(pcie, opts_.energy);
    if (pram)
        e += pramEnergy(*pram, end_tick, opts_.energy);
    if (fw_backend) {
        e.controller += energy::wattsOver(
            opts_.energy.ssdControllerWatts,
            fw_backend->firmware().busyTicks());
    }
    if (ssd)
        e += ssdEnergy(*ssd, end_tick, opts_.energy);
    if (nor)
        e += norEnergy(*nor, opts_.energy);
    if (dram) {
        e += dramEnergy(dram->bytesMoved(), dram->capacity(),
                        end_tick, opts_.energy);
        // The ideal reference of Figure 1 is the conventional
        // platform with boundless accelerator DRAM: its host still
        // exists and idles for the duration of the run.
        e.hostStack += energy::wattsOver(
            opts_.energy.hostIdleWatts, end_tick);
    }
    res.energy = e;
    res.corePower = corePowerSeries(accel, agents, opts_.energy);
    res.cumulativeEnergy = cumulativeEnergySeries(
        res.corePower, e.total(), 0, end_tick);
    return res;
}

} // namespace systems
} // namespace dramless
