/**
 * @file
 * Post-run energy accounting helpers shared by the full systems.
 */

#ifndef DRAMLESS_SYSTEMS_ENERGY_ACCOUNTING_HH
#define DRAMLESS_SYSTEMS_ENERGY_ACCOUNTING_HH

#include "accel/accelerator.hh"
#include "ctrl/pram_subsystem.hh"
#include "energy/energy_model.hh"
#include "flash/nor_pram.hh"
#include "flash/ssd.hh"
#include "host/pcie.hh"
#include "host/software_stack.hh"
#include "sim/stats.hh"

namespace dramless
{
namespace systems
{

/** Agent+server core energy from PSC residency and PE activity. */
energy::EnergyBreakdown
accelCoreEnergy(const accel::Accelerator &accel, Tick start, Tick end,
                std::uint32_t launched_agents,
                const energy::EnergyParams &p);

/** PRAM array + FPGA controller energy from subsystem counters. */
energy::EnergyBreakdown
pramEnergy(const ctrl::PramSubsystem &pram, Tick duration,
           const energy::EnergyParams &p);

/** Flash/PRAM-page SSD energy: media, buffer DRAM, firmware. */
energy::EnergyBreakdown
ssdEnergy(const flash::Ssd &ssd, Tick duration,
          const energy::EnergyParams &p);

/** NOR-interface PRAM energy. */
energy::EnergyBreakdown
norEnergy(const flash::NorPram &nor, const energy::EnergyParams &p);

/** Host software stack energy (active CPU time only; an idle host is
 *  free to do other work and is not billed to the accelerator). */
energy::EnergyBreakdown
hostEnergy(const host::SoftwareStack &stack,
           const energy::EnergyParams &p);

/** PCIe transfer energy. */
energy::EnergyBreakdown
pcieEnergy(const host::PcieLink &link, const energy::EnergyParams &p);

/** Accelerator-internal (or SSD-external staging) DRAM energy. */
energy::EnergyBreakdown
dramEnergy(std::uint64_t bytes_moved, std::uint64_t capacity_bytes,
           Tick duration, const energy::EnergyParams &p);

/**
 * Core-power time series from the accelerator's activity samples:
 * P(t) = N * (act * P_active + (1-act) * P_stall) + P_uncore.
 */
stats::TimeSeries
corePowerSeries(const accel::Accelerator &accel,
                std::uint32_t launched_agents,
                const energy::EnergyParams &p);

/**
 * Cumulative total-energy series: the integrated core power plus the
 * remaining (non-core) energy spread uniformly over the run.
 */
stats::TimeSeries
cumulativeEnergySeries(const stats::TimeSeries &core_power,
                       double total_joules, Tick start, Tick end);

} // namespace systems
} // namespace dramless

#endif // DRAMLESS_SYSTEMS_ENERGY_ACCOUNTING_HH
