/**
 * @file
 * The conventional heterogeneous accelerated systems (Figure 5a):
 * a discrete accelerator with internal DRAM plus an external SSD,
 * shepherded by the host. Four variants per Table I: flash or Optane
 * (PRAM) SSD, staged-through-host or peer-to-peer DMA.
 */

#ifndef DRAMLESS_SYSTEMS_HETERO_SYSTEM_HH
#define DRAMLESS_SYSTEMS_HETERO_SYSTEM_HH

#include "systems/system.hh"

namespace dramless
{
namespace systems
{

/** Heterogeneous system variants. */
enum class HeteroKind
{
    /** Flash SSD, data staged through host DRAM. */
    hetero,
    /** Flash SSD, zero-overhead peer-to-peer DMA. */
    heterodirect,
    /** Optane-class PRAM SSD, staged through the host. */
    heteroPram,
    /** Optane-class PRAM SSD, peer-to-peer DMA. */
    heterodirectPram,
};

/** @return the Table I label of @p kind. */
const char *heteroKindName(HeteroKind kind);

/**
 * Heterogeneous accelerated system. Data is processed in chunks
 * sized to the accelerator's internal DRAM: each chunk is read from
 * the SSD, shepherded by the host software stack, transferred over
 * PCIe, processed, and its outputs written back in inverse order.
 */
class HeteroSystem : public AcceleratedSystem
{
  public:
    HeteroSystem(HeteroKind kind, const SystemOptions &opts);

  protected:
    RunResult doRun(const workload::WorkloadModel &model) override;

  private:
    HeteroKind kind_;
};

} // namespace systems
} // namespace dramless

#endif // DRAMLESS_SYSTEMS_HETERO_SYSTEM_HH
