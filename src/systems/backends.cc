#include "systems/backends.hh"

namespace dramless
{
namespace systems
{

// ---------------------------- PramBackend --------------------------

PramBackend::PramBackend(ctrl::PramSubsystem &pram) : pram_(pram) {}

void
PramBackend::setCallback(Callback cb)
{
    pram_.setCallback([cb = std::move(cb)](const ctrl::MemResponse &r) {
        cb(r.id, r.completedAt);
    });
}

bool
PramBackend::canAccept(std::uint32_t size) const
{
    ctrl::MemRequest req;
    req.kind = ctrl::ReqKind::read;
    req.addr = 0;
    req.size = size;
    return pram_.canAccept(req);
}

std::uint64_t
PramBackend::submit(std::uint64_t addr, std::uint32_t size,
                    bool is_write)
{
    ctrl::MemRequest req;
    req.kind = is_write ? ctrl::ReqKind::write : ctrl::ReqKind::read;
    req.addr = addr;
    req.size = size;
    return pram_.enqueue(req);
}

void
PramBackend::hintFutureWrite(std::uint64_t addr, std::uint64_t size)
{
    pram_.hintFutureWrite(addr, size);
}

std::uint64_t
PramBackend::capacity() const
{
    return pram_.capacity();
}

// ---------------------- FirmwareFrontedBackend ----------------------

FirmwareFrontedBackend::FirmwareFrontedBackend(
    EventQueue &eq, accel::MemoryBackend &inner,
    const flash::FirmwareConfig &fw, std::string name)
    : eventq_(eq), inner_(inner), fw_(fw, name + ".fw"),
      name_(std::move(name)),
      fireEvent_(this, name_ + ".fire")
{
    inner_.setCallback([this](std::uint64_t inner_id, Tick when) {
        auto it = innerToOuter_.find(inner_id);
        panic_if(it == innerToOuter_.end(),
                 "%s: unknown inner completion", name_.c_str());
        std::uint64_t outer = it->second;
        innerToOuter_.erase(it);
        if (cb_)
            cb_(outer, when);
    });
}

void
FirmwareFrontedBackend::setCallback(Callback cb)
{
    cb_ = std::move(cb);
}

bool
FirmwareFrontedBackend::canAccept(std::uint32_t size) const
{
    return inner_.canAccept(size);
}

std::uint64_t
FirmwareFrontedBackend::submit(std::uint64_t addr, std::uint32_t size,
                               bool is_write)
{
    std::uint64_t id = nextId_++;
    // Every memory request is first processed serially by the
    // embedded firmware cores (Figure 7's bottleneck).
    Tick ready = fw_.service(eventq_.curTick());
    deferred_[ready].push_back(Deferred{id, addr, size, is_write});
    eventq_.reschedule(&fireEvent_, deferred_.begin()->first);
    return id;
}

void
FirmwareFrontedBackend::fire()
{
    Tick now = eventq_.curTick();
    while (!deferred_.empty() && deferred_.begin()->first <= now) {
        auto batch = std::move(deferred_.begin()->second);
        deferred_.erase(deferred_.begin());
        for (const Deferred &d : batch) {
            std::uint64_t inner_id =
                inner_.submit(d.addr, d.size, d.isWrite);
            innerToOuter_[inner_id] = d.id;
        }
    }
    if (!deferred_.empty())
        eventq_.reschedule(&fireEvent_, deferred_.begin()->first);
}

void
FirmwareFrontedBackend::hintFutureWrite(std::uint64_t addr,
                                        std::uint64_t size)
{
    inner_.hintFutureWrite(addr, size);
}

std::uint64_t
FirmwareFrontedBackend::capacity() const
{
    return inner_.capacity();
}

// ---------------------------- DramBackend --------------------------

DramBackend::DramBackend(EventQueue &eq, const Config &config,
                         std::string name)
    : eventq_(eq), config_(config), name_(std::move(name)),
      fireEvent_(this, name_ + ".fire")
{}

void
DramBackend::setCallback(Callback cb)
{
    cb_ = std::move(cb);
}

bool
DramBackend::canAccept(std::uint32_t) const
{
    return true;
}

std::uint64_t
DramBackend::submit(std::uint64_t addr, std::uint32_t size,
                    bool is_write)
{
    (void)addr;
    (void)is_write;
    std::uint64_t id = nextId_++;
    Tick start = std::max(eventq_.curTick(), busyUntil_);
    Tick xfer = serializationTicks(size, config_.bytesPerSec);
    Tick done = start + config_.accessLatency + xfer;
    // The shared DRAM bus serializes the data transfer portion.
    busyUntil_ = start + xfer;
    bytesMoved_ += size;
    pending_[done].push_back(id);
    eventq_.reschedule(&fireEvent_, pending_.begin()->first);
    return id;
}

std::uint64_t
DramBackend::capacity() const
{
    return config_.capacityBytes;
}

void
DramBackend::fire()
{
    Tick now = eventq_.curTick();
    while (!pending_.empty() && pending_.begin()->first <= now) {
        auto ids = std::move(pending_.begin()->second);
        pending_.erase(pending_.begin());
        for (auto id : ids) {
            if (cb_)
                cb_(id, now);
        }
    }
    if (!pending_.empty())
        eventq_.reschedule(&fireEvent_, pending_.begin()->first);
}

// ----------------------------- SsdBackend --------------------------

SsdBackend::SsdBackend(flash::Ssd &ssd) : ssd_(ssd) {}

void
SsdBackend::setCallback(Callback cb)
{
    ssd_.setCallback([cb = std::move(cb)](const ctrl::MemResponse &r) {
        cb(r.id, r.completedAt);
    });
}

bool
SsdBackend::canAccept(std::uint32_t) const
{
    return true;
}

std::uint64_t
SsdBackend::submit(std::uint64_t addr, std::uint32_t size,
                   bool is_write)
{
    ctrl::MemRequest req;
    req.kind = is_write ? ctrl::ReqKind::write : ctrl::ReqKind::read;
    req.addr = addr;
    req.size = size;
    return ssd_.enqueue(req);
}

std::uint64_t
SsdBackend::capacity() const
{
    return ssd_.capacity();
}

// ----------------------------- NorBackend --------------------------

NorBackend::NorBackend(EventQueue &eq, flash::NorPram &nor,
                       std::string name)
    : eventq_(eq), nor_(nor), name_(std::move(name)),
      fireEvent_(this, name_ + ".fire")
{}

void
NorBackend::setCallback(Callback cb)
{
    cb_ = std::move(cb);
}

bool
NorBackend::canAccept(std::uint32_t) const
{
    return true;
}

std::uint64_t
NorBackend::submit(std::uint64_t addr, std::uint32_t size,
                   bool is_write)
{
    std::uint64_t id = nextId_++;
    Tick done = is_write ? nor_.write(addr, size)
                         : nor_.read(addr, size);
    pending_[done].push_back(id);
    eventq_.reschedule(&fireEvent_, pending_.begin()->first);
    return id;
}

std::uint64_t
NorBackend::capacity() const
{
    return nor_.capacity();
}

void
NorBackend::fire()
{
    Tick now = eventq_.curTick();
    while (!pending_.empty() && pending_.begin()->first <= now) {
        auto ids = std::move(pending_.begin()->second);
        pending_.erase(pending_.begin());
        for (auto id : ids) {
            if (cb_)
                cb_(id, now);
        }
    }
    if (!pending_.empty())
        eventq_.reschedule(&fireEvent_, pending_.begin()->first);
}

} // namespace systems
} // namespace dramless
