/**
 * @file
 * Registry of the evaluated accelerated systems (Table I) and the
 * factory constructing them.
 */

#ifndef DRAMLESS_SYSTEMS_FACTORY_HH
#define DRAMLESS_SYSTEMS_FACTORY_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "systems/hetero_system.hh"
#include "systems/integrated_system.hh"
#include "systems/system.hh"

namespace dramless
{
namespace systems
{

/** Every evaluated configuration. */
enum class SystemKind
{
    hetero,
    heterodirect,
    heteroPram,
    heterodirectPram,
    norIntf,
    integratedSlc,
    integratedMlc,
    integratedTlc,
    pageBuffer,
    dramLess,
    dramLessFirmware,
    ideal,
};

/** Static description of a system for Table I. */
struct SystemInfo
{
    SystemKind kind;
    const char *label;
    bool heterogeneous;
    bool internalDram;
    /** NVM read / write / erase latencies in microseconds (write may
     *  be a range string); mirrors Table I. */
    const char *nvmRead;
    const char *nvmWrite;
    const char *nvmErase;
};

/** Factory and registry. */
class SystemFactory
{
  public:
    /** @return the ten evaluated systems in Table I / Figure 15
     *  order (Hetero ... DRAM-less). */
    static std::vector<SystemKind> evaluationOrder();

    /** @return the label of @p kind. */
    static const char *label(SystemKind kind);

    /**
     * @return the kind whose Table I label equals @p label
     * ("Hetero", "DRAM-less", ...), or std::nullopt for an unknown
     * label. The inverse of label(), for environment-variable
     * organization selection in the bench binaries.
     */
    static std::optional<SystemKind>
    fromLabel(const std::string &label);

    /** @return Table I's row for @p kind. */
    static SystemInfo info(SystemKind kind);

    /** Construct a fresh system instance. */
    static std::unique_ptr<AcceleratedSystem>
    create(SystemKind kind, const SystemOptions &opts);

    /**
     * Construct a DRAM-less instance with an explicit scheduler
     * (the Figure 13 variants).
     */
    static std::unique_ptr<AcceleratedSystem>
    createDramLessVariant(IntegratedKind kind,
                          const SystemOptions &opts);
};

} // namespace systems
} // namespace dramless

#endif // DRAMLESS_SYSTEMS_FACTORY_HH
