/**
 * @file
 * The "integrated" accelerated systems: storage lives inside the
 * accelerator, the host only ships the kernel (Figure 5b). Covers
 * DRAM-less (all scheduler variants and the firmware-managed
 * configuration), NOR-intf, Integrated-SLC/MLC/TLC, PAGE-buffer and
 * the ideal all-data-resident reference of Figure 1.
 */

#ifndef DRAMLESS_SYSTEMS_INTEGRATED_SYSTEM_HH
#define DRAMLESS_SYSTEMS_INTEGRATED_SYSTEM_HH

#include <memory>
#include <string>

#include "systems/system.hh"

namespace dramless
{
namespace systems
{

/** Storage organization inside the accelerator. */
enum class IntegratedKind
{
    /** DRAM-less: hardware-automated PRAM, Final scheduler. */
    dramLess,
    /** DRAM-less with the noop (Bare-metal) scheduler. */
    dramLessBareMetal,
    /** DRAM-less with interleaving only. */
    dramLessInterleaving,
    /** DRAM-less with selective erasing only. */
    dramLessSelectiveErase,
    /** DRAM-less with traditional SSD firmware instead of the
     *  hardware automation. */
    dramLessFirmware,
    /** 9x nm parallel PRAM behind the NOR interface. */
    norIntf,
    /** Embedded SLC-flash SSD. */
    integratedSlc,
    /** Embedded MLC-flash SSD. */
    integratedMlc,
    /** Embedded TLC-flash SSD. */
    integratedTlc,
    /** 3x nm PRAM behind a page interface with internal DRAM. */
    pageBuffer,
    /** Ideal: every byte resident in fast internal DRAM (Figure 1). */
    ideal,
};

/** @return the Table I label of @p kind. */
const char *integratedKindName(IntegratedKind kind);

/** Integrated accelerated system. */
class IntegratedSystem : public AcceleratedSystem
{
  public:
    IntegratedSystem(IntegratedKind kind, const SystemOptions &opts);

  protected:
    RunResult doRun(const workload::WorkloadModel &model) override;

  private:
    IntegratedKind kind_;
};

} // namespace systems
} // namespace dramless

#endif // DRAMLESS_SYSTEMS_INTEGRATED_SYSTEM_HH
