/**
 * @file
 * MemoryBackend adapters wiring the storage substrates into the
 * accelerator's MCU — one per storage organization of Table I.
 */

#ifndef DRAMLESS_SYSTEMS_BACKENDS_HH
#define DRAMLESS_SYSTEMS_BACKENDS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/backend.hh"
#include "ctrl/pram_subsystem.hh"
#include "flash/firmware.hh"
#include "flash/nor_pram.hh"
#include "flash/ssd.hh"
#include "sim/event_queue.hh"

namespace dramless
{
namespace systems
{

/** The DRAM-less backend: the hardware-automated PRAM subsystem. */
class PramBackend : public accel::MemoryBackend
{
  public:
    explicit PramBackend(ctrl::PramSubsystem &pram);

    void setCallback(Callback cb) override;
    bool canAccept(std::uint32_t size) const override;
    std::uint64_t submit(std::uint64_t addr, std::uint32_t size,
                         bool is_write) override;
    void hintFutureWrite(std::uint64_t addr,
                         std::uint64_t size) override;
    std::uint64_t capacity() const override;

  private:
    ctrl::PramSubsystem &pram_;
};

/**
 * Decorator inserting a storage-firmware execution stage in front of
 * any backend: the "DRAM-less (firmware)" configuration, where a
 * 3-core embedded CPU replaces the hardware automation (Section VI).
 */
class FirmwareFrontedBackend : public accel::MemoryBackend
{
  public:
    FirmwareFrontedBackend(EventQueue &eq,
                           accel::MemoryBackend &inner,
                           const flash::FirmwareConfig &fw,
                           std::string name);

    void setCallback(Callback cb) override;
    bool canAccept(std::uint32_t size) const override;
    std::uint64_t submit(std::uint64_t addr, std::uint32_t size,
                         bool is_write) override;
    void hintFutureWrite(std::uint64_t addr,
                         std::uint64_t size) override;
    std::uint64_t capacity() const override;

    const flash::FirmwareModel &firmware() const { return fw_; }

  private:
    struct Deferred
    {
        std::uint64_t id;
        std::uint64_t addr;
        std::uint32_t size;
        bool isWrite;
    };

    void fire();

    EventQueue &eventq_;
    accel::MemoryBackend &inner_;
    flash::FirmwareModel fw_;
    std::string name_;
    Callback cb_;
    std::uint64_t nextId_ = 1;
    /** Requests waiting out their firmware service time. */
    std::map<Tick, std::vector<Deferred>> deferred_;
    /** Map from inner ids to outer ids. */
    std::map<std::uint64_t, std::uint64_t> innerToOuter_;
    MemberEvent<FirmwareFrontedBackend, &FirmwareFrontedBackend::fire>
        fireEvent_;
};

/**
 * Flat DRAM backend: the internal accelerator DRAM of the
 * conventional heterogeneous systems and the ideal system.
 */
class DramBackend : public accel::MemoryBackend
{
  public:
    struct Config
    {
        std::uint64_t capacityBytes = 1ull << 30;
        Tick accessLatency = fromNs(150);
        /** TMS320C6678-class DDR3 effective bandwidth. */
        double bytesPerSec = 4.2e9;
    };

    DramBackend(EventQueue &eq, const Config &config,
                std::string name);

    void setCallback(Callback cb) override;
    bool canAccept(std::uint32_t size) const override;
    std::uint64_t submit(std::uint64_t addr, std::uint32_t size,
                         bool is_write) override;
    std::uint64_t capacity() const override;

    /** @return total bytes moved (for DRAM energy). */
    std::uint64_t bytesMoved() const { return bytesMoved_; }

  private:
    void fire();

    EventQueue &eventq_;
    Config config_;
    std::string name_;
    Callback cb_;
    std::uint64_t nextId_ = 1;
    Tick busyUntil_ = 0;
    std::uint64_t bytesMoved_ = 0;
    std::map<Tick, std::vector<std::uint64_t>> pending_;
    MemberEvent<DramBackend, &DramBackend::fire> fireEvent_;
};

/**
 * Page-device backend: embedded SSD (Integrated-SLC/MLC/TLC) or the
 * 3x nm PRAM behind a page interface with internal DRAM
 * (PAGE-buffer). Sub-page accesses pay full-page costs inside the
 * wrapped Ssd.
 */
class SsdBackend : public accel::MemoryBackend
{
  public:
    explicit SsdBackend(flash::Ssd &ssd);

    void setCallback(Callback cb) override;
    bool canAccept(std::uint32_t size) const override;
    std::uint64_t submit(std::uint64_t addr, std::uint32_t size,
                         bool is_write) override;
    std::uint64_t capacity() const override;

  private:
    flash::Ssd &ssd_;
};

/** NOR-interface PRAM backend: byte-addressable, fully serialized. */
class NorBackend : public accel::MemoryBackend
{
  public:
    NorBackend(EventQueue &eq, flash::NorPram &nor, std::string name);

    void setCallback(Callback cb) override;
    bool canAccept(std::uint32_t size) const override;
    std::uint64_t submit(std::uint64_t addr, std::uint32_t size,
                         bool is_write) override;
    std::uint64_t capacity() const override;

  private:
    void fire();

    EventQueue &eventq_;
    flash::NorPram &nor_;
    std::string name_;
    Callback cb_;
    std::uint64_t nextId_ = 1;
    std::map<Tick, std::vector<std::uint64_t>> pending_;
    MemberEvent<NorBackend, &NorBackend::fire> fireEvent_;
};

} // namespace systems
} // namespace dramless

#endif // DRAMLESS_SYSTEMS_BACKENDS_HH
