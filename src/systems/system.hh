/**
 * @file
 * Base class and options for the evaluated accelerated systems
 * (Table I).
 */

#ifndef DRAMLESS_SYSTEMS_SYSTEM_HH
#define DRAMLESS_SYSTEMS_SYSTEM_HH

#include <optional>
#include <string>

#include "accel/accelerator.hh"
#include "ctrl/scheduler.hh"
#include "pram/geometry.hh"
#include "reliability/fault_model.hh"
#include "energy/energy_model.hh"
#include "sim/event_queue.hh"
#include "sim/trace.hh"
#include "systems/metrics.hh"
#include "workload/polybench.hh"
#include "workload/workload_model.hh"

namespace dramless
{
namespace systems
{

/** Options shared by every system model. */
struct SystemOptions
{
    /** Scale factor applied to workload data volumes. */
    double workloadScale = 1.0;
    /** PEs including the server. */
    std::uint32_t numPes = 8;
    /** RNG seed for workload traces. */
    std::uint64_t seed = 1;
    /** Energy parameters. */
    energy::EnergyParams energy =
        energy::EnergyParams::paperDefault();
    /** IPC/power sampling period. */
    Tick sampleInterval = fromUs(20);
    /** Kernel image size shipped per launch (TI C66x kernel code
     *  segments are compact). */
    std::uint64_t imageBytes = 16 * 1024;
    /**
     * Chunks a heterogeneous run is split into: captures the paper's
     * data-volume-to-accelerator-DRAM ratio (volumes were grown 10x
     * to exceed the 1 GiB device buffers).
     */
    std::uint32_t heteroChunks = 8;
    /** Override the DRAM-less scheduler (Figure 13 variants). */
    std::optional<ctrl::SchedulerConfig> schedulerOverride;
    /** Override the PRAM geometry (ablation studies). */
    std::optional<pram::PramGeometry> geometryOverride;
    /** Keep functional backing stores (slower, data-checked). */
    bool functional = false;
    /** Enable Start-Gap wear leveling in PRAM subsystems. */
    bool wearLeveling = false;
    /** Gap move period in writes when wear leveling. */
    std::uint64_t gapMovePeriod = 100;
    /** Fault injection / endurance knobs (default: disabled). */
    reliability::ReliabilityConfig reliability{};
    /**
     * Maximum burst (bytes) the trace coalescing layer may merge
     * contiguous same-kind 32B word accesses into before they enter
     * the event kernel. Values at or below one word (<= 32) disable
     * coalescing and restore per-word issue.
     */
    std::uint32_t coalesceBytes = 512;
    /**
     * Event-kernel shards (worker threads) for simulations that run
     * on the conservative PDES kernel (sim/pdes.hh) — today the
     * multi-node co-simulated serving fleet, whose clusters are one
     * dispatch frontend plus one per node. 1 = serial reference
     * kernel; 0 = one worker per host core; every value produces
     * bit-identical results. Single-node systems (AcceleratedSystem
     * subclasses) are one cluster and always run serial: their
     * MCU<->backend boundary is synchronous (zero lookahead), so the
     * knob is a no-op there by design, not an oversight.
     */
    std::uint32_t shards = 1;
};

/**
 * One accelerated system. Each instance owns a private event queue
 * and component graph; run one workload per instance for isolated,
 * reproducible measurements.
 */
class AcceleratedSystem
{
  public:
    AcceleratedSystem(std::string name, const SystemOptions &opts)
        : name_(std::move(name)), opts_(opts)
    {}

    virtual ~AcceleratedSystem() = default;

    /** Execute @p model end-to-end and return the run's metrics. */
    RunResult
    run(const workload::WorkloadModel &model)
    {
        std::shared_ptr<const workload::WorkloadModel> scaled;
        const workload::WorkloadModel *m = &model;
        if (opts_.workloadScale != 1.0) {
            scaled = model.scaled(opts_.workloadScale);
            m = scaled.get();
        }
        trace::Span runSpan(trace::catSystem, name_, "run",
                            eq_.curTick());
        RunResult result = doRun(*m);
        runSpan.finish(eq_.curTick());
        result.system = name_;
        result.workload = model.spec().name;
        result.bytesProcessed = m->spec().totalBytes();
        result.eventsProcessed = eq_.numProcessed();
        if (result.execTime > 0) {
            result.bandwidthMBps =
                double(m->spec().totalBytes()) /
                (double(result.execTime) / double(tickPerSec)) /
                1e6;
        }
        return result;
    }

    /** Convenience overload: run the Polybench generator on @p spec. */
    RunResult
    run(const workload::WorkloadSpec &spec)
    {
        return run(*workload::modelFor(spec));
    }

    const std::string &name() const { return name_; }

  protected:
    virtual RunResult doRun(const workload::WorkloadModel &model) = 0;

    std::string name_;
    SystemOptions opts_;
    EventQueue eq_;
};

} // namespace systems
} // namespace dramless

#endif // DRAMLESS_SYSTEMS_SYSTEM_HH
