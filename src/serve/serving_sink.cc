#include "serve/serving_sink.hh"

#include "runner/result_sink.hh"
#include "sim/json.hh"

namespace dramless
{
namespace serve
{

ServingSink::ServingSink(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description))
{}

void
ServingSink::metric(const std::string &key, double value)
{
    metrics_.emplace_back(key, value);
}

void
ServingSink::label(const std::string &key, const std::string &value)
{
    labels_.emplace_back(key, value);
}

void
ServingSink::writeJson(std::ostream &os) const
{
    json::JsonWriter w(os);
    w.beginObject();
    w.keyValue("experiment", name_);
    w.keyValue("description", description_);

    w.key("labels").beginObject();
    for (const auto &[k, v] : labels_)
        w.keyValue(k, v);
    w.endObject();

    w.key("metrics").beginObject();
    for (const auto &[k, v] : metrics_)
        w.keyValue(k, v);
    w.endObject();

    w.key("runs").beginArray();
    for (const auto &r : runs_)
        r.writeJson(w, seriesPoints_, includeRecords_);
    w.endArray();

    w.endObject();
    os << '\n';
}

void
ServingSink::writeCsv(std::ostream &os) const
{
    os << "system,arrival,policy,num_nodes,queue_capacity,"
          "offered,completed,rejected,completion_ratio,"
          "offered_rate_rps,goodput_rps,"
          "p50_queue_us,p99_queue_us,p999_queue_us,"
          "p50_e2e_us,p99_e2e_us,p999_e2e_us,"
          "mean_queue_depth\n";
    for (const auto &r : runs_) {
        os << json::csvField(r.system) << ','
           << json::csvField(r.arrival) << ','
           << json::csvField(r.policy) << ',' << r.numNodes << ','
           << r.queueCapacity << ',' << r.offered << ','
           << r.completed << ',' << r.rejected << ','
           << json::number(r.completionRatio()) << ','
           << json::number(r.offeredRatePerSec) << ','
           << json::number(r.goodputPerSec) << ','
           << json::number(r.p50QueueUs) << ','
           << json::number(r.p99QueueUs) << ','
           << json::number(r.p999QueueUs) << ','
           << json::number(r.p50E2eUs) << ','
           << json::number(r.p99E2eUs) << ','
           << json::number(r.p999E2eUs) << ','
           << json::number(r.queueDepth.timeWeightedMean()) << '\n';
    }
}

void
ServingSink::exportFromEnv() const
{
    runner::exportFromEnv(
        [this](std::ostream &os) { writeJson(os); },
        [this](std::ostream &os) { writeCsv(os); });
}

} // namespace serve
} // namespace dramless
