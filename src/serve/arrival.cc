#include "serve/arrival.hh"

#include <cmath>
#include <utility>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace dramless
{
namespace serve
{

namespace
{

void
validate(const ArrivalConfig &cfg)
{
    fatal_if(cfg.ratePerSec <= 0.0,
             "arrival rate must be positive (got %f)",
             cfg.ratePerSec);
    fatal_if(cfg.mixWeights.empty(), "arrival mix must be non-empty");
    double sum = 0.0;
    for (double w : cfg.mixWeights) {
        fatal_if(w < 0.0, "arrival mix weight must be >= 0");
        sum += w;
    }
    fatal_if(sum <= 0.0, "arrival mix weights must sum > 0");
    fatal_if(!cfg.mixPriorities.empty() &&
                 cfg.mixPriorities.size() != cfg.mixWeights.size(),
             "mixPriorities must be empty or parallel to mixWeights");
}

/** Exponential variate with mean 1/rate_per_sec, in (double) ticks. */
double
expTicks(Random &rng, double rate_per_sec)
{
    // 1 - uniform() is in (0, 1], so the log argument never hits 0.
    double u = 1.0 - rng.uniform();
    return -std::log(u) / rate_per_sec * double(tickPerSec);
}

/** Sample a mix index proportionally to the configured weights. */
std::uint32_t
pickWorkload(Random &rng, const ArrivalConfig &cfg)
{
    double sum = 0.0;
    for (double w : cfg.mixWeights)
        sum += w;
    double x = rng.uniform() * sum;
    for (std::size_t i = 0; i < cfg.mixWeights.size(); ++i) {
        x -= cfg.mixWeights[i];
        if (x < 0.0)
            return std::uint32_t(i);
    }
    return std::uint32_t(cfg.mixWeights.size() - 1);
}

Request
makeRequest(std::uint64_t id, double when_ticks, std::uint32_t wl,
            const ArrivalConfig &cfg)
{
    Request r;
    r.id = id;
    r.arrival = Tick(when_ticks);
    r.workloadIndex = wl;
    r.priority =
        cfg.mixPriorities.empty() ? 0 : cfg.mixPriorities[wl];
    return r;
}

} // anonymous namespace

PoissonArrivals::PoissonArrivals(ArrivalConfig cfg)
    : config_(std::move(cfg))
{
    validate(config_);
}

std::vector<Request>
PoissonArrivals::generate() const
{
    Random rng(config_.seed);
    std::vector<Request> out;
    out.reserve(config_.numRequests);
    double t = 0.0;
    for (std::uint64_t i = 0; i < config_.numRequests; ++i) {
        t += expTicks(rng, config_.ratePerSec);
        out.push_back(
            makeRequest(i, t, pickWorkload(rng, config_), config_));
    }
    return out;
}

MmppArrivals::MmppArrivals(ArrivalConfig cfg, Burst burst)
    : config_(std::move(cfg)), burst_(burst)
{
    validate(config_);
    fatal_if(burst_.burstMultiplier < 1.0,
             "burst multiplier must be >= 1");
    fatal_if(burst_.meanQuietSec <= 0.0 || burst_.meanBurstSec <= 0.0,
             "MMPP dwell times must be positive");
}

std::vector<Request>
MmppArrivals::generate() const
{
    Random rng(config_.seed);
    std::vector<Request> out;
    out.reserve(config_.numRequests);
    bool bursting = false;
    double t = 0.0;
    // Next state flip; dwell times are exponential, so discarding a
    // partially elapsed inter-arrival gap at a flip is exact
    // (memorylessness), not an approximation.
    double flipAt =
        t + expTicks(rng, 1.0 / burst_.meanQuietSec);
    std::uint64_t id = 0;
    while (id < config_.numRequests) {
        double rate = bursting
                          ? config_.ratePerSec * burst_.burstMultiplier
                          : config_.ratePerSec;
        double next = t + expTicks(rng, rate);
        if (next >= flipAt) {
            t = flipAt;
            bursting = !bursting;
            double dwell = bursting ? burst_.meanBurstSec
                                    : burst_.meanQuietSec;
            flipAt = t + expTicks(rng, 1.0 / dwell);
            continue;
        }
        t = next;
        out.push_back(
            makeRequest(id, t, pickWorkload(rng, config_), config_));
        ++id;
    }
    return out;
}

TraceArrivals::TraceArrivals(std::vector<Request> trace)
    : trace_(std::move(trace))
{
    for (std::size_t i = 0; i < trace_.size(); ++i) {
        fatal_if(i > 0 && trace_[i].arrival < trace_[i - 1].arrival,
                 "arrival trace not sorted at index %zu", i);
        trace_[i].id = i;
    }
}

} // namespace serve
} // namespace dramless
