/**
 * @file
 * Co-simulated multi-node serving on the sharded PDES kernel.
 *
 * Fleet (serve/fleet.hh) serves a request schedule against a
 * calibrated service-time table — one number per workload, an
 * omniscient dispatcher, zero dispatch latency. CoSimFleet serves the
 * same schedule against N live cycle-level nodes (serve/node_sim.hh):
 * every request is a real kernel launch, and the dispatcher talks to
 * the nodes over a modeled PCIe hop.
 *
 * This is also the simulator's conservative-PDES partition
 * (sim/pdes.hh). The component graphs of distinct nodes never touch:
 * they couple only through the dispatcher, across a link whose
 * latency is fixed and known. So the cluster cut falls on the PCIe
 * boundary — one frontend cluster (arrivals, admission, dispatch)
 * plus one cluster per node — and the synchronization lookahead is
 * exactly the hop latency: PcieLink per-transfer latency plus the
 * serialization time of a request descriptor. `shards` (from
 * SystemOptions::shards) picks the worker-thread count; shards=1 is
 * the serial reference, and every other value is bit-identical to it.
 *
 * Two deliberate semantic differences from Fleet, both physical:
 *  - the dispatcher's occupancy view is *delayed* by the hop (it
 *    learns of a completion one hop after it happens), where Fleet's
 *    is instantaneous;
 *  - service times emerge from the device models, including
 *    cross-request state (wear maps, scheduler state), instead of
 *    being constants.
 */

#ifndef DRAMLESS_SERVE_COSIM_HH
#define DRAMLESS_SERVE_COSIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/arrival.hh"
#include "serve/fleet.hh"
#include "sim/pdes.hh"
#include "sim/ticks.hh"
#include "systems/system.hh"
#include "workload/workload_model.hh"

namespace dramless
{
namespace serve
{

/** Co-simulated fleet shape. */
struct CoSimConfig
{
    /** Fleet shape and admission bounds (same meaning as Fleet). */
    FleetConfig fleet;
    /** Per-node system knobs; `node.shards` selects the PDES worker
     *  count for run() (0 = one per host core, 1 = serial). */
    systems::SystemOptions node;
    /** Dispatcher<->node link latency override; 0 derives it from the
     *  default PcieConfig (per-transfer latency + descriptor
     *  serialization). This is also the PDES lookahead. */
    Tick hopLatency = 0;
};

/**
 * @return the dispatcher<->node hop latency implied by @p cfg: the
 * configured override, or the PCIe per-transfer latency plus the wire
 * time of a 64-byte request descriptor.
 */
Tick cosimHopLatency(const CoSimConfig &cfg);

/**
 * N cycle-level SimNodes behind an admission/dispatch frontend,
 * executed on a ShardedKernel with one cluster per node.
 */
class CoSimFleet
{
  public:
    CoSimFleet(CoSimConfig cfg,
               std::vector<std::shared_ptr<const workload::WorkloadModel>>
                   mix);

    const CoSimConfig &config() const { return config_; }

    /** @return the hop latency / PDES lookahead in use. */
    Tick hopLatency() const { return hop_; }

    /**
     * Serve @p schedule (sorted by arrival) to completion on
     * config().node.shards workers and roll up the metrics.
     * Bit-identical for every shard count.
     */
    ServingResult run(const std::vector<Request> &schedule);

    /** @return PDES counters of the last run() (windows, messages,
     *  events across all clusters). */
    const pdes::KernelStats &kernelStats() const
    {
        return kernelStats_;
    }

  private:
    CoSimConfig config_;
    std::vector<std::shared_ptr<const workload::WorkloadModel>> mix_;
    Tick hop_;
    pdes::KernelStats kernelStats_;
};

} // namespace serve
} // namespace dramless

#endif // DRAMLESS_SERVE_COSIM_HH
