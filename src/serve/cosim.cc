#include "serve/cosim.hh"

#include <algorithm>
#include <utility>

#include "host/pcie.hh"
#include "serve/node_sim.hh"
#include "sim/event_pool.hh"
#include "sim/logging.hh"

namespace dramless
{
namespace serve
{

namespace
{

/** Request descriptor / completion message size on the wire. */
constexpr std::uint64_t kDescriptorBytes = 64;

} // anonymous namespace

Tick
cosimHopLatency(const CoSimConfig &cfg)
{
    if (cfg.hopLatency != 0)
        return cfg.hopLatency;
    host::PcieConfig pcie;
    return pcie.perTransferLatency +
           serializationTicks(kDescriptorBytes, pcie.bytesPerSec);
}

CoSimFleet::CoSimFleet(
    CoSimConfig cfg,
    std::vector<std::shared_ptr<const workload::WorkloadModel>> mix)
    : config_(std::move(cfg)), mix_(std::move(mix)),
      hop_(cosimHopLatency(config_))
{
    fatal_if(config_.fleet.numNodes == 0,
             "cosim fleet needs at least one node");
    fatal_if(mix_.empty(), "cosim fleet needs a workload mix");
}

ServingResult
CoSimFleet::run(const std::vector<Request> &schedule)
{
    const FleetConfig &fc = config_.fleet;
    ServingResult res;
    res.policy = dispatchPolicyName(fc.policy);
    res.numNodes = fc.numNodes;
    res.queueCapacity = fc.queueCapacity;
    res.queueDepth = stats::TimeSeries(
        "queue_depth",
        "dispatcher's (hop-delayed) view of waiting requests");
    res.records.resize(schedule.size());

    // ------------------------- partitioning -------------------------
    // One cluster per node plus the dispatch frontend; the PCIe hop
    // between them is the lookahead. Everything below the frontend's
    // admission state runs on the owning cluster only.
    pdes::ShardedKernel kernel(hop_);
    pdes::Cluster &front = kernel.addCluster("frontend");
    std::vector<pdes::Cluster *> node_clusters;
    std::vector<std::unique_ptr<SimNode>> nodes;
    for (std::uint32_t n = 0; n < fc.numNodes; ++n) {
        std::string nm = csprintf("node%u", n);
        pdes::Cluster &c = kernel.addCluster(nm);
        node_clusters.push_back(&c);
        nodes.push_back(std::make_unique<SimNode>(
            c.eq(), config_.node, mix_, fc.priorityScheduling, nm));
    }

    // Frontend admission state. occView[n] counts requests dispatched
    // to node n whose completion notice has not yet arrived — the
    // distributed-dispatcher analogue of Fleet's instantaneous
    // busy+waiting occupancy, stale by up to one hop each way.
    std::vector<std::size_t> occ_view(fc.numNodes, 0);
    std::uint32_t rr_next = 0;
    std::uint64_t notified = 0;

    auto viewWaiting = [&] {
        std::size_t w = 0;
        for (std::size_t o : occ_view)
            w += o > 0 ? o - 1 : 0;
        return w;
    };
    auto hasRoomView = [&](std::uint32_t n) {
        // Mirrors Fleet::hasRoom (!busy || waiting < capacity), i.e.
        // room while in-flight + waiting stays within 1 + capacity.
        return occ_view[n] <= fc.queueCapacity;
    };

    // Completion path: node cluster -> frontend, one hop later.
    for (std::uint32_t n = 0; n < fc.numNodes; ++n) {
        nodes[n]->setCompletion(
            [&, n](std::uint64_t req, Tick start, Tick done) {
                kernel.send(
                    *node_clusters[n], front, done + hop_,
                    [&, n, req, start, done] {
                        RequestRecord &rec = res.records[req];
                        rec.start = start;
                        rec.completion = done;
                        occ_view[n]--;
                        ++notified;
                        res.queueDepth.record(front.eq().curTick(),
                                              double(viewWaiting()));
                    });
            });
    }

    // Arrival path: every request is an event on the frontend at its
    // arrival tick. Priority 1 orders same-tick completion notices
    // (priority 0) ahead of arrivals, mirroring Fleet's "a completion
    // at exactly the arrival tick frees its slot first".
    EventPool arrivals(front.eq(), "frontend.arrivals");
    Tick prev_arrival = 0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const Request &r = schedule[i];
        fatal_if(r.arrival < prev_arrival,
                 "request schedule not sorted at index %zu", i);
        fatal_if(r.workloadIndex >= mix_.size(),
                 "request %zu names workload %u outside the mix "
                 "(%zu entries)",
                 i, r.workloadIndex, mix_.size());
        prev_arrival = r.arrival;

        arrivals.schedule(
            r.arrival,
            [&, i] {
                const Request &req = schedule[i];
                RequestRecord &rec = res.records[i];
                rec.id = req.id;
                rec.workloadIndex = req.workloadIndex;
                rec.priority = req.priority;
                rec.arrival = req.arrival;
                rec.dispatch = req.arrival;

                std::int32_t pick = -1;
                if (fc.policy == DispatchPolicy::roundRobin) {
                    for (std::uint32_t k = 0; k < fc.numNodes; ++k) {
                        std::uint32_t cand =
                            (rr_next + k) % fc.numNodes;
                        if (hasRoomView(cand)) {
                            pick = std::int32_t(cand);
                            rr_next = (cand + 1) % fc.numNodes;
                            break;
                        }
                    }
                } else {
                    std::size_t best_occ = 0;
                    for (std::uint32_t c = 0; c < fc.numNodes; ++c) {
                        if (pick < 0 || occ_view[c] < best_occ) {
                            pick = std::int32_t(c);
                            best_occ = occ_view[c];
                        }
                    }
                    if (!hasRoomView(std::uint32_t(pick)))
                        pick = -1;
                }

                if (pick < 0) {
                    rec.rejected = true;
                    rec.start = req.arrival;
                    rec.completion = req.arrival;
                } else {
                    rec.node = pick;
                    occ_view[std::size_t(pick)]++;
                    kernel.send(
                        front, *node_clusters[std::size_t(pick)],
                        req.arrival + hop_,
                        [node = nodes[std::size_t(pick)].get(), i,
                         widx = req.workloadIndex,
                         prio = req.priority] {
                            node->submit(i, widx, prio);
                        });
                }
                res.queueDepth.record(req.arrival,
                                      double(viewWaiting()));
            },
            /*priority=*/1);
    }

    kernel.run(config_.node.shards);
    kernelStats_ = kernel.kernelStats();

    std::uint64_t admitted = 0;
    for (const RequestRecord &rec : res.records)
        admitted += rec.rejected ? 0 : 1;
    panic_if(notified != admitted,
             "cosim fleet lost requests: %llu admitted, %llu "
             "completion notices",
             (unsigned long long)admitted,
             (unsigned long long)notified);

    rollUpServingResult(res);
    return res;
}

} // namespace serve
} // namespace dramless
