/**
 * @file
 * Open-loop request arrival processes.
 *
 * The serving layer drives a fleet of accelerator nodes with a
 * stream of *requests*, each naming one workload out of a mix
 * (a Polybench kernel, a BFS/PageRank/SpMV query, ...). An
 * ArrivalProcess turns a seeded configuration into a fully
 * deterministic request schedule up front: the same config always
 * produces bit-identical schedules, independent of how many worker
 * threads later execute anything, so serving results are exactly
 * reproducible (the property the determinism suite pins).
 *
 * Three processes cover the evaluation space: Poisson (memoryless
 * open-loop traffic), a two-state MMPP (bursty traffic alternating
 * between a quiet and a burst rate, the standard bursty-arrival
 * model) and trace replay (explicit schedules, e.g. recorded from
 * production or handcrafted by tests).
 */

#ifndef DRAMLESS_SERVE_ARRIVAL_HH
#define DRAMLESS_SERVE_ARRIVAL_HH

#include <cstdint>
#include <vector>

#include "sim/ticks.hh"

namespace dramless
{
namespace serve
{

/** One request: an instance of workload @c workloadIndex arriving at
 *  @c arrival. Requests are identified by their schedule position. */
struct Request
{
    std::uint64_t id = 0;
    Tick arrival = 0;
    /** Index into the caller's workload mix (and into the fleet's
     *  per-workload service-time table). */
    std::uint32_t workloadIndex = 0;
    /** Scheduling priority; higher runs first where the fleet's
     *  dispatch is priority-aware. */
    std::uint32_t priority = 0;
};

/** Shared knobs of the generated arrival processes. */
struct ArrivalConfig
{
    /** Mean arrival rate in requests per second. */
    double ratePerSec = 1000.0;
    /** Schedule length in requests. */
    std::uint64_t numRequests = 1000;
    /** RNG seed; same seed => identical schedule. */
    std::uint64_t seed = 1;
    /** Relative weight of each workload in the mix; request
     *  workloadIndex is sampled proportionally. Must be non-empty
     *  with non-negative weights summing > 0. */
    std::vector<double> mixWeights = {1.0};
    /** Optional per-mix-entry priority (parallel to mixWeights);
     *  empty means every request has priority 0. */
    std::vector<std::uint32_t> mixPriorities = {};
};

/** A deterministic request-schedule generator. */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** @return a short label ("poisson", "mmpp", "trace"). */
    virtual const char *name() const = 0;

    /**
     * @return the full schedule, sorted by non-decreasing arrival
     * tick with ids 0..n-1 in order. Pure: every call returns the
     * same schedule.
     */
    virtual std::vector<Request> generate() const = 0;
};

/** Memoryless open-loop traffic: exponential inter-arrival times. */
class PoissonArrivals : public ArrivalProcess
{
  public:
    explicit PoissonArrivals(ArrivalConfig cfg);

    const char *name() const override { return "poisson"; }
    std::vector<Request> generate() const override;

    const ArrivalConfig &config() const { return config_; }

  private:
    ArrivalConfig config_;
};

/**
 * Two-state Markov-modulated Poisson process: the arrival rate
 * alternates between the quiet base rate and base * burstMultiplier,
 * with exponentially distributed dwell times in each state. The mean
 * rate therefore exceeds ratePerSec; what MMPP adds over Poisson is
 * variance — bursts that pile queues up far beyond what the average
 * rate predicts.
 */
class MmppArrivals : public ArrivalProcess
{
  public:
    /** MMPP-specific knobs on top of the shared config. */
    struct Burst
    {
        /** Burst-state rate = ratePerSec * burstMultiplier. */
        double burstMultiplier = 8.0;
        /** Mean dwell in the quiet state, seconds. */
        double meanQuietSec = 0.02;
        /** Mean dwell in the burst state, seconds. */
        double meanBurstSec = 0.005;
    };

    MmppArrivals(ArrivalConfig cfg, Burst burst);

    const char *name() const override { return "mmpp"; }
    std::vector<Request> generate() const override;

    const ArrivalConfig &config() const { return config_; }
    const Burst &burst() const { return burst_; }

  private:
    ArrivalConfig config_;
    Burst burst_;
};

/** Replay of an explicit schedule (a trace). */
class TraceArrivals : public ArrivalProcess
{
  public:
    /**
     * @param trace requests sorted by non-decreasing arrival tick;
     * ids are rewritten to schedule order. fatal() on an unsorted
     * trace.
     */
    explicit TraceArrivals(std::vector<Request> trace);

    const char *name() const override { return "trace"; }
    std::vector<Request> generate() const override { return trace_; }

  private:
    std::vector<Request> trace_;
};

} // namespace serve
} // namespace dramless

#endif // DRAMLESS_SERVE_ARRIVAL_HH
