/**
 * @file
 * A persistent cycle-level accelerator node for co-simulated serving.
 *
 * The Fleet queueing layer (serve/fleet.hh) replays requests against
 * calibrated service-time constants. SimNode is the other end of the
 * fidelity spectrum: one DRAM-less accelerator+PRAM component graph
 * (the same Accelerator, Mcu, PramSubsystem models every bench uses)
 * kept alive across requests, executing each request as a real
 * kernel launch on its own event queue. Service times emerge from
 * the device models — including cross-request contention effects the
 * constant-service-time model cannot express (wear-leveling gap
 * moves, verify retries, scheduler state) — instead of being looked
 * up.
 *
 * A SimNode schedules only on the EventQueue it was constructed
 * with, so it drops directly into a pdes::Cluster: one node per
 * cluster is the conservative-PDES partition of the multi-node
 * serving simulation (sim/pdes.hh).
 */

#ifndef DRAMLESS_SERVE_NODE_SIM_HH
#define DRAMLESS_SERVE_NODE_SIM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "ctrl/pram_subsystem.hh"
#include "sim/event_pool.hh"
#include "sim/event_queue.hh"
#include "systems/backends.hh"
#include "systems/system.hh"
#include "workload/workload_model.hh"

namespace dramless
{
namespace serve
{

/** Counters of one node's serving history. */
struct SimNodeStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    /** Ticks with a request in service. */
    Tick busyTicks = 0;
};

/**
 * One accelerator+PRAM node serving a stream of requests. Requests
 * queue FIFO (optionally priority-ordered) in front of the
 * accelerator; each one runs as a full kernel launch over the
 * request's workload model.
 */
class SimNode
{
  public:
    /** (request id, service start, completion) — fires on the node's
     *  event queue at the completion tick. */
    using Completion =
        std::function<void(std::uint64_t, Tick, Tick)>;

    /**
     * @param eq the node's private event queue (its cluster's queue
     *        under PDES)
     * @param opts system knobs (PEs, scheduler/geometry overrides,
     *        reliability, coalescing); the node is always the
     *        DRAM-less organization
     * @param mix workload models requests index into
     * @param priority_scheduling pop the highest-priority waiting
     *        request first (FIFO within a level) instead of FIFO
     */
    SimNode(EventQueue &eq, const systems::SystemOptions &opts,
            std::vector<std::shared_ptr<const workload::WorkloadModel>>
                mix,
            bool priority_scheduling, std::string name);
    ~SimNode();

    /** Register the completion callback. */
    void setCompletion(Completion cb) { completion_ = std::move(cb); }

    /**
     * Accept a request naming mix entry @p mix_index at the current
     * tick (call from an event at the request's node-arrival time).
     * Starts service immediately when the accelerator is idle.
     */
    void submit(std::uint64_t id, std::uint32_t mix_index,
                std::uint32_t priority);

    /** @return requests waiting plus in service. */
    std::size_t occupancy() const
    {
        return waiting_.size() + (inService_ ? 1 : 0);
    }

    /** @return tick at which the PRAM subsystem finished booting. */
    Tick storageReady() const { return storageReady_; }

    const SimNodeStats &nodeStats() const { return stats_; }
    const std::string &name() const { return name_; }

  private:
    struct Queued
    {
        std::uint64_t id;
        std::uint32_t mixIndex;
        std::uint32_t priority;
    };

    /** Start the next waiting request when the accelerator is idle. */
    void tryLaunch();

    EventQueue &eventq_;
    systems::SystemOptions opts_;
    std::vector<std::shared_ptr<const workload::WorkloadModel>> mix_;
    bool priorityScheduling_;
    std::string name_;

    std::unique_ptr<ctrl::PramSubsystem> pram_;
    std::unique_ptr<systems::PramBackend> backend_;
    std::unique_ptr<accel::Accelerator> accel_;
    Tick storageReady_ = 0;

    Completion completion_;
    std::deque<Queued> waiting_;
    bool inService_ = false;
    /** Traces of the launch in flight (alive until completion). */
    std::vector<std::unique_ptr<workload::AgentTraceSource>> traces_;
    /** Defers the first launch past PRAM boot. */
    EventPool kick_;
    SimNodeStats stats_;
};

} // namespace serve
} // namespace dramless

#endif // DRAMLESS_SERVE_NODE_SIM_HH
