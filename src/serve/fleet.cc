#include "serve/fleet.hh"

#include <algorithm>
#include <queue>
#include <utility>

#include "sim/logging.hh"

namespace dramless
{
namespace serve
{

const char *
dispatchPolicyName(DispatchPolicy p)
{
    switch (p) {
      case DispatchPolicy::roundRobin:
        return "rr";
      case DispatchPolicy::joinShortestQueue:
        return "jsq";
    }
    panic("unknown dispatch policy");
}

Fleet::Fleet(FleetConfig cfg, std::vector<Tick> service_ticks)
    : config_(cfg), serviceTicks_(std::move(service_ticks))
{
    fatal_if(config_.numNodes == 0, "fleet needs at least one node");
    fatal_if(serviceTicks_.empty(),
             "fleet needs at least one service time");
    for (Tick t : serviceTicks_)
        fatal_if(t == 0, "fleet service times must be positive");
}

namespace
{

/** One node: the request in service plus its bounded wait queue. */
struct NodeState
{
    bool busy = false;
    /** Indices into the schedule, admission order. */
    std::vector<std::size_t> waiting;
};

} // anonymous namespace

ServingResult
Fleet::run(const std::vector<Request> &schedule) const
{
    ServingResult res;
    res.policy = dispatchPolicyName(config_.policy);
    res.numNodes = config_.numNodes;
    res.queueCapacity = config_.queueCapacity;
    res.offered = schedule.size();
    res.queueDepth = stats::TimeSeries(
        "queue_depth", "waiting requests across all node queues");
    res.records.resize(schedule.size());

    std::vector<NodeState> nodes(config_.numNodes);
    // (completion tick, node) — each node serves one request at a
    // time, so the heap never exceeds numNodes entries.
    using Completion = std::pair<Tick, std::uint32_t>;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        completions;
    std::size_t totalWaiting = 0;

    auto startService = [&](std::uint32_t node_idx, std::size_t req,
                            Tick now) {
        const Request &r = schedule[req];
        RequestRecord &rec = res.records[req];
        rec.start = now;
        rec.completion = now + serviceTicks_[r.workloadIndex];
        rec.node = std::int32_t(node_idx);
        nodes[node_idx].busy = true;
        completions.push({rec.completion, node_idx});
    };

    // Next runnable request of a node queue: FIFO, or highest
    // priority first (FIFO within a priority level) when the fleet
    // schedules by priority. Queues are bounded small, so a linear
    // scan beats maintaining an ordered structure.
    auto popWaiting = [&](NodeState &n) {
        std::size_t best = 0;
        if (config_.priorityScheduling) {
            for (std::size_t i = 1; i < n.waiting.size(); ++i) {
                if (schedule[n.waiting[i]].priority >
                    schedule[n.waiting[best]].priority) {
                    best = i;
                }
            }
        }
        std::size_t req = n.waiting[best];
        n.waiting.erase(n.waiting.begin() +
                        std::ptrdiff_t(best));
        --totalWaiting;
        return req;
    };

    auto finishOne = [&]() {
        auto [when, node_idx] = completions.top();
        completions.pop();
        NodeState &n = nodes[node_idx];
        n.busy = false;
        if (!n.waiting.empty())
            startService(node_idx, popWaiting(n), when);
        res.queueDepth.record(when, double(totalWaiting));
    };

    auto hasRoom = [&](const NodeState &n) {
        return !n.busy || n.waiting.size() < config_.queueCapacity;
    };

    std::uint32_t rrNext = 0;
    Tick prevArrival = 0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const Request &r = schedule[i];
        fatal_if(r.arrival < prevArrival,
                 "request schedule not sorted at index %zu", i);
        fatal_if(r.workloadIndex >= serviceTicks_.size(),
                 "request %zu names workload %u outside the "
                 "service-time table (%zu entries)",
                 i, r.workloadIndex, serviceTicks_.size());
        prevArrival = r.arrival;

        // A completion at exactly the arrival tick frees its slot
        // before admission is decided.
        while (!completions.empty() &&
               completions.top().first <= r.arrival) {
            finishOne();
        }

        RequestRecord &rec = res.records[i];
        rec.id = r.id;
        rec.workloadIndex = r.workloadIndex;
        rec.priority = r.priority;
        rec.arrival = r.arrival;
        rec.dispatch = r.arrival;

        std::int32_t pick = -1;
        if (config_.policy == DispatchPolicy::roundRobin) {
            for (std::uint32_t k = 0; k < config_.numNodes; ++k) {
                std::uint32_t cand =
                    (rrNext + k) % config_.numNodes;
                if (hasRoom(nodes[cand])) {
                    pick = std::int32_t(cand);
                    rrNext = (cand + 1) % config_.numNodes;
                    break;
                }
            }
        } else {
            // JSQ: fewest in flight + waiting; a full shortest
            // queue means every queue is full.
            std::size_t best_occ = 0;
            for (std::uint32_t c = 0; c < config_.numNodes; ++c) {
                std::size_t occ = nodes[c].waiting.size() +
                                  (nodes[c].busy ? 1 : 0);
                if (pick < 0 || occ < best_occ) {
                    pick = std::int32_t(c);
                    best_occ = occ;
                }
            }
            if (!hasRoom(nodes[std::size_t(pick)]))
                pick = -1;
        }

        if (pick < 0) {
            rec.rejected = true;
            // Keep the remaining timestamps at the arrival tick so
            // the latency accessors stay benign on rejected rows.
            rec.start = r.arrival;
            rec.completion = r.arrival;
        } else {
            NodeState &n = nodes[std::size_t(pick)];
            if (!n.busy) {
                startService(std::uint32_t(pick), i, r.arrival);
            } else {
                n.waiting.push_back(i);
                ++totalWaiting;
            }
        }
        res.queueDepth.record(r.arrival, double(totalWaiting));
    }
    while (!completions.empty())
        finishOne();

    rollUpServingResult(res);
    return res;
}

void
rollUpServingResult(ServingResult &res)
{
    res.offered = res.records.size();
    res.completed = 0;
    res.rejected = 0;
    res.lastCompletion = 0;
    std::vector<double> queue_us, e2e_us;
    queue_us.reserve(res.records.size());
    e2e_us.reserve(res.records.size());
    for (const RequestRecord &rec : res.records) {
        if (rec.rejected) {
            ++res.rejected;
            continue;
        }
        ++res.completed;
        res.lastCompletion =
            std::max(res.lastCompletion, rec.completion);
        queue_us.push_back(toUs(rec.queueingTicks()));
        e2e_us.push_back(toUs(rec.endToEndTicks()));
    }
    if (!res.records.empty())
        res.lastArrival = res.records.back().arrival;
    if (res.offered > 0 && res.lastArrival > 0) {
        res.offeredRatePerSec =
            double(res.offered) / toSec(res.lastArrival);
    }
    if (res.completed > 0 && res.lastCompletion > 0) {
        res.goodputPerSec =
            double(res.completed) / toSec(res.lastCompletion);
    }

    auto buildHist = [](const char *hist_name, const char *desc,
                        const std::vector<double> &vals) {
        double hi = 1.0;
        for (double v : vals)
            hi = std::max(hi, v);
        stats::Histogram h(hist_name, 0.0, hi, 256, desc);
        for (double v : vals)
            h.sample(v);
        return h;
    };
    res.queueLatencyUs = buildHist(
        "queue_latency_us", "time waiting in node queues", queue_us);
    res.e2eLatencyUs = buildHist(
        "e2e_latency_us", "arrival-to-completion latency", e2e_us);

    res.p50QueueUs = stats::percentileExact(queue_us, 0.50);
    res.p99QueueUs = stats::percentileExact(queue_us, 0.99);
    res.p999QueueUs = stats::percentileExact(queue_us, 0.999);
    res.p50E2eUs = stats::percentileExact(e2e_us, 0.50);
    res.p99E2eUs = stats::percentileExact(e2e_us, 0.99);
    res.p999E2eUs = stats::percentileExact(e2e_us, 0.999);
}

void
ServingResult::writeJson(json::JsonWriter &w,
                         std::size_t series_points,
                         bool with_records) const
{
    w.beginObject();
    w.keyValue("system", system);
    w.keyValue("arrival", arrival);
    w.keyValue("policy", policy);
    w.keyValue("num_nodes", numNodes);
    w.keyValue("queue_capacity", queueCapacity);
    w.keyValue("offered", offered);
    w.keyValue("completed", completed);
    w.keyValue("rejected", rejected);
    w.keyValue("completion_ratio", completionRatio());
    w.keyValue("last_arrival_ticks", lastArrival);
    w.keyValue("last_completion_ticks", lastCompletion);
    w.keyValue("offered_rate_rps", offeredRatePerSec);
    w.keyValue("goodput_rps", goodputPerSec);

    w.key("latency_us").beginObject();
    w.keyValue("p50_queue", p50QueueUs);
    w.keyValue("p99_queue", p99QueueUs);
    w.keyValue("p999_queue", p999QueueUs);
    w.keyValue("p50_e2e", p50E2eUs);
    w.keyValue("p99_e2e", p99E2eUs);
    w.keyValue("p999_e2e", p999E2eUs);
    w.endObject();

    w.key("queue_latency_us");
    json::write(w, queueLatencyUs);
    w.key("e2e_latency_us");
    json::write(w, e2eLatencyUs);
    w.key("queue_depth");
    json::write(w, queueDepth, series_points);

    if (with_records) {
        w.key("requests").beginArray();
        for (const RequestRecord &r : records) {
            w.beginObject();
            w.keyValue("id", r.id);
            w.keyValue("workload_index", r.workloadIndex);
            w.keyValue("priority", r.priority);
            w.keyValue("node", std::int64_t(r.node));
            w.keyValue("rejected", r.rejected);
            w.keyValue("arrival", r.arrival);
            w.keyValue("dispatch", r.dispatch);
            w.keyValue("start", r.start);
            w.keyValue("completion", r.completion);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

} // namespace serve
} // namespace dramless
