/**
 * @file
 * Request-level serving: a fleet of accelerator+PRAM nodes behind an
 * admission/dispatch layer.
 *
 * The paper (and every bench binary before this layer) runs one
 * workload to completion per system instance. A production fleet
 * instead serves an open-loop arrival stream, and the interesting
 * metrics — queueing delay, tail latency, the saturation knee —
 * exist only at that level. Fleet is a deterministic discrete-event
 * queueing simulation over a request schedule: N identical nodes,
 * each a bounded FIFO (optionally priority-ordered) queue in front
 * of one server whose per-workload service time comes from a probe
 * run of the underlying cycle-level system model. Keeping the
 * request level separate from the cycle level makes a load sweep
 * cheap: the expensive system simulation runs once per (node
 * organization, workload) to calibrate service times, then the
 * queueing layer replays millions of requests in microseconds.
 */

#ifndef DRAMLESS_SERVE_FLEET_HH
#define DRAMLESS_SERVE_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/arrival.hh"
#include "sim/json.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace serve
{

/** How an admitted request picks its node. */
enum class DispatchPolicy
{
    /** Rotate over nodes, skipping full queues. */
    roundRobin,
    /** Join the node with the fewest requests in flight + waiting
     *  (ties broken toward the lowest node id). */
    joinShortestQueue,
};

/** @return a short label of @p p ("rr", "jsq"). */
const char *dispatchPolicyName(DispatchPolicy p);

/** Fleet shape and admission bounds. */
struct FleetConfig
{
    /** Independent accelerator+PRAM system instances. */
    std::uint32_t numNodes = 4;
    /** Waiting slots per node (excludes the request in service);
     *  arrivals beyond the bound are rejected. */
    std::uint32_t queueCapacity = 16;
    DispatchPolicy policy = DispatchPolicy::joinShortestQueue;
    /** Order node queues by Request::priority (FIFO within equal
     *  priority) instead of pure FIFO. */
    bool priorityScheduling = false;
};

/** The four timestamps (plus outcome) of one request's life. */
struct RequestRecord
{
    std::uint64_t id = 0;
    std::uint32_t workloadIndex = 0;
    std::uint32_t priority = 0;
    /** Serving node, -1 when rejected. */
    std::int32_t node = -1;
    bool rejected = false;
    /** Generated arrival tick. */
    Tick arrival = 0;
    /** Admission to a node queue (equals arrival in this model). */
    Tick dispatch = 0;
    /** Service start. */
    Tick start = 0;
    /** Service completion. */
    Tick completion = 0;

    /** @return time spent waiting in the node queue. */
    Tick queueingTicks() const { return start - dispatch; }
    /** @return arrival-to-completion latency. */
    Tick endToEndTicks() const { return completion - arrival; }
};

/** Roll-up of one serving run (one fleet, one schedule). */
struct ServingResult
{
    /** Node organization label (Table I). */
    std::string system;
    /** Arrival process label. */
    std::string arrival;
    /** Dispatch policy label. */
    std::string policy;
    std::uint32_t numNodes = 0;
    std::uint32_t queueCapacity = 0;

    /** Per-request timestamps in schedule order. */
    std::vector<RequestRecord> records;

    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    /** Last arrival tick of the schedule. */
    Tick lastArrival = 0;
    /** Last service completion (the drain point). */
    Tick lastCompletion = 0;

    /** Offered load measured over the arrival span, requests/s. */
    double offeredRatePerSec = 0.0;
    /** Completed requests over the full span including the drain
     *  tail, requests/s. */
    double goodputPerSec = 0.0;

    /** Queueing / end-to-end latency distributions (microseconds). */
    stats::Histogram queueLatencyUs;
    stats::Histogram e2eLatencyUs;
    /** Total waiting requests across all node queues over time. */
    stats::TimeSeries queueDepth;

    /** @name Exact (sorted-sample) latency percentiles, us.
     *  NaN when no request completed. @{ */
    double p50QueueUs = 0.0, p99QueueUs = 0.0, p999QueueUs = 0.0;
    double p50E2eUs = 0.0, p99E2eUs = 0.0, p999E2eUs = 0.0;
    /** @} */

    /** @return completed / offered (0 when nothing was offered). */
    double
    completionRatio() const
    {
        return offered ? double(completed) / double(offered) : 0.0;
    }

    /**
     * Serialize as one JSON object. @p series_points caps the
     * queue-depth series (0 = full); @p with_records additionally
     * emits the full per-request timestamp table (off by default —
     * it dwarfs the aggregates at production request counts).
     */
    void writeJson(json::JsonWriter &w, std::size_t series_points,
                   bool with_records = false) const;
};

/**
 * Fill the aggregate fields of @p res — completed/rejected counts,
 * arrival/completion span, offered/goodput rates, latency histograms
 * and exact percentiles — from its per-request @c records (which must
 * be fully populated, in schedule order). Shared by every serving
 * backend (analytic Fleet, co-simulated CoSimFleet) so the roll-up
 * semantics cannot drift apart.
 */
void rollUpServingResult(ServingResult &res);

/**
 * A fleet of identical nodes serving one request schedule.
 *
 * Service times are a per-workload-index table (ticks), calibrated
 * by running each workload of the mix once on the node's system
 * organization. run() is const and deterministic: the same schedule
 * and table produce bit-identical results on every call.
 */
class Fleet
{
  public:
    /**
     * @param cfg fleet shape
     * @param service_ticks service time of mix entry i on one node;
     *        every entry must be positive
     */
    Fleet(FleetConfig cfg, std::vector<Tick> service_ticks);

    const FleetConfig &config() const { return config_; }
    const std::vector<Tick> &serviceTicks() const
    {
        return serviceTicks_;
    }

    /**
     * Serve @p schedule (sorted by arrival) to completion — every
     * admitted request runs to its service end (open-loop arrivals,
     * drained tail) — and roll up the metrics.
     */
    ServingResult run(const std::vector<Request> &schedule) const;

  private:
    FleetConfig config_;
    std::vector<Tick> serviceTicks_;
};

} // namespace serve
} // namespace dramless

#endif // DRAMLESS_SERVE_FLEET_HH
