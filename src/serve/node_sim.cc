#include "serve/node_sim.hh"

#include <utility>

#include "sim/logging.hh"
#include "workload/coalesce.hh"

namespace dramless
{
namespace serve
{

namespace
{

std::uint64_t
alignRegion(std::uint64_t v)
{
    // Same rule as IntegratedSystem: regions align to 4 KiB so
    // distinct regions never share an L2 block.
    return (v + 4095) / 4096 * 4096;
}

} // anonymous namespace

SimNode::SimNode(
    EventQueue &eq, const systems::SystemOptions &opts,
    std::vector<std::shared_ptr<const workload::WorkloadModel>> mix,
    bool priority_scheduling, std::string name)
    : eventq_(eq), opts_(opts), mix_(std::move(mix)),
      priorityScheduling_(priority_scheduling),
      name_(std::move(name)), kick_(eq, name_ + ".kick")
{
    fatal_if(mix_.empty(), "%s: empty workload mix", name_.c_str());
    fatal_if(opts_.numPes < 2, "%s: need a server PE plus agents",
             name_.c_str());
    for (const auto &m : mix_)
        fatal_if(!m, "%s: null workload model in mix", name_.c_str());

    ctrl::SubsystemConfig cfg;
    cfg.scheduler = opts_.schedulerOverride
                        ? *opts_.schedulerOverride
                        : ctrl::SchedulerConfig::finalConfig();
    if (opts_.geometryOverride)
        cfg.geometry = *opts_.geometryOverride;
    cfg.functional = opts_.functional;
    cfg.wearLeveling = opts_.wearLeveling;
    cfg.gapMovePeriod = opts_.gapMovePeriod;
    cfg.reliability = opts_.reliability;
    pram_ = std::make_unique<ctrl::PramSubsystem>(eventq_, cfg,
                                                  name_ + ".pram");
    storageReady_ = pram_->initialize();
    backend_ = std::make_unique<systems::PramBackend>(*pram_);

    accel::AcceleratorConfig acfg;
    acfg.numPes = opts_.numPes;
    acfg.sampleInterval = opts_.sampleInterval;
    accel_ = std::make_unique<accel::Accelerator>(eventq_, acfg,
                                                  name_ + ".accel");
    accel_->attachBackend(backend_.get());
}

SimNode::~SimNode() = default;

void
SimNode::submit(std::uint64_t id, std::uint32_t mix_index,
                std::uint32_t priority)
{
    fatal_if(mix_index >= mix_.size(),
             "%s: request %llu names mix entry %u of %zu",
             name_.c_str(), (unsigned long long)id, mix_index,
             mix_.size());
    stats_.submitted++;
    waiting_.push_back(Queued{id, mix_index, priority});
    tryLaunch();
}

void
SimNode::tryLaunch()
{
    if (inService_ || waiting_.empty())
        return;
    Tick now = eventq_.curTick();
    if (now < storageReady_) {
        // The PRAM initializer (boot-up process) is still running:
        // hold the queue until the subsystem accepts traffic.
        kick_.schedule(storageReady_, [this] { tryLaunch(); });
        return;
    }

    // Same pick rule as Fleet::popWaiting: FIFO, or highest priority
    // first with FIFO within a level.
    std::size_t best = 0;
    if (priorityScheduling_) {
        for (std::size_t i = 1; i < waiting_.size(); ++i) {
            if (waiting_[i].priority > waiting_[best].priority)
                best = i;
        }
    }
    Queued q = waiting_[best];
    waiting_.erase(waiting_.begin() + std::ptrdiff_t(best));
    inService_ = true;

    const workload::WorkloadModel &model = *mix_[q.mixIndex];
    const workload::WorkloadSpec &spec = model.spec();
    const std::uint32_t agents = opts_.numPes - 1;

    // Address map mirrors IntegratedSystem::doRun. Every request
    // reuses the same address space, as the paper's accelerator
    // reuses its PRAM working set between kernels, so agent caches
    // holding the previous request's lines must be dropped.
    const std::uint64_t input_base = 0;
    const std::uint64_t output_base = alignRegion(spec.inputBytes);
    const std::uint64_t image_base =
        alignRegion(output_base + spec.outputBytes + (1 << 20));
    accel_->invalidateAgentCaches();

    traces_.clear();
    accel::KernelLaunch launch;
    launch.imageBytes = opts_.imageBytes;
    launch.imageBase = image_base;
    for (std::uint32_t i = 0; i < agents; ++i) {
        workload::AgentTraceParams tp;
        tp.inputBase = input_base;
        tp.outputBase = output_base;
        tp.agentIndex = i;
        tp.numAgents = agents;
        tp.seed = opts_.seed;
        traces_.push_back(workload::wrapCoalescing(
            model.makeAgentTrace(tp), opts_.coalesceBytes));
        launch.agentTraces.push_back(traces_.back().get());
        launch.outputRegions.push_back(
            traces_.back()->outputRegion());
    }

    accel_->launch(launch, [this, id = q.id, start = now](Tick t) {
        inService_ = false;
        stats_.completed++;
        stats_.busyTicks += t - start;
        if (completion_)
            completion_(id, start, t);
        // Not a direct tryLaunch(): the accelerator is still inside
        // this callback's std::function, and a synchronous re-launch
        // would reassign it mid-call. A same-tick event starts the
        // next request after the callback unwinds.
        if (!waiting_.empty())
            kick_.schedule(t, [this] { tryLaunch(); });
    });
}

} // namespace serve
} // namespace dramless
