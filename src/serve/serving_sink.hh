/**
 * @file
 * Structured export of serving-layer results.
 *
 * The ServingResult counterpart of runner::ResultSink: collects the
 * per-(organization, arrival-rate) serving runs plus derived metrics
 * and labels, and renders the collection as one JSON document or a
 * CSV scalar table through the same DRAMLESS_OUT_JSON /
 * DRAMLESS_OUT_CSV environment knobs every bench binary honors.
 */

#ifndef DRAMLESS_SERVE_SERVING_SINK_HH
#define DRAMLESS_SERVE_SERVING_SINK_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "serve/fleet.hh"

namespace dramless
{
namespace serve
{

/** Collects serving runs and derived metrics for export. */
class ServingSink
{
  public:
    /**
     * @param name experiment name (e.g. "fig_serving")
     * @param description one-line human description
     */
    explicit ServingSink(std::string name,
                         std::string description = "");

    /** Append one serving run. */
    void add(const ServingResult &r) { runs_.push_back(r); }

    /** Record a derived numeric metric (insertion order kept). */
    void metric(const std::string &key, double value);

    /** Record a descriptive string label (insertion order kept). */
    void label(const std::string &key, const std::string &value);

    /** @return the collected runs in insertion order. */
    const std::vector<ServingResult> &runs() const { return runs_; }

    /** Cap on queue-depth series points per run in the JSON export;
     *  0 keeps full series. */
    void setSeriesPoints(std::size_t n) { seriesPoints_ = n; }

    /** Emit the full per-request timestamp tables in the JSON. */
    void setIncludeRecords(bool on) { includeRecords_ = on; }

    /**
     * Write the whole collection as one JSON document:
     * {"experiment","description","labels","metrics","runs"}.
     */
    void writeJson(std::ostream &os) const;

    /** Write the runs as CSV (scalar aggregates, one row per run). */
    void writeCsv(std::ostream &os) const;

    /** Honor DRAMLESS_OUT_JSON / DRAMLESS_OUT_CSV (via
     *  runner::exportFromEnv). */
    void exportFromEnv() const;

  private:
    std::string name_;
    std::string description_;
    std::vector<ServingResult> runs_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, std::string>> labels_;
    std::size_t seriesPoints_ = 64;
    bool includeRecords_ = false;
};

} // namespace serve
} // namespace dramless

#endif // DRAMLESS_SERVE_SERVING_SINK_HH
