/**
 * @file
 * PCIe link occupancy model.
 *
 * Both the conventional systems (host <-> SSD, host <-> accelerator)
 * and the peer-to-peer DMA path (SSD <-> accelerator) cross PCIe; the
 * link is a serial resource with a per-transaction latency and a
 * sustained bandwidth.
 */

#ifndef DRAMLESS_HOST_PCIE_HH
#define DRAMLESS_HOST_PCIE_HH

#include <algorithm>
#include <cstdint>
#include <string>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace dramless
{
namespace host
{

/** PCIe link parameters (Gen3 x8 effective). */
struct PcieConfig
{
    /** Sustained payload bandwidth. */
    double bytesPerSec = 7.9e9;
    /** DMA descriptor / doorbell / completion latency per transfer. */
    Tick perTransferLatency = fromUs(1.0);
};

/** Link counters. */
struct PcieStats
{
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    Tick busyTicks = 0;
};

/** One PCIe link as a serial resource. */
class PcieLink
{
  public:
    PcieLink(EventQueue &eq, const PcieConfig &config,
             std::string name)
        : eventq_(eq), config_(config), name_(std::move(name))
    {}

    /**
     * Transfer @p bytes starting no earlier than @p earliest.
     * @return completion tick.
     */
    Tick
    transfer(std::uint64_t bytes, Tick earliest = 0)
    {
        panic_if(bytes == 0, "%s: empty transfer", name_.c_str());
        Tick start = std::max({eventq_.curTick(), earliest,
                               busyUntil_});
        Tick dur = config_.perTransferLatency +
                   serializationTicks(bytes, config_.bytesPerSec);
        busyUntil_ = start + dur;
        stats_.busyTicks += dur;
        ++stats_.transfers;
        stats_.bytes += bytes;
        if (auto *t = trace::current()) {
            t->complete(trace::catHost, name_, "pcie.transfer", start,
                        busyUntil_);
            Tick req_at = std::max(eventq_.curTick(), earliest);
            if (start > req_at) {
                t->complete(trace::catHost, name_, "pcie.backlog",
                            req_at, start);
            }
            t->counter(trace::catHost, name_, "pcie.bytes", start,
                       double(stats_.bytes));
        }
        return busyUntil_;
    }

    /** @return tick from which the link is free. */
    Tick busyUntil() const { return busyUntil_; }

    const PcieStats &pcieStats() const { return stats_; }
    const PcieConfig &config() const { return config_; }

  private:
    EventQueue &eventq_;
    PcieConfig config_;
    std::string name_;
    Tick busyUntil_ = 0;
    PcieStats stats_;
};

} // namespace host
} // namespace dramless

#endif // DRAMLESS_HOST_PCIE_HH
