/**
 * @file
 * Host-side storage software stack cost model (Figure 5a).
 *
 * In conventional accelerated systems the CPU shepherds every byte
 * between the SSD and the accelerator: VFS/syscall crossings, block-
 * layer request handling, redundant copies between the page cache,
 * user buffers and pinned DMA buffers, and object deserialization.
 * DRAM-less eliminates this path entirely; the model quantifies what
 * is being eliminated.
 */

#ifndef DRAMLESS_HOST_SOFTWARE_STACK_HH
#define DRAMLESS_HOST_SOFTWARE_STACK_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace host
{

/** Software stack cost parameters. */
struct StackConfig
{
    /** User/kernel mode switch plus VFS dispatch per system call. */
    Tick syscallOverhead = fromUs(1.5);
    /** Block layer + NVMe driver handling per I/O request. */
    Tick blockLayerPerRequest = fromUs(2.0);
    /** Bytes moved per filesystem I/O request. */
    std::uint32_t ioRequestBytes = 128 * 1024;
    /** Host DRAM copy bandwidth (one copy pass). */
    double memcpyBytesPerSec = 20e9;
    /** Copies on the read path: page cache -> user buffer -> pinned
     *  DMA buffer. */
    std::uint32_t copiesOnPath = 2;
    /** File-to-object deserialization throughput. */
    double deserializeBytesPerSec = 3e9;
    /** Driver/ioctl work to arm one accelerator DMA. */
    Tick dmaSetup = fromUs(5.0);

    /** @return the conventional full-stack configuration. */
    static StackConfig conventional() { return StackConfig{}; }

    /**
     * @return the peer-to-peer DMA configuration (Heterodirect):
     * data moves SSD->accelerator directly, so the host performs no
     * page-cache copies and no deserialization, only control-plane
     * work per request.
     */
    static StackConfig
    peerToPeer()
    {
        StackConfig cfg;
        cfg.copiesOnPath = 0;
        cfg.deserializeBytesPerSec = 0.0; // skipped entirely
        cfg.syscallOverhead = fromUs(0.8);
        cfg.blockLayerPerRequest = fromUs(1.0);
        return cfg;
    }
};

/** Accumulated host activity (for time and energy accounting). */
struct StackStats
{
    std::uint64_t syscalls = 0;
    std::uint64_t ioRequests = 0;
    std::uint64_t bytesMoved = 0;
    /** Host CPU busy time spent in the stack. */
    Tick cpuBusyTicks = 0;
};

/** The host software stack: per-transfer CPU cost calculator. */
class SoftwareStack
{
  public:
    SoftwareStack(const StackConfig &config, std::string name)
        : config_(config), name_(std::move(name))
    {}

    /**
     * CPU time to shepherd @p bytes from the SSD into a buffer the
     * accelerator can DMA from (excluding the device and PCIe time).
     */
    Tick
    readPathCost(std::uint64_t bytes)
    {
        return transferCost(bytes, true);
    }

    /** CPU time to push @p bytes of results back to the SSD. */
    Tick
    writePathCost(std::uint64_t bytes)
    {
        return transferCost(bytes, false);
    }

    /** CPU time to arm one DMA transfer to/from the accelerator. */
    Tick
    dmaSetupCost()
    {
        stats_.cpuBusyTicks += config_.dmaSetup;
        ++stats_.syscalls;
        return config_.dmaSetup;
    }

    const StackStats &stackStats() const { return stats_; }
    const StackConfig &config() const { return config_; }

  private:
    Tick
    transferCost(std::uint64_t bytes, bool deserialize)
    {
        std::uint64_t requests =
            (bytes + config_.ioRequestBytes - 1) /
            config_.ioRequestBytes;
        Tick cost = requests * (config_.syscallOverhead +
                                config_.blockLayerPerRequest);
        cost += Tick(double(bytes) * config_.copiesOnPath /
                     config_.memcpyBytesPerSec * 1e12);
        if (deserialize && config_.deserializeBytesPerSec > 0.0) {
            cost += Tick(double(bytes) /
                         config_.deserializeBytesPerSec * 1e12);
        }
        stats_.syscalls += requests;
        stats_.ioRequests += requests;
        stats_.bytesMoved += bytes;
        stats_.cpuBusyTicks += cost;
        return cost;
    }

    StackConfig config_;
    std::string name_;
    StackStats stats_;
};

} // namespace host
} // namespace dramless

#endif // DRAMLESS_HOST_SOFTWARE_STACK_HH
