#include "workload/workload_model.hh"

#include "workload/trace_gen.hh"

namespace dramless
{
namespace workload
{

std::unique_ptr<AgentTraceSource>
PolybenchModel::makeAgentTrace(const AgentTraceParams &p) const
{
    TraceGenConfig tc;
    tc.spec = spec_;
    tc.inputBase = p.inputBase;
    tc.outputBase = p.outputBase;
    tc.agentIndex = p.agentIndex;
    tc.numAgents = p.numAgents;
    tc.accessBytes = p.accessBytes;
    tc.seed = p.seed;
    return std::make_unique<PolybenchTraceSource>(tc);
}

std::shared_ptr<const WorkloadModel>
modelFor(const WorkloadSpec &spec)
{
    return std::make_shared<PolybenchModel>(spec);
}

} // namespace workload
} // namespace dramless
