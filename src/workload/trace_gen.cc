#include "workload/trace_gen.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dramless
{
namespace workload
{

PolybenchTraceSource::PolybenchTraceSource(
    const TraceGenConfig &config)
    : cfg_(config), rng_(config.seed + config.agentIndex * 7919)
{
    fatal_if(cfg_.numAgents == 0 ||
                 cfg_.agentIndex >= cfg_.numAgents,
             "bad agent slice");
    fatal_if(cfg_.accessBytes == 0 || cfg_.accessBytes % 32 != 0,
             "access size must be a positive multiple of 32");

    const std::uint32_t unit = cfg_.accessBytes;
    // Partition whole access units across agents, spreading the
    // remainder over the first agents so the union of slices covers
    // every full unit exactly once (flooring each slice used to drop
    // up to numAgents-1 units at the partition tail). Sub-unit
    // residue is unaddressable at PE granularity and stays dropped.
    auto slice = [&](std::uint64_t total_bytes, std::uint64_t &base,
                     std::uint64_t &size) {
        std::uint64_t units = total_bytes / unit;
        std::uint64_t per = units / cfg_.numAgents;
        std::uint64_t extra = units % cfg_.numAgents;
        std::uint64_t first =
            cfg_.agentIndex * per +
            std::min<std::uint64_t>(cfg_.agentIndex, extra);
        std::uint64_t count = per + (cfg_.agentIndex < extra ? 1 : 0);
        if (count == 0) {
            // Degenerate volume: alias the last unit so every agent
            // still has work (and never reads past the region).
            count = 1;
            first = units > 0 ? units - 1 : 0;
        }
        base = first * unit;
        size = count * unit;
    };
    std::uint64_t in_off = 0, out_off = 0;
    slice(cfg_.spec.inputBytes, in_off, inSize_);
    slice(cfg_.spec.outputBytes, out_off, outSize_);
    inBase_ = cfg_.inputBase + in_off;
    std::uint64_t out_base = cfg_.outputBase != 0
                                 ? cfg_.outputBase
                                 : cfg_.inputBase +
                                       cfg_.spec.inputBytes;
    outBase_ = out_base + out_off;
}

void
PolybenchTraceSource::rewind()
{
    loadOffset_ = 0;
    storeOffset_ = 0;
    storeDebt_ = 0.0;
    flushed_ = false;
    staged_.clear();
    rng_ = Random(cfg_.seed + cfg_.agentIndex * 7919);
}

std::uint64_t
PolybenchTraceSource::loadAddr(std::uint64_t k)
{
    const std::uint32_t unit = cfg_.accessBytes;
    const std::uint64_t elements = inSize_ / unit;
    switch (cfg_.spec.pattern) {
      case Pattern::streaming:
      case Pattern::stencil:
        return inBase_ + k * unit;
      case Pattern::strided: {
        // Column-major walk: consecutive elements sit one row apart,
        // so every access opens a new L2 block until the column set
        // wraps — the request mix interleaving thrives on.
        std::uint64_t row_bytes =
            std::min<std::uint64_t>(cfg_.rowBytes, inSize_);
        std::uint64_t rows = std::max<std::uint64_t>(
            1, inSize_ / row_bytes);
        std::uint64_t cols = row_bytes / unit;
        std::uint64_t row = k % rows;
        std::uint64_t col = (k / rows) % cols;
        return inBase_ + row * row_bytes + col * unit;
      }
      case Pattern::randomAccess:
        return inBase_ + rng_.below(elements) * unit;
      case Pattern::triangular: {
        // Factorization-style: half the accesses re-read a recent
        // 64 KiB window (high locality), half stream forward.
        if (k > 0 && rng_.chance(0.5)) {
            std::uint64_t window = std::min<std::uint64_t>(
                64 * 1024, k * unit);
            std::uint64_t back = rng_.below(window / unit + 1);
            std::uint64_t pos = k * unit - back * unit;
            return inBase_ + pos;
        }
        return inBase_ + k * unit;
      }
    }
    panic("unreachable pattern");
}

void
PolybenchTraceSource::refill()
{
    const std::uint32_t unit = cfg_.accessBytes;
    if (loadOffset_ >= inSize_) {
        // Input exhausted: flush the remaining output volume.
        if (!flushed_) {
            while (storeOffset_ < outSize_) {
                staged_.push_back(accel::TraceItem::storeOf(
                    outBase_ + storeOffset_ % outSize_, unit));
                storeOffset_ += unit;
            }
            flushed_ = true;
        }
        return;
    }

    std::uint64_t k = loadOffset_ / unit;
    std::uint32_t loads = 1;
    staged_.push_back(accel::TraceItem::loadOf(loadAddr(k), unit));

    if (cfg_.spec.pattern == Pattern::stencil && (k & 1) == 0) {
        // Neighbourhood rows: usually L2 hits (the row above was
        // streamed recently; the row below warms future elements).
        std::uint64_t addr = inBase_ + k * unit;
        std::uint64_t up = addr >= inBase_ + cfg_.rowBytes
                               ? addr - cfg_.rowBytes
                               : inBase_;
        std::uint64_t down =
            std::min(addr + cfg_.rowBytes,
                     inBase_ + inSize_ - unit);
        staged_.push_back(accel::TraceItem::loadOf(up, unit));
        staged_.push_back(accel::TraceItem::loadOf(down, unit));
        loads = 3;
    }
    loadOffset_ += unit;

    std::uint64_t ops = std::max<std::uint64_t>(
        1, std::uint64_t(cfg_.spec.opsPerByte * double(unit) *
                         double(loads)));
    staged_.push_back(accel::TraceItem::computeOf(ops));

    // Pace stores so store bytes / load bytes == out / in.
    storeDebt_ +=
        double(unit) * double(outSize_) / double(inSize_);
    while (storeDebt_ >= double(unit)) {
        staged_.push_back(accel::TraceItem::storeOf(
            outBase_ + storeOffset_ % outSize_, unit));
        storeOffset_ += unit;
        storeDebt_ -= double(unit);
    }
}

bool
PolybenchTraceSource::next(accel::TraceItem &out)
{
    if (staged_.empty())
        refill();
    if (staged_.empty())
        return false;
    out = staged_.front();
    staged_.pop_front();
    return true;
}

} // namespace workload
} // namespace dramless
