#include "workload/polybench.hh"

#include "sim/logging.hh"

namespace dramless
{
namespace workload
{

namespace
{

constexpr std::uint64_t MiB = 1ull << 20;

/**
 * Characteristics modeled from the paper:
 *  - read-intensive: durbin, dynpro, gemver, trisolv (Section VI-A);
 *  - write-intensive: chol, doitg, lu, seidel (Section VI-B);
 *  - compute-intensive: adi, fdtdap, floyd, lu (Section VI-C);
 *  - memory-intensive / large volume: durbin, dynpro, jaco1D, regd
 *    and jaco2D (Sections VI-A and VI-D);
 *  - trmm benefits most from interleaving (strided reads, Fig. 13);
 *  - adi, floyd, jaco1D see little interleaving benefit because of
 *    overwrite pressure (Fig. 13).
 */
const std::vector<WorkloadSpec> &
table()
{
    static const std::vector<WorkloadSpec> specs = {
        {"adi", Pattern::stencil, WorkloadClass::computeIntensive,
         4 * MiB, 3 * MiB / 2, 10.0},
        {"chol", Pattern::triangular, WorkloadClass::writeIntensive,
         3 * MiB, 3 * MiB / 2, 7.0},
        {"doitg", Pattern::streaming, WorkloadClass::writeIntensive,
         3 * MiB, 5 * MiB / 2, 5.0},
        {"durbin", Pattern::streaming, WorkloadClass::readIntensive,
         6 * MiB, MiB / 4, 2.0},
        {"dynpro", Pattern::randomAccess,
         WorkloadClass::readIntensive, 6 * MiB, MiB / 3, 2.5},
        {"fdtdap", Pattern::stencil, WorkloadClass::computeIntensive,
         4 * MiB, 6 * MiB / 5, 11.0},
        {"floyd", Pattern::randomAccess,
         WorkloadClass::computeIntensive, 4 * MiB, 4 * MiB / 3, 9.0},
        {"gemver", Pattern::strided, WorkloadClass::readIntensive,
         6 * MiB, MiB / 2, 3.0},
        {"jaco1D", Pattern::streaming, WorkloadClass::memoryIntensive,
         8 * MiB, 14 * MiB / 5, 2.0},
        {"jaco2D", Pattern::stencil, WorkloadClass::memoryIntensive,
         8 * MiB, 5 * MiB / 2, 3.0},
        {"lu", Pattern::triangular, WorkloadClass::writeIntensive,
         7 * MiB / 2, 8 * MiB / 5, 8.0},
        {"regd", Pattern::streaming, WorkloadClass::memoryIntensive,
         8 * MiB, MiB, 2.0},
        {"seidel", Pattern::stencil, WorkloadClass::writeIntensive,
         4 * MiB, 2 * MiB, 5.0},
        {"trisolv", Pattern::streaming, WorkloadClass::readIntensive,
         6 * MiB, MiB / 3, 2.0},
        {"trmm", Pattern::strided, WorkloadClass::balanced,
         5 * MiB, MiB, 4.0},
    };
    return specs;
}

} // anonymous namespace

WorkloadSpec
WorkloadSpec::scaled(double factor) const
{
    fatal_if(factor <= 0.0, "workload scale must be positive");
    WorkloadSpec s = *this;
    auto scale = [factor](std::uint64_t v) {
        std::uint64_t scaled = std::uint64_t(double(v) * factor);
        // Keep volumes 32-byte aligned and non-empty.
        scaled = scaled / 32 * 32;
        return scaled < 32 ? 32 : scaled;
    };
    s.inputBytes = scale(s.inputBytes);
    s.outputBytes = scale(s.outputBytes);
    return s;
}

const std::vector<WorkloadSpec> &
Polybench::all()
{
    return table();
}

const WorkloadSpec &
Polybench::byName(const std::string &name)
{
    for (const auto &spec : table()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown Polybench workload '%s'", name.c_str());
}

std::vector<WorkloadSpec>
Polybench::allScaled(double factor)
{
    std::vector<WorkloadSpec> out;
    out.reserve(table().size());
    for (const auto &spec : table())
        out.push_back(spec.scaled(factor));
    return out;
}

const char *
Polybench::patternName(Pattern p)
{
    switch (p) {
      case Pattern::streaming:
        return "streaming";
      case Pattern::strided:
        return "strided";
      case Pattern::stencil:
        return "stencil";
      case Pattern::randomAccess:
        return "random";
      case Pattern::triangular:
        return "triangular";
    }
    return "?";
}

const char *
Polybench::className(WorkloadClass c)
{
    switch (c) {
      case WorkloadClass::readIntensive:
        return "read-intensive";
      case WorkloadClass::writeIntensive:
        return "write-intensive";
      case WorkloadClass::computeIntensive:
        return "compute-intensive";
      case WorkloadClass::memoryIntensive:
        return "memory-intensive";
      case WorkloadClass::balanced:
        return "balanced";
    }
    return "?";
}

} // namespace workload
} // namespace dramless
