/**
 * @file
 * Graph-analytics workload engine.
 *
 * The paper evaluates DRAM-less only on Polybench's regular kernels;
 * irregular, data-dependent access is exactly where PRAM's long
 * writes and partition contention should bite hardest (Dann et al.,
 * arXiv:2010.13619 / 2104.07776). This engine materializes a seeded
 * synthetic graph (R-MAT or uniform) into a CSR image laid out over
 * the simulated address space and emits the access streams of three
 * canonical kernels — BFS (frontier-driven reads, scattered
 * discovery stores), PageRank (neighbour gathers plus rank
 * read-modify-write bursts) and SpMV (row-pointer walks over
 * indices+values) — with per-PE vertex partitioning, behind the same
 * WorkloadModel interface Polybench uses.
 */

#ifndef DRAMLESS_WORKLOAD_GRAPH_HH
#define DRAMLESS_WORKLOAD_GRAPH_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload_model.hh"

namespace dramless
{
namespace workload
{

/** Synthetic graph generator parameters. */
struct GraphConfig
{
    /** Vertex count (any value >= 2; no power-of-two requirement). */
    std::uint64_t numVertices = 32768;
    /** Average out-degree: edges = numVertices * edgeFactor. */
    double edgeFactor = 8.0;
    /** R-MAT (skewed, Graph500-style) vs uniform edge endpoints. */
    bool rmat = true;
    /** R-MAT quadrant probabilities (d = 1 - a - b - c). */
    double a = 0.57, b = 0.19, c = 0.19;
    std::uint64_t seed = 42;
};

/**
 * A materialized directed graph in CSR form plus the precomputed
 * BFS tree the trace sources replay. Immutable after construction,
 * so one instance is safely shared across agents and sweep jobs.
 */
class GraphModel
{
  public:
    explicit GraphModel(const GraphConfig &cfg);

    std::uint64_t numVertices() const { return config_.numVertices; }
    std::uint64_t numEdges() const { return colIdx_.size(); }
    const GraphConfig &config() const { return config_; }

    /** CSR row pointers (numVertices + 1 entries). */
    const std::vector<std::uint64_t> &rowPtr() const
    {
        return rowPtr_;
    }
    /** CSR column indices (edge targets). */
    const std::vector<std::uint32_t> &colIdx() const
    {
        return colIdx_;
    }

    /** BFS depth from vertex 0 (UINT32_MAX when unreached). */
    const std::vector<std::uint32_t> &bfsDepth() const
    {
        return bfsDepth_;
    }
    /** BFS parent of each reached vertex (self for the root,
     *  UINT32_MAX when unreached). */
    const std::vector<std::uint32_t> &bfsParent() const
    {
        return bfsParent_;
    }
    /** Deepest BFS level with any vertex. */
    std::uint32_t bfsMaxDepth() const { return bfsMaxDepth_; }
    /** Vertices reached by the BFS. */
    std::uint64_t bfsReached() const { return bfsReached_; }

    /** Highest out-degree (R-MAT skew diagnostics). */
    std::uint64_t maxOutDegree() const;

  private:
    GraphConfig config_;
    std::vector<std::uint64_t> rowPtr_;
    std::vector<std::uint32_t> colIdx_;
    std::vector<std::uint32_t> bfsDepth_;
    std::vector<std::uint32_t> bfsParent_;
    std::uint32_t bfsMaxDepth_ = 0;
    std::uint64_t bfsReached_ = 0;
};

/** The three modeled graph kernels. */
enum class GraphKernel
{
    bfs,
    pagerank,
    spmv,
};

/** @return a short lowercase label of @p k. */
const char *graphKernelName(GraphKernel k);

/** One graph workload: a kernel over a generated graph. */
struct GraphWorkloadConfig
{
    GraphKernel kernel = GraphKernel::bfs;
    GraphConfig graph;
    /** Sweep iterations (PageRank power iterations; BFS and SpMV
     *  run once regardless). */
    std::uint32_t iterations = 1;
};

/**
 * CSR image layout over the simulated address space. All regions are
 * rounded up to whole PE access units; the value region exists only
 * for SpMV.
 *
 *   input:  [rowPtr | colIdx | (values) | vertexData]
 *   output: one 8-byte slot per vertex (depth / rank / y)
 */
struct GraphLayout
{
    std::uint32_t unit = 32;
    std::uint64_t rowPtrBase = 0, rowPtrBytes = 0;
    std::uint64_t colIdxBase = 0, colIdxBytes = 0;
    std::uint64_t valBase = 0, valBytes = 0;
    std::uint64_t vtxBase = 0, vtxBytes = 0;
    std::uint64_t inputBytes = 0;
    std::uint64_t outBase = 0, outBytes = 0;

    /** Compute the layout of @p g for @p kernel at @p unit. */
    static GraphLayout of(const GraphModel &g, GraphKernel kernel,
                          std::uint32_t unit,
                          std::uint64_t input_base,
                          std::uint64_t output_base);
};

/**
 * Graph workload behind the WorkloadModel interface. The graph is
 * materialized at construction and shared (read-only) by every trace
 * source and by chunked() copies.
 */
class GraphWorkload : public WorkloadModel
{
  public:
    explicit GraphWorkload(const GraphWorkloadConfig &cfg);

    const WorkloadSpec &spec() const override { return spec_; }

    /** Volume scaling regenerates the graph at a scaled vertex
     *  count (same seed, same edge factor). */
    std::shared_ptr<const WorkloadModel>
    scaled(double factor) const override;

    /**
     * Chunking a graph does NOT shrink the shared vertex state: each
     * chunk owns edges of numVertices/chunks vertices but its
     * neighbour set spans the whole graph, so every chunk re-stages
     * the full vertex-data region (the irregular-access penalty a
     * heterogeneous platform cannot chunk away).
     */
    std::shared_ptr<const WorkloadModel>
    chunked(std::uint32_t chunks) const override;

    std::unique_ptr<AgentTraceSource>
    makeAgentTrace(const AgentTraceParams &p) const override;

    const GraphModel &graph() const { return *graph_; }
    const GraphWorkloadConfig &config() const { return config_; }
    /** Vertices this model's traces process (full range unless this
     *  is a chunked() copy). */
    std::pair<std::uint64_t, std::uint64_t> ownedRange() const
    {
        return {ownedBegin_, ownedEnd_};
    }

  private:
    GraphWorkload(const GraphWorkloadConfig &cfg,
                  std::shared_ptr<const GraphModel> graph,
                  std::uint64_t owned_begin, std::uint64_t owned_end);

    /** Derive the WorkloadSpec from the graph and owned range. */
    void buildSpec();

    GraphWorkloadConfig config_;
    std::shared_ptr<const GraphModel> graph_;
    std::uint64_t ownedBegin_ = 0, ownedEnd_ = 0;
    WorkloadSpec spec_;
};

/**
 * Per-agent trace of one graph kernel over a contiguous vertex
 * partition. Emission is purely data-dependent (graph + BFS tree),
 * so equal seeds and configs give bit-identical streams.
 */
class GraphTraceSource : public AgentTraceSource
{
  public:
    GraphTraceSource(std::shared_ptr<const GraphModel> graph,
                     GraphKernel kernel, std::uint32_t iterations,
                     const GraphLayout &layout,
                     std::uint64_t v_begin, std::uint64_t v_end);

    bool next(accel::TraceItem &out) override;
    void rewind() override;

    std::pair<std::uint64_t, std::uint64_t>
    outputRegion() const override;

    /** This agent's vertex partition. */
    std::pair<std::uint64_t, std::uint64_t> vertexRange() const
    {
        return {vBegin_, vEnd_};
    }

  private:
    /** Stage the next vertex's (or level's) items. */
    void refill();
    /** Emit one vertex's accesses for the current kernel. */
    void emitVertex(std::uint64_t u);
    /** Emit a 32B-word load covering byte offset @p off of a
     *  region. */
    void load(std::uint64_t base, std::uint64_t off);
    void store(std::uint64_t base, std::uint64_t off);

    std::shared_ptr<const GraphModel> graph_;
    GraphKernel kernel_;
    std::uint32_t iterations_;
    GraphLayout layout_;
    std::uint64_t vBegin_ = 0, vEnd_ = 0;

    /** Owned frontier per BFS level (level -> owned vertices). */
    std::vector<std::vector<std::uint32_t>> ownedByLevel_;

    std::uint32_t iter_ = 0;
    std::uint32_t level_ = 0;
    std::uint64_t cursor_ = 0;
    bool done_ = false;
    std::deque<accel::TraceItem> staged_;
};

} // namespace workload
} // namespace dramless

#endif // DRAMLESS_WORKLOAD_GRAPH_HH
