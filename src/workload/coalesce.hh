/**
 * @file
 * Burst coalescing of per-word trace items (ROADMAP item 2a).
 *
 * The Polybench and graph generators emit every access at PE operand
 * granularity (32B words), so the event kernel pays one heap event
 * per word. CoalescingTraceSource sits between a generator and the
 * PE and merges contiguous same-kind word runs into burst TraceItems
 * (TraceItem::burst > 1) up to a configurable maximum burst size.
 *
 * Workloads interleave several address streams (e.g. a strided load
 * stream, a sequential load stream and a store stream), so a single
 * pending run would never grow: the coalescer keeps a small number of
 * concurrently open runs ("ways") and extends whichever one the next
 * word continues. Compute items accumulate into one pending sum that
 * is flushed ahead of the next emitted memory run, preserving the
 * total instruction count and the coarse compute/memory interleave.
 *
 * Correctness contract (pinned by the differential oracle test): the
 * coalesced stream covers exactly the same byte set as the wrapped
 * stream, with identical per-kind word and instruction totals. Words
 * may locally reorder across ways; trace items carry timing, not
 * data, so this only shifts issue ticks.
 */

#ifndef DRAMLESS_WORKLOAD_COALESCE_HH
#define DRAMLESS_WORKLOAD_COALESCE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "workload/workload_model.hh"

namespace dramless
{
namespace workload
{

/** Counters for tests and tracing. */
struct CoalesceStats
{
    /** Memory words consumed from the wrapped source. */
    std::uint64_t wordsIn = 0;
    /** Memory items (bursts) emitted downstream. */
    std::uint64_t burstsOut = 0;
    /** Compute items consumed from the wrapped source. */
    std::uint64_t computeIn = 0;
    /** Compute items emitted downstream. */
    std::uint64_t computeOut = 0;
};

/** Merges contiguous same-kind word accesses into burst items. */
class CoalescingTraceSource : public AgentTraceSource
{
  public:
    /**
     * @param inner wrapped per-word source (owned).
     * @param maxBurstBytes largest burst emitted; runs never cross a
     *        maxBurstBytes-aligned boundary, so aligned consumers
     *        (L2 blocks, channel stripes) see aligned bursts.
     * @param ways concurrently open runs before LRU eviction.
     */
    CoalescingTraceSource(std::unique_ptr<AgentTraceSource> inner,
                          std::uint32_t maxBurstBytes,
                          std::uint32_t ways = 4);

    bool next(accel::TraceItem &out) override;
    void rewind() override;

    std::pair<std::uint64_t, std::uint64_t>
    outputRegion() const override
    {
        return inner_->outputRegion();
    }

    const CoalesceStats &coalesceStats() const { return stats_; }

  private:
    /** One open run of contiguous same-kind words. */
    struct Run
    {
        accel::TraceItem::Kind kind = accel::TraceItem::Kind::load;
        std::uint64_t base = 0;
        /** Word size (bytes) — uniform within a run. */
        std::uint32_t wordBytes = 0;
        std::uint32_t words = 0;
        /** Monotone age for LRU eviction. */
        std::uint64_t lastTouch = 0;

        bool open() const { return words > 0; }
        std::uint64_t end() const
        {
            return base + std::uint64_t(wordBytes) * words;
        }
    };

    /** Pull from inner until something is ready or the trace ends. */
    void fill();
    /** Queue pending compute, then run @p r, for emission. */
    void flushRun(Run &r);
    /** Queue the accumulated compute sum for emission. */
    void flushCompute();
    /** Queue every open run (oldest first) and pending compute. */
    void flushAll();
    /** True when @p it extends @p r without crossing an aligned
     *  maxBurst boundary. */
    bool extends(const Run &r, const accel::TraceItem &it) const;

    std::unique_ptr<AgentTraceSource> inner_;
    std::uint32_t maxBurstBytes_;
    std::vector<Run> ways_;
    std::uint64_t pendingInstructions_ = 0;
    std::uint64_t touchClock_ = 0;
    std::deque<accel::TraceItem> ready_;
    bool innerDone_ = false;
    CoalesceStats stats_;
};

/**
 * Wrap @p inner in a coalescer when @p maxBurstBytes allows more
 * than one word per burst; otherwise return @p inner unchanged.
 */
std::unique_ptr<AgentTraceSource>
wrapCoalescing(std::unique_ptr<AgentTraceSource> inner,
               std::uint32_t maxBurstBytes);

} // namespace workload
} // namespace dramless

#endif // DRAMLESS_WORKLOAD_COALESCE_HH
