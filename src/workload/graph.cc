#include "workload/graph.hh"

#include <algorithm>
#include <limits>
#include <queue>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace dramless
{
namespace workload
{

namespace
{

constexpr std::uint32_t kUnreached =
    std::numeric_limits<std::uint32_t>::max();
/** Bytes per modeled CSR entry / vertex slot (64-bit ids+values). */
constexpr std::uint64_t kSlot = 8;

std::uint64_t
roundUp(std::uint64_t v, std::uint64_t unit)
{
    return (v + unit - 1) / unit * unit;
}

/** Split [begin, end) into numAgents contiguous pieces, spreading
 *  the remainder over the first agents. */
std::pair<std::uint64_t, std::uint64_t>
partition(std::uint64_t begin, std::uint64_t end,
          std::uint32_t agent, std::uint32_t agents)
{
    std::uint64_t total = end - begin;
    std::uint64_t per = total / agents;
    std::uint64_t extra = total % agents;
    std::uint64_t first =
        begin + agent * per + std::min<std::uint64_t>(agent, extra);
    return {first, first + per + (agent < extra ? 1 : 0)};
}

} // anonymous namespace

// ------------------------------ model ------------------------------

GraphModel::GraphModel(const GraphConfig &cfg) : config_(cfg)
{
    const std::uint64_t v = cfg.numVertices;
    fatal_if(v < 2, "graph needs at least two vertices");
    fatal_if(cfg.edgeFactor <= 0.0, "edge factor must be positive");
    const std::uint64_t e =
        std::max<std::uint64_t>(1, std::uint64_t(
            double(v) * cfg.edgeFactor + 0.5));

    Random rng(cfg.seed);
    std::vector<std::uint32_t> src(e), dst(e);
    if (cfg.rmat) {
        std::uint32_t bits = 0;
        while ((std::uint64_t(1) << bits) < v)
            ++bits;
        const double ab = cfg.a + cfg.b;
        const double abc = ab + cfg.c;
        for (std::uint64_t i = 0; i < e; ++i) {
            std::uint64_t s, d;
            do {
                s = 0;
                d = 0;
                for (std::uint32_t bit = 0; bit < bits; ++bit) {
                    double r = rng.uniform();
                    // Quadrants: a=(0,0) b=(0,1) c=(1,0) d=(1,1).
                    std::uint64_t sb = r >= ab ? 1 : 0;
                    std::uint64_t db =
                        (r >= cfg.a && r < ab) || r >= abc ? 1 : 0;
                    s = (s << 1) | sb;
                    d = (d << 1) | db;
                }
            } while (s >= v || d >= v);
            src[i] = std::uint32_t(s);
            dst[i] = std::uint32_t(d);
        }
    } else {
        for (std::uint64_t i = 0; i < e; ++i) {
            src[i] = std::uint32_t(rng.below(v));
            dst[i] = std::uint32_t(rng.below(v));
        }
    }

    // Counting sort into CSR; per-vertex edge order follows the
    // generation order (stable).
    rowPtr_.assign(v + 1, 0);
    for (std::uint64_t i = 0; i < e; ++i)
        ++rowPtr_[src[i] + 1];
    for (std::uint64_t u = 0; u < v; ++u)
        rowPtr_[u + 1] += rowPtr_[u];
    colIdx_.resize(e);
    std::vector<std::uint64_t> fill(rowPtr_.begin(),
                                    rowPtr_.end() - 1);
    for (std::uint64_t i = 0; i < e; ++i)
        colIdx_[fill[src[i]]++] = dst[i];

    // BFS tree from vertex 0 (directed edges), replayed by the BFS
    // trace source: depth gives the frontier schedule, parent marks
    // which edge performs each discovery store.
    bfsDepth_.assign(v, kUnreached);
    bfsParent_.assign(v, kUnreached);
    std::queue<std::uint32_t> frontier;
    bfsDepth_[0] = 0;
    bfsParent_[0] = 0;
    bfsReached_ = 1;
    frontier.push(0);
    while (!frontier.empty()) {
        std::uint32_t u = frontier.front();
        frontier.pop();
        for (std::uint64_t i = rowPtr_[u]; i < rowPtr_[u + 1]; ++i) {
            std::uint32_t w = colIdx_[i];
            if (bfsDepth_[w] != kUnreached)
                continue;
            bfsDepth_[w] = bfsDepth_[u] + 1;
            bfsParent_[w] = u;
            bfsMaxDepth_ = std::max(bfsMaxDepth_, bfsDepth_[w]);
            ++bfsReached_;
            frontier.push(w);
        }
    }
}

std::uint64_t
GraphModel::maxOutDegree() const
{
    std::uint64_t best = 0;
    for (std::uint64_t u = 0; u + 1 < rowPtr_.size(); ++u)
        best = std::max(best, rowPtr_[u + 1] - rowPtr_[u]);
    return best;
}

const char *
graphKernelName(GraphKernel k)
{
    switch (k) {
      case GraphKernel::bfs:
        return "bfs";
      case GraphKernel::pagerank:
        return "pagerank";
      case GraphKernel::spmv:
        return "spmv";
    }
    return "?";
}

// ------------------------------ layout -----------------------------

GraphLayout
GraphLayout::of(const GraphModel &g, GraphKernel kernel,
                std::uint32_t unit, std::uint64_t input_base,
                std::uint64_t output_base)
{
    GraphLayout l;
    l.unit = unit;
    const std::uint64_t v = g.numVertices();
    const std::uint64_t e = g.numEdges();
    l.rowPtrBase = input_base;
    l.rowPtrBytes = roundUp((v + 1) * kSlot, unit);
    l.colIdxBase = l.rowPtrBase + l.rowPtrBytes;
    l.colIdxBytes = roundUp(e * kSlot, unit);
    l.valBase = l.colIdxBase + l.colIdxBytes;
    l.valBytes =
        kernel == GraphKernel::spmv ? roundUp(e * kSlot, unit) : 0;
    l.vtxBase = l.valBase + l.valBytes;
    l.vtxBytes = roundUp(v * kSlot, unit);
    l.inputBytes = l.rowPtrBytes + l.colIdxBytes + l.valBytes +
                   l.vtxBytes;
    l.outBase = output_base != 0 ? output_base
                                 : input_base + l.inputBytes;
    l.outBytes = roundUp(v * kSlot, unit);
    return l;
}

// ----------------------------- workload ----------------------------

GraphWorkload::GraphWorkload(const GraphWorkloadConfig &cfg)
    : GraphWorkload(cfg, std::make_shared<GraphModel>(cfg.graph), 0,
                    cfg.graph.numVertices)
{}

GraphWorkload::GraphWorkload(const GraphWorkloadConfig &cfg,
                             std::shared_ptr<const GraphModel> graph,
                             std::uint64_t owned_begin,
                             std::uint64_t owned_end)
    : config_(cfg), graph_(std::move(graph)),
      ownedBegin_(owned_begin), ownedEnd_(owned_end)
{
    fatal_if(ownedBegin_ >= ownedEnd_ ||
                 ownedEnd_ > graph_->numVertices(),
             "bad owned vertex range");
    buildSpec();
}

void
GraphWorkload::buildSpec()
{
    const std::uint32_t unit = 32;
    const GraphModel &g = *graph_;
    const std::uint64_t owned_v = ownedEnd_ - ownedBegin_;
    const std::uint64_t owned_e =
        g.rowPtr()[ownedEnd_] - g.rowPtr()[ownedBegin_];
    const bool full =
        ownedBegin_ == 0 && ownedEnd_ == g.numVertices();

    spec_.name = csprintf("%s_v%llu_e%g",
                          graphKernelName(config_.kernel),
                          (unsigned long long)g.numVertices(),
                          g.config().edgeFactor);
    spec_.pattern = Pattern::randomAccess;
    spec_.klass = WorkloadClass::memoryIntensive;
    if (full) {
        GraphLayout l =
            GraphLayout::of(g, config_.kernel, unit, 0, 0);
        spec_.inputBytes = l.inputBytes;
    } else {
        // A chunk stages its own row pointers and edges, but the
        // vertex-data region its gathers roam is the whole graph's.
        std::uint64_t edge_slots =
            config_.kernel == GraphKernel::spmv ? 2 * owned_e
                                                : owned_e;
        spec_.inputBytes =
            roundUp((owned_v + 1) * kSlot, unit) +
            roundUp(edge_slots * kSlot, unit) +
            roundUp(g.numVertices() * kSlot, unit);
    }
    spec_.outputBytes =
        std::max<std::uint64_t>(unit, roundUp(owned_v * kSlot, unit));
    // Descriptive compute intensity: a couple of functional-unit ops
    // per traversed edge plus per-vertex bookkeeping.
    double iters = config_.kernel == GraphKernel::pagerank
                       ? double(std::max<std::uint32_t>(
                             1, config_.iterations))
                       : 1.0;
    spec_.opsPerByte =
        iters * double(2 * owned_e + 4 * owned_v) /
        double(spec_.inputBytes + spec_.outputBytes);
}

std::shared_ptr<const WorkloadModel>
GraphWorkload::scaled(double factor) const
{
    fatal_if(factor <= 0.0, "scale factor must be positive");
    GraphWorkloadConfig cfg = config_;
    std::uint64_t v = std::max<std::uint64_t>(
        16, std::uint64_t(double(cfg.graph.numVertices) * factor +
                          0.5));
    cfg.graph.numVertices = roundUp(v, 4);
    auto copy = std::shared_ptr<GraphWorkload>(
        new GraphWorkload(cfg));
    // Scaling is a volume knob, not a new workload: keep the name so
    // result matrices key the same row before and after scaling.
    copy->spec_.name = spec_.name;
    return copy;
}

std::shared_ptr<const WorkloadModel>
GraphWorkload::chunked(std::uint32_t chunks) const
{
    fatal_if(chunks == 0, "chunks must be positive");
    if (chunks == 1 && ownedBegin_ == 0 &&
        ownedEnd_ == graph_->numVertices()) {
        return std::shared_ptr<const WorkloadModel>(
            new GraphWorkload(config_, graph_, ownedBegin_,
                              ownedEnd_));
    }
    auto [begin, end] =
        partition(ownedBegin_, ownedEnd_, 0, chunks);
    if (begin >= end)
        end = begin + 1;
    auto copy = std::shared_ptr<GraphWorkload>(
        new GraphWorkload(config_, graph_, begin, end));
    copy->spec_.name = spec_.name;
    return copy;
}

std::unique_ptr<AgentTraceSource>
GraphWorkload::makeAgentTrace(const AgentTraceParams &p) const
{
    fatal_if(p.numAgents == 0 || p.agentIndex >= p.numAgents,
             "bad agent slice");
    fatal_if(p.accessBytes == 0 || p.accessBytes % 32 != 0,
             "access size must be a positive multiple of 32");
    GraphLayout layout = GraphLayout::of(
        *graph_, config_.kernel, p.accessBytes, p.inputBase,
        p.outputBase);
    auto [begin, end] = partition(ownedBegin_, ownedEnd_,
                                  p.agentIndex, p.numAgents);
    return std::make_unique<GraphTraceSource>(
        graph_, config_.kernel,
        std::max<std::uint32_t>(1, config_.iterations), layout,
        begin, end);
}

// --------------------------- trace source --------------------------

GraphTraceSource::GraphTraceSource(
    std::shared_ptr<const GraphModel> graph, GraphKernel kernel,
    std::uint32_t iterations, const GraphLayout &layout,
    std::uint64_t v_begin, std::uint64_t v_end)
    : graph_(std::move(graph)), kernel_(kernel),
      iterations_(iterations), layout_(layout), vBegin_(v_begin),
      vEnd_(v_end)
{
    if (kernel_ == GraphKernel::bfs) {
        ownedByLevel_.resize(graph_->bfsMaxDepth() + 1);
        const auto &depth = graph_->bfsDepth();
        for (std::uint64_t u = vBegin_; u < vEnd_; ++u) {
            if (depth[u] != kUnreached)
                ownedByLevel_[depth[u]].push_back(
                    std::uint32_t(u));
        }
    }
    rewind();
}

void
GraphTraceSource::rewind()
{
    iter_ = 0;
    level_ = 0;
    cursor_ = kernel_ == GraphKernel::bfs ? 0 : vBegin_;
    done_ = false;
    staged_.clear();
}

std::pair<std::uint64_t, std::uint64_t>
GraphTraceSource::outputRegion() const
{
    if (kernel_ == GraphKernel::bfs) {
        // Discovery stores scatter across the whole depth array.
        return {layout_.outBase, layout_.outBytes};
    }
    std::uint64_t first = vBegin_ * kSlot / layout_.unit *
                          layout_.unit;
    std::uint64_t end = roundUp(vEnd_ * kSlot, layout_.unit);
    return {layout_.outBase + first, end - first};
}

void
GraphTraceSource::load(std::uint64_t base, std::uint64_t off)
{
    staged_.push_back(accel::TraceItem::loadOf(
        base + off / layout_.unit * layout_.unit, layout_.unit));
}

void
GraphTraceSource::store(std::uint64_t base, std::uint64_t off)
{
    staged_.push_back(accel::TraceItem::storeOf(
        base + off / layout_.unit * layout_.unit, layout_.unit));
}

void
GraphTraceSource::emitVertex(std::uint64_t u)
{
    const std::uint32_t unit = layout_.unit;
    const auto &rp = graph_->rowPtr();
    const auto &ci = graph_->colIdx();
    const std::uint64_t e0 = rp[u], e1 = rp[u + 1];

    // Row-pointer walk: rowPtr[u] and rowPtr[u+1] (usually the same
    // access word).
    load(layout_.rowPtrBase, u * kSlot);
    if ((u * kSlot) / unit != ((u + 1) * kSlot) / unit)
        load(layout_.rowPtrBase, (u + 1) * kSlot);

    std::uint64_t ops = 4; // frontier pop / row bookkeeping
    std::vector<accel::TraceItem> stores;
    /** Vertices already discovered from this row: the generator may
     *  produce duplicate edges, and only the first occurrence of
     *  (u, v) discovers v — the second finds it visited. */
    std::vector<std::uint32_t> kids;

    std::uint64_t prev_word = ~std::uint64_t(0);
    for (std::uint64_t e = e0; e < e1; ++e) {
        // Stream the index (and, for SpMV, value) arrays word by
        // word: several consecutive edges share one access.
        std::uint64_t word = e * kSlot / unit;
        if (word != prev_word) {
            load(layout_.colIdxBase, e * kSlot);
            if (kernel_ == GraphKernel::spmv)
                load(layout_.valBase, e * kSlot);
            prev_word = word;
        }
        // The gather: a data-dependent read of the neighbour's slot
        // (visited flag / previous rank / x element).
        std::uint32_t v = ci[e];
        load(layout_.vtxBase, std::uint64_t(v) * kSlot);
        ops += 2;

        if (kernel_ == GraphKernel::bfs &&
            graph_->bfsParent()[v] == u &&
            graph_->bfsDepth()[v] == level_ + 1 &&
            std::find(kids.begin(), kids.end(), v) == kids.end()) {
            // This edge discovers v: scattered store of its depth.
            kids.push_back(v);
            stores.push_back(accel::TraceItem::storeOf(
                layout_.outBase +
                    std::uint64_t(v) * kSlot / unit * unit,
                unit));
            ops += 1;
        }
    }

    staged_.push_back(accel::TraceItem::computeOf(ops));
    for (const auto &s : stores)
        staged_.push_back(s);

    switch (kernel_) {
      case GraphKernel::bfs:
        break;
      case GraphKernel::pagerank:
        // Rank read-modify-write burst: accumulate into rank[u]
        // (neighbouring vertices hit the same word back to back).
        load(layout_.outBase, u * kSlot);
        store(layout_.outBase, u * kSlot);
        break;
      case GraphKernel::spmv:
        // y[u] packs four results per word; store on word boundary.
        if ((u + 1) * kSlot % unit == 0 || u + 1 == vEnd_)
            store(layout_.outBase, u * kSlot);
        break;
    }
}

void
GraphTraceSource::refill()
{
    while (staged_.empty() && !done_) {
        if (vBegin_ >= vEnd_) {
            // Empty partition (more agents than owned vertices):
            // emit a sentinel so the PE still boots and retires.
            staged_.push_back(accel::TraceItem::computeOf(1));
            done_ = true;
            return;
        }
        if (kernel_ == GraphKernel::bfs) {
            if (level_ >= ownedByLevel_.size()) {
                done_ = true;
                return;
            }
            const auto &frontier = ownedByLevel_[level_];
            if (cursor_ >= frontier.size()) {
                ++level_;
                cursor_ = 0;
                continue;
            }
            emitVertex(frontier[cursor_++]);
            continue;
        }
        if (cursor_ >= vEnd_) {
            ++iter_;
            std::uint32_t total_iters =
                kernel_ == GraphKernel::pagerank ? iterations_ : 1;
            if (iter_ >= total_iters) {
                done_ = true;
                return;
            }
            cursor_ = vBegin_;
            continue;
        }
        emitVertex(cursor_++);
    }
}

bool
GraphTraceSource::next(accel::TraceItem &out)
{
    if (staged_.empty())
        refill();
    if (staged_.empty())
        return false;
    out = staged_.front();
    staged_.pop_front();
    return true;
}

} // namespace workload
} // namespace dramless
