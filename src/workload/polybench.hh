/**
 * @file
 * Polybench workload descriptors (Table III, Figure 13).
 *
 * The paper ports the Polybench suite to the eight-PE platform with
 * DSP intrinsics and drives every evaluated system with it. The
 * descriptors here encode each kernel's published characteristics:
 * write intensiveness (output/input volume), compute intensity,
 * data volume class and dominant access pattern. Absolute volumes
 * are scaled down from the paper's multi-gigabyte runs to keep
 * simulations fast; every consumer exposes a scale knob.
 */

#ifndef DRAMLESS_WORKLOAD_POLYBENCH_HH
#define DRAMLESS_WORKLOAD_POLYBENCH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dramless
{
namespace workload
{

/** Dominant memory access pattern of a kernel. */
enum class Pattern
{
    /** Sequential sweep (vector kernels, 1-D stencils). */
    streaming,
    /** Column-major / large-stride walks (matrix kernels). */
    strided,
    /** Neighbourhood re-reads (2-D stencils). */
    stencil,
    /** Data-dependent accesses (dynamic programming, graphs). */
    randomAccess,
    /** Shrinking-range sweeps (factorizations, solvers). */
    triangular,
};

/** Paper classification of a workload. */
enum class WorkloadClass
{
    readIntensive,
    writeIntensive,
    computeIntensive,
    memoryIntensive,
    balanced,
};

/** One Polybench kernel's modeled characteristics. */
struct WorkloadSpec
{
    std::string name;
    Pattern pattern;
    WorkloadClass klass;
    /** Input volume in bytes. */
    std::uint64_t inputBytes;
    /** Output volume in bytes (write intensiveness = out/in). */
    std::uint64_t outputBytes;
    /** Functional-unit operations per byte moved (compute
     *  intensity, with DSP intrinsics). */
    double opsPerByte;

    /** @return fraction of traffic that is writes. */
    double
    writeRatio() const
    {
        return double(outputBytes) /
               double(inputBytes + outputBytes);
    }

    /** @return total volume. */
    std::uint64_t totalBytes() const
    {
        return inputBytes + outputBytes;
    }

    /** @return a copy with volumes scaled by @p factor. */
    WorkloadSpec scaled(double factor) const;
};

/** The modeled Polybench suite. */
class Polybench
{
  public:
    /** @return all fifteen evaluated kernels, Figure 13 order. */
    static const std::vector<WorkloadSpec> &all();

    /** @return the kernel named @p name (fatal if unknown). */
    static const WorkloadSpec &byName(const std::string &name);

    /** @return all kernels with volumes scaled by @p factor. */
    static std::vector<WorkloadSpec> allScaled(double factor);

    /** @return a human-readable label of @p p. */
    static const char *patternName(Pattern p);
    /** @return a human-readable label of @p c. */
    static const char *className(WorkloadClass c);
};

} // namespace workload
} // namespace dramless

#endif // DRAMLESS_WORKLOAD_POLYBENCH_HH
