/**
 * @file
 * DNN inference workload family.
 *
 * The paper evaluates PRAM-backed acceleration on Polybench kernels
 * and (since the graph engine landed) graph analytics; DNN inference
 * is the canonical "millions of users" accelerator workload the
 * serving layer was built to carry. A DnnModel is an ordered list of
 * layer descriptors (conv2d / fully-connected / pool with shapes,
 * strides and padding); DnnTraceSource emits the per-PE 32B-word
 * access stream of an output-stationary tiling schedule over it:
 * weights stream from PRAM once per tile pass, input activations are
 * double-buffered row by row through the L2 region with
 * sliding-window reuse, partial sums accumulate PE-locally (compute
 * ticks between memory bursts, no psum traffic), and finished output
 * rows store back. Output channels partition contiguously across PEs
 * the same way GraphTraceSource partitions vertices, all behind the
 * WorkloadModel interface Polybench and the graph engine share.
 */

#ifndef DRAMLESS_WORKLOAD_DNN_HH
#define DRAMLESS_WORKLOAD_DNN_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "workload/workload_model.hh"

namespace dramless
{
namespace workload
{

/** The three modeled layer types. */
enum class DnnLayerType
{
    conv2d,
    fc,
    pool,
};

/** @return a short lowercase label of @p t. */
const char *dnnLayerTypeName(DnnLayerType t);

/**
 * One layer's shape. Input is a C x H x W activation volume; conv2d
 * slides an R x S window per (input-channel, output-channel) pair,
 * pool reduces an R x S window per channel (no weights), and fc is
 * expressed as a full-width window over a flattened 1 x 1 x N input
 * (kernelW == inWidth, so every output neuron consumes the whole
 * vector — use fcLayer()).
 */
struct DnnLayerDesc
{
    DnnLayerType type = DnnLayerType::conv2d;
    /** Input volume: channels x height x width. */
    std::uint32_t inChannels = 1;
    std::uint32_t inHeight = 1;
    std::uint32_t inWidth = 1;
    /** Output channels (pool: must equal inChannels). */
    std::uint32_t outChannels = 1;
    /** Window shape (weights per output channel = C*R*S for conv). */
    std::uint32_t kernelH = 1;
    std::uint32_t kernelW = 1;
    std::uint32_t strideH = 1;
    std::uint32_t strideW = 1;
    /** Zero padding (rows/columns of implicit zeros, never read). */
    std::uint32_t padH = 0;
    std::uint32_t padW = 0;

    /** @return output spatial height P / width Q. */
    std::uint32_t outHeight() const;
    std::uint32_t outWidth() const;

    std::uint64_t inputElems() const
    {
        return std::uint64_t(inChannels) * inHeight * inWidth;
    }
    std::uint64_t outputElems() const
    {
        return std::uint64_t(outChannels) * outHeight() * outWidth();
    }
    /** @return weight elements per output channel (0 for pool). */
    std::uint64_t weightElemsPerChannel() const;
    /** @return MACs (pool: compares) per output element. */
    std::uint64_t macsPerOutput() const;
};

/** @return a conv2d descriptor over a C x H x W input. */
DnnLayerDesc convLayer(std::uint32_t in_c, std::uint32_t in_h,
                       std::uint32_t in_w, std::uint32_t out_c,
                       std::uint32_t kernel, std::uint32_t stride = 1,
                       std::uint32_t pad = 0);
/** @return a per-channel pool descriptor (window x window). */
DnnLayerDesc poolLayer(std::uint32_t in_c, std::uint32_t in_h,
                       std::uint32_t in_w, std::uint32_t window,
                       std::uint32_t stride);
/** @return a fully-connected descriptor (n_in -> n_out neurons). */
DnnLayerDesc fcLayer(std::uint32_t n_in, std::uint32_t n_out);

/** One inference workload: a network, a batch, a tile size. */
struct DnnNetworkConfig
{
    std::string name = "dnn";
    std::vector<DnnLayerDesc> layers;
    /** Inferences per kernel launch; each re-streams the weights
     *  (the batch axis of the sweep). */
    std::uint32_t batch = 1;
    /** Output channels whose weights fit the PE weight buffer at
     *  once: one tile pass streams tileChannels channels' weights
     *  and sweeps the input once. 0 = everything in one pass. */
    std::uint32_t tileChannels = 4;
};

/**
 * A validated network: ordered layer descriptors whose shapes chain
 * (conv/pool input dims must equal the previous layer's output dims
 * exactly; fc flattens, requiring only equal element counts).
 * Immutable after construction, so one instance is safely shared
 * across agents, chunk copies and sweep jobs.
 */
class DnnModel
{
  public:
    explicit DnnModel(DnnNetworkConfig cfg);

    const DnnNetworkConfig &config() const { return config_; }
    const std::vector<DnnLayerDesc> &layers() const
    {
        return config_.layers;
    }
    std::uint32_t numLayers() const
    {
        return std::uint32_t(config_.layers.size());
    }

    /** @return total weight elements across all layers. */
    std::uint64_t totalWeightElems() const;
    /** @return total MACs of one inference. */
    std::uint64_t totalMacs() const;

    /**
     * The activation geometry of layer @p l's *input buffer*: the
     * producing layer's output volume (layer 0: the staged image).
     * fc layers read whatever row structure the producer wrote, so
     * geometry can differ from the descriptor's flattened 1x1xN.
     */
    struct ActGeom
    {
        std::uint32_t channels = 1;
        std::uint32_t height = 1;
        std::uint32_t width = 1;
    };
    ActGeom inputGeom(std::uint32_t l) const;
    /** @return the geometry of layer @p l's output volume. */
    ActGeom outputGeom(std::uint32_t l) const;

  private:
    DnnNetworkConfig config_;
};

/**
 * Address-space image of one network at a given access unit.
 * Weights pad each output channel's block to whole units so blocks
 * stay word-aligned and contiguous (they must coalesce). Activation
 * volumes are row-pitched: each (channel, row) occupies whole units
 * plus one trailing guard unit, so the row DMAs the double buffer
 * issues are never address-contiguous and bursts cannot fuse across
 * row boundaries.
 *
 *   input:  [weights L0 | weights L1 | ... | image]
 *   output: [act buffer A | act buffer B | final output]
 *
 * Intermediate activations ping-pong between the two buffers (layer
 * l reads what layer l-1 wrote); the last layer writes the final
 * region.
 */
struct DnnLayout
{
    std::uint32_t unit = 32;
    /** Per-layer weight region base and per-output-channel pitch
     *  (bytes; pitch 0 for pool). */
    std::vector<std::uint64_t> weightBase;
    std::vector<std::uint64_t> weightPitch;
    std::uint64_t imageBase = 0, imageBytes = 0;
    std::uint64_t inputBytes = 0;
    std::uint64_t outBase = 0;
    /** One ping-pong activation buffer (max intermediate volume). */
    std::uint64_t bufBytes = 0;
    std::uint64_t finalBase = 0, finalBytes = 0;
    std::uint64_t outBytes = 0;

    static DnnLayout of(const DnnModel &m, std::uint32_t unit,
                        std::uint64_t input_base,
                        std::uint64_t output_base);

    /** @return bytes of one row-pitched row of a @p width-element
     *  activation row (touched words + the guard unit). */
    std::uint64_t rowPitch(std::uint32_t width) const;
    /** @return bytes of a row-pitched C x H x W volume. */
    std::uint64_t actBytes(const DnnModel::ActGeom &g) const;
    /** @return the base address layer @p l reads activations from. */
    std::uint64_t actInBase(const DnnModel &m, std::uint32_t l) const;
    /** @return the base address layer @p l writes activations to. */
    std::uint64_t actOutBase(const DnnModel &m,
                             std::uint32_t l) const;
};

/**
 * DNN inference behind the WorkloadModel interface. chunked() splits
 * output channels per layer but every chunk re-reads the full input
 * activation volumes (a conv output channel consumes every input
 * channel, which other chunks produced), so the chunk's staged input
 * keeps the whole intermediate-activation footprint — the hetero
 * restaging penalty, exactly like the graph engine's shared vertex
 * region.
 */
class DnnWorkload : public WorkloadModel
{
  public:
    explicit DnnWorkload(const DnnNetworkConfig &cfg);

    const WorkloadSpec &spec() const override { return spec_; }

    /** Volume scaling shrinks channel/feature counts (min 1 each)
     *  and re-propagates the shape chain; the name is kept so result
     *  matrices key the same row at any scale. */
    std::shared_ptr<const WorkloadModel>
    scaled(double factor) const override;

    std::shared_ptr<const WorkloadModel>
    chunked(std::uint32_t chunks) const override;

    std::unique_ptr<AgentTraceSource>
    makeAgentTrace(const AgentTraceParams &p) const override;

    const DnnModel &model() const { return *model_; }
    /** 1 unless this is a chunked() copy owning 1/chunkCount of
     *  every layer's output channels. */
    std::uint32_t chunkCount() const { return chunkCount_; }
    /** Output channels of layer @p l this model's traces process. */
    std::pair<std::uint32_t, std::uint32_t>
    ownedChannels(std::uint32_t l) const;

  private:
    DnnWorkload(std::shared_ptr<const DnnModel> model,
                std::uint32_t chunk_count);

    /** Derive the WorkloadSpec from the model and chunk share. */
    void buildSpec();

    std::shared_ptr<const DnnModel> model_;
    std::uint32_t chunkCount_ = 1;
    WorkloadSpec spec_;
};

/**
 * Per-agent trace of one inference batch over a contiguous
 * output-channel partition of every layer. Emission is a pure
 * function of (network, partition, layout) — no RNG — so equal
 * configs give bit-identical streams.
 */
class DnnTraceSource : public AgentTraceSource
{
  public:
    DnnTraceSource(std::shared_ptr<const DnnModel> model,
                   const DnnLayout &layout,
                   std::vector<std::pair<std::uint32_t,
                                         std::uint32_t>> owned,
                   std::uint32_t batch);

    bool next(accel::TraceItem &out) override;
    void rewind() override;

    std::pair<std::uint64_t, std::uint64_t>
    outputRegion() const override;

    /** This agent's output-channel partition of layer @p l. */
    std::pair<std::uint32_t, std::uint32_t>
    channelRange(std::uint32_t l) const
    {
        return owned_[l];
    }

  private:
    /** Stage the next tile pass (or the empty-partition sentinel). */
    void refill();
    /** Stage one full tile pass of layer @p l over channels
     *  [t0, t1): weights, row sweep, compute, output stores. */
    void stageTilePass(std::uint32_t l, std::uint32_t t0,
                       std::uint32_t t1);

    std::shared_ptr<const DnnModel> model_;
    DnnLayout layout_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> owned_;
    std::uint32_t batch_ = 1;

    std::uint32_t b_ = 0;
    std::uint32_t l_ = 0;
    std::uint32_t tile_ = 0;
    bool emittedAny_ = false;
    bool done_ = false;
    std::deque<accel::TraceItem> staged_;
};

/** @return the named networks of the registry ("lenet", "mlp",
 *  "ffn"), batch 1. */
std::vector<DnnNetworkConfig> dnnNetworks();

/** @return the registry entry named @p name; fatal() on unknown
 *  names. */
DnnNetworkConfig dnnNetworkByName(const std::string &name);

/** @return a shared DnnWorkload over the named network at @p batch. */
std::shared_ptr<const WorkloadModel>
dnnModelFor(const std::string &name, std::uint32_t batch = 1);

} // namespace workload
} // namespace dramless

#endif // DRAMLESS_WORKLOAD_DNN_HH
