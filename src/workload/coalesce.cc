#include "workload/coalesce.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dramless
{
namespace workload
{

CoalescingTraceSource::CoalescingTraceSource(
    std::unique_ptr<AgentTraceSource> inner,
    std::uint32_t maxBurstBytes, std::uint32_t ways)
    : inner_(std::move(inner)), maxBurstBytes_(maxBurstBytes)
{
    fatal_if(inner_ == nullptr, "coalescer: null inner source");
    fatal_if(maxBurstBytes_ == 0 || ways == 0,
             "coalescer: zero burst size or way count");
    ways_.resize(std::max<std::uint32_t>(1, ways));
}

bool
CoalescingTraceSource::extends(const Run &r,
                               const accel::TraceItem &it) const
{
    if (!r.open() || it.kind != r.kind || it.size != r.wordBytes)
        return false;
    if (it.addr != r.end())
        return false;
    // Never grow across a maxBurst-aligned boundary: downstream
    // block/stripe consumers then see naturally aligned bursts, and
    // run length is implicitly capped at maxBurstBytes.
    return it.addr / maxBurstBytes_ == r.base / maxBurstBytes_;
}

void
CoalescingTraceSource::flushCompute()
{
    if (pendingInstructions_ == 0)
        return;
    ready_.push_back(
        accel::TraceItem::computeOf(pendingInstructions_));
    pendingInstructions_ = 0;
    ++stats_.computeOut;
}

void
CoalescingTraceSource::flushRun(Run &r)
{
    if (!r.open())
        return;
    // Compute accumulated ahead of this run issues first so the
    // burst's words stay behind the work that preceded them.
    flushCompute();
    accel::TraceItem it = r.kind == accel::TraceItem::Kind::load
        ? accel::TraceItem::loadOf(r.base, r.wordBytes, r.words)
        : accel::TraceItem::storeOf(r.base, r.wordBytes, r.words);
    ready_.push_back(it);
    ++stats_.burstsOut;
    r.words = 0;
}

void
CoalescingTraceSource::flushAll()
{
    std::vector<Run *> open;
    for (Run &r : ways_)
        if (r.open())
            open.push_back(&r);
    std::sort(open.begin(), open.end(),
              [](const Run *a, const Run *b) {
                  return a->lastTouch < b->lastTouch;
              });
    for (Run *r : open)
        flushRun(*r);
    flushCompute();
}

void
CoalescingTraceSource::fill()
{
    accel::TraceItem it;
    while (ready_.empty() && !innerDone_) {
        if (!inner_->next(it)) {
            innerDone_ = true;
            flushAll();
            return;
        }
        if (it.kind == accel::TraceItem::Kind::compute) {
            ++stats_.computeIn;
            pendingInstructions_ += it.instructions;
            continue;
        }
        stats_.wordsIn += it.burst;
        // Oversized or misaligned-word items pass through untouched.
        if (it.size == 0 || it.burst != 1 ||
            it.size >= maxBurstBytes_) {
            flushAll();
            ready_.push_back(it);
            continue;
        }
        // A word overlapping an open run of a different stream must
        // flush that run first to keep program order per address.
        for (Run &r : ways_) {
            if (r.open() && !extends(r, it) &&
                it.addr < r.end() &&
                it.addr + it.size > r.base) {
                flushRun(r);
            }
        }
        Run *hit = nullptr;
        for (Run &r : ways_)
            if (extends(r, it)) {
                hit = &r;
                break;
            }
        if (hit == nullptr) {
            // Claim an empty way, else evict the least recently
            // extended run.
            for (Run &r : ways_)
                if (!r.open()) {
                    hit = &r;
                    break;
                }
            if (hit == nullptr) {
                hit = &ways_.front();
                for (Run &r : ways_)
                    if (r.lastTouch < hit->lastTouch)
                        hit = &r;
                flushRun(*hit);
            }
            hit->kind = it.kind;
            hit->base = it.addr;
            hit->wordBytes = it.size;
            hit->words = 0;
        }
        ++hit->words;
        hit->lastTouch = ++touchClock_;
    }
}

bool
CoalescingTraceSource::next(accel::TraceItem &out)
{
    if (ready_.empty())
        fill();
    if (ready_.empty())
        return false;
    out = ready_.front();
    ready_.pop_front();
    return true;
}

void
CoalescingTraceSource::rewind()
{
    for (Run &r : ways_)
        r = Run{};
    pendingInstructions_ = 0;
    touchClock_ = 0;
    ready_.clear();
    innerDone_ = false;
    stats_ = CoalesceStats{};
    inner_->rewind();
}

std::unique_ptr<AgentTraceSource>
wrapCoalescing(std::unique_ptr<AgentTraceSource> inner,
               std::uint32_t maxBurstBytes)
{
    if (inner == nullptr || maxBurstBytes <= 32)
        return inner;
    return std::make_unique<CoalescingTraceSource>(
        std::move(inner), maxBurstBytes);
}

} // namespace workload
} // namespace dramless
