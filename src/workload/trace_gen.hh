/**
 * @file
 * Trace generator turning a WorkloadSpec into a per-agent stream of
 * compute bursts, loads and stores with the kernel's access pattern.
 */

#ifndef DRAMLESS_WORKLOAD_TRACE_GEN_HH
#define DRAMLESS_WORKLOAD_TRACE_GEN_HH

#include <cstdint>
#include <deque>

#include "accel/trace.hh"
#include "sim/random.hh"
#include "workload/polybench.hh"
#include "workload/workload_model.hh"

namespace dramless
{
namespace workload
{

/** Generator parameters. */
struct TraceGenConfig
{
    WorkloadSpec spec;
    /** Base address of the input dataset. */
    std::uint64_t inputBase = 0;
    /** Base address of the output region; defaults to the end of the
     *  input when zero. */
    std::uint64_t outputBase = 0;
    /** This agent's index and the number of agents sharing the
     *  kernel (the suite is split into per-PE compute kernels). */
    std::uint32_t agentIndex = 0;
    std::uint32_t numAgents = 1;
    /** PE operand size (256-bit SIMD loads/stores). */
    std::uint32_t accessBytes = 32;
    /** Row length for stencil neighbourhoods and strided columns. */
    std::uint64_t rowBytes = 8192;
    std::uint64_t seed = 1;
};

/**
 * Lazy per-agent trace. The agent sweeps its input slice in the
 * spec's pattern, retires opsPerByte work per byte loaded, and emits
 * stores to its output slice paced so the store/load byte ratio
 * equals the spec's output/input ratio.
 */
class PolybenchTraceSource : public AgentTraceSource
{
  public:
    explicit PolybenchTraceSource(const TraceGenConfig &config);

    bool next(accel::TraceItem &out) override;

    /** Restart the trace (for repeated launches). */
    void rewind() override;

    /** @return input bytes this agent will load (slice size). */
    std::uint64_t loadBytes() const { return inSize_; }
    /** @return output bytes this agent will store. */
    std::uint64_t storeBytes() const { return outSize_; }
    /** @return [base, base+size) of this agent's output slice (for
     *  selective-erasing hints). */
    std::pair<std::uint64_t, std::uint64_t>
    outputRegion() const override
    {
        return {outBase_, outSize_};
    }

  private:
    /** Generate the next element's items into the staging queue. */
    void refill();
    /** Load address of element @p k under the spec's pattern. */
    std::uint64_t loadAddr(std::uint64_t k);

    TraceGenConfig cfg_;
    Random rng_;
    std::uint64_t inBase_ = 0;
    std::uint64_t inSize_ = 0;
    std::uint64_t outBase_ = 0;
    std::uint64_t outSize_ = 0;
    std::uint64_t loadOffset_ = 0;
    std::uint64_t storeOffset_ = 0;
    double storeDebt_ = 0.0;
    bool flushed_ = false;
    std::deque<accel::TraceItem> staged_;
};

} // namespace workload
} // namespace dramless

#endif // DRAMLESS_WORKLOAD_TRACE_GEN_HH
