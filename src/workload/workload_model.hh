/**
 * @file
 * The workload abstraction the system models run.
 *
 * Historically every consumer held a raw WorkloadSpec and constructed
 * PolybenchTraceSource instances directly, hard-wiring the synthetic
 * Polybench generator into the systems layer. WorkloadModel turns a
 * workload into a first-class object: a descriptor (the WorkloadSpec,
 * for layout and billing) plus a factory of per-agent trace sources.
 * Polybench and the graph-analytics engine (workload/graph.hh) both
 * implement it, so every place that consumes a workload — the systems,
 * the sweep runner, the bench harness — works with either.
 */

#ifndef DRAMLESS_WORKLOAD_WORKLOAD_MODEL_HH
#define DRAMLESS_WORKLOAD_WORKLOAD_MODEL_HH

#include <cstdint>
#include <memory>
#include <utility>

#include "accel/trace.hh"
#include "workload/polybench.hh"

namespace dramless
{
namespace workload
{

/** Placement and identity of one agent's trace within a run. */
struct AgentTraceParams
{
    /** Base address of the input dataset. */
    std::uint64_t inputBase = 0;
    /** Base address of the output region; 0 means "directly after
     *  the input" (generator-defined). */
    std::uint64_t outputBase = 0;
    /** This agent's index and the number of agents sharing the
     *  kernel. */
    std::uint32_t agentIndex = 0;
    std::uint32_t numAgents = 1;
    /** PE operand size (256-bit SIMD loads/stores). */
    std::uint32_t accessBytes = 32;
    std::uint64_t seed = 1;
};

/**
 * A per-agent trace stream with the extra surface the system models
 * need beyond accel::TraceSource: restartability and the agent's
 * output footprint (for selective-erasing hints).
 */
class AgentTraceSource : public accel::TraceSource
{
  public:
    /** Restart the trace (for repeated launches). */
    virtual void rewind() = 0;

    /** @return [base, size) of this agent's output region. */
    virtual std::pair<std::uint64_t, std::uint64_t>
    outputRegion() const = 0;
};

/**
 * One runnable workload: a descriptor plus a trace factory.
 *
 * Implementations must be immutable after construction so a single
 * model can be shared across SweepRunner jobs running on different
 * threads.
 */
class WorkloadModel
{
  public:
    virtual ~WorkloadModel() = default;

    /** @return the descriptor (name, volumes, pattern, class). The
     *  generated traces stay inside [inputBase, inputBase +
     *  spec().inputBytes) / the matching output window. */
    virtual const WorkloadSpec &spec() const = 0;

    /** @return a copy with data volumes scaled by @p factor. */
    virtual std::shared_ptr<const WorkloadModel>
    scaled(double factor) const = 0;

    /**
     * @return the model of one chunk when a heterogeneous run splits
     * the workload into @p chunks sequential pieces. Regular kernels
     * chunk cleanly (scaled(1/chunks)); data-dependent workloads
     * override this to keep the shared state every chunk re-touches.
     */
    virtual std::shared_ptr<const WorkloadModel>
    chunked(std::uint32_t chunks) const
    {
        return scaled(1.0 / double(chunks));
    }

    /** Build agent @p p.agentIndex's trace over this workload. */
    virtual std::unique_ptr<AgentTraceSource>
    makeAgentTrace(const AgentTraceParams &p) const = 0;
};

/**
 * Spec-backed model: the synthetic Polybench pattern generator
 * (workload/trace_gen.hh) behind the WorkloadModel interface.
 */
class PolybenchModel : public WorkloadModel
{
  public:
    explicit PolybenchModel(WorkloadSpec spec)
        : spec_(std::move(spec))
    {}

    const WorkloadSpec &spec() const override { return spec_; }

    std::shared_ptr<const WorkloadModel>
    scaled(double factor) const override
    {
        return std::make_shared<PolybenchModel>(
            spec_.scaled(factor));
    }

    std::unique_ptr<AgentTraceSource>
    makeAgentTrace(const AgentTraceParams &p) const override;

  private:
    WorkloadSpec spec_;
};

/** Wrap @p spec in a shared PolybenchModel. */
std::shared_ptr<const WorkloadModel> modelFor(const WorkloadSpec &spec);

} // namespace workload
} // namespace dramless

#endif // DRAMLESS_WORKLOAD_WORKLOAD_MODEL_HH
