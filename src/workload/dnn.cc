#include "workload/dnn.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dramless
{
namespace workload
{

namespace
{

/** Bytes per modeled activation/weight element (64-bit slots, the
 *  same granularity the graph engine uses for CSR entries). */
constexpr std::uint64_t kSlot = 8;

/** @return access words covering @p elems contiguous elements. */
std::uint64_t
wordsFor(std::uint64_t elems, std::uint32_t unit)
{
    return (elems * kSlot + unit - 1) / unit;
}

/** Split [begin, end) into numAgents contiguous pieces, spreading
 *  the remainder over the first agents. */
std::pair<std::uint32_t, std::uint32_t>
partition(std::uint32_t begin, std::uint32_t end, std::uint32_t agent,
          std::uint32_t agents)
{
    std::uint32_t total = end - begin;
    std::uint32_t per = total / agents;
    std::uint32_t extra = total % agents;
    std::uint32_t first =
        begin + agent * per + std::min(agent, extra);
    return {first, first + per + (agent < extra ? 1 : 0)};
}

std::uint32_t
scaleDim(std::uint32_t v, double factor)
{
    return std::max<std::uint32_t>(
        1, std::uint32_t(double(v) * factor + 0.5));
}

} // anonymous namespace

// ------------------------------ layers -----------------------------

const char *
dnnLayerTypeName(DnnLayerType t)
{
    switch (t) {
      case DnnLayerType::conv2d:
        return "conv2d";
      case DnnLayerType::fc:
        return "fc";
      case DnnLayerType::pool:
        return "pool";
    }
    return "?";
}

std::uint32_t
DnnLayerDesc::outHeight() const
{
    std::uint32_t span = inHeight + 2 * padH;
    fatal_if(span < kernelH, "%s kernel height %u exceeds padded "
             "input height %u", dnnLayerTypeName(type), kernelH,
             span);
    return (span - kernelH) / strideH + 1;
}

std::uint32_t
DnnLayerDesc::outWidth() const
{
    std::uint32_t span = inWidth + 2 * padW;
    fatal_if(span < kernelW, "%s kernel width %u exceeds padded "
             "input width %u", dnnLayerTypeName(type), kernelW,
             span);
    return (span - kernelW) / strideW + 1;
}

std::uint64_t
DnnLayerDesc::weightElemsPerChannel() const
{
    if (type == DnnLayerType::pool)
        return 0;
    return std::uint64_t(inChannels) * kernelH * kernelW;
}

std::uint64_t
DnnLayerDesc::macsPerOutput() const
{
    // Pool windows compare R*S elements of one channel; conv/fc
    // windows multiply-accumulate over every input channel.
    std::uint64_t window = std::uint64_t(kernelH) * kernelW;
    return type == DnnLayerType::pool ? window
                                      : window * inChannels;
}

DnnLayerDesc
convLayer(std::uint32_t in_c, std::uint32_t in_h, std::uint32_t in_w,
          std::uint32_t out_c, std::uint32_t kernel,
          std::uint32_t stride, std::uint32_t pad)
{
    DnnLayerDesc d;
    d.type = DnnLayerType::conv2d;
    d.inChannels = in_c;
    d.inHeight = in_h;
    d.inWidth = in_w;
    d.outChannels = out_c;
    d.kernelH = d.kernelW = kernel;
    d.strideH = d.strideW = stride;
    d.padH = d.padW = pad;
    return d;
}

DnnLayerDesc
poolLayer(std::uint32_t in_c, std::uint32_t in_h, std::uint32_t in_w,
          std::uint32_t window, std::uint32_t stride)
{
    DnnLayerDesc d;
    d.type = DnnLayerType::pool;
    d.inChannels = in_c;
    d.inHeight = in_h;
    d.inWidth = in_w;
    d.outChannels = in_c;
    d.kernelH = d.kernelW = window;
    d.strideH = d.strideW = stride;
    return d;
}

DnnLayerDesc
fcLayer(std::uint32_t n_in, std::uint32_t n_out)
{
    DnnLayerDesc d;
    d.type = DnnLayerType::fc;
    d.inChannels = 1;
    d.inHeight = 1;
    d.inWidth = n_in;
    d.outChannels = n_out;
    d.kernelH = 1;
    d.kernelW = n_in; // full-width window: one dot product per neuron
    return d;
}

// ------------------------------ model ------------------------------

DnnModel::DnnModel(DnnNetworkConfig cfg) : config_(std::move(cfg))
{
    fatal_if(config_.layers.empty(), "network '%s' has no layers",
             config_.name.c_str());
    fatal_if(config_.batch == 0, "batch must be positive");
    for (std::uint32_t l = 0; l < numLayers(); ++l) {
        const DnnLayerDesc &d = config_.layers[l];
        fatal_if(d.inChannels == 0 || d.inHeight == 0 ||
                     d.inWidth == 0 || d.outChannels == 0,
                 "layer %u of '%s' has a zero dimension", l,
                 config_.name.c_str());
        fatal_if(d.kernelH == 0 || d.kernelW == 0 ||
                     d.strideH == 0 || d.strideW == 0,
                 "layer %u of '%s' has a zero kernel/stride", l,
                 config_.name.c_str());
        // outHeight/outWidth fatal on windows larger than the padded
        // input; evaluate them here so bad shapes fail at build.
        d.outHeight();
        d.outWidth();
        if (d.type == DnnLayerType::pool) {
            fatal_if(d.outChannels != d.inChannels,
                     "pool layer %u of '%s' must keep its channel "
                     "count (%u != %u)", l, config_.name.c_str(),
                     d.outChannels, d.inChannels);
        }
        if (d.type == DnnLayerType::fc) {
            fatal_if(d.inChannels != 1 || d.inHeight != 1 ||
                         d.kernelH != 1 || d.kernelW != d.inWidth ||
                         d.padH != 0 || d.padW != 0,
                     "fc layer %u of '%s' must be a full-width "
                     "window over a flat 1x1xN input (use "
                     "fcLayer())", l, config_.name.c_str());
        }
        if (l == 0)
            continue;
        const DnnLayerDesc &prev = config_.layers[l - 1];
        if (d.type == DnnLayerType::fc) {
            // fc flattens the producer's volume.
            fatal_if(d.inputElems() != prev.outputElems(),
                     "layer %u of '%s': fc input %llu elements != "
                     "previous output %llu", l, config_.name.c_str(),
                     (unsigned long long)d.inputElems(),
                     (unsigned long long)prev.outputElems());
        } else {
            fatal_if(d.inChannels != prev.outChannels ||
                         d.inHeight != prev.outHeight() ||
                         d.inWidth != prev.outWidth(),
                     "layer %u of '%s': input %ux%ux%u does not "
                     "match previous output %ux%ux%u", l,
                     config_.name.c_str(), d.inChannels, d.inHeight,
                     d.inWidth, prev.outChannels, prev.outHeight(),
                     prev.outWidth());
        }
    }
}

std::uint64_t
DnnModel::totalWeightElems() const
{
    std::uint64_t total = 0;
    for (const DnnLayerDesc &d : config_.layers)
        total += d.weightElemsPerChannel() * d.outChannels;
    return total;
}

std::uint64_t
DnnModel::totalMacs() const
{
    std::uint64_t total = 0;
    for (const DnnLayerDesc &d : config_.layers) {
        total += d.macsPerOutput() * std::uint64_t(d.outChannels) *
                 d.outHeight() * d.outWidth();
    }
    return total;
}

DnnModel::ActGeom
DnnModel::inputGeom(std::uint32_t l) const
{
    if (l == 0) {
        const DnnLayerDesc &d = config_.layers[0];
        return {d.inChannels, d.inHeight, d.inWidth};
    }
    return outputGeom(l - 1);
}

DnnModel::ActGeom
DnnModel::outputGeom(std::uint32_t l) const
{
    const DnnLayerDesc &d = config_.layers[l];
    return {d.outChannels, d.outHeight(), d.outWidth()};
}

// ------------------------------ layout -----------------------------

std::uint64_t
DnnLayout::rowPitch(std::uint32_t width) const
{
    // Touched words plus one guard unit: each (channel, row) is a
    // distinct double-buffer DMA slot, so bursts the hardware issues
    // per row can never be address-contiguous with the next row's.
    return (wordsFor(width, unit) + 1) * unit;
}

std::uint64_t
DnnLayout::actBytes(const DnnModel::ActGeom &g) const
{
    return std::uint64_t(g.channels) * g.height * rowPitch(g.width);
}

DnnLayout
DnnLayout::of(const DnnModel &m, std::uint32_t unit,
              std::uint64_t input_base, std::uint64_t output_base)
{
    DnnLayout l;
    l.unit = unit;
    std::uint64_t cursor = input_base;
    for (std::uint32_t i = 0; i < m.numLayers(); ++i) {
        const DnnLayerDesc &d = m.layers()[i];
        l.weightBase.push_back(cursor);
        std::uint64_t pitch =
            wordsFor(d.weightElemsPerChannel(), unit) * unit;
        l.weightPitch.push_back(pitch);
        cursor += pitch * d.outChannels;
    }
    l.imageBase = cursor;
    l.imageBytes = l.actBytes(m.inputGeom(0));
    l.inputBytes = l.imageBase + l.imageBytes - input_base;
    l.outBase = output_base != 0 ? output_base
                                 : input_base + l.inputBytes;
    for (std::uint32_t i = 1; i < m.numLayers(); ++i) {
        l.bufBytes =
            std::max(l.bufBytes, l.actBytes(m.inputGeom(i)));
    }
    l.finalBase = l.outBase + 2 * l.bufBytes;
    l.finalBytes = l.actBytes(m.outputGeom(m.numLayers() - 1));
    l.outBytes = 2 * l.bufBytes + l.finalBytes;
    return l;
}

std::uint64_t
DnnLayout::actInBase(const DnnModel &m, std::uint32_t l) const
{
    return l == 0 ? imageBase : actOutBase(m, l - 1);
}

std::uint64_t
DnnLayout::actOutBase(const DnnModel &m, std::uint32_t l) const
{
    if (l + 1 == m.numLayers())
        return finalBase;
    // Intermediate activations ping-pong: even layers write buffer
    // A, odd layers buffer B, so layer l+1 always reads the buffer
    // layer l wrote and never the one it is writing.
    return l % 2 == 0 ? outBase : outBase + bufBytes;
}

// ----------------------------- workload ----------------------------

DnnWorkload::DnnWorkload(const DnnNetworkConfig &cfg)
    : DnnWorkload(std::make_shared<DnnModel>(cfg), 1)
{}

DnnWorkload::DnnWorkload(std::shared_ptr<const DnnModel> model,
                         std::uint32_t chunk_count)
    : model_(std::move(model)), chunkCount_(chunk_count)
{
    fatal_if(chunkCount_ == 0, "chunks must be positive");
    buildSpec();
}

std::pair<std::uint32_t, std::uint32_t>
DnnWorkload::ownedChannels(std::uint32_t l) const
{
    // Chunk 0 is the representative piece: the hetero pipeline runs
    // the same chunk model once per chunk launch.
    return partition(0, model_->layers()[l].outChannels, 0,
                     chunkCount_);
}

void
DnnWorkload::buildSpec()
{
    const std::uint32_t unit = 32;
    const DnnNetworkConfig &cfg = model_->config();
    DnnLayout layout = DnnLayout::of(*model_, unit, 0, 0);

    spec_.name = csprintf("%s_b%u", cfg.name.c_str(), cfg.batch);
    bool has_spatial = false;
    std::uint64_t owned_weight_bytes = 0, owned_macs = 0;
    std::uint64_t owned_store_bytes = 0;
    std::uint64_t restage_bytes = 0;
    for (std::uint32_t l = 0; l < model_->numLayers(); ++l) {
        const DnnLayerDesc &d = model_->layers()[l];
        if (d.type != DnnLayerType::fc)
            has_spatial = true;
        auto [k0, k1] = ownedChannels(l);
        std::uint64_t owned_k = k1 - k0;
        owned_weight_bytes += owned_k * layout.weightPitch[l];
        owned_macs += owned_k * d.outHeight() * d.outWidth() *
                      d.macsPerOutput();
        owned_store_bytes += owned_k * d.outHeight() *
                             wordsFor(d.outWidth(), unit) * unit;
        if (l > 0)
            restage_bytes += layout.actBytes(model_->inputGeom(l));
    }

    // A chunk ships its own weight slice plus the image — and,
    // because its output channels consume every input channel of
    // every intermediate volume (which the other chunks produce),
    // the full intermediate-activation footprint restages with each
    // chunk. The full model stages weights + image once and keeps
    // activations resident.
    spec_.inputBytes = owned_weight_bytes + layout.imageBytes +
                       (chunkCount_ > 1 ? restage_bytes : 0);
    spec_.outputBytes =
        std::max<std::uint64_t>(unit, owned_store_bytes);
    spec_.pattern =
        has_spatial ? Pattern::strided : Pattern::streaming;
    double ops_per_byte =
        double(cfg.batch) * double(owned_macs) /
        double(spec_.inputBytes + spec_.outputBytes);
    spec_.opsPerByte = ops_per_byte;
    // Weight streaming dominates inference volume on fc-heavy nets;
    // conv-heavy nets reuse their small windows enough to be
    // compute-bound.
    if (owned_weight_bytes * 2 >
        spec_.inputBytes + spec_.outputBytes) {
        spec_.klass = WorkloadClass::readIntensive;
    } else if (ops_per_byte > 1.0) {
        spec_.klass = WorkloadClass::computeIntensive;
    } else {
        spec_.klass = WorkloadClass::balanced;
    }
}

std::shared_ptr<const WorkloadModel>
DnnWorkload::scaled(double factor) const
{
    fatal_if(factor <= 0.0, "scale factor must be positive");
    DnnNetworkConfig cfg = model_->config();
    // Scale the channel/feature axes and re-propagate the shape
    // chain (spatial dims are fixed by the image, so conv/pool
    // windows keep fitting).
    for (std::uint32_t l = 0; l < cfg.layers.size(); ++l) {
        DnnLayerDesc &d = cfg.layers[l];
        if (l == 0) {
            if (d.type == DnnLayerType::fc) {
                d.inWidth = scaleDim(d.inWidth, factor);
                d.kernelW = d.inWidth;
            } else {
                d.inChannels = scaleDim(d.inChannels, factor);
            }
        } else {
            const DnnLayerDesc &prev = cfg.layers[l - 1];
            if (d.type == DnnLayerType::fc) {
                d.inChannels = 1;
                d.inHeight = 1;
                d.inWidth = std::uint32_t(prev.outputElems());
                d.kernelW = d.inWidth;
            } else {
                d.inChannels = prev.outChannels;
                d.inHeight = prev.outHeight();
                d.inWidth = prev.outWidth();
            }
        }
        if (d.type == DnnLayerType::pool)
            d.outChannels = d.inChannels;
        else
            d.outChannels = scaleDim(d.outChannels, factor);
    }
    auto copy = std::shared_ptr<DnnWorkload>(new DnnWorkload(
        std::make_shared<DnnModel>(std::move(cfg)), 1));
    // Scaling is a volume knob, not a new workload: keep the name so
    // result matrices key the same row before and after scaling.
    copy->spec_.name = spec_.name;
    return copy;
}

std::shared_ptr<const WorkloadModel>
DnnWorkload::chunked(std::uint32_t chunks) const
{
    fatal_if(chunks == 0, "chunks must be positive");
    auto copy = std::shared_ptr<DnnWorkload>(
        new DnnWorkload(model_, chunkCount_ * chunks));
    copy->spec_.name = spec_.name;
    return copy;
}

std::unique_ptr<AgentTraceSource>
DnnWorkload::makeAgentTrace(const AgentTraceParams &p) const
{
    fatal_if(p.numAgents == 0 || p.agentIndex >= p.numAgents,
             "bad agent slice");
    fatal_if(p.accessBytes == 0 || p.accessBytes % 32 != 0,
             "access size must be a positive multiple of 32");
    DnnLayout layout = DnnLayout::of(*model_, p.accessBytes,
                                     p.inputBase, p.outputBase);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> owned;
    for (std::uint32_t l = 0; l < model_->numLayers(); ++l) {
        auto [k0, k1] = ownedChannels(l);
        owned.push_back(
            partition(k0, k1, p.agentIndex, p.numAgents));
    }
    return std::make_unique<DnnTraceSource>(
        model_, layout, std::move(owned), model_->config().batch);
}

// --------------------------- trace source --------------------------

DnnTraceSource::DnnTraceSource(
    std::shared_ptr<const DnnModel> model, const DnnLayout &layout,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> owned,
    std::uint32_t batch)
    : model_(std::move(model)), layout_(layout),
      owned_(std::move(owned)), batch_(batch)
{
    rewind();
}

void
DnnTraceSource::rewind()
{
    b_ = 0;
    l_ = 0;
    tile_ = 0;
    emittedAny_ = false;
    done_ = false;
    staged_.clear();
}

std::pair<std::uint64_t, std::uint64_t>
DnnTraceSource::outputRegion() const
{
    // Every agent writes its channel planes of both ping-pong
    // buffers and the final region; report the whole footprint, like
    // the BFS trace does for its scattered discovery stores.
    return {layout_.outBase, layout_.outBytes};
}

void
DnnTraceSource::stageTilePass(std::uint32_t l, std::uint32_t t0,
                              std::uint32_t t1)
{
    const DnnLayerDesc &d = model_->layers()[l];
    const DnnModel::ActGeom geom = model_->inputGeom(l);
    const std::uint32_t unit = layout_.unit;

    // Weight streaming: the tile's per-channel blocks, word by word
    // and contiguous (they coalesce into long PRAM bursts).
    if (d.type != DnnLayerType::pool) {
        std::uint64_t wwords = layout_.weightPitch[l] / unit;
        for (std::uint32_t k = t0; k < t1; ++k) {
            std::uint64_t base = layout_.weightBase[l] +
                                 std::uint64_t(k) *
                                     layout_.weightPitch[l];
            for (std::uint64_t w = 0; w < wwords; ++w) {
                staged_.push_back(accel::TraceItem::loadOf(
                    base + w * unit, unit));
            }
        }
    }

    const std::uint64_t in_base = layout_.actInBase(*model_, l);
    const std::uint64_t out_base = layout_.actOutBase(*model_, l);
    const std::uint64_t in_pitch = layout_.rowPitch(geom.width);
    const std::uint64_t in_row_words = wordsFor(geom.width, unit);
    const std::uint32_t out_h = d.outHeight();
    const std::uint32_t out_w = d.outWidth();
    const std::uint64_t out_pitch = layout_.rowPitch(out_w);
    const std::uint64_t out_row_words = wordsFor(out_w, unit);
    // fc reads the whole flattened input per tile pass; conv/pool
    // slide a window over rows (desc dims == buffer geometry,
    // enforced at model build).
    const bool windowed = d.type != DnnLayerType::fc;

    std::uint32_t buffered_end = 0;
    for (std::uint32_t p = 0; p < out_h; ++p) {
        std::uint32_t row_begin = 0, row_end = geom.height;
        if (windowed) {
            std::int64_t start =
                std::int64_t(p) * d.strideH - d.padH;
            row_begin = std::uint32_t(std::max<std::int64_t>(
                0, start));
            row_end = std::uint32_t(std::min<std::int64_t>(
                geom.height, start + d.kernelH));
            if (row_end < row_begin)
                row_end = row_begin;
        }
        // Sliding-window reuse: rows already resident in the double
        // buffer from the previous output row are not refetched.
        for (std::uint32_t h = std::max(row_begin, buffered_end);
             h < row_end; ++h) {
            // Conv/fc output channels consume every input channel;
            // pool reduces each channel independently.
            std::uint32_t c0 = 0, c1 = geom.channels;
            if (d.type == DnnLayerType::pool) {
                c0 = t0;
                c1 = t1;
            }
            for (std::uint32_t c = c0; c < c1; ++c) {
                std::uint64_t row = in_base +
                    (std::uint64_t(c) * geom.height + h) * in_pitch;
                for (std::uint64_t w = 0; w < in_row_words; ++w) {
                    staged_.push_back(accel::TraceItem::loadOf(
                        row + w * unit, unit));
                }
            }
        }
        buffered_end = std::max(buffered_end, row_end);

        // Output-stationary compute: the tile's partial sums for
        // this output row accumulate PE-locally (one instruction per
        // MAC, no psum traffic).
        staged_.push_back(accel::TraceItem::computeOf(
            std::uint64_t(t1 - t0) * out_w * d.macsPerOutput()));

        // The row's outputs are final once the window passes: store
        // each tile channel's output row.
        for (std::uint32_t k = t0; k < t1; ++k) {
            std::uint64_t row = out_base +
                (std::uint64_t(k) * out_h + p) * out_pitch;
            for (std::uint64_t w = 0; w < out_row_words; ++w) {
                staged_.push_back(accel::TraceItem::storeOf(
                    row + w * unit, unit));
            }
        }
    }
}

void
DnnTraceSource::refill()
{
    const std::uint32_t tile_cfg = model_->config().tileChannels;
    while (staged_.empty() && !done_) {
        if (l_ >= model_->numLayers()) {
            ++b_;
            l_ = 0;
            tile_ = 0;
            if (b_ >= batch_) {
                if (!emittedAny_) {
                    // Empty partition (more agents than channels in
                    // every layer): emit a sentinel so the PE still
                    // boots and retires.
                    staged_.push_back(
                        accel::TraceItem::computeOf(1));
                }
                done_ = true;
            }
            continue;
        }
        auto [k0, k1] = owned_[l_];
        std::uint32_t tile_begin = k0 + tile_;
        if (k0 >= k1 || tile_begin >= k1) {
            ++l_;
            tile_ = 0;
            continue;
        }
        std::uint32_t tile_k =
            tile_cfg == 0 ? k1 - k0 : tile_cfg;
        std::uint32_t tile_end =
            std::min(k1, tile_begin + tile_k);
        stageTilePass(l_, tile_begin, tile_end);
        tile_ += tile_end - tile_begin;
        emittedAny_ = true;
    }
}

bool
DnnTraceSource::next(accel::TraceItem &out)
{
    if (staged_.empty())
        refill();
    if (staged_.empty())
        return false;
    out = staged_.front();
    staged_.pop_front();
    return true;
}

// ----------------------------- registry ----------------------------

std::vector<DnnNetworkConfig>
dnnNetworks()
{
    std::vector<DnnNetworkConfig> nets;

    // A LeNet-style CNN: small convolutions with pooling, then a
    // fully-connected head — the conv-reuse-heavy end of the family.
    DnnNetworkConfig lenet;
    lenet.name = "lenet";
    lenet.layers = {
        convLayer(1, 32, 32, 6, 5),
        poolLayer(6, 28, 28, 2, 2),
        convLayer(6, 14, 14, 16, 5),
        poolLayer(16, 10, 10, 2, 2),
        fcLayer(400, 120),
        fcLayer(120, 84),
        fcLayer(84, 10),
    };
    nets.push_back(lenet);

    // An MNIST-shaped MLP: pure fully-connected layers, weight
    // streaming dominated.
    DnnNetworkConfig mlp;
    mlp.name = "mlp";
    mlp.layers = {
        fcLayer(784, 256),
        fcLayer(256, 128),
        fcLayer(128, 10),
    };
    nets.push_back(mlp);

    // A transformer-style feed-forward stack: alternating expand /
    // contract GEMMs (d_model 192, d_ff 768) — the GEMM-heavy,
    // bandwidth-bound end of the family.
    DnnNetworkConfig ffn;
    ffn.name = "ffn";
    ffn.layers = {
        fcLayer(192, 768),
        fcLayer(768, 192),
        fcLayer(192, 768),
        fcLayer(768, 192),
    };
    nets.push_back(ffn);

    return nets;
}

DnnNetworkConfig
dnnNetworkByName(const std::string &name)
{
    for (DnnNetworkConfig &cfg : dnnNetworks()) {
        if (cfg.name == name)
            return cfg;
    }
    fatal("unknown DNN network '%s' (known: lenet, mlp, ffn)",
          name.c_str());
}

std::shared_ptr<const WorkloadModel>
dnnModelFor(const std::string &name, std::uint32_t batch)
{
    DnnNetworkConfig cfg = dnnNetworkByName(name);
    cfg.batch = batch;
    return std::make_shared<DnnWorkload>(cfg);
}

} // namespace workload
} // namespace dramless
