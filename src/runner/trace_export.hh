/**
 * @file
 * Env-driven trace enablement for sweep jobs.
 *
 * Tracing is wired next to the DRAMLESS_OUT_JSON result plumbing so
 * every bench/fig binary and bench/sweep gets it for free:
 *
 *   DRAMLESS_TRACE=<path>          enable tracing; the merged Chrome
 *                                  trace of every job lands at <path>
 *                                  ("-" writes it to stdout at exit)
 *   DRAMLESS_TRACE_FILTER=<glob>   only record matching component
 *                                  categories (pram, ctrl, flash,
 *                                  accel, host, system); '*'/'?'
 *                                  globs, comma-separated
 *   DRAMLESS_TRACE_SUMMARY=<path>  also write the per-component
 *                                  summary table ("-" = stderr)
 *
 * A JobTraceScope brackets one simulation job: it installs a private
 * trace::Tracer on the current thread, and on destruction writes a
 * per-job trace file "<stem>.<system>.<workload><ext>" beside <path>
 * and queues the job's events for the merged file. The merged file
 * (and summary) flush at process exit, or explicitly through
 * flushTraceSessions(). Parallel sweeps therefore get one trace per
 * job plus one combined, Perfetto-loadable session file.
 */

#ifndef DRAMLESS_RUNNER_TRACE_EXPORT_HH
#define DRAMLESS_RUNNER_TRACE_EXPORT_HH

#include <memory>
#include <string>

#include "sim/trace.hh"

namespace dramless
{
namespace runner
{

/**
 * RAII trace scope for one (system, workload) job. No-op when
 * DRAMLESS_TRACE is unset or a tracer is already installed on this
 * thread (so nesting never double-records).
 */
class JobTraceScope
{
  public:
    JobTraceScope(const std::string &system, const std::string &workload);
    ~JobTraceScope();

    JobTraceScope(const JobTraceScope &) = delete;
    JobTraceScope &operator=(const JobTraceScope &) = delete;

    /** @return true when this scope actually installed a tracer. */
    bool active() const { return tracer_ != nullptr; }

  private:
    std::string label_;
    std::string path_;
    std::unique_ptr<trace::Tracer> tracer_;
    std::unique_ptr<trace::ScopedTracer> scoped_;
};

/**
 * Write every pending merged trace session (and summary) now and
 * clear them. Called automatically at process exit; tests call it to
 * inspect the merged file mid-process. fatal()s on an unwritable
 * path so a sweep never reports success while tracing silently
 * failed.
 */
void flushTraceSessions();

/** @return the sanitized per-job trace path for (system, workload). */
std::string jobTracePath(const std::string &base,
                         const std::string &system,
                         const std::string &workload);

} // namespace runner
} // namespace dramless

#endif // DRAMLESS_RUNNER_TRACE_EXPORT_HH
