/**
 * @file
 * Structured result collection and export.
 *
 * Every bench binary funnels its results through a ResultSink: the
 * per-run RunResult records plus any derived metrics (geomeans,
 * headline ratios) and descriptive labels. The sink renders the whole
 * collection as machine-readable JSON or CSV, so one code path backs
 * the DRAMLESS_OUT_JSON / DRAMLESS_OUT_CSV knobs of all binaries and
 * future BENCH_*.json perf tracking.
 */

#ifndef DRAMLESS_RUNNER_RESULT_SINK_HH
#define DRAMLESS_RUNNER_RESULT_SINK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "systems/metrics.hh"

namespace dramless
{
namespace runner
{

/**
 * Honor the export environment knobs for an arbitrary document pair:
 * invoke @p json_emit against the path in DRAMLESS_OUT_JSON and/or
 * @p csv_emit against DRAMLESS_OUT_CSV when set (a value of "-"
 * selects stdout); fatal() on unwritable paths. Either emitter may
 * be null to skip that format. Shared by ResultSink and the
 * serving-layer sink so every binary honors the same knobs.
 */
void exportFromEnv(
    const std::function<void(std::ostream &)> &json_emit,
    const std::function<void(std::ostream &)> &csv_emit);

/** Results keyed by (system label, workload name). */
using ResultMatrix =
    std::map<std::string, std::map<std::string, systems::RunResult>>;

/** Collects runs and derived metrics for structured export. */
class ResultSink
{
  public:
    /**
     * @param name experiment name (e.g. "fig15_bandwidth")
     * @param description one-line human description
     */
    explicit ResultSink(std::string name,
                        std::string description = "");

    /** Append one run record. */
    void add(const systems::RunResult &r) { runs_.push_back(r); }

    /** Append every run of @p matrix in key order. */
    void add(const ResultMatrix &matrix);

    /** Record a derived numeric metric (insertion order kept). */
    void metric(const std::string &key, double value);

    /** Record a descriptive string label (insertion order kept). */
    void label(const std::string &key, const std::string &value);

    /** @return the collected runs in insertion order. */
    const std::vector<systems::RunResult> &runs() const
    {
        return runs_;
    }

    /** @return the runs regrouped as a (system, workload) matrix. */
    ResultMatrix matrix() const;

    /**
     * Cap on time-series samples per run in the JSON export;
     * 0 keeps full series. Defaults to 64 points so a full
     * 10x15 matrix stays compact.
     */
    void setSeriesPoints(std::size_t n) { seriesPoints_ = n; }

    /**
     * Write the whole collection as one JSON document:
     * {"experiment","description","labels","metrics","runs"}.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Write the runs as CSV: one header row plus one row per run
     * (scalar fields only; series are summarized by their means).
     */
    void writeCsv(std::ostream &os) const;

    /**
     * Honor the export environment knobs: write JSON to the path in
     * DRAMLESS_OUT_JSON and/or CSV to DRAMLESS_OUT_CSV when set
     * (a value of "-" selects stdout). fatal() on unwritable paths.
     */
    void exportFromEnv() const;

  private:
    std::string name_;
    std::string description_;
    std::vector<systems::RunResult> runs_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, std::string>> labels_;
    std::size_t seriesPoints_ = 64;
};

} // namespace runner
} // namespace dramless

#endif // DRAMLESS_RUNNER_RESULT_SINK_HH
