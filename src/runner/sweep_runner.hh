/**
 * @file
 * Parallel experiment runner.
 *
 * Every evaluation in the reproduction is a matrix of independent
 * (system, workload) simulations: each job builds a private system
 * instance with its own EventQueue, runs one workload, and returns a
 * RunResult. Nothing is shared between jobs, so the matrix is
 * embarrassingly parallel and per-run determinism is untouched —
 * SweepRunner executes jobs on a thread pool and stores results by
 * job index, so the output is bit-identical to a serial run of the
 * same job list regardless of worker count or scheduling order.
 */

#ifndef DRAMLESS_RUNNER_SWEEP_RUNNER_HH
#define DRAMLESS_RUNNER_SWEEP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "systems/factory.hh"
#include "systems/metrics.hh"
#include "systems/system.hh"
#include "workload/polybench.hh"
#include "workload/workload_model.hh"

namespace dramless
{
namespace runner
{

/**
 * One independent simulation. @c run constructs everything the job
 * needs (system instance, event queue) and must not touch shared
 * mutable state; the labels only name the job for progress output and
 * result keying.
 */
struct SweepJob
{
    /** System label (result matrix row). */
    std::string system;
    /** Workload label (result matrix column). */
    std::string workload;
    /** Build a fresh system and run the workload. */
    std::function<systems::RunResult()> run;
};

/** Build the canonical job for (kind, spec) under @p opts. */
SweepJob makeJob(systems::SystemKind kind,
                 const workload::WorkloadSpec &spec,
                 const systems::SystemOptions &opts);

/** Build the job running @p model (shared, immutable) on @p kind. */
SweepJob
makeJob(systems::SystemKind kind,
        std::shared_ptr<const workload::WorkloadModel> model,
        const systems::SystemOptions &opts);

/** Cross product @p kinds x @p specs in row-major (kind-major) order. */
std::vector<SweepJob>
makeMatrixJobs(const std::vector<systems::SystemKind> &kinds,
               const std::vector<workload::WorkloadSpec> &specs,
               const systems::SystemOptions &opts);

/** Cross product over workload models (Polybench, graphs, ...). */
std::vector<SweepJob>
makeMatrixJobs(
    const std::vector<systems::SystemKind> &kinds,
    const std::vector<std::shared_ptr<const workload::WorkloadModel>>
        &models,
    const systems::SystemOptions &opts);

/**
 * Worker count taken from the DRAMLESS_JOBS environment variable;
 * 0 or unset means one worker per hardware thread. The value must
 * be a fully-formed non-negative integer: anything else ("abc",
 * "4x", "-2", "") is rejected with a warn() and falls back to the
 * default rather than silently becoming 0 or a truncated prefix.
 */
unsigned jobsFromEnv();

/**
 * Per-job event-kernel shard count taken from the DRAMLESS_SHARDS
 * environment variable (see SystemOptions::shards): unset means 1
 * (serial kernel), 0 means one worker per hardware thread. Same
 * strict parsing as jobsFromEnv(): malformed values are rejected
 * with a warn() and fall back to the serial kernel.
 */
unsigned shardsFromEnv();

/**
 * Resolve a sweep's worker count against the jobs x shards core
 * budget: with @p shards_per_job event-kernel workers inside every
 * job, running @p workers jobs concurrently occupies
 * workers * shards_per_job hardware threads. When that exceeds
 * @p hardware_threads, warn and clamp the job-level pool to
 * max(1, hardware_threads / shards_per_job) — oversubscribing cores
 * with simulation threads only adds context-switch overhead, never
 * throughput. shards_per_job of 0 ("one worker per core") claims the
 * whole budget: the pool clamps to one job at a time.
 */
unsigned clampWorkersToBudget(unsigned workers,
                              unsigned shards_per_job,
                              unsigned hardware_threads);

/** Thread-pool executor for SweepJob lists. */
class SweepRunner
{
  public:
    /** Called after each job completes: (done, total, finished job). */
    using Progress =
        std::function<void(std::size_t, std::size_t, const SweepJob &)>;

    /**
     * @param num_workers worker threads; 0 means one per hardware
     *        thread (and at least one)
     * @param shards_per_job event-kernel workers every job runs
     *        internally (SystemOptions::shards); values other than 1
     *        shrink the job-level pool so jobs x shards stays within
     *        the hardware thread budget (see clampWorkersToBudget)
     */
    explicit SweepRunner(unsigned num_workers = 0,
                         unsigned shards_per_job = 1);

    /** @return the resolved worker count. */
    unsigned numWorkers() const { return numWorkers_; }

    /**
     * Run every job and return results in job order. Jobs are handed
     * to workers in index order; with one worker this degenerates to
     * a plain serial loop on the calling thread.
     *
     * A job that throws std::exception never loses its result slot
     * or skews the matrix indexing: the exception is caught on the
     * worker, the job's row keeps its labels, and the message lands
     * in RunResult::error while the remaining jobs run to
     * completion. After the pool drains, any failed row aborts via
     * fatal() by default — results feed golden-file comparisons, so
     * a partially-failed matrix must never be silently exported.
     * Call setContinueOnError(true) to instead get the full result
     * vector back with failures marked (callers must then check
     * RunResult::failed() before exporting).
     *
     * @param progress optional completion callback, invoked from
     *        worker threads under an internal mutex (safe to print);
     *        failed jobs still count toward @c done.
     */
    std::vector<systems::RunResult>
    run(const std::vector<SweepJob> &jobs,
        const Progress &progress = nullptr) const;

    /**
     * Keep the sweep alive past job failures: when set, run()
     * returns every row (failed ones flagged via RunResult::failed())
     * instead of fatal()ing on the first recorded failure.
     */
    void setContinueOnError(bool keep) { continueOnError_ = keep; }

    /** @return whether failed jobs abort the sweep (default) or not. */
    bool continueOnError() const { return continueOnError_; }

  private:
    unsigned numWorkers_;
    bool continueOnError_ = false;
};

/**
 * Progress callback that repaints one stderr status line
 * ("[done/total] system workload") and clears it when done.
 */
SweepRunner::Progress stderrProgress();

} // namespace runner
} // namespace dramless

#endif // DRAMLESS_RUNNER_SWEEP_RUNNER_HH
