#include "runner/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "runner/trace_export.hh"
#include "sim/logging.hh"

namespace dramless
{
namespace runner
{

SweepJob
makeJob(systems::SystemKind kind, const workload::WorkloadSpec &spec,
        const systems::SystemOptions &opts)
{
    return SweepJob{
        systems::SystemFactory::label(kind), spec.name,
        [kind, spec, opts]() {
            auto sys = systems::SystemFactory::create(kind, opts);
            return sys->run(spec);
        }};
}

SweepJob
makeJob(systems::SystemKind kind,
        std::shared_ptr<const workload::WorkloadModel> model,
        const systems::SystemOptions &opts)
{
    fatal_if(!model, "makeJob: null workload model");
    return SweepJob{
        systems::SystemFactory::label(kind), model->spec().name,
        [kind, model, opts]() {
            auto sys = systems::SystemFactory::create(kind, opts);
            return sys->run(*model);
        }};
}

std::vector<SweepJob>
makeMatrixJobs(const std::vector<systems::SystemKind> &kinds,
               const std::vector<workload::WorkloadSpec> &specs,
               const systems::SystemOptions &opts)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(kinds.size() * specs.size());
    for (systems::SystemKind kind : kinds)
        for (const auto &spec : specs)
            jobs.push_back(makeJob(kind, spec, opts));
    return jobs;
}

std::vector<SweepJob>
makeMatrixJobs(
    const std::vector<systems::SystemKind> &kinds,
    const std::vector<std::shared_ptr<const workload::WorkloadModel>>
        &models,
    const systems::SystemOptions &opts)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(kinds.size() * models.size());
    for (systems::SystemKind kind : kinds)
        for (const auto &model : models)
            jobs.push_back(makeJob(kind, model, opts));
    return jobs;
}

unsigned
jobsFromEnv()
{
    const char *env = std::getenv("DRAMLESS_JOBS");
    if (env == nullptr)
        return 0;
    // atol-style prefix parsing silently turned "abc" into 0 (= all
    // cores) and "4x" into 4; require the whole string to be one
    // in-range non-negative integer and fall back loudly otherwise.
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(env, &end, 10);
    bool parsed = end != env && *end == '\0' && errno != ERANGE &&
                  v >= 0 &&
                  v <= long(std::numeric_limits<unsigned>::max());
    if (!parsed) {
        warn("ignoring DRAMLESS_JOBS='%s' (not a non-negative "
             "integer); using one worker per hardware thread",
             env);
        return 0;
    }
    return unsigned(v);
}

unsigned
shardsFromEnv()
{
    const char *env = std::getenv("DRAMLESS_SHARDS");
    if (env == nullptr)
        return 1;
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(env, &end, 10);
    bool parsed = end != env && *end == '\0' && errno != ERANGE &&
                  v >= 0 &&
                  v <= long(std::numeric_limits<unsigned>::max());
    if (!parsed) {
        warn("ignoring DRAMLESS_SHARDS='%s' (not a non-negative "
             "integer); using the serial event kernel",
             env);
        return 1;
    }
    return unsigned(v);
}

unsigned
clampWorkersToBudget(unsigned workers, unsigned shards_per_job,
                     unsigned hardware_threads)
{
    if (hardware_threads == 0)
        hardware_threads = 1;
    // shards = 0 means "one kernel worker per core": one such job
    // already claims the whole budget.
    unsigned per_job =
        shards_per_job == 0 ? hardware_threads : shards_per_job;
    if (std::uint64_t(workers) * per_job <= hardware_threads)
        return workers;
    unsigned clamped =
        std::max(1u, hardware_threads / std::min(per_job,
                                                 hardware_threads));
    warn("%u sweep jobs x %u kernel shards oversubscribes %u "
         "hardware threads; clamping to %u concurrent jobs",
         workers, per_job, hardware_threads, clamped);
    return clamped;
}

SweepRunner::SweepRunner(unsigned num_workers,
                         unsigned shards_per_job)
    : numWorkers_(num_workers)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    if (numWorkers_ == 0)
        numWorkers_ = hw;
    // shards_per_job == 1 keeps the historical contract: an explicit
    // worker count is honored even past the core count (the jobs are
    // blocking-light, so modest oversubscription is harmless). Any
    // other value means every job multiplies into shard threads, and
    // the product must fit the budget.
    if (shards_per_job != 1)
        numWorkers_ = clampWorkersToBudget(numWorkers_,
                                           shards_per_job, hw);
}

std::vector<systems::RunResult>
SweepRunner::run(const std::vector<SweepJob> &jobs,
                 const Progress &progress) const
{
    std::vector<systems::RunResult> results(jobs.size());
    if (jobs.empty())
        return results;

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;
    std::atomic<bool> failed{false};
    std::string failMessage;

    auto worker = [&]() {
        for (;;) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            try {
                JobTraceScope traceScope(jobs[i].system,
                                         jobs[i].workload);
                results[i] = jobs[i].run();
            } catch (const std::exception &e) {
                // The job keeps its slot: labels stay valid, the
                // error message marks the row, and the pool moves on
                // so sibling jobs never lose their results or their
                // index in the matrix.
                results[i].system = jobs[i].system;
                results[i].workload = jobs[i].workload;
                results[i].error =
                    e.what() != nullptr && *e.what() != '\0'
                        ? e.what()
                        : "unknown std::exception";
                std::lock_guard<std::mutex> lock(progressMutex);
                if (!failed.exchange(true,
                                     std::memory_order_relaxed)) {
                    failMessage = csprintf(
                        "sweep job '%s/%s' failed: %s",
                        jobs[i].system.c_str(),
                        jobs[i].workload.c_str(),
                        results[i].error.c_str());
                }
            }
            std::size_t d =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                progress(d, jobs.size(), jobs[i]);
            }
        }
    };

    unsigned workers =
        unsigned(std::min<std::size_t>(numWorkers_, jobs.size()));
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    // Default policy: a partially-failed matrix must never be
    // silently exported — results feed golden files and figures.
    if (failed.load(std::memory_order_relaxed) && !continueOnError_)
        fatal("%s", failMessage.c_str());
    return results;
}

SweepRunner::Progress
stderrProgress()
{
    return [](std::size_t done, std::size_t total,
              const SweepJob &job) {
        if (done == total) {
            std::fprintf(stderr, "%-60s\r", "");
        } else {
            std::fprintf(stderr, "  [%3zu/%3zu] %-24s %-12s\r", done,
                         total, job.system.c_str(),
                         job.workload.c_str());
        }
        std::fflush(stderr);
    };
}

} // namespace runner
} // namespace dramless
