#include "runner/result_sink.hh"

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dramless
{
namespace runner
{

ResultSink::ResultSink(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description))
{}

void
ResultSink::add(const ResultMatrix &matrix)
{
    for (const auto &[_, row] : matrix)
        for (const auto &[__, r] : row)
            runs_.push_back(r);
}

void
ResultSink::metric(const std::string &key, double value)
{
    metrics_.emplace_back(key, value);
}

void
ResultSink::label(const std::string &key, const std::string &value)
{
    labels_.emplace_back(key, value);
}

ResultMatrix
ResultSink::matrix() const
{
    ResultMatrix m;
    for (const auto &r : runs_)
        m[r.system][r.workload] = r;
    return m;
}

namespace
{

void
writeRun(json::JsonWriter &w, const systems::RunResult &r,
         std::size_t series_points)
{
    w.beginObject();
    w.keyValue("system", r.system);
    w.keyValue("workload", r.workload);
    w.keyValue("exec_time_ticks", r.execTime);
    w.keyValue("host_stack_ticks", r.hostStackTime);
    w.keyValue("transfer_ticks", r.transferTime);
    w.keyValue("storage_stall_ticks", r.storageStallTime);
    w.keyValue("compute_ticks", r.computeTime);
    w.keyValue("bandwidth_mbps", r.bandwidthMBps);
    w.keyValue("total_instructions", r.totalInstructions);
    w.keyValue("bytes_processed", r.bytesProcessed);
    w.keyValue("events_processed", r.eventsProcessed);
    // Failed rows (continue-on-error sweeps) must be visible in the
    // export, never mistaken for an all-zero run.
    if (r.failed())
        w.keyValue("error", r.error);

    w.key("reliability").beginObject();
    w.keyValue("verify_retries", r.reliability.verifyRetries);
    w.keyValue("failed_writes", r.reliability.failedWrites);
    w.keyValue("bad_line_remaps", r.reliability.badLineRemaps);
    w.keyValue("spare_lines_used", r.reliability.spareLinesUsed);
    w.keyValue("gap_move_writes", r.reliability.gapMoveWrites);
    w.keyValue("firmware_timeouts", r.reliability.firmwareTimeouts);
    w.keyValue("firmware_give_ups", r.reliability.firmwareGiveUps);
    w.keyValue("max_line_wear", r.reliability.maxLineWear);
    w.keyValue("writes_before_first_remap",
               r.reliability.writesBeforeFirstRemap);
    w.endObject();

    w.key("energy_j").beginObject();
    w.keyValue("host_stack", r.energy.hostStack);
    w.keyValue("pcie", r.energy.pcie);
    w.keyValue("accel_cores", r.energy.accelCores);
    w.keyValue("dram", r.energy.dram);
    w.keyValue("storage_media", r.energy.storageMedia);
    w.keyValue("controller", r.energy.controller);
    w.keyValue("total", r.energy.total());
    w.endObject();

    w.key("ipc");
    json::write(w, r.ipc, series_points);
    w.key("core_power_w");
    json::write(w, r.corePower, series_points);
    w.key("cumulative_energy_j");
    json::write(w, r.cumulativeEnergy, series_points);
    w.endObject();
}

} // anonymous namespace

void
ResultSink::writeJson(std::ostream &os) const
{
    json::JsonWriter w(os);
    w.beginObject();
    w.keyValue("experiment", name_);
    w.keyValue("description", description_);

    w.key("labels").beginObject();
    for (const auto &[k, v] : labels_)
        w.keyValue(k, v);
    w.endObject();

    w.key("metrics").beginObject();
    for (const auto &[k, v] : metrics_)
        w.keyValue(k, v);
    w.endObject();

    w.key("runs").beginArray();
    for (const auto &r : runs_)
        writeRun(w, r, seriesPoints_);
    w.endArray();

    w.endObject();
    os << '\n';
}

void
ResultSink::writeCsv(std::ostream &os) const
{
    os << "system,workload,exec_time_ticks,host_stack_ticks,"
          "transfer_ticks,storage_stall_ticks,compute_ticks,"
          "bandwidth_mbps,total_instructions,bytes_processed,"
          "events_processed,"
          "energy_host_stack_j,energy_pcie_j,energy_accel_cores_j,"
          "energy_dram_j,energy_storage_media_j,energy_controller_j,"
          "energy_total_j,ipc_mean,core_power_mean_w,"
          "verify_retries,failed_writes,bad_line_remaps,"
          "gap_move_writes,firmware_timeouts,max_line_wear,"
          "writes_before_first_remap\n";
    for (const auto &r : runs_) {
        os << json::csvField(r.system) << ','
           << json::csvField(r.workload) << ',' << r.execTime << ','
           << r.hostStackTime << ',' << r.transferTime << ','
           << r.storageStallTime << ',' << r.computeTime << ','
           << json::number(r.bandwidthMBps) << ','
           << r.totalInstructions << ',' << r.bytesProcessed << ','
           << r.eventsProcessed << ','
           << json::number(r.energy.hostStack) << ','
           << json::number(r.energy.pcie) << ','
           << json::number(r.energy.accelCores) << ','
           << json::number(r.energy.dram) << ','
           << json::number(r.energy.storageMedia) << ','
           << json::number(r.energy.controller) << ','
           << json::number(r.energy.total()) << ','
           << json::number(r.ipc.mean()) << ','
           << json::number(r.corePower.timeWeightedMean()) << ','
           << r.reliability.verifyRetries << ','
           << r.reliability.failedWrites << ','
           << r.reliability.badLineRemaps << ','
           << r.reliability.gapMoveWrites << ','
           << r.reliability.firmwareTimeouts << ','
           << r.reliability.maxLineWear << ','
           << r.reliability.writesBeforeFirstRemap << '\n';
    }
}

namespace
{

void
writeTo(const char *path, const char *what,
        const std::function<void(std::ostream &)> &emit)
{
    if (std::string(path) == "-") {
        emit(std::cout);
        return;
    }
    std::ofstream out(path);
    fatal_if(!out.is_open(), "cannot open %s output file '%s'", what,
             path);
    emit(out);
    // Flush before checking: a buffered write to a full device only
    // surfaces its error when the buffer drains, and the destructor
    // would swallow it.
    out.flush();
    fatal_if(!out.good(), "error writing %s output file '%s'", what,
             path);
}

} // anonymous namespace

void
exportFromEnv(const std::function<void(std::ostream &)> &json_emit,
              const std::function<void(std::ostream &)> &csv_emit)
{
    if (const char *path = std::getenv("DRAMLESS_OUT_JSON")) {
        if (json_emit)
            writeTo(path, "JSON", json_emit);
    }
    if (const char *path = std::getenv("DRAMLESS_OUT_CSV")) {
        if (csv_emit)
            writeTo(path, "CSV", csv_emit);
    }
}

void
ResultSink::exportFromEnv() const
{
    runner::exportFromEnv(
        [this](std::ostream &os) { writeJson(os); },
        [this](std::ostream &os) { writeCsv(os); });
}

} // namespace runner
} // namespace dramless
