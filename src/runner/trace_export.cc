#include "runner/trace_export.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace dramless
{
namespace runner
{

namespace
{

/**
 * Pending merged sessions, keyed by the DRAMLESS_TRACE path each job
 * saw. Jobs on worker threads append under the mutex; the writer
 * drains at flushTraceSessions() / process exit.
 */
struct Sessions
{
    std::mutex mutex;
    std::map<std::string, std::vector<trace::Group>> byPath;
    std::map<std::string, std::string> summaryByPath;
    bool atexitRegistered = false;
};

Sessions &
sessions()
{
    static Sessions s;
    return s;
}

void
writeSessions(bool strict)
{
    std::map<std::string, std::vector<trace::Group>> pending;
    std::map<std::string, std::string> summaries;
    {
        std::lock_guard<std::mutex> lock(sessions().mutex);
        pending.swap(sessions().byPath);
        summaries.swap(sessions().summaryByPath);
    }
    for (auto &[path, groups] : pending) {
        if (path == "-") {
            trace::writeChromeTrace(std::cout, groups);
        } else {
            std::ofstream out(path);
            if (!out.is_open() || (trace::writeChromeTrace(out, groups),
                                   out.flush(), !out.good())) {
                if (strict) {
                    fatal("cannot write trace output file '%s'",
                          path.c_str());
                }
                std::fprintf(stderr,
                             "warn: cannot write trace output file "
                             "'%s'\n",
                             path.c_str());
                continue;
            }
        }
        auto it = summaries.find(path);
        if (it == summaries.end())
            continue;
        const std::string &spath = it->second;
        if (spath == "-" || spath == "stderr") {
            trace::writeSummary(std::cerr, groups);
        } else {
            std::ofstream sout(spath);
            if (!sout.is_open() ||
                (trace::writeSummary(sout, groups), sout.flush(),
                 !sout.good())) {
                if (strict) {
                    fatal("cannot write trace summary file '%s'",
                          spath.c_str());
                }
                std::fprintf(stderr,
                             "warn: cannot write trace summary file "
                             "'%s'\n",
                             spath.c_str());
            }
        }
    }
}

void
writeSessionsAtExit()
{
    // Never fatal() (std::exit) from inside exit processing.
    writeSessions(/*strict=*/false);
}

std::string
sanitize(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c
                          : '_');
    }
    return out.empty() ? std::string("_") : out;
}

} // anonymous namespace

std::string
jobTracePath(const std::string &base, const std::string &system,
             const std::string &workload)
{
    std::string job = sanitize(system) + "." + sanitize(workload);
    std::size_t slash = base.find_last_of('/');
    std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return base + "." + job;
    }
    return base.substr(0, dot) + "." + job + base.substr(dot);
}

JobTraceScope::JobTraceScope(const std::string &system,
                             const std::string &workload)
{
    const char *path = std::getenv("DRAMLESS_TRACE");
    if (path == nullptr || *path == '\0' || trace::current() != nullptr)
        return;
    const char *filter = std::getenv("DRAMLESS_TRACE_FILTER");
    label_ = system + "/" + workload;
    path_ = path;
    tracer_ = std::make_unique<trace::Tracer>(filter ? filter : "");
    scoped_ = std::make_unique<trace::ScopedTracer>(tracer_.get());
}

JobTraceScope::~JobTraceScope()
{
    if (!tracer_)
        return;
    scoped_.reset();

    std::vector<trace::Group> job;
    job.push_back({std::string(), tracer_->events()});

    if (path_ != "-") {
        std::string jobPath =
            jobTracePath(path_, label_.substr(0, label_.find('/')),
                         label_.substr(label_.find('/') + 1));
        std::ofstream out(jobPath);
        if (!out.is_open() || (trace::writeChromeTrace(out, job),
                               out.flush(), !out.good())) {
            std::fprintf(stderr,
                         "warn: cannot write trace output file '%s'\n",
                         jobPath.c_str());
        }
    }

    const char *summary = std::getenv("DRAMLESS_TRACE_SUMMARY");
    {
        std::lock_guard<std::mutex> lock(sessions().mutex);
        sessions().byPath[path_].push_back(
            {label_, tracer_->takeEvents()});
        if (summary != nullptr && *summary != '\0')
            sessions().summaryByPath[path_] = summary;
        if (!sessions().atexitRegistered) {
            sessions().atexitRegistered = true;
            std::atexit(writeSessionsAtExit);
        }
    }
    tracer_.reset();
}

void
flushTraceSessions()
{
    writeSessions(/*strict=*/true);
}

} // namespace runner
} // namespace dramless
