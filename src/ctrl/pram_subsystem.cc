#include "ctrl/pram_subsystem.hh"

#include <algorithm>
#include <vector>

#include "sim/trace.hh"

namespace dramless
{
namespace ctrl
{

PramSubsystem::PramSubsystem(EventQueue &eq,
                             const SubsystemConfig &config,
                             std::string name)
    : name_(std::move(name)), config_(config), eventq_(eq)
{
    fatal_if(config.channels == 0, "subsystem needs channels");
    fatal_if(config.stripeBytes == 0 ||
                 config.stripeBytes % config.geometry.rowBufferBytes !=
                     0,
             "stripe must be a multiple of the %u-byte access unit",
             config.geometry.rowBufferBytes);
    channels_.reserve(config.channels);
    pieceToOuter_.resize(config.channels);
    for (std::uint32_t c = 0; c < config.channels; ++c) {
        channels_.push_back(std::make_unique<ChannelController>(
            eq, config.modulesPerChannel, config.geometry,
            config.timing, config.scheduler,
            name_ + csprintf(".ch%u", c), config.functional));
        channels_[c]->setCallback(
            [this, c](const MemResponse &resp) {
                onChannelComplete(c, resp);
            });
        if (config.reliability.enabled)
            channels_[c]->configureReliability(config.reliability, c);
    }
    physicalStripes_ = channels_.front()->capacity() *
                       config.channels / config.stripeBytes;
    spareCount_ = config.reliability.enabled
                      ? config.reliability.spareLines
                      : 0;
    fatal_if(physicalStripes_ <= spareCount_,
             "%s: capacity too small for %u spare lines",
             name_.c_str(), spareCount_);
    // Spares are carved off the top of physical capacity and handed
    // out in increasing order as lines wear out.
    nextSpare_ = physicalStripes_ - spareCount_;
    if (config.wearLeveling) {
        std::uint64_t avail = physicalStripes_ - spareCount_;
        fatal_if(avail < 2, "capacity too small for wear leveling");
        wearLevel_.emplace(avail - 1, config.gapMovePeriod);
    }
}

Tick
PramSubsystem::initialize()
{
    initialized_ = true;
    return eventq_.curTick() + config_.bootLatency;
}

void
PramSubsystem::setCallback(CompletionCallback cb)
{
    callback_ = std::move(cb);
}

std::uint64_t
PramSubsystem::capacity() const
{
    if (wearLevel_)
        return wearLevel_->numLines() * config_.stripeBytes;
    return (physicalStripes_ - spareCount_) * config_.stripeBytes;
}

std::pair<std::uint32_t, std::uint64_t>
PramSubsystem::route(std::uint64_t addr) const
{
    std::uint64_t stripe = addr / config_.stripeBytes;
    std::uint32_t ch = std::uint32_t(stripe % channels_.size());
    std::uint64_t chan_addr =
        (stripe / channels_.size()) * config_.stripeBytes +
        addr % config_.stripeBytes;
    return {ch, chan_addr};
}

std::uint64_t
PramSubsystem::unroute(std::uint32_t ch,
                       std::uint64_t chan_addr) const
{
    std::uint64_t stripe =
        (chan_addr / config_.stripeBytes) * channels_.size() + ch;
    return stripe * config_.stripeBytes +
           chan_addr % config_.stripeBytes;
}

std::uint64_t
PramSubsystem::resolveLine(std::uint64_t line) const
{
    auto it = physRemap_.find(line);
    while (it != physRemap_.end()) {
        line = it->second;
        it = physRemap_.find(line);
    }
    return line;
}

std::uint64_t
PramSubsystem::remap(std::uint64_t addr) const
{
    std::uint64_t line = addr / config_.stripeBytes;
    if (wearLevel_)
        line = wearLevel_->map(line);
    if (!physRemap_.empty())
        line = resolveLine(line);
    return line * config_.stripeBytes + addr % config_.stripeBytes;
}

bool
PramSubsystem::canAccept(const MemRequest &req) const
{
    std::uint64_t addr = req.addr;
    std::uint64_t end = req.addr + req.size;
    while (addr < end) {
        std::uint64_t stripe_end =
            (addr / config_.stripeBytes + 1) * config_.stripeBytes;
        std::uint64_t piece_end = std::min(end, stripe_end);
        auto [ch, chan_addr] = route(remap(addr));
        MemRequest piece = req;
        piece.addr = chan_addr;
        piece.size = std::uint32_t(piece_end - addr);
        if (!channels_[ch]->canAccept(piece))
            return false;
        addr = piece_end;
    }
    return true;
}

std::uint64_t
PramSubsystem::enqueue(const MemRequest &req)
{
    fatal_if(req.size == 0, "empty request");
    fatal_if(req.addr + req.size > capacity(),
             "%s: request beyond subsystem capacity", name_.c_str());
    if (!initialized_) {
        warn("%s: traffic before initialize(); booting implicitly",
             name_.c_str());
        initialized_ = true;
    }

    std::uint64_t id = nextOuterId_++;
    OuterRequest &outer = outer_[id];
    outer.enqueuedAt = eventq_.curTick();
    outer.isWrite = (req.kind == ReqKind::write);

    if (req.kind == ReqKind::write) {
        ++stats_.writeRequests;
        stats_.bytesWritten += req.size;
    } else {
        ++stats_.readRequests;
        stats_.bytesRead += req.size;
    }

    // Split at stripe boundaries; each piece lands on one channel.
    std::vector<MemRequest> pieces;
    std::uint64_t addr = req.addr;
    std::uint64_t end = req.addr + req.size;
    while (addr < end) {
        std::uint64_t stripe_end =
            (addr / config_.stripeBytes + 1) * config_.stripeBytes;
        std::uint64_t piece_end = std::min(end, stripe_end);
        MemRequest piece;
        piece.kind = req.kind;
        piece.addr = addr;
        piece.size = std::uint32_t(piece_end - addr);
        std::uint64_t off = addr - req.addr;
        if (req.readInto != nullptr)
            piece.readInto =
                static_cast<std::uint8_t *>(req.readInto) + off;
        if (req.writeFrom != nullptr)
            piece.writeFrom =
                static_cast<const std::uint8_t *>(req.writeFrom) + off;
        pieces.push_back(piece);
        addr = piece_end;
    }
    outer.remainingPieces = std::uint32_t(pieces.size());
    if (auto *t = trace::current()) {
        t->counter(trace::catCtrl, name_, "stripePieces",
                   eventq_.curTick(), double(pieces.size()));
        t->counter(trace::catCtrl, name_, "outstandingRequests",
                   eventq_.curTick(), double(outer_.size()));
    }
    for (auto &piece : pieces)
        issuePiece(id, piece);

    if (wearLevel_ && req.kind == ReqKind::write) {
        std::uint64_t first = req.addr / config_.stripeBytes;
        std::uint64_t last =
            (req.addr + req.size - 1) / config_.stripeBytes;
        recordWearLevelWrites(last - first + 1);
    }
    return id;
}

void
PramSubsystem::issuePiece(std::uint64_t outer_id,
                          const MemRequest &piece)
{
    MemRequest routed = piece;
    auto [ch, chan_addr] = route(remap(piece.addr));
    routed.addr = chan_addr;
    std::uint64_t piece_id = channels_[ch]->enqueue(routed);
    pieceToOuter_[ch][piece_id] =
        PieceInfo{outer_id, piece.addr, piece.size,
                  piece.kind == ReqKind::write};
}

std::uint64_t
PramSubsystem::retireLine(std::uint32_t ch, std::uint64_t chan_addr)
{
    std::uint64_t bad = unroute(ch, chan_addr) / config_.stripeBytes;
    fatal_if(stats_.spareLinesUsed >= spareCount_,
             "%s: spare pool exhausted (physical line %llu failed "
             "with all %u spares consumed)",
             name_.c_str(), (unsigned long long)bad, spareCount_);
    std::uint64_t spare = nextSpare_++;
    physRemap_[bad] = spare;
    ++stats_.badLineRemaps;
    ++stats_.spareLinesUsed;
    if (stats_.badLineRemaps == 1) {
        stats_.writesBeforeFirstRemap = stats_.writeRequests;
        stats_.firstRemapTick = eventq_.curTick();
    }
    warn("%s: remapped worn-out line %llu to spare %llu (%u/%u "
         "spares used)",
         name_.c_str(), (unsigned long long)bad,
         (unsigned long long)spare,
         std::uint32_t(stats_.spareLinesUsed), spareCount_);
    if (auto *t = trace::current()) {
        t->instant(trace::catCtrl, name_, "reliability.remap",
                   eventq_.curTick());
        t->counter(trace::catCtrl, name_, "spareLinesFree",
                   eventq_.curTick(), double(spareLinesFree()));
    }
    // Migrate the stripe's content so reads keep working: the module
    // store retains data even for verify-failed programs (the write
    // driver still toggled the cells; they just won't hold reliably).
    if (config_.functional) {
        std::vector<std::uint8_t> buf(config_.stripeBytes);
        auto [fch, faddr] = route(bad * config_.stripeBytes);
        channels_[fch]->functionalRead(faddr, buf.data(), buf.size());
        auto [tch, taddr] = route(spare * config_.stripeBytes);
        channels_[tch]->functionalWrite(taddr, buf.data(),
                                        buf.size());
    }
    return spare;
}

void
PramSubsystem::handleInternalWriteFailure(std::uint32_t ch,
                                          std::uint64_t chan_addr)
{
    // A gap-move copy exhausted its retries: retire the line and
    // redo the copy against the spare (completion again ignored).
    std::uint64_t spare = retireLine(ch, chan_addr);
    auto [tch, taddr] = route(spare * config_.stripeBytes);
    MemRequest internal;
    internal.kind = ReqKind::write;
    internal.addr = taddr;
    internal.size = config_.stripeBytes;
    channels_[tch]->enqueue(internal);
}

void
PramSubsystem::onChannelComplete(std::uint32_t ch,
                                 const MemResponse &resp)
{
    auto &map = pieceToOuter_[ch];
    auto it = map.find(resp.id);
    if (it == map.end()) {
        // Internal traffic (wear-leveling copy): only its failure
        // needs handling.
        if (resp.failed)
            handleInternalWriteFailure(ch, resp.failedAddr);
        return;
    }
    PieceInfo info = it->second;
    std::uint64_t outer_id = info.outer;
    map.erase(it);

    if (resp.failed && info.isWrite) {
        // The piece hit a worn-out line: remap it to a spare and
        // re-issue against the new mapping. The outer request stays
        // pending and completes when the re-issued piece does —
        // graceful degradation, fatal only on spare exhaustion.
        retireLine(ch, resp.failedAddr);
        MemRequest piece;
        piece.kind = ReqKind::write;
        piece.addr = info.addr;
        piece.size = info.size;
        std::vector<std::uint8_t> buf;
        if (config_.functional) {
            // Re-read through the new mapping (the migrated copy) so
            // the replayed write carries the original data.
            buf.resize(info.size);
            functionalRead(info.addr, buf.data(), buf.size());
            piece.writeFrom = buf.data();
        }
        issuePiece(outer_id, piece);
        return;
    }

    auto oit = outer_.find(outer_id);
    panic_if(oit == outer_.end(), "piece of unknown outer request");
    OuterRequest &outer = oit->second;
    outer.latest = std::max(outer.latest, resp.completedAt);
    if (--outer.remainingPieces == 0) {
        MemResponse done{outer_id, outer.latest};
        if (auto *t = trace::current()) {
            t->complete(trace::catCtrl, name_,
                        outer.isWrite ? "outer.write" : "outer.read",
                        outer.enqueuedAt, outer.latest);
        }
        outer_.erase(oit);
        if (callback_)
            callback_(done);
    }
}

void
PramSubsystem::recordWearLevelWrites(std::uint64_t stripes)
{
    for (std::uint64_t i = 0; i < stripes; ++i) {
        if (!wearLevel_->recordWrite())
            continue;
        ++stats_.wearLevelMoves;
        if (auto *t = trace::current()) {
            t->instant(trace::catCtrl, name_, "wearLevel.gapMove",
                       eventq_.curTick());
        }
        // Copy the physical stripe behind the gap into the gap:
        // functional move plus a timed internal write of one stripe.
        // Either line may have been retired to a spare by the
        // reliability layer, so resolve through the remap chain.
        std::uint64_t from = resolveLine(wearLevel_->movedFrom()) *
                             config_.stripeBytes;
        std::uint64_t to =
            resolveLine(wearLevel_->movedTo()) * config_.stripeBytes;
        if (config_.functional) {
            std::vector<std::uint8_t> buf(config_.stripeBytes);
            auto [fch, faddr] = route(from);
            channels_[fch]->functionalRead(faddr, buf.data(),
                                           buf.size());
            auto [tch, taddr] = route(to);
            channels_[tch]->functionalWrite(taddr, buf.data(),
                                            buf.size());
        }
        auto [tch, taddr] = route(to);
        MemRequest internal;
        internal.kind = ReqKind::write;
        internal.addr = taddr;
        internal.size = config_.stripeBytes;
        channels_[tch]->enqueue(internal); // completion ignored
        // The copy is a real PRAM write: account its wear (the gap
        // line absorbs one stripe) without feeding the gap-move
        // period — a move must never trigger another move.
        ++stats_.gapMoveWrites;
        stats_.gapMoveBytes += config_.stripeBytes;
        if (auto *t = trace::current()) {
            t->counter(trace::catCtrl, name_, "gapMoveWrites",
                       eventq_.curTick(),
                       double(stats_.gapMoveWrites));
        }
    }
}

std::uint64_t
PramSubsystem::maxLineWear() const
{
    std::uint64_t wear = 0;
    for (const auto &ch : channels_) {
        for (std::uint32_t m = 0; m < ch->numModules(); ++m)
            wear = std::max(wear, ch->module(m).maxWordWear());
    }
    return wear;
}

void
PramSubsystem::hintFutureWrite(std::uint64_t addr, std::uint64_t size)
{
    if (size == 0)
        return;
    std::uint64_t end = addr + size;
    while (addr < end) {
        std::uint64_t stripe_end =
            (addr / config_.stripeBytes + 1) * config_.stripeBytes;
        std::uint64_t piece_end = std::min(end, stripe_end);
        auto [ch, chan_addr] = route(remap(addr));
        channels_[ch]->hintFutureWrite(chan_addr, piece_end - addr);
        addr = piece_end;
    }
}

bool
PramSubsystem::idle() const
{
    return outer_.empty();
}

void
PramSubsystem::functionalWrite(std::uint64_t addr, const void *src,
                               std::uint64_t len)
{
    const auto *s = static_cast<const std::uint8_t *>(src);
    std::uint64_t end = addr + len;
    while (addr < end) {
        std::uint64_t stripe_end =
            (addr / config_.stripeBytes + 1) * config_.stripeBytes;
        std::uint64_t piece_end = std::min(end, stripe_end);
        auto [ch, chan_addr] = route(remap(addr));
        channels_[ch]->functionalWrite(chan_addr, s, piece_end - addr);
        s += piece_end - addr;
        addr = piece_end;
    }
}

void
PramSubsystem::functionalRead(std::uint64_t addr, void *dst,
                              std::uint64_t len) const
{
    auto *d = static_cast<std::uint8_t *>(dst);
    std::uint64_t end = addr + len;
    while (addr < end) {
        std::uint64_t stripe_end =
            (addr / config_.stripeBytes + 1) * config_.stripeBytes;
        std::uint64_t piece_end = std::min(end, stripe_end);
        auto [ch, chan_addr] = route(remap(addr));
        channels_[ch]->functionalRead(chan_addr, d, piece_end - addr);
        d += piece_end - addr;
        addr = piece_end;
    }
}

} // namespace ctrl
} // namespace dramless
