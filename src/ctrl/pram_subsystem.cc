#include "ctrl/pram_subsystem.hh"

#include <algorithm>
#include <vector>

#include "sim/trace.hh"

namespace dramless
{
namespace ctrl
{

PramSubsystem::PramSubsystem(EventQueue &eq,
                             const SubsystemConfig &config,
                             std::string name)
    : name_(std::move(name)), config_(config), eventq_(eq)
{
    fatal_if(config.channels == 0, "subsystem needs channels");
    fatal_if(config.stripeBytes == 0 ||
                 config.stripeBytes % config.geometry.rowBufferBytes !=
                     0,
             "stripe must be a multiple of the %u-byte access unit",
             config.geometry.rowBufferBytes);
    channels_.reserve(config.channels);
    pieceToOuter_.resize(config.channels);
    for (std::uint32_t c = 0; c < config.channels; ++c) {
        channels_.push_back(std::make_unique<ChannelController>(
            eq, config.modulesPerChannel, config.geometry,
            config.timing, config.scheduler,
            name_ + csprintf(".ch%u", c), config.functional));
        channels_[c]->setCallback(
            [this, c](const MemResponse &resp) {
                onChannelComplete(c, resp);
            });
    }
    if (config.wearLeveling) {
        std::uint64_t physical_stripes =
            channels_.front()->capacity() * config.channels /
            config.stripeBytes;
        fatal_if(physical_stripes < 2,
                 "capacity too small for wear leveling");
        wearLevel_.emplace(physical_stripes - 1,
                           config.gapMovePeriod);
    }
}

Tick
PramSubsystem::initialize()
{
    initialized_ = true;
    return eventq_.curTick() + config_.bootLatency;
}

void
PramSubsystem::setCallback(CompletionCallback cb)
{
    callback_ = std::move(cb);
}

std::uint64_t
PramSubsystem::capacity() const
{
    std::uint64_t raw =
        channels_.front()->capacity() * channels_.size();
    if (wearLevel_)
        return wearLevel_->numLines() * config_.stripeBytes;
    return raw;
}

std::pair<std::uint32_t, std::uint64_t>
PramSubsystem::route(std::uint64_t addr) const
{
    std::uint64_t stripe = addr / config_.stripeBytes;
    std::uint32_t ch = std::uint32_t(stripe % channels_.size());
    std::uint64_t chan_addr =
        (stripe / channels_.size()) * config_.stripeBytes +
        addr % config_.stripeBytes;
    return {ch, chan_addr};
}

std::uint64_t
PramSubsystem::remap(std::uint64_t addr) const
{
    if (!wearLevel_)
        return addr;
    std::uint64_t line = addr / config_.stripeBytes;
    std::uint64_t physical = wearLevel_->map(line);
    return physical * config_.stripeBytes +
           addr % config_.stripeBytes;
}

bool
PramSubsystem::canAccept(const MemRequest &req) const
{
    std::uint64_t addr = req.addr;
    std::uint64_t end = req.addr + req.size;
    while (addr < end) {
        std::uint64_t stripe_end =
            (addr / config_.stripeBytes + 1) * config_.stripeBytes;
        std::uint64_t piece_end = std::min(end, stripe_end);
        auto [ch, chan_addr] = route(remap(addr));
        MemRequest piece = req;
        piece.addr = chan_addr;
        piece.size = std::uint32_t(piece_end - addr);
        if (!channels_[ch]->canAccept(piece))
            return false;
        addr = piece_end;
    }
    return true;
}

std::uint64_t
PramSubsystem::enqueue(const MemRequest &req)
{
    fatal_if(req.size == 0, "empty request");
    fatal_if(req.addr + req.size > capacity(),
             "%s: request beyond subsystem capacity", name_.c_str());
    if (!initialized_) {
        warn("%s: traffic before initialize(); booting implicitly",
             name_.c_str());
        initialized_ = true;
    }

    std::uint64_t id = nextOuterId_++;
    OuterRequest &outer = outer_[id];
    outer.enqueuedAt = eventq_.curTick();
    outer.isWrite = (req.kind == ReqKind::write);

    if (req.kind == ReqKind::write) {
        ++stats_.writeRequests;
        stats_.bytesWritten += req.size;
    } else {
        ++stats_.readRequests;
        stats_.bytesRead += req.size;
    }

    // Split at stripe boundaries; each piece lands on one channel.
    std::vector<MemRequest> pieces;
    std::uint64_t addr = req.addr;
    std::uint64_t end = req.addr + req.size;
    while (addr < end) {
        std::uint64_t stripe_end =
            (addr / config_.stripeBytes + 1) * config_.stripeBytes;
        std::uint64_t piece_end = std::min(end, stripe_end);
        MemRequest piece;
        piece.kind = req.kind;
        piece.addr = addr;
        piece.size = std::uint32_t(piece_end - addr);
        std::uint64_t off = addr - req.addr;
        if (req.readInto != nullptr)
            piece.readInto =
                static_cast<std::uint8_t *>(req.readInto) + off;
        if (req.writeFrom != nullptr)
            piece.writeFrom =
                static_cast<const std::uint8_t *>(req.writeFrom) + off;
        pieces.push_back(piece);
        addr = piece_end;
    }
    outer.remainingPieces = std::uint32_t(pieces.size());
    if (auto *t = trace::current()) {
        t->counter(trace::catCtrl, name_, "stripePieces",
                   eventq_.curTick(), double(pieces.size()));
        t->counter(trace::catCtrl, name_, "outstandingRequests",
                   eventq_.curTick(), double(outer_.size()));
    }
    for (auto &piece : pieces)
        issuePiece(id, piece);

    if (wearLevel_ && req.kind == ReqKind::write) {
        std::uint64_t first = req.addr / config_.stripeBytes;
        std::uint64_t last =
            (req.addr + req.size - 1) / config_.stripeBytes;
        recordWearLevelWrites(last - first + 1);
    }
    return id;
}

void
PramSubsystem::issuePiece(std::uint64_t outer_id,
                          const MemRequest &piece)
{
    MemRequest routed = piece;
    auto [ch, chan_addr] = route(remap(piece.addr));
    routed.addr = chan_addr;
    std::uint64_t piece_id = channels_[ch]->enqueue(routed);
    pieceToOuter_[ch][piece_id] = outer_id;
}

void
PramSubsystem::onChannelComplete(std::uint32_t ch,
                                 const MemResponse &resp)
{
    auto &map = pieceToOuter_[ch];
    auto it = map.find(resp.id);
    if (it == map.end())
        return; // internal traffic (wear-leveling copy)
    std::uint64_t outer_id = it->second;
    map.erase(it);

    auto oit = outer_.find(outer_id);
    panic_if(oit == outer_.end(), "piece of unknown outer request");
    OuterRequest &outer = oit->second;
    outer.latest = std::max(outer.latest, resp.completedAt);
    if (--outer.remainingPieces == 0) {
        MemResponse done{outer_id, outer.latest};
        if (auto *t = trace::current()) {
            t->complete(trace::catCtrl, name_,
                        outer.isWrite ? "outer.write" : "outer.read",
                        outer.enqueuedAt, outer.latest);
        }
        outer_.erase(oit);
        if (callback_)
            callback_(done);
    }
}

void
PramSubsystem::recordWearLevelWrites(std::uint64_t stripes)
{
    for (std::uint64_t i = 0; i < stripes; ++i) {
        if (!wearLevel_->recordWrite())
            continue;
        ++stats_.wearLevelMoves;
        if (auto *t = trace::current()) {
            t->instant(trace::catCtrl, name_, "wearLevel.gapMove",
                       eventq_.curTick());
        }
        // Copy the physical stripe behind the gap into the gap:
        // functional move plus a timed internal write of one stripe.
        std::uint64_t from =
            wearLevel_->movedFrom() * config_.stripeBytes;
        std::uint64_t to = wearLevel_->movedTo() * config_.stripeBytes;
        if (config_.functional) {
            std::vector<std::uint8_t> buf(config_.stripeBytes);
            auto [fch, faddr] = route(from);
            channels_[fch]->functionalRead(faddr, buf.data(),
                                           buf.size());
            auto [tch, taddr] = route(to);
            channels_[tch]->functionalWrite(taddr, buf.data(),
                                            buf.size());
        }
        auto [tch, taddr] = route(to);
        MemRequest internal;
        internal.kind = ReqKind::write;
        internal.addr = taddr;
        internal.size = config_.stripeBytes;
        channels_[tch]->enqueue(internal); // completion ignored
    }
}

void
PramSubsystem::hintFutureWrite(std::uint64_t addr, std::uint64_t size)
{
    if (size == 0)
        return;
    std::uint64_t end = addr + size;
    while (addr < end) {
        std::uint64_t stripe_end =
            (addr / config_.stripeBytes + 1) * config_.stripeBytes;
        std::uint64_t piece_end = std::min(end, stripe_end);
        auto [ch, chan_addr] = route(remap(addr));
        channels_[ch]->hintFutureWrite(chan_addr, piece_end - addr);
        addr = piece_end;
    }
}

bool
PramSubsystem::idle() const
{
    return outer_.empty();
}

void
PramSubsystem::functionalWrite(std::uint64_t addr, const void *src,
                               std::uint64_t len)
{
    const auto *s = static_cast<const std::uint8_t *>(src);
    std::uint64_t end = addr + len;
    while (addr < end) {
        std::uint64_t stripe_end =
            (addr / config_.stripeBytes + 1) * config_.stripeBytes;
        std::uint64_t piece_end = std::min(end, stripe_end);
        auto [ch, chan_addr] = route(remap(addr));
        channels_[ch]->functionalWrite(chan_addr, s, piece_end - addr);
        s += piece_end - addr;
        addr = piece_end;
    }
}

void
PramSubsystem::functionalRead(std::uint64_t addr, void *dst,
                              std::uint64_t len) const
{
    auto *d = static_cast<std::uint8_t *>(dst);
    std::uint64_t end = addr + len;
    while (addr < end) {
        std::uint64_t stripe_end =
            (addr / config_.stripeBytes + 1) * config_.stripeBytes;
        std::uint64_t piece_end = std::min(end, stripe_end);
        auto [ch, chan_addr] = route(remap(addr));
        channels_[ch]->functionalRead(chan_addr, d, piece_end - addr);
        d += piece_end - addr;
        addr = piece_end;
    }
}

} // namespace ctrl
} // namespace dramless
