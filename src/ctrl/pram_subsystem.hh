/**
 * @file
 * The complete hardware-automated PRAM subsystem of DRAM-less:
 * two LPDDR2-NVM channels of 16 modules each behind FPGA channel
 * controllers (Figure 6a, Table II), with an initializer handling the
 * boot-up process and optional Start-Gap wear leveling.
 */

#ifndef DRAMLESS_CTRL_PRAM_SUBSYSTEM_HH
#define DRAMLESS_CTRL_PRAM_SUBSYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ctrl/channel_controller.hh"
#include "ctrl/request.hh"
#include "ctrl/scheduler.hh"
#include "ctrl/start_gap.hh"
#include "pram/geometry.hh"
#include "pram/timing.hh"
#include "reliability/fault_model.hh"
#include "sim/event_queue.hh"

namespace dramless
{
namespace ctrl
{

/** Construction parameters of the PRAM subsystem. */
struct SubsystemConfig
{
    /** LPDDR2-NVM channels (Table II: 2). */
    std::uint32_t channels = 2;
    /** PRAM modules per channel (Table II: 16 packages). */
    std::uint32_t modulesPerChannel = 16;
    /** Bytes striped per channel before switching (Section III-B:
     *  512 bytes per channel). */
    std::uint32_t stripeBytes = 512;
    /** Module geometry. */
    pram::PramGeometry geometry = pram::PramGeometry::paperDefault();
    /** Module timing. */
    pram::PramTiming timing = pram::PramTiming::paperDefault();
    /** Scheduler policy. */
    SchedulerConfig scheduler = SchedulerConfig::finalConfig();
    /** Enable Start-Gap wear leveling over stripe-sized lines. */
    bool wearLeveling = false;
    /** Gap move period in writes when wear leveling. */
    std::uint64_t gapMovePeriod = 100;
    /** Keep functional backing stores. */
    bool functional = true;
    /** Modeled boot-up latency of the initializer (auto init,
     *  impedance calibration, burst-length and OW setup). */
    Tick bootLatency = fromUs(150);
    /** Fault injection / endurance knobs (disabled by default, in
     *  which case nothing below the facade changes behavior). */
    reliability::ReliabilityConfig reliability{};
};

/** Aggregated subsystem statistics. */
struct SubsystemStats
{
    std::uint64_t readRequests = 0;
    std::uint64_t writeRequests = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t wearLevelMoves = 0;
    /** PRAM line writes performed by gap-move copies (these wear the
     *  media like demand writes but are issued internally). */
    std::uint64_t gapMoveWrites = 0;
    /** Bytes written by gap-move copies. */
    std::uint64_t gapMoveBytes = 0;
    /** Worn-out lines remapped into the spare pool. */
    std::uint64_t badLineRemaps = 0;
    /** Spare lines consumed so far (== badLineRemaps). */
    std::uint64_t spareLinesUsed = 0;
    /** Demand write requests served before the first remap
     *  (lifetime-to-first-remap; 0 when no remap happened). */
    std::uint64_t writesBeforeFirstRemap = 0;
    /** Tick of the first bad-line remap (0 when none). */
    Tick firstRemapTick = 0;
};

/**
 * Facade over the per-channel controllers. Splits requests at stripe
 * boundaries, aggregates completions, applies wear leveling, and
 * provides the functional backdoor used to stage datasets.
 */
class PramSubsystem
{
  public:
    PramSubsystem(EventQueue &eq, const SubsystemConfig &config,
                  std::string name);

    /**
     * Run the initializer: boot every module (modeled latency) and
     * leave the subsystem ready for traffic.
     * @return tick at which the subsystem is operational.
     */
    Tick initialize();

    /** Register the completion callback for demand requests. */
    void setCallback(CompletionCallback cb);

    /** @return usable capacity in bytes. */
    std::uint64_t capacity() const;

    /** @return true when every involved channel can queue the
     *  request. */
    bool canAccept(const MemRequest &req) const;

    /**
     * Admit a request (32-byte aligned). @return the request id
     * reported on completion.
     */
    std::uint64_t enqueue(const MemRequest &req);

    /** Selective-erasing hint forwarded to the channels. */
    void hintFutureWrite(std::uint64_t addr, std::uint64_t size);

    /** @return true when no demand requests are outstanding. */
    bool idle() const;

    /** Functional (untimed) write used to stage input datasets. */
    void functionalWrite(std::uint64_t addr, const void *src,
                         std::uint64_t len);
    /** Functional (untimed) read used to verify outputs. */
    void functionalRead(std::uint64_t addr, void *dst,
                        std::uint64_t len) const;

    /** @return channel @p i. */
    ChannelController &channel(std::uint32_t i)
    {
        return *channels_.at(i);
    }
    const ChannelController &channel(std::uint32_t i) const
    {
        return *channels_.at(i);
    }
    /** @return number of channels. */
    std::uint32_t numChannels() const
    {
        return std::uint32_t(channels_.size());
    }

    /** @return aggregate statistics. */
    const SubsystemStats &subsystemStats() const { return stats_; }

    /** @return the wear-leveling mapper, if enabled. */
    const StartGapMapper *wearLeveler() const
    {
        return wearLevel_ ? &*wearLevel_ : nullptr;
    }

    /** @return spare lines still available for bad-line remapping. */
    std::uint32_t
    spareLinesFree() const
    {
        return spareCount_ - std::uint32_t(stats_.spareLinesUsed);
    }

    /** @return the highest per-word wear across all modules (0 when
     *  injection is disabled). */
    std::uint64_t maxLineWear() const;

    const std::string &name() const { return name_; }
    const SubsystemConfig &config() const { return config_; }

  private:
    /** Map a flat subsystem address to (channel, channel address). */
    std::pair<std::uint32_t, std::uint64_t>
    route(std::uint64_t addr) const;

    /** Inverse of route(): channel-local address back to flat. */
    std::uint64_t unroute(std::uint32_t ch,
                          std::uint64_t chan_addr) const;

    /** Apply the wear-leveling rotation plus bad-line remapping. */
    std::uint64_t remap(std::uint64_t addr) const;

    /** Follow the bad-line remap chain to the live physical line. */
    std::uint64_t resolveLine(std::uint64_t line) const;

    /**
     * Retire the physical line behind channel-local @p chan_addr on
     * channel @p ch into the next spare (fatal when the pool is
     * exhausted), migrating its content.
     * @return the spare line now holding the data.
     */
    std::uint64_t retireLine(std::uint32_t ch,
                             std::uint64_t chan_addr);

    /** A gap-move (internal) write exhausted its retries. */
    void handleInternalWriteFailure(std::uint32_t ch,
                                    std::uint64_t chan_addr);

    /** Issue one contiguous (post-split) piece to its channel. */
    void issuePiece(std::uint64_t outer_id, const MemRequest &piece);

    /** Channel completion handler. */
    void onChannelComplete(std::uint32_t ch, const MemResponse &resp);

    /** Record writes for wear leveling and perform gap moves. */
    void recordWearLevelWrites(std::uint64_t stripes);

    struct OuterRequest
    {
        std::uint32_t remainingPieces = 0;
        Tick latest = 0;
        Tick enqueuedAt = 0;
        bool isWrite = false;
    };

    /** Bookkeeping for one channel-level piece of an outer request
     *  (enough to re-issue it after a bad-line remap). */
    struct PieceInfo
    {
        std::uint64_t outer = 0;
        /** Logical (pre-remap) flat address of the piece. */
        std::uint64_t addr = 0;
        std::uint32_t size = 0;
        bool isWrite = false;
    };

    std::string name_;
    SubsystemConfig config_;
    EventQueue &eventq_;
    std::vector<std::unique_ptr<ChannelController>> channels_;
    /** Per-channel map from channel request id to piece info. */
    std::vector<std::unordered_map<std::uint64_t, PieceInfo>>
        pieceToOuter_;
    std::unordered_map<std::uint64_t, OuterRequest> outer_;
    std::uint64_t nextOuterId_ = 1;
    CompletionCallback callback_;
    std::optional<StartGapMapper> wearLevel_;
    bool initialized_ = false;
    SubsystemStats stats_;
    /** Physical stripes across all channels. */
    std::uint64_t physicalStripes_ = 0;
    /** Spare stripes reserved off the top (0 when injection off). */
    std::uint32_t spareCount_ = 0;
    /** Next unused spare line (grows upward to physicalStripes_). */
    std::uint64_t nextSpare_ = 0;
    /** Bad physical line -> replacement line (chains allowed). */
    std::unordered_map<std::uint64_t, std::uint64_t> physRemap_;
};

} // namespace ctrl
} // namespace dramless

#endif // DRAMLESS_CTRL_PRAM_SUBSYSTEM_HH
