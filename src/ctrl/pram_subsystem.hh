/**
 * @file
 * The complete hardware-automated PRAM subsystem of DRAM-less:
 * two LPDDR2-NVM channels of 16 modules each behind FPGA channel
 * controllers (Figure 6a, Table II), with an initializer handling the
 * boot-up process and optional Start-Gap wear leveling.
 */

#ifndef DRAMLESS_CTRL_PRAM_SUBSYSTEM_HH
#define DRAMLESS_CTRL_PRAM_SUBSYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ctrl/channel_controller.hh"
#include "ctrl/request.hh"
#include "ctrl/scheduler.hh"
#include "ctrl/start_gap.hh"
#include "pram/geometry.hh"
#include "pram/timing.hh"
#include "sim/event_queue.hh"

namespace dramless
{
namespace ctrl
{

/** Construction parameters of the PRAM subsystem. */
struct SubsystemConfig
{
    /** LPDDR2-NVM channels (Table II: 2). */
    std::uint32_t channels = 2;
    /** PRAM modules per channel (Table II: 16 packages). */
    std::uint32_t modulesPerChannel = 16;
    /** Bytes striped per channel before switching (Section III-B:
     *  512 bytes per channel). */
    std::uint32_t stripeBytes = 512;
    /** Module geometry. */
    pram::PramGeometry geometry = pram::PramGeometry::paperDefault();
    /** Module timing. */
    pram::PramTiming timing = pram::PramTiming::paperDefault();
    /** Scheduler policy. */
    SchedulerConfig scheduler = SchedulerConfig::finalConfig();
    /** Enable Start-Gap wear leveling over stripe-sized lines. */
    bool wearLeveling = false;
    /** Gap move period in writes when wear leveling. */
    std::uint64_t gapMovePeriod = 100;
    /** Keep functional backing stores. */
    bool functional = true;
    /** Modeled boot-up latency of the initializer (auto init,
     *  impedance calibration, burst-length and OW setup). */
    Tick bootLatency = fromUs(150);
};

/** Aggregated subsystem statistics. */
struct SubsystemStats
{
    std::uint64_t readRequests = 0;
    std::uint64_t writeRequests = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t wearLevelMoves = 0;
};

/**
 * Facade over the per-channel controllers. Splits requests at stripe
 * boundaries, aggregates completions, applies wear leveling, and
 * provides the functional backdoor used to stage datasets.
 */
class PramSubsystem
{
  public:
    PramSubsystem(EventQueue &eq, const SubsystemConfig &config,
                  std::string name);

    /**
     * Run the initializer: boot every module (modeled latency) and
     * leave the subsystem ready for traffic.
     * @return tick at which the subsystem is operational.
     */
    Tick initialize();

    /** Register the completion callback for demand requests. */
    void setCallback(CompletionCallback cb);

    /** @return usable capacity in bytes. */
    std::uint64_t capacity() const;

    /** @return true when every involved channel can queue the
     *  request. */
    bool canAccept(const MemRequest &req) const;

    /**
     * Admit a request (32-byte aligned). @return the request id
     * reported on completion.
     */
    std::uint64_t enqueue(const MemRequest &req);

    /** Selective-erasing hint forwarded to the channels. */
    void hintFutureWrite(std::uint64_t addr, std::uint64_t size);

    /** @return true when no demand requests are outstanding. */
    bool idle() const;

    /** Functional (untimed) write used to stage input datasets. */
    void functionalWrite(std::uint64_t addr, const void *src,
                         std::uint64_t len);
    /** Functional (untimed) read used to verify outputs. */
    void functionalRead(std::uint64_t addr, void *dst,
                        std::uint64_t len) const;

    /** @return channel @p i. */
    ChannelController &channel(std::uint32_t i)
    {
        return *channels_.at(i);
    }
    const ChannelController &channel(std::uint32_t i) const
    {
        return *channels_.at(i);
    }
    /** @return number of channels. */
    std::uint32_t numChannels() const
    {
        return std::uint32_t(channels_.size());
    }

    /** @return aggregate statistics. */
    const SubsystemStats &subsystemStats() const { return stats_; }

    /** @return the wear-leveling mapper, if enabled. */
    const StartGapMapper *wearLeveler() const
    {
        return wearLevel_ ? &*wearLevel_ : nullptr;
    }

    const std::string &name() const { return name_; }
    const SubsystemConfig &config() const { return config_; }

  private:
    /** Map a flat subsystem address to (channel, channel address). */
    std::pair<std::uint32_t, std::uint64_t>
    route(std::uint64_t addr) const;

    /** Apply the wear-leveling rotation to a stripe-aligned range. */
    std::uint64_t remap(std::uint64_t addr) const;

    /** Issue one contiguous (post-split) piece to its channel. */
    void issuePiece(std::uint64_t outer_id, const MemRequest &piece);

    /** Channel completion handler. */
    void onChannelComplete(std::uint32_t ch, const MemResponse &resp);

    /** Record writes for wear leveling and perform gap moves. */
    void recordWearLevelWrites(std::uint64_t stripes);

    struct OuterRequest
    {
        std::uint32_t remainingPieces = 0;
        Tick latest = 0;
        Tick enqueuedAt = 0;
        bool isWrite = false;
    };

    std::string name_;
    SubsystemConfig config_;
    EventQueue &eventq_;
    std::vector<std::unique_ptr<ChannelController>> channels_;
    /** Per-channel map from channel request id to outer id. */
    std::vector<std::unordered_map<std::uint64_t, std::uint64_t>>
        pieceToOuter_;
    std::unordered_map<std::uint64_t, OuterRequest> outer_;
    std::uint64_t nextOuterId_ = 1;
    CompletionCallback callback_;
    std::optional<StartGapMapper> wearLevel_;
    bool initialized_ = false;
    SubsystemStats stats_;
};

} // namespace ctrl
} // namespace dramless

#endif // DRAMLESS_CTRL_PRAM_SUBSYSTEM_HH
