#include "ctrl/channel_controller.hh"

#include <algorithm>
#include <cstring>

#include "sim/debug.hh"
#include "sim/trace.hh"

namespace dramless
{
namespace ctrl
{

namespace
{

/** Demand sub-ops scanned per module per pass when interleaving. */
constexpr std::uint32_t schedLookahead = 8;

} // anonymous namespace

ChannelController::ChannelController(EventQueue &eq,
                                     std::uint32_t num_modules,
                                     const pram::PramGeometry &geom,
                                     const pram::PramTiming &timing,
                                     const SchedulerConfig &config,
                                     std::string name, bool functional)
    : Clocked(eq, timing.tCK),
      config_(config),
      name_(std::move(name)),
      geom_(geom),
      phy_(eq, timing.tCK),
      schedulerEvent_(this, name_ + ".sched"),
      completionEvent_(this, name_ + ".completion")
{
    fatal_if(num_modules == 0, "channel needs at least one module");
    modules_.reserve(num_modules);
    moduleStates_.resize(num_modules);
    for (std::uint32_t i = 0; i < num_modules; ++i) {
        modules_.push_back(std::make_unique<pram::PramModule>(
            eq, geom, timing, name_ + csprintf(".mod%u", i),
            functional));
        moduleStates_[i].rabBusyUntil.assign(geom.numRowBuffers, 0);
        moduleStates_[i].rabLastUse.assign(geom.numRowBuffers, 0);
        moduleStates_[i].lastCode = pram::ow::cmdNone;
    }
    usableWordsPerModule_ =
        modules_.front()->overlayWindow().base() / geom.rowBufferBytes;
}

std::uint64_t
ChannelController::capacity() const
{
    return usableWordsPerModule_ * modules_.size() *
           geom_.rowBufferBytes;
}

bool
ChannelController::canAccept(const MemRequest &req) const
{
    std::uint64_t words = req.size / geom_.rowBufferBytes;
    for (std::uint64_t i = 0; i < words; ++i) {
        std::uint64_t word = req.addr / geom_.rowBufferBytes + i;
        const ModuleState &mstate = moduleStates_[moduleOfWord(word)];
        if (mstate.demand.size() >= config_.maxQueuePerModule)
            return false;
    }
    return true;
}

std::uint64_t
ChannelController::enqueue(const MemRequest &req)
{
    fatal_if(req.size == 0 || req.size % geom_.rowBufferBytes != 0,
             "%s: request size %u is not a multiple of the %u-byte "
             "access unit",
             name_.c_str(), req.size, geom_.rowBufferBytes);
    fatal_if(req.addr % geom_.rowBufferBytes != 0,
             "%s: request address 0x%llx misaligned", name_.c_str(),
             (unsigned long long)req.addr);
    fatal_if(req.addr + req.size > capacity(),
             "%s: request beyond capacity", name_.c_str());

    std::uint64_t id = nextReqId_++;
    std::uint32_t words = req.size / geom_.rowBufferBytes;
    DPRINTF("Ctrl", "enqueue %s id=%llu addr=0x%llx words=%u",
            req.kind == ReqKind::write ? "write" : "read",
            (unsigned long long)id, (unsigned long long)req.addr,
            words);
    RequestState &rstate = requests_[id];
    rstate.remainingSubOps = words;
    rstate.isWrite = (req.kind == ReqKind::write);
    rstate.enqueuedAt = curTick();

    if (rstate.isWrite) {
        ++stats_.writeRequests;
        stats_.writeWords += words;
    } else {
        ++stats_.readRequests;
        stats_.readWords += words;
    }

    std::uint64_t first_word = req.addr / geom_.rowBufferBytes;
    for (std::uint32_t i = 0; i < words; ++i) {
        std::uint64_t word = first_word + i;
        std::uint32_t m = moduleOfWord(word);
        std::uint64_t mword = moduleWordOf(word);
        ModuleState &mstate = moduleStates_[m];
        pram::PramModule &mod = *modules_[m];

        auto sub = std::make_unique<SubOp>();
        sub->seq = nextSeq_++;
        sub->reqId = id;
        sub->module = m;
        sub->isWrite = rstate.isWrite;
        sub->moduleWord = mword;
        sub->targetPartition =
            mod.decomposer()
                .decompose(mword * geom_.rowBufferBytes)
                .partition;

        if (rstate.isWrite) {
            std::array<std::uint8_t, 32> data;
            if (req.writeFrom != nullptr) {
                std::memcpy(data.data(),
                            static_cast<const std::uint8_t *>(
                                req.writeFrom) +
                                std::uint64_t(i) * geom_.rowBufferBytes,
                            geom_.rowBufferBytes);
            } else {
                // Timing-only writes carry a non-zero pattern so they
                // are never misclassified as RESET-mimicking zero
                // programs.
                data.fill(0xA5);
            }
            sub->ops = translateWrite(mstate, mod, mword, data.data());
            mstate.pendingWrites[mword].push_back(sub->seq);
            ++mstate.queuedDemandWrites;
            mstate.doNotZeroFill.insert(mword);
            // A queued-but-unstarted zero-fill of the same word is now
            // pointless (and would be a hazard); cancel it.
            cancelUnstartedZeroFill(mstate, mword);
        } else {
            sub->ops = translateRead(mod, mword);
            if (req.readInto != nullptr) {
                sub->readInto = static_cast<std::uint8_t *>(
                                    req.readInto) +
                                std::uint64_t(i) * geom_.rowBufferBytes;
            }
            // The kernel observes this word's current contents; a
            // later hint-driven zero-fill would destroy live data.
            mstate.doNotZeroFill.insert(mword);
            cancelUnstartedZeroFill(mstate, mword);
            // Streaming predictor: warm the next sequential rows
            // once the module goes idle (bounded run-ahead).
            mstate.nextPrefetchWord = mword + 1;
            mstate.prefetchLimit =
                mword + std::max<std::uint32_t>(
                            2, geom_.numRowBuffers - 1);
            mstate.prefetchSeeded = true;
        }
        mstate.demand.push_back(std::move(sub));
    }

    if (auto *t = trace::current()) {
        t->instant(trace::catCtrl, name_,
                   rstate.isWrite ? "enqueue.write" : "enqueue.read",
                   curTick());
        t->counter(trace::catCtrl, name_, "demandQueueDepth",
                   curTick(), double(queuedSubOps()));
    }
    eventQueue().reschedule(&schedulerEvent_, curTick());
    return id;
}

std::size_t
ChannelController::queuedSubOps() const
{
    std::size_t depth = 0;
    for (const ModuleState &ms : moduleStates_)
        depth += ms.demand.size();
    return depth;
}

void
ChannelController::hintFutureWrite(std::uint64_t addr,
                                   std::uint64_t size)
{
    if (!config_.selectiveErasing || size == 0)
        return;
    std::uint64_t first = addr / geom_.rowBufferBytes;
    std::uint64_t last = (addr + size - 1) / geom_.rowBufferBytes;
    // Split the channel-word range into per-module module-word ranges.
    for (std::uint32_t m = 0; m < modules_.size(); ++m) {
        // Module m holds words w with w % M == m; the covered
        // module-word range is contiguous.
        std::uint64_t lo = first / modules_.size() +
                           (first % modules_.size() > m ? 1 : 0);
        std::uint64_t hi = last / modules_.size() +
                           (last % modules_.size() >= m ? 1 : 0);
        if (hi > lo)
            moduleStates_[m].hints.emplace_back(lo, hi);
    }
    eventQueue().reschedule(&schedulerEvent_, curTick());
}

bool
ChannelController::idle() const
{
    return requests_.empty();
}

void
ChannelController::functionalWrite(std::uint64_t addr, const void *src,
                                   std::uint64_t len)
{
    const auto *s = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        std::uint64_t word = addr / geom_.rowBufferBytes;
        std::uint32_t off = std::uint32_t(addr % geom_.rowBufferBytes);
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, geom_.rowBufferBytes - off);
        modules_[moduleOfWord(word)]->functionalWrite(
            moduleWordOf(word) * geom_.rowBufferBytes + off, s, chunk);
        s += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
ChannelController::functionalRead(std::uint64_t addr, void *dst,
                                  std::uint64_t len) const
{
    auto *d = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        std::uint64_t word = addr / geom_.rowBufferBytes;
        std::uint32_t off = std::uint32_t(addr % geom_.rowBufferBytes);
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, geom_.rowBufferBytes - off);
        modules_[moduleOfWord(word)]->functionalRead(
            moduleWordOf(word) * geom_.rowBufferBytes + off, d, chunk);
        d += chunk;
        addr += chunk;
        len -= chunk;
    }
}

ChannelController::MicroOp
ChannelController::owWriteOp(const pram::PramModule &mod,
                             std::uint32_t ow_offset, const void *data,
                             std::uint32_t len) const
{
    std::uint64_t addr = mod.overlayWindow().base() + ow_offset;
    pram::DecomposedAddress d = mod.decomposer().decompose(addr);
    MicroOp op;
    op.partition = d.partition;
    op.row = d.row;
    op.upperRow = d.upperRow;
    op.lowerRow = d.lowerRow;
    op.column = d.column;
    op.len = len;
    op.isWrite = true;
    op.overlayRow = true;
    std::memcpy(op.data.data(), data, len);
    return op;
}

std::vector<ChannelController::MicroOp>
ChannelController::translateRead(const pram::PramModule &mod,
                                 std::uint64_t module_word) const
{
    pram::DecomposedAddress d = mod.decomposer().decompose(
        module_word * geom_.rowBufferBytes);
    MicroOp op;
    op.partition = d.partition;
    op.row = d.row;
    op.upperRow = d.upperRow;
    op.lowerRow = d.lowerRow;
    op.column = 0;
    op.len = geom_.rowBufferBytes;
    op.isWrite = false;
    op.overlayRow = false;
    return {op};
}

std::vector<ChannelController::MicroOp>
ChannelController::translateWrite(ModuleState &mstate,
                                  const pram::PramModule &mod,
                                  std::uint64_t module_word,
                                  const std::uint8_t *data) const
{
    std::vector<MicroOp> ops;
    // 1. Operation code (skipped when the register already holds it).
    if (mstate.lastCode != pram::ow::cmdBufferProgram) {
        std::uint32_t code = pram::ow::cmdBufferProgram;
        ops.push_back(owWriteOp(mod, pram::ow::codeReg, &code, 4));
    }
    // 2. Target row (word) address.
    std::uint32_t word32 = std::uint32_t(module_word);
    ops.push_back(owWriteOp(mod, pram::ow::addressReg, &word32, 4));
    // 3. Burst size via the multi-purpose register.
    std::uint32_t bytes = geom_.rowBufferBytes;
    ops.push_back(owWriteOp(mod, pram::ow::multiPurposeReg, &bytes, 4));
    // 4. Payload into the program buffer.
    ops.push_back(owWriteOp(mod, pram::ow::programBufferBase, data,
                            geom_.rowBufferBytes));
    // 5. Launch via the execute register.
    std::uint32_t go = 1;
    MicroOp exec = owWriteOp(mod, pram::ow::executeReg, &go, 4);
    exec.isExecute = true;
    ops.push_back(exec);
    return ops;
}

bool
ChannelController::readBlocked(const ModuleState &mstate,
                               const SubOp &sub) const
{
    auto it = mstate.pendingWrites.find(sub.moduleWord);
    if (it == mstate.pendingWrites.end())
        return false;
    for (std::uint64_t wseq : it->second) {
        if (wseq < sub.seq)
            return true;
    }
    return false;
}

ChannelController::Feasibility
ChannelController::evaluate(const ModuleState &mstate,
                            const pram::PramModule &mod,
                            const SubOp &sub) const
{
    const Tick now = curTick();
    const MicroOp &op = sub.ops[sub.opIdx];
    Feasibility f;

    // Writes serialize on the overlay-window register sequence.
    if (op.isWrite && mstate.owSeqOwner != nullptr &&
        mstate.owSeqOwner != &sub) {
        return f; // blocked on another sub-op's progress
    }

    Phase phase = sub.phase;
    int ba = sub.ba;

    if (phase == Phase::preActive) {
        // Look for row-buffer hits enabling phase skips.
        int hit_ba = -1;
        Tick inflight_hit_at = maxTick;
        if (config_.phaseSkipping) {
            for (std::uint32_t b = 0; b < geom_.numRowBuffers; ++b) {
                if (!mod.rabValid(b) ||
                    mod.rabUpperRow(b) != op.upperRow ||
                    mod.rabPartition(b) != op.partition) {
                    continue;
                }
                if (mstate.rabBusyUntil[b] > now) {
                    // The row is being sensed right now (e.g. by the
                    // prefetcher); waiting for it can beat redoing
                    // the full three-phase access.
                    if (mod.rdbValid(b) && mod.rdbRow(b) == op.row &&
                        mod.rdbPartition(b) == op.partition) {
                        inflight_hit_at = std::min(
                            inflight_hit_at, mstate.rabBusyUntil[b]);
                    }
                    continue;
                }
                hit_ba = int(b);
                break;
            }
        }
        if (hit_ba < 0 && inflight_hit_at != maxTick &&
            inflight_hit_at <
                now + mod.timing().tRCD + mod.timing().preActiveTime()) {
            // Cheaper to wait for the in-flight sense to complete.
            f.earliest = std::max(inflight_hit_at, sub.phaseReadyAt);
            f.ba = -1;
            f.effectivePhase = Phase::preActive;
            return f;
        }
        if (hit_ba >= 0) {
            ba = hit_ba;
            if (mod.rdbValid(std::uint32_t(hit_ba)) &&
                mod.rdbRow(std::uint32_t(hit_ba)) == op.row &&
                mod.rdbPartition(std::uint32_t(hit_ba)) ==
                    op.partition) {
                phase = Phase::readWrite;
            } else {
                phase = Phase::activate;
            }
        } else {
            // Need a free RAB and the CA bus.
            Tick rab_free = maxTick;
            for (std::uint32_t b = 0; b < geom_.numRowBuffers; ++b)
                rab_free = std::min(rab_free, mstate.rabBusyUntil[b]);
            if (rab_free == maxTick)
                return f; // all claimed; unblocked by other sub-ops
            // phaseReadyAt gates a verify-retry's status poll; for
            // every other sub-op it is <= now here.
            f.earliest = std::max(
                {now, phy_.caFreeAt(), rab_free, sub.phaseReadyAt});
            f.ba = -1;
            f.effectivePhase = Phase::preActive;
            return f;
        }
    }

    if (phase == Phase::activate) {
        Tick t = std::max({now, phy_.caFreeAt(), sub.phaseReadyAt});
        if (!op.overlayRow)
            t = std::max(t, mod.partitionBusyUntil(op.partition));
        f.earliest = t;
        f.ba = ba;
        f.effectivePhase = Phase::activate;
        return f;
    }

    // Read/write phase.
    Tick t = std::max({now, phy_.caFreeAt(), sub.phaseReadyAt});
    Tick preamble = op.isWrite ? mod.timing().writePreamble()
                               : mod.timing().readPreamble();
    Tick dq_free = phy_.dqFreeAt();
    Tick dq_ok = dq_free > preamble ? dq_free - preamble : 0;
    t = std::max(t, dq_ok);
    if (op.isExecute) {
        t = std::max(t, mod.programSlotFreeAt());
        t = std::max(t, mod.partitionBusyUntil(sub.targetPartition));
    }
    f.earliest = t;
    f.ba = ba;
    f.effectivePhase = Phase::readWrite;
    return f;
}

void
ChannelController::issue(ModuleState &mstate, pram::PramModule &mod,
                         SubOp &sub, const Feasibility &f)
{
    const Tick now = curTick();
    MicroOp &op = sub.ops[sub.opIdx];

    if (!sub.started) {
        sub.started = true;
        ++mstate.inFlight;
    }
    if (op.isWrite && mstate.owSeqOwner == nullptr)
        mstate.owSeqOwner = &sub;

    switch (f.effectivePhase) {
      case Phase::preActive: {
        DPRINTF("Ctrl", "mod%u %s word=%llu pre-active", sub.module,
                sub.isZeroFill ? "zf" : sub.isPrefetch ? "pf" : "op",
                (unsigned long long)sub.moduleWord);
        // Pick the least recently used free RAB.
        int ba = -1;
        Tick oldest = maxTick;
        for (std::uint32_t b = 0; b < geom_.numRowBuffers; ++b) {
            if (mstate.rabBusyUntil[b] > now)
                continue;
            if (mstate.rabLastUse[b] < oldest) {
                oldest = mstate.rabLastUse[b];
                ba = int(b);
            }
        }
        panic_if(ba < 0, "issue without a free RAB");
        mstate.rabBusyUntil[std::uint32_t(ba)] = maxTick; // claimed
        mstate.rabLastUse[std::uint32_t(ba)] = now;
        phy_.sendCommand(now);
        sub.phaseReadyAt =
            mod.preActive(std::uint32_t(ba), op.upperRow, op.partition);
        if (auto *t = trace::current()) {
            t->complete(trace::catCtrl, name_, "phase.preActive", now,
                        sub.phaseReadyAt);
        }
        sub.ba = ba;
        sub.phase = Phase::activate;
        return;
      }
      case Phase::activate: {
        if (sub.phase == Phase::preActive) {
            // Skipped the pre-active thanks to a RAB hit.
            ++stats_.preActivesSkipped;
            if (auto *t = trace::current()) {
                t->counter(trace::catCtrl, name_, "rabHits", now,
                           double(stats_.preActivesSkipped));
            }
            sub.ba = f.ba;
            mstate.rabBusyUntil[std::uint32_t(f.ba)] = maxTick;
            mstate.rabLastUse[std::uint32_t(f.ba)] = now;
        }
        phy_.sendCommand(now);
        sub.phaseReadyAt =
            mod.activate(std::uint32_t(sub.ba), op.lowerRow);
        if (auto *t = trace::current()) {
            t->complete(trace::catCtrl, name_,
                        sub.isPrefetch ? "phase.activate.prefetch"
                                       : "phase.activate",
                        now, sub.phaseReadyAt);
        }
        sub.phase = Phase::readWrite;
        if (sub.isPrefetch) {
            // The speculation ends here: the sensed RDB stays warm
            // for the next demand read's phase skip.
            ++stats_.prefetchActivates;
            mstate.rabBusyUntil[std::uint32_t(sub.ba)] =
                sub.phaseReadyAt;
            --mstate.inFlight;
            ++mstate.nextPrefetchWord;
            mstate.prefetch.reset();
            return; // sub is dangling now
        }
        return;
      }
      case Phase::readWrite:
        break;
    }

    // Read/write phase issue.
    if (sub.isPrefetch) {
        // The target row became resident through demand traffic while
        // the speculation waited; the warm-up is already done.
        ++mstate.nextPrefetchWord;
        if (sub.started)
            --mstate.inFlight;
        mstate.prefetch.reset();
        return; // sub is dangling now
    }
    if (sub.phase == Phase::preActive) {
        // Skipped both phases thanks to a full RDB hit.
        ++stats_.preActivesSkipped;
        ++stats_.activatesSkipped;
        if (auto *t = trace::current()) {
            t->counter(trace::catCtrl, name_, "rdbHits", now,
                       double(stats_.activatesSkipped));
        }
        sub.ba = f.ba;
        mstate.rabBusyUntil[std::uint32_t(f.ba)] = maxTick;
        mstate.rabLastUse[std::uint32_t(f.ba)] = now;
        sub.phaseReadyAt =
            std::max(now, mod.rdbReadyAt(std::uint32_t(f.ba)));
        panic_if(sub.phaseReadyAt > now, "RDB hit on unready RDB");
    }

    phy_.sendCommand(now);
    pram::BurstTiming bt;
    if (op.isWrite) {
        bt = mod.writeBurst(std::uint32_t(sub.ba), op.column, op.len,
                            op.data.data());
    } else {
        bt = mod.readBurst(std::uint32_t(sub.ba), op.column, op.len,
                           sub.readInto);
    }
    phy_.reserveDq(bt.firstData, bt.lastData);
    if (auto *t = trace::current()) {
        t->complete(trace::catCtrl, name_,
                    op.isWrite ? "phase.write" : "phase.read", now,
                    bt.lastData);
    }
    mstate.rabBusyUntil[std::uint32_t(sub.ba)] = bt.lastData;
    mstate.rabLastUse[std::uint32_t(sub.ba)] = now;

    bool was_execute = op.isExecute;
    ++sub.opIdx;
    sub.ba = -1;
    sub.phase = Phase::preActive;
    sub.phaseReadyAt = now;

    if (sub.opIdx < sub.ops.size())
        return; // sequence continues

    // Sub-op fully issued: check device verify status (writes),
    // release resources, and record completion.
    if (sub.isWrite) {
        panic_if(!was_execute, "write sequence ended without execute");
        Tick durable = mod.lastProgramEnd();
        bool verify_failed = faults_ && mod.lastProgramVerifyFailed();
        if (verify_failed && sub.retries < relCfg_.maxProgramRetries) {
            // Program-and-verify re-pulse: the overlay-window
            // registers and program buffer still hold the operation,
            // so only the execute write is replayed after a status
            // poll. The sub-op keeps the OW sequence lock and stays
            // in flight.
            ++sub.retries;
            ++stats_.verifyRetries;
            --sub.opIdx;
            sub.phase = Phase::preActive;
            sub.phaseReadyAt = durable + relCfg_.verifyCost;
            if (auto *t = trace::current()) {
                t->instant(trace::catCtrl, name_, "verify.retry",
                           durable);
                t->counter(trace::catCtrl, name_, "verifyRetries",
                           durable, double(stats_.verifyRetries));
            }
            return;
        }
        if (verify_failed) {
            // Retries exhausted: the line is worn out. Demand writes
            // report the failure upward (the subsystem remaps the
            // line to a spare); a failed pre-RESET is harmless — the
            // word simply stays non-pristine.
            ++stats_.verifyFailedWrites;
            if (auto *t = trace::current()) {
                t->instant(trace::catCtrl, name_, "verify.exhausted",
                           durable);
            }
        }
        --mstate.inFlight;
        mstate.owSeqOwner = nullptr;
        mstate.lastCode = pram::ow::cmdBufferProgram;
        if (sub.isZeroFill) {
            if (verify_failed)
                ++stats_.zeroFillVerifyDrops;
            DPRINTF("Ctrl", "mod%u zero-fill word=%llu durable@%llu",
                    sub.module,
                    (unsigned long long)sub.moduleWord,
                    (unsigned long long)durable);
            ++stats_.zeroFillPrograms;
            auto &zq = mstate.zeroFills;
            for (auto it = zq.begin(); it != zq.end(); ++it) {
                if (it->get() == &sub) {
                    zq.erase(it);
                    break;
                }
            }
            return; // no request to complete; sub is now dangling
        }
        panic_if(mstate.queuedDemandWrites == 0,
                 "demand write counter underflow");
        --mstate.queuedDemandWrites;
        auto &seqs = mstate.pendingWrites[sub.moduleWord];
        seqs.erase(std::remove(seqs.begin(), seqs.end(), sub.seq),
                   seqs.end());
        if (seqs.empty())
            mstate.pendingWrites.erase(sub.moduleWord);
        finishSubOp(sub, durable, verify_failed);
    } else {
        --mstate.inFlight;
        finishSubOp(sub, bt.lastData);
    }

    // Remove the finished demand sub-op from its queue.
    auto &dq = mstate.demand;
    for (auto it = dq.begin(); it != dq.end(); ++it) {
        if (it->get() == &sub) {
            dq.erase(it);
            break;
        }
    }
}

void
ChannelController::finishSubOp(const SubOp &sub, Tick when,
                               bool failed)
{
    auto it = requests_.find(sub.reqId);
    panic_if(it == requests_.end(), "sub-op of unknown request");
    RequestState &rstate = it->second;
    panic_if(rstate.remainingSubOps == 0, "request over-completed");
    rstate.latestCompletion = std::max(rstate.latestCompletion, when);
    if (failed && !rstate.failed) {
        rstate.failed = true;
        rstate.failedAddr =
            (sub.moduleWord * modules_.size() + sub.module) *
            geom_.rowBufferBytes;
    }
    if (--rstate.remainingSubOps == 0)
        pushCompletion(rstate.latestCompletion, sub.reqId);
}

void
ChannelController::configureReliability(
    const reliability::ReliabilityConfig &cfg, std::uint64_t salt)
{
    relCfg_ = cfg;
    faults_.reset();
    if (!cfg.enabled)
        return;
    faults_.emplace(cfg);
    for (std::uint32_t m = 0; m < modules_.size(); ++m)
        modules_[m]->attachFaults(&*faults_, reliability::mix(salt, m));
}

void
ChannelController::pushCompletion(Tick when, std::uint64_t req_id)
{
    completions_[when].push_back(req_id);
    eventQueue().reschedule(&completionEvent_,
                            completions_.begin()->first);
}

void
ChannelController::completionTrigger()
{
    const Tick now = curTick();
    while (!completions_.empty() &&
           completions_.begin()->first <= now) {
        auto ids = std::move(completions_.begin()->second);
        completions_.erase(completions_.begin());
        for (std::uint64_t id : ids) {
            auto it = requests_.find(id);
            panic_if(it == requests_.end(), "completing unknown req");
            RequestState rstate = it->second;
            requests_.erase(it);
            double lat_ns = toNs(now - rstate.enqueuedAt);
            if (rstate.isWrite)
                stats_.writeLatencyNs.sample(lat_ns);
            else
                stats_.readLatencyNs.sample(lat_ns);
            if (auto *t = trace::current()) {
                t->complete(trace::catCtrl, name_,
                            rstate.isWrite ? "req.write" : "req.read",
                            rstate.enqueuedAt, now);
                t->counter(trace::catCtrl, name_, "demandQueueDepth",
                           now, double(queuedSubOps()));
            }
            if (callback_) {
                callback_(MemResponse{id, now, rstate.failed,
                                      rstate.failedAddr});
            }
        }
    }
    if (!completions_.empty()) {
        eventQueue().reschedule(&completionEvent_,
                                completions_.begin()->first);
    }
}

void
ChannelController::cancelUnstartedZeroFill(ModuleState &mstate,
                                           std::uint64_t mword)
{
    auto &zq = mstate.zeroFills;
    for (auto it = zq.begin(); it != zq.end(); ++it) {
        if (!(*it)->started && (*it)->moduleWord == mword) {
            zq.erase(it);
            ++stats_.zeroFillSkipped;
            return;
        }
    }
}

void
ChannelController::materializePrefetch(std::uint32_t m)
{
    ModuleState &mstate = moduleStates_[m];
    if (mstate.prefetch || !mstate.prefetchSeeded)
        return;
    std::uint64_t w = mstate.nextPrefetchWord;
    if (w >= usableWordsPerModule_ || w > mstate.prefetchLimit)
        return;
    pram::PramModule &mod = *modules_[m];
    // Skip words whose row is already resident or hazardous.
    if (mstate.pendingWrites.count(w))
        return;
    pram::DecomposedAddress d =
        mod.decomposer().decompose(w * geom_.rowBufferBytes);
    for (std::uint32_t b = 0; b < geom_.numRowBuffers; ++b) {
        if (mod.rdbValid(b) && mod.rdbRow(b) == d.row &&
            mod.rdbPartition(b) == d.partition) {
            return; // already warm
        }
    }
    auto sub = std::make_unique<SubOp>();
    sub->seq = nextSeq_++;
    sub->module = m;
    sub->isPrefetch = true;
    sub->moduleWord = w;
    sub->targetPartition = d.partition;
    sub->ops = translateRead(mod, w);
    mstate.prefetch = std::move(sub);
}

void
ChannelController::materializeZeroFill(std::uint32_t m)
{
    ModuleState &mstate = moduleStates_[m];
    pram::PramModule &mod = *modules_[m];
    while (!mstate.hints.empty() &&
           mstate.zeroFills.size() < geom_.programSlots) {
        auto &range = mstate.hints.front();
        if (range.first >= range.second) {
            mstate.hints.pop_front();
            continue;
        }
        std::uint64_t w = range.first++;
        if (mstate.doNotZeroFill.count(w) || mod.wordIsPristine(w)) {
            ++stats_.zeroFillSkipped;
            continue;
        }
        auto sub = std::make_unique<SubOp>();
        sub->seq = nextSeq_++;
        sub->reqId = 0;
        sub->module = m;
        sub->isWrite = true;
        sub->isZeroFill = true;
        sub->moduleWord = w;
        sub->targetPartition =
            mod.decomposer()
                .decompose(w * geom_.rowBufferBytes)
                .partition;
        std::array<std::uint8_t, 32> zeros{};
        sub->ops = translateWrite(mstate, mod, w, zeros.data());
        mstate.zeroFills.push_back(std::move(sub));
    }
}

void
ChannelController::schedule()
{
    if (inSchedule_)
        return;
    inSchedule_ = true;
    const Tick now = curTick();

    bool progress = true;
    Tick next_wake = maxTick;
    // Scan start for each pass. In interleaved mode an issue on
    // module m resumes the next pass at m: feasibility of earlier
    // modules depends only on their own (unchanged) state and the
    // shared CA/DQ bus free times, which issuing can only push later,
    // so nothing before m becomes newly issuable. A pass that starts
    // past module 0 and stalls is followed by one full pass so
    // next_wake accounts for every module. Non-interleaved
    // scheduling always rescans from 0: the channel-wide FIFO head
    // may move to any module after an issue.
    std::uint32_t start = 0;
    std::uint32_t scan_end = std::uint32_t(modules_.size());
    while (progress) {
        progress = false;
        // A prefix-only merge pass (scan_end != size) keeps the
        // stalled pass's next_wake: together they cover every module
        // under unchanged bus state, so the merged minimum is exact.
        if (scan_end == modules_.size())
            next_wake = maxTick;

        // The noop (Bare-metal) scheduler services the request queue
        // strictly in order: only the globally oldest incomplete
        // demand sub-op on the channel may issue.
        std::uint64_t fifo_head = ~std::uint64_t(0);
        if (!config_.interleaving) {
            for (const ModuleState &ms : moduleStates_) {
                if (!ms.demand.empty()) {
                    fifo_head = std::min(fifo_head,
                                         ms.demand.front()->seq);
                }
            }
        }

        std::uint32_t m = start;
        for (; m < scan_end && !progress; ++m) {
            ModuleState &mstate = moduleStates_[m];
            pram::PramModule &mod = *modules_[m];

            std::uint32_t scanned = 0;
            for (auto &subptr : mstate.demand) {
                SubOp &sub = *subptr;
                if (!config_.interleaving && sub.seq != fifo_head)
                    break; // strict FIFO across the channel
                if (++scanned > schedLookahead)
                    break;
                if (!sub.started &&
                    mstate.inFlight >= geom_.numRowBuffers) {
                    continue; // row buffers exhausted
                }
                if (!sub.isWrite && readBlocked(mstate, sub))
                    continue;
                Feasibility f = evaluate(mstate, mod, sub);
                if (f.earliest == maxTick)
                    continue;
                if (f.earliest <= now) {
                    issue(mstate, mod, sub, f);
                    progress = true;
                    break;
                }
                next_wake = std::min(next_wake, f.earliest);
            }
            if (progress)
                break;

            // Selective erasing: zero-fills yield to queued demand
            // writes (which they would race for the program slots)
            // but run alongside read traffic — the paper erases
            // "before completing the corresponding computation". An
            // already started sequence must run to completion: it
            // owns the overlay-window registers demand writes need.
            // Speculative RDB warming runs only on an idle module
            // and stops after the activate phase.
            if (config_.rdbPrefetch && mstate.demand.empty()) {
                materializePrefetch(m);
                if (mstate.prefetch) {
                    SubOp &pf = *mstate.prefetch;
                    Feasibility f = evaluate(mstate, mod, pf);
                    if (f.earliest != maxTick) {
                        if (f.earliest <= now) {
                            issue(mstate, mod, pf, f);
                            progress = true;
                            break;
                        }
                        next_wake = std::min(next_wake, f.earliest);
                    }
                }
            }

            if (config_.selectiveErasing) {
                if (mstate.queuedDemandWrites == 0 &&
                    !mstate.hints.empty())
                    materializeZeroFill(m);
                for (auto &zfptr : mstate.zeroFills) {
                    SubOp &zf = *zfptr;
                    if (!zf.started &&
                        mstate.queuedDemandWrites != 0)
                        continue;
                    Feasibility f = evaluate(mstate, mod, zf);
                    if (f.earliest == maxTick)
                        continue;
                    if (f.earliest <= now) {
                        issue(mstate, mod, zf, f);
                        progress = true;
                        break;
                    }
                    next_wake = std::min(next_wake, f.earliest);
                }
                if (progress)
                    break;
            }
        }

        if (progress) {
            start = config_.interleaving ? m : 0;
            scan_end = std::uint32_t(modules_.size());
        } else if (start != 0) {
            // Stalled mid-array: sweep just the skipped prefix to
            // fold the remaining modules into next_wake.
            scan_end = start;
            start = 0;
            progress = true;
        }
    }

    if (next_wake != maxTick) {
        panic_if(next_wake <= now, "scheduler wake in the past");
        eventQueue().reschedule(&schedulerEvent_, next_wake);
    }
    inSchedule_ = false;
}

} // namespace ctrl
} // namespace dramless
