#include "ctrl/channel_controller.hh"

#include <algorithm>
#include <cstring>

#include "sim/debug.hh"
#include "sim/trace.hh"

namespace dramless
{
namespace ctrl
{

namespace
{

/** Demand sub-ops scanned per module per pass when interleaving. */
constexpr std::uint32_t schedLookahead = 8;

} // anonymous namespace

ChannelController::ChannelController(EventQueue &eq,
                                     std::uint32_t num_modules,
                                     const pram::PramGeometry &geom,
                                     const pram::PramTiming &timing,
                                     const SchedulerConfig &config,
                                     std::string name, bool functional)
    : Clocked(eq, timing.tCK),
      config_(config),
      name_(std::move(name)),
      geom_(geom),
      phy_(eq, timing.tCK),
      schedulerEvent_(this, name_ + ".sched"),
      completionEvent_(this, name_ + ".completion")
{
    fatal_if(num_modules == 0, "channel needs at least one module");
    modules_.reserve(num_modules);
    moduleStates_.resize(num_modules);
    for (std::uint32_t i = 0; i < num_modules; ++i) {
        modules_.push_back(std::make_unique<pram::PramModule>(
            eq, geom, timing, name_ + csprintf(".mod%u", i),
            functional));
        moduleStates_[i].rabBusyUntil.assign(geom.numRowBuffers, 0);
        moduleStates_[i].rabLastUse.assign(geom.numRowBuffers, 0);
        moduleStates_[i].lastCode = pram::ow::cmdNone;
    }
    usableWordsPerModule_ =
        modules_.front()->overlayWindow().base() / geom.rowBufferBytes;
}

std::uint64_t
ChannelController::capacity() const
{
    return usableWordsPerModule_ * modules_.size() *
           geom_.rowBufferBytes;
}

bool
ChannelController::canAccept(const MemRequest &req) const
{
    // Every gang occupies one slot on each of its member modules.
    std::size_t gang_depth = gangs_.size();
    std::uint64_t words = req.size / geom_.rowBufferBytes;
    for (std::uint64_t i = 0; i < words; ++i) {
        std::uint64_t word = req.addr / geom_.rowBufferBytes + i;
        const ModuleState &mstate = moduleStates_[moduleOfWord(word)];
        if (mstate.demand.size() + gang_depth >=
            config_.maxQueuePerModule) {
            return false;
        }
    }
    return true;
}

std::uint64_t
ChannelController::enqueue(const MemRequest &req)
{
    fatal_if(req.size == 0 || req.size % geom_.rowBufferBytes != 0,
             "%s: request size %u is not a multiple of the %u-byte "
             "access unit",
             name_.c_str(), req.size, geom_.rowBufferBytes);
    fatal_if(req.addr % geom_.rowBufferBytes != 0,
             "%s: request address 0x%llx misaligned", name_.c_str(),
             (unsigned long long)req.addr);
    fatal_if(req.addr + req.size > capacity(),
             "%s: request beyond capacity", name_.c_str());

    std::uint64_t id = nextReqId_++;
    std::uint32_t words = req.size / geom_.rowBufferBytes;
    DPRINTF("Ctrl", "enqueue %s id=%llu addr=0x%llx words=%u",
            req.kind == ReqKind::write ? "write" : "read",
            (unsigned long long)id, (unsigned long long)req.addr,
            words);
    RequestState &rstate = requests_[id];
    rstate.remainingSubOps = 0;
    rstate.isWrite = (req.kind == ReqKind::write);
    rstate.enqueuedAt = curTick();

    if (rstate.isWrite) {
        ++stats_.writeRequests;
        stats_.writeWords += words;
    } else {
        ++stats_.readRequests;
        stats_.readWords += words;
    }

    const std::uint32_t M = std::uint32_t(modules_.size());
    std::uint64_t first_word = req.addr / geom_.rowBufferBytes;
    for (std::uint32_t i = 0; i < words; ++i) {
        std::uint64_t word = first_word + i;

        // A full channel-width aligned group (every module at the
        // same module word — the natural shape of a 512-byte channel
        // piece) becomes one cross-module gang sub-op. The gang
        // timing model overlaps member array operations, which is
        // exactly the multi-resource overlap the interleaving knob
        // grants — without it (Figure 13 bare-metal / selective-
        // erasing bars), words must run one at a time, so ganging
        // would inflate those variants and is disabled.
        if (config_.gangBursts && config_.interleaving && M > 1 &&
            word % M == 0 && words - i >= M) {
            enqueueGang(req, rstate, id, word / M, i);
            ++rstate.remainingSubOps;
            i += M - 1;
            continue;
        }
        ++rstate.remainingSubOps;
        std::uint32_t m = moduleOfWord(word);
        std::uint64_t mword = moduleWordOf(word);
        ModuleState &mstate = moduleStates_[m];
        pram::PramModule &mod = *modules_[m];

        auto sub = std::make_unique<SubOp>();
        sub->seq = nextSeq_++;
        sub->reqId = id;
        sub->module = m;
        sub->isWrite = rstate.isWrite;
        sub->moduleWord = mword;
        sub->targetPartition =
            mod.decomposer()
                .decompose(mword * geom_.rowBufferBytes)
                .partition;

        if (rstate.isWrite) {
            std::array<std::uint8_t, 32> data;
            if (req.writeFrom != nullptr) {
                std::memcpy(data.data(),
                            static_cast<const std::uint8_t *>(
                                req.writeFrom) +
                                std::uint64_t(i) * geom_.rowBufferBytes,
                            geom_.rowBufferBytes);
            } else {
                // Timing-only writes carry a non-zero pattern so they
                // are never misclassified as RESET-mimicking zero
                // programs.
                data.fill(0xA5);
            }
            sub->ops = translateWrite(mstate, mod, mword, data.data());
            mstate.pendingWrites[mword].push_back(sub->seq);
            ++mstate.queuedDemandWrites;
            mstate.doNotZeroFill.insert(mword);
            // A queued-but-unstarted zero-fill of the same word is now
            // pointless (and would be a hazard); cancel it.
            cancelUnstartedZeroFill(mstate, mword);
            cancelUnstartedGangZeroFill(mword);
        } else {
            sub->ops = translateRead(mod, mword);
            if (req.readInto != nullptr) {
                sub->readInto = static_cast<std::uint8_t *>(
                                    req.readInto) +
                                std::uint64_t(i) * geom_.rowBufferBytes;
            }
            // The kernel observes this word's current contents; a
            // later hint-driven zero-fill would destroy live data.
            mstate.doNotZeroFill.insert(mword);
            cancelUnstartedZeroFill(mstate, mword);
            cancelUnstartedGangZeroFill(mword);
            // Streaming predictor: warm the next sequential rows
            // once the module goes idle (bounded run-ahead).
            mstate.nextPrefetchWord = mword + 1;
            mstate.prefetchLimit =
                mword + std::max<std::uint32_t>(
                            2, geom_.numRowBuffers - 1);
            mstate.prefetchSeeded = true;
        }
        mstate.demand.push_back(std::move(sub));
    }

    if (auto *t = trace::current()) {
        t->instant(trace::catCtrl, name_,
                   rstate.isWrite ? "enqueue.write" : "enqueue.read",
                   curTick());
        t->counter(trace::catCtrl, name_, "demandQueueDepth",
                   curTick(), double(queuedSubOps()));
    }
    eventQueue().reschedule(&schedulerEvent_, curTick());
    return id;
}

std::size_t
ChannelController::queuedSubOps() const
{
    std::size_t depth = 0;
    for (const ModuleState &ms : moduleStates_)
        depth += ms.demand.size();
    return depth + gangs_.size();
}

void
ChannelController::hintWords(std::uint64_t first, std::uint64_t last)
{
    // Split the channel-word range into per-module module-word ranges.
    for (std::uint32_t m = 0; m < modules_.size(); ++m) {
        // Module m holds words w with w % M == m; the covered
        // module-word range is contiguous.
        std::uint64_t lo = first / modules_.size() +
                           (first % modules_.size() > m ? 1 : 0);
        std::uint64_t hi = last / modules_.size() +
                           (last % modules_.size() >= m ? 1 : 0);
        if (hi > lo)
            moduleStates_[m].hints.emplace_back(lo, hi);
    }
}

void
ChannelController::hintFutureWrite(std::uint64_t addr,
                                   std::uint64_t size)
{
    if (!config_.selectiveErasing || size == 0)
        return;
    std::uint64_t first = addr / geom_.rowBufferBytes;
    std::uint64_t last = (addr + size - 1) / geom_.rowBufferBytes;
    const std::uint64_t M = modules_.size();
    if (gangEnabled()) {
        // Full channel-width aligned groups erase as one gang
        // sub-op each; only the unaligned head and tail fall back to
        // the per-module queues.
        std::uint64_t g_lo = (first + M - 1) / M;
        std::uint64_t g_hi = (last + 1) / M;
        if (g_hi > g_lo) {
            gangHints_.emplace_back(g_lo, g_hi);
            if (g_lo * M > first)
                hintWords(first, g_lo * M - 1);
            if (g_hi * M <= last)
                hintWords(g_hi * M, last);
        } else {
            hintWords(first, last);
        }
    } else {
        hintWords(first, last);
    }
    eventQueue().reschedule(&schedulerEvent_, curTick());
}

bool
ChannelController::idle() const
{
    return requests_.empty();
}

void
ChannelController::functionalWrite(std::uint64_t addr, const void *src,
                                   std::uint64_t len)
{
    const auto *s = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        std::uint64_t word = addr / geom_.rowBufferBytes;
        std::uint32_t off = std::uint32_t(addr % geom_.rowBufferBytes);
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, geom_.rowBufferBytes - off);
        modules_[moduleOfWord(word)]->functionalWrite(
            moduleWordOf(word) * geom_.rowBufferBytes + off, s, chunk);
        s += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
ChannelController::functionalRead(std::uint64_t addr, void *dst,
                                  std::uint64_t len) const
{
    auto *d = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        std::uint64_t word = addr / geom_.rowBufferBytes;
        std::uint32_t off = std::uint32_t(addr % geom_.rowBufferBytes);
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, geom_.rowBufferBytes - off);
        modules_[moduleOfWord(word)]->functionalRead(
            moduleWordOf(word) * geom_.rowBufferBytes + off, d, chunk);
        d += chunk;
        addr += chunk;
        len -= chunk;
    }
}

ChannelController::MicroOp
ChannelController::owWriteOp(const pram::PramModule &mod,
                             std::uint32_t ow_offset, const void *data,
                             std::uint32_t len) const
{
    std::uint64_t addr = mod.overlayWindow().base() + ow_offset;
    pram::DecomposedAddress d = mod.decomposer().decompose(addr);
    MicroOp op;
    op.partition = d.partition;
    op.row = d.row;
    op.upperRow = d.upperRow;
    op.lowerRow = d.lowerRow;
    op.column = d.column;
    op.len = len;
    op.isWrite = true;
    op.overlayRow = true;
    std::memcpy(op.data.data(), data, len);
    return op;
}

std::vector<ChannelController::MicroOp>
ChannelController::translateRead(const pram::PramModule &mod,
                                 std::uint64_t module_word) const
{
    pram::DecomposedAddress d = mod.decomposer().decompose(
        module_word * geom_.rowBufferBytes);
    MicroOp op;
    op.partition = d.partition;
    op.row = d.row;
    op.upperRow = d.upperRow;
    op.lowerRow = d.lowerRow;
    op.column = 0;
    op.len = geom_.rowBufferBytes;
    op.isWrite = false;
    op.overlayRow = false;
    return {op};
}

std::vector<ChannelController::MicroOp>
ChannelController::translateWrite(ModuleState &mstate,
                                  const pram::PramModule &mod,
                                  std::uint64_t module_word,
                                  const std::uint8_t *data) const
{
    std::vector<MicroOp> ops;
    // 1. Operation code (skipped when the register already holds it).
    if (mstate.lastCode != pram::ow::cmdBufferProgram) {
        std::uint32_t code = pram::ow::cmdBufferProgram;
        ops.push_back(owWriteOp(mod, pram::ow::codeReg, &code, 4));
    }
    // 2. Target row (word) address.
    std::uint32_t word32 = std::uint32_t(module_word);
    ops.push_back(owWriteOp(mod, pram::ow::addressReg, &word32, 4));
    // 3. Burst size via the multi-purpose register.
    std::uint32_t bytes = geom_.rowBufferBytes;
    ops.push_back(owWriteOp(mod, pram::ow::multiPurposeReg, &bytes, 4));
    // 4. Payload into the program buffer.
    ops.push_back(owWriteOp(mod, pram::ow::programBufferBase, data,
                            geom_.rowBufferBytes));
    // 5. Launch via the execute register.
    std::uint32_t go = 1;
    MicroOp exec = owWriteOp(mod, pram::ow::executeReg, &go, 4);
    exec.isExecute = true;
    ops.push_back(exec);
    return ops;
}

std::vector<ChannelController::MicroOp>
ChannelController::translateGangWrite(const pram::PramModule &mod,
                                      std::uint64_t module_word) const
{
    std::vector<MicroOp> ops;
    // 1. Operation code: rewritten when any member still needs it
    // (a redundant rewrite on the others is harmless).
    bool need_code = false;
    for (const ModuleState &ms : moduleStates_)
        if (ms.lastCode != pram::ow::cmdBufferProgram)
            need_code = true;
    if (need_code) {
        std::uint32_t code = pram::ow::cmdBufferProgram;
        ops.push_back(owWriteOp(mod, pram::ow::codeReg, &code, 4));
    }
    // 2. Target row (word) address — identical on every member.
    std::uint32_t word32 = std::uint32_t(module_word);
    ops.push_back(owWriteOp(mod, pram::ow::addressReg, &word32, 4));
    // 3. Burst size via the multi-purpose register.
    std::uint32_t bytes = geom_.rowBufferBytes;
    ops.push_back(owWriteOp(mod, pram::ow::multiPurposeReg, &bytes, 4));
    // 4. Payload into the program buffer: per-member slices of the
    // gang's data, substituted at issue time.
    MicroOp payload = owWriteOp(mod, pram::ow::programBufferBase,
                                ops.back().data.data(),
                                geom_.rowBufferBytes);
    payload.isPayload = true;
    ops.push_back(payload);
    // 5. Launch via the execute register.
    std::uint32_t go = 1;
    MicroOp exec = owWriteOp(mod, pram::ow::executeReg, &go, 4);
    exec.isExecute = true;
    ops.push_back(exec);
    return ops;
}

void
ChannelController::enqueueGang(const MemRequest &req,
                               const RequestState &rstate,
                               std::uint64_t id, std::uint64_t mword,
                               std::uint32_t word_off)
{
    const std::uint32_t M = std::uint32_t(modules_.size());
    const std::uint32_t unit = geom_.rowBufferBytes;

    auto sub = std::make_unique<SubOp>();
    sub->seq = nextSeq_++;
    sub->reqId = id;
    sub->module = 0;
    sub->span = M;
    sub->isWrite = rstate.isWrite;
    sub->moduleWord = mword;
    // All members decompose the same module word identically.
    sub->targetPartition =
        modules_.front()
            ->decomposer()
            .decompose(mword * unit)
            .partition;

    ++stats_.gangSubOps;
    stats_.gangWords += M;

    if (rstate.isWrite) {
        sub->gangData.resize(std::size_t(M) * unit);
        if (req.writeFrom != nullptr) {
            std::memcpy(sub->gangData.data(),
                        static_cast<const std::uint8_t *>(
                            req.writeFrom) +
                            std::uint64_t(word_off) * unit,
                        sub->gangData.size());
        } else {
            // Timing-only writes carry a non-zero pattern so they
            // are never misclassified as RESET-mimicking zero
            // programs.
            std::fill(sub->gangData.begin(), sub->gangData.end(),
                      std::uint8_t(0xA5));
        }
        sub->gangPending =
            M >= 32 ? ~std::uint32_t(0) : (std::uint32_t(1) << M) - 1;
        sub->ops = translateGangWrite(*modules_.front(), mword);
        for (std::uint32_t m = 0; m < M; ++m) {
            ModuleState &ms = moduleStates_[m];
            ms.pendingWrites[mword].push_back(sub->seq);
            ++ms.queuedDemandWrites;
            ms.doNotZeroFill.insert(mword);
            cancelUnstartedZeroFill(ms, mword);
        }
        cancelUnstartedGangZeroFill(mword);
    } else {
        sub->ops = translateRead(*modules_.front(), mword);
        if (req.readInto != nullptr) {
            sub->readInto =
                static_cast<std::uint8_t *>(req.readInto) +
                std::uint64_t(word_off) * unit;
        }
        cancelUnstartedGangZeroFill(mword);
        for (std::uint32_t m = 0; m < M; ++m) {
            ModuleState &ms = moduleStates_[m];
            ms.doNotZeroFill.insert(mword);
            cancelUnstartedZeroFill(ms, mword);
            ms.nextPrefetchWord = mword + 1;
            ms.prefetchLimit =
                mword + std::max<std::uint32_t>(
                            2, geom_.numRowBuffers - 1);
            ms.prefetchSeeded = true;
        }
    }
    gangs_.push_back(std::move(sub));
}

bool
ChannelController::gangOrderBlocked(const SubOp &sub) const
{
    for (std::uint32_t m = 0; m < sub.span; ++m) {
        const ModuleState &ms = moduleStates_[m];
        auto it = ms.pendingWrites.find(sub.moduleWord);
        if (it == ms.pendingWrites.end())
            continue;
        for (std::uint64_t wseq : it->second)
            if (wseq < sub.seq)
                return true;
    }
    return false;
}

bool
ChannelController::readBlocked(const ModuleState &mstate,
                               const SubOp &sub) const
{
    auto it = mstate.pendingWrites.find(sub.moduleWord);
    if (it == mstate.pendingWrites.end())
        return false;
    for (std::uint64_t wseq : it->second) {
        if (wseq < sub.seq)
            return true;
    }
    return false;
}

ChannelController::Feasibility
ChannelController::evaluate(const ModuleState &mstate,
                            const pram::PramModule &mod,
                            const SubOp &sub) const
{
    const Tick now = curTick();
    const MicroOp &op = sub.ops[sub.opIdx];
    Feasibility f;

    // Writes serialize on the overlay-window register sequence.
    if (op.isWrite && mstate.owSeqOwner != nullptr &&
        mstate.owSeqOwner != &sub) {
        return f; // blocked on another sub-op's progress
    }

    Phase phase = sub.phase;
    int ba = sub.ba;

    if (phase == Phase::preActive) {
        // Look for row-buffer hits enabling phase skips.
        int hit_ba = -1;
        Tick inflight_hit_at = maxTick;
        if (config_.phaseSkipping) {
            for (std::uint32_t b = 0; b < geom_.numRowBuffers; ++b) {
                if (!mod.rabValid(b) ||
                    mod.rabUpperRow(b) != op.upperRow ||
                    mod.rabPartition(b) != op.partition) {
                    continue;
                }
                if (mstate.rabBusyUntil[b] > now) {
                    // The row is being sensed right now (e.g. by the
                    // prefetcher); waiting for it can beat redoing
                    // the full three-phase access.
                    if (mod.rdbValid(b) && mod.rdbRow(b) == op.row &&
                        mod.rdbPartition(b) == op.partition) {
                        inflight_hit_at = std::min(
                            inflight_hit_at, mstate.rabBusyUntil[b]);
                    }
                    continue;
                }
                hit_ba = int(b);
                break;
            }
        }
        if (hit_ba < 0 && inflight_hit_at != maxTick &&
            inflight_hit_at <
                now + mod.timing().tRCD + mod.timing().preActiveTime()) {
            // Cheaper to wait for the in-flight sense to complete.
            f.earliest = std::max(inflight_hit_at, sub.phaseReadyAt);
            f.ba = -1;
            f.effectivePhase = Phase::preActive;
            return f;
        }
        if (hit_ba >= 0) {
            ba = hit_ba;
            if (mod.rdbValid(std::uint32_t(hit_ba)) &&
                mod.rdbRow(std::uint32_t(hit_ba)) == op.row &&
                mod.rdbPartition(std::uint32_t(hit_ba)) ==
                    op.partition) {
                phase = Phase::readWrite;
            } else {
                phase = Phase::activate;
            }
        } else {
            // Need a free RAB and the CA bus.
            Tick rab_free = maxTick;
            for (std::uint32_t b = 0; b < geom_.numRowBuffers; ++b)
                rab_free = std::min(rab_free, mstate.rabBusyUntil[b]);
            if (rab_free == maxTick)
                return f; // all claimed; unblocked by other sub-ops
            // phaseReadyAt gates a verify-retry's status poll; for
            // every other sub-op it is <= now here.
            f.earliest = std::max(
                {now, phy_.caFreeAt(), rab_free, sub.phaseReadyAt});
            f.ba = -1;
            f.effectivePhase = Phase::preActive;
            return f;
        }
    }

    if (phase == Phase::activate) {
        Tick t = std::max({now, phy_.caFreeAt(), sub.phaseReadyAt});
        if (!op.overlayRow)
            t = std::max(t, mod.partitionBusyUntil(op.partition));
        f.earliest = t;
        f.ba = ba;
        f.effectivePhase = Phase::activate;
        return f;
    }

    // Read/write phase.
    Tick t = std::max({now, phy_.caFreeAt(), sub.phaseReadyAt});
    Tick preamble = op.isWrite ? mod.timing().writePreamble()
                               : mod.timing().readPreamble();
    Tick dq_free = phy_.dqFreeAt();
    Tick dq_ok = dq_free > preamble ? dq_free - preamble : 0;
    t = std::max(t, dq_ok);
    if (op.isExecute) {
        t = std::max(t, mod.programSlotFreeAt());
        t = std::max(t, mod.partitionBusyUntil(sub.targetPartition));
    }
    f.earliest = t;
    f.ba = ba;
    f.effectivePhase = Phase::readWrite;
    return f;
}

void
ChannelController::issue(ModuleState &mstate, pram::PramModule &mod,
                         SubOp &sub, const Feasibility &f)
{
    const Tick now = curTick();
    MicroOp &op = sub.ops[sub.opIdx];

    if (!sub.started) {
        sub.started = true;
        ++mstate.inFlight;
    }
    if (op.isWrite && mstate.owSeqOwner == nullptr)
        mstate.owSeqOwner = &sub;

    switch (f.effectivePhase) {
      case Phase::preActive: {
        DPRINTF("Ctrl", "mod%u %s word=%llu pre-active", sub.module,
                sub.isZeroFill ? "zf" : sub.isPrefetch ? "pf" : "op",
                (unsigned long long)sub.moduleWord);
        // Pick the least recently used free RAB.
        int ba = -1;
        Tick oldest = maxTick;
        for (std::uint32_t b = 0; b < geom_.numRowBuffers; ++b) {
            if (mstate.rabBusyUntil[b] > now)
                continue;
            if (mstate.rabLastUse[b] < oldest) {
                oldest = mstate.rabLastUse[b];
                ba = int(b);
            }
        }
        panic_if(ba < 0, "issue without a free RAB");
        mstate.rabBusyUntil[std::uint32_t(ba)] = maxTick; // claimed
        mstate.rabLastUse[std::uint32_t(ba)] = now;
        phy_.sendCommand(now);
        sub.phaseReadyAt =
            mod.preActive(std::uint32_t(ba), op.upperRow, op.partition);
        if (auto *t = trace::current()) {
            t->complete(trace::catCtrl, name_, "phase.preActive", now,
                        sub.phaseReadyAt);
        }
        sub.ba = ba;
        sub.phase = Phase::activate;
        return;
      }
      case Phase::activate: {
        if (sub.phase == Phase::preActive) {
            // Skipped the pre-active thanks to a RAB hit.
            ++stats_.preActivesSkipped;
            if (auto *t = trace::current()) {
                t->counter(trace::catCtrl, name_, "rabHits", now,
                           double(stats_.preActivesSkipped));
            }
            sub.ba = f.ba;
            mstate.rabBusyUntil[std::uint32_t(f.ba)] = maxTick;
            mstate.rabLastUse[std::uint32_t(f.ba)] = now;
        }
        phy_.sendCommand(now);
        sub.phaseReadyAt =
            mod.activate(std::uint32_t(sub.ba), op.lowerRow);
        if (auto *t = trace::current()) {
            t->complete(trace::catCtrl, name_,
                        sub.isPrefetch ? "phase.activate.prefetch"
                                       : "phase.activate",
                        now, sub.phaseReadyAt);
        }
        sub.phase = Phase::readWrite;
        if (sub.isPrefetch) {
            // The speculation ends here: the sensed RDB stays warm
            // for the next demand read's phase skip.
            ++stats_.prefetchActivates;
            mstate.rabBusyUntil[std::uint32_t(sub.ba)] =
                sub.phaseReadyAt;
            --mstate.inFlight;
            ++mstate.nextPrefetchWord;
            mstate.prefetch.reset();
            return; // sub is dangling now
        }
        return;
      }
      case Phase::readWrite:
        break;
    }

    // Read/write phase issue.
    if (sub.isPrefetch) {
        // The target row became resident through demand traffic while
        // the speculation waited; the warm-up is already done.
        ++mstate.nextPrefetchWord;
        if (sub.started)
            --mstate.inFlight;
        mstate.prefetch.reset();
        return; // sub is dangling now
    }
    if (sub.phase == Phase::preActive) {
        // Skipped both phases thanks to a full RDB hit.
        ++stats_.preActivesSkipped;
        ++stats_.activatesSkipped;
        if (auto *t = trace::current()) {
            t->counter(trace::catCtrl, name_, "rdbHits", now,
                       double(stats_.activatesSkipped));
        }
        sub.ba = f.ba;
        mstate.rabBusyUntil[std::uint32_t(f.ba)] = maxTick;
        mstate.rabLastUse[std::uint32_t(f.ba)] = now;
        sub.phaseReadyAt =
            std::max(now, mod.rdbReadyAt(std::uint32_t(f.ba)));
        panic_if(sub.phaseReadyAt > now, "RDB hit on unready RDB");
    }

    phy_.sendCommand(now);
    pram::BurstTiming bt;
    if (op.isWrite) {
        bt = mod.writeBurst(std::uint32_t(sub.ba), op.column, op.len,
                            op.data.data());
    } else {
        bt = mod.readBurst(std::uint32_t(sub.ba), op.column, op.len,
                           sub.readInto);
    }
    phy_.reserveDq(bt.firstData, bt.lastData);
    if (auto *t = trace::current()) {
        t->complete(trace::catCtrl, name_,
                    op.isWrite ? "phase.write" : "phase.read", now,
                    bt.lastData);
    }
    mstate.rabBusyUntil[std::uint32_t(sub.ba)] = bt.lastData;
    mstate.rabLastUse[std::uint32_t(sub.ba)] = now;

    bool was_execute = op.isExecute;
    ++sub.opIdx;
    sub.ba = -1;
    sub.phase = Phase::preActive;
    sub.phaseReadyAt = now;

    if (sub.opIdx < sub.ops.size())
        return; // sequence continues

    // Sub-op fully issued: check device verify status (writes),
    // release resources, and record completion.
    if (sub.isWrite) {
        panic_if(!was_execute, "write sequence ended without execute");
        Tick durable = mod.lastProgramEnd();
        bool verify_failed = faults_ && mod.lastProgramVerifyFailed();
        if (verify_failed && sub.retries < relCfg_.maxProgramRetries) {
            // Program-and-verify re-pulse: the overlay-window
            // registers and program buffer still hold the operation,
            // so only the execute write is replayed after a status
            // poll. The sub-op keeps the OW sequence lock and stays
            // in flight.
            ++sub.retries;
            ++stats_.verifyRetries;
            --sub.opIdx;
            sub.phase = Phase::preActive;
            sub.phaseReadyAt = durable + relCfg_.verifyCost;
            if (auto *t = trace::current()) {
                t->instant(trace::catCtrl, name_, "verify.retry",
                           durable);
                t->counter(trace::catCtrl, name_, "verifyRetries",
                           durable, double(stats_.verifyRetries));
            }
            return;
        }
        if (verify_failed) {
            // Retries exhausted: the line is worn out. Demand writes
            // report the failure upward (the subsystem remaps the
            // line to a spare); a failed pre-RESET is harmless — the
            // word simply stays non-pristine.
            ++stats_.verifyFailedWrites;
            if (auto *t = trace::current()) {
                t->instant(trace::catCtrl, name_, "verify.exhausted",
                           durable);
            }
        }
        --mstate.inFlight;
        mstate.owSeqOwner = nullptr;
        mstate.lastCode = pram::ow::cmdBufferProgram;
        if (sub.isZeroFill) {
            if (verify_failed)
                ++stats_.zeroFillVerifyDrops;
            DPRINTF("Ctrl", "mod%u zero-fill word=%llu durable@%llu",
                    sub.module,
                    (unsigned long long)sub.moduleWord,
                    (unsigned long long)durable);
            ++stats_.zeroFillPrograms;
            auto &zq = mstate.zeroFills;
            for (auto it = zq.begin(); it != zq.end(); ++it) {
                if (it->get() == &sub) {
                    zq.erase(it);
                    break;
                }
            }
            return; // no request to complete; sub is now dangling
        }
        panic_if(mstate.queuedDemandWrites == 0,
                 "demand write counter underflow");
        --mstate.queuedDemandWrites;
        auto &seqs = mstate.pendingWrites[sub.moduleWord];
        seqs.erase(std::remove(seqs.begin(), seqs.end(), sub.seq),
                   seqs.end());
        if (seqs.empty())
            mstate.pendingWrites.erase(sub.moduleWord);
        finishSubOp(sub, durable, verify_failed);
    } else {
        --mstate.inFlight;
        finishSubOp(sub, bt.lastData);
    }

    // Remove the finished demand sub-op from its queue.
    auto &dq = mstate.demand;
    for (auto it = dq.begin(); it != dq.end(); ++it) {
        if (it->get() == &sub) {
            dq.erase(it);
            break;
        }
    }
}

ChannelController::Feasibility
ChannelController::evaluateGang(const SubOp &sub) const
{
    const Tick now = curTick();
    const MicroOp &op = sub.ops[sub.opIdx];
    const std::uint32_t M = sub.span;
    Feasibility f;

    // Writes serialize on every member's overlay-window registers.
    if (op.isWrite) {
        for (std::uint32_t m = 0; m < M; ++m) {
            const SubOp *owner = moduleStates_[m].owSeqOwner;
            if (owner != nullptr && owner != &sub)
                return f; // blocked on another sub-op's progress
        }
    }

    Phase phase = sub.phase;

    if (phase == Phase::preActive && config_.phaseSkipping) {
        // Broadcast phases must stay in lockstep, so a skip is taken
        // only when every member hits at the same level. Members
        // share their access history (the gang stream touches all of
        // them identically), so uniform hits are the common case.
        bool all_rab = true;
        bool all_rdb = true;
        for (std::uint32_t m = 0; m < M && all_rab; ++m) {
            const pram::PramModule &mod = *modules_[m];
            const ModuleState &ms = moduleStates_[m];
            bool rab = false;
            bool rdb = false;
            for (std::uint32_t b = 0;
                 b < geom_.numRowBuffers && !rdb; ++b) {
                if (!mod.rabValid(b) ||
                    mod.rabUpperRow(b) != op.upperRow ||
                    mod.rabPartition(b) != op.partition ||
                    ms.rabBusyUntil[b] > now) {
                    continue;
                }
                rab = true;
                if (mod.rdbValid(b) && mod.rdbRow(b) == op.row &&
                    mod.rdbPartition(b) == op.partition &&
                    mod.rdbReadyAt(b) <= now) {
                    rdb = true;
                }
            }
            all_rab = all_rab && rab;
            all_rdb = all_rdb && rdb;
        }
        if (all_rab && all_rdb)
            phase = Phase::readWrite;
        else if (all_rab)
            phase = Phase::activate;
    }

    if (phase == Phase::preActive) {
        Tick t = std::max({now, phy_.caFreeAt(), sub.phaseReadyAt});
        for (std::uint32_t m = 0; m < M; ++m) {
            const ModuleState &ms = moduleStates_[m];
            Tick rab_free = maxTick;
            for (std::uint32_t b = 0; b < geom_.numRowBuffers; ++b)
                rab_free = std::min(rab_free, ms.rabBusyUntil[b]);
            if (rab_free == maxTick)
                return f; // all claimed; unblocked by other sub-ops
            t = std::max(t, rab_free);
        }
        f.earliest = t;
        f.ba = -1;
        f.effectivePhase = Phase::preActive;
        return f;
    }

    if (phase == Phase::activate) {
        Tick t = std::max({now, phy_.caFreeAt(), sub.phaseReadyAt});
        if (!op.overlayRow) {
            for (std::uint32_t m = 0; m < M; ++m)
                t = std::max(
                    t, modules_[m]->partitionBusyUntil(op.partition));
        }
        f.earliest = t;
        f.ba = -1;
        f.effectivePhase = Phase::activate;
        return f;
    }

    // Read/write phase.
    Tick t = std::max({now, phy_.caFreeAt(), sub.phaseReadyAt});
    Tick preamble = op.isWrite ? modules_.front()->timing().writePreamble()
                               : modules_.front()->timing().readPreamble();
    Tick dq_free = phy_.dqFreeAt();
    Tick dq_ok = dq_free > preamble ? dq_free - preamble : 0;
    t = std::max(t, dq_ok);
    if (op.isExecute) {
        for (std::uint32_t m = 0; m < M; ++m) {
            if (!(sub.gangPending & (std::uint32_t(1) << m)))
                continue;
            t = std::max(t, modules_[m]->programSlotFreeAt());
            t = std::max(t, modules_[m]->partitionBusyUntil(
                                sub.targetPartition));
        }
    }
    f.earliest = t;
    f.ba = -1;
    f.effectivePhase = Phase::readWrite;
    return f;
}

void
ChannelController::issueGang(SubOp &sub, const Feasibility &f)
{
    const Tick now = curTick();
    MicroOp &op = sub.ops[sub.opIdx];
    const std::uint32_t M = sub.span;

    // CA commands broadcast per member back to back on the shared
    // bus: one sendCommand per member keeps command counts (and CA
    // energy) scaled by word count.
    auto chain_ca = [&](std::uint32_t n) {
        Tick t = now;
        for (std::uint32_t i = 0; i < n; ++i)
            t = phy_.sendCommand(t);
    };
    // The LRU free-RAB pick of the single path, per member.
    auto claim_free_rab = [&](std::uint32_t m) {
        ModuleState &ms = moduleStates_[m];
        int ba = -1;
        Tick oldest = maxTick;
        for (std::uint32_t b = 0; b < geom_.numRowBuffers; ++b) {
            if (ms.rabBusyUntil[b] > now)
                continue;
            if (ms.rabLastUse[b] < oldest) {
                oldest = ms.rabLastUse[b];
                ba = int(b);
            }
        }
        panic_if(ba < 0, "gang issue without a free RAB");
        ms.rabBusyUntil[std::uint32_t(ba)] = maxTick; // claimed
        ms.rabLastUse[std::uint32_t(ba)] = now;
        return ba;
    };
    // Re-derive the member's hitting RAB after a phase skip (state
    // cannot change between evaluate and issue inside one pass).
    auto claim_hit_rab = [&](std::uint32_t m) {
        const pram::PramModule &mod = *modules_[m];
        ModuleState &ms = moduleStates_[m];
        for (std::uint32_t b = 0; b < geom_.numRowBuffers; ++b) {
            if (mod.rabValid(b) && mod.rabUpperRow(b) == op.upperRow &&
                mod.rabPartition(b) == op.partition &&
                ms.rabBusyUntil[b] <= now) {
                ms.rabBusyUntil[b] = maxTick;
                ms.rabLastUse[b] = now;
                return int(b);
            }
        }
        panic("gang phase skip without a RAB hit");
        return -1; // unreachable
    };

    if (!sub.started) {
        sub.started = true;
        sub.gangBa.assign(M, -1);
        for (std::uint32_t m = 0; m < M; ++m)
            ++moduleStates_[m].inFlight;
    }
    if (op.isWrite) {
        for (std::uint32_t m = 0; m < M; ++m) {
            if (moduleStates_[m].owSeqOwner == nullptr)
                moduleStates_[m].owSeqOwner = &sub;
        }
    }

    switch (f.effectivePhase) {
      case Phase::preActive: {
        DPRINTF("Ctrl", "gang %s mword=%llu span=%u pre-active",
                sub.isWrite ? "wr" : "rd",
                (unsigned long long)sub.moduleWord, M);
        Tick ready = 0;
        for (std::uint32_t m = 0; m < M; ++m) {
            int ba = claim_free_rab(m);
            sub.gangBa[m] = ba;
            ready = std::max(
                ready, modules_[m]->preActive(std::uint32_t(ba),
                                              op.upperRow,
                                              op.partition));
        }
        chain_ca(M);
        sub.phaseReadyAt = ready;
        if (auto *t = trace::current()) {
            t->complete(trace::catCtrl, name_, "phase.preActive", now,
                        sub.phaseReadyAt);
        }
        sub.phase = Phase::activate;
        return;
      }
      case Phase::activate: {
        if (sub.phase == Phase::preActive) {
            // Every member skipped the pre-active on a RAB hit.
            stats_.preActivesSkipped += M;
            for (std::uint32_t m = 0; m < M; ++m)
                sub.gangBa[m] = claim_hit_rab(m);
        }
        Tick ready = 0;
        for (std::uint32_t m = 0; m < M; ++m) {
            ready = std::max(
                ready,
                modules_[m]->activate(std::uint32_t(sub.gangBa[m]),
                                      op.lowerRow));
        }
        chain_ca(M);
        sub.phaseReadyAt = ready;
        if (auto *t = trace::current()) {
            t->complete(trace::catCtrl, name_, "phase.activate", now,
                        sub.phaseReadyAt);
        }
        sub.phase = Phase::readWrite;
        return;
      }
      case Phase::readWrite:
        break;
    }

    if (sub.phase == Phase::preActive) {
        // Every member skipped both phases on a full RDB hit.
        stats_.preActivesSkipped += M;
        stats_.activatesSkipped += M;
        for (std::uint32_t m = 0; m < M; ++m)
            sub.gangBa[m] = claim_hit_rab(m);
        sub.phaseReadyAt = now;
    }

    // Data transfer: every member performs its own word's burst (so
    // per-word fault injection, wear and program-and-verify stay
    // intact) while the shared DQ bus serializes the beats — the
    // gang's occupancy is one burst window per member.
    bool was_execute = op.isExecute;
    std::uint32_t n_members = 0;
    Tick first_data = maxTick;
    Tick window = 0;
    for (std::uint32_t m = 0; m < M; ++m) {
        if (was_execute && !(sub.gangPending & (std::uint32_t(1) << m)))
            continue; // verified members skip the re-pulse
        pram::BurstTiming bt;
        if (op.isWrite) {
            const std::uint8_t *src =
                op.isPayload
                    ? sub.gangData.data() + std::size_t(m) *
                                                geom_.rowBufferBytes
                    : op.data.data();
            bt = modules_[m]->writeBurst(
                std::uint32_t(sub.gangBa[m]), op.column, op.len, src);
        } else {
            void *dst = sub.readInto == nullptr
                            ? nullptr
                            : static_cast<std::uint8_t *>(
                                  sub.readInto) +
                                  std::size_t(m) * geom_.rowBufferBytes;
            bt = modules_[m]->readBurst(std::uint32_t(sub.gangBa[m]),
                                        op.column, op.len, dst);
        }
        ++n_members;
        first_data = std::min(first_data, bt.firstData);
        window = std::max(window, bt.lastData - bt.firstData);
    }
    panic_if(n_members == 0, "gang data phase with no members");
    chain_ca(n_members);
    Tick serialized_end = first_data + Tick(n_members) * window;
    phy_.reserveDq(first_data, serialized_end);
    if (auto *t = trace::current()) {
        t->complete(trace::catCtrl, name_,
                    op.isWrite ? "phase.write" : "phase.read", now,
                    serialized_end);
    }
    for (std::uint32_t m = 0; m < M; ++m) {
        ModuleState &ms = moduleStates_[m];
        ms.rabBusyUntil[std::uint32_t(sub.gangBa[m])] = serialized_end;
        ms.rabLastUse[std::uint32_t(sub.gangBa[m])] = now;
    }

    ++sub.opIdx;
    std::fill(sub.gangBa.begin(), sub.gangBa.end(), -1);
    sub.phase = Phase::preActive;
    sub.phaseReadyAt = now;

    if (sub.opIdx < sub.ops.size())
        return; // sequence continues

    if (sub.isWrite) {
        panic_if(!was_execute, "write sequence ended without execute");
        // Per-member program-and-verify: each module rolled its own
        // fault decision; only failing members replay the execute.
        Tick durable = 0;
        std::uint32_t fail_mask = 0;
        for (std::uint32_t m = 0; m < M; ++m) {
            if (!(sub.gangPending & (std::uint32_t(1) << m)))
                continue;
            durable = std::max(durable,
                               modules_[m]->lastProgramEnd());
            if (faults_ && modules_[m]->lastProgramVerifyFailed())
                fail_mask |= std::uint32_t(1) << m;
        }
        std::uint32_t n_failed =
            std::uint32_t(__builtin_popcount(fail_mask));
        if (sub.isZeroFill) {
            // Pre-RESET programs drop on verify failure instead of
            // retrying — the word simply stays non-pristine — and
            // complete no request.
            stats_.zeroFillPrograms += M;
            stats_.zeroFillVerifyDrops += n_failed;
            DPRINTF("Ctrl",
                    "gang zero-fill mword=%llu span=%u durable@%llu",
                    (unsigned long long)sub.moduleWord, M,
                    (unsigned long long)durable);
            for (std::uint32_t m = 0; m < M; ++m) {
                ModuleState &ms = moduleStates_[m];
                --ms.inFlight;
                if (ms.owSeqOwner == &sub)
                    ms.owSeqOwner = nullptr;
                ms.lastCode = pram::ow::cmdBufferProgram;
            }
            for (auto it = gangZeroFills_.begin();
                 it != gangZeroFills_.end(); ++it) {
                if (it->get() == &sub) {
                    gangZeroFills_.erase(it);
                    break;
                }
            }
            return;
        }
        if (fail_mask != 0 &&
            sub.retries < relCfg_.maxProgramRetries) {
            ++sub.retries;
            stats_.verifyRetries += n_failed;
            sub.gangPending = fail_mask;
            --sub.opIdx;
            sub.phase = Phase::preActive;
            sub.phaseReadyAt = durable + relCfg_.verifyCost;
            if (auto *t = trace::current()) {
                t->instant(trace::catCtrl, name_, "verify.retry",
                           durable);
                t->counter(trace::catCtrl, name_, "verifyRetries",
                           durable, double(stats_.verifyRetries));
            }
            return;
        }
        int fail_module = -1;
        if (fail_mask != 0) {
            stats_.verifyFailedWrites += n_failed;
            fail_module = __builtin_ctz(fail_mask);
            if (auto *t = trace::current()) {
                t->instant(trace::catCtrl, name_, "verify.exhausted",
                           durable);
            }
        }
        for (std::uint32_t m = 0; m < M; ++m) {
            ModuleState &ms = moduleStates_[m];
            --ms.inFlight;
            if (ms.owSeqOwner == &sub)
                ms.owSeqOwner = nullptr;
            ms.lastCode = pram::ow::cmdBufferProgram;
            panic_if(ms.queuedDemandWrites == 0,
                     "demand write counter underflow");
            --ms.queuedDemandWrites;
            auto &seqs = ms.pendingWrites[sub.moduleWord];
            seqs.erase(
                std::remove(seqs.begin(), seqs.end(), sub.seq),
                seqs.end());
            if (seqs.empty())
                ms.pendingWrites.erase(sub.moduleWord);
        }
        finishSubOp(sub, durable, fail_mask != 0, fail_module);
    } else {
        for (std::uint32_t m = 0; m < M; ++m)
            --moduleStates_[m].inFlight;
        finishSubOp(sub, serialized_end);
    }

    for (auto it = gangs_.begin(); it != gangs_.end(); ++it) {
        if (it->get() == &sub) {
            gangs_.erase(it);
            break;
        }
    }
}

void
ChannelController::finishSubOp(const SubOp &sub, Tick when,
                               bool failed, int fail_module)
{
    auto it = requests_.find(sub.reqId);
    panic_if(it == requests_.end(), "sub-op of unknown request");
    RequestState &rstate = it->second;
    panic_if(rstate.remainingSubOps == 0, "request over-completed");
    rstate.latestCompletion = std::max(rstate.latestCompletion, when);
    if (failed && !rstate.failed) {
        std::uint32_t mod_idx = fail_module >= 0
                                    ? std::uint32_t(fail_module)
                                    : sub.module;
        rstate.failed = true;
        rstate.failedAddr =
            (sub.moduleWord * modules_.size() + mod_idx) *
            geom_.rowBufferBytes;
    }
    if (--rstate.remainingSubOps == 0)
        pushCompletion(rstate.latestCompletion, sub.reqId);
}

void
ChannelController::configureReliability(
    const reliability::ReliabilityConfig &cfg, std::uint64_t salt)
{
    relCfg_ = cfg;
    faults_.reset();
    if (!cfg.enabled)
        return;
    faults_.emplace(cfg);
    for (std::uint32_t m = 0; m < modules_.size(); ++m)
        modules_[m]->attachFaults(&*faults_, reliability::mix(salt, m));
}

void
ChannelController::pushCompletion(Tick when, std::uint64_t req_id)
{
    completions_[when].push_back(req_id);
    eventQueue().reschedule(&completionEvent_,
                            completions_.begin()->first);
}

void
ChannelController::completionTrigger()
{
    const Tick now = curTick();
    while (!completions_.empty() &&
           completions_.begin()->first <= now) {
        auto ids = std::move(completions_.begin()->second);
        completions_.erase(completions_.begin());
        for (std::uint64_t id : ids) {
            auto it = requests_.find(id);
            panic_if(it == requests_.end(), "completing unknown req");
            RequestState rstate = it->second;
            requests_.erase(it);
            double lat_ns = toNs(now - rstate.enqueuedAt);
            if (rstate.isWrite)
                stats_.writeLatencyNs.sample(lat_ns);
            else
                stats_.readLatencyNs.sample(lat_ns);
            if (auto *t = trace::current()) {
                t->complete(trace::catCtrl, name_,
                            rstate.isWrite ? "req.write" : "req.read",
                            rstate.enqueuedAt, now);
                t->counter(trace::catCtrl, name_, "demandQueueDepth",
                           now, double(queuedSubOps()));
            }
            if (callback_) {
                callback_(MemResponse{id, now, rstate.failed,
                                      rstate.failedAddr});
            }
        }
    }
    if (!completions_.empty()) {
        eventQueue().reschedule(&completionEvent_,
                                completions_.begin()->first);
    }
}

void
ChannelController::cancelUnstartedZeroFill(ModuleState &mstate,
                                           std::uint64_t mword)
{
    auto &zq = mstate.zeroFills;
    for (auto it = zq.begin(); it != zq.end(); ++it) {
        if (!(*it)->started && (*it)->moduleWord == mword) {
            zq.erase(it);
            ++stats_.zeroFillSkipped;
            return;
        }
    }
}

void
ChannelController::materializePrefetch(std::uint32_t m)
{
    ModuleState &mstate = moduleStates_[m];
    if (mstate.prefetch || !mstate.prefetchSeeded)
        return;
    std::uint64_t w = mstate.nextPrefetchWord;
    if (w >= usableWordsPerModule_ || w > mstate.prefetchLimit)
        return;
    pram::PramModule &mod = *modules_[m];
    // Skip words whose row is already resident or hazardous.
    if (mstate.pendingWrites.count(w))
        return;
    pram::DecomposedAddress d =
        mod.decomposer().decompose(w * geom_.rowBufferBytes);
    for (std::uint32_t b = 0; b < geom_.numRowBuffers; ++b) {
        if (mod.rdbValid(b) && mod.rdbRow(b) == d.row &&
            mod.rdbPartition(b) == d.partition) {
            return; // already warm
        }
    }
    auto sub = std::make_unique<SubOp>();
    sub->seq = nextSeq_++;
    sub->module = m;
    sub->isPrefetch = true;
    sub->moduleWord = w;
    sub->targetPartition = d.partition;
    sub->ops = translateRead(mod, w);
    mstate.prefetch = std::move(sub);
}

void
ChannelController::materializeZeroFill(std::uint32_t m)
{
    ModuleState &mstate = moduleStates_[m];
    pram::PramModule &mod = *modules_[m];
    while (!mstate.hints.empty() &&
           mstate.zeroFills.size() < geom_.programSlots) {
        auto &range = mstate.hints.front();
        if (range.first >= range.second) {
            mstate.hints.pop_front();
            continue;
        }
        std::uint64_t w = range.first++;
        if (mstate.doNotZeroFill.count(w) || mod.wordIsPristine(w)) {
            ++stats_.zeroFillSkipped;
            continue;
        }
        auto sub = std::make_unique<SubOp>();
        sub->seq = nextSeq_++;
        sub->reqId = 0;
        sub->module = m;
        sub->isWrite = true;
        sub->isZeroFill = true;
        sub->moduleWord = w;
        sub->targetPartition =
            mod.decomposer()
                .decompose(w * geom_.rowBufferBytes)
                .partition;
        std::array<std::uint8_t, 32> zeros{};
        sub->ops = translateWrite(mstate, mod, w, zeros.data());
        mstate.zeroFills.push_back(std::move(sub));
    }
}

void
ChannelController::materializeGangZeroFill()
{
    const std::uint32_t M = std::uint32_t(modules_.size());
    const std::uint32_t unit = geom_.rowBufferBytes;
    const std::uint32_t full =
        M >= 32 ? ~std::uint32_t(0) : (std::uint32_t(1) << M) - 1;
    // Each ganged zero-fill occupies one program slot on every
    // member, so the deque bound mirrors the per-module bound of the
    // singleton path.
    while (!gangHints_.empty() &&
           gangZeroFills_.size() < geom_.programSlots) {
        auto &range = gangHints_.front();
        if (range.first >= range.second) {
            gangHints_.pop_front();
            continue;
        }
        std::uint64_t w = range.first++;
        // Per-word decisions stay per word: each member checks its
        // own do-not-erase set and array state.
        std::uint32_t mask = 0;
        for (std::uint32_t m = 0; m < M; ++m) {
            if (moduleStates_[m].doNotZeroFill.count(w) ||
                modules_[m]->wordIsPristine(w)) {
                ++stats_.zeroFillSkipped;
            } else {
                mask |= std::uint32_t(1) << m;
            }
        }
        if (mask != full) {
            // Partial group: members still worth erasing go through
            // the singleton path.
            for (std::uint32_t m = 0; m < M; ++m)
                if (mask & (std::uint32_t(1) << m))
                    moduleStates_[m].hints.emplace_back(w, w + 1);
            continue;
        }
        auto sub = std::make_unique<SubOp>();
        sub->seq = nextSeq_++;
        sub->reqId = 0;
        sub->module = 0;
        sub->span = M;
        sub->isWrite = true;
        sub->isZeroFill = true;
        sub->moduleWord = w;
        sub->targetPartition = modules_.front()
                                   ->decomposer()
                                   .decompose(std::uint64_t(w) * unit)
                                   .partition;
        sub->gangData.assign(std::size_t(M) * unit, 0);
        sub->gangPending = full;
        sub->ops = translateGangWrite(*modules_.front(), w);
        ++stats_.gangSubOps;
        stats_.gangWords += M;
        gangZeroFills_.push_back(std::move(sub));
    }
}

void
ChannelController::cancelUnstartedGangZeroFill(std::uint64_t mword)
{
    for (auto it = gangZeroFills_.begin();
         it != gangZeroFills_.end();) {
        SubOp &zf = **it;
        if (zf.started || zf.moduleWord != mword) {
            ++it;
            continue;
        }
        // Members not covered by the canceling demand access may
        // still benefit; re-hint them for the singleton path.
        for (std::uint32_t m = 0; m < zf.span; ++m)
            if (!moduleStates_[m].doNotZeroFill.count(mword))
                moduleStates_[m].hints.emplace_back(mword, mword + 1);
        ++stats_.zeroFillSkipped;
        it = gangZeroFills_.erase(it);
    }
}

void
ChannelController::schedule()
{
    if (inSchedule_)
        return;
    inSchedule_ = true;
    const Tick now = curTick();

    bool progress = true;
    Tick next_wake = maxTick;
    // Scan start for each pass. In interleaved mode an issue on
    // module m resumes the next pass at m: feasibility of earlier
    // modules depends only on their own (unchanged) state and the
    // shared CA/DQ bus free times, which issuing can only push later,
    // so nothing before m becomes newly issuable. A pass that starts
    // past module 0 and stalls is followed by one full pass so
    // next_wake accounts for every module. Non-interleaved
    // scheduling always rescans from 0: the channel-wide FIFO head
    // may move to any module after an issue.
    std::uint32_t start = 0;
    std::uint32_t scan_end = std::uint32_t(modules_.size());
    while (progress) {
        progress = false;
        // A prefix-only merge pass (scan_end != size) keeps the
        // stalled pass's next_wake: together they cover every module
        // under unchanged bus state, so the merged minimum is exact.
        if (scan_end == modules_.size())
            next_wake = maxTick;

        // The noop (Bare-metal) scheduler services the request queue
        // strictly in order: only the globally oldest incomplete
        // demand sub-op on the channel may issue.
        std::uint64_t fifo_head = ~std::uint64_t(0);
        if (!config_.interleaving) {
            for (const ModuleState &ms : moduleStates_) {
                if (!ms.demand.empty()) {
                    fifo_head = std::min(fifo_head,
                                         ms.demand.front()->seq);
                }
            }
            if (!gangs_.empty())
                fifo_head =
                    std::min(fifo_head, gangs_.front()->seq);
        }

        // Cross-module gangs scan ahead of the per-module queues: a
        // gang issue touches every module, so progress restarts the
        // pass from module 0.
        std::uint32_t gscanned = 0;
        for (auto &gptr : gangs_) {
            SubOp &g = *gptr;
            if (!config_.interleaving && g.seq != fifo_head)
                break; // strict FIFO across the channel
            if (++gscanned > schedLookahead)
                break;
            if (!g.started) {
                bool rb_full = false;
                for (std::uint32_t gm = 0; gm < g.span; ++gm) {
                    if (moduleStates_[gm].inFlight >=
                        geom_.numRowBuffers) {
                        rb_full = true;
                        break;
                    }
                }
                if (rb_full)
                    continue;
                if (gangOrderBlocked(g))
                    continue;
            }
            Feasibility f = evaluateGang(g);
            if (f.earliest == maxTick)
                continue;
            if (f.earliest <= now) {
                issueGang(g, f); // may erase g from gangs_
                progress = true;
                break;
            }
            next_wake = std::min(next_wake, f.earliest);
        }

        // Ganged zero-fills follow the singleton yield discipline —
        // speculative erases give way to demand writes — but cover a
        // full channel-width group per sub-op. Like demand gangs,
        // progress touches every module and restarts the pass.
        if (config_.selectiveErasing && gangEnabled() && !progress) {
            bool demand_writes = false;
            for (const ModuleState &ms : moduleStates_) {
                if (ms.queuedDemandWrites != 0) {
                    demand_writes = true;
                    break;
                }
            }
            if (!demand_writes && gangs_.empty() &&
                !gangHints_.empty()) {
                materializeGangZeroFill();
            }
            for (auto &zfptr : gangZeroFills_) {
                SubOp &zf = *zfptr;
                if (!zf.started) {
                    if (demand_writes || !gangs_.empty())
                        continue;
                    bool rb_full = false;
                    for (std::uint32_t gm = 0; gm < zf.span; ++gm) {
                        if (moduleStates_[gm].inFlight >=
                            geom_.numRowBuffers) {
                            rb_full = true;
                            break;
                        }
                    }
                    if (rb_full)
                        continue;
                }
                Feasibility f = evaluateGang(zf);
                if (f.earliest == maxTick)
                    continue;
                if (f.earliest <= now) {
                    issueGang(zf, f); // may erase zf
                    progress = true;
                    break;
                }
                next_wake = std::min(next_wake, f.earliest);
            }
        }

        if (progress) {
            start = 0;
            scan_end = std::uint32_t(modules_.size());
            continue;
        }

        std::uint32_t m = start;
        for (; m < scan_end && !progress; ++m) {
            ModuleState &mstate = moduleStates_[m];
            pram::PramModule &mod = *modules_[m];

            std::uint32_t scanned = 0;
            for (auto &subptr : mstate.demand) {
                SubOp &sub = *subptr;
                if (!config_.interleaving && sub.seq != fifo_head)
                    break; // strict FIFO across the channel
                if (++scanned > schedLookahead)
                    break;
                if (!sub.started &&
                    mstate.inFlight >= geom_.numRowBuffers) {
                    continue; // row buffers exhausted
                }
                if (!sub.isWrite && readBlocked(mstate, sub))
                    continue;
                // Strict per-word write ordering: an unstarted write
                // waits for any older queued write to the same word
                // (gang or singleton) so the younger data lands last.
                if (sub.isWrite && !sub.started &&
                    readBlocked(mstate, sub)) {
                    continue;
                }
                Feasibility f = evaluate(mstate, mod, sub);
                if (f.earliest == maxTick)
                    continue;
                if (f.earliest <= now) {
                    issue(mstate, mod, sub, f);
                    progress = true;
                    break;
                }
                next_wake = std::min(next_wake, f.earliest);
            }
            if (progress)
                break;

            // Selective erasing: zero-fills yield to queued demand
            // writes (which they would race for the program slots)
            // but run alongside read traffic — the paper erases
            // "before completing the corresponding computation". An
            // already started sequence must run to completion: it
            // owns the overlay-window registers demand writes need.
            // Speculative RDB warming runs only on an idle module
            // and stops after the activate phase.
            if (config_.rdbPrefetch && mstate.demand.empty() &&
                gangs_.empty()) {
                materializePrefetch(m);
                if (mstate.prefetch) {
                    SubOp &pf = *mstate.prefetch;
                    Feasibility f = evaluate(mstate, mod, pf);
                    if (f.earliest != maxTick) {
                        if (f.earliest <= now) {
                            issue(mstate, mod, pf, f);
                            progress = true;
                            break;
                        }
                        next_wake = std::min(next_wake, f.earliest);
                    }
                }
            }

            if (config_.selectiveErasing) {
                if (mstate.queuedDemandWrites == 0 &&
                    !mstate.hints.empty())
                    materializeZeroFill(m);
                for (auto &zfptr : mstate.zeroFills) {
                    SubOp &zf = *zfptr;
                    if (!zf.started &&
                        mstate.queuedDemandWrites != 0)
                        continue;
                    Feasibility f = evaluate(mstate, mod, zf);
                    if (f.earliest == maxTick)
                        continue;
                    if (f.earliest <= now) {
                        issue(mstate, mod, zf, f);
                        progress = true;
                        break;
                    }
                    next_wake = std::min(next_wake, f.earliest);
                }
                if (progress)
                    break;
            }
        }

        if (progress) {
            start = config_.interleaving ? m : 0;
            scan_end = std::uint32_t(modules_.size());
        } else if (start != 0) {
            // Stalled mid-array: sweep just the skipped prefix to
            // fold the remaining modules into next_wake.
            scan_end = start;
            start = 0;
            progress = true;
        }
    }

    if (next_wake != maxTick) {
        panic_if(next_wake <= now, "scheduler wake in the past");
        eventQueue().reschedule(&schedulerEvent_, next_wake);
    }
    inSchedule_ = false;
}

} // namespace ctrl
} // namespace dramless
