/**
 * @file
 * Scheduler policy configurations of the PRAM subsystem (Section V-A,
 * Figure 13).
 */

#ifndef DRAMLESS_CTRL_SCHEDULER_HH
#define DRAMLESS_CTRL_SCHEDULER_HH

#include <cstdint>
#include <string>

namespace dramless
{
namespace ctrl
{

/**
 * Knobs of the hardware-automated memory scheduler. The four named
 * presets correspond to the four bars of Figure 13.
 */
struct SchedulerConfig
{
    /**
     * Multi-resource aware interleaving: overlap one request's
     * partition sense (tRCD) with another request's data burst, using
     * the multiple row buffers and partitions (Figure 12). When off,
     * requests are serviced strictly one at a time in FIFO order.
     */
    bool interleaving = true;

    /**
     * Selective erasing: opportunistically pre-RESET (program all-zero
     * words to) addresses hinted as future write targets so demand
     * overwrites need only the SET pulse train.
     */
    bool selectiveErasing = true;

    /**
     * Skip pre-active (RAB hit) and activate (RDB hit) phases when the
     * controller knows the target address already resides in a row
     * buffer (Section III-B). Part of the base hardware automation.
     */
    bool phaseSkipping = true;

    /** Maximum outstanding demand words queued per module. */
    std::uint32_t maxQueuePerModule = 64;

    /**
     * Sequential RDB prefetching (Section III-B: the server "tries
     * to prefetch data by using all RDBs across different banks"):
     * when a module is otherwise idle, speculatively pre-activate
     * and sense the next sequential row into a free RDB so the next
     * streaming demand read skips both addressing phases. Off by
     * default; see bench/ablation_geometry for its effect.
     */
    bool rdbPrefetch = false;

    /**
     * Gang full channel-width bursts: when a request covers every
     * module of the channel at the same module word (the natural
     * shape of a 512-byte channel piece), service the group as one
     * cross-module sub-op — one scheduling unit whose bus
     * serialization, program-and-verify and energy costs scale by
     * word count while fault decisions stay per word. Purely a
     * simulation-kernel batching knob; it does not change which
     * module operations are performed. Gangs overlap member array
     * operations, so they only engage when @ref interleaving grants
     * that overlap — without it words run strictly one at a time.
     */
    bool gangBursts = true;

    // The presets use designated initializers on purpose: positional
    // aggregate init silently mis-binds when a field is added or
    // reordered (it already skipped rdbPrefetch once).

    /** @return Figure 13 "Bare-metal": noop scheduler. */
    static SchedulerConfig
    bareMetal()
    {
        return SchedulerConfig{.interleaving = false,
                               .selectiveErasing = false,
                               .phaseSkipping = true,
                               .maxQueuePerModule = 64,
                               .rdbPrefetch = false,
                               .gangBursts = true};
    }

    /** @return Figure 13 "Interleaving". */
    static SchedulerConfig
    interleavingOnly()
    {
        return SchedulerConfig{.interleaving = true,
                               .selectiveErasing = false,
                               .phaseSkipping = true,
                               .maxQueuePerModule = 64,
                               .rdbPrefetch = false,
                               .gangBursts = true};
    }

    /** @return Figure 13 "selective-erasing". */
    static SchedulerConfig
    selectiveErasingOnly()
    {
        return SchedulerConfig{.interleaving = false,
                               .selectiveErasing = true,
                               .phaseSkipping = true,
                               .maxQueuePerModule = 64,
                               .rdbPrefetch = false,
                               .gangBursts = true};
    }

    /** @return Figure 13 "Final": both techniques (DRAM-less default). */
    static SchedulerConfig
    finalConfig()
    {
        return SchedulerConfig{.interleaving = true,
                               .selectiveErasing = true,
                               .phaseSkipping = true,
                               .maxQueuePerModule = 64,
                               .rdbPrefetch = false,
                               .gangBursts = true};
    }

    /** @return a short label for tables. */
    std::string
    label() const
    {
        if (interleaving && selectiveErasing)
            return "Final";
        if (interleaving)
            return "Interleaving";
        if (selectiveErasing)
            return "selective-erasing";
        return "Bare-metal";
    }
};

} // namespace ctrl
} // namespace dramless

#endif // DRAMLESS_CTRL_SCHEDULER_HH
