/**
 * @file
 * Start-Gap wear leveling (Qureshi et al., MICRO'09), the wear
 * leveller the paper names as integrable into the DRAM-less PRAM
 * controller (Section VII, "PRAM lifetime").
 *
 * N logical lines are spread over N+1 physical lines; one physical
 * line is a gap. Every @c gapMovePeriod writes the gap moves one
 * position (copying its neighbour), slowly rotating the whole address
 * space and spreading write wear uniformly.
 */

#ifndef DRAMLESS_CTRL_START_GAP_HH
#define DRAMLESS_CTRL_START_GAP_HH

#include <cstdint>

#include "sim/logging.hh"

namespace dramless
{
namespace ctrl
{

/** Address rotation state of the Start-Gap scheme. */
class StartGapMapper
{
  public:
    /**
     * @param num_lines number of logical lines (N)
     * @param gap_move_period gap moves once per this many writes
     */
    StartGapMapper(std::uint64_t num_lines,
                   std::uint64_t gap_move_period = 100)
        : numLines_(num_lines),
          gapMovePeriod_(gap_move_period),
          gapPos_(num_lines)
    {
        fatal_if(num_lines == 0, "start-gap needs at least one line");
        fatal_if(gap_move_period == 0,
                 "start-gap period must be positive");
    }

    /** @return number of logical lines. */
    std::uint64_t numLines() const { return numLines_; }

    /** @return number of physical lines (logical + the gap). */
    std::uint64_t numPhysicalLines() const { return numLines_ + 1; }

    /** Map logical line @p la to its current physical line. */
    std::uint64_t
    map(std::uint64_t la) const
    {
        panic_if(la >= numLines_, "logical line out of range");
        std::uint64_t pa = la + start_;
        if (pa >= numLines_)
            pa -= numLines_;
        if (pa >= gapPos_)
            ++pa;
        return pa;
    }

    /**
     * Record one write. When the period elapses the gap moves.
     * @return true when a gap move occurred; the caller must then copy
     * physical line movedFrom() to movedTo().
     */
    bool
    recordWrite()
    {
        ++writeCount_;
        if (writeCount_ % gapMovePeriod_ != 0)
            return false;
        moveGap();
        return true;
    }

    /** Physical source line of the most recent gap move. */
    std::uint64_t movedFrom() const { return movedFrom_; }
    /** Physical destination line of the most recent gap move. */
    std::uint64_t movedTo() const { return movedTo_; }

    /** @return demand writes recorded via recordWrite(). */
    std::uint64_t writeCount() const { return writeCount_; }
    /** @return total gap movements performed. */
    std::uint64_t gapMoves() const { return gapMoves_; }

    /**
     * @return PRAM writes performed by gap-move copies themselves.
     * Each move writes one physical line; these do not feed the
     * gap-move period (a move never triggers another move) but they
     * do wear the media and must show up in write accounting.
     */
    std::uint64_t gapMoveWrites() const { return gapMoves_; }

    /** @return all PRAM line writes: demand plus gap-move copies. */
    std::uint64_t
    totalLineWrites() const
    {
        return writeCount_ + gapMoveWrites();
    }

  private:
    void
    moveGap()
    {
        // The gap absorbs its lower neighbour's content, freeing that
        // neighbour to become the new gap.
        movedTo_ = gapPos_;
        if (gapPos_ == 0) {
            // Wrap: the gap jumps to the top and Start advances,
            // rotating the logical->physical mapping by one line.
            movedFrom_ = numLines_;
            gapPos_ = numLines_;
            start_ = start_ + 1 == numLines_ ? 0 : start_ + 1;
        } else {
            movedFrom_ = gapPos_ - 1;
            --gapPos_;
        }
        ++gapMoves_;
    }

    std::uint64_t numLines_;
    std::uint64_t gapMovePeriod_;
    std::uint64_t start_ = 0;
    std::uint64_t gapPos_;
    std::uint64_t writeCount_ = 0;
    std::uint64_t gapMoves_ = 0;
    std::uint64_t movedFrom_ = 0;
    std::uint64_t movedTo_ = 0;
};

} // namespace ctrl
} // namespace dramless

#endif // DRAMLESS_CTRL_START_GAP_HH
