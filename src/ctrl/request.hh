/**
 * @file
 * Memory request/response types exchanged between the accelerator's
 * MCU and the PRAM subsystem controllers.
 */

#ifndef DRAMLESS_CTRL_REQUEST_HH
#define DRAMLESS_CTRL_REQUEST_HH

#include <cstdint>
#include <functional>

#include "sim/ticks.hh"

namespace dramless
{
namespace ctrl
{

/** Direction of a memory request. */
enum class ReqKind
{
    read,
    write,
};

/** A memory request as seen by the PRAM subsystem. */
struct MemRequest
{
    ReqKind kind = ReqKind::read;
    /** Byte address in the subsystem's flat address space. */
    std::uint64_t addr = 0;
    /** Size in bytes (multiple of the 32 B access unit). */
    std::uint32_t size = 0;
    /** Optional functional read destination / write source. */
    void *readInto = nullptr;
    const void *writeFrom = nullptr;

    /** @return burst length in @p unit byte words (the controller's
     *  32 B access unit): the request covers this many words. */
    std::uint32_t
    burstWords(std::uint32_t unit) const
    {
        return unit == 0 ? 0 : size / unit;
    }
};

/** Completion notice for a MemRequest. */
struct MemResponse
{
    /** Identifier returned at enqueue time. */
    std::uint64_t id = 0;
    /** Tick the last byte of the request completed. */
    Tick completedAt = 0;
    /**
     * A write word exhausted its program-and-verify retries (only
     * with fault injection enabled). The subsystem reacts by
     * remapping the failed line to a spare and re-issuing.
     */
    bool failed = false;
    /** Channel-local byte address of the first failed word. */
    std::uint64_t failedAddr = 0;
};

/** Completion callback signature. */
using CompletionCallback = std::function<void(const MemResponse &)>;

} // namespace ctrl
} // namespace dramless

#endif // DRAMLESS_CTRL_REQUEST_HH
