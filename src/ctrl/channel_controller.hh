/**
 * @file
 * FPGA-based PRAM channel controller (Sections III-B, V).
 *
 * One controller drives one LPDDR2-NVM channel of up to 16 PRAM
 * modules sharing a CA bus and a 16-bit DQ bus (Figure 14). It
 * contains the paper's translator (expanding memory requests into
 * overlay-window register sequences), the command generator (three-
 * phase addressing with phase skipping on RAB/RDB hits), and the two
 * proposed schedulers: multi-resource aware interleaving and
 * selective erasing.
 *
 * Address map: 32-byte words are interleaved across the channel's
 * modules (word w lives in module w mod M), matching the server's
 * "512 bytes per channel, 32 bytes per bank" request shape.
 */

#ifndef DRAMLESS_CTRL_CHANNEL_CONTROLLER_HH
#define DRAMLESS_CTRL_CHANNEL_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ctrl/phy.hh"
#include "ctrl/request.hh"
#include "ctrl/scheduler.hh"
#include "pram/pram_module.hh"
#include "reliability/fault_model.hh"
#include "sim/clocked.hh"
#include "sim/stats.hh"

namespace dramless
{
namespace ctrl
{

/** Aggregate controller statistics. */
struct ControllerStats
{
    std::uint64_t readRequests = 0;
    std::uint64_t writeRequests = 0;
    std::uint64_t readWords = 0;
    std::uint64_t writeWords = 0;
    std::uint64_t preActivesSkipped = 0;
    std::uint64_t activatesSkipped = 0;
    std::uint64_t zeroFillPrograms = 0;
    std::uint64_t zeroFillSkipped = 0;
    /** Speculative row activations issued by the RDB prefetcher. */
    std::uint64_t prefetchActivates = 0;
    /** Cross-module gang sub-ops serviced (burst batching). */
    std::uint64_t gangSubOps = 0;
    /** Words carried by gang sub-ops. */
    std::uint64_t gangWords = 0;
    /** Program-and-verify re-pulses after a failed verify. */
    std::uint64_t verifyRetries = 0;
    /** Demand writes that exhausted every verify retry. */
    std::uint64_t verifyFailedWrites = 0;
    /** Zero-fill programs dropped after exhausting retries. */
    std::uint64_t zeroFillVerifyDrops = 0;
    stats::Average readLatencyNs{"readLatencyNs",
                                 "request read latency"};
    stats::Average writeLatencyNs{"writeLatencyNs",
                                  "request write latency (to durable)"};
};

/**
 * Hardware-automated controller for one PRAM channel.
 *
 * Requests complete asynchronously: reads when the last data beat
 * leaves the DQ pins, writes when the cell program finishes. The
 * completion callback runs from a scheduled event at the completion
 * tick.
 */
class ChannelController : public Clocked
{
  public:
    /**
     * @param eq event queue
     * @param num_modules PRAM modules on this channel (Table II: 16)
     * @param geom module geometry
     * @param timing module timing
     * @param config scheduler policy preset
     * @param name diagnostic name
     * @param functional keep functional backing stores
     */
    ChannelController(EventQueue &eq, std::uint32_t num_modules,
                      const pram::PramGeometry &geom,
                      const pram::PramTiming &timing,
                      const SchedulerConfig &config, std::string name,
                      bool functional = true);

    /** Register the completion callback. */
    void setCallback(CompletionCallback cb) { callback_ = std::move(cb); }

    /**
     * Enable fault injection: attaches a FaultModel to every module
     * (salted per module) and arms the program-and-verify retry path.
     * Call before any traffic; a disabled config detaches everything.
     */
    void configureReliability(const reliability::ReliabilityConfig &cfg,
                              std::uint64_t salt);

    /** @return usable capacity in bytes (overlay windows excluded). */
    std::uint64_t capacity() const;

    /** @return true when the request would currently be admitted. */
    bool canAccept(const MemRequest &req) const;

    /**
     * Admit a request. @p req.addr and @p req.size must be multiples
     * of the 32-byte access unit and within capacity.
     * @return the request id reported back on completion.
     */
    std::uint64_t enqueue(const MemRequest &req);

    /**
     * Selective-erasing hint: the byte range [addr, addr+size) will be
     * overwritten soon. The controller pre-RESETs (all-zero programs)
     * the covered words when the affected modules are otherwise idle.
     */
    void hintFutureWrite(std::uint64_t addr, std::uint64_t size);

    /** @return true when no demand work is queued or in flight. */
    bool idle() const;

    /** @return number of incomplete demand requests. */
    std::size_t pendingRequests() const { return requests_.size(); }

    /** @return demand sub-ops queued across every module. */
    std::size_t queuedSubOps() const;

    /** Functional (untimed) write across the channel address space. */
    void functionalWrite(std::uint64_t addr, const void *src,
                         std::uint64_t len);
    /** Functional (untimed) read across the channel address space. */
    void functionalRead(std::uint64_t addr, void *dst,
                        std::uint64_t len) const;

    /** @return module @p i (for inspection in tests/benches). */
    pram::PramModule &module(std::uint32_t i) { return *modules_.at(i); }
    const pram::PramModule &module(std::uint32_t i) const
    {
        return *modules_.at(i);
    }
    /** @return number of modules on the channel. */
    std::uint32_t numModules() const
    {
        return std::uint32_t(modules_.size());
    }

    /** @return the channel PHY (bus occupancy/energy counters). */
    const PramPhy &phy() const { return phy_; }

    /** @return controller statistics. */
    const ControllerStats &ctrlStats() const { return stats_; }

    /** @return the active scheduler configuration. */
    const SchedulerConfig &config() const { return config_; }

    const std::string &name() const { return name_; }

  private:
    /** Micro-operation: one three-phase access to one module row. */
    struct MicroOp
    {
        std::uint32_t partition = 0;
        std::uint64_t row = 0;
        std::uint64_t upperRow = 0;
        std::uint64_t lowerRow = 0;
        std::uint32_t column = 0;
        std::uint32_t len = 0;
        bool isWrite = false;
        /** Row resolves inside the overlay window. */
        bool overlayRow = false;
        /** Write of the execute register: launches the program. */
        bool isExecute = false;
        /** Program-buffer payload op of a gang write: the data comes
         *  from the gang's per-member slices, not @c data. */
        bool isPayload = false;
        std::array<std::uint8_t, 32> data{};
    };

    /** Addressing phase of the in-progress micro-op. */
    enum class Phase
    {
        preActive,
        activate,
        readWrite,
    };

    /** One 32-byte word access expanded by the translator. */
    struct SubOp
    {
        std::uint64_t seq = 0;
        std::uint64_t reqId = 0;
        std::uint32_t module = 0;
        bool isWrite = false;
        bool isZeroFill = false;
        /** Word index local to the module. */
        std::uint64_t moduleWord = 0;
        /** Speculative RDB-warm sub-op (stops after activate). */
        bool isPrefetch = false;
        /** Partition the demand word lives in (program target). */
        std::uint32_t targetPartition = 0;
        std::vector<MicroOp> ops;
        std::uint32_t opIdx = 0;
        Phase phase = Phase::preActive;
        int ba = -1;
        /** Earliest tick the current phase may issue. */
        Tick phaseReadyAt = 0;
        bool started = false;
        /** Destination for functional read data (gangs: member 0's
         *  slice; member m reads into readInto + m * 32). */
        void *readInto = nullptr;
        /** Program-and-verify re-pulses consumed so far (gangs: one
         *  per re-pulse round; stats count per failing word). */
        std::uint32_t retries = 0;

        /** @name Gang state (cross-module burst sub-ops) @{ */
        /** Modules covered, starting at module 0 (1 = single). */
        std::uint32_t span = 1;
        /** Per-member RAB claims while a phase is in flight. */
        std::vector<int> gangBa;
        /** Members whose program has not yet verified (bitmask;
         *  verify re-pulses replay only these). */
        std::uint32_t gangPending = 0;
        /** Per-member 32 B payload slices for gang writes. */
        std::vector<std::uint8_t> gangData;
        /** @} */

        bool isGang() const { return span > 1; }
    };

    /** Demand request bookkeeping. */
    struct RequestState
    {
        std::uint32_t remainingSubOps = 0;
        bool isWrite = false;
        Tick enqueuedAt = 0;
        Tick latestCompletion = 0;
        /** A word of this request exhausted its verify retries. */
        bool failed = false;
        /** Channel-local byte address of the first failed word. */
        std::uint64_t failedAddr = 0;
    };

    /** Per-module scheduler state (move-only: owns sub-ops). */
    struct ModuleState
    {
        ModuleState() = default;
        ModuleState(ModuleState &&) = default;
        ModuleState &operator=(ModuleState &&) = default;
        ModuleState(const ModuleState &) = delete;
        ModuleState &operator=(const ModuleState &) = delete;

        std::deque<std::unique_ptr<SubOp>> demand;
        /** Materialized zero-fill sub-ops (bounded by the module's
         *  program slots). */
        std::deque<std::unique_ptr<SubOp>> zeroFills;
        /** Hinted future-write word ranges, oldest first. */
        std::deque<std::pair<std::uint64_t, std::uint64_t>> hints;
        /** Words touched by demand traffic since hinting; zero-filling
         *  them could destroy live data, so they are never erased. */
        std::unordered_set<std::uint64_t> doNotZeroFill;
        /** word -> seqs of queued demand writes (read hazard). */
        std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>
            pendingWrites;
        /** Sub-op owning the overlay-window register sequence. */
        const SubOp *owSeqOwner = nullptr;
        /** Demand write sub-ops currently queued (zero-fills yield
         *  to them but may run alongside reads). */
        std::uint32_t queuedDemandWrites = 0;
        /** Last value written to the OW code register (skip rewrites). */
        std::uint32_t lastCode = 0;
        /** RAB claims: tick each RAB is released by its user. */
        std::vector<Tick> rabBusyUntil;
        std::vector<Tick> rabLastUse;
        /** Started-but-unfinished sub-ops (row-buffer bound). */
        std::uint32_t inFlight = 0;
        /** Next sequential module word a prefetch would warm. */
        std::uint64_t nextPrefetchWord = 0;
        /** Highest word the prefetcher may run ahead to (a few
         *  rows past the last demand read; RDB capacity bounds the
         *  useful depth anyway). */
        std::uint64_t prefetchLimit = 0;
        /** Whether a demand read has seeded the prefetcher. */
        bool prefetchSeeded = false;
        /** In-flight speculative sub-op (at most one). */
        std::unique_ptr<SubOp> prefetch;
    };

    /** Outcome of a single scheduling attempt. */
    struct Feasibility
    {
        /** Earliest tick the next action could issue (maxTick when
         *  blocked on another sub-op's progress). */
        Tick earliest = maxTick;
        /** RAB to use (for phase decisions). */
        int ba = -1;
        /** Phases to skip before acting. */
        Phase effectivePhase = Phase::preActive;
    };

    /** Split (channel word) -> (module, module word). */
    std::uint32_t moduleOfWord(std::uint64_t word) const
    {
        return std::uint32_t(word % modules_.size());
    }
    std::uint64_t moduleWordOf(std::uint64_t word) const
    {
        return word / modules_.size();
    }

    /** Translator: expand a read word access. */
    std::vector<MicroOp> translateRead(const pram::PramModule &mod,
                                       std::uint64_t module_word) const;
    /** Translator: expand an overlay-window program sequence. */
    std::vector<MicroOp> translateWrite(ModuleState &mstate,
                                        const pram::PramModule &mod,
                                        std::uint64_t module_word,
                                        const std::uint8_t *data) const;

    /** Build one micro-op targeting overlay offset @p ow_offset. */
    MicroOp owWriteOp(const pram::PramModule &mod,
                      std::uint32_t ow_offset, const void *data,
                      std::uint32_t len) const;

    /** Evaluate when @p sub's next action could issue. */
    Feasibility evaluate(const ModuleState &mstate,
                         const pram::PramModule &mod,
                         const SubOp &sub) const;

    /** Issue @p sub's next action now. */
    void issue(ModuleState &mstate, pram::PramModule &mod, SubOp &sub,
               const Feasibility &f);

    /** Build and queue one gang sub-op of request @p id covering
     *  module word @p mword on every module; @p word_off is the
     *  group's word offset inside the request (data/readInto
     *  slicing). */
    void enqueueGang(const MemRequest &req, const RequestState &rstate,
                     std::uint64_t id, std::uint64_t mword,
                     std::uint32_t word_off);

    /** Translator: expand a gang program sequence (code register
     *  rewritten when any member needs it; the payload op pulls from
     *  the gang's per-member slices). */
    std::vector<MicroOp> translateGangWrite(
        const pram::PramModule &mod, std::uint64_t module_word) const;

    /** Evaluate when gang @p sub's next broadcast action could
     *  issue (all members must be able to act together). */
    Feasibility evaluateGang(const SubOp &sub) const;

    /** Issue gang @p sub's next broadcast action now. Completion
     *  removes the gang from the queue. */
    void issueGang(SubOp &sub, const Feasibility &f);

    /** @return true when any member of gang @p sub has an older
     *  queued write to its word (read-after-write hazard for reads,
     *  strict per-word write ordering for writes). */
    bool gangOrderBlocked(const SubOp &sub) const;

    /** Run the scheduler until no action can issue at curTick. */
    void schedule();

    /** Materialize zero-fill sub-ops for module @p m up to the
     *  program-slot bound. */
    void materializeZeroFill(std::uint32_t m);

    /** Drop a not-yet-started zero-fill of @p mword, if queued. */
    void cancelUnstartedZeroFill(ModuleState &mstate,
                                 std::uint64_t mword);

    /** @return true when cross-module gangs may form (the gang
     *  timing model needs the interleaving overlap). */
    bool
    gangEnabled() const
    {
        return config_.gangBursts && config_.interleaving &&
               modules_.size() > 1;
    }

    /** Split hint channel words [@p first, @p last] (inclusive) into
     *  the per-module hint queues. */
    void hintWords(std::uint64_t first, std::uint64_t last);

    /** Materialize ganged zero-fill sub-ops from the channel-level
     *  hint queue up to the program-slot bound. Groups whose members
     *  no longer all need erasing fall back to singleton hints. */
    void materializeGangZeroFill();

    /** Drop not-yet-started ganged zero-fills of @p mword; members
     *  still worth erasing are re-hinted as singletons. */
    void cancelUnstartedGangZeroFill(std::uint64_t mword);

    /** Materialize a speculative RDB-warming sub-op for module
     *  @p m when the prefetcher is enabled and idle. */
    void materializePrefetch(std::uint32_t m);

    /** Record that sub-op @p sub finishes at @p when; @p failed marks
     *  a write whose program exhausted every verify retry.
     *  @p fail_module names the failing member for gangs (< 0: use
     *  sub.module). */
    void finishSubOp(const SubOp &sub, Tick when, bool failed = false,
                     int fail_module = -1);

    /** Completion event machinery. */
    void completionTrigger();
    void pushCompletion(Tick when, std::uint64_t req_id);

    /** @return true when a read of @p word must wait for an older
     *  queued write. */
    bool readBlocked(const ModuleState &mstate, const SubOp &sub) const;

    SchedulerConfig config_;
    std::string name_;
    pram::PramGeometry geom_;
    PramPhy phy_;
    std::vector<std::unique_ptr<pram::PramModule>> modules_;
    std::vector<ModuleState> moduleStates_;
    /** Cross-module gang sub-ops (full channel-width bursts), in
     *  arrival order. Per-module ordering against the demand queues
     *  is enforced through pendingWrites / readBlocked, as between
     *  the per-module queues themselves. */
    std::deque<std::unique_ptr<SubOp>> gangs_;
    /** Hinted module-word ranges awaiting ganged zero-fill: every
     *  member of such a group was hinted as a future write target. */
    std::deque<std::pair<std::uint64_t, std::uint64_t>> gangHints_;
    /** Materialized ganged zero-fill sub-ops (speculative; yield to
     *  demand traffic exactly like the singleton zero-fills). */
    std::deque<std::unique_ptr<SubOp>> gangZeroFills_;
    std::unordered_map<std::uint64_t, RequestState> requests_;
    std::map<Tick, std::vector<std::uint64_t>> completions_;
    CompletionCallback callback_;
    std::uint64_t nextReqId_ = 1;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t usableWordsPerModule_ = 0;
    ControllerStats stats_;
    MemberEvent<ChannelController, &ChannelController::schedule>
        schedulerEvent_;
    MemberEvent<ChannelController,
                &ChannelController::completionTrigger>
        completionEvent_;
    bool inSchedule_ = false;
    /** Reliability knobs; faults_ engaged only when enabled. */
    reliability::ReliabilityConfig relCfg_;
    std::optional<reliability::FaultModel> faults_;
};

} // namespace ctrl
} // namespace dramless

#endif // DRAMLESS_CTRL_CHANNEL_CONTROLLER_HH
