/**
 * @file
 * 400 MHz PRAM physical layer (Section III-B, Figure 9a).
 *
 * Models the shared per-channel command/address (CA) bus carrying
 * 20-bit DDR signal packets and the shared 16-bit DQ bus. Since the
 * Xilinx memory interface generator does not support PRAM, the paper
 * implements this layer from scratch on the 28 nm FPGA; here it is a
 * resource-occupancy model.
 */

#ifndef DRAMLESS_CTRL_PHY_HH
#define DRAMLESS_CTRL_PHY_HH

#include <cstdint>

#include "sim/clocked.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace ctrl
{

/** Per-channel CA/DQ bus occupancy model. */
class PramPhy : public Clocked
{
  public:
    /**
     * @param eq event queue
     * @param period_ticks interface clock period (2.5 ns at 400 MHz)
     */
    PramPhy(EventQueue &eq, Tick period_ticks)
        : Clocked(eq, period_ticks)
    {}

    /** @return tick from which the CA bus is free. */
    Tick caFreeAt() const { return caFreeAt_; }
    /** @return tick from which the DQ bus is free. */
    Tick dqFreeAt() const { return dqFreeAt_; }

    /** @return true when a command packet can be launched at @p t. */
    bool caAvailable(Tick t) const { return caFreeAt_ <= t; }

    /**
     * Occupy the CA bus for one command packet starting at @p t.
     * @return tick the packet completes.
     */
    Tick
    sendCommand(Tick t)
    {
        caFreeAt_ = t + clockPeriod();
        ++numCommands_;
        return caFreeAt_;
    }

    /** @return true when the DQ bus is free for [@p from, @p to). */
    bool
    dqAvailable(Tick from) const
    {
        return dqFreeAt_ <= from;
    }

    /** Occupy the DQ bus for a burst spanning [@p from, @p to). */
    void
    reserveDq(Tick from, Tick to)
    {
        panic_if(dqFreeAt_ > from, "DQ bus double-booked");
        panic_if(to < from, "negative DQ reservation");
        dqFreeAt_ = to;
        dqBusyTicks_ += to - from;
        ++numBursts_;
    }

    /** Total command packets sent (for energy accounting). */
    std::uint64_t numCommands() const { return numCommands_; }
    /** Total data bursts transferred. */
    std::uint64_t numBursts() const { return numBursts_; }
    /** Aggregate ticks the DQ bus was driven. */
    Tick dqBusyTicks() const { return dqBusyTicks_; }

  private:
    Tick caFreeAt_ = 0;
    Tick dqFreeAt_ = 0;
    Tick dqBusyTicks_ = 0;
    std::uint64_t numCommands_ = 0;
    std::uint64_t numBursts_ = 0;
};

} // namespace ctrl
} // namespace dramless

#endif // DRAMLESS_CTRL_PHY_HH
