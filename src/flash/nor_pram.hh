/**
 * @file
 * 9x nm parallel PRAM with a serial-peripheral NOR flash interface
 * (Numonyx P8P; Table I "NOR-intf").
 *
 * Byte-addressable like the 3x nm part, but all transfers serialize
 * over one 16-bit synchronous burst interface. The P8P's four
 * address-range partitions support read-while-write: buffered word
 * programs run in the background of one partition while the bus
 * keeps serving reads from the others. Programs remain glacial
 * (~120 us per buffered 512-byte region, no bank parallelism worth
 * mentioning), which is why the paper finds its writes 10x slower
 * than the 3x nm PRAM and its write bandwidth orders of magnitude
 * behind flash page programming.
 */

#ifndef DRAMLESS_FLASH_NOR_PRAM_HH
#define DRAMLESS_FLASH_NOR_PRAM_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace flash
{

/** NOR-interface PRAM parameters. */
struct NorPramConfig
{
    /** Random access setup time per burst. */
    Tick accessSetup = fromNs(85);
    /** Bus cycle per 16-bit word (synchronous burst, ~166 MHz). */
    Tick busCyclePerWord = fromNs(6);
    /**
     * Program time per 32 bytes through the buffered-program path
     * (~120 us per 512-byte region when streaming).
     */
    Tick programPer32B = fromNs(7500);
    /** Address-range partitions supporting read-while-write. */
    std::uint32_t partitions = 4;
    /** Device capacity. */
    std::uint64_t capacityBytes = 4ull << 30;
};

/** Operation counters. */
struct NorPramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    Tick busyTicks = 0;
};

/**
 * The device: one bus (all transfers serialize) plus per-partition
 * program engines running behind the bus (read-while-write).
 */
class NorPram
{
  public:
    NorPram(EventQueue &eq, const NorPramConfig &config,
            std::string name)
        : eventq_(eq), config_(config), name_(std::move(name))
    {
        fatal_if(config.partitions == 0 ||
                     config.partitions > programEnd_.size(),
                 "%s: unsupported partition count", name_.c_str());
    }

    /** @return capacity in bytes. */
    std::uint64_t capacity() const { return config_.capacityBytes; }

    /**
     * Read @p size bytes at @p addr starting no earlier than
     * @p earliest. Reads need the bus and, thanks to
     * read-while-write, wait only for a program in their own
     * partition. @return completion tick.
     */
    Tick
    read(std::uint64_t addr, std::uint32_t size, Tick earliest = 0)
    {
        checkRange(addr, size);
        Tick start = std::max({eventq_.curTick(), earliest,
                               busFreeAt_,
                               programEnd_[partitionOf(addr)]});
        std::uint64_t words = (size + 1) / 2;
        Tick done = start + config_.accessSetup +
                    words * config_.busCyclePerWord;
        stats_.busyTicks += done - start;
        busFreeAt_ = done;
        ++stats_.reads;
        stats_.bytesRead += size;
        return done;
    }

    /**
     * Program @p size bytes at @p addr: the bus carries the words
     * into the partition's program buffer, then the program runs in
     * the background of that partition (read-while-write).
     * @return tick the program completes (durable).
     */
    Tick
    write(std::uint64_t addr, std::uint32_t size, Tick earliest = 0)
    {
        checkRange(addr, size);
        std::uint32_t part = partitionOf(addr);
        // The partition's previous program must finish before its
        // buffer accepts the next one.
        Tick start = std::max({eventq_.curTick(), earliest,
                               busFreeAt_, programEnd_[part]});
        std::uint64_t words = (size + 1) / 2;
        Tick xferred = start + config_.accessSetup +
                       words * config_.busCyclePerWord;
        busFreeAt_ = xferred; // the bus frees once words are in
        std::uint64_t regions = (size + 31) / 32;
        Tick done = xferred + regions * config_.programPer32B;
        programEnd_[part] = done;
        stats_.busyTicks += done - start;
        ++stats_.writes;
        stats_.bytesWritten += size;
        return done;
    }

    /** @return tick the bus becomes free. */
    Tick busyUntil() const { return busFreeAt_; }

    const NorPramStats &norStats() const { return stats_; }
    const NorPramConfig &config() const { return config_; }

  private:
    std::uint32_t
    partitionOf(std::uint64_t addr) const
    {
        return std::uint32_t(addr /
                             (config_.capacityBytes /
                              config_.partitions));
    }

    void
    checkRange(std::uint64_t addr, std::uint32_t size) const
    {
        panic_if(addr + size > config_.capacityBytes,
                 "%s: access beyond capacity", name_.c_str());
        panic_if(size == 0, "%s: empty access", name_.c_str());
    }

    EventQueue &eventq_;
    NorPramConfig config_;
    std::string name_;
    Tick busFreeAt_ = 0;
    std::array<Tick, 8> programEnd_{};
    NorPramStats stats_;
};

} // namespace flash
} // namespace dramless

#endif // DRAMLESS_FLASH_NOR_PRAM_HH
