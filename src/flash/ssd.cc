#include "flash/ssd.hh"

#include <algorithm>

#include "sim/trace.hh"

namespace dramless
{
namespace flash
{

SsdConfig
SsdConfig::slc()
{
    SsdConfig cfg;
    cfg.array.media = FlashTiming::slc();
    return cfg;
}

SsdConfig
SsdConfig::mlc()
{
    SsdConfig cfg;
    cfg.array.media = FlashTiming::mlc();
    return cfg;
}

SsdConfig
SsdConfig::tlc()
{
    SsdConfig cfg;
    cfg.array.media = FlashTiming::tlc();
    return cfg;
}

SsdConfig
SsdConfig::optane()
{
    SsdConfig cfg;
    cfg.array.media = FlashTiming::optane();
    // PRAM SSDs ship many small dice; keep capacity comparable by
    // scaling block count for the smaller 4 KiB sector.
    cfg.array.blocksPerDie = 1024;
    cfg.buffer.pageBytes = cfg.array.media.pageBytes;
    // No erase, so garbage collection is a no-op cost-wise, but the
    // mapping machinery still runs.
    return cfg;
}

Ssd::Ssd(EventQueue &eq, const SsdConfig &config, std::string name)
    : eventq_(eq), config_(config), name_(std::move(name)),
      array_(eq, config.array, name_ + ".array"),
      cache_(config.buffer, name_ + ".buffer"),
      firmware_(config.firmware, name_ + ".fw"),
      completionEvent_(this, name_ + ".completion")
{
    fatal_if(config.buffer.pageBytes != config.array.media.pageBytes,
             "%s: buffer page size must match media page size",
             name_.c_str());
    ftl_ = std::make_unique<Ftl>(array_, config.ftl, name_ + ".ftl");
}

void
Ssd::populate(std::uint64_t addr, std::uint64_t size)
{
    std::uint32_t page = config_.array.media.pageBytes;
    std::uint64_t first = addr / page;
    std::uint64_t last = (addr + size - 1) / page;
    for (std::uint64_t lpn = first; lpn <= last; ++lpn)
        ftl_->populate(lpn);
}

std::uint64_t
Ssd::enqueue(const ctrl::MemRequest &req)
{
    fatal_if(req.size == 0, "%s: empty request", name_.c_str());
    fatal_if(req.addr + req.size > capacity(),
             "%s: request beyond capacity", name_.c_str());

    std::uint32_t page = config_.array.media.pageBytes;
    std::uint64_t first = req.addr / page;
    std::uint64_t last = (req.addr + req.size - 1) / page;
    bool is_write = (req.kind == ctrl::ReqKind::write);
    if (is_write) {
        ++stats_.writeRequests;
        stats_.bytesWritten += req.size;
    } else {
        ++stats_.readRequests;
        stats_.bytesRead += req.size;
    }

    Tick latest = eventq_.curTick();
    for (std::uint64_t lpn = first; lpn <= last; ++lpn) {
        // Host interface + firmware processing per page command.
        Tick fw_done = firmware_.service(eventq_.curTick());
        std::uint64_t lo = std::max<std::uint64_t>(req.addr,
                                                   lpn * page);
        std::uint64_t hi = std::min<std::uint64_t>(
            req.addr + req.size, (lpn + 1) * page);
        std::uint32_t covered = std::uint32_t(hi - lo);
        Tick done;
        if (is_write) {
            bool partial = covered < page;
            done = servicePageWrite(lpn, fw_done, partial, covered);
        } else {
            done = servicePageRead(lpn, fw_done, covered);
        }
        latest = std::max(latest, done);
    }

    std::uint64_t id = nextId_++;
    pushCompletion(latest, id);
    return id;
}

Tick
Ssd::servicePageRead(std::uint64_t lpn, Tick start,
                     std::uint32_t bytes)
{
    // A buffer hit only moves the requested bytes out of the DRAM; a
    // miss pays the full page fetch first (the block-interface cost).
    if (cache_.lookup(lpn)) {
        Tick done = start + cache_.accessTime(bytes);
        if (auto *t = trace::current())
            t->complete(trace::catFlash, name_, "page.read.hit",
                        start, done);
        return done;
    }

    Tick flash_done = ftl_->readPage(lpn, start);
    DramCache::Eviction ev = cache_.insert(lpn, false);
    handleEviction(ev, flash_done);
    Tick done = flash_done + cache_.accessTime(bytes);
    if (auto *t = trace::current())
        t->complete(trace::catFlash, name_, "page.read.miss", start,
                    done);
    return done;
}

Tick
Ssd::servicePageWrite(std::uint64_t lpn, Tick start, bool partial,
                      std::uint32_t bytes)
{
    Tick first_start = start;
    if (partial && !cache_.contains(lpn)) {
        // Read-modify-write: fetch the page before merging the
        // sub-page store into it.
        ++stats_.rmwReads;
        if (auto *t = trace::current())
            t->instant(trace::catFlash, name_, "page.write.rmw",
                       start);
        start = ftl_->readPage(lpn, start);
        DramCache::Eviction ev = cache_.insert(lpn, false);
        handleEviction(ev, start);
    }
    Tick dram_done = start + cache_.accessTime(bytes);
    // Insert before the watermark check: the write being serviced
    // counts toward the dirty population, so dirtyWatermark = 0.0
    // throttles every buffered write (and 1.0 never throttles).
    DramCache::Eviction ev = cache_.insert(lpn, true);
    handleEviction(ev, dram_done);
    if (cache_.overDirtyWatermark()) {
        // Throttled: synchronously flush the coldest dirty page so
        // the writer proceeds at the flash program rate, amortized
        // over a page's worth of buffered writes.
        std::uint64_t victim;
        if (cache_.oldestDirty(victim)) {
            ++stats_.bufferThrottledWrites;
            dram_done = ftl_->writePage(victim, dram_done);
            cache_.markClean(victim);
            if (auto *t = trace::current())
                t->instant(trace::catFlash, name_,
                           "page.write.throttled", dram_done);
        }
    }
    if (auto *t = trace::current()) {
        t->complete(trace::catFlash, name_, "page.write", first_start,
                    dram_done);
        t->counter(trace::catFlash, name_, "dirtyPages", dram_done,
                   double(cache_.dirtyPages()));
    }
    return dram_done;
}

void
Ssd::handleEviction(const DramCache::Eviction &ev, Tick when)
{
    if (!ev.evicted || !ev.dirty)
        return;
    // Asynchronous writeback of the victim; it occupies the FTL/flash
    // resources but does not delay the request that evicted it.
    ftl_->writePage(ev.lpn, when);
}

void
Ssd::pushCompletion(Tick when, std::uint64_t id)
{
    completions_[when].push_back(id);
    eventq_.reschedule(&completionEvent_,
                       completions_.begin()->first);
}

void
Ssd::completionTrigger()
{
    Tick now = eventq_.curTick();
    while (!completions_.empty() &&
           completions_.begin()->first <= now) {
        auto ids = std::move(completions_.begin()->second);
        completions_.erase(completions_.begin());
        for (std::uint64_t id : ids) {
            if (callback_)
                callback_(ctrl::MemResponse{id, now});
        }
    }
    if (!completions_.empty()) {
        eventq_.reschedule(&completionEvent_,
                           completions_.begin()->first);
    }
}

} // namespace flash
} // namespace dramless
