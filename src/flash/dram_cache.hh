/**
 * @file
 * Internal DRAM buffer cache of the SSDs and integrated flash
 * accelerators (Section VI: "the size of their internal DRAM buffer
 * is 1GB"). Page-granular, LRU, write-back with a dirty watermark
 * that throttles writers to flash speed once half the buffer is
 * dirty.
 */

#ifndef DRAMLESS_FLASH_DRAM_CACHE_HH
#define DRAMLESS_FLASH_DRAM_CACHE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace flash
{

/** DRAM buffer parameters. */
struct DramCacheConfig
{
    /** Buffer capacity in bytes (paper: 1 GiB). */
    std::uint64_t capacityBytes = 1ull << 30;
    /** Cached unit (one flash page). */
    std::uint32_t pageBytes = 16384;
    /** Fixed DRAM access latency. */
    Tick accessLatency = fromNs(150);
    /** DRAM bandwidth in bytes per second. */
    double bytesPerSec = 12.8e9;
    /** Dirty fraction beyond which writes flush synchronously. */
    double dirtyWatermark = 0.5;
};

/** Cache activity counters. */
struct DramCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t cleanEvictions = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total ? double(hits) / double(total) : 0.0;
    }
};

/**
 * LRU page cache. Timing helpers expose the DRAM access cost; the
 * owner (Ssd / integrated accelerator) decides what the evicted dirty
 * pages cost on flash.
 */
class DramCache
{
  public:
    DramCache(const DramCacheConfig &config, std::string name)
        : config_(config), name_(std::move(name)),
          capacityPages_(config.capacityBytes / config.pageBytes)
    {
        fatal_if(capacityPages_ == 0, "%s: cache smaller than a page",
                 name_.c_str());
    }

    /** @return DRAM time to move @p bytes through the buffer. */
    Tick
    accessTime(std::uint64_t bytes) const
    {
        return config_.accessLatency +
               Tick(double(bytes) / config_.bytesPerSec * 1e12);
    }

    /** @return true when @p lpn is resident (and refresh its LRU
     *  position). */
    bool
    lookup(std::uint64_t lpn)
    {
        auto it = map_.find(lpn);
        if (it == map_.end()) {
            ++stats_.misses;
            return false;
        }
        lru_.splice(lru_.begin(), lru_, it->second.pos);
        ++stats_.hits;
        return true;
    }

    /** @return true when @p lpn is resident (no LRU side effects,
     *  no stat updates). */
    bool
    contains(std::uint64_t lpn) const
    {
        return map_.count(lpn) > 0;
    }

    /** Result of an insertion. */
    struct Eviction
    {
        bool evicted = false;
        bool dirty = false;
        std::uint64_t lpn = 0;
    };

    /**
     * Insert (or refresh) @p lpn. @return the eviction the insertion
     * forced, if any.
     */
    Eviction
    insert(std::uint64_t lpn, bool dirty)
    {
        Eviction ev;
        auto it = map_.find(lpn);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.pos);
            if (dirty && !it->second.dirty) {
                it->second.dirty = true;
                ++dirtyPages_;
            }
            return ev;
        }
        if (map_.size() >= capacityPages_) {
            std::uint64_t victim = lru_.back();
            lru_.pop_back();
            auto vit = map_.find(victim);
            ev.evicted = true;
            ev.dirty = vit->second.dirty;
            ev.lpn = victim;
            if (vit->second.dirty) {
                --dirtyPages_;
                ++stats_.dirtyEvictions;
            } else {
                ++stats_.cleanEvictions;
            }
            map_.erase(vit);
        }
        lru_.push_front(lpn);
        map_[lpn] = Entry{lru_.begin(), dirty};
        if (dirty)
            ++dirtyPages_;
        ++stats_.insertions;
        return ev;
    }

    /**
     * Pick the least recently used dirty page for a forced flush.
     * @return true and set @p lpn when one exists.
     */
    bool
    oldestDirty(std::uint64_t &lpn) const
    {
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
            auto mit = map_.find(*it);
            if (mit->second.dirty) {
                lpn = *it;
                return true;
            }
        }
        return false;
    }

    /** Mark @p lpn clean (after its writeback completed). */
    void
    markClean(std::uint64_t lpn)
    {
        auto it = map_.find(lpn);
        if (it == map_.end() || !it->second.dirty)
            return;
        it->second.dirty = false;
        --dirtyPages_;
    }

    /** @return true when the dirty watermark is exceeded. */
    bool
    overDirtyWatermark() const
    {
        return double(dirtyPages_) >
               config_.dirtyWatermark * double(capacityPages_);
    }

    std::uint64_t residentPages() const { return map_.size(); }
    std::uint64_t dirtyPages() const { return dirtyPages_; }
    std::uint64_t capacityPages() const { return capacityPages_; }
    const DramCacheStats &cacheStats() const { return stats_; }
    const DramCacheConfig &config() const { return config_; }

  private:
    struct Entry
    {
        std::list<std::uint64_t>::iterator pos;
        bool dirty = false;
    };

    DramCacheConfig config_;
    std::string name_;
    std::uint64_t capacityPages_;
    std::list<std::uint64_t> lru_;
    std::unordered_map<std::uint64_t, Entry> map_;
    std::uint64_t dirtyPages_ = 0;
    DramCacheStats stats_;
};

} // namespace flash
} // namespace dramless

#endif // DRAMLESS_FLASH_DRAM_CACHE_HH
