/**
 * @file
 * Emulated solid-state drive: firmware + DRAM buffer cache + FTL +
 * flash array. Used both as the external storage of the heterogeneous
 * systems (Hetero, Heterodirect, *-PRAM via the Optane preset) and as
 * the embedded store of the Integrated-SLC/MLC/TLC and PAGE-buffer
 * accelerators.
 */

#ifndef DRAMLESS_FLASH_SSD_HH
#define DRAMLESS_FLASH_SSD_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/request.hh"
#include "flash/dram_cache.hh"
#include "flash/firmware.hh"
#include "flash/flash_device.hh"
#include "flash/ftl.hh"
#include "sim/event_queue.hh"

namespace dramless
{
namespace flash
{

/** Full SSD configuration. */
struct SsdConfig
{
    FlashArrayConfig array;
    FtlConfig ftl;
    DramCacheConfig buffer;
    FirmwareConfig firmware = FirmwareConfig::traditionalSsd();

    /** @return SLC-flash SSD (Table I Integrated-SLC / Hetero). */
    static SsdConfig slc();
    /** @return MLC-flash SSD (Table I Integrated-MLC / Hetero). */
    static SsdConfig mlc();
    /** @return TLC-flash SSD (Table I Integrated-TLC). */
    static SsdConfig tlc();
    /** @return Optane-class PRAM SSD (Table I Hetero-PRAM). */
    static SsdConfig optane();
};

/** SSD-level counters. */
struct SsdStats
{
    std::uint64_t readRequests = 0;
    std::uint64_t writeRequests = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t bufferThrottledWrites = 0;
    /** Sub-page writes that forced a page fetch first. */
    std::uint64_t rmwReads = 0;
};

/**
 * The SSD. Requests are byte-addressed but serviced at page
 * granularity: a sub-page access pays for the whole page (the block-
 * interface cost DRAM-less eliminates).
 */
class Ssd
{
  public:
    Ssd(EventQueue &eq, const SsdConfig &config, std::string name);

    /** Register the completion callback. */
    void setCallback(ctrl::CompletionCallback cb)
    {
        callback_ = std::move(cb);
    }

    /** @return logical capacity in bytes. */
    std::uint64_t capacity() const { return ftl_->logicalBytes(); }

    /**
     * Submit a byte-addressed request; it is expanded to page
     * accesses. @return the id reported on completion.
     */
    std::uint64_t enqueue(const ctrl::MemRequest &req);

    /** Stage @p size bytes at @p addr as pre-existing data. */
    void populate(std::uint64_t addr, std::uint64_t size);

    /** @return true when no requests are outstanding. */
    bool idle() const { return completions_.empty(); }

    const SsdStats &ssdStats() const { return stats_; }
    const FtlStats &ftlStats() const { return ftl_->ftlStats(); }
    const DramCacheStats &cacheStats() const
    {
        return cache_.cacheStats();
    }
    const FlashArrayStats &arrayStats() const
    {
        return array_.arrayStats();
    }
    const FirmwareModel &firmware() const { return firmware_; }
    const SsdConfig &config() const { return config_; }
    const std::string &name() const { return name_; }

  private:
    void pushCompletion(Tick when, std::uint64_t id);
    void completionTrigger();

    /** Service one page read delivering @p bytes to the requester;
     *  @return completion tick. */
    Tick servicePageRead(std::uint64_t lpn, Tick start,
                         std::uint32_t bytes);
    /**
     * Service one page write; a @p partial write of an uncached page
     * must first read the page (read-modify-write) — the block-
     * interface cost byte-granular stores pay on page devices.
     * @return completion tick.
     */
    Tick servicePageWrite(std::uint64_t lpn, Tick start, bool partial,
                          std::uint32_t bytes);
    /** Handle the eviction an insertion caused. */
    void handleEviction(const DramCache::Eviction &ev, Tick when);

    EventQueue &eventq_;
    SsdConfig config_;
    std::string name_;
    FlashArray array_;
    std::unique_ptr<Ftl> ftl_;
    DramCache cache_;
    FirmwareModel firmware_;
    std::map<Tick, std::vector<std::uint64_t>> completions_;
    ctrl::CompletionCallback callback_;
    std::uint64_t nextId_ = 1;
    SsdStats stats_;
    MemberEvent<Ssd, &Ssd::completionTrigger> completionEvent_;
};

} // namespace flash
} // namespace dramless

#endif // DRAMLESS_FLASH_SSD_HH
