/**
 * @file
 * Multi-channel, multi-die NAND (or PRAM-SSD media) array model.
 *
 * Resources: each die senses/programs/erases one page at a time; the
 * dies of a channel share that channel's data bus for page transfers.
 * The model is an analytic pipeline: operations reserve resources by
 * free-time bookkeeping and return their completion ticks, which is
 * exact for the FIFO service discipline SSD firmware applies.
 */

#ifndef DRAMLESS_FLASH_FLASH_DEVICE_HH
#define DRAMLESS_FLASH_FLASH_DEVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "flash/flash_timing.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace flash
{

/** Layout and bus parameters of the flash array. */
struct FlashArrayConfig
{
    FlashTiming media = FlashTiming::slc();
    std::uint32_t channels = 8;
    std::uint32_t diesPerChannel = 4;
    /** Blocks per die. */
    std::uint32_t blocksPerDie = 256;
    /** Pages per block. */
    std::uint32_t pagesPerBlock = 256;
    /** Channel bus bandwidth in bytes per second. */
    double channelBytesPerSec = 1.2e9;

    std::uint32_t numDies() const { return channels * diesPerChannel; }

    std::uint64_t
    capacityBytes() const
    {
        return std::uint64_t(numDies()) * blocksPerDie *
               pagesPerBlock * media.pageBytes;
    }
};

/** Operation counters of the array. */
struct FlashArrayStats
{
    std::uint64_t pageReads = 0;
    std::uint64_t pagePrograms = 0;
    std::uint64_t blockErases = 0;
    Tick dieBusyTicks = 0;
    Tick channelBusyTicks = 0;
};

/** Physical page address within the array. */
struct PhysPage
{
    std::uint32_t die = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;
};

/** The flash array: per-die and per-channel free-time bookkeeping. */
class FlashArray
{
  public:
    FlashArray(EventQueue &eq, const FlashArrayConfig &config,
               std::string name)
        : eventq_(eq), config_(config), name_(std::move(name)),
          dieFreeAt_(config.numDies(), 0),
          channelFreeAt_(config.channels, 0)
    {
        fatal_if(!config.media.valid(), "invalid media timing");
        transferTicks_ = Tick(double(config.media.pageBytes) /
                              config.channelBytesPerSec * 1e12);
    }

    /**
     * Read one page: sense on the die, then transfer over the channel.
     * @param earliest do not start before this tick.
     * @return tick the page data is available in the controller.
     */
    Tick
    readPage(const PhysPage &p, Tick earliest = 0)
    {
        checkPage(p);
        Tick start = std::max({eventq_.curTick(), earliest,
                               dieFreeAt_[p.die]});
        Tick sensed = start + config_.media.readLatency;
        std::uint32_t ch = p.die / config_.diesPerChannel;
        Tick xfer_start = std::max(sensed, channelFreeAt_[ch]);
        Tick done = xfer_start + transferTicks_;
        dieFreeAt_[p.die] = sensed;
        channelFreeAt_[ch] = done;
        stats_.dieBusyTicks += sensed - start;
        stats_.channelBusyTicks += transferTicks_;
        ++stats_.pageReads;
        return done;
    }

    /**
     * Program one page: transfer over the channel, then program on
     * the die. @return tick the program completes.
     */
    Tick
    programPage(const PhysPage &p, Tick earliest = 0)
    {
        checkPage(p);
        std::uint32_t ch = p.die / config_.diesPerChannel;
        Tick start = std::max({eventq_.curTick(), earliest,
                               channelFreeAt_[ch]});
        Tick xferred = start + transferTicks_;
        Tick prog_start = std::max(xferred, dieFreeAt_[p.die]);
        Tick done = prog_start + config_.media.programLatency;
        channelFreeAt_[ch] = xferred;
        dieFreeAt_[p.die] = done;
        stats_.channelBusyTicks += transferTicks_;
        stats_.dieBusyTicks += done - prog_start;
        ++stats_.pagePrograms;
        return done;
    }

    /**
     * Erase one block. Media without an erase (PRAM SSDs) complete
     * immediately. @return tick the erase completes.
     */
    Tick
    eraseBlock(std::uint32_t die, std::uint32_t block,
               Tick earliest = 0)
    {
        panic_if(die >= config_.numDies(), "die out of range");
        panic_if(block >= config_.blocksPerDie, "block out of range");
        Tick start = std::max({eventq_.curTick(), earliest,
                               dieFreeAt_[die]});
        Tick done = start + config_.media.eraseLatency;
        dieFreeAt_[die] = done;
        stats_.dieBusyTicks += done - start;
        ++stats_.blockErases;
        return done;
    }

    /** @return tick die @p die becomes free. */
    Tick dieFreeAt(std::uint32_t die) const
    {
        return dieFreeAt_.at(die);
    }

    /** @return channel transfer time for one page. */
    Tick pageTransferTicks() const { return transferTicks_; }

    const FlashArrayConfig &config() const { return config_; }
    const FlashArrayStats &arrayStats() const { return stats_; }

  private:
    void
    checkPage(const PhysPage &p) const
    {
        panic_if(p.die >= config_.numDies() ||
                     p.block >= config_.blocksPerDie ||
                     p.page >= config_.pagesPerBlock,
                 "%s: physical page out of range", name_.c_str());
    }

    EventQueue &eventq_;
    FlashArrayConfig config_;
    std::string name_;
    std::vector<Tick> dieFreeAt_;
    std::vector<Tick> channelFreeAt_;
    Tick transferTicks_;
    FlashArrayStats stats_;
};

} // namespace flash
} // namespace dramless

#endif // DRAMLESS_FLASH_FLASH_DEVICE_HH
