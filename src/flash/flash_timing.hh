/**
 * @file
 * NVM media timing presets of Table I.
 *
 * The paper evaluates flash SSDs built from Micron SLC/MLC/TLC NAND
 * parts, an Intel Optane (PRAM) SSD, and the Numonyx P8P 9x nm
 * parallel PRAM with a NOR interface. Table I lists the media
 * latencies used for each; this header encodes them.
 */

#ifndef DRAMLESS_FLASH_FLASH_TIMING_HH
#define DRAMLESS_FLASH_FLASH_TIMING_HH

#include <cstdint>
#include <string>

#include "sim/ticks.hh"

namespace dramless
{
namespace flash
{

/** Media-level timing of one NVM technology. */
struct FlashTiming
{
    std::string label;
    /** Page (or block-unit) size the media transfers in parallel. */
    std::uint32_t pageBytes = 16384;
    /** Array read (sense) latency for one page. */
    Tick readLatency = 0;
    /** Page program latency. */
    Tick programLatency = 0;
    /** Block erase latency (0 when the media needs no erase). */
    Tick eraseLatency = 0;

    /** @return Micron SLC NAND (Table I: 25/300/2000 us). */
    static FlashTiming
    slc()
    {
        return {"SLC", 16384, fromUs(25), fromUs(300), fromUs(2000)};
    }

    /** @return Micron MLC NAND (Table I: 50/800/3500 us). */
    static FlashTiming
    mlc()
    {
        return {"MLC", 16384, fromUs(50), fromUs(800), fromUs(3500)};
    }

    /** @return Micron TLC NAND (Table I: 80/1250/2274 us). */
    static FlashTiming
    tlc()
    {
        return {"TLC", 16384, fromUs(80), fromUs(1250), fromUs(2274)};
    }

    /**
     * @return Optane-class PRAM SSD media (Table I Hetero-PRAM: word
     * reads 0.1 us, word writes 10/18 us, no erase). The SSD exposes
     * a block interface, so a 4 KiB sector is the unit; the sector's
     * 128 32-byte words spread over ~16 PRAM dice, giving ~2 us
     * sector reads but ~150 us sector programs — the byte-granular
     * serialization that makes PRAM SSDs worse than flash at bulk
     * writes (Section VI-A).
     */
    static FlashTiming
    optane()
    {
        return {"PRAM-SSD", 4096, fromUs(2), fromUs(280), 0};
    }

    /**
     * @return the 3x nm multi-partition PRAM sample served through a
     * page-based interface with an internal DRAM (Table I
     * "PAGE-buffer"): a 16 KiB page spans both channels' 32 modules,
     * so reads take ~5 us and programs ~200 us (16 serialized word
     * programs per module).
     */
    static FlashTiming
    pagePram()
    {
        return {"PAGE-PRAM", 16384, fromUs(5), fromUs(200), 0};
    }

    /** @return true when parameters are physically sensible. */
    bool
    valid() const
    {
        return pageBytes > 0 && readLatency > 0 && programLatency > 0;
    }
};

} // namespace flash
} // namespace dramless

#endif // DRAMLESS_FLASH_FLASH_TIMING_HH
