#include "flash/ftl.hh"

#include <algorithm>

namespace dramless
{
namespace flash
{

Ftl::Ftl(FlashArray &array, const FtlConfig &config, std::string name)
    : array_(array), config_(config), name_(std::move(name)),
      cfgBlocks_(array.config().blocksPerDie),
      cfgPages_(array.config().pagesPerBlock)
{
    fatal_if(config.overProvision <= 0.0 ||
                 config.overProvision >= 0.5,
             "over-provisioning fraction out of range");
    const auto &acfg = array.config();
    std::uint64_t phys_pages = std::uint64_t(acfg.numDies()) *
                               cfgBlocks_ * cfgPages_;
    logicalPages_ = std::uint64_t(
        double(phys_pages) * (1.0 - config.overProvision));
    l2p_.resize((logicalPages_ + l2pChunkPages - 1) / l2pChunkPages);

    blocks_.resize(acfg.numDies());
    dies_.resize(acfg.numDies());
    for (std::uint32_t d = 0; d < acfg.numDies(); ++d) {
        blocks_[d].resize(cfgBlocks_);
        for (std::uint32_t b = 0; b < cfgBlocks_; ++b)
            dies_[d].freeBlocks.push_back(b);
    }
}

std::uint64_t
Ftl::logicalBytes() const
{
    return logicalPages_ * array_.config().media.pageBytes;
}

Ftl::BlockInfo &
Ftl::blockInfo(std::uint32_t die, std::uint32_t block)
{
    return blocks_[die][block];
}

bool
Ftl::isMapped(std::uint64_t lpn) const
{
    panic_if(lpn >= logicalPages_, "%s: lpn out of range",
             name_.c_str());
    return l2pGet(lpn) != unmapped;
}

PhysPage
Ftl::allocatePage(std::uint32_t die)
{
    DieState &ds = dies_[die];
    if (ds.activeBlock < 0 ||
        blockInfo(die, std::uint32_t(ds.activeBlock)).nextPage >=
            cfgPages_) {
        fatal_if(ds.freeBlocks.empty(),
                 "%s: die %u out of free blocks (logical space "
                 "overcommitted?)",
                 name_.c_str(), die);
        ds.activeBlock = std::int32_t(ds.freeBlocks.front());
        ds.freeBlocks.pop_front();
    }
    BlockInfo &blk = blockInfo(die, std::uint32_t(ds.activeBlock));
    PhysPage p;
    p.die = die;
    p.block = std::uint32_t(ds.activeBlock);
    p.page = blk.nextPage++;
    return p;
}

void
Ftl::invalidate(std::uint64_t lpn)
{
    std::uint64_t old = l2pGet(lpn);
    if (old == unmapped)
        return;
    PhysPage p = decodePpn(old);
    BlockInfo &blk = blockInfo(p.die, p.block);
    panic_if(blk.validPages == 0, "invalidate on empty block");
    --blk.validPages;
    blk.setLpn(p.page, -1, cfgPages_);
    l2pRef(lpn) = unmapped;
}

void
Ftl::populate(std::uint64_t lpn)
{
    panic_if(lpn >= logicalPages_, "%s: lpn out of range",
             name_.c_str());
    if (l2pGet(lpn) != unmapped)
        return;
    std::uint32_t die =
        std::uint32_t(nextDieRR_++ % array_.config().numDies());
    PhysPage p = allocatePage(die);
    BlockInfo &blk = blockInfo(p.die, p.block);
    blk.setLpn(p.page, std::int64_t(lpn), cfgPages_);
    ++blk.validPages;
    l2pRef(lpn) = ppnOf(p.die, p.block, p.page);
}

Tick
Ftl::readPage(std::uint64_t lpn, Tick earliest)
{
    panic_if(lpn >= logicalPages_, "%s: lpn out of range",
             name_.c_str());
    // Reading data that was never written: treat it as pre-staged
    // (the evaluations initialize inputs in storage beforehand).
    if (l2pGet(lpn) == unmapped)
        populate(lpn);
    ++stats_.hostPagesRead;
    return array_.readPage(decodePpn(l2pGet(lpn)), earliest);
}

Tick
Ftl::writePage(std::uint64_t lpn, Tick earliest)
{
    panic_if(lpn >= logicalPages_, "%s: lpn out of range",
             name_.c_str());
    invalidate(lpn);
    std::uint32_t die =
        std::uint32_t(nextDieRR_++ % array_.config().numDies());

    Tick t = earliest;
    if (dies_[die].freeBlocks.size() <=
        config_.gcFreeBlockThreshold) {
        t = collectGarbage(die, t);
    }

    PhysPage p = allocatePage(die);
    BlockInfo &blk = blockInfo(p.die, p.block);
    blk.setLpn(p.page, std::int64_t(lpn), cfgPages_);
    ++blk.validPages;
    l2pRef(lpn) = ppnOf(p.die, p.block, p.page);
    ++stats_.hostPagesWritten;
    return array_.programPage(p, t);
}

Tick
Ftl::collectGarbage(std::uint32_t die, Tick earliest)
{
    DieState &ds = dies_[die];
    // Greedy victim selection: fewest valid pages among full blocks
    // (excluding the active block and free blocks).
    std::int32_t victim = -1;
    std::uint32_t min_valid = cfgPages_ + 1;
    for (std::uint32_t b = 0; b < cfgBlocks_; ++b) {
        if (std::int32_t(b) == ds.activeBlock)
            continue;
        const BlockInfo &blk = blocks_[die][b];
        if (blk.nextPage < cfgPages_)
            continue; // not yet full (or free)
        if (blk.validPages < min_valid) {
            min_valid = blk.validPages;
            victim = std::int32_t(b);
        }
    }
    if (victim < 0)
        return earliest; // nothing reclaimable

    ++stats_.gcRuns;
    BlockInfo &vic = blocks_[die][std::uint32_t(victim)];
    Tick t = earliest;
    for (std::uint32_t pg = 0; pg < cfgPages_; ++pg) {
        std::int64_t lpn = vic.lpnAt(pg);
        if (lpn < 0)
            continue;
        // Migrate the still-valid page to the append point.
        PhysPage src{die, std::uint32_t(victim), pg};
        t = array_.readPage(src, t);
        PhysPage dst = allocatePage(die);
        BlockInfo &dblk = blockInfo(dst.die, dst.block);
        dblk.setLpn(dst.page, lpn, cfgPages_);
        ++dblk.validPages;
        l2pRef(std::uint64_t(lpn)) =
            ppnOf(dst.die, dst.block, dst.page);
        t = array_.programPage(dst, t);
        ++stats_.pagesMigrated;
    }
    vic.nextPage = 0;
    vic.validPages = 0;
    vic.pageLpn.clear();
    t = array_.eraseBlock(die, std::uint32_t(victim), t);
    ++stats_.blocksErased;
    ds.freeBlocks.push_back(std::uint32_t(victim));
    return t;
}

} // namespace flash
} // namespace dramless
