/**
 * @file
 * Page-mapped, log-structured flash translation layer with greedy
 * garbage collection — the storage firmware substrate behind the
 * Integrated-SLC/MLC/TLC and SSD-based systems of Table I.
 */

#ifndef DRAMLESS_FLASH_FTL_HH
#define DRAMLESS_FLASH_FTL_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "flash/flash_device.hh"

namespace dramless
{
namespace flash
{

/** FTL policy parameters. */
struct FtlConfig
{
    /** Fraction of physical capacity reserved as over-provisioning. */
    double overProvision = 0.07;
    /** Start garbage collection when a die's free blocks drop to
     *  this count. */
    std::uint32_t gcFreeBlockThreshold = 2;
};

/** FTL bookkeeping counters. */
struct FtlStats
{
    std::uint64_t hostPagesWritten = 0;
    std::uint64_t hostPagesRead = 0;
    std::uint64_t gcRuns = 0;
    std::uint64_t pagesMigrated = 0;
    std::uint64_t blocksErased = 0;

    /** @return write amplification factor. */
    double
    writeAmplification() const
    {
        if (hostPagesWritten == 0)
            return 1.0;
        return double(hostPagesWritten + pagesMigrated) /
               double(hostPagesWritten);
    }
};

/**
 * Page-mapped FTL over a FlashArray. Translation state is functional;
 * timing flows through the array's resource bookkeeping.
 */
class Ftl
{
  public:
    Ftl(FlashArray &array, const FtlConfig &config, std::string name);

    /** @return logical capacity in bytes exported to the host. */
    std::uint64_t logicalBytes() const;
    /** @return logical page count. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    /**
     * Map @p lpn without any timed operation: models data staged into
     * the device before the evaluation starts (the paper initializes
     * all input data in persistent storage beforehand).
     */
    void populate(std::uint64_t lpn);

    /**
     * Timed read of logical page @p lpn.
     * @param earliest do not start before this tick
     * @return tick the page is in the controller buffer
     */
    Tick readPage(std::uint64_t lpn, Tick earliest);

    /**
     * Timed write of logical page @p lpn: allocates a fresh physical
     * page at the die's append point, invalidates the old copy and
     * runs garbage collection when free blocks run low.
     * @return tick the program (and any triggered GC) completes
     */
    Tick writePage(std::uint64_t lpn, Tick earliest);

    /** @return true when @p lpn has a physical mapping. */
    bool isMapped(std::uint64_t lpn) const;

    const FtlStats &ftlStats() const { return stats_; }

  private:
    struct BlockInfo
    {
        std::uint32_t nextPage = 0;
        std::uint32_t validPages = 0;
        std::vector<std::int64_t> pageLpn; // -1 = invalid/free
    };

    struct DieState
    {
        std::int32_t activeBlock = -1;
        std::deque<std::uint32_t> freeBlocks;
        std::uint64_t nextWriteRR = 0;
    };

    static constexpr std::uint64_t unmapped = ~std::uint64_t(0);

    std::uint64_t
    ppnOf(std::uint32_t die, std::uint32_t block,
          std::uint32_t page) const
    {
        return (std::uint64_t(die) * cfgBlocks_ + block) * cfgPages_ +
               page;
    }

    PhysPage
    decodePpn(std::uint64_t ppn) const
    {
        PhysPage p;
        p.page = std::uint32_t(ppn % cfgPages_);
        std::uint64_t rest = ppn / cfgPages_;
        p.block = std::uint32_t(rest % cfgBlocks_);
        p.die = std::uint32_t(rest / cfgBlocks_);
        return p;
    }

    BlockInfo &blockInfo(std::uint32_t die, std::uint32_t block);

    /** Allocate the next physical page on @p die (no timing). */
    PhysPage allocatePage(std::uint32_t die);

    /** Invalidate the old copy of @p lpn, if any. */
    void invalidate(std::uint64_t lpn);

    /** Greedy GC on @p die. @return completion tick. */
    Tick collectGarbage(std::uint32_t die, Tick earliest);

    FlashArray &array_;
    FtlConfig config_;
    std::string name_;
    std::uint32_t cfgBlocks_;
    std::uint32_t cfgPages_;
    std::uint64_t logicalPages_;
    std::vector<std::uint64_t> l2p_;
    std::vector<std::vector<BlockInfo>> blocks_; // [die][block]
    std::vector<DieState> dies_;
    std::uint64_t nextDieRR_ = 0;
    FtlStats stats_;
};

} // namespace flash
} // namespace dramless

#endif // DRAMLESS_FLASH_FTL_HH
