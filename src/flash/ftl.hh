/**
 * @file
 * Page-mapped, log-structured flash translation layer with greedy
 * garbage collection — the storage firmware substrate behind the
 * Integrated-SLC/MLC/TLC and SSD-based systems of Table I.
 */

#ifndef DRAMLESS_FLASH_FTL_HH
#define DRAMLESS_FLASH_FTL_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "flash/flash_device.hh"

namespace dramless
{
namespace flash
{

/** FTL policy parameters. */
struct FtlConfig
{
    /** Fraction of physical capacity reserved as over-provisioning. */
    double overProvision = 0.07;
    /** Start garbage collection when a die's free blocks drop to
     *  this count. */
    std::uint32_t gcFreeBlockThreshold = 2;
};

/** FTL bookkeeping counters. */
struct FtlStats
{
    std::uint64_t hostPagesWritten = 0;
    std::uint64_t hostPagesRead = 0;
    std::uint64_t gcRuns = 0;
    std::uint64_t pagesMigrated = 0;
    std::uint64_t blocksErased = 0;

    /** @return write amplification factor. */
    double
    writeAmplification() const
    {
        if (hostPagesWritten == 0)
            return 1.0;
        return double(hostPagesWritten + pagesMigrated) /
               double(hostPagesWritten);
    }
};

/**
 * Page-mapped FTL over a FlashArray. Translation state is functional;
 * timing flows through the array's resource bookkeeping.
 */
class Ftl
{
  public:
    Ftl(FlashArray &array, const FtlConfig &config, std::string name);

    /** @return logical capacity in bytes exported to the host. */
    std::uint64_t logicalBytes() const;
    /** @return logical page count. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    /**
     * Map @p lpn without any timed operation: models data staged into
     * the device before the evaluation starts (the paper initializes
     * all input data in persistent storage beforehand).
     */
    void populate(std::uint64_t lpn);

    /**
     * Timed read of logical page @p lpn.
     * @param earliest do not start before this tick
     * @return tick the page is in the controller buffer
     */
    Tick readPage(std::uint64_t lpn, Tick earliest);

    /**
     * Timed write of logical page @p lpn: allocates a fresh physical
     * page at the die's append point, invalidates the old copy and
     * runs garbage collection when free blocks run low.
     * @return tick the program (and any triggered GC) completes
     */
    Tick writePage(std::uint64_t lpn, Tick earliest);

    /** @return true when @p lpn has a physical mapping. */
    bool isMapped(std::uint64_t lpn) const;

    const FtlStats &ftlStats() const { return stats_; }

  private:
    struct BlockInfo
    {
        std::uint32_t nextPage = 0;
        std::uint32_t validPages = 0;
        /** Lazily sized reverse map: empty means every entry is -1
         *  (invalid/free), so untouched blocks cost no memory and
         *  construction of a large array costs no time. */
        std::vector<std::int64_t> pageLpn;

        std::int64_t
        lpnAt(std::uint32_t pg) const
        {
            return pageLpn.empty() ? -1 : pageLpn[pg];
        }

        void
        setLpn(std::uint32_t pg, std::int64_t lpn,
               std::uint32_t pages_per_block)
        {
            if (pageLpn.empty())
                pageLpn.assign(pages_per_block, -1);
            pageLpn[pg] = lpn;
        }
    };

    struct DieState
    {
        std::int32_t activeBlock = -1;
        std::deque<std::uint32_t> freeBlocks;
        std::uint64_t nextWriteRR = 0;
    };

    static constexpr std::uint64_t unmapped = ~std::uint64_t(0);

    std::uint64_t
    ppnOf(std::uint32_t die, std::uint32_t block,
          std::uint32_t page) const
    {
        return (std::uint64_t(die) * cfgBlocks_ + block) * cfgPages_ +
               page;
    }

    PhysPage
    decodePpn(std::uint64_t ppn) const
    {
        PhysPage p;
        p.page = std::uint32_t(ppn % cfgPages_);
        std::uint64_t rest = ppn / cfgPages_;
        p.block = std::uint32_t(rest % cfgBlocks_);
        p.die = std::uint32_t(rest / cfgBlocks_);
        return p;
    }

    BlockInfo &blockInfo(std::uint32_t die, std::uint32_t block);

    /** Entries per lazily-allocated L2P chunk (512 KiB a chunk). */
    static constexpr std::uint64_t l2pChunkPages = 1u << 16;

    /** @return the mapping for @p lpn; unmapped when the chunk was
     *  never written. */
    std::uint64_t
    l2pGet(std::uint64_t lpn) const
    {
        const auto &chunk = l2p_[lpn / l2pChunkPages];
        return chunk ? chunk[lpn % l2pChunkPages] : unmapped;
    }

    /** @return a writable slot for @p lpn, materializing its chunk. */
    std::uint64_t &
    l2pRef(std::uint64_t lpn)
    {
        auto &chunk = l2p_[lpn / l2pChunkPages];
        if (!chunk) {
            chunk = std::make_unique<std::uint64_t[]>(l2pChunkPages);
            std::fill_n(chunk.get(), l2pChunkPages, unmapped);
        }
        return chunk[lpn % l2pChunkPages];
    }

    /** Allocate the next physical page on @p die (no timing). */
    PhysPage allocatePage(std::uint32_t die);

    /** Invalidate the old copy of @p lpn, if any. */
    void invalidate(std::uint64_t lpn);

    /** Greedy GC on @p die. @return completion tick. */
    Tick collectGarbage(std::uint32_t die, Tick earliest);

    FlashArray &array_;
    FtlConfig config_;
    std::string name_;
    std::uint32_t cfgBlocks_;
    std::uint32_t cfgPages_;
    std::uint64_t logicalPages_;
    /** Chunked L2P table: a null chunk is wholly unmapped. The flat
     *  eager table this replaces dominated construction time (the
     *  runner builds four FTLs per sweep repetition). */
    std::vector<std::unique_ptr<std::uint64_t[]>> l2p_;
    std::vector<std::vector<BlockInfo>> blocks_; // [die][block]
    std::vector<DieState> dies_;
    std::uint64_t nextDieRR_ = 0;
    FtlStats stats_;
};

} // namespace flash
} // namespace dramless

#endif // DRAMLESS_FLASH_FTL_HH
