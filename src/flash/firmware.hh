/**
 * @file
 * Embedded storage firmware execution model.
 *
 * The paper implements "DRAM-less (firmware)" by replacing the
 * hardware-automated control logic with traditional SSD firmware on a
 * 3-core 500 MHz embedded ARM CPU (Section VI), and shows that the
 * firmware's per-request execution time dwarfs the PRAM access
 * latency (Figure 7). This model captures exactly that effect: each
 * request occupies one firmware core for a fixed execution time, and
 * requests queue when all cores are busy.
 */

#ifndef DRAMLESS_FLASH_FIRMWARE_HH
#define DRAMLESS_FLASH_FIRMWARE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "reliability/fault_model.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace dramless
{
namespace flash
{

/** Firmware processor parameters. */
struct FirmwareConfig
{
    /** Embedded cores (paper: 3-core 500 MHz ARM). */
    std::uint32_t cores = 3;
    /** Firmware execution time per I/O request: host interface
     *  handling, mapping lookup, command construction. */
    Tick perRequestLatency = fromNs(3500);

    /** @name Reliability: request timeout + retry (off by default)
     *  @{ */

    /** Probability a firmware attempt hangs until the watchdog. */
    double timeoutProb = 0.0;
    /** Watchdog delay charged per timed-out attempt. */
    Tick timeoutPenalty = fromUs(20);
    /** Re-issues after a timeout before giving up (graceful). */
    std::uint32_t timeoutRetries = 2;
    /** Seed for the deterministic timeout decisions. */
    std::uint64_t faultSeed = 1;

    /** @} */

    /** @return the traditional-SSD-firmware preset of Section VI. */
    static FirmwareConfig
    traditionalSsd()
    {
        return FirmwareConfig{.cores = 3,
                              .perRequestLatency = fromNs(3500)};
    }

    /**
     * @return an oracle controller with no firmware cost, the
     * reference point of Figure 7.
     */
    static FirmwareConfig
    oracle()
    {
        return FirmwareConfig{.cores = 1, .perRequestLatency = 0};
    }
};

/** Multi-core run-to-completion firmware service model. */
class FirmwareModel
{
  public:
    FirmwareModel(const FirmwareConfig &config, std::string name)
        : config_(config), name_(std::move(name)),
          coreFreeAt_(config.cores, 0)
    {
        fatal_if(config.cores == 0, "%s: needs at least one core",
                 name_.c_str());
    }

    /**
     * Service one request starting no earlier than @p earliest.
     * @return tick the firmware finishes processing it.
     */
    Tick
    service(Tick earliest)
    {
        if (config_.perRequestLatency == 0)
            return earliest; // oracle: hardware automation
        auto it = std::min_element(coreFreeAt_.begin(),
                                   coreFreeAt_.end());
        Tick start = std::max(earliest, *it);
        Tick done = start + config_.perRequestLatency;
        // Timeout + retry path: an attempt may hang until the
        // watchdog fires (deterministic per request ordinal and
        // attempt). Each timeout costs the watchdog delay; a retry
        // re-executes the request. After timeoutRetries re-issues
        // the firmware gives up and completes best-effort — graceful
        // degradation, never a stall forever.
        std::uint32_t attempt = 0;
        while (config_.timeoutProb > 0.0 &&
               timesOut(numRequests_, attempt)) {
            ++numTimeouts_;
            done += config_.timeoutPenalty;
            if (auto *t = trace::current())
                t->instant(trace::catFlash, name_, "fw.timeout", done);
            if (attempt >= config_.timeoutRetries) {
                ++numTimeoutGiveUps_;
                break;
            }
            ++attempt;
            done += config_.perRequestLatency;
        }
        queueTicks_ += start - earliest;
        busyTicks_ += done - start;
        *it = done;
        ++numRequests_;
        if (auto *t = trace::current()) {
            if (start > earliest) {
                t->complete(trace::catFlash, name_, "fw.queued",
                            earliest, start);
            }
            t->complete(trace::catFlash, name_, "fw.service", start,
                        done);
            std::size_t busy = 0;
            for (Tick free_at : coreFreeAt_)
                busy += free_at > start ? 1 : 0;
            t->counter(trace::catFlash, name_, "fw.busyCores", start,
                       double(busy));
        }
        return done;
    }

    /** @return requests serviced. */
    std::uint64_t numRequests() const { return numRequests_; }
    /** @return aggregate core-busy time (energy accounting). */
    Tick busyTicks() const { return busyTicks_; }
    /** @return aggregate time requests waited for a free core. */
    Tick queueTicks() const { return queueTicks_; }
    /** @return firmware attempts that hit the watchdog. */
    std::uint64_t numTimeouts() const { return numTimeouts_; }
    /** @return requests that exhausted every timeout retry. */
    std::uint64_t numTimeoutGiveUps() const
    {
        return numTimeoutGiveUps_;
    }

    const FirmwareConfig &config() const { return config_; }

  private:
    /** Deterministic timeout draw for (request ordinal, attempt). */
    bool
    timesOut(std::uint64_t req, std::uint32_t attempt) const
    {
        Random r(reliability::mix(
            reliability::mix(config_.faultSeed ^ 0x5aa5a55aa55a5aa5ull,
                             req),
            attempt));
        return r.chance(config_.timeoutProb);
    }

    FirmwareConfig config_;
    std::string name_;
    std::vector<Tick> coreFreeAt_;
    std::uint64_t numRequests_ = 0;
    Tick busyTicks_ = 0;
    Tick queueTicks_ = 0;
    std::uint64_t numTimeouts_ = 0;
    std::uint64_t numTimeoutGiveUps_ = 0;
};

} // namespace flash
} // namespace dramless

#endif // DRAMLESS_FLASH_FIRMWARE_HH
