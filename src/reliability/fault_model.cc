#include "reliability/fault_model.hh"

#include <sstream>

namespace dramless
{
namespace reliability
{

std::string
ReliabilityConfig::describe() const
{
    if (!enabled)
        return "reliability off";
    std::ostringstream os;
    os << "seed=" << seed << " pFail=" << writeFailProb
       << " endurance=" << enduranceWrites
       << " pWorn=" << wornWriteFailProb
       << " retries=" << maxProgramRetries << " spares=" << spareLines
       << " jitter=" << programJitter
       << " pFwTimeout=" << firmwareTimeoutProb;
    return os.str();
}

} // namespace reliability
} // namespace dramless
