/**
 * @file
 * Deterministic fault-injection and endurance model for the PRAM
 * subsystem (paper §VII: lifetime is viable only with wear leveling
 * plus device-side write verification — this layer lets us stress
 * that claim instead of simulating only the happy path).
 *
 * Design rules:
 *
 *  - Every decision is a pure function of (seed, salt, line, wear):
 *    the coordinates are hashed into a one-shot SplitMix64 stream, so
 *    outcomes do not depend on event interleaving or on how many
 *    other random decisions were made before. Two runs with the same
 *    seed are bit-identical; parallel sweep workers cannot perturb
 *    each other.
 *
 *  - With `enabled == false` (the default) no component consults the
 *    model and no wear is tracked, so existing golden figures stay
 *    bit-identical.
 *
 * The knobs map onto the hardware mechanisms of LPDDR2-NVM parts:
 * program-and-verify (the device reports a verify failure through the
 * overlay-window status register and the controller re-pulses),
 * endurance budgets (cells degrade after ~1e6-1e8 SET/RESET cycles),
 * and cell-to-cell program-latency variation.
 */

#ifndef DRAMLESS_RELIABILITY_FAULT_MODEL_HH
#define DRAMLESS_RELIABILITY_FAULT_MODEL_HH

#include <cstdint>
#include <string>

#include "sim/random.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace reliability
{

/** Hash two 64-bit decision coordinates into one (SplitMix64 mix). */
constexpr std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * All reliability knobs, grouped by the component that consumes them.
 * Default-constructed == injection fully disabled.
 */
struct ReliabilityConfig
{
    /** Master switch; when false every other knob is ignored. */
    bool enabled = false;

    /** Seed for all fault decisions (independent of other RNG use). */
    std::uint64_t seed = 1;

    // --- PRAM media (pram::PramModule) ---

    /** Per-program-word verify-failure probability on healthy cells. */
    double writeFailProb = 0.0;

    /**
     * Writes a line endures before its failure probability escalates
     * to wornWriteFailProb. 0 means unlimited endurance.
     */
    std::uint64_t enduranceWrites = 0;

    /** Verify-failure probability once a line is past its budget. */
    double wornWriteFailProb = 0.5;

    /**
     * Cell-to-cell program-latency variation: each program word's
     * latency is scaled by a factor uniform in [1, 1 + jitter].
     */
    double programJitter = 0.0;

    // --- Channel controller (ctrl::ChannelController) ---

    /** Program-and-verify re-pulses after the initial attempt. */
    std::uint32_t maxProgramRetries = 3;

    /** Status-poll cost charged before each re-pulse. */
    Tick verifyCost = fromNs(200);

    // --- Subsystem (ctrl::PramSubsystem) ---

    /**
     * Spare stripes reserved (off the top of physical capacity) for
     * remapping lines whose writes exhaust all retries. Exhausting
     * the pool itself is fatal.
     */
    std::uint32_t spareLines = 8;

    // --- Firmware (flash::FirmwareModel) ---

    /** Per-request firmware timeout probability. */
    double firmwareTimeoutProb = 0.0;

    /** Watchdog delay charged per timed-out firmware attempt. */
    Tick firmwareTimeout = fromUs(20);

    /** Firmware re-issues after a timeout before giving up. */
    std::uint32_t firmwareRetries = 2;

    /** One-line human-readable summary for logs and bench labels. */
    std::string describe() const;
};

/**
 * Stateless decision oracle over a ReliabilityConfig. Components
 * keep their own wear counters and pass them in; the model only
 * turns (salt, line, wear) coordinates into outcomes.
 */
class FaultModel
{
  public:
    explicit FaultModel(const ReliabilityConfig &cfg) : cfg_(cfg) {}

    const ReliabilityConfig &config() const { return cfg_; }

    /**
     * Does the @p wear 'th program of @p line (scoped by @p salt,
     * typically a module id) fail device-side verification?
     */
    bool
    programFails(std::uint64_t salt, std::uint64_t line,
                 std::uint64_t wear) const
    {
        const bool worn =
            cfg_.enduranceWrites && wear > cfg_.enduranceWrites;
        const double p =
            worn ? cfg_.wornWriteFailProb : cfg_.writeFailProb;
        if (p <= 0.0)
            return false;
        Random r(mix(mix(cfg_.seed, salt), mix(line, wear)));
        return r.chance(p);
    }

    /** @return @p nominal scaled by this cell's latency variation. */
    Tick
    programLatency(std::uint64_t salt, std::uint64_t line,
                   std::uint64_t wear, Tick nominal) const
    {
        if (cfg_.programJitter <= 0.0)
            return nominal;
        // Different key-space than programFails so the two decisions
        // are independent.
        Random r(mix(mix(cfg_.seed ^ 0xa55a5aa55aa5a55aull, salt),
                     mix(line, wear)));
        const double f = 1.0 + cfg_.programJitter * r.uniform();
        return Tick(double(nominal) * f + 0.5);
    }

    /** Does firmware attempt @p attempt of request @p req time out? */
    bool
    firmwareTimesOut(std::uint64_t salt, std::uint64_t req,
                     std::uint32_t attempt) const
    {
        if (cfg_.firmwareTimeoutProb <= 0.0)
            return false;
        Random r(mix(mix(cfg_.seed ^ 0x5aa5a55aa55a5aa5ull, salt),
                     mix(req, attempt)));
        return r.chance(cfg_.firmwareTimeoutProb);
    }

  private:
    ReliabilityConfig cfg_;
};

} // namespace reliability
} // namespace dramless

#endif // DRAMLESS_RELIABILITY_FAULT_MODEL_HH
