/**
 * @file
 * Tag-only set-associative cache model used for the per-PE L1 and L2
 * (Figure 6a: 64 KiB L1, 512 KiB L2 per PE).
 */

#ifndef DRAMLESS_ACCEL_CACHE_HH
#define DRAMLESS_ACCEL_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace dramless
{
namespace accel
{

/** Cache layout parameters. */
struct CacheConfig
{
    std::uint64_t capacityBytes = 64 * 1024;
    std::uint32_t blockBytes = 64;
    std::uint32_t associativity = 4;
    /** Access latency in core cycles. */
    std::uint32_t latencyCycles = 1;

    /** @return TI C66x-like 64 KiB L1D. */
    static CacheConfig
    l1Default()
    {
        return CacheConfig{64 * 1024, 64, 4, 1};
    }

    /**
     * @return 512 KiB L2 with 1 KiB blocks: the server issues memory
     * requests of 512 bytes per channel (Section III-B), i.e. 1 KiB
     * across the two LPDDR2-NVM channels per L2 fill.
     */
    static CacheConfig
    l2Default()
    {
        return CacheConfig{512 * 1024, 1024, 8, 8};
    }
};

/** Cache activity counters. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        std::uint64_t total = hits + misses;
        return total ? double(misses) / double(total) : 0.0;
    }
};

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty block was evicted and must be written back. */
    bool writeback = false;
    /** Block-aligned address of the evicted dirty block. */
    std::uint64_t writebackAddr = 0;
};

/** Tag-only LRU set-associative cache. */
class SetAssocCache
{
  public:
    SetAssocCache(const CacheConfig &config, std::string name)
        : config_(config), name_(std::move(name))
    {
        fatal_if(config.blockBytes == 0 ||
                     (config.blockBytes & (config.blockBytes - 1)),
                 "%s: block size must be a power of two",
                 name_.c_str());
        std::uint64_t blocks =
            config.capacityBytes / config.blockBytes;
        fatal_if(blocks == 0 || blocks % config.associativity != 0,
                 "%s: capacity/associativity mismatch", name_.c_str());
        numSets_ = blocks / config.associativity;
        fatal_if(numSets_ & (numSets_ - 1),
                 "%s: set count must be a power of two",
                 name_.c_str());
        sets_.assign(blocks, Line{});
    }

    /**
     * Access the block containing @p addr.
     * @param is_write mark the block dirty on hit/fill
     * @param allocate fill the block on miss
     * @return hit/miss and any dirty eviction
     */
    CacheAccessResult
    access(std::uint64_t addr, bool is_write, bool allocate = true)
    {
        CacheAccessResult res;
        std::uint64_t block = addr / config_.blockBytes;
        std::uint64_t set = block & (numSets_ - 1);
        Line *lines = &sets_[set * config_.associativity];

        for (std::uint32_t w = 0; w < config_.associativity; ++w) {
            if (lines[w].valid && lines[w].tag == block) {
                res.hit = true;
                lines[w].lastUse = ++useClock_;
                lines[w].dirty |= is_write;
                ++stats_.hits;
                return res;
            }
        }
        ++stats_.misses;
        if (!allocate)
            return res;

        // LRU victim.
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < config_.associativity; ++w) {
            if (!lines[w].valid) {
                victim = w;
                break;
            }
            if (lines[w].lastUse < lines[victim].lastUse)
                victim = w;
        }
        if (lines[victim].valid && lines[victim].dirty) {
            res.writeback = true;
            res.writebackAddr =
                lines[victim].tag * config_.blockBytes;
            ++stats_.writebacks;
        }
        lines[victim] =
            Line{true, is_write, block, ++useClock_};
        return res;
    }

    /** @return true when the block holding @p addr is resident
     *  (no side effects). */
    bool
    contains(std::uint64_t addr) const
    {
        std::uint64_t block = addr / config_.blockBytes;
        std::uint64_t set = block & (numSets_ - 1);
        const Line *lines = &sets_[set * config_.associativity];
        for (std::uint32_t w = 0; w < config_.associativity; ++w) {
            if (lines[w].valid && lines[w].tag == block)
                return true;
        }
        return false;
    }

    /** Drop every line (kernel switch). Dirty contents are assumed
     *  flushed by the caller's writeback accounting. */
    void
    invalidateAll()
    {
        for (auto &line : sets_)
            line = Line{};
    }

    /** @return block-aligned addresses of every dirty line. */
    std::vector<std::uint64_t>
    dirtyBlocks() const
    {
        std::vector<std::uint64_t> out;
        for (const auto &line : sets_) {
            if (line.valid && line.dirty)
                out.push_back(line.tag * config_.blockBytes);
        }
        return out;
    }

    /** Clear every dirty bit (after a flush was accounted). */
    void
    cleanAll()
    {
        for (auto &line : sets_)
            line.dirty = false;
    }

    /** Block-aligned base of the block containing @p addr. */
    std::uint64_t
    blockBase(std::uint64_t addr) const
    {
        return addr / config_.blockBytes * config_.blockBytes;
    }

    const CacheConfig &config() const { return config_; }
    const CacheStats &cacheStats() const { return stats_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
    };

    CacheConfig config_;
    std::string name_;
    std::uint64_t numSets_;
    std::vector<Line> sets_;
    std::uint64_t useClock_ = 0;
    CacheStats stats_;
};

} // namespace accel
} // namespace dramless

#endif // DRAMLESS_ACCEL_CACHE_HH
