/**
 * @file
 * Memory controller unit of the server PE (Figure 6b).
 *
 * The server designates one PE to take over the agents' L2 misses and
 * administrate all PRAM accesses; the MCU is its interface to the
 * on-chip memory controllers (MC1/MC2) and the FPGA channel
 * controllers. Requests serialize through the MCU with a small
 * hardware handling overhead and flow into the attached backend.
 */

#ifndef DRAMLESS_ACCEL_MCU_HH
#define DRAMLESS_ACCEL_MCU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "accel/backend.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace dramless
{
namespace accel
{

/** MCU parameters. */
struct McuConfig
{
    /** Per-request handling time in the server's MCU hardware. */
    Tick requestOverhead = fromNs(20);
    /** Maximum requests outstanding in the backend. */
    std::uint32_t maxOutstanding = 128;
};

/** MCU counters. */
struct McuStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    stats::Average readLatencyNs{"mcu.readLatencyNs"};
    stats::Average writeLatencyNs{"mcu.writeLatencyNs"};
};

/** The MCU: ordered admission into the memory backend. */
class Mcu
{
  public:
    using DoneCallback = std::function<void(Tick when)>;

    Mcu(EventQueue &eq, const McuConfig &config, std::string name)
        : eventq_(eq), config_(config), name_(std::move(name)),
          drainEvent_(this, name_ + ".drain")
    {}

    /** Attach the storage backend; registers the MCU's callback. */
    void
    attachBackend(MemoryBackend *backend)
    {
        backend_ = backend;
        backend_->setCallback(
            [this](std::uint64_t id, Tick when) {
                onComplete(id, when);
            });
    }

    /** Issue a read; @p on_done fires at data return. */
    void
    read(std::uint64_t addr, std::uint32_t size, DoneCallback on_done)
    {
        ++stats_.reads;
        stats_.bytesRead += size;
        queue_.push_back(
            Pending{addr, size, false, std::move(on_done),
                    eventq_.curTick()});
        drain();
    }

    /**
     * Issue a (posted) write; @p on_done, when provided, fires at
     * durable completion.
     */
    void
    write(std::uint64_t addr, std::uint32_t size,
          DoneCallback on_done = nullptr)
    {
        ++stats_.writes;
        stats_.bytesWritten += size;
        queue_.push_back(
            Pending{addr, size, true, std::move(on_done),
                    eventq_.curTick()});
        drain();
    }

    /** Forward a selective-erasing hint to the backend. */
    void
    hintFutureWrite(std::uint64_t addr, std::uint64_t size)
    {
        panic_if(backend_ == nullptr, "%s: no backend",
                 name_.c_str());
        backend_->hintFutureWrite(addr, size);
    }

    /** @return requests queued plus in flight. */
    std::size_t
    outstanding() const
    {
        return queue_.size() + inflight_.size();
    }

    /** @return true when nothing is queued or in flight. */
    bool idle() const { return outstanding() == 0; }

    const McuStats &mcuStats() const { return stats_; }

  private:
    struct Pending
    {
        std::uint64_t addr;
        std::uint32_t size;
        bool isWrite;
        DoneCallback onDone;
        Tick issued;
    };

    struct Inflight
    {
        DoneCallback onDone;
        bool isWrite;
        Tick issued;
    };

    void
    drain()
    {
        panic_if(backend_ == nullptr, "%s: no backend",
                 name_.c_str());
        Tick now = eventq_.curTick();
        while (!queue_.empty() &&
               inflight_.size() < config_.maxOutstanding) {
            if (busyUntil_ > now) {
                eventq_.reschedule(&drainEvent_, busyUntil_);
                return;
            }
            Pending &head = queue_.front();
            if (!backend_->canAccept(head.size))
                return; // resume on a completion
            std::uint64_t id =
                backend_->submit(head.addr, head.size, head.isWrite);
            inflight_[id] = Inflight{std::move(head.onDone),
                                     head.isWrite, head.issued};
            queue_.pop_front();
            busyUntil_ = now + config_.requestOverhead;
            now = eventq_.curTick();
        }
    }

    void
    onComplete(std::uint64_t id, Tick when)
    {
        auto it = inflight_.find(id);
        panic_if(it == inflight_.end(),
                 "%s: completion for unknown request", name_.c_str());
        Inflight inf = std::move(it->second);
        inflight_.erase(it);
        double lat = toNs(when - inf.issued);
        if (inf.isWrite)
            stats_.writeLatencyNs.sample(lat);
        else
            stats_.readLatencyNs.sample(lat);
        if (inf.onDone)
            inf.onDone(when);
        drain();
    }

    EventQueue &eventq_;
    McuConfig config_;
    std::string name_;
    MemoryBackend *backend_ = nullptr;
    std::deque<Pending> queue_;
    std::unordered_map<std::uint64_t, Inflight> inflight_;
    Tick busyUntil_ = 0;
    McuStats stats_;
    MemberEvent<Mcu, &Mcu::drain> drainEvent_;
};

} // namespace accel
} // namespace dramless

#endif // DRAMLESS_ACCEL_MCU_HH
