/**
 * @file
 * Abstract execution trace consumed by a processing element.
 *
 * The PEs are trace-driven: a workload model (src/workload) produces
 * a lazy stream of compute bursts and memory accesses per agent, and
 * the PE turns them into cycles, cache traffic and stalls.
 */

#ifndef DRAMLESS_ACCEL_TRACE_HH
#define DRAMLESS_ACCEL_TRACE_HH

#include <cstdint>

namespace dramless
{
namespace accel
{

/** One unit of PE work. */
struct TraceItem
{
    enum class Kind
    {
        /** Execute @c instructions functional-unit operations. */
        compute,
        /** Load @c size bytes at @c addr. */
        load,
        /** Store @c size bytes at @c addr. */
        store,
    };

    Kind kind = Kind::compute;
    /** Instructions for compute items. */
    std::uint64_t instructions = 0;
    /** Byte address for memory items. */
    std::uint64_t addr = 0;
    /** Access size of one word for memory items. */
    std::uint32_t size = 0;
    /**
     * Burst length for memory items: number of contiguous @c size
     * byte words starting at @c addr. The PE walks the words of a
     * burst inside one heap event; the memory path keeps per-word
     * semantics (fault injection, verify, wear) regardless of burst.
     */
    std::uint32_t burst = 1;

    /** @return total bytes covered by a memory item. */
    std::uint64_t
    bytes() const
    {
        return std::uint64_t(size) * burst;
    }

    static TraceItem
    computeOf(std::uint64_t instructions)
    {
        TraceItem it;
        it.kind = Kind::compute;
        it.instructions = instructions;
        return it;
    }

    static TraceItem
    loadOf(std::uint64_t addr, std::uint32_t size,
           std::uint32_t burst = 1)
    {
        TraceItem it;
        it.kind = Kind::load;
        it.addr = addr;
        it.size = size;
        it.burst = burst;
        return it;
    }

    static TraceItem
    storeOf(std::uint64_t addr, std::uint32_t size,
            std::uint32_t burst = 1)
    {
        TraceItem it;
        it.kind = Kind::store;
        it.addr = addr;
        it.size = size;
        it.burst = burst;
        return it;
    }
};

/** Lazy trace stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next item.
     * @return false when the trace is exhausted.
     */
    virtual bool next(TraceItem &out) = 0;
};

} // namespace accel
} // namespace dramless

#endif // DRAMLESS_ACCEL_TRACE_HH
