#include "accel/accelerator.hh"

#include <algorithm>

#include "sim/debug.hh"

namespace dramless
{
namespace accel
{

Accelerator::Accelerator(EventQueue &eq,
                         const AcceleratorConfig &config,
                         std::string name)
    : eventq_(eq), config_(config), name_(std::move(name)),
      psc_(config.numPes),
      serverEvent_(this, name_ + ".server"),
      sampleEvent_(this, name_ + ".sample"),
      imageEvent_(this, name_ + ".image"),
      bootPool_(eq, name_ + ".boot")
{
    fatal_if(config.numPes < 2,
             "%s: need at least a server and one agent",
             name_.c_str());
    mcu_ = std::make_unique<Mcu>(eq, config.mcu, name_ + ".mcu");
    // PE 0 is the server; agents are PEs 1..numPes-1.
    for (std::uint32_t i = 1; i < config.numPes; ++i) {
        agents_.push_back(std::make_unique<ProcessingElement>(
            eq, config.pe, name_ + csprintf(".pe%u", i)));
        agents_.back()->attachMcu(mcu_.get());
        agents_.back()->setOnDone([this, pe_index = i] {
            // The agent retired its kernel; the PSC puts it back to
            // sleep until the server hands it more work.
            psc_.setState(pe_index, PowerState::sleep,
                          eventq_.curTick());
            agentDone();
        });
    }
    psc_.setState(0, PowerState::active, 0); // the server always runs
}

void
Accelerator::attachBackend(MemoryBackend *backend)
{
    backend_ = backend;
    mcu_->attachBackend(backend);
}

void
Accelerator::launch(const KernelLaunch &launch,
                    std::function<void(Tick)> on_complete)
{
    fatal_if(busy_, "%s: launch while busy", name_.c_str());
    fatal_if(backend_ == nullptr, "%s: no backend attached",
             name_.c_str());
    fatal_if(launch.agentTraces.empty(), "%s: launch without traces",
             name_.c_str());
    fatal_if(launch.agentTraces.size() > agents_.size(),
             "%s: more traces than agents", name_.c_str());

    busy_ = true;
    current_ = launch;
    onComplete_ = std::move(on_complete);
    agentsDone_ = 0;
    activeAgents_ = 0;
    nextAgentToSchedule_ = 0;
    metrics_ = LaunchMetrics{};
    ipcSeries_.reset();
    activitySeries_.reset();

    Tick now = eventq_.curTick();
    metrics_.interruptAt = now + config_.hostInterruptLatency;

    // While the server loads the kernel, the PRAM subsystem may
    // selectively pre-erase the declared output regions (Section V-A).
    for (const auto &[addr, size] : current_.outputRegions)
        mcu_->hintFutureWrite(addr, size);

    if (current_.imageResident) {
        metrics_.imageDownloadedAt = metrics_.interruptAt;
        eventq_.reschedule(&serverEvent_, metrics_.interruptAt);
    } else {
        imageChunksLeft_ =
            (current_.imageBytes + config_.imageChunkBytes - 1) /
            config_.imageChunkBytes;
        eventq_.reschedule(&imageEvent_, metrics_.interruptAt);
    }

    lastSampleTick_ = now;
    eventq_.reschedule(&sampleEvent_,
                       now + config_.sampleInterval);
}

void
Accelerator::downloadImage()
{
    // Issue every image chunk as a posted write; the last durable
    // completion releases agent scheduling.
    std::uint64_t chunks = imageChunksLeft_;
    auto remaining = std::make_shared<std::uint64_t>(chunks);
    for (std::uint64_t i = 0; i < chunks; ++i) {
        std::uint64_t addr = current_.imageBase +
                             i * config_.imageChunkBytes;
        mcu_->write(addr, config_.imageChunkBytes,
                    [this, remaining](Tick when) {
                        if (--*remaining == 0) {
                            metrics_.imageDownloadedAt = when;
                            eventq_.reschedule(&serverEvent_,
                                               when);
                        }
                    });
    }
    imageChunksLeft_ = 0;
}

void
Accelerator::scheduleNextAgent()
{
    if (nextAgentToSchedule_ >= current_.agentTraces.size())
        return;
    std::uint32_t idx = nextAgentToSchedule_++;
    Tick now = eventq_.curTick();
    if (current_.agentsResident) {
        // Streaming re-launch: the agent still holds the kernel; the
        // server only flips its run flag and hands it the new chunk.
        DPRINTFN("Accel", now, name_, "resuming resident agent %u",
                 idx);
        Tick go = now + config_.bootAddressStoreLatency;
        psc_.setState(idx + 1, PowerState::active, go);
        ProcessingElement &pe = *agents_[idx];
        pe.setTrace(current_.agentTraces[idx]);
        pe.start(go);
        if (activeAgents_++ == 0)
            metrics_.firstAgentStartAt = go;
        if (nextAgentToSchedule_ < current_.agentTraces.size())
            eventq_.reschedule(&serverEvent_, go);
        return;
    }
    DPRINTFN("Accel", now, name_,
             "PSC scheduling agent %u (sleep/boot-addr/wake)", idx);
    // PSC suspend, boot-address store into the agent's L2, resume.
    Tick asleep = now + config_.agentSleepLatency;
    Tick stored = asleep + config_.bootAddressStoreLatency;
    Tick awake = stored + config_.agentWakeLatency;
    psc_.setState(idx + 1, PowerState::sleep, asleep);
    psc_.setState(idx + 1, PowerState::active, awake);
    bootAgent(idx, awake);
    // The server moves on to the next agent once this one is revoked.
    if (nextAgentToSchedule_ < current_.agentTraces.size())
        eventq_.reschedule(&serverEvent_, awake);
}

void
Accelerator::bootAgent(std::uint32_t idx, Tick ready_at)
{
    // The agent fetches its kernel image from the backend before
    // entering the trace (Figure 9b step 6).
    std::uint64_t boot_bytes =
        std::min<std::uint64_t>(current_.imageBytes, 64 * 1024);
    std::uint64_t chunks = std::max<std::uint64_t>(
        1, boot_bytes / config_.imageChunkBytes);
    auto remaining = std::make_shared<std::uint64_t>(chunks);
    auto start_agent = [this, idx](Tick when) {
        ProcessingElement &pe = *agents_[idx];
        pe.setTrace(current_.agentTraces[idx]);
        pe.start(when);
        if (activeAgents_++ == 0)
            metrics_.firstAgentStartAt = when;
    };
    // Defer the boot reads until the PSC wake completes.
    bootPool_.schedule(ready_at, [=, this] {
        for (std::uint64_t i = 0; i < chunks; ++i) {
            mcu_->read(current_.imageBase +
                           i * config_.imageChunkBytes,
                       config_.imageChunkBytes,
                       [remaining, start_agent](Tick when) {
                           if (--*remaining == 0)
                               start_agent(when);
                       });
        }
    });
}

void
Accelerator::agentDone()
{
    if (++agentsDone_ < current_.agentTraces.size())
        return;
    busy_ = false;
    metrics_.completedAt = eventq_.curTick();
    DPRINTFN("Accel", metrics_.completedAt, name_,
             "all %zu agents complete",
             current_.agentTraces.size());
    sample(); // close the series
    for (std::uint32_t i = 0; i < current_.agentTraces.size(); ++i) {
        metrics_.totalInstructions +=
            agents_[i]->peStats().instructions;
    }
    if (onComplete_)
        onComplete_(metrics_.completedAt);
}

void
Accelerator::sample()
{
    Tick now = eventq_.curTick();
    std::uint64_t instr = 0;
    double activity = 0.0;
    for (auto &pe : agents_) {
        instr += pe->drainInstructionSample();
        activity += pe->drainActivitySample();
    }
    double cycles = double(config_.sampleInterval) /
                    double(config_.pe.clockPeriod);
    Tick span = now - lastSampleTick_;
    if (span > 0) {
        cycles = double(span) / double(config_.pe.clockPeriod);
        ipcSeries_.record(now, double(instr) / cycles);
        activitySeries_.record(now,
                               activity / double(agents_.size()));
    }
    lastSampleTick_ = now;
    if (busy_) {
        eventq_.reschedule(&sampleEvent_,
                           now + config_.sampleInterval);
    }
}

} // namespace accel
} // namespace dramless
