#include "accel/pe.hh"

#include <algorithm>
#include <cmath>

#include "sim/debug.hh"
#include "sim/trace.hh"

namespace dramless
{
namespace accel
{

ProcessingElement::ProcessingElement(EventQueue &eq,
                                     const PeConfig &config,
                                     std::string name)
    : Clocked(eq, config.clockPeriod),
      config_(config),
      name_(std::move(name)),
      l1_(config.l1, name_ + ".l1"),
      l2_(config.l2, name_ + ".l2"),
      stepEvent_(this, name_ + ".step")
{
    fatal_if(config.effectiveIssue <= 0.0,
             "%s: issue rate must be positive", name_.c_str());
}

void
ProcessingElement::setTrace(TraceSource *trace)
{
    panic_if(running_, "%s: trace swapped while running",
             name_.c_str());
    trace_ = trace;
    finished_ = false;
    traceExhausted_ = false;
    haveItem_ = false;
}

void
ProcessingElement::start(Tick when)
{
    panic_if(trace_ == nullptr, "%s: started without a trace",
             name_.c_str());
    panic_if(mcu_ == nullptr, "%s: started without an MCU",
             name_.c_str());
    panic_if(running_, "%s: double start", name_.c_str());
    running_ = true;
    runStart_ = when;
    eventQueue().reschedule(&stepEvent_,
                            std::max(when, eventQueue().curTick()));
}

void
ProcessingElement::invalidateCaches()
{
    l1_.invalidateAll();
    l2_.invalidateAll();
}

void
ProcessingElement::step()
{
    if (!running_ || waitingLoad_ || waitingStore_)
        return;

    if (storeQueueUsed_ >= config_.storeQueueDepth) {
        waitingStore_ = true;
        stallStart_ = curTick();
        return; // resumes when a posted write drains
    }

    if (!haveItem_) {
        if (!trace_->next(item_)) {
            if (!traceExhausted_) {
                // Kernel complete: results dirty in the caches must
                // reach persistent storage before completion is
                // signalled to the server.
                traceExhausted_ = true;
                // Dirty L1 lines merge into their L2 copies; only
                // lines without an L2 home flush separately.
                for (std::uint64_t a : l1_.dirtyBlocks()) {
                    CacheAccessResult wr = l2_.access(a, true, false);
                    if (!wr.hit)
                        flushQueue_.emplace_back(
                            a, config_.l1.blockBytes);
                }
                for (std::uint64_t a : l2_.dirtyBlocks())
                    flushQueue_.emplace_back(a,
                                             config_.l2.blockBytes);
                l1_.cleanAll();
                l2_.cleanAll();
            }
            if (!flushQueue_.empty()) {
                auto [addr, size] = flushQueue_.front();
                flushQueue_.pop_front();
                postWrite(addr, size);
                eventQueue().reschedule(&stepEvent_, clockEdge(1));
                return;
            }
            maybeFinish();
            return;
        }
        haveItem_ = true;
        burstDone_ = 0;
    }

    switch (item_.kind) {
      case TraceItem::Kind::compute: {
        Cycles c = Cycles(std::max<double>(
            1.0, std::ceil(double(item_.instructions) /
                           config_.effectiveIssue)));
        stats_.instructions += item_.instructions;
        stats_.computeCycles += c;
        busySinceSample_ += cyclesToTicks(c);
        haveItem_ = false;
        eventQueue().reschedule(&stepEvent_, clockEdge(c));
        return;
      }
      case TraceItem::Kind::load:
      case TraceItem::Kind::store: {
        bool is_store = item_.kind == TraceItem::Kind::store;
        if (is_store && !config_.writeAllocate) {
            stepStoreNoAllocate();
            return;
        }
        // Walk the burst's words inside this one heap event,
        // accumulating cache-hit cycles; the walk pauses at the word
        // that needs a blocking action (L2 miss fill, store-queue
        // backpressure) and resumes there afterwards.
        Cycles acc = 0;
        while (true) {
            std::uint64_t addr =
                item_.addr + std::uint64_t(burstDone_) * item_.size;
            if (is_store)
                ++stats_.stores;
            else
                ++stats_.loads;
            CacheAccessResult r1 = l1_.access(addr, is_store);
            if (!r1.hit) {
                // L1 fill happens on the miss; its dirty victim
                // drains into L2.
                if (r1.writeback) {
                    CacheAccessResult wr =
                        l2_.access(r1.writebackAddr, true, false);
                    if (!wr.hit) {
                        postWrite(r1.writebackAddr,
                                  config_.l1.blockBytes);
                    }
                }
                CacheAccessResult r2 = l2_.access(addr, is_store);
                if (!r2.hit) {
                    // L2 miss: the server MCU fetches one L2 block
                    // (512 B per channel request shape); store
                    // misses fetch-then-merge (write allocate). The
                    // dirty victim, if any, is posted when the fill
                    // returns. Hit cycles banked so far overlap the
                    // stall.
                    ++stats_.l2MissReads;
                    if (auto *t = trace::current()) {
                        t->instant(trace::catAccel, name_, "l2.miss",
                                   curTick());
                    }
                    DPRINTF("PE",
                            "%s miss addr=0x%llx -> fetch L2 block",
                            is_store ? "store" : "load",
                            (unsigned long long)addr);
                    stats_.memAccessCycles += acc;
                    busySinceSample_ += cyclesToTicks(acc);
                    waitingLoad_ = true;
                    stallStart_ = curTick();
                    pendingWbValid_ = r2.writeback;
                    pendingWbAddr_ = r2.writebackAddr;
                    ++burstDone_; // retired when the fill returns
                    mcu_->read(l2_.blockBase(addr),
                               config_.l2.blockBytes,
                               [this](Tick when) {
                                   loadReturned(when);
                               });
                    return;
                }
                acc += config_.l2.latencyCycles;
            } else {
                acc += config_.l1.latencyCycles;
            }
            if (++burstDone_ >= item_.burst)
                break;
            if (storeQueueUsed_ >= config_.storeQueueDepth) {
                // A victim writeback filled the queue mid-burst: let
                // the banked hit cycles elapse, then re-enter; the
                // entry check stalls if it is still full.
                stats_.memAccessCycles += acc;
                busySinceSample_ += cyclesToTicks(acc);
                eventQueue().reschedule(&stepEvent_, clockEdge(acc));
                return;
            }
        }
        stats_.memAccessCycles += acc;
        busySinceSample_ += cyclesToTicks(acc);
        haveItem_ = false;
        eventQueue().reschedule(&stepEvent_, clockEdge(acc));
        return;
      }
    }
    panic("%s: unreachable trace item kind", name_.c_str());
}

void
ProcessingElement::stepStoreNoAllocate()
{
    // Walk the burst's words; contiguous missed stores merge into
    // one posted write (one store-queue slot, one MCU request) so a
    // coalesced burst crosses the PE-controller boundary once.
    Cycles acc = 0;
    std::uint64_t runStart = 0;
    std::uint32_t runWords = 0;
    auto flush_run = [&]() {
        if (runWords == 0)
            return;
        ++storeQueueUsed_;
        ++stats_.missedStoreWrites;
        mcu_->write(runStart, item_.size * runWords,
                    [this](Tick when) { storeDrained(when); });
        runWords = 0;
    };
    while (burstDone_ < item_.burst) {
        std::uint64_t addr =
            item_.addr + std::uint64_t(burstDone_) * item_.size;
        CacheAccessResult r1 = l1_.access(addr, true, false);
        CacheAccessResult r2 =
            r1.hit ? r1 : l2_.access(addr, true, false);
        if (r1.hit || r2.hit) {
            flush_run();
            ++stats_.stores;
            acc += r1.hit ? config_.l1.latencyCycles
                          : config_.l2.latencyCycles;
            ++burstDone_;
            continue;
        }
        // Missed store: bypass the caches, drain through the store
        // queue. Extending the open run costs no extra slot; opening
        // one needs a free slot.
        if (runWords == 0 &&
            storeQueueUsed_ >= config_.storeQueueDepth) {
            if (acc > 0) {
                // Let the banked cycles elapse; the entry check
                // stalls on re-entry if the queue is still full.
                stats_.memAccessCycles += acc;
                busySinceSample_ += cyclesToTicks(acc);
                eventQueue().reschedule(&stepEvent_, clockEdge(acc));
                return;
            }
            waitingStore_ = true;
            stallStart_ = curTick();
            return; // resumes when a queued store completes
        }
        if (runWords == 0)
            runStart = addr;
        ++runWords;
        ++stats_.stores;
        acc += Cycles(1);
        ++burstDone_;
    }
    flush_run();
    stats_.memAccessCycles += acc;
    busySinceSample_ += cyclesToTicks(acc);
    haveItem_ = false;
    eventQueue().reschedule(&stepEvent_, clockEdge(std::max<Cycles>(
        Cycles(1), acc)));
}

void
ProcessingElement::postWrite(std::uint64_t addr, std::uint32_t size)
{
    // Writebacks are posted but bounded: the core pauses at the next
    // step when the queue is full, exposing the backend's write
    // bandwidth as backpressure.
    ++storeQueueUsed_;
    ++stats_.writebackWrites;
    if (auto *t = trace::current()) {
        t->counter(trace::catAccel, name_, "storeQueueUsed",
                   curTick(), double(storeQueueUsed_));
    }
    mcu_->write(addr, size,
                [this](Tick when) { storeDrained(when); });
}

void
ProcessingElement::loadReturned(Tick when)
{
    panic_if(!waitingLoad_, "%s: spurious load return",
             name_.c_str());
    waitingLoad_ = false;
    stats_.loadStallTicks += when - stallStart_;
    if (auto *t = trace::current())
        t->complete(trace::catAccel, name_, "stall.load", stallStart_,
                    when);
    if (pendingWbValid_) {
        postWrite(pendingWbAddr_, config_.l2.blockBytes);
        pendingWbValid_ = false;
    }
    // The L1/L2 tag state was updated when the miss was detected; the
    // returning fill only costs the L2 access latency here. A
    // mid-burst miss keeps the item live so the walk resumes at the
    // next word.
    Cycles c = config_.l2.latencyCycles;
    stats_.memAccessCycles += c;
    busySinceSample_ += cyclesToTicks(c);
    haveItem_ = burstDone_ < item_.burst;
    eventQueue().reschedule(&stepEvent_, clockEdge(c));
}

void
ProcessingElement::storeDrained(Tick when)
{
    panic_if(storeQueueUsed_ == 0, "%s: store queue underflow",
             name_.c_str());
    --storeQueueUsed_;
    if (auto *t = trace::current()) {
        t->counter(trace::catAccel, name_, "storeQueueUsed", when,
                   double(storeQueueUsed_));
    }
    if (waitingStore_) {
        waitingStore_ = false;
        stats_.storeStallTicks += when - stallStart_;
        if (auto *t = trace::current())
            t->complete(trace::catAccel, name_, "stall.store",
                        stallStart_, when);
        eventQueue().reschedule(&stepEvent_, clockEdge());
    }
    if (traceExhausted_)
        maybeFinish();
}

void
ProcessingElement::maybeFinish()
{
    if (!traceExhausted_ || !flushQueue_.empty() ||
        storeQueueUsed_ > 0 || waitingLoad_ || finished_) {
        return;
    }
    running_ = false;
    finished_ = true;
    if (auto *t = trace::current()) {
        t->complete(trace::catAccel, name_, "kernel", runStart_,
                    curTick());
    }
    DPRINTF("PE", "kernel complete: %llu instructions",
            (unsigned long long)stats_.instructions);
    if (onDone_)
        onDone_();
}

double
ProcessingElement::drainActivitySample()
{
    Tick now = curTick();
    Tick span = now - lastSampleTick_;
    double frac =
        span == 0 ? 0.0
                  : std::min(1.0, double(busySinceSample_) /
                                      double(span));
    busySinceSample_ = 0;
    lastSampleTick_ = now;
    return frac;
}

std::uint64_t
ProcessingElement::drainInstructionSample()
{
    std::uint64_t delta = stats_.instructions - instrAtSample_;
    instrAtSample_ = stats_.instructions;
    return delta;
}

} // namespace accel
} // namespace dramless
