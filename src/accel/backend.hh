/**
 * @file
 * Memory backend interface the accelerator's MCU drives.
 *
 * Concrete backends (src/systems) adapt the PRAM subsystem, the
 * embedded SSDs with their page buffers, or the NOR-interface PRAM to
 * this interface, so the same accelerator model runs over every
 * storage organization of Table I.
 */

#ifndef DRAMLESS_ACCEL_BACKEND_HH
#define DRAMLESS_ACCEL_BACKEND_HH

#include <cstdint>
#include <functional>

#include "sim/ticks.hh"

namespace dramless
{
namespace accel
{

/** Asynchronous byte-addressed memory service. */
class MemoryBackend
{
  public:
    using Callback = std::function<void(std::uint64_t id, Tick when)>;

    virtual ~MemoryBackend() = default;

    /** Register the completion callback (one consumer: the MCU). */
    virtual void setCallback(Callback cb) = 0;

    /** @return true when a request of @p size can be admitted now. */
    virtual bool canAccept(std::uint32_t size) const = 0;

    /**
     * Admit a request. @return an id passed to the callback when the
     * request completes.
     */
    virtual std::uint64_t submit(std::uint64_t addr,
                                 std::uint32_t size, bool is_write) = 0;

    /** Advisory hint that [addr, addr+size) will be overwritten. */
    virtual void
    hintFutureWrite(std::uint64_t addr, std::uint64_t size)
    {
        (void)addr;
        (void)size;
    }

    /** @return backing capacity in bytes. */
    virtual std::uint64_t capacity() const = 0;
};

} // namespace accel
} // namespace dramless

#endif // DRAMLESS_ACCEL_BACKEND_HH
