/**
 * @file
 * Power/sleep controller (PSC) of the accelerator (Figure 6a).
 *
 * The server suspends and resumes agent PEs through the PSC when
 * scheduling kernels. The model tracks per-PE power states over time
 * so the energy model can integrate state residency.
 */

#ifndef DRAMLESS_ACCEL_PSC_HH
#define DRAMLESS_ACCEL_PSC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace accel
{

/** PE power states the PSC manages. */
enum class PowerState : std::uint8_t
{
    off = 0,
    sleep = 1,
    active = 2,
};

/** Per-PE power-state residency tracker. */
class PowerSleepController
{
  public:
    explicit PowerSleepController(std::uint32_t num_pes)
        : states_(num_pes, PowerState::sleep),
          lastChange_(num_pes, 0)
    {
        for (auto &r : residency_)
            r.assign(num_pes, 0);
    }

    /** @return the current state of PE @p pe. */
    PowerState
    state(std::uint32_t pe) const
    {
        return states_.at(pe);
    }

    /** Transition PE @p pe to @p next at tick @p when. */
    void
    setState(std::uint32_t pe, PowerState next, Tick when)
    {
        panic_if(pe >= states_.size(), "PSC: PE out of range");
        panic_if(when < lastChange_[pe],
                 "PSC: transition before the previous one");
        residency_[std::size_t(states_[pe])][pe] +=
            when - lastChange_[pe];
        states_[pe] = next;
        lastChange_[pe] = when;
    }

    /** Close the books at @p when and return residency of @p pe in
     *  @p s, in ticks. */
    Tick
    residency(std::uint32_t pe, PowerState s, Tick when) const
    {
        Tick total = residency_[std::size_t(s)].at(pe);
        if (states_[pe] == s && when > lastChange_[pe])
            total += when - lastChange_[pe];
        return total;
    }

    /** @return number of PEs managed. */
    std::uint32_t numPes() const
    {
        return std::uint32_t(states_.size());
    }

  private:
    std::vector<PowerState> states_;
    std::vector<Tick> lastChange_;
    std::array<std::vector<Tick>, 3> residency_;
};

} // namespace accel
} // namespace dramless

#endif // DRAMLESS_ACCEL_PSC_HH
