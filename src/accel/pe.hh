/**
 * @file
 * Processing element model (Figure 6b).
 *
 * A PE is a 1 GHz eight-functional-unit VLIW/SIMD core (2x .M, .L,
 * .S, .D) with private L1 and L2 caches. Agents are trace-driven:
 * compute bursts retire at the configured effective issue rate,
 * loads walk L1/L2 and stall the core on an L2 miss until the server
 * MCU returns the 512-byte block, and stores use a no-write-allocate
 * store queue whose backpressure exposes the backend's write latency.
 */

#ifndef DRAMLESS_ACCEL_PE_HH
#define DRAMLESS_ACCEL_PE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "accel/cache.hh"
#include "accel/mcu.hh"
#include "accel/trace.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"

namespace dramless
{
namespace accel
{

/** PE parameters. */
struct PeConfig
{
    /** Core clock (TI C6678-class: 1 GHz). */
    Tick clockPeriod = periodFromGhz(1.0);
    /** Sustained functional-unit operations per cycle with the DSP
     *  intrinsics the paper embeds (peak is 8). */
    double effectiveIssue = 4.0;
    CacheConfig l1 = CacheConfig::l1Default();
    CacheConfig l2 = CacheConfig::l2Default();
    /**
     * Allocate L2 lines on store misses (TI C66x behaviour). Misses
     * then fetch the block like loads and dirty lines write back at
     * block granularity. When false, missed stores bypass the caches
     * and drain through the store queue at operand granularity.
     */
    bool writeAllocate = true;
    /** Outstanding posted writes (missed stores + writebacks) before
     *  the core stalls. */
    std::uint32_t storeQueueDepth = 16;
};

/** PE execution counters. */
struct PeStats
{
    std::uint64_t instructions = 0;
    std::uint64_t computeCycles = 0;
    std::uint64_t memAccessCycles = 0;
    std::uint64_t loadStallTicks = 0;
    std::uint64_t storeStallTicks = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l2MissReads = 0;
    std::uint64_t missedStoreWrites = 0;
    std::uint64_t writebackWrites = 0;
};

/**
 * One trace-driven processing element. The owner wires it to the
 * server's MCU, hands it a TraceSource and starts it (after the PSC
 * wake sequence); `onDone` fires when the trace is exhausted and all
 * of the PE's stores have drained.
 */
class ProcessingElement : public Clocked
{
  public:
    ProcessingElement(EventQueue &eq, const PeConfig &config,
                      std::string name);

    /** Wire the server MCU this PE's L2 misses flow through. */
    void attachMcu(Mcu *mcu) { mcu_ = mcu; }

    /** Hand the PE its kernel trace (before start()). */
    void setTrace(TraceSource *trace);

    /** Completion hook. */
    void setOnDone(std::function<void()> cb) { onDone_ = std::move(cb); }

    /** Begin execution at tick @p when (>= now). */
    void start(Tick when);

    /** @return true while executing a trace. */
    bool running() const { return running_; }
    /** @return true when the trace has fully retired. */
    bool finished() const { return finished_; }

    /** Drop cache contents (between kernels). */
    void invalidateCaches();

    const PeStats &peStats() const { return stats_; }
    const CacheStats &l1Stats() const { return l1_.cacheStats(); }
    const CacheStats &l2Stats() const { return l2_.cacheStats(); }
    const PeConfig &config() const { return config_; }
    const std::string &name() const { return name_; }

    /**
     * Instantaneous activity fraction in [0,1] since the last call:
     * used by the power model's sampling.
     */
    double drainActivitySample();

    /** Instructions retired since the last IPC sample. */
    std::uint64_t drainInstructionSample();

  private:
    /** Advance the trace until the core blocks or time must pass. */
    void step();
    /** Resume after an L2 miss fill arrives. */
    void loadReturned(Tick when);
    /** Handle a store under the no-write-allocate policy. */
    void stepStoreNoAllocate();
    /** Post a write to the backend with store-queue accounting. */
    void postWrite(std::uint64_t addr, std::uint32_t size);
    /** Resume after a missed store drains from the queue. */
    void storeDrained(Tick when);
    /** Handle an L2 fill including any dirty writeback. */
    void fillL2(std::uint64_t addr, bool is_write);
    /** Trace exhausted: wait for stores, then report. */
    void maybeFinish();

    PeConfig config_;
    std::string name_;
    SetAssocCache l1_;
    SetAssocCache l2_;
    Mcu *mcu_ = nullptr;
    TraceSource *trace_ = nullptr;
    std::function<void()> onDone_;

    bool running_ = false;
    bool finished_ = false;
    bool waitingLoad_ = false;
    bool waitingStore_ = false;
    bool traceExhausted_ = false;
    TraceItem item_;
    bool haveItem_ = false;
    /** Words of the current memory item already issued; a burst item
     *  retires once burstDone_ == item_.burst. */
    std::uint32_t burstDone_ = 0;
    /** Dirty blocks awaiting the end-of-kernel flush to storage. */
    std::deque<std::pair<std::uint64_t, std::uint32_t>> flushQueue_;
    std::uint32_t storeQueueUsed_ = 0;
    bool pendingWbValid_ = false;
    std::uint64_t pendingWbAddr_ = 0;
    Tick stallStart_ = 0;
    Tick lastSampleTick_ = 0;
    Tick busySinceSample_ = 0;
    Tick runStart_ = 0;
    std::uint64_t instrAtSample_ = 0;
    PeStats stats_;
    MemberEvent<ProcessingElement, &ProcessingElement::step>
        stepEvent_;
};

} // namespace accel
} // namespace dramless

#endif // DRAMLESS_ACCEL_PE_HH
