/**
 * @file
 * The multi-PE accelerator and its kernel offload/execution model
 * (Figures 6, 8, 9b, 10).
 *
 * One PE is designated the server: it receives the host's PCIe
 * interrupt, downloads the kernel image into the memory backend,
 * schedules agents through the PSC (sleep, store boot address, wake),
 * and owns the MCU that services every agent's L2 misses. The
 * remaining PEs are agents executing the offloaded kernel traces.
 */

#ifndef DRAMLESS_ACCEL_ACCELERATOR_HH
#define DRAMLESS_ACCEL_ACCELERATOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/backend.hh"
#include "accel/mcu.hh"
#include "accel/pe.hh"
#include "accel/psc.hh"
#include "sim/event_pool.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace dramless
{
namespace accel
{

/** Accelerator construction parameters. */
struct AcceleratorConfig
{
    /** PEs including the server (paper platform: 8). */
    std::uint32_t numPes = 8;
    PeConfig pe;
    McuConfig mcu;
    /** PCIe interrupt delivery to the server (Figure 9b step 1). */
    Tick hostInterruptLatency = fromUs(2);
    /** PSC suspend latency per agent (step 3). */
    Tick agentSleepLatency = fromUs(5);
    /** Storing the boot/magic address into the agent's L2 (step 4). */
    Tick bootAddressStoreLatency = fromNs(500);
    /** PSC resume latency per agent (step 5). */
    Tick agentWakeLatency = fromUs(20);
    /** Chunk size for image download / boot reads. */
    std::uint32_t imageChunkBytes = 512;
    /** IPC / activity sampling period. */
    Tick sampleInterval = fromUs(20);
};

/** One kernel offload request. */
struct KernelLaunch
{
    /** Per-agent traces; at most numPes-1 entries. */
    std::vector<TraceSource *> agentTraces;
    /** Kernel image size shipped to the accelerator. */
    std::uint64_t imageBytes = 64 * 1024;
    /** Backend address the image is downloaded to. */
    std::uint64_t imageBase = 0;
    /** Skip the download (image already resident). */
    bool imageResident = false;
    /** Agents already hold this kernel (streaming re-launch over a
     *  new data chunk): skip the PSC suspend/boot-address/resume
     *  sequence and the boot-image reads. */
    bool agentsResident = false;
    /** Output regions: selective-erasing hints issued while the
     *  server loads the kernel (Section V-A). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> outputRegions;
};

/** Aggregate run metrics of one launch. */
struct LaunchMetrics
{
    Tick interruptAt = 0;
    Tick imageDownloadedAt = 0;
    Tick firstAgentStartAt = 0;
    Tick completedAt = 0;
    std::uint64_t totalInstructions = 0;
};

/** The accelerator. */
class Accelerator
{
  public:
    Accelerator(EventQueue &eq, const AcceleratorConfig &config,
                std::string name);

    /** Wire the storage backend into the server's MCU. */
    void attachBackend(MemoryBackend *backend);

    /**
     * Offload and execute a kernel (the host-side pushData of
     * Figure 10 lands here). @p on_complete fires when every agent
     * has retired its trace and drained its stores.
     */
    void launch(const KernelLaunch &launch,
                std::function<void(Tick)> on_complete);

    /** @return true while a launch is in progress. */
    bool busy() const { return busy_; }

    /** @return agents available for kernels. */
    std::uint32_t numAgents() const
    {
        return std::uint32_t(agents_.size());
    }

    /** @return agent @p i. */
    ProcessingElement &agent(std::uint32_t i) { return *agents_.at(i); }
    const ProcessingElement &agent(std::uint32_t i) const
    {
        return *agents_.at(i);
    }

    /** Drop every agent's cache contents (between data chunks or
     *  kernels whose address space is reused). */
    void
    invalidateAgentCaches()
    {
        for (auto &pe : agents_)
            pe->invalidateCaches();
    }

    /** @return the server's MCU. */
    Mcu &mcu() { return *mcu_; }
    const Mcu &mcu() const { return *mcu_; }

    /** @return the power/sleep controller. */
    const PowerSleepController &psc() const { return psc_; }

    /** Total-IPC time series (Figures 18/19): instructions retired by
     *  all agents per core-cycle, sampled each sampleInterval. */
    const stats::TimeSeries &ipcSeries() const { return ipcSeries_; }

    /** Mean agent activity fraction per sample (power model input). */
    const stats::TimeSeries &activitySeries() const
    {
        return activitySeries_;
    }

    /** @return metrics of the most recent (or current) launch. */
    const LaunchMetrics &metrics() const { return metrics_; }

    const AcceleratorConfig &config() const { return config_; }
    const std::string &name() const { return name_; }

  private:
    /** Server step: download the next image chunk(s). */
    void downloadImage();
    /** Server step: wake agents one by one through the PSC. */
    void scheduleNextAgent();
    /** Boot one agent: read its image chunks, then start it. */
    void bootAgent(std::uint32_t idx, Tick ready_at);
    /** An agent retired its trace. */
    void agentDone();
    /** Periodic IPC/activity sampling. */
    void sample();

    EventQueue &eventq_;
    AcceleratorConfig config_;
    std::string name_;
    std::unique_ptr<Mcu> mcu_;
    std::vector<std::unique_ptr<ProcessingElement>> agents_;
    PowerSleepController psc_;
    MemoryBackend *backend_ = nullptr;

    bool busy_ = false;
    KernelLaunch current_;
    std::function<void(Tick)> onComplete_;
    std::uint32_t activeAgents_ = 0;
    std::uint32_t agentsDone_ = 0;
    std::uint32_t nextAgentToSchedule_ = 0;
    std::uint64_t imageChunksLeft_ = 0;
    Tick lastSampleTick_ = 0;
    LaunchMetrics metrics_;
    stats::TimeSeries ipcSeries_{"totalIpc"};
    stats::TimeSeries activitySeries_{"agentActivity"};
    MemberEvent<Accelerator, &Accelerator::scheduleNextAgent>
        serverEvent_;
    MemberEvent<Accelerator, &Accelerator::sample> sampleEvent_;
    MemberEvent<Accelerator, &Accelerator::downloadImage> imageEvent_;
    /** Per-agent boot callbacks: recycled instead of accumulating a
     *  heap wrapper per boot across launches. */
    EventPool bootPool_;
};

} // namespace accel
} // namespace dramless

#endif // DRAMLESS_ACCEL_ACCELERATOR_HH
