/**
 * @file
 * Component energy parameters and accounting.
 *
 * Each full-system model computes an EnergyBreakdown from its
 * components' activity counters after a run; Figures 17, 20 and 21
 * aggregate these. The parameters are engineering estimates for the
 * technologies of Table I, chosen so the *relative* costs match the
 * paper's observations (host stack dominates Hetero; DRAM pollution
 * costs the page-granule systems; DRAM-less spends its energy in the
 * PRAM and the PEs).
 */

#ifndef DRAMLESS_ENERGY_ENERGY_MODEL_HH
#define DRAMLESS_ENERGY_ENERGY_MODEL_HH

#include <cstdint>
#include <string>

#include "sim/ticks.hh"

namespace dramless
{
namespace energy
{

/** Per-component energy/power parameters. */
struct EnergyParams
{
    /** @name Accelerator PEs (TI C6678-class, per core) @{ */
    double peActiveWatts = 1.2;
    double peStallWatts = 0.45;
    double peSleepWatts = 0.05;
    /** Server PE + MCU + crossbar overhead while the accelerator is
     *  powered. */
    double uncoreWatts = 0.8;
    /** @} */

    /** @name PRAM (3x nm multi-partition) @{ */
    double pramReadPicojoulePerBit = 2.0;
    double pramSetPicojoulePerBit = 18.0;
    double pramResetPicojoulePerBit = 12.0;
    double pramIdleWattsPerModule = 0.003;
    /** FPGA controller + PHY static power per channel. */
    double fpgaCtrlWattsPerChannel = 0.5;
    /** @} */

    /** @name Flash / SSD @{ */
    double flashReadMicrojoulePerPage = 28.0;
    double flashProgramMicrojoulePerPage = 160.0;
    double flashEraseMicrojoulePerBlock = 260.0;
    /** SSD controller + firmware cores while busy. */
    double ssdControllerWatts = 2.5;
    /** Internal DRAM buffer: access energy and standby power. */
    double dramPicojoulePerByte = 45.0;
    double dramStandbyWattsPerGig = 0.25;
    /** @} */

    /** @name NOR-interface PRAM @{ */
    double norReadNanojoulePerByte = 0.4;
    double norWriteNanojoulePerByte = 45.0;
    /** @} */

    /** @name Host @{ */
    double hostActiveWatts = 65.0;
    double hostIdleWatts = 8.0;
    /** Host CPU presence while it coordinates a heterogeneous run
     *  (chunk scheduling, driver work, completion polling) — the
     *  cost the integrated systems avoid entirely because "the host
     *  can process other tasks" (Section IV). */
    double hostCoordinationWatts = 5.0;
    double pciePicojoulePerByte = 35.0;
    /** @} */

    static EnergyParams paperDefault() { return EnergyParams{}; }
};

/** Energy totals by architectural category, in joules. */
struct EnergyBreakdown
{
    /** Host CPU time spent in the storage/software stack. */
    double hostStack = 0.0;
    /** PCIe transfer energy. */
    double pcie = 0.0;
    /** Agent + server PE cores. */
    double accelCores = 0.0;
    /** Internal/external DRAM buffers. */
    double dram = 0.0;
    /** NVM media: flash or PRAM array operations. */
    double storageMedia = 0.0;
    /** Storage controllers: SSD firmware cores or the FPGA PRAM
     *  controller. */
    double controller = 0.0;

    double
    total() const
    {
        return hostStack + pcie + accelCores + dram + storageMedia +
               controller;
    }

    EnergyBreakdown &
    operator+=(const EnergyBreakdown &o)
    {
        hostStack += o.hostStack;
        pcie += o.pcie;
        accelCores += o.accelCores;
        dram += o.dram;
        storageMedia += o.storageMedia;
        controller += o.controller;
        return *this;
    }
};

/** @return joules from @p watts sustained over @p ticks. */
inline double
wattsOver(double watts, Tick ticks)
{
    return watts * toSec(ticks);
}

/** @return joules for @p bits at @p pj_per_bit. */
inline double
perBit(double pj_per_bit, std::uint64_t bits)
{
    return pj_per_bit * double(bits) * 1e-12;
}

/** @return joules for @p bytes at @p pj_per_byte. */
inline double
perByte(double pj_per_byte, std::uint64_t bytes)
{
    return pj_per_byte * double(bytes) * 1e-12;
}

} // namespace energy
} // namespace dramless

#endif // DRAMLESS_ENERGY_ENERGY_MODEL_HH
