/**
 * @file
 * Sparse functional backing store.
 *
 * Device models (PRAM, flash, DRAM buffers) expose capacities in the
 * gigabyte range; a dense allocation would be wasteful for timing
 * simulations that touch a fraction of the space. SparseMemory allocates
 * fixed-size blocks on first write and reads zeros elsewhere.
 */

#ifndef DRAMLESS_SIM_SPARSE_MEMORY_HH
#define DRAMLESS_SIM_SPARSE_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"

namespace dramless
{

/** Byte-addressable sparse memory with copy-on-write block allocation. */
class SparseMemory
{
  public:
    /**
     * @param capacity_bytes addressable size; accesses beyond it panic
     * @param block_bytes allocation granule (power of two)
     */
    explicit SparseMemory(std::uint64_t capacity_bytes,
                          std::uint32_t block_bytes = 4096)
        : capacity_(capacity_bytes), blockBytes_(block_bytes)
    {
        panic_if(block_bytes == 0 || (block_bytes & (block_bytes - 1)),
                 "block size must be a power of two");
    }

    /** @return addressable capacity in bytes. */
    std::uint64_t capacity() const { return capacity_; }

    /** Read @p len bytes at @p addr into @p out. */
    void
    read(std::uint64_t addr, void *out, std::uint64_t len) const
    {
        checkRange(addr, len);
        auto *dst = static_cast<std::uint8_t *>(out);
        while (len > 0) {
            std::uint64_t block = addr / blockBytes_;
            std::uint32_t off = std::uint32_t(addr % blockBytes_);
            std::uint64_t chunk = std::min<std::uint64_t>(
                len, blockBytes_ - off);
            auto it = blocks_.find(block);
            if (it == blocks_.end())
                std::memset(dst, 0, chunk);
            else
                std::memcpy(dst, it->second.data() + off, chunk);
            dst += chunk;
            addr += chunk;
            len -= chunk;
        }
    }

    /** Write @p len bytes from @p src to @p addr. */
    void
    write(std::uint64_t addr, const void *src, std::uint64_t len)
    {
        checkRange(addr, len);
        auto *s = static_cast<const std::uint8_t *>(src);
        while (len > 0) {
            std::uint64_t block = addr / blockBytes_;
            std::uint32_t off = std::uint32_t(addr % blockBytes_);
            std::uint64_t chunk = std::min<std::uint64_t>(
                len, blockBytes_ - off);
            auto &data = blocks_[block];
            if (data.empty())
                data.assign(blockBytes_, 0);
            std::memcpy(data.data() + off, s, chunk);
            s += chunk;
            addr += chunk;
            len -= chunk;
        }
    }

    /** Fill @p len bytes at @p addr with @p value. */
    void
    fill(std::uint64_t addr, std::uint8_t value, std::uint64_t len)
    {
        checkRange(addr, len);
        while (len > 0) {
            std::uint64_t block = addr / blockBytes_;
            std::uint32_t off = std::uint32_t(addr % blockBytes_);
            std::uint64_t chunk = std::min<std::uint64_t>(
                len, blockBytes_ - off);
            if (value == 0 && off == 0 && chunk == blockBytes_) {
                blocks_.erase(block);
            } else {
                auto &data = blocks_[block];
                if (data.empty())
                    data.assign(blockBytes_, 0);
                std::memset(data.data() + off, value, chunk);
            }
            addr += chunk;
            len -= chunk;
        }
    }

    /** @return number of blocks physically allocated. */
    std::size_t allocatedBlocks() const { return blocks_.size(); }

  private:
    void
    checkRange(std::uint64_t addr, std::uint64_t len) const
    {
        panic_if(addr + len > capacity_ || addr + len < addr,
                 "sparse memory access [%llx, +%llu) out of range",
                 (unsigned long long)addr, (unsigned long long)len);
    }

    std::uint64_t capacity_;
    std::uint32_t blockBytes_;
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> blocks_;
};

} // namespace dramless

#endif // DRAMLESS_SIM_SPARSE_MEMORY_HH
