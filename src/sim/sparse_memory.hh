/**
 * @file
 * Sparse functional backing store.
 *
 * Device models (PRAM, flash, DRAM buffers) expose capacities in the
 * gigabyte range; a dense allocation would be wasteful for timing
 * simulations that touch a fraction of the space. SparseMemory allocates
 * fixed-size blocks on first write and reads zeros elsewhere.
 *
 * Accesses are strongly block-local (row-buffer bursts walk a 4 KiB
 * block in 32-byte pieces), so a one-entry MRU cache in front of the
 * hash lookup turns almost every access into a pointer compare.
 */

#ifndef DRAMLESS_SIM_SPARSE_MEMORY_HH
#define DRAMLESS_SIM_SPARSE_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"

namespace dramless
{

/** Byte-addressable sparse memory with copy-on-write block allocation. */
class SparseMemory
{
  public:
    /**
     * @param capacity_bytes addressable size; accesses beyond it panic
     * @param block_bytes allocation granule (power of two)
     */
    explicit SparseMemory(std::uint64_t capacity_bytes,
                          std::uint32_t block_bytes = 4096)
        : capacity_(capacity_bytes), blockBytes_(block_bytes)
    {
        panic_if(block_bytes == 0 || (block_bytes & (block_bytes - 1)),
                 "block size must be a power of two");
    }

    /** @return addressable capacity in bytes. */
    std::uint64_t capacity() const { return capacity_; }

    /**
     * Pre-size the block table for @p bytes of expected traffic,
     * avoiding rehashes (which are pure overhead on the hot path)
     * while the working set grows to that size.
     */
    void
    reserve(std::uint64_t bytes)
    {
        blocks_.reserve(std::size_t(
            (bytes + blockBytes_ - 1) / blockBytes_));
    }

    /** Read @p len bytes at @p addr into @p out. */
    void
    read(std::uint64_t addr, void *out, std::uint64_t len) const
    {
        checkRange(addr, len);
        auto *dst = static_cast<std::uint8_t *>(out);
        while (len > 0) {
            std::uint64_t block = addr / blockBytes_;
            std::uint32_t off = std::uint32_t(addr % blockBytes_);
            std::uint64_t chunk = std::min<std::uint64_t>(
                len, blockBytes_ - off);
            const std::vector<std::uint8_t> *data = findBlock(block);
            if (data == nullptr)
                std::memset(dst, 0, chunk);
            else
                std::memcpy(dst, data->data() + off, chunk);
            dst += chunk;
            addr += chunk;
            len -= chunk;
        }
    }

    /** Write @p len bytes from @p src to @p addr. */
    void
    write(std::uint64_t addr, const void *src, std::uint64_t len)
    {
        checkRange(addr, len);
        auto *s = static_cast<const std::uint8_t *>(src);
        while (len > 0) {
            std::uint64_t block = addr / blockBytes_;
            std::uint32_t off = std::uint32_t(addr % blockBytes_);
            std::uint64_t chunk = std::min<std::uint64_t>(
                len, blockBytes_ - off);
            std::memcpy(materializeBlock(block).data() + off, s,
                        chunk);
            s += chunk;
            addr += chunk;
            len -= chunk;
        }
    }

    /** Fill @p len bytes at @p addr with @p value. */
    void
    fill(std::uint64_t addr, std::uint8_t value, std::uint64_t len)
    {
        checkRange(addr, len);
        while (len > 0) {
            std::uint64_t block = addr / blockBytes_;
            std::uint32_t off = std::uint32_t(addr % blockBytes_);
            std::uint64_t chunk = std::min<std::uint64_t>(
                len, blockBytes_ - off);
            if (value == 0 && off == 0 && chunk == blockBytes_) {
                if (mruBlock_ == block)
                    mruData_ = nullptr;
                blocks_.erase(block);
            } else {
                std::memset(materializeBlock(block).data() + off,
                            value, chunk);
            }
            addr += chunk;
            len -= chunk;
        }
    }

    /** @return number of blocks physically allocated. */
    std::size_t allocatedBlocks() const { return blocks_.size(); }

  private:
    void
    checkRange(std::uint64_t addr, std::uint64_t len) const
    {
        panic_if(addr + len > capacity_ || addr + len < addr,
                 "sparse memory access [%llx, +%llu) out of range",
                 (unsigned long long)addr, (unsigned long long)len);
    }

    /** @return the block's storage, or null when never written. */
    const std::vector<std::uint8_t> *
    findBlock(std::uint64_t block) const
    {
        if (block == mruBlock_)
            return mruData_;
        auto it = blocks_.find(block);
        // Cache misses too: repeated reads of an untouched block
        // (zeros) shouldn't re-probe the hash table every burst.
        mruBlock_ = block;
        mruData_ = it == blocks_.end() ? nullptr : &it->second;
        return mruData_;
    }

    /** @return the block's storage, allocating it zeroed if absent. */
    std::vector<std::uint8_t> &
    materializeBlock(std::uint64_t block)
    {
        if (block == mruBlock_ && mruData_ != nullptr)
            return const_cast<std::vector<std::uint8_t> &>(*mruData_);
        auto &data = blocks_[block];
        if (data.empty())
            data.assign(blockBytes_, 0);
        // Map values are node-stable, so caching the pointer is safe
        // until this exact block is erased (fill() invalidates then).
        mruBlock_ = block;
        mruData_ = &data;
        return data;
    }

    std::uint64_t capacity_;
    std::uint32_t blockBytes_;
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> blocks_;
    mutable std::uint64_t mruBlock_ = ~std::uint64_t(0);
    mutable const std::vector<std::uint8_t> *mruData_ = nullptr;
};

} // namespace dramless

#endif // DRAMLESS_SIM_SPARSE_MEMORY_HH
