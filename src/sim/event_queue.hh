/**
 * @file
 * Deterministic event-driven simulation kernel.
 *
 * Events are ordered by (tick, priority, insertion sequence), so two runs
 * of the same configuration always interleave events identically.
 */

#ifndef DRAMLESS_SIM_EVENT_QUEUE_HH
#define DRAMLESS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/ticks.hh"

namespace dramless
{

class EventQueue;

/**
 * Base class for schedulable events. An event may be scheduled on at most
 * one queue at a time; the owner is responsible for keeping the event
 * alive while it is scheduled.
 */
class Event
{
  public:
    /** Lower values are processed first among events at the same tick. */
    static constexpr int defaultPriority = 0;
    /** Priority for bookkeeping that must run before device activity. */
    static constexpr int highPriority = -10;
    /** Priority for stat sampling that must observe a settled tick. */
    static constexpr int lowPriority = 10;

    virtual ~Event();

    /** Callback invoked when the event's tick is reached. */
    virtual void process() = 0;

    /** @return a short diagnostic name. */
    virtual std::string name() const { return "event"; }

    /** @return true while the event sits on a queue. */
    bool scheduled() const { return _scheduled; }

    /** @return the tick the event is scheduled for. */
    Tick when() const { return _when; }

    /** @return the event's current same-tick priority. */
    int priority() const { return _priority; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    int _priority = defaultPriority;
    std::uint64_t _seq = 0;
    bool _scheduled = false;
    /** The queue the event is scheduled on (null while idle). */
    EventQueue *_queue = nullptr;
};

/** An event that invokes a bound callable; convenient for members. */
class EventFunctionWrapper : public Event
{
  public:
    /**
     * @param callback invoked at the scheduled tick
     * @param name diagnostic name
     */
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name = "anon")
        : callback_(std::move(callback)), name_(std::move(name))
    {}

    void process() override { callback_(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

/**
 * The event queue. Maintains current simulated time and processes events
 * in deterministic order.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** @return the current simulated tick. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p ev at absolute tick @p when.
     * @pre the event is not already scheduled and when >= curTick().
     */
    void schedule(Event *ev, Tick when, int priority = 0);

    /**
     * Remove a scheduled event from the queue.
     * @pre the event is scheduled, and scheduled on this queue.
     */
    void deschedule(Event *ev);

    /**
     * Move a scheduled (or idle) event to a new tick; scheduling an
     * idle event to the current tick is explicitly supported. The
     * when >= curTick() precondition is checked before any state
     * changes, so a precondition failure never half-updates the
     * event.
     * @pre when >= curTick(), and if the event is scheduled it is
     *      scheduled on this queue.
     */
    void reschedule(Event *ev, Tick when, int priority = 0);

    /** @return true when no events remain pending. */
    bool empty() const { return numPending_ == 0; }

    /** @return number of pending (live) events. */
    std::size_t numPending() const { return numPending_; }

    /** @return the tick of the earliest pending event, or maxTick. */
    Tick nextTick() const;

    /** Process a single event. @return false when the queue was empty. */
    bool step();

    /** Process every event scheduled at tick <= @p t; curTick ends at t. */
    void runUntil(Tick t);

    /** Process events until the queue drains. */
    void run();

    /**
     * Process events until the queue drains or @p limit events have been
     * handled. @return the number of events processed.
     */
    std::uint64_t run(std::uint64_t limit);

    /** Total number of events processed since construction. */
    std::uint64_t numProcessed() const { return numProcessed_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return seq > other.seq;
        }
    };

    /**
     * Pop stale (descheduled/rescheduled) entries off the heap top.
     * Staleness is tracked by sequence number in staleSeqs_, never by
     * dereferencing the entry's event: a descheduled event may be
     * destroyed before its lazy heap entry surfaces.
     */
    void skipStale() const;

    mutable std::priority_queue<Entry, std::vector<Entry>,
                                std::greater<Entry>>
        heap_;
    /** Sequence numbers of lazily-removed heap entries. */
    mutable std::unordered_set<std::uint64_t> staleSeqs_;
    Tick _curTick = 0;
    std::uint64_t nextSeq_ = 1;
    std::size_t numPending_ = 0;
    std::uint64_t numProcessed_ = 0;
};

} // namespace dramless

#endif // DRAMLESS_SIM_EVENT_QUEUE_HH
