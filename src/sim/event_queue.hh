/**
 * @file
 * Deterministic event-driven simulation kernel.
 *
 * Events are ordered by (tick, priority, insertion sequence), so two runs
 * of the same configuration always interleave events identically.
 *
 * The queue is an intrusive indexed d-ary min-heap: every Event carries
 * its own heap slot, so deschedule() and reschedule() are true
 * O(log n) sift operations instead of lazy tombstones, nextTick() is
 * exact, and the only per-event storage is one pointer in the heap
 * array. The comparison key (tick, priority, seq) is a strict total
 * order (sequence numbers are unique), so the pop order is identical
 * to any other faithful implementation of the same key — including
 * the lazy-deletion binary heap this replaced.
 */

#ifndef DRAMLESS_SIM_EVENT_QUEUE_HH
#define DRAMLESS_SIM_EVENT_QUEUE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace dramless
{

class EventQueue;

/**
 * Base class for schedulable events. An event may be scheduled on at most
 * one queue at a time; the owner is responsible for keeping the event
 * alive while it is scheduled.
 */
class Event
{
  public:
    /** Lower values are processed first among events at the same tick. */
    static constexpr int defaultPriority = 0;
    /** Priority for bookkeeping that must run before device activity. */
    static constexpr int highPriority = -10;
    /** Priority for stat sampling that must observe a settled tick. */
    static constexpr int lowPriority = 10;

    virtual ~Event();

    /** Callback invoked when the event's tick is reached. */
    virtual void process() = 0;

    /** @return a short diagnostic name. */
    virtual std::string name() const { return "event"; }

    /** @return true while the event sits on a queue. */
    bool scheduled() const { return _scheduled; }

    /** @return the tick the event is scheduled for. */
    Tick when() const { return _when; }

    /** @return the event's current same-tick priority. */
    int priority() const { return _priority; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    std::uint64_t _seq = 0;
    /** Slot in the owning queue's heap array (valid while scheduled). */
    std::size_t _heapIdx = 0;
    int _priority = defaultPriority;
    bool _scheduled = false;
    /** The queue the event is scheduled on (null while idle). */
    EventQueue *_queue = nullptr;
};

/**
 * An event that invokes a bound member function directly — no
 * std::function, no allocation, one devirtualizable call. This is the
 * event type for persistent device-model events (scheduler passes,
 * completion triggers, drain loops): the handler is fixed at compile
 * time, so steady-state traffic never touches the allocator.
 *
 * Usage: MemberEvent<ChannelController, &ChannelController::schedule>.
 */
template <typename T, void (T::*Fn)()>
class MemberEvent : public Event
{
  public:
    /**
     * @param obj receiver of the bound member call
     * @param name diagnostic name
     */
    MemberEvent(T *obj, std::string name)
        : obj_(obj), name_(std::move(name))
    {}

    void process() override { (obj_->*Fn)(); }
    std::string name() const override { return name_; }

  private:
    T *obj_;
    std::string name_;
};

/**
 * An event that invokes a bound callable; convenient for one-off hooks
 * and tests. Constructing one may heap-allocate inside std::function,
 * so steady-state per-request paths use MemberEvent (persistent
 * events) or EventPool (transients) instead; the construction counter
 * lets tests assert that hot paths stay away from this type.
 */
class EventFunctionWrapper : public Event
{
  public:
    /**
     * @param callback invoked at the scheduled tick
     * @param name diagnostic name
     */
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name = "anon")
        : callback_(std::move(callback)), name_(std::move(name))
    {
        numConstructed_.fetch_add(1, std::memory_order_relaxed);
    }

    void process() override { callback_(); }
    std::string name() const override { return name_; }

    /** Total wrappers ever constructed, process-wide. Steady-state
     *  assertions snapshot this before and after driving traffic. */
    static std::uint64_t
    constructed()
    {
        return numConstructed_.load(std::memory_order_relaxed);
    }

  private:
    static std::atomic<std::uint64_t> numConstructed_;

    std::function<void()> callback_;
    std::string name_;
};

/**
 * The event queue. Maintains current simulated time and processes events
 * in deterministic order.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** @return the current simulated tick. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p ev at absolute tick @p when.
     * @pre the event is not already scheduled and when >= curTick().
     */
    void schedule(Event *ev, Tick when, int priority = 0);

    /**
     * Remove a scheduled event from the queue: the heap entry is
     * unlinked immediately (O(log n)), so the event may be destroyed
     * or rescheduled on another queue as soon as this returns.
     * @pre the event is scheduled, and scheduled on this queue.
     */
    void deschedule(Event *ev);

    /**
     * Move a scheduled (or idle) event to a new tick; scheduling an
     * idle event to the current tick is explicitly supported. The
     * when >= curTick() precondition is checked before any state
     * changes, so a precondition failure never half-updates the
     * event. A scheduled event is re-keyed in place (one sift, no
     * pop/push round trip).
     * @pre when >= curTick(), and if the event is scheduled it is
     *      scheduled on this queue.
     */
    void reschedule(Event *ev, Tick when, int priority = 0);

    /** @return true when no events remain pending. */
    bool empty() const { return heap_.empty(); }

    /**
     * @return number of pending events. Exact: descheduled events
     * leave the heap immediately, so this is always heap occupancy.
     */
    std::size_t numPending() const { return heap_.size(); }

    /** @return the tick of the earliest pending event, or maxTick. */
    Tick
    nextTick() const
    {
        return heap_.empty() ? maxTick : heap_.front().when;
    }

    /** Process a single event. @return false when the queue was empty. */
    bool step();

    /** Process every event scheduled at tick <= @p t; curTick ends at t. */
    void runUntil(Tick t);

    /** Process events until the queue drains. */
    void run();

    /**
     * Process events until the queue drains or @p limit events have been
     * handled. @return the number of events processed (exact: only
     * live events exist in the heap, so every pop is one processed
     * event).
     */
    std::uint64_t run(std::uint64_t limit);

    /** Total number of events processed since construction. */
    std::uint64_t numProcessed() const { return numProcessed_; }

    /**
     * Validate the heap invariants: parent/child ordering, index
     * back-pointers, and per-event bookkeeping. O(n); used by tests
     * and debug assertions, never on the hot path.
     * @return true when every invariant holds.
     */
    bool selfCheck() const;

  private:
    /** Heap branching factor: shallower trees than binary and
     *  cache-friendly 4-wide child scans. */
    static constexpr std::size_t arity = 4;

    /**
     * One heap slot. The ordering key lives here, not behind the
     * event pointer: sift compares stay inside the contiguous heap
     * array instead of dereferencing two Events per comparison. Only
     * slot *placement* touches the event (its back-pointer).
     */
    struct Slot
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *ev;
    };

    /** Strict total order: (tick, priority, sequence). */
    static bool
    before(const Slot &a, const Slot &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    /** Store @p s at slot @p i and update its back-pointer. */
    void
    place(std::size_t i, const Slot &s)
    {
        heap_[i] = s;
        s.ev->_heapIdx = i;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    /** Unlink slot @p i, refilling it from the heap tail. */
    void removeAt(std::size_t i);

    std::vector<Slot> heap_;
    Tick _curTick = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t numProcessed_ = 0;
};

} // namespace dramless

#endif // DRAMLESS_SIM_EVENT_QUEUE_HH
