/**
 * @file
 * Simulation time base.
 *
 * The simulator counts time in integer ticks where one tick equals one
 * picosecond. This resolution makes every LPDDR2-NVM timing parameter of
 * the paper (tCK = 2.5 ns, tDQSS = 0.75 ns, ...) exactly representable.
 */

#ifndef DRAMLESS_SIM_TICKS_HH
#define DRAMLESS_SIM_TICKS_HH

#include <cstdint>

namespace dramless
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** A signed tick difference. */
using TickDelta = std::int64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Ticks per picosecond (the base unit). */
constexpr Tick tickPerPs = 1;
/** Ticks per nanosecond. */
constexpr Tick tickPerNs = 1000 * tickPerPs;
/** Ticks per microsecond. */
constexpr Tick tickPerUs = 1000 * tickPerNs;
/** Ticks per millisecond. */
constexpr Tick tickPerMs = 1000 * tickPerUs;
/** Ticks per second. */
constexpr Tick tickPerSec = 1000 * tickPerMs;

/** The maximum representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Convert picoseconds to ticks. */
constexpr Tick fromPs(double ps) { return Tick(ps * double(tickPerPs)); }
/** Convert nanoseconds to ticks. */
constexpr Tick fromNs(double ns) { return Tick(ns * double(tickPerNs)); }
/** Convert microseconds to ticks. */
constexpr Tick fromUs(double us) { return Tick(us * double(tickPerUs)); }
/** Convert milliseconds to ticks. */
constexpr Tick fromMs(double ms) { return Tick(ms * double(tickPerMs)); }
/** Convert seconds to ticks. */
constexpr Tick fromSec(double s) { return Tick(s * double(tickPerSec)); }

/** Convert ticks to (fractional) nanoseconds. */
constexpr double toNs(Tick t) { return double(t) / double(tickPerNs); }
/** Convert ticks to (fractional) microseconds. */
constexpr double toUs(Tick t) { return double(t) / double(tickPerUs); }
/** Convert ticks to (fractional) milliseconds. */
constexpr double toMs(Tick t) { return double(t) / double(tickPerMs); }
/** Convert ticks to (fractional) seconds. */
constexpr double toSec(Tick t) { return double(t) / double(tickPerSec); }

/** Period in ticks of a clock running at @p mhz megahertz. */
constexpr Tick periodFromMhz(double mhz)
{
    return Tick(1e6 / mhz * double(tickPerPs));
}

/** Period in ticks of a clock running at @p ghz gigahertz. */
constexpr Tick periodFromGhz(double ghz)
{
    return Tick(1e3 / ghz * double(tickPerPs));
}

} // namespace dramless

#endif // DRAMLESS_SIM_TICKS_HH
