/**
 * @file
 * Simulation time base.
 *
 * The simulator counts time in integer ticks where one tick equals one
 * picosecond. This resolution makes every LPDDR2-NVM timing parameter of
 * the paper (tCK = 2.5 ns, tDQSS = 0.75 ns, ...) exactly representable.
 */

#ifndef DRAMLESS_SIM_TICKS_HH
#define DRAMLESS_SIM_TICKS_HH

#include <cstdint>

namespace dramless
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** A signed tick difference. */
using TickDelta = std::int64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Ticks per picosecond (the base unit). */
constexpr Tick tickPerPs = 1;
/** Ticks per nanosecond. */
constexpr Tick tickPerNs = 1000 * tickPerPs;
/** Ticks per microsecond. */
constexpr Tick tickPerUs = 1000 * tickPerNs;
/** Ticks per millisecond. */
constexpr Tick tickPerMs = 1000 * tickPerUs;
/** Ticks per second. */
constexpr Tick tickPerSec = 1000 * tickPerMs;

/** The maximum representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Convert picoseconds to ticks. */
constexpr Tick fromPs(double ps) { return Tick(ps * double(tickPerPs)); }
/** Convert nanoseconds to ticks. */
constexpr Tick fromNs(double ns) { return Tick(ns * double(tickPerNs)); }
/** Convert microseconds to ticks. */
constexpr Tick fromUs(double us) { return Tick(us * double(tickPerUs)); }
/** Convert milliseconds to ticks. */
constexpr Tick fromMs(double ms) { return Tick(ms * double(tickPerMs)); }
/** Convert seconds to ticks. */
constexpr Tick fromSec(double s) { return Tick(s * double(tickPerSec)); }

/** Convert ticks to (fractional) nanoseconds. */
constexpr double toNs(Tick t) { return double(t) / double(tickPerNs); }
/** Convert ticks to (fractional) microseconds. */
constexpr double toUs(Tick t) { return double(t) / double(tickPerUs); }
/** Convert ticks to (fractional) milliseconds. */
constexpr double toMs(Tick t) { return double(t) / double(tickPerMs); }
/** Convert ticks to (fractional) seconds. */
constexpr double toSec(Tick t) { return double(t) / double(tickPerSec); }

/**
 * Serialization delay of @p bytes over a link sustaining
 * @p bytes_per_sec, rounded up to whole ticks.
 *
 * The obvious `Tick(double(bytes) / bytes_per_sec * 1e12)` truncates
 * toward zero — a small transfer on a fast link costs 0 extra ticks
 * and a large one silently loses up to a tick — so compute in 128-bit
 * integer math instead and round up: any nonzero transfer costs at
 * least one tick. @pre bytes_per_sec >= 1.
 */
constexpr Tick
serializationTicks(std::uint64_t bytes, double bytes_per_sec)
{
    if (bytes == 0)
        return 0;
    const auto bps = std::uint64_t(bytes_per_sec + 0.5);
    const unsigned __int128 num =
        (unsigned __int128)(bytes)*tickPerSec + bps - 1;
    return Tick(num / bps);
}

/** Period in ticks of a clock running at @p mhz megahertz. */
constexpr Tick periodFromMhz(double mhz)
{
    return Tick(1e6 / mhz * double(tickPerPs));
}

/** Period in ticks of a clock running at @p ghz gigahertz. */
constexpr Tick periodFromGhz(double ghz)
{
    return Tick(1e3 / ghz * double(tickPerPs));
}

} // namespace dramless

#endif // DRAMLESS_SIM_TICKS_HH
