/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64 core).
 *
 * The simulator never uses std::random_device or global state so runs
 * are reproducible from a seed.
 */

#ifndef DRAMLESS_SIM_RANDOM_HH
#define DRAMLESS_SIM_RANDOM_HH

#include <cstdint>

namespace dramless
{

/** SplitMix64 generator: tiny, fast, and statistically adequate. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed)
    {}

    /** @return the next 64 random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** @return a uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a uniform integer in [lo, hi]. @pre lo <= hi. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** @return true with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
};

} // namespace dramless

#endif // DRAMLESS_SIM_RANDOM_HH
