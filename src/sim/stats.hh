/**
 * @file
 * Lightweight statistics package.
 *
 * Components declare named statistics (scalars, averages, histograms,
 * time series) and optionally register them with a StatGroup so a whole
 * system's counters can be dumped in one pass.
 */

#ifndef DRAMLESS_SIM_STATS_HH
#define DRAMLESS_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace dramless
{
namespace stats
{

/** A plain accumulating counter. */
class Scalar
{
  public:
    Scalar() = default;
    explicit Scalar(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator-=(double v) { value_ -= v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }

    /** Overwrite the current value. */
    void set(double v) { value_ = v; }
    /** @return the accumulated value. */
    double value() const { return value_; }
    /** Reset to zero. */
    void reset() { value_ = 0.0; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    double value_ = 0.0;
};

/** Mean/min/max over a stream of samples. */
class Average
{
  public:
    Average() = default;
    explicit Average(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    /** Add one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = std::numeric_limits<double>::max();
        max_ = std::numeric_limits<double>::lowest();
    }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::max();
    double max_ = std::numeric_limits<double>::lowest();
};

/** Fixed-width linear histogram. */
class Histogram
{
  public:
    Histogram() : Histogram("", 0.0, 1.0, 1) {}

    /**
     * @param name stat name
     * @param lo lower bound of the first bucket
     * @param hi upper bound of the last bucket
     * @param buckets number of equal-width buckets (>= 1)
     */
    Histogram(std::string name, double lo, double hi,
              std::size_t buckets, std::string desc = "");

    /**
     * Add a sample; out-of-range samples land in underflow/overflow.
     * NaN samples are tallied in a dedicated counter and never touch
     * the buckets or the total — a latency that failed to measure
     * must not silently inflate the last bucket and corrupt every
     * percentile.
     */
    void sample(double v, std::uint64_t weight = 1);

    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    /** @return non-NaN samples (buckets + underflow + overflow). */
    std::uint64_t totalSamples() const { return total_; }
    /** @return NaN samples rejected from the distribution. */
    std::uint64_t nanCount() const { return nan_; }

    /**
     * Estimate the @p p quantile (p in [0, 1]) from the bucketed
     * distribution by linear interpolation inside the bucket where
     * the cumulative count crosses p * totalSamples(). Underflow
     * mass is treated as sitting at the lower bound and overflow
     * mass at the upper bound, so the estimate clamps to [lo, hi].
     * @return NaN when the histogram holds no (non-NaN) samples.
     * The error versus the exact sorted-sample quantile
     * (percentileExact) is bounded by one bucket width for in-range
     * data.
     */
    double percentile(double p) const;
    double bucketLow(std::size_t i) const { return lo_ + width_ * double(i); }
    double bucketHigh(std::size_t i) const { return bucketLow(i) + width_; }

    void reset();

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t nan_ = 0;
    std::uint64_t total_ = 0;
};

/** One sample of a time series. */
struct TimePoint
{
    Tick when;
    double value;
};

/** A (tick, value) trace, e.g. IPC or power over time. */
class TimeSeries
{
  public:
    TimeSeries() = default;
    explicit TimeSeries(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    /** Append a sample; ticks must be non-decreasing. */
    void record(Tick when, double value);

    const std::vector<TimePoint> &samples() const { return samples_; }
    bool empty() const { return samples_.empty(); }
    std::size_t size() const { return samples_.size(); }

    /** Mean of the recorded values (unweighted). */
    double mean() const;

    /**
     * Time-weighted mean: each value is held until the next sample;
     * the final value is ignored (zero duration).
     */
    double timeWeightedMean() const;

    /**
     * Downsample to at most @p max_points by averaging fixed-size
     * windows of samples. Useful for printing compact series.
     */
    std::vector<TimePoint> downsample(std::size_t max_points) const;

    void reset() { samples_.clear(); }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::vector<TimePoint> samples_;
};

/** A named collection of statistics that can be dumped together. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void add(const Scalar *s) { scalars_.push_back(s); }
    void add(const Average *a) { averages_.push_back(a); }
    void add(const Histogram *h) { histograms_.push_back(h); }

    /** Write all registered stats to @p os, one per line. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<const Scalar *> scalars_;
    std::vector<const Average *> averages_;
    std::vector<const Histogram *> histograms_;
};

/**
 * Geometric mean of @p values (values must be > 0).
 *
 * An empty input returns 0.0 — not a valid geometric mean, but a
 * survivable sentinel: sweeps where every run was rejected or failed
 * (an oversaturated serving sweep, a continue-on-error matrix) must
 * be able to report "no data" instead of crashing. Callers that need
 * to distinguish "no data" from a real mean must check
 * values.empty() themselves and flag the row.
 */
double geomean(const std::vector<double> &values);

/**
 * Exact nearest-rank quantile of @p values (p in [0, 1]): the
 * ceil(p * n)-th smallest value (the minimum for p == 0). NaN
 * entries are dropped first; an all-NaN or empty input returns NaN.
 * This is the reference Histogram::percentile() is validated
 * against.
 */
double percentileExact(std::vector<double> values, double p);

} // namespace stats
} // namespace dramless

#endif // DRAMLESS_SIM_STATS_HH
