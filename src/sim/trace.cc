#include "sim/trace.hh"

#include <algorithm>
#include <iomanip>
#include <map>

#include "sim/json.hh"

namespace dramless
{
namespace trace
{

namespace
{

thread_local Tracer *tlsCurrent = nullptr;

/** Match one glob (no comma alternatives) against @p s. */
bool
globMatchOne(const char *p, const char *pe, const char *s, const char *se)
{
    // Iterative glob with single-star backtracking.
    const char *star = nullptr;
    const char *starS = nullptr;
    while (s != se) {
        if (p != pe && (*p == '?' || *p == *s)) {
            ++p;
            ++s;
        } else if (p != pe && *p == '*') {
            star = p++;
            starS = s;
        } else if (star) {
            p = star + 1;
            s = ++starS;
        } else {
            return false;
        }
    }
    while (p != pe && *p == '*')
        ++p;
    return p == pe;
}

} // namespace

bool
globMatch(const std::string &pattern, const std::string &s)
{
    if (pattern.empty())
        return true;
    std::size_t pos = 0;
    while (pos <= pattern.size()) {
        std::size_t comma = pattern.find(',', pos);
        std::size_t end = comma == std::string::npos ? pattern.size() : comma;
        const char *p = pattern.data() + pos;
        const char *pe = pattern.data() + end;
        if (globMatchOne(p, pe, s.data(), s.data() + s.size()))
            return true;
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return false;
}

Tracer::Tracer(std::string filter) : filter_(std::move(filter)) {}

bool
Tracer::wants(const char *category) const
{
    if (filter_.empty() || filter_ == "*")
        return true;
    return globMatch(filter_, category);
}

Tracer *
current()
{
    return tlsCurrent;
}

ScopedTracer::ScopedTracer(Tracer *t) : prev_(tlsCurrent)
{
    tlsCurrent = t;
}

ScopedTracer::~ScopedTracer()
{
    tlsCurrent = prev_;
}

namespace
{

/** Ticks (ps) to Chrome trace microseconds. */
double
toTraceUs(Tick t)
{
    return double(t) / 1e6;
}

/** Process key: group label + category. */
std::string
processName(const Group &g, const Event &ev)
{
    if (g.label.empty())
        return ev.category;
    return g.label + "/" + ev.category;
}

struct Ids
{
    // Ordered maps keep pid/tid assignment (and thus output)
    // deterministic across runs.
    std::map<std::string, int> pids;
    std::map<std::pair<int, std::string>, int> tids;

    int
    pid(const std::string &process)
    {
        auto it = pids.find(process);
        if (it != pids.end())
            return it->second;
        int id = int(pids.size()) + 1;
        pids.emplace(process, id);
        return id;
    }

    int
    tid(int pid, const std::string &track)
    {
        auto key = std::make_pair(pid, track);
        auto it = tids.find(key);
        if (it != tids.end())
            return it->second;
        int id = 1;
        for (const auto &kv : tids)
            if (kv.first.first == pid)
                ++id;
        tids.emplace(key, id);
        return id;
    }
};

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<Group> &groups)
{
    Ids ids;
    json::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.key("displayTimeUnit").value("ns");
    w.key("traceEvents").beginArray();

    // Metadata first: name every process and thread we will emit.
    // Two passes keep the event array append-only and deterministic.
    for (const auto &g : groups) {
        for (const auto &ev : g.events) {
            std::string proc = processName(g, ev);
            bool newPid = ids.pids.find(proc) == ids.pids.end();
            int pid = ids.pid(proc);
            if (newPid) {
                w.beginObject();
                w.key("ph").value("M");
                w.key("name").value("process_name");
                w.key("pid").value(pid);
                w.key("args").beginObject();
                w.key("name").value(proc);
                w.endObject();
                w.endObject();
            }
            auto key = std::make_pair(pid, ev.track);
            bool newTid = ids.tids.find(key) == ids.tids.end();
            int tid = ids.tid(pid, ev.track);
            if (newTid) {
                w.beginObject();
                w.key("ph").value("M");
                w.key("name").value("thread_name");
                w.key("pid").value(pid);
                w.key("tid").value(tid);
                w.key("args").beginObject();
                w.key("name").value(ev.track);
                w.endObject();
                w.endObject();
            }
        }
    }

    for (const auto &g : groups) {
        for (const auto &ev : g.events) {
            int pid = ids.pid(processName(g, ev));
            int tid = ids.tid(pid, ev.track);
            w.beginObject();
            switch (ev.ph) {
              case Event::Ph::complete:
                w.key("ph").value("X");
                w.key("name").value(ev.name);
                w.key("cat").value(ev.category);
                w.key("pid").value(pid);
                w.key("tid").value(tid);
                w.key("ts").value(toTraceUs(ev.start));
                w.key("dur").value(toTraceUs(ev.end - ev.start));
                break;
              case Event::Ph::instant:
                w.key("ph").value("i");
                w.key("s").value("t");
                w.key("name").value(ev.name);
                w.key("cat").value(ev.category);
                w.key("pid").value(pid);
                w.key("tid").value(tid);
                w.key("ts").value(toTraceUs(ev.start));
                break;
              case Event::Ph::counter:
                w.key("ph").value("C");
                w.key("name").value(std::string(ev.name) + " [" +
                                    ev.track + "]");
                w.key("cat").value(ev.category);
                w.key("pid").value(pid);
                w.key("tid").value(tid);
                w.key("ts").value(toTraceUs(ev.start));
                w.key("args").beginObject();
                w.key("value").value(ev.value);
                w.endObject();
                break;
            }
            w.endObject();
        }
    }

    w.endArray();
    w.endObject();
    os << "\n";
}

void
writeSummary(std::ostream &os, const std::vector<Group> &groups)
{
    struct Agg
    {
        std::uint64_t count = 0;
        Tick busy = 0;
        double peak = 0;
        double last = 0;
        Event::Ph ph = Event::Ph::complete;
    };
    std::map<std::pair<std::string, std::string>, Agg> aggs;

    for (const auto &g : groups) {
        for (const auto &ev : g.events) {
            auto key = std::make_pair(processName(g, ev),
                                      std::string(ev.name) + " [" +
                                          ev.track + "]");
            Agg &a = aggs[key];
            a.ph = ev.ph;
            ++a.count;
            if (ev.ph == Event::Ph::complete) {
                a.busy += ev.end - ev.start;
            } else if (ev.ph == Event::Ph::counter) {
                a.peak = std::max(a.peak, ev.value);
                a.last = ev.value;
            }
        }
    }

    os << "trace summary (" << aggs.size() << " event kinds)\n";
    os << std::left << std::setw(24) << "component" << std::setw(40)
       << "event" << std::right << std::setw(10) << "count"
       << std::setw(16) << "busy/peak" << "\n";
    for (const auto &kv : aggs) {
        const Agg &a = kv.second;
        os << std::left << std::setw(24) << kv.first.first << std::setw(40)
           << kv.first.second << std::right << std::setw(10) << a.count;
        if (a.ph == Event::Ph::complete) {
            os << std::setw(13) << std::fixed << std::setprecision(3)
               << toTraceUs(a.busy) << " us";
        } else if (a.ph == Event::Ph::counter) {
            os << std::setw(10) << std::fixed << std::setprecision(1)
               << a.peak << " peak";
        } else {
            os << std::setw(16) << "-";
        }
        os << "\n";
        os.unsetf(std::ios::floatfield);
    }
}

} // namespace trace
} // namespace dramless
