#include "sim/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace dramless
{
namespace json
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

std::string
number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    // %.17g round-trips every IEEE-754 double; try shorter first so
    // common values stay readable (0.25 rather than 0.25000000000000000).
    std::snprintf(buf, sizeof(buf), "%.15g", v);
    double back = std::strtod(buf, nullptr);
    if (back != v)
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
JsonWriter::newline()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prepareValue()
{
    panic_if(wroteRoot_ && stack_.empty(),
             "JSON document already complete");
    if (stack_.empty()) {
        wroteRoot_ = true;
        return;
    }
    if (stack_.back() == Frame::object) {
        panic_if(!keyPending_, "JSON object value without a key");
        keyPending_ = false;
        return;
    }
    if (hasElem_.back())
        os_ << ',';
    hasElem_.back() = true;
    newline();
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareValue();
    os_ << '{';
    stack_.push_back(Frame::object);
    hasElem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    panic_if(stack_.empty() || stack_.back() != Frame::object,
             "endObject outside an object");
    panic_if(keyPending_, "JSON object closed with a dangling key");
    bool had = hasElem_.back();
    stack_.pop_back();
    hasElem_.pop_back();
    if (had)
        newline();
    os_ << '}';
    if (stack_.empty())
        wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareValue();
    os_ << '[';
    stack_.push_back(Frame::array);
    hasElem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    panic_if(stack_.empty() || stack_.back() != Frame::array,
             "endArray outside an array");
    bool had = hasElem_.back();
    stack_.pop_back();
    hasElem_.pop_back();
    if (had)
        newline();
    os_ << ']';
    if (stack_.empty())
        wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    panic_if(stack_.empty() || stack_.back() != Frame::object,
             "JSON key outside an object");
    panic_if(keyPending_, "two JSON keys in a row");
    if (hasElem_.back())
        os_ << ',';
    hasElem_.back() = true;
    newline();
    os_ << '"' << escape(k) << "\":";
    if (pretty_)
        os_ << ' ';
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    prepareValue();
    os_ << number(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepareValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prepareValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prepareValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    prepareValue();
    os_ << '"' << escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    prepareValue();
    os_ << "null";
    return *this;
}

void
write(JsonWriter &w, const stats::Scalar &s)
{
    w.beginObject();
    w.keyValue("name", s.name());
    w.keyValue("value", s.value());
    w.endObject();
}

void
write(JsonWriter &w, const stats::Average &a)
{
    w.beginObject();
    w.keyValue("name", a.name());
    w.keyValue("mean", a.mean());
    w.keyValue("sum", a.sum());
    w.keyValue("count", a.count());
    w.keyValue("min", a.min());
    w.keyValue("max", a.max());
    w.endObject();
}

void
write(JsonWriter &w, const stats::Histogram &h)
{
    w.beginObject();
    w.keyValue("name", h.name());
    w.keyValue("underflow", h.underflow());
    w.keyValue("overflow", h.overflow());
    w.keyValue("nan", h.nanCount());
    w.keyValue("total", h.totalSamples());
    w.key("buckets").beginArray();
    for (std::size_t i = 0; i < h.numBuckets(); ++i) {
        w.beginObject();
        w.keyValue("lo", h.bucketLow(i));
        w.keyValue("hi", h.bucketHigh(i));
        w.keyValue("count", h.bucketCount(i));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
write(JsonWriter &w, const stats::TimeSeries &ts,
      std::size_t max_points)
{
    w.beginObject();
    w.keyValue("name", ts.name());
    w.keyValue("mean", ts.mean());
    w.keyValue("time_weighted_mean", ts.timeWeightedMean());
    w.keyValue("num_samples", std::uint64_t(ts.size()));
    const bool thin = max_points > 0 && ts.size() > max_points;
    w.keyValue("downsampled", thin);
    w.key("samples").beginArray();
    auto emit = [&](const stats::TimePoint &p) {
        w.beginArray();
        w.value(p.when);
        w.value(p.value);
        w.endArray();
    };
    if (thin) {
        for (const auto &p : ts.downsample(max_points))
            emit(p);
    } else {
        for (const auto &p : ts.samples())
            emit(p);
    }
    w.endArray();
    w.endObject();
}

std::string
csvField(const std::string &s)
{
    bool needs_quote = false;
    for (char c : s) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needs_quote = true;
            break;
        }
    }
    if (!needs_quote)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

} // namespace json
} // namespace dramless
