#include "sim/pdes.hh"

#include <algorithm>
#include <thread>

#include "sim/logging.hh"

namespace dramless
{
namespace pdes
{

ShardedKernel::ShardedKernel(Tick lookahead) : lookahead_(lookahead)
{
    panic_if(lookahead_ == 0,
             "pdes: zero lookahead admits no conservative window");
    // 0 = "not inside a window": setup-time sends are only bounded
    // by the receiver's clock (still at 0), not by a window edge.
    windowEnd_.store(0, std::memory_order_relaxed);
}

ShardedKernel::~ShardedKernel() = default;

Cluster &
ShardedKernel::addCluster(std::string name)
{
    panic_if(running_, "pdes: addCluster() after run()");
    auto id = std::uint32_t(clusters_.size());
    clusters_.emplace_back(new Cluster(id, std::move(name)));
    mail_.emplace_back(new Mailbox);
    return *clusters_.back();
}

void
ShardedKernel::send(Cluster &from, Cluster &to, Tick when,
                    std::function<void()> fn)
{
    // The receiver may already be executing the current window
    // [horizon, windowEnd): a message landing inside it would be in
    // the receiver's past by the time the barrier delivers it. The
    // lookahead contract (link latency >= lookahead) makes this
    // impossible for well-formed senders; check it anyway so a
    // mis-derived lookahead fails loudly instead of warping time.
    Tick window_end = windowEnd_.load(std::memory_order_relaxed);
    panic_if(when < window_end,
             "pdes: %s -> %s message at tick %llu violates the "
             "lookahead window ending at %llu",
             from.name().c_str(), to.name().c_str(),
             (unsigned long long)when,
             (unsigned long long)window_end);
    Mailbox &box = *mail_[to.id()];
    std::lock_guard<std::mutex> lock(box.mu);
    box.in.push_back(
        Envelope{when, from.id(), from.outSeq_++, std::move(fn)});
}

void
ShardedKernel::deliverAll()
{
    for (std::uint32_t dst = 0; dst < clusters_.size(); ++dst) {
        Mailbox &box = *mail_[dst];
        // No lock needed: every worker is parked at the barrier.
        if (box.in.empty())
            continue;
        // Concurrent senders append in wall-clock order; the key
        // (tick, source, source-sequence) is unique per message, so
        // sorting restores one canonical delivery order independent
        // of thread interleaving.
        std::sort(box.in.begin(), box.in.end(),
                  [](const Envelope &a, const Envelope &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.seq < b.seq;
                  });
        Cluster &c = *clusters_[dst];
        for (Envelope &e : box.in) {
            stats_.messages++;
            c.pool_.schedule(e.when, std::move(e.fn));
        }
        box.in.clear();
    }
}

void
ShardedKernel::runWindow(Cluster &c, Tick window_end)
{
    // Process every local event strictly before the window edge.
    // runUntil() leaves curTick at window_end - 1 even on an idle
    // cluster, which is safe: all future mail carries when >=
    // window_end.
    c.eq_.runUntil(window_end - 1);
}

void
ShardedKernel::run(unsigned workers)
{
    panic_if(clusters_.empty(), "pdes: run() without clusters");
    running_ = true;
    if (workers == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        workers = hw > 0 ? hw : 1;
    }
    workers = std::min<unsigned>(workers,
                                 unsigned(clusters_.size()));

    // Window-synchronized worker pool. Workers park on a condition
    // variable between windows; each window they claim clusters off
    // an atomic cursor, so load imbalance between clusters costs
    // idle time, not correctness. All mailbox delivery and horizon
    // math happens on the coordinating thread while the pool is
    // parked at the barrier.
    struct Sync
    {
        std::mutex mu;
        std::condition_variable wake;
        std::condition_variable done;
        std::uint64_t generation = 0;
        Tick windowEnd = 0;
        std::atomic<std::uint32_t> cursor{0};
        std::uint32_t finished = 0;
        bool stop = false;
    } sync;

    auto drainClusters = [&](Tick window_end) {
        for (;;) {
            std::uint32_t i = sync.cursor.fetch_add(
                1, std::memory_order_relaxed);
            if (i >= clusters_.size())
                return;
            runWindow(*clusters_[i], window_end);
        }
    };

    std::vector<std::thread> pool;
    if (workers > 1) {
        pool.reserve(workers - 1);
        for (unsigned w = 1; w < workers; ++w) {
            pool.emplace_back([&] {
                std::uint64_t seen = 0;
                for (;;) {
                    Tick window_end;
                    {
                        std::unique_lock<std::mutex> lock(sync.mu);
                        sync.wake.wait(lock, [&] {
                            return sync.stop ||
                                   sync.generation != seen;
                        });
                        if (sync.stop)
                            return;
                        seen = sync.generation;
                        window_end = sync.windowEnd;
                    }
                    drainClusters(window_end);
                    {
                        std::lock_guard<std::mutex> lock(sync.mu);
                        if (++sync.finished == workers)
                            sync.done.notify_one();
                    }
                }
            });
        }
    }

    deliverAll();
    for (;;) {
        Tick horizon = maxTick;
        for (const auto &c : clusters_)
            horizon = std::min(horizon, c->eq_.nextTick());
        if (horizon == maxTick)
            break;
        panic_if(horizon > maxTick - lookahead_,
                 "pdes: window overflow at tick %llu",
                 (unsigned long long)horizon);
        Tick window_end = horizon + lookahead_;
        windowEnd_.store(window_end, std::memory_order_relaxed);
        stats_.windows++;

        if (workers == 1) {
            // Serial execution: same windows, same delivery order,
            // same per-cluster event order — the reference the
            // determinism suite compares every worker count against.
            for (auto &c : clusters_)
                runWindow(*c, window_end);
        } else {
            {
                std::lock_guard<std::mutex> lock(sync.mu);
                sync.cursor.store(0, std::memory_order_relaxed);
                sync.finished = 1; // the coordinator counts too
                sync.windowEnd = window_end;
                ++sync.generation;
            }
            sync.wake.notify_all();
            drainClusters(window_end);
            std::unique_lock<std::mutex> lock(sync.mu);
            sync.done.wait(
                lock, [&] { return sync.finished == workers; });
        }
        windowEnd_.store(0, std::memory_order_relaxed);
        deliverAll();
    }

    if (!pool.empty()) {
        {
            std::lock_guard<std::mutex> lock(sync.mu);
            sync.stop = true;
        }
        sync.wake.notify_all();
        for (auto &t : pool)
            t.join();
    }

    stats_.events = 0;
    for (const auto &c : clusters_)
        stats_.events += c->eq_.numProcessed();
}

} // namespace pdes
} // namespace dramless
