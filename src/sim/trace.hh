/**
 * @file
 * Event tracing for the simulator.
 *
 * A Tracer collects duration ("complete"), instant, and counter events
 * keyed by component category + track (instance). Collection is
 * zero-cost when no tracer is installed: every instrumentation site
 * compiles down to one thread-local pointer load and a branch,
 *
 *     if (auto *t = trace::current())
 *         t->complete(trace::catPram, track_, "activate", start, end);
 *
 * and because the simulator's event times are analytic (the [start,
 * end] interval of an operation is known when it is issued), most
 * sites emit with explicit ticks rather than scope lifetimes. A small
 * RAII Span is provided for the few genuinely scoped regions (e.g. a
 * whole system run).
 *
 * The collected events render to the Chrome Trace Event Format
 * (loadable in Perfetto / chrome://tracing) via writeChromeTrace(),
 * and to a compact per-component summary table via writeSummary().
 * Timestamps convert from ticks (1 ps) to the format's microseconds.
 *
 * Category and event names must be string literals (or otherwise
 * outlive the tracer): events store the pointers, not copies.
 *
 * Tracers are single-threaded by design; parallel sweeps install one
 * tracer per worker thread (see runner::JobTraceScope) and merge the
 * per-job event groups when writing a combined file.
 */

#ifndef DRAMLESS_SIM_TRACE_HH
#define DRAMLESS_SIM_TRACE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace dramless
{
namespace trace
{

/** @name Canonical component categories @{ */
constexpr const char *catPram = "pram";
constexpr const char *catCtrl = "ctrl";
constexpr const char *catFlash = "flash";
constexpr const char *catAccel = "accel";
constexpr const char *catHost = "host";
constexpr const char *catSystem = "system";
/** @} */

/**
 * Match @p s against shell-style glob @p pattern ('*' any run, '?'
 * any one char). Used for DRAMLESS_TRACE_FILTER category filtering;
 * a comma separates alternative patterns.
 */
bool globMatch(const std::string &pattern, const std::string &s);

/** One recorded trace event. */
struct Event
{
    enum class Ph { complete, instant, counter };

    Ph ph;
    /** Component category; string literal, becomes the Chrome "pid". */
    const char *category;
    /** Event name; string literal. */
    const char *name;
    /** Component instance, e.g. "chan0"; becomes the Chrome "tid". */
    std::string track;
    /** Interval for complete events; start == end for instants. */
    Tick start;
    Tick end;
    /** Counter level for counter events. */
    double value;
};

/** Per-thread event collector. */
class Tracer
{
  public:
    /**
     * @param filter category glob (comma-separated alternatives);
     *               empty or "*" records every category
     */
    explicit Tracer(std::string filter = "");

    /** @return true when @p category passes the filter. */
    bool wants(const char *category) const;

    /** Record a duration event over [start, end]. */
    void
    complete(const char *category, const std::string &track,
             const char *name, Tick start, Tick end)
    {
        if (!wants(category))
            return;
        events_.push_back({Event::Ph::complete, category, name, track,
                           start, end < start ? start : end, 0.0});
    }

    /** Record a point-in-time event. */
    void
    instant(const char *category, const std::string &track,
            const char *name, Tick when)
    {
        if (!wants(category))
            return;
        events_.push_back(
            {Event::Ph::instant, category, name, track, when, when, 0.0});
    }

    /** Record a counter sample (the level of @p name at @p when). */
    void
    counter(const char *category, const std::string &track,
            const char *name, Tick when, double value)
    {
        if (!wants(category))
            return;
        events_.push_back(
            {Event::Ph::counter, category, name, track, when, when, value});
    }

    const std::vector<Event> &events() const { return events_; }
    std::vector<Event> takeEvents() { return std::move(events_); }
    const std::string &filter() const { return filter_; }

  private:
    std::string filter_;
    std::vector<Event> events_;
};

/**
 * @return the tracer installed on this thread, or nullptr when
 * tracing is off (the common case; callers branch on it).
 */
Tracer *current();

/** RAII install/restore of the thread's current tracer. */
class ScopedTracer
{
  public:
    explicit ScopedTracer(Tracer *t);
    ~ScopedTracer();

    ScopedTracer(const ScopedTracer &) = delete;
    ScopedTracer &operator=(const ScopedTracer &) = delete;

  private:
    Tracer *prev_;
};

/**
 * RAII duration span. Captures the start tick on construction and
 * emits one complete event on destruction; call finish() to set the
 * end tick (otherwise the span closes zero-length at its start).
 * Does nothing when tracing is off.
 */
class Span
{
  public:
    Span(const char *category, std::string track, const char *name,
         Tick start)
        : tracer_(current()), category_(category), name_(name),
          track_(std::move(track)), start_(start), end_(start)
    {}

    ~Span()
    {
        if (tracer_)
            tracer_->complete(category_, track_, name_, start_, end_);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Set the end tick emitted when the span closes. */
    void finish(Tick end) { end_ = end; }

  private:
    Tracer *tracer_;
    const char *category_;
    const char *name_;
    std::string track_;
    Tick start_;
    Tick end_;
};

/**
 * A labelled group of events, one per traced job. A single-job trace
 * is one group with an empty label; a merged sweep trace carries one
 * group per system×workload job.
 */
struct Group
{
    std::string label;
    std::vector<Event> events;
};

/**
 * Render @p groups as Chrome Trace Event Format JSON. Processes
 * (pids) are "label/category" pairs, threads (tids) are tracks;
 * process_name/thread_name metadata events label both. Validates as
 * plain JSON and loads in Perfetto / chrome://tracing.
 */
void writeChromeTrace(std::ostream &os, const std::vector<Group> &groups);

/**
 * Render a compact per-component summary: for every (process, name)
 * the event count and, for durations, total/mean busy time; for
 * counters, the peak and final level.
 */
void writeSummary(std::ostream &os, const std::vector<Group> &groups);

} // namespace trace
} // namespace dramless

#endif // DRAMLESS_SIM_TRACE_HH
