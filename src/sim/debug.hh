/**
 * @file
 * Debug trace flags (gem5's DPRINTF idiom).
 *
 * Components emit timestamped trace lines guarded by named flags:
 *
 *     DPRINTF("Ctrl", "module %u issue read row %llu", m, row);
 *
 * Flags are off by default and cost one branch on a global counter
 * when disabled. Enable at runtime with debug::enableFlag("Ctrl") or
 * from the environment: DRAMLESS_DEBUG=Ctrl,Pram (parsed on first
 * use; "All" enables everything). Output goes to stderr unless
 * redirected with debug::setStream().
 */

#ifndef DRAMLESS_SIM_DEBUG_HH
#define DRAMLESS_SIM_DEBUG_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace debug
{

/** @return true when any flag is enabled (the macro fast path). */
bool anyEnabled();

/** @return true when @p flag (or "All") is enabled. */
bool flagEnabled(const char *flag);

/** Enable a flag. */
void enableFlag(const std::string &flag);

/** Disable a flag. */
void disableFlag(const std::string &flag);

/** Disable every flag. */
void clearFlags();

/** @return the currently enabled flags (sorted). */
std::vector<std::string> enabledFlags();

/** Redirect trace output (nullptr restores stderr). */
void setStream(std::ostream *os);

/** Emit one trace line: "<tick>: <name>: <msg>". */
void print(Tick when, const std::string &name,
           const std::string &msg);

} // namespace debug

/**
 * Emit a trace line when @p flag is enabled. Usable inside any class
 * providing curTick() and name() (every Clocked component does);
 * elsewhere use DPRINTFN with explicit tick and name.
 */
#define DPRINTF(flag, ...) \
    do { \
        if (::dramless::debug::anyEnabled() && \
            ::dramless::debug::flagEnabled(flag)) { \
            ::dramless::debug::print(curTick(), name(), \
                                     ::dramless::csprintf( \
                                         __VA_ARGS__)); \
        } \
    } while (0)

/** DPRINTF with explicit tick and component name. */
#define DPRINTFN(flag, when, who, ...) \
    do { \
        if (::dramless::debug::anyEnabled() && \
            ::dramless::debug::flagEnabled(flag)) { \
            ::dramless::debug::print((when), (who), \
                                     ::dramless::csprintf( \
                                         __VA_ARGS__)); \
        } \
    } while (0)

} // namespace dramless

#endif // DRAMLESS_SIM_DEBUG_HH
