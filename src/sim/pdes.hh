/**
 * @file
 * Conservative parallel discrete-event simulation (PDES) kernel.
 *
 * The board the simulator models is inherently parallel: accelerator
 * nodes, channel controllers and PRAM banks advance concurrently and
 * couple only through links (PCIe/PHY) with fixed multi-tick
 * latencies. This kernel exploits exactly that structure. A
 * simulation is partitioned into *clusters* — component graphs that
 * never call each other directly — each owning a private EventQueue.
 * Clusters exchange timestamped messages through mailboxes, and a
 * conservative window protocol keeps every cluster's local clock
 * within *lookahead* of the global horizon:
 *
 *   1. deliver all mailbox messages into their destination queues
 *      (sorted by (tick, source, source-sequence) — a strict total
 *      order, so delivery is independent of the thread interleaving
 *      that produced the messages);
 *   2. horizon = min over clusters of nextTick();
 *   3. every cluster processes its local events in
 *      [horizon, horizon + lookahead) — in parallel, no locks on the
 *      hot path, because conservative lookahead guarantees no
 *      message generated inside the window can land inside it;
 *   4. barrier; repeat until every queue and mailbox drains.
 *
 * The lookahead is the minimum cross-cluster link latency (for the
 * serving fleet: the PCIe hop). Any send whose timestamp violates it
 * panics — the protocol is checked, not assumed. Results are
 * bit-identical for any worker count, including the serial
 * single-worker execution, because the window sequence, the delivery
 * order and each cluster's internal event order never depend on
 * thread scheduling. This is the conservative (Chandy-Misra-Bryant
 * descended) flavor rather than an optimistic Time-Warp: device
 * models mutate rich non-copyable state (heaps, caches, wear maps),
 * so checkpoint/rollback would cost more than the windows save.
 */

#ifndef DRAMLESS_SIM_PDES_HH
#define DRAMLESS_SIM_PDES_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/event_pool.hh"
#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace pdes
{

class ShardedKernel;

/**
 * One shard of the simulation: a component graph on a private
 * EventQueue. Component code is oblivious — it schedules on the
 * cluster's queue exactly as it would on a serial kernel. Only the
 * glue at cluster boundaries (the mailbox sends) is PDES-aware.
 */
class Cluster
{
  public:
    /** @return the cluster's private event queue. */
    EventQueue &eq() { return eq_; }
    const EventQueue &eq() const { return eq_; }

    /** @return the cluster index within its kernel. */
    std::uint32_t id() const { return id_; }

    const std::string &name() const { return name_; }

  private:
    friend class ShardedKernel;

    Cluster(std::uint32_t id, std::string name)
        : id_(id), name_(std::move(name)), pool_(eq_, name_ + ".mail")
    {}

    std::uint32_t id_;
    std::string name_;
    EventQueue eq_;
    /** Recycled one-shot events carrying delivered messages. */
    EventPool pool_;
    /** Messages sent by this cluster this window (source sequence). */
    std::uint64_t outSeq_ = 0;
};

/** Scaling/diagnostic counters of one sharded run. */
struct KernelStats
{
    /** Synchronization windows executed. */
    std::uint64_t windows = 0;
    /** Cross-cluster messages delivered. */
    std::uint64_t messages = 0;
    /** Events processed across all clusters. */
    std::uint64_t events = 0;
};

/**
 * The sharded kernel: owns the clusters, the mailboxes and the
 * window loop.
 */
class ShardedKernel
{
  public:
    /**
     * @param lookahead conservative synchronization window — must be
     *        a lower bound on every cross-cluster link latency and
     *        strictly positive (zero lookahead admits no conservative
     *        parallelism).
     */
    explicit ShardedKernel(Tick lookahead);
    ~ShardedKernel();

    ShardedKernel(const ShardedKernel &) = delete;
    ShardedKernel &operator=(const ShardedKernel &) = delete;

    /** Create a cluster. All clusters must exist before run(). */
    Cluster &addCluster(std::string name);

    /** @return cluster @p i in creation order. */
    Cluster &cluster(std::uint32_t i) { return *clusters_.at(i); }
    std::uint32_t numClusters() const
    {
        return std::uint32_t(clusters_.size());
    }

    Tick lookahead() const { return lookahead_; }

    /**
     * Send a timestamped message: @p fn runs on @p to's thread with
     * @p to's queue at tick @p when. Must be called from @p from's
     * window execution (or before run()); panics when @p when
     * violates the lookahead guarantee — i.e. when a message could
     * land inside the window the receiver may already be executing.
     * Thread-safe across concurrently-executing source clusters.
     */
    void send(Cluster &from, Cluster &to, Tick when,
              std::function<void()> fn);

    /**
     * Run every cluster to completion on @p workers threads
     * (0 = one per hardware thread, capped at the cluster count;
     * 1 = serial on the calling thread). Returns when every queue
     * and every mailbox has drained. Results are bit-identical for
     * every worker count.
     */
    void run(unsigned workers = 1);

    /** @return counters of the last (or current) run. */
    const KernelStats &kernelStats() const { return stats_; }

  private:
    struct Envelope
    {
        Tick when;
        std::uint32_t src;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Mailbox
    {
        std::mutex mu;
        std::vector<Envelope> in;
    };

    /** Deliver pending mail into destination queues (deterministic
     *  order) and count it. Caller must be at a barrier. */
    void deliverAll();

    /** Run cluster @p c's window up to (exclusive) @p window_end. */
    void runWindow(Cluster &c, Tick window_end);

    Tick lookahead_;
    std::vector<std::unique_ptr<Cluster>> clusters_;
    /** One inbox per destination cluster. */
    std::vector<std::unique_ptr<Mailbox>> mail_;
    /** End (exclusive) of the window currently executing; sends are
     *  validated against it. 0 = not inside a window. */
    std::atomic<Tick> windowEnd_{0};
    /** Set once run() starts: addCluster() afterwards is a bug. */
    bool running_ = false;
    KernelStats stats_;
};

} // namespace pdes
} // namespace dramless

#endif // DRAMLESS_SIM_PDES_HH
