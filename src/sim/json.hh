/**
 * @file
 * Minimal streaming JSON writer.
 *
 * The exporters (ResultSink, bench binaries) need machine-readable
 * output without an external dependency. JsonWriter emits RFC 8259
 * JSON to any std::ostream: strings are escaped, doubles are printed
 * with round-trip precision, and non-finite values (which JSON cannot
 * represent) serialize as null. A small frame stack inserts commas
 * and (optionally) indentation, and checks begin/end nesting.
 */

#ifndef DRAMLESS_SIM_JSON_HH
#define DRAMLESS_SIM_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace dramless
{
namespace json
{

/** Escape @p s for use inside a JSON string literal (no quotes). */
std::string escape(const std::string &s);

/**
 * Format a double as a JSON number token with round-trip precision.
 * NaN and +/-infinity become "null" (JSON has no such literals).
 */
std::string number(double v);

/** Streaming JSON writer with nesting checks. */
class JsonWriter
{
  public:
    /**
     * @param os destination stream
     * @param pretty two-space indentation when true, compact otherwise
     */
    explicit JsonWriter(std::ostream &os, bool pretty = true)
        : os_(os), pretty_(pretty)
    {}

    /** @name Containers @{ */
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    /** @} */

    /** Emit an object key; must be inside an object. */
    JsonWriter &key(const std::string &k);

    /** @name Values @{ */
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(std::int64_t(v)); }
    JsonWriter &value(unsigned v) { return value(std::uint64_t(v)); }
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v) { return value(std::string(v)); }
    JsonWriter &null();
    /** @} */

    /** @name key/value shorthands @{ */
    template <typename T>
    JsonWriter &
    keyValue(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }
    /** @} */

    /** @return true once every container has been closed. */
    bool complete() const { return stack_.empty() && wroteRoot_; }

  private:
    enum class Frame { object, array };

    void prepareValue();
    void newline();

    std::ostream &os_;
    bool pretty_;
    std::vector<Frame> stack_;
    /** Whether the current container already holds an element. */
    std::vector<bool> hasElem_;
    bool keyPending_ = false;
    bool wroteRoot_ = false;
};

/** @name JSON serialization of the stats primitives @{ */

/** Scalar -> {"name":..,"value":..}. */
void write(JsonWriter &w, const stats::Scalar &s);
/** Average -> {"name","mean","sum","count","min","max"}. */
void write(JsonWriter &w, const stats::Average &a);
/**
 * Histogram -> {"name","underflow","overflow","nan","total",
 * "buckets":[{"lo","hi","count"},...]}.
 */
void write(JsonWriter &w, const stats::Histogram &h);
/**
 * TimeSeries -> {"name","mean","time_weighted_mean","samples":
 * [[tick,value],...]}. With @p max_points > 0 the sample list is
 * downsampled to at most that many points (the summary statistics
 * always cover the full series).
 */
void write(JsonWriter &w, const stats::TimeSeries &ts,
           std::size_t max_points = 0);

/** @} */

/** Escape @p s as one RFC 4180 CSV field (quoted when needed). */
std::string csvField(const std::string &s);

} // namespace json
} // namespace dramless

#endif // DRAMLESS_SIM_JSON_HH
