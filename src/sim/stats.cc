#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "sim/logging.hh"

namespace dramless
{
namespace stats
{

Histogram::Histogram(std::string name, double lo, double hi,
                     std::size_t buckets, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc)), lo_(lo), hi_(hi)
{
    panic_if(buckets == 0, "histogram needs at least one bucket");
    panic_if(hi <= lo, "histogram range is empty");
    width_ = (hi - lo) / double(buckets);
    counts_.assign(buckets, 0);
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    // NaN fails every range comparison below, and feeding it to the
    // bucket-index division is UB; tally it separately so broken
    // samples can never masquerade as last-bucket mass.
    if (std::isnan(v)) {
        nan_ += weight;
        return;
    }
    total_ += weight;
    if (v < lo_) {
        underflow_ += weight;
        return;
    }
    if (v > hi_) {
        overflow_ += weight;
        return;
    }
    // The range is inclusive at both ends: v == hi (and any value the
    // division rounds past the last bucket) lands in the last bucket.
    auto idx = std::size_t((v - lo_) / width_);
    counts_[idx >= counts_.size() ? counts_.size() - 1 : idx] += weight;
}

double
Histogram::percentile(double p) const
{
    panic_if(p < 0.0 || p > 1.0,
             "percentile needs p in [0, 1], got %f", p);
    if (total_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    const double need = p * double(total_);
    double cum = double(underflow_);
    if (underflow_ > 0 && need <= cum)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        double c = double(counts_[i]);
        if (need <= cum + c) {
            double frac = (need - cum) / c;
            if (frac < 0.0)
                frac = 0.0;
            return bucketLow(i) + width_ * frac;
        }
        cum += c;
    }
    // Only overflow mass remains past the last bucket.
    return hi_;
}

void
Histogram::reset()
{
    counts_.assign(counts_.size(), 0);
    underflow_ = 0;
    overflow_ = 0;
    nan_ = 0;
    total_ = 0;
}

void
TimeSeries::record(Tick when, double value)
{
    panic_if(!samples_.empty() && when < samples_.back().when,
             "time series '%s' sampled backwards in time", name_.c_str());
    samples_.push_back(TimePoint{when, value});
}

double
TimeSeries::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : samples_)
        sum += p.value;
    return sum / double(samples_.size());
}

double
TimeSeries::timeWeightedMean() const
{
    if (samples_.size() < 2)
        return samples_.empty() ? 0.0 : samples_.front().value;
    double area = 0.0;
    Tick span = samples_.back().when - samples_.front().when;
    if (span == 0)
        return mean();
    for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
        Tick dt = samples_[i + 1].when - samples_[i].when;
        area += samples_[i].value * double(dt);
    }
    return area / double(span);
}

std::vector<TimePoint>
TimeSeries::downsample(std::size_t max_points) const
{
    if (max_points == 0 || samples_.size() <= max_points)
        return samples_;
    std::vector<TimePoint> out;
    out.reserve(max_points);
    std::size_t window = (samples_.size() + max_points - 1) / max_points;
    for (std::size_t i = 0; i < samples_.size(); i += window) {
        std::size_t end = std::min(i + window, samples_.size());
        double sum = 0.0;
        for (std::size_t j = i; j < end; ++j)
            sum += samples_[j].value;
        out.push_back(TimePoint{samples_[i].when,
                                sum / double(end - i)});
    }
    return out;
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---------- " << name_ << " ----------\n";
    for (const auto *s : scalars_) {
        os << std::left << std::setw(40) << s->name() << " "
           << s->value();
        if (!s->desc().empty())
            os << "   # " << s->desc();
        os << "\n";
    }
    for (const auto *a : averages_) {
        os << std::left << std::setw(40) << a->name() << " mean="
           << a->mean() << " min=" << a->min() << " max=" << a->max()
           << " n=" << a->count();
        if (!a->desc().empty())
            os << "   # " << a->desc();
        os << "\n";
    }
    for (const auto *h : histograms_) {
        os << std::left << std::setw(40) << h->name()
           << " samples=" << h->totalSamples()
           << " under=" << h->underflow()
           << " over=" << h->overflow()
           << " nan=" << h->nanCount() << "\n";
        for (std::size_t i = 0; i < h->numBuckets(); ++i) {
            if (h->bucketCount(i) == 0)
                continue;
            os << "    [" << h->bucketLow(i) << ", " << h->bucketHigh(i)
               << ") " << h->bucketCount(i) << "\n";
        }
    }
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        panic_if(v <= 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

double
percentileExact(std::vector<double> values, double p)
{
    panic_if(p < 0.0 || p > 1.0,
             "percentile needs p in [0, 1], got %f", p);
    values.erase(std::remove_if(values.begin(), values.end(),
                                [](double v) {
                                    return std::isnan(v);
                                }),
                 values.end());
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::sort(values.begin(), values.end());
    if (p <= 0.0)
        return values.front();
    auto rank = std::size_t(std::ceil(p * double(values.size())));
    if (rank == 0)
        rank = 1;
    return values[std::min(values.size(), rank) - 1];
}

} // namespace stats
} // namespace dramless
