/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() marks simulator bugs (aborts),
 * fatal() marks user/configuration errors (clean exit), warn() and
 * inform() report conditions that do not stop the simulation.
 */

#ifndef DRAMLESS_SIM_LOGGING_HH
#define DRAMLESS_SIM_LOGGING_HH

#include <string>

namespace dramless
{

/** sprintf into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace logging_detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace logging_detail

/** Globally silence inform()/warn() output (used by benchmarks). */
void setQuiet(bool quiet);
/** @return whether inform()/warn() output is suppressed. */
bool quiet();

/**
 * Report an internal simulator error and abort. Use for conditions that
 * can never happen unless the simulator itself is broken.
 */
#define panic(...) \
    ::dramless::logging_detail::panicImpl( \
        __FILE__, __LINE__, ::dramless::csprintf(__VA_ARGS__))

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with an error code.
 */
#define fatal(...) \
    ::dramless::logging_detail::fatalImpl( \
        __FILE__, __LINE__, ::dramless::csprintf(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define warn(...) \
    ::dramless::logging_detail::warnImpl(::dramless::csprintf(__VA_ARGS__))

/** Report normal operating status. */
#define inform(...) \
    ::dramless::logging_detail::informImpl(::dramless::csprintf(__VA_ARGS__))

/** panic() if @p cond does not hold. */
#define panic_if(cond, ...) \
    do { \
        if (cond) \
            panic(__VA_ARGS__); \
    } while (0)

/** fatal() if @p cond does not hold. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            fatal(__VA_ARGS__); \
    } while (0)

} // namespace dramless

#endif // DRAMLESS_SIM_LOGGING_HH
