#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace dramless
{

Event::~Event()
{
    panic_if(_scheduled, "event destroyed while scheduled");
}

void
EventQueue::schedule(Event *ev, Tick when, int priority)
{
    panic_if(ev == nullptr, "scheduling null event");
    panic_if(ev->_scheduled, "event '%s' double-scheduled",
             ev->name().c_str());
    panic_if(when < _curTick,
             "event '%s' scheduled in the past (%llu < %llu)",
             ev->name().c_str(),
             (unsigned long long)when, (unsigned long long)_curTick);

    ev->_when = when;
    ev->_priority = priority;
    ev->_seq = nextSeq_++;
    ev->_scheduled = true;
    ev->_queue = this;
    heap_.push(Entry{when, priority, ev->_seq, ev});
    ++numPending_;
}

void
EventQueue::deschedule(Event *ev)
{
    panic_if(ev == nullptr, "descheduling null event");
    panic_if(!ev->_scheduled, "event '%s' not scheduled",
             ev->name().c_str());
    panic_if(ev->_queue != this,
             "event '%s' descheduled from a queue it is not on",
             ev->name().c_str());
    // Lazy removal: mark the entry's sequence number stale; the heap
    // entry is discarded when it reaches the top. The event pointer in
    // the stale entry is never dereferenced again, so the event may be
    // destroyed (or rescheduled on another queue) immediately.
    staleSeqs_.insert(ev->_seq);
    ev->_scheduled = false;
    ev->_queue = nullptr;
    --numPending_;
}

void
EventQueue::reschedule(Event *ev, Tick when, int priority)
{
    panic_if(ev == nullptr, "rescheduling null event");
    // Check the precondition up front: a failed reschedule must not
    // leave the event descheduled as a side effect.
    panic_if(when < _curTick,
             "event '%s' rescheduled into the past (%llu < %llu)",
             ev->name().c_str(),
             (unsigned long long)when, (unsigned long long)_curTick);
    if (ev->_scheduled)
        deschedule(ev);
    schedule(ev, when, priority);
}

void
EventQueue::skipStale() const
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        auto it = staleSeqs_.find(top.seq);
        if (it == staleSeqs_.end())
            return;
        staleSeqs_.erase(it);
        heap_.pop();
    }
}

Tick
EventQueue::nextTick() const
{
    skipStale();
    return heap_.empty() ? maxTick : heap_.top().when;
}

bool
EventQueue::step()
{
    skipStale();
    if (heap_.empty())
        return false;

    Entry top = heap_.top();
    heap_.pop();
    panic_if(top.when < _curTick, "time went backwards");
    _curTick = top.when;
    top.ev->_scheduled = false;
    top.ev->_queue = nullptr;
    --numPending_;
    ++numProcessed_;
    top.ev->process();
    return true;
}

void
EventQueue::runUntil(Tick t)
{
    while (nextTick() <= t)
        step();
    if (_curTick < t)
        _curTick = t;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && step())
        ++n;
    return n;
}

} // namespace dramless
