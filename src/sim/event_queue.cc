#include "sim/event_queue.hh"

#include <cassert>

#include "sim/logging.hh"

namespace dramless
{

std::atomic<std::uint64_t> EventFunctionWrapper::numConstructed_{0};

Event::~Event()
{
    panic_if(_scheduled, "event destroyed while scheduled");
}

void
EventQueue::siftUp(std::size_t i)
{
    Slot s = heap_[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / arity;
        if (!before(s, heap_[parent]))
            break;
        place(i, heap_[parent]);
        i = parent;
    }
    place(i, s);
}

void
EventQueue::siftDown(std::size_t i)
{
    Slot s = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t first = i * arity + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        std::size_t last = std::min(first + arity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap_[c], heap_[best]))
                best = c;
        }
        if (!before(heap_[best], s))
            break;
        place(i, heap_[best]);
        i = best;
    }
    place(i, s);
}

void
EventQueue::removeAt(std::size_t i)
{
    assert(i < heap_.size());
    Slot tail = heap_.back();
    heap_.pop_back();
    if (i == heap_.size())
        return;
    place(i, tail);
    // The tail element may belong above or below the vacated slot
    // (root pops only ever sift down).
    siftDown(i);
    if (i > 0 && tail.ev->_heapIdx == i)
        siftUp(i);
}

void
EventQueue::schedule(Event *ev, Tick when, int priority)
{
    panic_if(ev == nullptr, "scheduling null event");
    panic_if(ev->_scheduled, "event '%s' double-scheduled",
             ev->name().c_str());
    panic_if(when < _curTick,
             "event '%s' scheduled in the past (%llu < %llu)",
             ev->name().c_str(),
             (unsigned long long)when, (unsigned long long)_curTick);

    ev->_when = when;
    ev->_priority = priority;
    ev->_seq = nextSeq_++;
    ev->_scheduled = true;
    ev->_queue = this;
    heap_.push_back(Slot{when, priority, ev->_seq, ev});
    siftUp(heap_.size() - 1);
}

void
EventQueue::deschedule(Event *ev)
{
    panic_if(ev == nullptr, "descheduling null event");
    panic_if(!ev->_scheduled, "event '%s' not scheduled",
             ev->name().c_str());
    panic_if(ev->_queue != this,
             "event '%s' descheduled from a queue it is not on",
             ev->name().c_str());
    // Eager removal: unlink the heap slot now. The event may be
    // destroyed (or rescheduled on another queue) immediately.
    removeAt(ev->_heapIdx);
    ev->_scheduled = false;
    ev->_queue = nullptr;
}

void
EventQueue::reschedule(Event *ev, Tick when, int priority)
{
    panic_if(ev == nullptr, "rescheduling null event");
    // Check the precondition up front: a failed reschedule must not
    // leave the event descheduled as a side effect.
    panic_if(when < _curTick,
             "event '%s' rescheduled into the past (%llu < %llu)",
             ev->name().c_str(),
             (unsigned long long)when, (unsigned long long)_curTick);
    if (!ev->_scheduled) {
        schedule(ev, when, priority);
        return;
    }
    panic_if(ev->_queue != this,
             "event '%s' descheduled from a queue it is not on",
             ev->name().c_str());
    // Re-key in place. The sequence number is refreshed exactly as the
    // historical deschedule+schedule pair did, preserving the global
    // pop order bit for bit.
    ev->_when = when;
    ev->_priority = priority;
    ev->_seq = nextSeq_++;
    std::size_t i = ev->_heapIdx;
    heap_[i] = Slot{when, priority, ev->_seq, ev};
    siftDown(i);
    if (ev->_heapIdx == i)
        siftUp(i);
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;

    Event *ev = heap_.front().ev;
    panic_if(heap_.front().when < _curTick, "time went backwards");
    _curTick = heap_.front().when;
    removeAt(0);
    ev->_scheduled = false;
    ev->_queue = nullptr;
    ++numProcessed_;
    ev->process();
    return true;
}

void
EventQueue::runUntil(Tick t)
{
    while (nextTick() <= t)
        step();
    if (_curTick < t)
        _curTick = t;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && step())
        ++n;
    return n;
}

bool
EventQueue::selfCheck() const
{
    for (std::size_t i = 0; i < heap_.size(); ++i) {
        const Slot &s = heap_[i];
        if (s.ev == nullptr || s.ev->_heapIdx != i)
            return false;
        if (!s.ev->_scheduled || s.ev->_queue != this)
            return false;
        if (s.when != s.ev->_when || s.priority != s.ev->_priority ||
            s.seq != s.ev->_seq)
            return false;
        if (i > 0 && before(s, heap_[(i - 1) / arity]))
            return false;
    }
    return true;
}

} // namespace dramless
