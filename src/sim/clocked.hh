/**
 * @file
 * Clock-domain helper for components that operate on discrete edges.
 */

#ifndef DRAMLESS_SIM_CLOCKED_HH
#define DRAMLESS_SIM_CLOCKED_HH

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace dramless
{

/**
 * Mixin giving a component a clock period and helpers to align activity
 * to clock edges of its domain.
 */
class Clocked
{
  public:
    /**
     * @param eq the event queue providing simulated time
     * @param period_ticks clock period in ticks (> 0)
     */
    Clocked(EventQueue &eq, Tick period_ticks)
        : eventq_(eq), period_(period_ticks)
    {
        panic_if(period_ == 0, "zero clock period");
    }

    /** @return clock period in ticks. */
    Tick clockPeriod() const { return period_; }

    /** @return clock frequency in MHz. */
    double frequencyMhz() const { return 1e6 / double(period_); }

    /** Convert a cycle count of this domain to ticks. */
    Tick cyclesToTicks(Cycles c) const { return Tick(c) * period_; }

    /** Convert ticks to whole cycles of this domain (rounding up). */
    Cycles ticksToCycles(Tick t) const
    {
        return Cycles((t + period_ - 1) / period_);
    }

    /**
     * @return the tick of the next clock edge at least @p cycles cycles
     * after the current tick (edges are aligned to multiples of the
     * period).
     */
    Tick
    clockEdge(Cycles cycles = 0) const
    {
        Tick now = eventq_.curTick();
        Tick next = ((now + period_ - 1) / period_) * period_;
        if (next == now && cycles == 0)
            return now;
        if (next == now)
            return now + cyclesToTicks(cycles);
        return next + (cycles == 0 ? 0 : cyclesToTicks(cycles - 1));
    }

    /** @return the event queue this component operates on. */
    EventQueue &eventQueue() const { return eventq_; }

    /** @return the current simulated tick. */
    Tick curTick() const { return eventq_.curTick(); }

  private:
    EventQueue &eventq_;
    Tick period_;
};

} // namespace dramless

#endif // DRAMLESS_SIM_CLOCKED_HH
