/**
 * @file
 * Traced monotonic-in-time counters.
 *
 * A Counter tracks a level (queue depth, slot occupancy, backlog)
 * and, when tracing is enabled, emits a counter sample on every
 * change so the level renders as a step graph in Perfetto. When
 * tracing is off an update is a double add on a member — the counter
 * never touches simulated state, so enabling it cannot perturb a run.
 *
 * Category and name must be string literals (the trace layer stores
 * the pointers).
 */

#ifndef DRAMLESS_SIM_COUNTERS_HH
#define DRAMLESS_SIM_COUNTERS_HH

#include <string>
#include <utility>

#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace dramless
{
namespace trace
{

/** A traced level counter (queue depth, occupancy, ...). */
class Counter
{
  public:
    Counter(const char *category, std::string track, const char *name)
        : category_(category), name_(name), track_(std::move(track))
    {}

    /** Set the level to @p v at time @p when. */
    void
    set(Tick when, double v)
    {
        level_ = v;
        if (auto *t = current())
            t->counter(category_, track_, name_, when, level_);
    }

    /** Add @p delta to the level at time @p when. */
    void add(Tick when, double delta) { set(when, level_ + delta); }
    void inc(Tick when) { add(when, 1.0); }
    void dec(Tick when) { add(when, -1.0); }

    double level() const { return level_; }

    /** Rename the track (e.g. once the owner learns its instance id). */
    void setTrack(std::string track) { track_ = std::move(track); }

  private:
    const char *category_;
    const char *name_;
    std::string track_;
    double level_ = 0.0;
};

} // namespace trace
} // namespace dramless

#endif // DRAMLESS_SIM_COUNTERS_HH
