#include "sim/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace dramless
{

namespace
{

bool quietFlag = false;

} // anonymous namespace

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(size_t(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), size_t(len));
}

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

namespace logging_detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace logging_detail

} // namespace dramless
