/**
 * @file
 * Recycling pool for transient one-shot events.
 *
 * Device models occasionally need fire-and-forget callbacks whose
 * count is data-dependent (boot-time agent launches, per-chunk
 * sequencing). Allocating a fresh heap event per callback puts the
 * allocator on the simulated-time path; this pool keeps a slab of
 * reusable slots instead. A slot returns itself to the free list
 * before invoking its callback, so a callback that immediately
 * schedules another pool event reuses the very slot it ran on —
 * steady state needs exactly as many slots as the peak number of
 * simultaneously-pending callbacks, and never touches the allocator
 * once that peak has been reached (small lambdas stay within
 * std::function's inline buffer).
 */

#ifndef DRAMLESS_SIM_EVENT_POOL_HH
#define DRAMLESS_SIM_EVENT_POOL_HH

#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace dramless
{

/** A slab of reusable one-shot events bound to one queue. */
class EventPool
{
  public:
    /**
     * @param eq queue the pool schedules on
     * @param name diagnostic name prefix for the pooled events
     */
    EventPool(EventQueue &eq, std::string name)
        : eq_(eq), name_(std::move(name))
    {}

    EventPool(const EventPool &) = delete;
    EventPool &operator=(const EventPool &) = delete;

    /** Pending callbacks are cancelled; their closures are dropped. */
    ~EventPool()
    {
        for (Slot &s : slab_) {
            if (s.scheduled())
                eq_.deschedule(&s);
        }
    }

    /**
     * Run @p fn once at absolute tick @p when. Reuses a free slot when
     * one exists; grows the slab (stable addresses) otherwise.
     */
    void
    schedule(Tick when, std::function<void()> fn, int priority = 0)
    {
        Slot *slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
        } else {
            slab_.emplace_back(this);
            slot = &slab_.back();
        }
        slot->fn = std::move(fn);
        eq_.schedule(slot, when, priority);
    }

    /** @return slots ever created (the high-water mark of pending). */
    std::size_t capacity() const { return slab_.size(); }

    /** @return slots currently idle and reusable. */
    std::size_t idle() const { return free_.size(); }

  private:
    struct Slot : Event
    {
        explicit Slot(EventPool *pool) : pool(pool) {}

        void
        process() override
        {
            // Release the slot before running: the callback may
            // schedule a follow-up that lands right back on it.
            std::function<void()> f = std::move(fn);
            fn = nullptr;
            pool->free_.push_back(this);
            f();
        }

        std::string
        name() const override
        {
            return pool->name_ + ".pooled";
        }

        EventPool *pool;
        std::function<void()> fn;
    };

    EventQueue &eq_;
    std::string name_;
    /** Deque: growth never moves slots the queue holds pointers to. */
    std::deque<Slot> slab_;
    std::vector<Slot *> free_;
};

} // namespace dramless

#endif // DRAMLESS_SIM_EVENT_POOL_HH
