#include "sim/debug.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <set>
#include <sstream>

namespace dramless
{
namespace debug
{

namespace
{

std::atomic<int> numEnabled{0};
std::set<std::string> &
flagSet()
{
    static std::set<std::string> flags;
    return flags;
}

std::ostream *outStream = nullptr;

/** Parse DRAMLESS_DEBUG once. */
void
parseEnvOnce()
{
    static bool parsed = false;
    if (parsed)
        return;
    parsed = true;
    const char *env = std::getenv("DRAMLESS_DEBUG");
    if (env == nullptr)
        return;
    std::stringstream ss(env);
    std::string flag;
    while (std::getline(ss, flag, ',')) {
        if (!flag.empty())
            enableFlag(flag);
    }
}

struct EnvInit
{
    EnvInit() { parseEnvOnce(); }
} envInit;

} // anonymous namespace

bool
anyEnabled()
{
    return numEnabled.load(std::memory_order_relaxed) > 0;
}

bool
flagEnabled(const char *flag)
{
    const auto &flags = flagSet();
    return flags.count(flag) > 0 || flags.count("All") > 0;
}

void
enableFlag(const std::string &flag)
{
    if (flagSet().insert(flag).second)
        numEnabled.fetch_add(1, std::memory_order_relaxed);
}

void
disableFlag(const std::string &flag)
{
    if (flagSet().erase(flag) > 0)
        numEnabled.fetch_sub(1, std::memory_order_relaxed);
}

void
clearFlags()
{
    numEnabled.fetch_sub(int(flagSet().size()),
                         std::memory_order_relaxed);
    flagSet().clear();
}

std::vector<std::string>
enabledFlags()
{
    return {flagSet().begin(), flagSet().end()};
}

void
setStream(std::ostream *os)
{
    outStream = os;
}

void
print(Tick when, const std::string &name, const std::string &msg)
{
    if (outStream != nullptr) {
        *outStream << when << ": " << name << ": " << msg << "\n";
        return;
    }
    std::fprintf(stderr, "%llu: %s: %s\n",
                 (unsigned long long)when, name.c_str(),
                 msg.c_str());
}

} // namespace debug
} // namespace dramless
