#include "pram/pram_module.hh"

#include <algorithm>
#include <cstring>

#include "sim/debug.hh"
#include "sim/trace.hh"

namespace dramless
{
namespace pram
{

BurstLength
burstForBytes(std::uint32_t len)
{
    panic_if(len == 0, "zero-length burst");
    if (len <= 8)
        return BurstLength::BL4;
    if (len <= 16)
        return BurstLength::BL8;
    panic_if(len > 32, "burst longer than one row buffer (%u B)", len);
    return BurstLength::BL16;
}

PramModule::PramModule(EventQueue &eq, const PramGeometry &geom,
                       const PramTiming &timing, std::string name,
                       bool functional)
    : Clocked(eq, timing.tCK),
      geom_(geom),
      timing_(timing),
      name_(std::move(name)),
      decomposer_(geom),
      rabs_(geom.numRowBuffers),
      rdbs_(geom.numRowBuffers),
      partitions_(geom.partitionsPerBank)
{
    panic_if(!timing.valid(), "invalid PRAM timing for %s",
             name_.c_str());
    for (auto &rdb : rdbs_)
        rdb.data.assign(geom_.rowBufferBytes, 0);
    if (functional)
        store_ = std::make_unique<SparseMemory>(geom_.moduleBytes());
    // By default map the overlay window at the top of the module's
    // address space; the controller's initializer may move it.
    window_.setBase(geom_.moduleBytes() - window_.windowBytes());
}

Tick
PramModule::preActive(std::uint32_t ba, std::uint64_t upper_row,
                      std::uint32_t partition)
{
    panic_if(ba >= rabs_.size(), "RAB index %u out of range", ba);
    panic_if(partition >= geom_.partitionsPerBank,
             "partition %u out of range", partition);
    Rab &rab = rabs_[ba];
    rab.valid = true;
    rab.upperRow = upper_row;
    rab.partition = partition;
    rab.readyAt = curTick() + timing_.preActiveTime();
    ++stats_.numPreActive;
    if (auto *t = trace::current())
        t->complete(trace::catPram, name_, "preActive", curTick(),
                    rab.readyAt);
    return rab.readyAt;
}

Tick
PramModule::activate(std::uint32_t ba, std::uint64_t lower_row)
{
    panic_if(ba >= rabs_.size(), "RAB index %u out of range", ba);
    const Rab &rab = rabs_[ba];
    panic_if(!rab.valid, "%s: activate with invalid RAB %u",
             name_.c_str(), ba);
    panic_if(rab.readyAt > curTick(),
             "%s: activate before pre-active completes", name_.c_str());

    std::uint64_t row = decomposer_.mergeRow(rab.upperRow, lower_row);
    std::uint64_t row_addr = decomposer_.compose(rab.partition, row, 0);

    Rdb &rdb = rdbs_[ba];
    rdb.valid = true;
    rdb.row = row;
    rdb.partition = rab.partition;
    rdb.readyAt = curTick() + timing_.tRCD;
    ++stats_.numActivate;
    if (auto *t = trace::current())
        t->complete(trace::catPram, name_, "activate", curTick(),
                    rdb.readyAt);

    // During tRCD the module checks whether the composed row falls in
    // the overlay window; register rows never touch a partition.
    if (window_.contains(row_addr)) {
        rdb.overlay = true;
        ++stats_.numOverlayActivate;
        return rdb.readyAt;
    }

    rdb.overlay = false;
    DPRINTF("Pram", "activate ba=%u partition=%u row=%llu", ba,
            rab.partition, (unsigned long long)row);
    Partition &part = partitions_[rab.partition];
    panic_if(part.busyUntil > curTick(),
             "%s: activate on busy partition %u (busy until %llu)",
             name_.c_str(), rab.partition,
             (unsigned long long)part.busyUntil);
    occupyPartition(rab.partition, curTick(), rdb.readyAt);
    if (store_)
        store_->read(row_addr, rdb.data.data(), geom_.rowBufferBytes);
    return rdb.readyAt;
}

BurstTiming
PramModule::readBurst(std::uint32_t ba, std::uint32_t column,
                      std::uint32_t len, void *out)
{
    panic_if(ba >= rdbs_.size(), "RDB index %u out of range", ba);
    const Rdb &rdb = rdbs_[ba];
    panic_if(!rdb.valid, "%s: read from invalid RDB %u",
             name_.c_str(), ba);
    panic_if(rdb.readyAt > curTick(),
             "%s: read before RDB %u is ready", name_.c_str(), ba);
    panic_if(column + len > geom_.rowBufferBytes,
             "%s: read burst beyond row buffer", name_.c_str());

    BurstTiming t;
    t.firstData = curTick() + timing_.readPreamble();
    t.lastData = t.firstData + timing_.burstTime(burstForBytes(len));
    ++stats_.numReadBursts;
    stats_.bytesRead += len;
    if (auto *tr = trace::current())
        tr->complete(trace::catPram, name_, "readBurst", t.firstData,
                     t.lastData);

    if (out != nullptr) {
        if (rdb.overlay) {
            std::uint64_t row_addr =
                decomposer_.compose(rdb.partition, rdb.row, 0);
            std::uint32_t off = std::uint32_t(
                row_addr + column - window_.base());
            if (off == ow::statusReg && len == 4) {
                std::uint32_t status =
                    curTick() >= programBusyUntil_ ? ow::statusReady
                                                   : ow::statusBusy;
                std::memcpy(out, &status, 4);
            } else if (off >= ow::programBufferBase) {
                window_.readProgramBuffer(
                    off - ow::programBufferBase, out, len);
            } else if (len == 4) {
                std::uint32_t v = window_.readReg(off);
                std::memcpy(out, &v, 4);
            } else {
                panic("%s: unsupported overlay read at offset 0x%x",
                      name_.c_str(), off);
            }
        } else {
            std::memcpy(out, rdb.data.data() + column, len);
        }
    }
    return t;
}

BurstTiming
PramModule::writeBurst(std::uint32_t ba, std::uint32_t column,
                       std::uint32_t len, const void *in)
{
    panic_if(ba >= rdbs_.size(), "RDB index %u out of range", ba);
    const Rdb &rdb = rdbs_[ba];
    panic_if(!rdb.valid, "%s: write through invalid RDB %u",
             name_.c_str(), ba);
    panic_if(rdb.readyAt > curTick(),
             "%s: write before RDB %u resolves", name_.c_str(), ba);
    panic_if(!rdb.overlay,
             "%s: direct array write is illegal on this device; all "
             "persistent writes go through the overlay window",
             name_.c_str());
    panic_if(column + len > geom_.rowBufferBytes,
             "%s: write burst beyond row buffer", name_.c_str());

    BurstTiming t;
    t.firstData = curTick() + timing_.writePreamble();
    t.lastData = t.firstData + timing_.burstTime(burstForBytes(len));
    Tick effect = t.lastData + timing_.tWRA;
    ++stats_.numWriteBursts;
    if (auto *tr = trace::current())
        tr->complete(trace::catPram, name_, "writeBurst", t.firstData,
                     t.lastData);

    std::uint64_t row_addr =
        decomposer_.compose(rdb.partition, rdb.row, 0);
    std::uint32_t off =
        std::uint32_t(row_addr + column - window_.base());

    if (off >= ow::programBufferBase) {
        window_.writeProgramBuffer(off - ow::programBufferBase, in,
                                   len);
    } else {
        panic_if(len != 4,
                 "%s: overlay register writes must be 4 bytes",
                 name_.c_str());
        std::uint32_t v;
        std::memcpy(&v, in, 4);
        window_.writeReg(off, v);
        if (off == ow::executeReg)
            execute(effect);
    }
    return t;
}

void
PramModule::execute(Tick start)
{
    // Prune completed programs, then claim a slot.
    std::erase_if(programEnds_,
                  [start](Tick t) { return t <= start; });
    panic_if(programEnds_.size() >= geom_.programSlots,
             "%s: execute with no free program slot", name_.c_str());
    lastProgramVerifyFailed_ = false;
    switch (window_.code()) {
      case ow::cmdBufferProgram:
        startProgram(start);
        break;
      case ow::cmdPartitionErase:
        startErase(start);
        break;
      default:
        panic("%s: execute with unknown command code 0x%x",
              name_.c_str(), window_.code());
    }
}

void
PramModule::startProgram(Tick start)
{
    std::uint64_t first_word = window_.address();
    std::uint32_t bytes = window_.multiPurpose();
    panic_if(bytes == 0, "%s: zero-byte program", name_.c_str());
    panic_if(bytes > window_.programBufferBytes(),
             "%s: program larger than the program buffer",
             name_.c_str());
    std::uint32_t words =
        (bytes + geom_.rowBufferBytes - 1) / geom_.rowBufferBytes;

    // The single write driver programs the buffered words serially.
    Tick when = start;
    std::vector<std::uint8_t> word(geom_.rowBufferBytes, 0);
    for (std::uint32_t i = 0; i < words; ++i) {
        std::uint64_t word_idx = first_word + i;
        std::uint64_t addr = word_idx * geom_.rowBufferBytes;
        panic_if(addr >= geom_.moduleBytes(),
                 "%s: program beyond module capacity", name_.c_str());
        DecomposedAddress d = decomposer_.decompose(addr);
        panic_if(partitions_[d.partition].busyUntil > when,
                 "%s: program launched on busy partition %u",
                 name_.c_str(), d.partition);

        // Any RDB holding this row now goes stale: the array content
        // changes beneath it, so the sensed copy must be dropped or a
        // later phase-skipped read would return old data.
        for (Rdb &rdb : rdbs_) {
            if (rdb.valid && !rdb.overlay && rdb.row == d.row &&
                rdb.partition == d.partition) {
                rdb.valid = false;
            }
        }
        window_.readProgramBuffer(i * geom_.rowBufferBytes,
                                  word.data(), geom_.rowBufferBytes);
        bool all_zero = std::all_of(word.begin(), word.end(),
                                    [](std::uint8_t b) {
                                        return b == 0;
                                    });
        ProgramKind kind = classifyProgram(word_idx, all_zero);
        Tick latency = programLatency(kind);
        if (faults_) {
            // Wear counts every program attempt (retries included):
            // each pulse train stresses the cells, and a fresh wear
            // value gives each re-pulse an independent fault draw.
            std::uint64_t wear = ++wordWear_[word_idx];
            maxWordWear_ = std::max(maxWordWear_, wear);
            latency = faults_->programLatency(faultSalt_, word_idx,
                                              wear, latency);
            if (faults_->programFails(faultSalt_, word_idx, wear)) {
                lastProgramVerifyFailed_ = true;
                ++stats_.numVerifyFailures;
                if (auto *t = trace::current()) {
                    t->instant(trace::catPram, name_,
                               "program.verifyFail", when);
                }
            }
        }
        DPRINTF("Pram", "program word=%llu partition=%u kind=%s "
                "latency=%.1fus",
                (unsigned long long)word_idx, d.partition,
                kind == ProgramKind::pristineProgram ? "pristine"
                : kind == ProgramKind::overwrite ? "overwrite"
                                                 : "reset-only",
                toUs(latency));
        if (auto *t = trace::current()) {
            t->complete(trace::catPram, name_,
                        kind == ProgramKind::pristineProgram
                            ? "program.pristine"
                        : kind == ProgramKind::overwrite
                            ? "program.overwrite"
                            : "program.resetOnly",
                        when, when + latency);
        }
        occupyPartition(d.partition, when, when + latency);
        partitions_[d.partition].programCount++;
        setWordPristine(d.partition, d.row,
                        kind == ProgramKind::resetOnly);
        if (store_)
            store_->write(addr, word.data(), geom_.rowBufferBytes);

        ++stats_.numPrograms;
        stats_.bytesWritten += geom_.rowBufferBytes;
        switch (kind) {
          case ProgramKind::pristineProgram:
            ++stats_.numPristinePrograms;
            break;
          case ProgramKind::overwrite:
            ++stats_.numOverwrites;
            break;
          case ProgramKind::resetOnly:
            ++stats_.numResetOnlyPrograms;
            break;
        }
        when += latency;
    }
    programEnds_.push_back(when);
    lastProgramEnd_ = when;
    programBusyUntil_ = std::max(programBusyUntil_, when);
    if (auto *t = trace::current()) {
        t->counter(trace::catPram, name_, "programSlotsBusy", start,
                   double(programEnds_.size()));
    }
}

void
PramModule::startErase(Tick start)
{
    std::uint32_t partition = std::uint32_t(window_.address());
    panic_if(partition >= geom_.partitionsPerBank,
             "%s: erase of nonexistent partition %u", name_.c_str(),
             partition);
    Partition &part = partitions_[partition];
    panic_if(part.busyUntil > start,
             "%s: erase launched on busy partition", name_.c_str());
    occupyPartition(partition, start, start + timing_.eraseLatency);
    // Every sensed copy of this partition goes stale.
    for (Rdb &rdb : rdbs_) {
        if (rdb.valid && !rdb.overlay && rdb.partition == partition)
            rdb.valid = false;
    }
    part.mostlyPristine = true;
    part.exceptions.clear();
    Tick end = start + timing_.eraseLatency;
    programEnds_.push_back(end);
    lastProgramEnd_ = end;
    programBusyUntil_ = std::max(programBusyUntil_, end);
    ++stats_.numErases;
    if (auto *t = trace::current())
        t->complete(trace::catPram, name_, "erase", start, end);
}

void
PramModule::occupyPartition(std::uint32_t partition, Tick from,
                            Tick until)
{
    Partition &part = partitions_[partition];
    part.busyUntil = std::max(part.busyUntil, until);
    stats_.partitionBusyTicks += until - from;
}

Tick
PramModule::programSlotFreeAt() const
{
    Tick now = curTick();
    std::uint32_t active = 0;
    Tick earliest = maxTick;
    for (Tick end : programEnds_) {
        if (end > now) {
            ++active;
            earliest = std::min(earliest, end);
        }
    }
    return active < geom_.programSlots ? now : earliest;
}

std::uint64_t
PramModule::partitionProgramCount(std::uint32_t partition) const
{
    return partitions_.at(partition).programCount;
}

bool
PramModule::wordIsPristine(std::uint64_t word_index) const
{
    std::uint64_t addr = word_index * geom_.rowBufferBytes;
    DecomposedAddress d = decomposer_.decompose(addr);
    return rowIsPristine(d.partition, d.row);
}

ProgramKind
PramModule::classifyProgram(std::uint64_t word_index,
                            bool all_zero) const
{
    if (all_zero)
        return ProgramKind::resetOnly;
    return wordIsPristine(word_index) ? ProgramKind::pristineProgram
                                      : ProgramKind::overwrite;
}

Tick
PramModule::programLatency(ProgramKind kind) const
{
    switch (kind) {
      case ProgramKind::pristineProgram:
        return timing_.cellProgram;
      case ProgramKind::overwrite:
        return timing_.cellOverwrite;
      case ProgramKind::resetOnly:
        return timing_.cellResetOnly;
    }
    panic("unreachable program kind");
}

void
PramModule::setWordPristine(std::uint32_t partition, std::uint64_t row,
                            bool pristine)
{
    Partition &part = partitions_[partition];
    bool is_exception = (pristine != part.mostlyPristine);
    if (is_exception)
        part.exceptions.insert(row);
    else
        part.exceptions.erase(row);
}

bool
PramModule::rowIsPristine(std::uint32_t partition,
                          std::uint64_t row) const
{
    const Partition &part = partitions_[partition];
    bool is_exception = part.exceptions.count(row) > 0;
    return part.mostlyPristine != is_exception;
}

void
PramModule::functionalWrite(std::uint64_t addr, const void *src,
                            std::uint64_t len)
{
    panic_if(!store_, "%s has no functional store", name_.c_str());
    store_->write(addr, src, len);
    // Data now exists in the array: mark the covered words programmed.
    std::uint64_t first = addr / geom_.rowBufferBytes;
    std::uint64_t last = (addr + len - 1) / geom_.rowBufferBytes;
    for (std::uint64_t w = first; w <= last; ++w) {
        DecomposedAddress d =
            decomposer_.decompose(w * geom_.rowBufferBytes);
        setWordPristine(d.partition, d.row, false);
    }
}

void
PramModule::functionalRead(std::uint64_t addr, void *dst,
                           std::uint64_t len) const
{
    panic_if(!store_, "%s has no functional store", name_.c_str());
    store_->read(addr, dst, len);
}

} // namespace pram
} // namespace dramless
