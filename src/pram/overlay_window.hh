/**
 * @file
 * Overlay window and program buffer of a PRAM module (Figure 4).
 *
 * The overlay window is a register region mapped into the PRAM address
 * space at a configurable base (the OWBA). It carries 128 bytes of
 * meta-information, a control register set (command code, data
 * address, execute, status), and the program buffer through which all
 * persistent writes flow.
 */

#ifndef DRAMLESS_PRAM_OVERLAY_WINDOW_HH
#define DRAMLESS_PRAM_OVERLAY_WINDOW_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace pram
{

/** Byte offsets of the overlay window registers (Section V-B). */
namespace ow
{
/** Command code register: memory operation type. */
constexpr std::uint32_t codeReg = 0x80;
/** Data (row) address register. */
constexpr std::uint32_t addressReg = 0x8B;
/** Multi-purpose register: burst size in bytes. */
constexpr std::uint32_t multiPurposeReg = 0x93;
/** Execute register: writing it launches the programmed operation. */
constexpr std::uint32_t executeReg = 0xC0;
/** Status register: progress of the in-flight partition operation. */
constexpr std::uint32_t statusReg = 0xC8;
/** Start of the program buffer. */
constexpr std::uint32_t programBufferBase = 0x800;

/** Command codes accepted by the code register. */
enum Command : std::uint32_t
{
    cmdNone = 0x00,
    /** Buffered word program via the program buffer. */
    cmdBufferProgram = 0xE9,
    /** Bulk partition erase. */
    cmdPartitionErase = 0x20,
};

/** Status register values. */
enum Status : std::uint32_t
{
    statusReady = 0x80,
    statusBusy = 0x00,
};
} // namespace ow

/**
 * Register-accurate overlay window model. The owner (PramModule)
 * interprets execute-register writes; this class only models the
 * register file and the program buffer storage.
 */
class OverlayWindow
{
  public:
    /** @param program_buffer_bytes capacity of the program buffer. */
    explicit OverlayWindow(std::uint32_t program_buffer_bytes = 256)
        : programBuffer_(program_buffer_bytes, 0)
    {}

    /** @return total mapped size: registers plus program buffer. */
    std::uint32_t
    windowBytes() const
    {
        return ow::programBufferBase +
               std::uint32_t(programBuffer_.size());
    }

    /** Set the overlay window base address (word-aligned byte addr). */
    void setBase(std::uint64_t owba) { base_ = owba; }
    /** @return the overlay window base address. */
    std::uint64_t base() const { return base_; }

    /** @return true when module byte address @p addr maps into the
     *  window. */
    bool
    contains(std::uint64_t addr) const
    {
        return addr >= base_ && addr < base_ + windowBytes();
    }

    /** Write a 32-bit register at window offset @p offset. */
    void
    writeReg(std::uint32_t offset, std::uint32_t value)
    {
        switch (offset) {
          case ow::codeReg:
            code_ = value;
            break;
          case ow::addressReg:
            address_ = value;
            break;
          case ow::multiPurposeReg:
            multiPurpose_ = value;
            break;
          case ow::executeReg:
            execute_ = value;
            break;
          case ow::statusReg:
            panic("status register is read-only");
          default:
            panic("write to unknown overlay register 0x%x", offset);
        }
    }

    /** Read a 32-bit register at window offset @p offset. */
    std::uint32_t
    readReg(std::uint32_t offset) const
    {
        switch (offset) {
          case ow::codeReg:
            return code_;
          case ow::addressReg:
            return std::uint32_t(address_);
          case ow::multiPurposeReg:
            return multiPurpose_;
          case ow::statusReg:
            return status_;
          default:
            panic("read of unknown overlay register 0x%x", offset);
        }
    }

    /** Write bytes into the program buffer at @p offset. */
    void
    writeProgramBuffer(std::uint32_t offset, const void *data,
                       std::uint32_t len)
    {
        panic_if(offset + len > programBuffer_.size(),
                 "program buffer overflow (%u + %u > %zu)",
                 offset, len, programBuffer_.size());
        std::memcpy(programBuffer_.data() + offset, data, len);
    }

    /** Read bytes out of the program buffer. */
    void
    readProgramBuffer(std::uint32_t offset, void *out,
                      std::uint32_t len) const
    {
        panic_if(offset + len > programBuffer_.size(),
                 "program buffer overread");
        std::memcpy(out, programBuffer_.data() + offset, len);
    }

    /** @return program buffer capacity in bytes. */
    std::uint32_t
    programBufferBytes() const
    {
        return std::uint32_t(programBuffer_.size());
    }

    /** @return the currently latched command code. */
    std::uint32_t code() const { return code_; }
    /** @return the currently latched target row address. */
    std::uint64_t address() const { return address_; }
    /** @return the currently latched burst size in bytes. */
    std::uint32_t multiPurpose() const { return multiPurpose_; }

    /** Owner hook: mark the window busy/ready. */
    void setStatus(std::uint32_t s) { status_ = s; }

  private:
    std::uint64_t base_ = 0;
    std::uint32_t code_ = ow::cmdNone;
    std::uint64_t address_ = 0;
    std::uint32_t multiPurpose_ = 0;
    std::uint32_t execute_ = 0;
    std::uint32_t status_ = ow::statusReady;
    std::vector<std::uint8_t> programBuffer_;
};

} // namespace pram
} // namespace dramless

#endif // DRAMLESS_PRAM_OVERLAY_WINDOW_HH
