/**
 * @file
 * Geometry of the 3x nm multi-partition PRAM described in Section II.
 *
 * A bank contains 16 partitions; each partition holds 64 resistive
 * tiles of 2048 bitlines x 4096 wordlines; a partition is split into
 * two half partitions each able to perform 64 parallel I/O operations,
 * giving a 256-bit parallel bank access. Four RAB/RDB row-buffer pairs
 * front the bank (Table II).
 */

#ifndef DRAMLESS_PRAM_GEOMETRY_HH
#define DRAMLESS_PRAM_GEOMETRY_HH

#include <cstdint>

namespace dramless
{
namespace pram
{

/** Static layout parameters of one PRAM module (chip). */
struct PramGeometry
{
    /** Partitions per bank (Table II: 16). */
    std::uint32_t partitionsPerBank = 16;
    /** Resistive tiles per partition. */
    std::uint32_t tilesPerPartition = 64;
    /** Bitlines per tile. */
    std::uint32_t bitlinesPerTile = 2048;
    /** Wordlines per tile. */
    std::uint32_t wordlinesPerTile = 4096;
    /** Row data buffer width in bytes (256-bit parallel bank access). */
    std::uint32_t rowBufferBytes = 32;
    /** Number of RAB/RDB pairs (Table II: 4 RABs, 4 RDBs of 32 B). */
    std::uint32_t numRowBuffers = 4;
    /**
     * Concurrent in-flight cell programs per module. The controller
     * manages "multiple row/program buffers and overlay windows"
     * (Section III-B), letting programs to distinct partitions
     * overlap while the next program buffer fills.
     */
    std::uint32_t programSlots = 8;
    /** Lower-row-address bits delivered directly (not via the RAB). */
    std::uint32_t lowerRowBits = 8;

    /** Bits stored per cell (SLC PRAM). */
    static constexpr std::uint32_t bitsPerCell = 1;

    /** @return bytes a partition stores. */
    std::uint64_t
    partitionBytes() const
    {
        return std::uint64_t(tilesPerPartition) * bitlinesPerTile *
               wordlinesPerTile * bitsPerCell / 8;
    }

    /** @return bytes one module (bank) stores. */
    std::uint64_t
    moduleBytes() const
    {
        return partitionBytes() * partitionsPerBank;
    }

    /**
     * @return number of addressable rows per partition. A row is one
     * row-buffer-width (256-bit) slice served by a bank activation.
     */
    std::uint64_t
    rowsPerPartition() const
    {
        return partitionBytes() / rowBufferBytes;
    }

    /** @return true when the parameters are internally consistent. */
    bool
    valid() const
    {
        return partitionsPerBank > 0 && tilesPerPartition > 0 &&
               bitlinesPerTile > 0 && wordlinesPerTile > 0 &&
               rowBufferBytes > 0 && numRowBuffers > 0 &&
               (rowBufferBytes & (rowBufferBytes - 1)) == 0 &&
               partitionBytes() % rowBufferBytes == 0;
    }

    /** @return the Table II / Section II-A configuration. */
    static PramGeometry
    paperDefault()
    {
        return PramGeometry{};
    }
};

} // namespace pram
} // namespace dramless

#endif // DRAMLESS_PRAM_GEOMETRY_HH
