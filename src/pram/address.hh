/**
 * @file
 * Address decomposition for the multi-partition PRAM.
 *
 * A module byte address is split into a word (row-buffer-width unit),
 * a partition, a row within the partition, and a column within the
 * word. The row is further split into the upper row address (shipped
 * to a RAB in the pre-active phase) and the lower row address
 * (delivered directly in the activate phase), per Section II-B.
 */

#ifndef DRAMLESS_PRAM_ADDRESS_HH
#define DRAMLESS_PRAM_ADDRESS_HH

#include <cstdint>

#include "pram/geometry.hh"
#include "sim/logging.hh"

namespace dramless
{
namespace pram
{

/** All fields of a decomposed PRAM module address. */
struct DecomposedAddress
{
    /** Target partition within the bank. */
    std::uint32_t partition;
    /** Row within the partition (one row = one row-buffer width). */
    std::uint64_t row;
    /** Upper bits of the row, held by a RAB. */
    std::uint64_t upperRow;
    /** Lower bits of the row, sent with the activate command. */
    std::uint64_t lowerRow;
    /** Byte offset within the row buffer. */
    std::uint32_t column;

    bool
    operator==(const DecomposedAddress &o) const
    {
        return partition == o.partition && row == o.row &&
               upperRow == o.upperRow && lowerRow == o.lowerRow &&
               column == o.column;
    }
};

/**
 * Maps byte addresses to PRAM coordinates. Consecutive words are
 * interleaved across partitions (word i lives in partition
 * i mod P) so streaming accesses exercise partition parallelism,
 * matching the layout the DRAM-less server relies on when issuing
 * 32-byte-per-bank requests.
 */
class AddressDecomposer
{
  public:
    explicit AddressDecomposer(const PramGeometry &geom) : geom_(geom)
    {
        panic_if(!geom.valid(), "invalid PRAM geometry");
        lowerMask_ = (std::uint64_t(1) << geom.lowerRowBits) - 1;
    }

    /** Decompose module byte address @p addr. */
    DecomposedAddress
    decompose(std::uint64_t addr) const
    {
        panic_if(addr >= geom_.moduleBytes(),
                 "address 0x%llx beyond module capacity",
                 (unsigned long long)addr);
        std::uint64_t word = addr / geom_.rowBufferBytes;
        DecomposedAddress d;
        d.column = std::uint32_t(addr % geom_.rowBufferBytes);
        d.partition = std::uint32_t(word % geom_.partitionsPerBank);
        d.row = word / geom_.partitionsPerBank;
        d.lowerRow = d.row & lowerMask_;
        d.upperRow = d.row >> geom_.lowerRowBits;
        return d;
    }

    /** Recompose a byte address from PRAM coordinates. */
    std::uint64_t
    compose(std::uint32_t partition, std::uint64_t row,
            std::uint32_t column) const
    {
        std::uint64_t word =
            row * geom_.partitionsPerBank + partition;
        return word * geom_.rowBufferBytes + column;
    }

    /** Merge upper and lower row addresses back into a row index. */
    std::uint64_t
    mergeRow(std::uint64_t upper_row, std::uint64_t lower_row) const
    {
        return (upper_row << geom_.lowerRowBits) |
               (lower_row & lowerMask_);
    }

    /** @return the word index (global, partition-interleaved). */
    std::uint64_t
    wordIndex(std::uint64_t addr) const
    {
        return addr / geom_.rowBufferBytes;
    }

    const PramGeometry &geometry() const { return geom_; }

  private:
    PramGeometry geom_;
    std::uint64_t lowerMask_;
};

} // namespace pram
} // namespace dramless

#endif // DRAMLESS_PRAM_ADDRESS_HH
