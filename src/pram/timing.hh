/**
 * @file
 * Characterized LPDDR2-NVM timing parameters of the PRAM sample
 * (paper Table II plus Section VI latency notes).
 */

#ifndef DRAMLESS_PRAM_TIMING_HH
#define DRAMLESS_PRAM_TIMING_HH

#include "sim/ticks.hh"

namespace dramless
{
namespace pram
{

/** Supported LPDDR2 burst lengths. */
enum class BurstLength : std::uint32_t
{
    BL4 = 4,
    BL8 = 8,
    BL16 = 16,
};

/**
 * Timing parameters of one PRAM module. All absolute values are in
 * ticks (ps); cycle-denominated parameters are scaled by tCK.
 */
struct PramTiming
{
    /** Interface clock period (400 MHz => 2.5 ns). */
    Tick tCK = fromNs(2.5);
    /** Read latency in cycles (read phase command to first data). */
    Cycles rl = 6;
    /** Write latency in cycles (write phase command to first data in). */
    Cycles wl = 3;
    /** Pre-active (RAB update) time in cycles; analogous to tRP. */
    Cycles tRP = 3;
    /** Activate time: row sense into the RDB (address composition +
     *  array access), analogous to tRCD. */
    Tick tRCD = fromNs(80);
    /** DQS output access time after RL (read preamble component). */
    Tick tDQSCK = fromNs(4.0); // characterized 2.5 - 5.5 ns
    /** DQS latching skew for writes. */
    Tick tDQSS = fromNs(1.0); // characterized 0.75 - 1.25 ns
    /** Write recovery to guarantee program-buffer contents are safe. */
    Tick tWRA = fromNs(15);
    /**
     * Cell program time when the target word is pristine (already
     * RESET): SET-only pulse train, ~10 us.
     */
    Tick cellProgram = fromUs(10);
    /**
     * Cell program time when overwriting a programmed word: RESET then
     * SET, 8 us longer than a pristine program (Section VI).
     */
    Tick cellOverwrite = fromUs(18);
    /**
     * RESET-only pulse train used by selective erasing (programming
     * an all-zero word): the SET (crystallization) tail is skipped
     * entirely, and RESET melt-quench pulses are short, so the
     * standalone pre-erase is far cheaper than the 8 us RESET train
     * embedded in a verify-stepped overwrite.
     */
    Tick cellResetOnly = fromUs(2);
    /** Bulk partition erase latency (Section V-A: ~60 ms). */
    Tick eraseLatency = fromMs(60);

    /** @return burst transfer duration: BL cycles at double data rate
     *  gives BL/2 clock periods of DQ occupancy; the paper's Table II
     *  counts tBURST directly in cycles (4/8/16), which we honour. */
    Tick
    burstTime(BurstLength bl) const
    {
        return Tick(static_cast<std::uint32_t>(bl)) * tCK;
    }

    /** @return pre-active phase duration in ticks. */
    Tick preActiveTime() const { return Tick(tRP) * tCK; }

    /** @return read preamble: RL plus DQS access time. */
    Tick readPreamble() const { return Tick(rl) * tCK + tDQSCK; }

    /** @return write preamble: WL plus DQS skew. */
    Tick writePreamble() const { return Tick(wl) * tCK + tDQSS; }

    /** @return the Table II characterization. */
    static PramTiming paperDefault() { return PramTiming{}; }

    /** @return true when all parameters are physically sensible. */
    bool
    valid() const
    {
        return tCK > 0 && rl > 0 && tRCD > 0 &&
               cellOverwrite >= cellProgram &&
               cellProgram > 0 && eraseLatency > cellOverwrite;
    }
};

} // namespace pram
} // namespace dramless

#endif // DRAMLESS_PRAM_TIMING_HH
