/**
 * @file
 * State machine of one 3x nm multi-partition PRAM module.
 *
 * The module is a passive protocol target: the FPGA controller issues
 * LPDDR2-NVM commands (pre-active, activate, read/write phase) at times
 * it guarantees to be legal, and the module validates legality, updates
 * internal resources (RABs, RDBs, program buffer, overlay window,
 * partition busy state) and reports completion ticks. Violations of
 * the protocol are simulator bugs and panic.
 */

#ifndef DRAMLESS_PRAM_PRAM_MODULE_HH
#define DRAMLESS_PRAM_PRAM_MODULE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pram/address.hh"
#include "pram/geometry.hh"
#include "pram/overlay_window.hh"
#include "pram/timing.hh"
#include "reliability/fault_model.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"
#include "sim/sparse_memory.hh"

namespace dramless
{
namespace pram
{

/** Completion times of a data burst on the DQ pins. */
struct BurstTiming
{
    /** Tick the first data beat appears on the pins. */
    Tick firstData;
    /** Tick the last data beat completes. */
    Tick lastData;
};

/** Outcome classification of a word program, for stats and timing. */
enum class ProgramKind
{
    /** SET-only program of a pristine word (~10 us). */
    pristineProgram,
    /** RESET+SET overwrite of a programmed word (~18 us). */
    overwrite,
    /** RESET-mimicking all-zero program (selective erasing, ~8 us). */
    resetOnly,
};

/** Operation counters of one module. */
struct ModuleStats
{
    std::uint64_t numPreActive = 0;
    std::uint64_t numActivate = 0;
    std::uint64_t numOverlayActivate = 0;
    std::uint64_t numReadBursts = 0;
    std::uint64_t numWriteBursts = 0;
    std::uint64_t numPrograms = 0;
    std::uint64_t numPristinePrograms = 0;
    std::uint64_t numOverwrites = 0;
    std::uint64_t numResetOnlyPrograms = 0;
    std::uint64_t numErases = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    /** Program words that failed device-side verification. */
    std::uint64_t numVerifyFailures = 0;
    /** Aggregate ticks partitions spent busy (sensing/programming). */
    Tick partitionBusyTicks = 0;
};

/**
 * One PRAM module (chip): a bank of 16 partitions fronted by four
 * RAB/RDB pairs, a program buffer, and an overlay window.
 */
class PramModule : public Clocked
{
  public:
    /**
     * @param eq event queue
     * @param geom geometry (Section II-A)
     * @param timing characterized timing (Table II)
     * @param name diagnostic name
     * @param functional keep a functional backing store when true
     */
    PramModule(EventQueue &eq, const PramGeometry &geom,
               const PramTiming &timing, std::string name,
               bool functional = true);

    /** @name LPDDR2-NVM protocol interface (driven by the controller)
     *  All commands take effect at the current queue tick. @{ */

    /**
     * Pre-active phase: latch @p upper_row (and the target partition)
     * into RAB @p ba.
     * @return tick when the RAB update completes (tRP).
     */
    Tick preActive(std::uint32_t ba, std::uint64_t upper_row,
                   std::uint32_t partition);

    /**
     * Activate phase: compose the row from RAB @p ba and @p lower_row,
     * then sense the row into the paired RDB (or resolve an overlay
     * window row without touching a partition).
     * @pre the RAB is valid and, for array rows, the partition is idle.
     * @return tick when the RDB holds valid data (tRCD).
     */
    Tick activate(std::uint32_t ba, std::uint64_t lower_row);

    /**
     * Read phase: burst @p len bytes from RDB @p ba starting at
     * @p column.
     * @pre the RDB is valid and ready.
     * @param out optional destination for functional data
     * @return data timing on the pins.
     */
    BurstTiming readBurst(std::uint32_t ba, std::uint32_t column,
                          std::uint32_t len, void *out = nullptr);

    /**
     * Write phase: burst @p len bytes into the overlay window region
     * addressed by RDB @p ba at @p column. Direct array writes are
     * illegal on this device; all persistent writes flow through the
     * overlay window's program buffer.
     * @return data timing; register side effects (e.g. execute) are
     * applied when the burst and write recovery complete.
     */
    BurstTiming writeBurst(std::uint32_t ba, std::uint32_t column,
                           std::uint32_t len, const void *in);

    /** @} */

    /** @name Controller-visible resource state @{ */

    // These accessors run once per row buffer per scheduler
    // feasibility scan — the hottest reads in the whole model — so
    // they are defined inline here rather than out-of-line in the .cc.

    /** @return true when RAB @p ba holds a latched upper row. */
    bool rabValid(std::uint32_t ba) const { return rabs_.at(ba).valid; }
    /** @return the upper row latched in RAB @p ba. */
    std::uint64_t
    rabUpperRow(std::uint32_t ba) const
    {
        return rabs_.at(ba).upperRow;
    }
    /** @return the partition latched in RAB @p ba. */
    std::uint32_t
    rabPartition(std::uint32_t ba) const
    {
        return rabs_.at(ba).partition;
    }

    /** @return true when RDB @p ba holds sensed data. */
    bool rdbValid(std::uint32_t ba) const { return rdbs_.at(ba).valid; }
    /** @return tick at which RDB @p ba data becomes usable. */
    Tick rdbReadyAt(std::uint32_t ba) const { return rdbs_.at(ba).readyAt; }
    /** @return row held by RDB @p ba. */
    std::uint64_t rdbRow(std::uint32_t ba) const { return rdbs_.at(ba).row; }
    /** @return partition of the row held by RDB @p ba. */
    std::uint32_t
    rdbPartition(std::uint32_t ba) const
    {
        return rdbs_.at(ba).partition;
    }
    /** @return true when RDB @p ba resolves into the overlay window. */
    bool rdbIsOverlay(std::uint32_t ba) const { return rdbs_.at(ba).overlay; }

    /** @return tick until which @p partition is busy. */
    Tick
    partitionBusyUntil(std::uint32_t partition) const
    {
        return partitions_.at(partition).busyUntil;
    }
    /** @return tick until which every in-flight program completes. */
    Tick programBusyUntil() const { return programBusyUntil_; }
    /**
     * @return earliest tick a program slot is available: now when
     * fewer than programSlots programs are in flight, otherwise the
     * earliest in-flight completion.
     */
    Tick programSlotFreeAt() const;
    /** @return completion tick of the most recently launched
     *  program/erase operation. */
    Tick lastProgramEnd() const { return lastProgramEnd_; }

    /** @return number of programs a partition has absorbed (wear). */
    std::uint64_t partitionProgramCount(std::uint32_t partition) const;

    /** @return true when global word @p word_index is pristine
     *  (RESET), i.e. a program to it needs only SET pulses. */
    bool wordIsPristine(std::uint64_t word_index) const;

    /** @} */

    /** @name Reliability hooks (wear tracking + fault injection) @{ */

    /**
     * Attach a fault model. Per-word wear is tracked only while a
     * model is attached (so the default configuration does zero
     * extra work); @p salt scopes this module's fault decisions so
     * modules with identical traffic fail independently.
     */
    void
    attachFaults(const reliability::FaultModel *faults,
                 std::uint64_t salt)
    {
        faults_ = faults;
        faultSalt_ = salt;
    }

    /**
     * @return true when the most recently launched program reported
     * a verify failure through the overlay-window status register.
     * Valid until the next execute.
     */
    bool
    lastProgramVerifyFailed() const
    {
        return lastProgramVerifyFailed_;
    }

    /** @return writes absorbed by word @p word_index (0 untracked). */
    std::uint64_t
    wordWear(std::uint64_t word_index) const
    {
        auto it = wordWear_.find(word_index);
        return it == wordWear_.end() ? 0 : it->second;
    }

    /** @return the highest per-word wear seen on this module. */
    std::uint64_t maxWordWear() const { return maxWordWear_; }

    /** @} */

    /** @return classification a program of @p len bytes at word
     *  @p word_index would receive, given @p all_zero data. */
    ProgramKind classifyProgram(std::uint64_t word_index,
                                bool all_zero) const;

    /** @return program latency for @p kind. */
    Tick programLatency(ProgramKind kind) const;

    /** Direct functional backdoor (no timing): used to initialize
     *  datasets before timed runs, as the paper initializes data in
     *  persistent storage before each evaluation. */
    void functionalWrite(std::uint64_t addr, const void *src,
                         std::uint64_t len);
    /** Direct functional read (no timing). */
    void functionalRead(std::uint64_t addr, void *dst,
                        std::uint64_t len) const;

    /** @return the overlay window (for initializer configuration). */
    OverlayWindow &overlayWindow() { return window_; }
    const OverlayWindow &overlayWindow() const { return window_; }

    /** @return address decomposer for this geometry. */
    const AddressDecomposer &decomposer() const { return decomposer_; }

    const PramGeometry &geometry() const { return geom_; }
    const PramTiming &timing() const { return timing_; }
    const ModuleStats &moduleStats() const { return stats_; }
    const std::string &name() const { return name_; }

  private:
    struct Rab
    {
        bool valid = false;
        std::uint64_t upperRow = 0;
        std::uint32_t partition = 0;
        Tick readyAt = 0;
    };

    struct Rdb
    {
        bool valid = false;
        std::uint64_t row = 0;
        std::uint32_t partition = 0;
        bool overlay = false;
        Tick readyAt = 0;
        std::vector<std::uint8_t> data;
    };

    struct Partition
    {
        Tick busyUntil = 0;
        /** After a bulk erase the default word state flips. */
        bool mostlyPristine = false;
        /** Words in the opposite of the default state. */
        std::unordered_set<std::uint64_t> exceptions;
        std::uint64_t programCount = 0;
    };

    /** Launch the operation latched in the overlay window registers. */
    void execute(Tick start);
    /** Program @p len bytes from the program buffer to the array. */
    void startProgram(Tick start);
    /** Bulk-erase the partition named in the address register. */
    void startErase(Tick start);

    /** Mark a partition busy and account the stats. */
    void occupyPartition(std::uint32_t partition, Tick from, Tick until);

    void setWordPristine(std::uint32_t partition, std::uint64_t row,
                         bool pristine);
    bool rowIsPristine(std::uint32_t partition, std::uint64_t row) const;

    PramGeometry geom_;
    PramTiming timing_;
    std::string name_;
    AddressDecomposer decomposer_;
    OverlayWindow window_;
    std::vector<Rab> rabs_;
    std::vector<Rdb> rdbs_;
    std::vector<Partition> partitions_;
    Tick programBusyUntil_ = 0;
    Tick lastProgramEnd_ = 0;
    /** Completion ticks of in-flight programs (bounded by
     *  geometry().programSlots). */
    std::vector<Tick> programEnds_;
    std::unique_ptr<SparseMemory> store_;
    ModuleStats stats_;

    /** Optional fault model (not owned); null == injection off. */
    const reliability::FaultModel *faults_ = nullptr;
    std::uint64_t faultSalt_ = 0;
    bool lastProgramVerifyFailed_ = false;
    /** Per-word write counts, tracked only when faults_ is set. */
    std::unordered_map<std::uint64_t, std::uint64_t> wordWear_;
    std::uint64_t maxWordWear_ = 0;
};

/** @return the smallest legal burst covering @p len bytes on a x16
 *  DDR interface (BL4 = 8 B, BL8 = 16 B, BL16 = 32 B). */
BurstLength burstForBytes(std::uint32_t len);

} // namespace pram
} // namespace dramless

#endif // DRAMLESS_PRAM_PRAM_MODULE_HH
