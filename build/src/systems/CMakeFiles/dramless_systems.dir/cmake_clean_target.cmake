file(REMOVE_RECURSE
  "libdramless_systems.a"
)
