file(REMOVE_RECURSE
  "CMakeFiles/dramless_systems.dir/backends.cc.o"
  "CMakeFiles/dramless_systems.dir/backends.cc.o.d"
  "CMakeFiles/dramless_systems.dir/energy_accounting.cc.o"
  "CMakeFiles/dramless_systems.dir/energy_accounting.cc.o.d"
  "CMakeFiles/dramless_systems.dir/factory.cc.o"
  "CMakeFiles/dramless_systems.dir/factory.cc.o.d"
  "CMakeFiles/dramless_systems.dir/hetero_system.cc.o"
  "CMakeFiles/dramless_systems.dir/hetero_system.cc.o.d"
  "CMakeFiles/dramless_systems.dir/integrated_system.cc.o"
  "CMakeFiles/dramless_systems.dir/integrated_system.cc.o.d"
  "libdramless_systems.a"
  "libdramless_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramless_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
