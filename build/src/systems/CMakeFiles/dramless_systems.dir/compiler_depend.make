# Empty compiler generated dependencies file for dramless_systems.
# This may be replaced when dependencies are built.
