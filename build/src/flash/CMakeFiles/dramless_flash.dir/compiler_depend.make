# Empty compiler generated dependencies file for dramless_flash.
# This may be replaced when dependencies are built.
