file(REMOVE_RECURSE
  "CMakeFiles/dramless_flash.dir/ftl.cc.o"
  "CMakeFiles/dramless_flash.dir/ftl.cc.o.d"
  "CMakeFiles/dramless_flash.dir/ssd.cc.o"
  "CMakeFiles/dramless_flash.dir/ssd.cc.o.d"
  "libdramless_flash.a"
  "libdramless_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramless_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
