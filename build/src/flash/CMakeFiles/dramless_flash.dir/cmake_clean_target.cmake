file(REMOVE_RECURSE
  "libdramless_flash.a"
)
