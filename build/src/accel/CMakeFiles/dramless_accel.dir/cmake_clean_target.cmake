file(REMOVE_RECURSE
  "libdramless_accel.a"
)
