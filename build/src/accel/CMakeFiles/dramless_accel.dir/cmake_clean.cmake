file(REMOVE_RECURSE
  "CMakeFiles/dramless_accel.dir/accelerator.cc.o"
  "CMakeFiles/dramless_accel.dir/accelerator.cc.o.d"
  "CMakeFiles/dramless_accel.dir/pe.cc.o"
  "CMakeFiles/dramless_accel.dir/pe.cc.o.d"
  "libdramless_accel.a"
  "libdramless_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramless_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
