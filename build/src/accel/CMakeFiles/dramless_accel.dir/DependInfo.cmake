
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accelerator.cc" "src/accel/CMakeFiles/dramless_accel.dir/accelerator.cc.o" "gcc" "src/accel/CMakeFiles/dramless_accel.dir/accelerator.cc.o.d"
  "/root/repo/src/accel/pe.cc" "src/accel/CMakeFiles/dramless_accel.dir/pe.cc.o" "gcc" "src/accel/CMakeFiles/dramless_accel.dir/pe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dramless_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
