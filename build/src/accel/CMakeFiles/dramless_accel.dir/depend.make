# Empty dependencies file for dramless_accel.
# This may be replaced when dependencies are built.
