file(REMOVE_RECURSE
  "CMakeFiles/dramless_ctrl.dir/channel_controller.cc.o"
  "CMakeFiles/dramless_ctrl.dir/channel_controller.cc.o.d"
  "CMakeFiles/dramless_ctrl.dir/pram_subsystem.cc.o"
  "CMakeFiles/dramless_ctrl.dir/pram_subsystem.cc.o.d"
  "libdramless_ctrl.a"
  "libdramless_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramless_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
