
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctrl/channel_controller.cc" "src/ctrl/CMakeFiles/dramless_ctrl.dir/channel_controller.cc.o" "gcc" "src/ctrl/CMakeFiles/dramless_ctrl.dir/channel_controller.cc.o.d"
  "/root/repo/src/ctrl/pram_subsystem.cc" "src/ctrl/CMakeFiles/dramless_ctrl.dir/pram_subsystem.cc.o" "gcc" "src/ctrl/CMakeFiles/dramless_ctrl.dir/pram_subsystem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pram/CMakeFiles/dramless_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dramless_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
