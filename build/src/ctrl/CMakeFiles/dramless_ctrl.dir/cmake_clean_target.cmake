file(REMOVE_RECURSE
  "libdramless_ctrl.a"
)
