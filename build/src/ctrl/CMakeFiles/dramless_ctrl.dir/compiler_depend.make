# Empty compiler generated dependencies file for dramless_ctrl.
# This may be replaced when dependencies are built.
