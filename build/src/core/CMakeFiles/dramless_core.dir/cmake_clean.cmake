file(REMOVE_RECURSE
  "CMakeFiles/dramless_core.dir/dramless_accelerator.cc.o"
  "CMakeFiles/dramless_core.dir/dramless_accelerator.cc.o.d"
  "CMakeFiles/dramless_core.dir/kernel_image.cc.o"
  "CMakeFiles/dramless_core.dir/kernel_image.cc.o.d"
  "libdramless_core.a"
  "libdramless_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramless_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
