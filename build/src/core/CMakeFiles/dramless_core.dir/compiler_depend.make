# Empty compiler generated dependencies file for dramless_core.
# This may be replaced when dependencies are built.
