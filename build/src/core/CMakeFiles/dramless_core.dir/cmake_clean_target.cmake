file(REMOVE_RECURSE
  "libdramless_core.a"
)
