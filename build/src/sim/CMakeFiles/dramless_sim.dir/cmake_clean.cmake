file(REMOVE_RECURSE
  "CMakeFiles/dramless_sim.dir/debug.cc.o"
  "CMakeFiles/dramless_sim.dir/debug.cc.o.d"
  "CMakeFiles/dramless_sim.dir/event_queue.cc.o"
  "CMakeFiles/dramless_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/dramless_sim.dir/logging.cc.o"
  "CMakeFiles/dramless_sim.dir/logging.cc.o.d"
  "CMakeFiles/dramless_sim.dir/stats.cc.o"
  "CMakeFiles/dramless_sim.dir/stats.cc.o.d"
  "libdramless_sim.a"
  "libdramless_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramless_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
