# Empty compiler generated dependencies file for dramless_sim.
# This may be replaced when dependencies are built.
