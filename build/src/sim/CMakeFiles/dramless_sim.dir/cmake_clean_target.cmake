file(REMOVE_RECURSE
  "libdramless_sim.a"
)
