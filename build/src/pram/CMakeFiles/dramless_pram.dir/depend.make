# Empty dependencies file for dramless_pram.
# This may be replaced when dependencies are built.
