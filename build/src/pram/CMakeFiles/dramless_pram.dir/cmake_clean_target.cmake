file(REMOVE_RECURSE
  "libdramless_pram.a"
)
