file(REMOVE_RECURSE
  "CMakeFiles/dramless_pram.dir/pram_module.cc.o"
  "CMakeFiles/dramless_pram.dir/pram_module.cc.o.d"
  "libdramless_pram.a"
  "libdramless_pram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramless_pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
