file(REMOVE_RECURSE
  "libdramless_workload.a"
)
