file(REMOVE_RECURSE
  "CMakeFiles/dramless_workload.dir/polybench.cc.o"
  "CMakeFiles/dramless_workload.dir/polybench.cc.o.d"
  "CMakeFiles/dramless_workload.dir/trace_gen.cc.o"
  "CMakeFiles/dramless_workload.dir/trace_gen.cc.o.d"
  "libdramless_workload.a"
  "libdramless_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramless_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
