# Empty compiler generated dependencies file for dramless_workload.
# This may be replaced when dependencies are built.
