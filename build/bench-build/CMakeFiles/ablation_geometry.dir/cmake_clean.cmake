file(REMOVE_RECURSE
  "../bench/ablation_geometry"
  "../bench/ablation_geometry.pdb"
  "CMakeFiles/ablation_geometry.dir/ablation_geometry.cc.o"
  "CMakeFiles/ablation_geometry.dir/ablation_geometry.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
