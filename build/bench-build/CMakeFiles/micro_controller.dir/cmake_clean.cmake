file(REMOVE_RECURSE
  "../bench/micro_controller"
  "../bench/micro_controller.pdb"
  "CMakeFiles/micro_controller.dir/micro_controller.cc.o"
  "CMakeFiles/micro_controller.dir/micro_controller.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
