# Empty dependencies file for micro_controller.
# This may be replaced when dependencies are built.
