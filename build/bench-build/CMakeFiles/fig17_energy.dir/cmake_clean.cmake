file(REMOVE_RECURSE
  "../bench/fig17_energy"
  "../bench/fig17_energy.pdb"
  "CMakeFiles/fig17_energy.dir/fig17_energy.cc.o"
  "CMakeFiles/fig17_energy.dir/fig17_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
