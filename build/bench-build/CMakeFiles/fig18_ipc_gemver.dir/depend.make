# Empty dependencies file for fig18_ipc_gemver.
# This may be replaced when dependencies are built.
