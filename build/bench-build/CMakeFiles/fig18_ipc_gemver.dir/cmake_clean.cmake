file(REMOVE_RECURSE
  "../bench/fig18_ipc_gemver"
  "../bench/fig18_ipc_gemver.pdb"
  "CMakeFiles/fig18_ipc_gemver.dir/fig18_ipc_gemver.cc.o"
  "CMakeFiles/fig18_ipc_gemver.dir/fig18_ipc_gemver.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_ipc_gemver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
