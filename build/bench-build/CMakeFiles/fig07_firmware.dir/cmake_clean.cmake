file(REMOVE_RECURSE
  "../bench/fig07_firmware"
  "../bench/fig07_firmware.pdb"
  "CMakeFiles/fig07_firmware.dir/fig07_firmware.cc.o"
  "CMakeFiles/fig07_firmware.dir/fig07_firmware.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
