# Empty dependencies file for fig07_firmware.
# This may be replaced when dependencies are built.
