file(REMOVE_RECURSE
  "../bench/ablation_scale"
  "../bench/ablation_scale.pdb"
  "CMakeFiles/ablation_scale.dir/ablation_scale.cc.o"
  "CMakeFiles/ablation_scale.dir/ablation_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
