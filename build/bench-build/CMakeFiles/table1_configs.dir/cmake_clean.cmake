file(REMOVE_RECURSE
  "../bench/table1_configs"
  "../bench/table1_configs.pdb"
  "CMakeFiles/table1_configs.dir/table1_configs.cc.o"
  "CMakeFiles/table1_configs.dir/table1_configs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
