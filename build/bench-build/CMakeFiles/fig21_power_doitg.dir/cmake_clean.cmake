file(REMOVE_RECURSE
  "../bench/fig21_power_doitg"
  "../bench/fig21_power_doitg.pdb"
  "CMakeFiles/fig21_power_doitg.dir/fig21_power_doitg.cc.o"
  "CMakeFiles/fig21_power_doitg.dir/fig21_power_doitg.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_power_doitg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
