# Empty dependencies file for fig21_power_doitg.
# This may be replaced when dependencies are built.
