# Empty compiler generated dependencies file for fig13_scheduler.
# This may be replaced when dependencies are built.
