file(REMOVE_RECURSE
  "../bench/fig13_scheduler"
  "../bench/fig13_scheduler.pdb"
  "CMakeFiles/fig13_scheduler.dir/fig13_scheduler.cc.o"
  "CMakeFiles/fig13_scheduler.dir/fig13_scheduler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
