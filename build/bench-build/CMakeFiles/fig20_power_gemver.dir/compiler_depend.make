# Empty compiler generated dependencies file for fig20_power_gemver.
# This may be replaced when dependencies are built.
