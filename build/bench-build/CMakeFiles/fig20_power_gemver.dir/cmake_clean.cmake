file(REMOVE_RECURSE
  "../bench/fig20_power_gemver"
  "../bench/fig20_power_gemver.pdb"
  "CMakeFiles/fig20_power_gemver.dir/fig20_power_gemver.cc.o"
  "CMakeFiles/fig20_power_gemver.dir/fig20_power_gemver.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_power_gemver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
