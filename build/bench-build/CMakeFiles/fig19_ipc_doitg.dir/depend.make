# Empty dependencies file for fig19_ipc_doitg.
# This may be replaced when dependencies are built.
