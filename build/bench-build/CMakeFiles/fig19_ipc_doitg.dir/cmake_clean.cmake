file(REMOVE_RECURSE
  "../bench/fig19_ipc_doitg"
  "../bench/fig19_ipc_doitg.pdb"
  "CMakeFiles/fig19_ipc_doitg.dir/fig19_ipc_doitg.cc.o"
  "CMakeFiles/fig19_ipc_doitg.dir/fig19_ipc_doitg.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_ipc_doitg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
