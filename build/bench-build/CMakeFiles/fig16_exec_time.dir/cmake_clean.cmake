file(REMOVE_RECURSE
  "../bench/fig16_exec_time"
  "../bench/fig16_exec_time.pdb"
  "CMakeFiles/fig16_exec_time.dir/fig16_exec_time.cc.o"
  "CMakeFiles/fig16_exec_time.dir/fig16_exec_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
