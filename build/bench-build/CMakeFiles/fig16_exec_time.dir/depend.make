# Empty dependencies file for fig16_exec_time.
# This may be replaced when dependencies are built.
