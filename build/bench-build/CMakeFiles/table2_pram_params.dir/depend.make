# Empty dependencies file for table2_pram_params.
# This may be replaced when dependencies are built.
