file(REMOVE_RECURSE
  "../bench/table2_pram_params"
  "../bench/table2_pram_params.pdb"
  "CMakeFiles/table2_pram_params.dir/table2_pram_params.cc.o"
  "CMakeFiles/table2_pram_params.dir/table2_pram_params.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pram_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
