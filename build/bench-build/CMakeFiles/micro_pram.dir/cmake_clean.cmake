file(REMOVE_RECURSE
  "../bench/micro_pram"
  "../bench/micro_pram.pdb"
  "CMakeFiles/micro_pram.dir/micro_pram.cc.o"
  "CMakeFiles/micro_pram.dir/micro_pram.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
