# Empty compiler generated dependencies file for micro_pram.
# This may be replaced when dependencies are built.
