file(REMOVE_RECURSE
  "../bench/fig15_bandwidth"
  "../bench/fig15_bandwidth.pdb"
  "CMakeFiles/fig15_bandwidth.dir/fig15_bandwidth.cc.o"
  "CMakeFiles/fig15_bandwidth.dir/fig15_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
