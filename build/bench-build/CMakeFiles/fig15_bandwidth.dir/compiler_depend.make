# Empty compiler generated dependencies file for fig15_bandwidth.
# This may be replaced when dependencies are built.
