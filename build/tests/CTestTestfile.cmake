# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("pram")
subdirs("ctrl")
subdirs("flash")
subdirs("accel")
subdirs("workload")
subdirs("systems")
subdirs("core")
subdirs("host")
subdirs("energy")
