file(REMOVE_RECURSE
  "CMakeFiles/energy_tests.dir/energy_test.cc.o"
  "CMakeFiles/energy_tests.dir/energy_test.cc.o.d"
  "energy_tests"
  "energy_tests.pdb"
  "energy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
