file(REMOVE_RECURSE
  "CMakeFiles/accel_tests.dir/accelerator_test.cc.o"
  "CMakeFiles/accel_tests.dir/accelerator_test.cc.o.d"
  "CMakeFiles/accel_tests.dir/cache_test.cc.o"
  "CMakeFiles/accel_tests.dir/cache_test.cc.o.d"
  "CMakeFiles/accel_tests.dir/pe_test.cc.o"
  "CMakeFiles/accel_tests.dir/pe_test.cc.o.d"
  "accel_tests"
  "accel_tests.pdb"
  "accel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
