# Empty compiler generated dependencies file for accel_tests.
# This may be replaced when dependencies are built.
