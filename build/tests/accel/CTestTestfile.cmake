# CMake generated Testfile for 
# Source directory: /root/repo/tests/accel
# Build directory: /root/repo/build/tests/accel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/accel/accel_tests[1]_include.cmake")
