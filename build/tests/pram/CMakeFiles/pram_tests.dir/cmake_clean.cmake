file(REMOVE_RECURSE
  "CMakeFiles/pram_tests.dir/address_test.cc.o"
  "CMakeFiles/pram_tests.dir/address_test.cc.o.d"
  "CMakeFiles/pram_tests.dir/geometry_param_test.cc.o"
  "CMakeFiles/pram_tests.dir/geometry_param_test.cc.o.d"
  "CMakeFiles/pram_tests.dir/pram_module_test.cc.o"
  "CMakeFiles/pram_tests.dir/pram_module_test.cc.o.d"
  "pram_tests"
  "pram_tests.pdb"
  "pram_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pram_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
