# Empty dependencies file for pram_tests.
# This may be replaced when dependencies are built.
