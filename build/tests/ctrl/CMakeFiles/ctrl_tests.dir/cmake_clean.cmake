file(REMOVE_RECURSE
  "CMakeFiles/ctrl_tests.dir/channel_controller_test.cc.o"
  "CMakeFiles/ctrl_tests.dir/channel_controller_test.cc.o.d"
  "CMakeFiles/ctrl_tests.dir/pram_subsystem_test.cc.o"
  "CMakeFiles/ctrl_tests.dir/pram_subsystem_test.cc.o.d"
  "CMakeFiles/ctrl_tests.dir/scheduler_param_test.cc.o"
  "CMakeFiles/ctrl_tests.dir/scheduler_param_test.cc.o.d"
  "CMakeFiles/ctrl_tests.dir/start_gap_test.cc.o"
  "CMakeFiles/ctrl_tests.dir/start_gap_test.cc.o.d"
  "CMakeFiles/ctrl_tests.dir/subsystem_param_test.cc.o"
  "CMakeFiles/ctrl_tests.dir/subsystem_param_test.cc.o.d"
  "ctrl_tests"
  "ctrl_tests.pdb"
  "ctrl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
