# CMake generated Testfile for 
# Source directory: /root/repo/tests/systems
# Build directory: /root/repo/build/tests/systems
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/systems/systems_tests[1]_include.cmake")
