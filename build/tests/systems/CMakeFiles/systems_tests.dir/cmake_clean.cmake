file(REMOVE_RECURSE
  "CMakeFiles/systems_tests.dir/systems_test.cc.o"
  "CMakeFiles/systems_tests.dir/systems_test.cc.o.d"
  "systems_tests"
  "systems_tests.pdb"
  "systems_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systems_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
