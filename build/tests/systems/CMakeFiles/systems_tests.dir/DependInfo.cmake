
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/systems/systems_test.cc" "tests/systems/CMakeFiles/systems_tests.dir/systems_test.cc.o" "gcc" "tests/systems/CMakeFiles/systems_tests.dir/systems_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dramless_core.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/dramless_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/dramless_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/dramless_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/dramless_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dramless_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/dramless_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dramless_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
