# Empty dependencies file for wear_leveling.
# This may be replaced when dependencies are built.
