file(REMOVE_RECURSE
  "CMakeFiles/wear_leveling.dir/wear_leveling.cpp.o"
  "CMakeFiles/wear_leveling.dir/wear_leveling.cpp.o.d"
  "wear_leveling"
  "wear_leveling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wear_leveling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
