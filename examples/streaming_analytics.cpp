/**
 * @file
 * Streaming analytics scenario: the data-intensive use case the
 * paper's introduction motivates. A log-scan/aggregate kernel sweeps
 * a large record store with a small output — exactly the shape that
 * drowns a conventional accelerated system in host-side data
 * movement. We run the same job on DRAM-less and on a conventional
 * Hetero system and compare.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/dramless.hh"

using namespace dramless;

namespace
{

/** A scan + filter + aggregate trace over a record store. */
class ScanAggregateTrace : public accel::TraceSource
{
  public:
    /**
     * @param base start of this agent's record slice
     * @param records number of 128-byte records to scan
     * @param out_base where the per-bucket aggregates are stored
     */
    ScanAggregateTrace(std::uint64_t base, std::uint64_t records,
                       std::uint64_t out_base)
        : base_(base), records_(records), outBase_(out_base)
    {}

    bool
    next(accel::TraceItem &out) override
    {
        // Per record: load four 32 B words, ~20 ops of predicate and
        // aggregation work per word, and every 64th record spills a
        // bucket update.
        if (rec_ >= records_)
            return false;
        switch (phase_) {
          case 0:
          case 1:
          case 2:
          case 3:
            out = accel::TraceItem::loadOf(
                base_ + rec_ * 128 + std::uint64_t(phase_) * 32, 32);
            ++phase_;
            return true;
          case 4:
            out = accel::TraceItem::computeOf(4 * 20);
            ++phase_;
            return true;
          default:
            if (rec_ % 64 == 63) {
                out = accel::TraceItem::storeOf(
                    outBase_ + (rec_ / 64 % 512) * 32, 32);
            } else {
                out = accel::TraceItem::computeOf(8);
            }
            phase_ = 0;
            ++rec_;
            return true;
        }
    }

  private:
    std::uint64_t base_;
    std::uint64_t records_;
    std::uint64_t outBase_;
    std::uint64_t rec_ = 0;
    int phase_ = 0;
};

} // anonymous namespace

int
main()
{
    setQuiet(true);
    constexpr std::uint64_t total_records = 24 * 1024; // 3 MiB store
    constexpr std::uint32_t agents = 7;

    // ------------------------- DRAM-less --------------------------
    core::DramLessAccelerator dl;

    // Stage the record store (persistent, byte-addressable).
    std::vector<std::uint8_t> store(total_records * 128);
    for (std::size_t i = 0; i < store.size(); ++i)
        store[i] = std::uint8_t(i * 131 + 17);
    dl.stageData(0, store.data(), store.size());

    std::uint64_t out_base =
        (store.size() + 511) / 512 * 512;
    std::vector<std::unique_ptr<ScanAggregateTrace>> traces;
    std::vector<accel::TraceSource *> ptrs;
    std::uint64_t per_agent = total_records / agents;
    for (std::uint32_t a = 0; a < agents; ++a) {
        traces.push_back(std::make_unique<ScanAggregateTrace>(
            a * per_agent * 128, per_agent,
            out_base + a * 16384));
        ptrs.push_back(traces.back().get());
    }

    core::KernelImage img = core::KernelImage::pack(
        {core::KernelSegment{"scan", 0x10000, 0,
                             std::vector<std::uint8_t>(8192, 0xC3)}});
    std::vector<std::pair<std::uint64_t, std::uint64_t>> outs;
    for (std::uint32_t a = 0; a < agents; ++a)
        outs.emplace_back(out_base + a * 16384, 16384);

    core::OffloadResult r = dl.offload(img, ptrs, outs);
    double dl_ms = toMs(r.completedAt - r.startedAt);
    double dl_mj = r.energy.total() * 1e3;

    std::printf("scan/aggregate over %llu records (%.1f MiB)\n",
                (unsigned long long)total_records,
                double(store.size()) / double(1 << 20));
    std::printf("  DRAM-less       : %8.3f ms  %8.3f mJ\n", dl_ms,
                dl_mj);

    // --------------------- conventional Hetero --------------------
    // The same volume and access shape expressed as a workload spec
    // running on the Hetero system model: SSD + host stack + PCIe.
    workload::WorkloadSpec spec;
    spec.name = "scan-agg";
    spec.pattern = workload::Pattern::streaming;
    spec.klass = workload::WorkloadClass::readIntensive;
    spec.inputBytes = store.size();
    spec.outputBytes = (total_records / 64) * 32;
    spec.opsPerByte = 88.0 / 128.0;

    systems::SystemOptions opts;
    for (auto kind : {systems::SystemKind::hetero,
                      systems::SystemKind::heterodirect}) {
        auto sys = systems::SystemFactory::create(kind, opts);
        systems::RunResult h = sys->run(spec);
        std::printf("  %-16s: %8.3f ms  %8.3f mJ"
                    "   (%.2fx slower, %.1fx more energy)\n",
                    h.system.c_str(), toMs(h.execTime),
                    h.energy.total() * 1e3,
                    toMs(h.execTime) / dl_ms,
                    h.energy.total() * 1e3 / dl_mj);
    }

    std::printf("\nthe gap is the host storage stack and the copies "
                "DRAM-less removes.\n");
    return 0;
}
