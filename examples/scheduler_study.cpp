/**
 * @file
 * Scheduler study: the Figure 13 experiment as an application. Runs
 * a write-heavy and a read-heavy kernel under the four PRAM
 * scheduler configurations (Bare-metal, Interleaving,
 * selective-erasing, Final) concurrently on the SweepRunner thread
 * pool and prints the bandwidth each achieves.
 */

#include <cstdio>
#include <vector>

#include "core/dramless.hh"

using namespace dramless;

int
main()
{
    setQuiet(true);

    struct Variant
    {
        const char *label;
        ctrl::SchedulerConfig cfg;
    };
    const std::vector<Variant> variants = {
        {"Bare-metal", ctrl::SchedulerConfig::bareMetal()},
        {"Interleaving", ctrl::SchedulerConfig::interleavingOnly()},
        {"selective-erasing",
         ctrl::SchedulerConfig::selectiveErasingOnly()},
        {"Final", ctrl::SchedulerConfig::finalConfig()},
    };
    const std::vector<const char *> workloads = {"trmm", "doitg"};

    // Every (workload, variant) pair is an independent simulation
    // with its own accelerator instance — run them all concurrently.
    std::vector<runner::SweepJob> jobs;
    for (const char *wl : workloads) {
        auto spec = workload::Polybench::byName(wl).scaled(0.1);
        for (const Variant &v : variants) {
            jobs.push_back(runner::SweepJob{
                v.label, wl, [spec, v]() {
                    core::DramLessConfig cfg;
                    cfg.scheduler = v.cfg;
                    cfg.functional = false; // timing-only: faster
                    core::DramLessAccelerator dl(cfg);
                    core::OffloadResult r = dl.offload(spec);
                    systems::RunResult res;
                    res.system = v.label;
                    res.workload = spec.name;
                    res.execTime = fromSec(r.seconds);
                    res.bytesProcessed = spec.totalBytes();
                    res.bandwidthMBps =
                        double(spec.totalBytes()) / r.seconds / 1e6;
                    return res;
                }});
        }
    }

    runner::SweepRunner pool(runner::jobsFromEnv());
    auto results = pool.run(jobs);

    std::size_t idx = 0;
    for (const char *wl : workloads) {
        auto spec = workload::Polybench::byName(wl).scaled(0.1);
        std::printf("%s (write ratio %.0f%%, %s)\n", wl,
                    spec.writeRatio() * 100,
                    workload::Polybench::patternName(spec.pattern));
        double base = 0.0;
        for (const Variant &v : variants) {
            double mbps = results[idx++].bandwidthMBps;
            if (v.cfg.label() == "Bare-metal")
                base = mbps;
            std::printf("  %-18s %8.1f MB/s  (%.2fx)\n", v.label,
                        mbps, mbps / base);
        }
        std::printf("\n");
    }
    std::printf("interleaving lifts read-heavy strided kernels; "
                "selective erasing lifts write-heavy ones;\n"
                "Final composes both (paper Figure 13).\n");
    return 0;
}
