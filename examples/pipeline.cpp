/**
 * @file
 * Near-data pipeline: two kernels chained entirely inside the
 * accelerator's PRAM. Stage 1 (transform) reads the raw dataset and
 * writes a derived table; stage 2 (reduce) consumes that table and
 * produces a small summary. In a conventional system the
 * intermediate table would bounce SSD -> host -> accelerator between
 * stages; here it never leaves the PRAM — the persistence and
 * byte-addressability the paper builds the whole design around.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/dramless.hh"

using namespace dramless;

namespace
{

/** Streaming transform: read a record, compute, write a row. */
class TransformTrace : public accel::TraceSource
{
  public:
    TransformTrace(std::uint64_t in_base, std::uint64_t out_base,
                   std::uint64_t bytes)
        : in_(in_base), out_(out_base), n_(bytes / 32)
    {}

    bool
    next(accel::TraceItem &out) override
    {
        if (i_ >= n_)
            return false;
        switch (phase_) {
          case 0:
            out = accel::TraceItem::loadOf(in_ + i_ * 32, 32);
            phase_ = 1;
            return true;
          case 1:
            out = accel::TraceItem::computeOf(96);
            phase_ = 2;
            return true;
          default:
            out = accel::TraceItem::storeOf(out_ + i_ * 32, 32);
            phase_ = 0;
            ++i_;
            return true;
        }
    }

  private:
    std::uint64_t in_, out_, n_, i_ = 0;
    int phase_ = 0;
};

/** Reduce: stream the derived table, tiny output. */
class ReduceTrace : public accel::TraceSource
{
  public:
    ReduceTrace(std::uint64_t in_base, std::uint64_t out_base,
                std::uint64_t bytes)
        : in_(in_base), out_(out_base), n_(bytes / 32)
    {}

    bool
    next(accel::TraceItem &out) override
    {
        if (i_ >= n_) {
            if (!flushed_) {
                flushed_ = true;
                out = accel::TraceItem::storeOf(out_, 32);
                return true;
            }
            return false;
        }
        if (phase_ == 0) {
            out = accel::TraceItem::loadOf(in_ + i_ * 32, 32);
            phase_ = 1;
        } else {
            out = accel::TraceItem::computeOf(48);
            phase_ = 0;
            ++i_;
        }
        return true;
    }

  private:
    std::uint64_t in_, out_, n_, i_ = 0;
    int phase_ = 0;
    bool flushed_ = false;
};

} // anonymous namespace

int
main()
{
    setQuiet(true);
    constexpr std::uint64_t raw_bytes = 2 << 20;   // raw dataset
    constexpr std::uint64_t table_base = 4 << 20;  // derived table
    constexpr std::uint64_t summary_base = 8 << 20;
    constexpr std::uint32_t agents = 7;

    core::DramLessAccelerator dl;

    std::vector<std::uint8_t> raw(raw_bytes);
    for (std::size_t i = 0; i < raw.size(); ++i)
        raw[i] = std::uint8_t(i * 7919u >> 8);
    dl.stageData(0, raw.data(), raw.size());

    std::uint64_t slice = raw_bytes / agents / 32 * 32;

    // ---- stage 1: transform ---------------------------------------
    std::vector<std::unique_ptr<TransformTrace>> t1;
    std::vector<accel::TraceSource *> p1;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> outs1;
    for (std::uint32_t a = 0; a < agents; ++a) {
        t1.push_back(std::make_unique<TransformTrace>(
            a * slice, table_base + a * slice, slice));
        p1.push_back(t1.back().get());
        outs1.emplace_back(table_base + a * slice, slice);
    }
    core::KernelImage img1 = core::KernelImage::pack(
        {core::KernelSegment{"transform", 0x10000, 0,
                             std::vector<std::uint8_t>(8192, 1)}});
    core::OffloadResult r1 = dl.offload(img1, p1, outs1);
    std::printf("stage 1 (transform): %.3f ms, %.2f MB/s, %.3f mJ\n",
                toMs(r1.completedAt - r1.startedAt),
                double(2 * raw_bytes) /
                    toSec(r1.completedAt - r1.startedAt) / 1e6,
                r1.energy.total() * 1e3);

    // ---- stage 2: reduce — consumes stage 1's output in place -----
    std::vector<std::unique_ptr<ReduceTrace>> t2;
    std::vector<accel::TraceSource *> p2;
    for (std::uint32_t a = 0; a < agents; ++a) {
        t2.push_back(std::make_unique<ReduceTrace>(
            table_base + a * slice, summary_base + a * 4096,
            slice));
        p2.push_back(t2.back().get());
    }
    core::KernelImage img2 = core::KernelImage::pack(
        {core::KernelSegment{"reduce", 0x20000, 0,
                             std::vector<std::uint8_t>(4096, 2)}});
    core::OffloadResult r2 = dl.offload(img2, p2);
    std::printf("stage 2 (reduce)   : %.3f ms, %.2f MB/s, %.3f mJ\n",
                toMs(r2.completedAt - r2.startedAt),
                double(raw_bytes) /
                    toSec(r2.completedAt - r2.startedAt) / 1e6,
                r2.energy.total() * 1e3);

    // The intermediate table never crossed PCIe. What a conventional
    // system would have paid just to round-trip it through the host:
    host::SoftwareStack stack(host::StackConfig::conventional(),
                              "host");
    EventQueue eq;
    host::PcieLink pcie(eq, host::PcieConfig{}, "pcie");
    Tick out_cost = stack.writePathCost(raw_bytes) +
                    stack.readPathCost(raw_bytes);
    Tick xfer = pcie.transfer(raw_bytes);
    xfer = pcie.transfer(raw_bytes, xfer);
    std::printf("\nintermediate-table round trip a conventional "
                "system would pay:\n"
                "  host stack %.3f ms + PCIe %.3f ms = %.3f ms "
                "(vs. 0 here)\n",
                toMs(out_cost), toMs(xfer),
                toMs(out_cost + xfer));

    std::printf("\ntotal pipeline: %.3f ms\n",
                toMs(r2.completedAt - r1.startedAt));
    return 0;
}
