/**
 * @file
 * Quickstart: bring up a DRAM-less accelerator, stage a dataset in
 * its PRAM, pack and offload a kernel, and read the metrics back.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/dramless.hh"

using namespace dramless;

int
main()
{
    setQuiet(true);

    // 1. Construct the accelerator: 2 LPDDR2-NVM channels x 16 PRAM
    //    modules behind hardware-automated FPGA controllers, eight
    //    1 GHz PEs (one server + seven agents).
    core::DramLessAccelerator dl;
    std::printf("DRAM-less accelerator up at t=%.1f us\n",
                toUs(dl.now()));
    std::printf("  PRAM capacity: %.1f GiB usable\n",
                double(dl.capacity()) / double(1ull << 30));

    // 2. Stage a dataset. Unlike a conventional accelerator there is
    //    no SSD in the loop: the data lives in the PRAM, persistent,
    //    directly load/store-addressable by every PE.
    auto spec = workload::Polybench::byName("gemver").scaled(0.1);
    std::vector<std::uint8_t> dataset(spec.inputBytes);
    for (std::size_t i = 0; i < dataset.size(); ++i)
        dataset[i] = std::uint8_t(i * 2654435761u >> 24);
    dl.stageData(0, dataset.data(), dataset.size());
    std::printf("  staged %zu KiB of input data\n",
                dataset.size() / 1024);

    // 3. Offload a kernel: here the Polybench 'gemver' model, split
    //    across the seven agents. packData/pushData, the PSC boot
    //    sequence and the selective-erase hints all happen inside.
    //    Outputs land just past the input region.
    core::OffloadResult r = dl.offload(spec);

    std::printf("\nkernel 'gemver' (%.1f MiB moved)\n",
                double(spec.totalBytes()) / double(1 << 20));
    std::printf("  execution time : %.3f ms\n",
                toMs(r.completedAt - r.startedAt));
    std::printf("  bandwidth      : %.1f MB/s\n",
                double(spec.totalBytes()) / r.seconds / 1e6);
    std::printf("  instructions   : %llu\n",
                (unsigned long long)r.instructions);
    std::printf("  energy         : %.3f mJ (cores %.3f, PRAM %.3f,"
                " controller %.3f)\n",
                r.energy.total() * 1e3, r.energy.accelCores * 1e3,
                r.energy.storageMedia * 1e3,
                r.energy.controller * 1e3);

    // 4. The kernel image is persistent in PRAM; the server's
    //    unpackData can recover each app's segment and metadata.
    core::KernelImage img = dl.readBackImage();
    std::printf("\nimage in PRAM: %llu bytes, %zu segments\n",
                (unsigned long long)img.size(),
                img.segments().size());
    for (const auto &seg : img.segments()) {
        std::printf("  %-8s -> 0x%llx (%zu bytes)\n",
                    seg.name.c_str(),
                    (unsigned long long)seg.loadAddress,
                    seg.payload.size());
    }

    // 5. The input dataset is still there — persistence for free
    //    (the kernel's outputs landed past it).
    std::vector<std::uint8_t> check(dataset.size());
    dl.fetchData(0, check.data(), check.size());
    std::printf("\ninput dataset intact after the run: %s\n",
                check == dataset ? "yes" : "NO");
    return check == dataset ? 0 : 1;
}
