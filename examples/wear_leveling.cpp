/**
 * @file
 * PRAM lifetime demo: Start-Gap wear leveling inside the DRAM-less
 * controller (Section VII, "PRAM lifetime").
 *
 * Two views:
 *  1. the algorithm at device-lifetime scale — a scaled-down line
 *     space hammered long enough for the gap to rotate the address
 *     map many times, showing how a pathological hot spot spreads
 *     over every physical line;
 *  2. the integrated controller — the same mapper running inside the
 *     accelerator's PRAM subsystem, with gap-move copies issued as
 *     real timed writes and data integrity preserved.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/dramless.hh"
#include "ctrl/start_gap.hh"

using namespace dramless;

int
main()
{
    setQuiet(true);

    // ---- 1. lifetime-scale behaviour of the algorithm ------------
    // 4096 lines, gap moves every 64 writes: ~5.3M writes rotate the
    // map through every position several times. A real device has
    // ~64M lines and sees billions of writes over its life; the
    // ratio (writes per line-rotation) is what matters.
    constexpr std::uint64_t lines = 4096;
    constexpr std::uint64_t hammer = 6'000'000;
    ctrl::StartGapMapper sg(lines, 64);
    std::vector<std::uint64_t> wear(sg.numPhysicalLines(), 0);
    for (std::uint64_t i = 0; i < hammer; ++i) {
        // 95% of writes hit one hot line; 5% background traffic.
        std::uint64_t la = (i % 20 != 0) ? 7 : (i / 20) % lines;
        ++wear[sg.map(la)];
        sg.recordWrite();
    }
    std::uint64_t max_w = *std::max_element(wear.begin(), wear.end());
    std::uint64_t min_w = *std::min_element(wear.begin(), wear.end());
    double no_wl_max = double(hammer) * 0.95; // all on one cell
    std::printf("lifetime-scale hot spot (%llu writes, 95%% on one "
                "line, %llu lines):\n",
                (unsigned long long)hammer,
                (unsigned long long)lines);
    std::printf("  without wear leveling : hottest line absorbs "
                "%.0f programs\n",
                no_wl_max);
    std::printf("  with Start-Gap        : hottest %llu, coldest "
                "%llu (%llu gap moves)\n",
                (unsigned long long)max_w,
                (unsigned long long)min_w,
                (unsigned long long)sg.gapMoves());
    std::printf("  hot-spot wear reduced %.0fx; endurance-limited "
                "lifetime scales with it.\n\n",
                no_wl_max / double(max_w));

    // ---- 2. the integrated controller -----------------------------
    core::DramLessConfig cfg;
    cfg.wearLeveling = true;
    core::DramLessAccelerator dl(cfg);

    std::vector<std::uint8_t> block(2048, 0x42);
    for (int i = 0; i < 300; ++i) {
        block[0] = std::uint8_t(i);
        dl.writeData(4096, block.data(), block.size());
    }
    const ctrl::StartGapMapper *wl = dl.pram().wearLeveler();
    std::printf("integrated run: 300 rewrites of one 2 KiB block "
                "through the controller\n");
    std::printf("  writes recorded : %llu stripes\n",
                (unsigned long long)wl->writeCount());
    std::printf("  gap moves       : %llu (each a timed internal "
                "copy)\n",
                (unsigned long long)wl->gapMoves());

    std::vector<std::uint8_t> out(block.size());
    dl.fetchData(4096, out.data(), out.size());
    bool intact = out == block;
    std::printf("  data intact under rotation: %s\n",
                intact ? "yes" : "NO");
    std::printf("\nat device scale (64M lines) the same rotation "
                "spreads any hot spot across\nthe full array over "
                "the device lifetime, as in Qureshi et al. "
                "[MICRO'09].\n");
    return intact && double(max_w) < no_wl_max / 10.0 ? 0 : 1;
}
