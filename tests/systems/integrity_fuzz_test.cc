/**
 * @file
 * End-to-end data-integrity oracle for the PRAM subsystem.
 *
 * Randomized read/write traffic is driven through a PramSubsystem
 * with every reliability mechanism enabled at once — Start-Gap wear
 * leveling (frequent gap moves), fault injection with write-verify
 * retries, and spare-pool bad-line remapping — while a shadow model
 * tracks the last completed write to every byte. The oracle: every
 * timed read must return exactly the bytes of the most recent write
 * to its range, and a final functional sweep of the whole region must
 * match the shadow byte for byte. Ten seeds, fresh subsystem each.
 *
 * The harness never keeps two in-flight requests whose ranges
 * overlap: the hardware orders same-word accesses, but distinct
 * requests to the same line carry no ordering guarantee, so the
 * oracle would be ill-defined.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "ctrl/pram_subsystem.hh"
#include "sim/random.hh"

namespace dramless
{
namespace ctrl
{
namespace
{

/** Fuzzed region: 64 stripes of 128 B starting at address 0. */
constexpr std::uint64_t kRegionBytes = 64 * 128;
constexpr std::uint32_t kUnit = 32;
constexpr std::uint32_t kOpsPerSeed = 2000;
constexpr std::uint32_t kBatch = 16;

/** Every reliability mechanism on, sized so the fuzz stays fast but
 *  remaps and retries actually happen. */
SubsystemConfig
fuzzConfig(std::uint64_t seed)
{
    SubsystemConfig cfg;
    cfg.channels = 2;
    cfg.modulesPerChannel = 2;
    cfg.stripeBytes = 128;
    cfg.functional = true;
    cfg.wearLeveling = true;
    cfg.gapMovePeriod = 32; // a gap move every 32 stripe writes
    cfg.reliability.enabled = true;
    cfg.reliability.seed = seed;
    cfg.reliability.writeFailProb = 0.05;   // exercises retries
    cfg.reliability.enduranceWrites = 8;    // lines wear out mid-run
    cfg.reliability.wornWriteFailProb = 0.25;
    cfg.reliability.maxProgramRetries = 3;
    cfg.reliability.spareLines = 64;
    return cfg;
}

class IntegrityFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IntegrityFuzz, ReadsReturnLastWrite)
{
    const std::uint64_t seed = GetParam();
    EventQueue eq;
    PramSubsystem sys(eq, fuzzConfig(seed), "pram");
    sys.initialize();

    // Shadow model: byte-accurate expected content of the region.
    std::vector<std::uint8_t> shadow(kRegionBytes, 0);
    sys.functionalWrite(0, shadow.data(), shadow.size());

    struct Pending
    {
        bool isRead = false;
        std::vector<std::uint8_t> buf;      // read destination
        std::vector<std::uint8_t> expected; // shadow at enqueue
    };
    std::map<std::uint64_t, Pending> pending;
    std::uint64_t completed = 0;
    sys.setCallback([&](const MemResponse &resp) {
        auto it = pending.find(resp.id);
        ASSERT_NE(it, pending.end()) << "unknown completion id";
        if (it->second.isRead) {
            EXPECT_EQ(it->second.buf, it->second.expected)
                << "read id " << resp.id
                << " returned stale or corrupt data (seed " << seed
                << ")";
        }
        pending.erase(it);
        ++completed;
    });

    Random rng(seed * 0x9e3779b97f4a7c15ull + 1);
    std::uint64_t issued = 0;
    /** In-flight [base, end) ranges; conflicting ops wait for the
     *  batch drain. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> inflight;

    auto overlaps = [&](std::uint64_t base, std::uint64_t end) {
        for (const auto &[b, e] : inflight)
            if (base < e && b < end)
                return true;
        return false;
    };

    while (issued < kOpsPerSeed) {
        // Issue a batch of non-overlapping requests, then drain.
        std::uint32_t in_batch = 0;
        while (in_batch < kBatch && issued < kOpsPerSeed) {
            std::uint32_t size =
                kUnit * std::uint32_t(1 + rng.below(4));
            std::uint64_t base =
                rng.below((kRegionBytes - size) / kUnit + 1) * kUnit;
            if (overlaps(base, base + size))
                break; // conflict: drain what we have first
            MemRequest req;
            req.addr = base;
            req.size = size;
            Pending p;
            if (rng.chance(0.5)) {
                req.kind = ReqKind::write;
                p.buf.resize(size);
                for (auto &b : p.buf)
                    b = std::uint8_t(rng.next());
                req.writeFrom = p.buf.data();
                // The payload is latched at enqueue, so the shadow
                // advances immediately; the no-overlap rule keeps
                // concurrent readers away until the drain.
                std::memcpy(shadow.data() + base, p.buf.data(),
                            size);
            } else {
                req.kind = ReqKind::read;
                p.isRead = true;
                p.buf.assign(size, 0xee);
                p.expected.assign(shadow.begin() + base,
                                  shadow.begin() + base + size);
                req.readInto = p.buf.data();
            }
            if (!sys.canAccept(req))
                break;
            inflight.emplace_back(base, base + size);
            std::uint64_t id = sys.enqueue(req);
            pending[id] = std::move(p);
            ++issued;
            ++in_batch;
        }
        eq.run();
        ASSERT_TRUE(sys.idle());
        ASSERT_TRUE(pending.empty());
        inflight.clear();
    }

    EXPECT_EQ(completed, kOpsPerSeed);

    // Final sweep: the whole region, through the functional path,
    // must match the shadow byte for byte — gap moves and bad-line
    // migrations must never lose data.
    std::vector<std::uint8_t> out(kRegionBytes, 0);
    sys.functionalRead(0, out.data(), out.size());
    EXPECT_EQ(out, shadow);

    // The run must actually have exercised the machinery it claims
    // to: verify retries (p=0.05 over thousands of word programs)
    // and at least one worn-line remap into the spare pool.
    std::uint64_t retries = 0;
    for (std::uint32_t c = 0; c < sys.numChannels(); ++c)
        retries += sys.channel(c).ctrlStats().verifyRetries;
    EXPECT_GT(retries, 0u) << "fault injection never fired";
    EXPECT_GT(sys.subsystemStats().wearLevelMoves, 0u);
    EXPECT_GE(sys.subsystemStats().badLineRemaps, 1u);
    EXPECT_LT(sys.subsystemStats().spareLinesUsed, 64u)
        << "spare pool nearly exhausted; retune the fuzz config";
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrityFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

} // namespace
} // namespace ctrl
} // namespace dramless
