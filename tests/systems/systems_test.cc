/**
 * @file
 * Integration tests of the full-system models: every Table I system
 * executes a small workload end-to-end, and the paper's qualitative
 * orderings hold.
 */

#include <gtest/gtest.h>

#include <map>

#include "systems/factory.hh"
#include "workload/polybench.hh"

namespace dramless
{
namespace systems
{
namespace
{

/** Small scale so the whole matrix runs in seconds. */
constexpr double testScale = 0.08;

RunResult
runOne(SystemKind kind, const char *workload,
       double scale = testScale)
{
    setQuiet(true);
    SystemOptions opts;
    opts.workloadScale = scale;
    auto sys = SystemFactory::create(kind, opts);
    return sys->run(workload::Polybench::byName(workload));
}

TEST(SystemsTest, EverySystemCompletesGemver)
{
    for (SystemKind kind : SystemFactory::evaluationOrder()) {
        RunResult r = runOne(kind, "gemver");
        EXPECT_GT(r.execTime, 0u) << r.system;
        EXPECT_GT(r.bandwidthMBps, 0.0) << r.system;
        EXPECT_GT(r.energy.total(), 0.0) << r.system;
        EXPECT_GT(r.totalInstructions, 0u) << r.system;
        EXPECT_EQ(r.workload, "gemver");
    }
}

TEST(SystemsTest, DramLessBeatsHeteroOnMemoryIntensive)
{
    RunResult dl = runOne(SystemKind::dramLess, "gemver");
    RunResult h = runOne(SystemKind::hetero, "gemver");
    EXPECT_GT(dl.bandwidthMBps, h.bandwidthMBps);
}

TEST(SystemsTest, HeterodirectBeatsHetero)
{
    // Figure 15: the peer-to-peer DMA removes host copies.
    RunResult hd = runOne(SystemKind::heterodirect, "gemver");
    RunResult h = runOne(SystemKind::hetero, "gemver");
    EXPECT_GT(hd.bandwidthMBps, h.bandwidthMBps);
    EXPECT_LT(hd.hostStackTime, h.hostStackTime);
}

TEST(SystemsTest, IdealDominatesEverything)
{
    RunResult ideal = runOne(SystemKind::ideal, "gemver");
    for (SystemKind kind : SystemFactory::evaluationOrder()) {
        RunResult r = runOne(kind, "gemver");
        EXPECT_GT(ideal.bandwidthMBps, r.bandwidthMBps) << r.system;
    }
}

TEST(SystemsTest, FirmwareManagementDegradesDramLess)
{
    // Figure 7: traditional firmware vs the hardware automation.
    RunResult hw = runOne(SystemKind::dramLess, "gemver");
    RunResult fw = runOne(SystemKind::dramLessFirmware, "gemver");
    EXPECT_GT(hw.bandwidthMBps, fw.bandwidthMBps);
}

TEST(SystemsTest, IntegratedFlashOrdersByCellDensity)
{
    // SLC < MLC < TLC latencies => SLC fastest (Figure 15).
    RunResult slc = runOne(SystemKind::integratedSlc, "doitg");
    RunResult mlc = runOne(SystemKind::integratedMlc, "doitg");
    RunResult tlc = runOne(SystemKind::integratedTlc, "doitg");
    EXPECT_GT(slc.bandwidthMBps, mlc.bandwidthMBps);
    EXPECT_GT(mlc.bandwidthMBps, tlc.bandwidthMBps);
}

TEST(SystemsTest, HostFreeSystemsHaveNoHostStackTime)
{
    RunResult dl = runOne(SystemKind::dramLess, "trisolv");
    RunResult h = runOne(SystemKind::hetero, "trisolv");
    // The integrated systems only pay the one-off kernel push.
    EXPECT_LT(dl.hostStackTime, h.hostStackTime / 4);
}

TEST(SystemsTest, HeteroEnergyDominatedByHostStack)
{
    // Figure 17: Hetero spends most energy in the host-side stack.
    RunResult h = runOne(SystemKind::hetero, "gemver");
    EXPECT_GT(h.energy.hostStack, h.energy.storageMedia);
    EXPECT_GT(h.energy.hostStack, h.energy.pcie);
}

TEST(SystemsTest, DramLessUsesLessEnergyThanHetero)
{
    RunResult dl = runOne(SystemKind::dramLess, "gemver");
    RunResult h = runOne(SystemKind::hetero, "gemver");
    EXPECT_LT(dl.energy.total(), h.energy.total());
    // And no host/DRAM buffer energy to speak of.
    EXPECT_LT(dl.energy.dram, 1e-6);
}

TEST(SystemsTest, DecompositionSumsToExecTime)
{
    for (SystemKind kind :
         {SystemKind::dramLess, SystemKind::hetero,
          SystemKind::integratedSlc}) {
        RunResult r = runOne(kind, "trmm");
        EXPECT_LE(r.hostStackTime + r.transferTime +
                      r.storageStallTime + r.computeTime,
                  r.execTime + 1)
            << r.system;
        EXPECT_GT(r.computeTime, 0u) << r.system;
    }
}

TEST(SystemsTest, IpcSeriesRecordedAndBounded)
{
    RunResult r = runOne(SystemKind::dramLess, "gemver", 0.2);
    EXPECT_GE(r.ipc.size(), 3u);
    for (const auto &p : r.ipc.samples()) {
        EXPECT_GE(p.value, 0.0);
        EXPECT_LE(p.value, 7 * 4.0 + 1e-9); // agents x issue width
    }
}

TEST(SystemsTest, PowerSeriesAndCumulativeEnergyConsistent)
{
    RunResult r = runOne(SystemKind::dramLess, "gemver", 0.2);
    ASSERT_FALSE(r.corePower.empty());
    ASSERT_FALSE(r.cumulativeEnergy.empty());
    // Cumulative energy is non-decreasing and ends near the total.
    double prev = 0.0;
    for (const auto &p : r.cumulativeEnergy.samples()) {
        EXPECT_GE(p.value, prev - 1e-12);
        prev = p.value;
    }
    EXPECT_NEAR(prev, r.energy.total(), 0.25 * r.energy.total());
}

TEST(SystemsTest, SchedulerVariantsOrderOnWriteHeavy)
{
    // Figure 13: selective erasing lifts write-heavy workloads.
    setQuiet(true);
    SystemOptions opts;
    opts.workloadScale = testScale;
    auto base = SystemFactory::createDramLessVariant(
        IntegratedKind::dramLessBareMetal, opts);
    auto sel = SystemFactory::createDramLessVariant(
        IntegratedKind::dramLessSelectiveErase, opts);
    auto final_cfg = SystemFactory::createDramLessVariant(
        IntegratedKind::dramLess, opts);
    const auto &spec = workload::Polybench::byName("doitg");
    RunResult rb = base->run(spec);
    RunResult rs = sel->run(spec);
    RunResult rf = final_cfg->run(spec);
    EXPECT_GT(rs.bandwidthMBps, rb.bandwidthMBps);
    EXPECT_GE(rf.bandwidthMBps, rb.bandwidthMBps);
}

TEST(SystemsTest, TableOneInfoIsComplete)
{
    for (SystemKind kind : SystemFactory::evaluationOrder()) {
        SystemInfo info = SystemFactory::info(kind);
        EXPECT_NE(info.label, nullptr);
        EXPECT_NE(info.nvmRead, nullptr);
    }
    EXPECT_TRUE(SystemFactory::info(SystemKind::hetero).heterogeneous);
    EXPECT_FALSE(
        SystemFactory::info(SystemKind::dramLess).heterogeneous);
    EXPECT_FALSE(
        SystemFactory::info(SystemKind::dramLess).internalDram);
    EXPECT_TRUE(
        SystemFactory::info(SystemKind::pageBuffer).internalDram);
}

TEST(SystemsTest, RunsAreReproducible)
{
    RunResult a = runOne(SystemKind::dramLess, "floyd");
    RunResult b = runOne(SystemKind::dramLess, "floyd");
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

} // namespace
} // namespace systems
} // namespace dramless
