/**
 * @file
 * Unit tests of the event-tracing subsystem.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/counters.hh"
#include "sim/trace.hh"

namespace dramless
{
namespace trace
{
namespace
{

TEST(GlobMatchTest, BasicPatterns)
{
    EXPECT_TRUE(globMatch("", "anything"));
    EXPECT_TRUE(globMatch("*", "pram"));
    EXPECT_TRUE(globMatch("pram", "pram"));
    EXPECT_FALSE(globMatch("pram", "ctrl"));
    EXPECT_TRUE(globMatch("p*m", "pram"));
    EXPECT_TRUE(globMatch("p?am", "pram"));
    EXPECT_FALSE(globMatch("p?m", "pram"));
    EXPECT_TRUE(globMatch("ctrl,pram", "pram"));
    EXPECT_TRUE(globMatch("ctrl,pram", "ctrl"));
    EXPECT_FALSE(globMatch("ctrl,pram", "flash"));
    EXPECT_TRUE(globMatch("*sh", "flash"));
    EXPECT_FALSE(globMatch("*sh", "flashy"));
}

TEST(TracerTest, NoTracerInstalledByDefault)
{
    EXPECT_EQ(current(), nullptr);
}

TEST(TracerTest, ScopedInstallAndRestore)
{
    Tracer t;
    {
        ScopedTracer scope(&t);
        EXPECT_EQ(current(), &t);
        {
            Tracer inner;
            ScopedTracer nested(&inner);
            EXPECT_EQ(current(), &inner);
        }
        EXPECT_EQ(current(), &t);
    }
    EXPECT_EQ(current(), nullptr);
}

TEST(TracerTest, RecordsEventKinds)
{
    Tracer t;
    t.complete(catPram, "mod0", "activate", 100, 200);
    t.instant(catCtrl, "ch0", "enqueue", 150);
    t.counter(catFlash, "fw", "depth", 175, 3.0);
    // A backwards interval clamps to zero length instead of
    // underflowing the duration.
    t.complete(catPram, "mod0", "clamped", 500, 400);
    ASSERT_EQ(t.events().size(), 4u);
    EXPECT_EQ(t.events()[0].ph, Event::Ph::complete);
    EXPECT_EQ(t.events()[0].start, 100u);
    EXPECT_EQ(t.events()[0].end, 200u);
    EXPECT_EQ(t.events()[1].ph, Event::Ph::instant);
    EXPECT_EQ(t.events()[2].ph, Event::Ph::counter);
    EXPECT_DOUBLE_EQ(t.events()[2].value, 3.0);
    EXPECT_EQ(t.events()[3].end, 500u);
}

TEST(TracerTest, FilterDropsOtherCategories)
{
    Tracer t("pram,host");
    EXPECT_TRUE(t.wants(catPram));
    EXPECT_TRUE(t.wants(catHost));
    EXPECT_FALSE(t.wants(catCtrl));
    t.complete(catPram, "m", "a", 0, 1);
    t.complete(catCtrl, "c", "b", 0, 1);
    t.instant(catHost, "h", "c", 2);
    ASSERT_EQ(t.events().size(), 2u);
    EXPECT_STREQ(t.events()[0].category, catPram);
    EXPECT_STREQ(t.events()[1].category, catHost);
}

TEST(SpanTest, EmitsOnDestruction)
{
    Tracer t;
    {
        ScopedTracer scope(&t);
        Span span(catSystem, "sys", "run", 10);
        span.finish(90);
    }
    ASSERT_EQ(t.events().size(), 1u);
    EXPECT_EQ(t.events()[0].start, 10u);
    EXPECT_EQ(t.events()[0].end, 90u);
    EXPECT_STREQ(t.events()[0].name, "run");
}

TEST(SpanTest, NoTracerMeansNoEvent)
{
    Span span(catSystem, "sys", "run", 10);
    span.finish(90);
    // Nothing to assert beyond not crashing: current() is null.
    EXPECT_EQ(current(), nullptr);
}

TEST(CounterTest, TracksLevelAndEmits)
{
    Counter c(catCtrl, "ch0", "queueDepth");
    c.inc(5);   // no tracer installed: level still tracks
    EXPECT_DOUBLE_EQ(c.level(), 1.0);
    Tracer t;
    {
        ScopedTracer scope(&t);
        c.inc(10);
        c.dec(20);
        c.set(30, 7.0);
    }
    c.inc(40); // outside the scope again
    EXPECT_DOUBLE_EQ(c.level(), 8.0);
    ASSERT_EQ(t.events().size(), 3u);
    EXPECT_DOUBLE_EQ(t.events()[0].value, 2.0);
    EXPECT_DOUBLE_EQ(t.events()[1].value, 1.0);
    EXPECT_DOUBLE_EQ(t.events()[2].value, 7.0);
}

TEST(ChromeTraceTest, RendersAllPhases)
{
    Tracer t;
    t.complete(catPram, "mod0", "activate", 1000000, 3000000);
    t.instant(catPram, "mod0", "blip", 2000000);
    t.counter(catCtrl, "ch0", "depth", 1500000, 2.0);
    std::ostringstream os;
    writeChromeTrace(os, {{std::string(), t.events()}});
    std::string out = os.str();
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
    // 1e6 ticks (ps) = 1 us; durations convert to Chrome us.
    EXPECT_NE(out.find("\"ts\":1"), std::string::npos);
    EXPECT_NE(out.find("\"dur\":2"), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"activate\""), std::string::npos);
    // Process metadata names both components.
    EXPECT_NE(out.find("\"name\":\"pram\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"ctrl\""), std::string::npos);
}

TEST(ChromeTraceTest, GroupLabelsPrefixProcesses)
{
    Tracer a, b;
    a.complete(catPram, "mod0", "x", 0, 10);
    b.complete(catPram, "mod0", "x", 0, 10);
    std::ostringstream os;
    writeChromeTrace(os, {{"DRAM-less/gemver", a.events()},
                          {"Hetero/doitg", b.events()}});
    std::string out = os.str();
    EXPECT_NE(out.find("DRAM-less/gemver/pram"), std::string::npos);
    EXPECT_NE(out.find("Hetero/doitg/pram"), std::string::npos);
}

TEST(SummaryTest, AggregatesDurationsAndCounters)
{
    Tracer t;
    t.complete(catPram, "mod0", "activate", 0, 2000000);
    t.complete(catPram, "mod0", "activate", 5000000, 6000000);
    t.counter(catCtrl, "ch0", "depth", 0, 2.0);
    t.counter(catCtrl, "ch0", "depth", 10, 5.0);
    t.counter(catCtrl, "ch0", "depth", 20, 1.0);
    std::ostringstream os;
    writeSummary(os, {{std::string(), t.events()}});
    std::string out = os.str();
    EXPECT_NE(out.find("activate"), std::string::npos);
    // 2 us + 1 us of busy time over two events.
    EXPECT_NE(out.find("3.000 us"), std::string::npos);
    // Counter reports its peak level.
    EXPECT_NE(out.find("5.0 peak"), std::string::npos);
}

} // namespace
} // namespace trace
} // namespace dramless
