/**
 * @file
 * Unit tests of the debug-trace facility.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/debug.hh"

namespace dramless
{
namespace debug
{
namespace
{

class DebugTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        clearFlags();
        setStream(nullptr);
    }
};

TEST_F(DebugTest, FlagsToggle)
{
    EXPECT_FALSE(anyEnabled());
    EXPECT_FALSE(flagEnabled("Ctrl"));
    enableFlag("Ctrl");
    EXPECT_TRUE(anyEnabled());
    EXPECT_TRUE(flagEnabled("Ctrl"));
    EXPECT_FALSE(flagEnabled("Pram"));
    disableFlag("Ctrl");
    EXPECT_FALSE(anyEnabled());
}

TEST_F(DebugTest, AllFlagEnablesEverything)
{
    enableFlag("All");
    EXPECT_TRUE(flagEnabled("Ctrl"));
    EXPECT_TRUE(flagEnabled("Anything"));
}

TEST_F(DebugTest, PrintFormatsTickNameMessage)
{
    std::ostringstream os;
    setStream(&os);
    print(12345, "pram.ch0", "hello 42");
    EXPECT_EQ(os.str(), "12345: pram.ch0: hello 42\n");
}

TEST_F(DebugTest, MacroEmitsOnlyWhenEnabled)
{
    std::ostringstream os;
    setStream(&os);
    Tick fake_now = 77;
    auto curTick = [&] { return fake_now; };
    auto name = [] { return std::string("unit"); };
    DPRINTF("Unit", "hidden %d", 1);
    EXPECT_TRUE(os.str().empty());
    enableFlag("Unit");
    DPRINTF("Unit", "visible %d", 2);
    EXPECT_EQ(os.str(), "77: unit: visible 2\n");
    (void)curTick;
    (void)name;
}

TEST_F(DebugTest, DprintfnTakesExplicitContext)
{
    std::ostringstream os;
    setStream(&os);
    enableFlag("X");
    DPRINTFN("X", 9, "who", "v=%u", 3u);
    EXPECT_EQ(os.str(), "9: who: v=3\n");
}

TEST_F(DebugTest, EnabledFlagsListsSorted)
{
    enableFlag("Zeta");
    enableFlag("Alpha");
    auto flags = enabledFlags();
    ASSERT_EQ(flags.size(), 2u);
    EXPECT_EQ(flags[0], "Alpha");
    EXPECT_EQ(flags[1], "Zeta");
}

} // namespace
} // namespace debug
} // namespace dramless
