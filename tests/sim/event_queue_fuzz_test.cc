/**
 * @file
 * Model-based fuzz test of the event queue: a randomized sequence of
 * schedule/deschedule/reschedule/step operations checked against a
 * simple reference model (a multiset of (tick, seq) pairs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace dramless
{
namespace
{

class RecordingEvent : public Event
{
  public:
    explicit RecordingEvent(std::vector<int> *log, int id)
        : log_(log), id_(id)
    {}

    void process() override { log_->push_back(id_); }
    std::string name() const override
    {
        return "fuzz" + std::to_string(id_);
    }

  private:
    std::vector<int> *log_;
    int id_;
};

TEST(EventQueueFuzzTest, MatchesReferenceModel)
{
    for (std::uint64_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
        Random rng(seed);
        EventQueue eq;
        std::vector<int> fired;

        constexpr int num_events = 32;
        std::vector<std::unique_ptr<RecordingEvent>> events;
        for (int i = 0; i < num_events; ++i)
            events.push_back(
                std::make_unique<RecordingEvent>(&fired, i));

        // Reference model: id -> scheduled tick plus a global
        // insertion order to break ties.
        struct Ref
        {
            Tick when;
            std::uint64_t order;
        };
        std::map<int, Ref> model;
        std::uint64_t order = 0;
        std::vector<int> expected;

        auto model_pop = [&]() -> bool {
            if (model.empty())
                return false;
            auto best = model.begin();
            for (auto it = model.begin(); it != model.end(); ++it) {
                if (it->second.when < best->second.when ||
                    (it->second.when == best->second.when &&
                     it->second.order < best->second.order)) {
                    best = it;
                }
            }
            expected.push_back(best->first);
            model.erase(best);
            return true;
        };

        for (int step = 0; step < 600; ++step) {
            int id = int(rng.below(num_events));
            double dice = rng.uniform();
            if (dice < 0.45) {
                // (Re)schedule at now + random delta.
                Tick when = eq.curTick() + rng.below(1000);
                if (events[id]->scheduled())
                    model.erase(id);
                eq.reschedule(events[id].get(), when);
                model[id] = Ref{when, ++order};
            } else if (dice < 0.6) {
                if (events[id]->scheduled()) {
                    eq.deschedule(events[id].get());
                    model.erase(id);
                }
            } else if (dice < 0.9) {
                // Fire one event in both worlds.
                bool fired_model = model_pop();
                bool fired_real = eq.step();
                ASSERT_EQ(fired_real, fired_model);
            } else {
                ASSERT_EQ(eq.numPending(), model.size());
                // nextTick must agree with the model's minimum.
                Tick model_next = maxTick;
                for (const auto &[_, ref] : model)
                    model_next = std::min(model_next, ref.when);
                ASSERT_EQ(eq.nextTick(), model_next);
            }
        }
        // Drain both.
        while (model_pop()) {
        }
        eq.run();
        ASSERT_EQ(fired, expected) << "seed " << seed;
    }
}

} // namespace
} // namespace dramless
