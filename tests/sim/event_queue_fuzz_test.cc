/**
 * @file
 * Model-based fuzz tests of the event queue.
 *
 * MatchesReferenceModel drives a modest schedule/deschedule/step mix
 * against a map-based oracle. DifferentialAgainstSortedVector is the
 * heavy differential test for the indexed heap: ~10k randomized
 * operations (mixed priorities, idle reschedules at curTick,
 * destroy-while-descheduled) against a naive sorted-vector reference
 * ordered by the exact kernel key (tick, priority, seq), with heap
 * invariants validated along the way.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace dramless
{
namespace
{

class RecordingEvent : public Event
{
  public:
    explicit RecordingEvent(std::vector<int> *log, int id)
        : log_(log), id_(id)
    {}

    void process() override { log_->push_back(id_); }
    std::string name() const override
    {
        return "fuzz" + std::to_string(id_);
    }

  private:
    std::vector<int> *log_;
    int id_;
};

TEST(EventQueueFuzzTest, MatchesReferenceModel)
{
    for (std::uint64_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
        Random rng(seed);
        EventQueue eq;
        std::vector<int> fired;

        constexpr int num_events = 32;
        std::vector<std::unique_ptr<RecordingEvent>> events;
        for (int i = 0; i < num_events; ++i)
            events.push_back(
                std::make_unique<RecordingEvent>(&fired, i));

        // Reference model: id -> scheduled tick plus a global
        // insertion order to break ties.
        struct Ref
        {
            Tick when;
            std::uint64_t order;
        };
        std::map<int, Ref> model;
        std::uint64_t order = 0;
        std::vector<int> expected;

        auto model_pop = [&]() -> bool {
            if (model.empty())
                return false;
            auto best = model.begin();
            for (auto it = model.begin(); it != model.end(); ++it) {
                if (it->second.when < best->second.when ||
                    (it->second.when == best->second.when &&
                     it->second.order < best->second.order)) {
                    best = it;
                }
            }
            expected.push_back(best->first);
            model.erase(best);
            return true;
        };

        for (int step = 0; step < 600; ++step) {
            int id = int(rng.below(num_events));
            double dice = rng.uniform();
            if (dice < 0.45) {
                // (Re)schedule at now + random delta.
                Tick when = eq.curTick() + rng.below(1000);
                if (events[id]->scheduled())
                    model.erase(id);
                eq.reschedule(events[id].get(), when);
                model[id] = Ref{when, ++order};
            } else if (dice < 0.6) {
                if (events[id]->scheduled()) {
                    eq.deschedule(events[id].get());
                    model.erase(id);
                }
            } else if (dice < 0.9) {
                // Fire one event in both worlds.
                bool fired_model = model_pop();
                bool fired_real = eq.step();
                ASSERT_EQ(fired_real, fired_model);
            } else {
                ASSERT_EQ(eq.numPending(), model.size());
                // nextTick must agree with the model's minimum.
                Tick model_next = maxTick;
                for (const auto &[_, ref] : model)
                    model_next = std::min(model_next, ref.when);
                ASSERT_EQ(eq.nextTick(), model_next);
            }
        }
        // Drain both.
        while (model_pop()) {
        }
        eq.run();
        ASSERT_EQ(fired, expected) << "seed " << seed;
    }
}

TEST(EventQueueFuzzTest, DifferentialAgainstSortedVector)
{
    for (std::uint64_t seed : {3u, 17u, 4242u}) {
        Random rng(seed);
        EventQueue eq;
        std::vector<int> fired;

        constexpr int num_events = 64;
        std::vector<std::unique_ptr<RecordingEvent>> events;
        for (int i = 0; i < num_events; ++i)
            events.push_back(
                std::make_unique<RecordingEvent>(&fired, i));

        // Naive reference: a vector kept sorted by the kernel's
        // strict total order (tick, priority, seq). Sequence numbers
        // mirror the queue's allocation rule: one fresh seq per
        // schedule AND per reschedule, starting at 1.
        struct RefEntry
        {
            Tick when;
            int prio;
            std::uint64_t seq;
            int id;
        };
        std::vector<RefEntry> ref;
        std::uint64_t next_seq = 1;
        std::vector<int> expected;

        auto ref_less = [](const RefEntry &a, const RefEntry &b) {
            if (a.when != b.when)
                return a.when < b.when;
            if (a.prio != b.prio)
                return a.prio < b.prio;
            return a.seq < b.seq;
        };
        auto ref_insert = [&](Tick when, int prio, int id) {
            RefEntry e{when, prio, next_seq++, id};
            ref.insert(std::upper_bound(ref.begin(), ref.end(), e,
                                        ref_less),
                       e);
        };
        auto ref_erase = [&](int id) {
            auto it = std::find_if(
                ref.begin(), ref.end(),
                [&](const RefEntry &e) { return e.id == id; });
            ASSERT_NE(it, ref.end());
            ref.erase(it);
        };

        const int prios[] = {Event::highPriority,
                             Event::defaultPriority,
                             Event::lowPriority, -3, 5};

        for (int step = 0; step < 10000; ++step) {
            int id = int(rng.below(num_events));
            Event *ev = events[id].get();
            int prio = prios[rng.below(5)];
            double dice = rng.uniform();
            if (dice < 0.30) {
                if (!ev->scheduled()) {
                    Tick when = eq.curTick() + rng.below(500);
                    eq.schedule(ev, when, prio);
                    ref_insert(when, prio, id);
                }
            } else if (dice < 0.50) {
                // Reschedule scheduled or idle events alike; an idle
                // event rescheduled AT curTick must fire this tick.
                Tick when = eq.curTick() + rng.below(200);
                if (ev->scheduled())
                    ref_erase(id);
                eq.reschedule(ev, when, prio);
                ref_insert(when, prio, id);
            } else if (dice < 0.62) {
                if (ev->scheduled()) {
                    eq.deschedule(ev);
                    ref_erase(id);
                }
            } else if (dice < 0.68) {
                // Destroy while descheduled: the eager unlink must
                // leave no dangling heap slot behind.
                if (ev->scheduled()) {
                    eq.deschedule(ev);
                    ref_erase(id);
                }
                events[id] =
                    std::make_unique<RecordingEvent>(&fired, id);
            } else if (dice < 0.95) {
                bool fired_real = eq.step();
                ASSERT_EQ(fired_real, !ref.empty());
                if (!ref.empty()) {
                    expected.push_back(ref.front().id);
                    ref.erase(ref.begin());
                }
            } else {
                // Exactness + invariant audit.
                ASSERT_EQ(eq.numPending(), ref.size());
                ASSERT_EQ(eq.empty(), ref.empty());
                ASSERT_EQ(eq.nextTick(),
                          ref.empty() ? maxTick : ref.front().when);
                ASSERT_TRUE(eq.selfCheck());
            }
        }

        while (!ref.empty()) {
            expected.push_back(ref.front().id);
            ref.erase(ref.begin());
        }
        eq.run();
        ASSERT_TRUE(eq.empty());
        ASSERT_EQ(eq.numPending(), 0u);
        ASSERT_TRUE(eq.selfCheck());
        ASSERT_EQ(fired, expected) << "seed " << seed;
    }
}

} // namespace
} // namespace dramless
