/**
 * @file
 * Unit tests of the statistics package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace dramless
{
namespace stats
{
namespace
{

TEST(ScalarTest, AccumulatesAndResets)
{
    Scalar s("s");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    s -= 0.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.0);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(AverageTest, TracksMeanMinMax)
{
    Average a("a");
    a.sample(1.0);
    a.sample(3.0);
    a.sample(2.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(AverageTest, EmptyAverageIsZero)
{
    Average a("a");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(HistogramTest, BucketsSamplesLinearly)
{
    Histogram h("h", 0.0, 10.0, 5);
    h.sample(0.0);
    h.sample(1.9);
    h.sample(2.0);
    h.sample(9.9);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.totalSamples(), 4u);
    EXPECT_DOUBLE_EQ(h.bucketLow(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(1), 4.0);
}

TEST(HistogramTest, UnderflowAndOverflow)
{
    Histogram h("h", 0.0, 10.0, 2);
    h.sample(-1.0);
    h.sample(10.0); // hi bound is inclusive: last bucket, not overflow
    h.sample(100.0, 3);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 3u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.totalSamples(), 5u);
}

// Regression: a sample exactly equal to hi used to fall into the
// overflow bin because (hi - lo) / width indexed one past the last
// bucket.
TEST(HistogramTest, BoundarySamplesPinned)
{
    Histogram h("h", 2.0, 12.0, 5); // buckets of width 2
    h.sample(2.0);  // lo: first bucket
    h.sample(4.0);  // interior boundary: opens second bucket
    h.sample(12.0); // hi: last bucket
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    // Values either side of the range still land outside.
    h.sample(std::nextafter(2.0, -1.0));
    h.sample(std::nextafter(12.0, 100.0));
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.totalSamples(), 5u);
}

TEST(HistogramTest, ResetClearsEverything)
{
    Histogram h("h", 0.0, 4.0, 4);
    h.sample(1.0);
    h.sample(-1.0);
    h.reset();
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        EXPECT_EQ(h.bucketCount(i), 0u);
}

TEST(TimeSeriesTest, RecordsMonotonically)
{
    TimeSeries ts("ipc");
    ts.record(0, 1.0);
    ts.record(10, 2.0);
    ts.record(10, 3.0); // equal ticks are fine
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.mean(), 2.0);
}

TEST(TimeSeriesDeathTest, BackwardsTickPanics)
{
    TimeSeries ts("ipc");
    ts.record(10, 1.0);
    EXPECT_DEATH(ts.record(5, 1.0), "backwards");
}

TEST(TimeSeriesTest, TimeWeightedMeanHoldsValues)
{
    TimeSeries ts("power");
    // 10 W for 10 ticks, then 20 W for 30 ticks.
    ts.record(0, 10.0);
    ts.record(10, 20.0);
    ts.record(40, 0.0);
    EXPECT_NEAR(ts.timeWeightedMean(), (10 * 10 + 20 * 30) / 40.0,
                1e-9);
}

TEST(TimeSeriesTest, TimeWeightedMeanDegenerateCases)
{
    TimeSeries empty("e");
    EXPECT_DOUBLE_EQ(empty.timeWeightedMean(), 0.0);
    TimeSeries one("o");
    one.record(5, 7.0);
    EXPECT_DOUBLE_EQ(one.timeWeightedMean(), 7.0);
}

TEST(TimeSeriesTest, DownsampleAveragesWindows)
{
    TimeSeries ts("t");
    for (Tick i = 0; i < 100; ++i)
        ts.record(i, double(i));
    auto pts = ts.downsample(10);
    ASSERT_EQ(pts.size(), 10u);
    EXPECT_DOUBLE_EQ(pts[0].value, 4.5); // mean of 0..9
    EXPECT_EQ(pts[0].when, 0u);
    EXPECT_DOUBLE_EQ(pts[9].value, 94.5);
}

TEST(TimeSeriesTest, DownsampleNoOpWhenSmall)
{
    TimeSeries ts("t");
    ts.record(0, 1.0);
    ts.record(1, 2.0);
    auto pts = ts.downsample(10);
    EXPECT_EQ(pts.size(), 2u);
}

// Edge pins: max_points == 0 must return the identity series (no
// division by zero), and max_points > size() must not produce empty
// windows — both come back untouched.
TEST(TimeSeriesTest, DownsampleEdgeCases)
{
    TimeSeries ts("t");
    for (Tick i = 0; i < 7; ++i)
        ts.record(i, double(i) * 2.0);

    auto zero = ts.downsample(0);
    ASSERT_EQ(zero.size(), 7u);
    for (std::size_t i = 0; i < zero.size(); ++i) {
        EXPECT_EQ(zero[i].when, Tick(i));
        EXPECT_DOUBLE_EQ(zero[i].value, double(i) * 2.0);
    }

    auto big = ts.downsample(1000);
    ASSERT_EQ(big.size(), 7u);
    EXPECT_DOUBLE_EQ(big[6].value, 12.0);

    TimeSeries empty("e");
    EXPECT_TRUE(empty.downsample(0).empty());
    EXPECT_TRUE(empty.downsample(5).empty());
}

TEST(StatGroupTest, DumpsRegisteredStats)
{
    StatGroup group("test");
    Scalar s("scalar.one", "a counter");
    s += 42;
    Average a("avg.two");
    a.sample(2.0);
    Histogram h("hist.three", 0, 10, 2);
    h.sample(1.0);
    group.add(&s);
    group.add(&a);
    group.add(&h);
    std::ostringstream os;
    group.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("scalar.one"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("avg.two"), std::string::npos);
    EXPECT_NE(out.find("hist.three"), std::string::npos);
}

// Regression: NaN used to satisfy neither range guard and index
// straight into the last bucket through a NaN-to-size_t conversion
// (undefined behavior). It now lands in a dedicated counter, outside
// every bucket and outside totalSamples().
TEST(HistogramTest, NanSamplesCountedSeparately)
{
    Histogram h("h", 0.0, 10.0, 5);
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(std::nan(""), 3);
    h.sample(5.0);
    EXPECT_EQ(h.nanCount(), 4u);
    EXPECT_EQ(h.totalSamples(), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.bucketCount(4), 0u); // the old UB target
    EXPECT_EQ(h.bucketCount(2), 1u);
    h.reset();
    EXPECT_EQ(h.nanCount(), 0u);
}

TEST(HistogramTest, PercentileEmptyAndEdges)
{
    Histogram h("h", 0.0, 10.0, 5);
    EXPECT_TRUE(std::isnan(h.percentile(0.5)));
    // NaN samples alone keep the distribution empty.
    h.sample(std::nan(""));
    EXPECT_TRUE(std::isnan(h.percentile(0.5)));
    h.sample(-5.0); // underflow mass reports the lower bound
    h.sample(50.0); // overflow mass reports the upper bound
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(HistogramDeathTest, PercentileRejectsBadRank)
{
    Histogram h("h", 0.0, 10.0, 5);
    EXPECT_DEATH(h.percentile(-0.1), "0, 1");
    EXPECT_DEATH(h.percentile(1.5), "0, 1");
}

TEST(PercentileExactTest, NearestRankReference)
{
    // Odd count: p50 is the middle element.
    EXPECT_DOUBLE_EQ(percentileExact({3.0, 1.0, 2.0}, 0.5), 2.0);
    // p99 of 1..100 is the 99th smallest.
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(double(i));
    EXPECT_DOUBLE_EQ(percentileExact(v, 0.99), 99.0);
    EXPECT_DOUBLE_EQ(percentileExact(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileExact(v, 1.0), 100.0);
    // NaNs are dropped, an all-NaN/empty sample has no percentile.
    EXPECT_DOUBLE_EQ(
        percentileExact({std::nan(""), 7.0}, 0.5), 7.0);
    EXPECT_TRUE(std::isnan(percentileExact({}, 0.5)));
    EXPECT_TRUE(std::isnan(percentileExact({std::nan("")}, 0.5)));
}

// The histogram estimate must track the exact sorted-sample
// reference to within one bucket width, including on skewed and
// weighted distributions — the accuracy contract the serving layer's
// tail-latency numbers rely on.
TEST(HistogramTest, PercentileTracksExactReference)
{
    struct Case
    {
        const char *name;
        std::vector<std::pair<double, std::uint64_t>> weighted;
    };
    std::vector<Case> cases;
    // Heavily skewed: 95% tiny values, a long sparse tail.
    Case skew{"skew", {}};
    for (int i = 0; i < 950; ++i)
        skew.weighted.push_back({double(i % 10), 1});
    for (int i = 0; i < 50; ++i)
        skew.weighted.push_back({900.0 + i * 2.0, 1});
    cases.push_back(skew);
    // Weighted bimodal mass.
    cases.push_back(
        {"bimodal", {{10.0, 400}, {800.0, 100}, {990.0, 1}}});
    // Uniform grid.
    Case grid{"grid", {}};
    for (int i = 0; i <= 1000; ++i)
        grid.weighted.push_back({double(i), 1});
    cases.push_back(grid);

    for (const auto &c : cases) {
        Histogram h(c.name, 0.0, 1000.0, 200); // width 5
        std::vector<double> flat;
        for (const auto &[v, w] : c.weighted) {
            h.sample(v, w);
            flat.insert(flat.end(), w, v);
        }
        for (double p : {0.5, 0.9, 0.99, 0.999}) {
            double exact = percentileExact(flat, p);
            EXPECT_NEAR(h.percentile(p), exact, 5.0)
                << c.name << " p=" << p;
        }
    }
}

TEST(GeomeanTest, MatchesClosedForm)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_NEAR(geomean({0.5, 2.0}), 1.0, 1e-12);
}

// Regression: an empty sample used to panic the whole process, which
// turned "this sweep found no knee" into a crash at summary time.
// Empty now explicitly reports the 0.0 sentinel (callers decide what
// an empty aggregate means); non-positive values still die.
TEST(GeomeanTest, EmptyInputReturnsZeroSentinel)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(GeomeanDeathTest, RejectsNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
    EXPECT_DEATH(geomean({-2.0}), "positive");
}

} // namespace
} // namespace stats
} // namespace dramless
