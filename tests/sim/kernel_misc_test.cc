/**
 * @file
 * Unit tests of ticks, Clocked, Random, SparseMemory and csprintf.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/clocked.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/sparse_memory.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace
{

TEST(TicksTest, UnitConversionsRoundTrip)
{
    EXPECT_EQ(fromNs(2.5), 2500u);
    EXPECT_EQ(fromUs(10), 10'000'000u);
    EXPECT_EQ(fromMs(60), 60'000'000'000u);
    EXPECT_DOUBLE_EQ(toNs(fromNs(80)), 80.0);
    EXPECT_DOUBLE_EQ(toUs(fromUs(18)), 18.0);
    EXPECT_DOUBLE_EQ(toSec(tickPerSec), 1.0);
}

TEST(TicksTest, PeriodsFromFrequency)
{
    EXPECT_EQ(periodFromMhz(400.0), 2500u); // the PRAM PHY clock
    EXPECT_EQ(periodFromGhz(1.0), 1000u);   // the PE clock
}

TEST(ClockedTest, CycleTickConversions)
{
    EventQueue eq;
    Clocked c(eq, 2500);
    EXPECT_EQ(c.clockPeriod(), 2500u);
    EXPECT_DOUBLE_EQ(c.frequencyMhz(), 400.0);
    EXPECT_EQ(c.cyclesToTicks(6), 15000u);
    EXPECT_EQ(c.ticksToCycles(15000), 6u);
    EXPECT_EQ(c.ticksToCycles(15001), 7u); // rounds up
}

TEST(ClockedTest, ClockEdgeAligns)
{
    EventQueue eq;
    Clocked c(eq, 10);
    EventFunctionWrapper ev([] {}, "advance");
    eq.schedule(&ev, 13);
    eq.run();
    ASSERT_EQ(eq.curTick(), 13u);
    EXPECT_EQ(c.clockEdge(), 20u);      // next edge
    EXPECT_EQ(c.clockEdge(1), 20u);     // first edge >= 1 cycle away
    EXPECT_EQ(c.clockEdge(2), 30u);
}

TEST(ClockedTest, ClockEdgeOnEdgeIsNow)
{
    EventQueue eq;
    Clocked c(eq, 10);
    EXPECT_EQ(c.clockEdge(), 0u);
    EXPECT_EQ(c.clockEdge(3), 30u);
}

TEST(RandomTest, DeterministicFromSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformInUnitInterval)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RandomTest, BetweenStaysInClosedRange)
{
    Random r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = r.between(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all values reachable
}

TEST(RandomTest, ChanceExtremes)
{
    Random r(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(SparseMemoryTest, ReadsZerosWhenUntouched)
{
    SparseMemory mem(1 << 20);
    std::uint8_t buf[16];
    std::fill(std::begin(buf), std::end(buf), 0xFF);
    mem.read(4096, buf, sizeof(buf));
    for (auto b : buf)
        EXPECT_EQ(b, 0u);
    EXPECT_EQ(mem.allocatedBlocks(), 0u);
}

TEST(SparseMemoryTest, WriteReadRoundTrip)
{
    SparseMemory mem(1 << 20);
    std::vector<std::uint8_t> data(100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i * 3);
    mem.write(12345, data.data(), data.size());
    std::vector<std::uint8_t> out(100);
    mem.read(12345, out.data(), out.size());
    EXPECT_EQ(data, out);
}

TEST(SparseMemoryTest, CrossBlockAccesses)
{
    SparseMemory mem(1 << 20, 64);
    std::vector<std::uint8_t> data(200, 0xAB);
    mem.write(60, data.data(), data.size()); // spans 4+ blocks
    std::vector<std::uint8_t> out(200);
    mem.read(60, out.data(), out.size());
    EXPECT_EQ(data, out);
    EXPECT_GE(mem.allocatedBlocks(), 4u);
}

TEST(SparseMemoryTest, FillAndZeroFillReclaims)
{
    SparseMemory mem(1 << 16, 64);
    mem.fill(0, 0xCC, 256);
    EXPECT_EQ(mem.allocatedBlocks(), 4u);
    std::uint8_t b;
    mem.read(100, &b, 1);
    EXPECT_EQ(b, 0xCC);
    mem.fill(0, 0, 256); // whole blocks of zero free the storage
    EXPECT_EQ(mem.allocatedBlocks(), 0u);
    mem.read(100, &b, 1);
    EXPECT_EQ(b, 0u);
}

TEST(SparseMemoryDeathTest, OutOfRangePanics)
{
    SparseMemory mem(1024);
    std::uint8_t b = 0;
    EXPECT_DEATH(mem.read(1024, &b, 1), "out of range");
    EXPECT_DEATH(mem.write(1000, &b, 100), "out of range");
}

TEST(CsprintfTest, FormatsLikePrintf)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 42, "hi"), "x=42 y=hi");
    EXPECT_EQ(csprintf("%05.1f", 2.25), "002.2");
    EXPECT_EQ(csprintf("plain"), "plain");
}

TEST(LoggingTest, QuietSuppresssesFlag)
{
    setQuiet(true);
    EXPECT_TRUE(quiet());
    setQuiet(false);
    EXPECT_FALSE(quiet());
}

} // namespace
} // namespace dramless
