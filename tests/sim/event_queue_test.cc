/**
 * @file
 * Unit tests of the event-driven simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace
{

TEST(EventQueueTest, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextTick(), maxTick);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueTest, ProcessesEventAtScheduledTick)
{
    EventQueue eq;
    Tick seen = maxTick;
    EventFunctionWrapper ev([&] { seen = eq.curTick(); }, "probe");
    eq.schedule(&ev, 100);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 100u);
    eq.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_FALSE(ev.scheduled());
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueueTest, OrdersByTick)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");
    eq.schedule(&c, 30);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTickOrdersByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper low([&] { order.push_back(3); }, "low");
    EventFunctionWrapper first([&] { order.push_back(1); }, "first");
    EventFunctionWrapper second([&] { order.push_back(2); }, "second");
    eq.schedule(&low, 50, Event::lowPriority);
    eq.schedule(&first, 50);
    eq.schedule(&second, 50);
    eq.run();
    // Priority dominates; FIFO among equals.
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, DeschedulePreventsProcessing)
{
    EventQueue eq;
    bool ran = false;
    EventFunctionWrapper ev([&] { ran = true; }, "victim");
    eq.schedule(&ev, 10);
    eq.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue eq;
    Tick seen = 0;
    EventFunctionWrapper ev([&] { seen = eq.curTick(); }, "mover");
    eq.schedule(&ev, 10);
    eq.reschedule(&ev, 42);
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueueTest, RescheduleWorksOnIdleEvent)
{
    EventQueue eq;
    int runs = 0;
    EventFunctionWrapper ev([&] { ++runs; }, "idle");
    eq.reschedule(&ev, 5);
    eq.run();
    EXPECT_EQ(runs, 1);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int hops = 0;
    EventFunctionWrapper ev(
        [&] {
            if (++hops < 5) {
                eq.schedule(&ev, eq.curTick() + 7);
            }
        },
        "chain");
    eq.schedule(&ev, 0);
    eq.run();
    EXPECT_EQ(hops, 5);
    EXPECT_EQ(eq.curTick(), 28u);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int runs = 0;
    EventFunctionWrapper a([&] { ++runs; }, "a");
    EventFunctionWrapper b([&] { ++runs; }, "b");
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.runUntil(10);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(eq.curTick(), 10u);
    eq.runUntil(15);
    EXPECT_EQ(runs, 1);
    // Time advances to the boundary even with no events.
    EXPECT_EQ(eq.curTick(), 15u);
    eq.runUntil(20);
    EXPECT_EQ(runs, 2);
}

TEST(EventQueueTest, BoundedRunProcessesExactlyLimit)
{
    EventQueue eq;
    int runs = 0;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 10; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&] { ++runs; }, "e"));
        eq.schedule(events.back().get(), Tick(i));
    }
    EXPECT_EQ(eq.run(std::uint64_t(4)), 4u);
    EXPECT_EQ(runs, 4);
    EXPECT_EQ(eq.numPending(), 6u);
    // Drain the rest so no scheduled event is destroyed.
    eq.run();
}

TEST(EventQueueTest, NumProcessedCounts)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "x");
    eq.schedule(&ev, 1);
    eq.run();
    eq.schedule(&ev, 2);
    eq.run();
    EXPECT_EQ(eq.numProcessed(), 2u);
}

TEST(EventQueueTest, RescheduleIdleEventToCurrentTick)
{
    EventQueue eq;
    // Advance time first so "current tick" is nonzero.
    EventFunctionWrapper warm([] {}, "warm");
    eq.schedule(&warm, 25);
    eq.run();
    ASSERT_EQ(eq.curTick(), 25u);

    int runs = 0;
    EventFunctionWrapper ev([&] { ++runs; }, "now");
    // Rescheduling a never-scheduled event to the current tick must
    // schedule it there, not panic or drop it.
    eq.reschedule(&ev, eq.curTick());
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 25u);
    eq.run();
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(eq.curTick(), 25u);
}

TEST(EventQueueTest, RescheduleToSameTickKeepsSingleOccurrence)
{
    EventQueue eq;
    int runs = 0;
    EventFunctionWrapper ev([&] { ++runs; }, "same");
    eq.schedule(&ev, 10);
    eq.reschedule(&ev, 10);
    eq.reschedule(&ev, 10);
    EXPECT_EQ(eq.numPending(), 1u);
    eq.run();
    EXPECT_EQ(runs, 1);
}

TEST(EventQueueTest, DescheduledEventCanMoveToAnotherQueue)
{
    EventQueue a, b;
    int runs = 0;
    EventFunctionWrapper ev([&] { ++runs; }, "migrant");
    a.schedule(&ev, 10);
    a.deschedule(&ev);
    b.schedule(&ev, 10);
    b.run();
    EXPECT_EQ(runs, 1);
    // The stale entry left in a must drain without touching ev.
    EXPECT_EQ(a.nextTick(), maxTick);
    EXPECT_TRUE(a.empty());
}

TEST(EventQueueTest, DescheduledEventMayBeDestroyedBeforeDrain)
{
    // A lazily-removed heap entry must never dereference its event:
    // the owner may destroy the event right after deschedule().
    EventQueue eq;
    auto ev = std::make_unique<EventFunctionWrapper>([] {}, "gone");
    EventFunctionWrapper keep([] {}, "keep");
    eq.schedule(ev.get(), 10);
    eq.schedule(&keep, 20);
    eq.deschedule(ev.get());
    ev.reset();
    eq.run();
    EXPECT_EQ(eq.curTick(), 20u);
}

TEST(EventQueueTest, PriorityAccessorReflectsSchedule)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "prio");
    eq.schedule(&ev, 5, Event::highPriority);
    EXPECT_EQ(ev.priority(), Event::highPriority);
    eq.reschedule(&ev, 6, Event::lowPriority);
    EXPECT_EQ(ev.priority(), Event::lowPriority);
    eq.run();
}

TEST(EventQueueDeathTest, DoubleSchedulePanics)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "dup");
    eq.schedule(&ev, 5);
    EXPECT_DEATH(eq.schedule(&ev, 6), "double-scheduled");
    eq.run();
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    EventFunctionWrapper past([] {}, "past");
    EventFunctionWrapper ev([&] { /* now at 10 */ }, "now");
    eq.schedule(&ev, 10);
    eq.run();
    EXPECT_DEATH(eq.schedule(&past, 5), "in the past");
}

TEST(EventQueueDeathTest, DestroyWhileScheduledPanics)
{
    EventQueue eq;
    EXPECT_DEATH(
        {
            EventFunctionWrapper ev([] {}, "leak");
            eq.schedule(&ev, 1);
            // ev destroyed while scheduled
        },
        "destroyed while scheduled");
}

TEST(EventQueueDeathTest, RescheduleIntoThePastPanics)
{
    EventQueue eq;
    EventFunctionWrapper warm([] {}, "warm");
    eq.schedule(&warm, 10);
    eq.run();
    EventFunctionWrapper ev([] {}, "late");
    eq.schedule(&ev, 20);
    EXPECT_DEATH(eq.reschedule(&ev, 5), "into the past");
    // The failed reschedule must not have descheduled the event.
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 20u);
    eq.run();
}

TEST(EventQueueDeathTest, DescheduleFromWrongQueuePanics)
{
    EventQueue a, b;
    EventFunctionWrapper ev([] {}, "confused");
    a.schedule(&ev, 10);
    EXPECT_DEATH(b.deschedule(&ev), "not on");
    a.deschedule(&ev);
}

TEST(EventQueueDeathTest, DescheduleIdleEventPanics)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "idle");
    EXPECT_DEATH(eq.deschedule(&ev), "not scheduled");
}

} // namespace
} // namespace dramless
