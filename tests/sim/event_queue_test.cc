/**
 * @file
 * Unit tests of the event-driven simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace
{

TEST(EventQueueTest, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextTick(), maxTick);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueTest, ProcessesEventAtScheduledTick)
{
    EventQueue eq;
    Tick seen = maxTick;
    EventFunctionWrapper ev([&] { seen = eq.curTick(); }, "probe");
    eq.schedule(&ev, 100);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 100u);
    eq.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_FALSE(ev.scheduled());
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueueTest, OrdersByTick)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");
    eq.schedule(&c, 30);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTickOrdersByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper low([&] { order.push_back(3); }, "low");
    EventFunctionWrapper first([&] { order.push_back(1); }, "first");
    EventFunctionWrapper second([&] { order.push_back(2); }, "second");
    eq.schedule(&low, 50, Event::lowPriority);
    eq.schedule(&first, 50);
    eq.schedule(&second, 50);
    eq.run();
    // Priority dominates; FIFO among equals.
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, DeschedulePreventsProcessing)
{
    EventQueue eq;
    bool ran = false;
    EventFunctionWrapper ev([&] { ran = true; }, "victim");
    eq.schedule(&ev, 10);
    eq.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue eq;
    Tick seen = 0;
    EventFunctionWrapper ev([&] { seen = eq.curTick(); }, "mover");
    eq.schedule(&ev, 10);
    eq.reschedule(&ev, 42);
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueueTest, RescheduleWorksOnIdleEvent)
{
    EventQueue eq;
    int runs = 0;
    EventFunctionWrapper ev([&] { ++runs; }, "idle");
    eq.reschedule(&ev, 5);
    eq.run();
    EXPECT_EQ(runs, 1);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int hops = 0;
    EventFunctionWrapper ev(
        [&] {
            if (++hops < 5) {
                eq.schedule(&ev, eq.curTick() + 7);
            }
        },
        "chain");
    eq.schedule(&ev, 0);
    eq.run();
    EXPECT_EQ(hops, 5);
    EXPECT_EQ(eq.curTick(), 28u);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int runs = 0;
    EventFunctionWrapper a([&] { ++runs; }, "a");
    EventFunctionWrapper b([&] { ++runs; }, "b");
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.runUntil(10);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(eq.curTick(), 10u);
    eq.runUntil(15);
    EXPECT_EQ(runs, 1);
    // Time advances to the boundary even with no events.
    EXPECT_EQ(eq.curTick(), 15u);
    eq.runUntil(20);
    EXPECT_EQ(runs, 2);
}

TEST(EventQueueTest, BoundedRunProcessesExactlyLimit)
{
    EventQueue eq;
    int runs = 0;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 10; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&] { ++runs; }, "e"));
        eq.schedule(events.back().get(), Tick(i));
    }
    EXPECT_EQ(eq.run(std::uint64_t(4)), 4u);
    EXPECT_EQ(runs, 4);
    EXPECT_EQ(eq.numPending(), 6u);
    // Drain the rest so no scheduled event is destroyed.
    eq.run();
}

TEST(EventQueueTest, NumProcessedCounts)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "x");
    eq.schedule(&ev, 1);
    eq.run();
    eq.schedule(&ev, 2);
    eq.run();
    EXPECT_EQ(eq.numProcessed(), 2u);
}

TEST(EventQueueDeathTest, DoubleSchedulePanics)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "dup");
    eq.schedule(&ev, 5);
    EXPECT_DEATH(eq.schedule(&ev, 6), "double-scheduled");
    eq.run();
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    EventFunctionWrapper past([] {}, "past");
    EventFunctionWrapper ev([&] { /* now at 10 */ }, "now");
    eq.schedule(&ev, 10);
    eq.run();
    EXPECT_DEATH(eq.schedule(&past, 5), "in the past");
}

TEST(EventQueueDeathTest, DestroyWhileScheduledPanics)
{
    EventQueue eq;
    EXPECT_DEATH(
        {
            EventFunctionWrapper ev([] {}, "leak");
            eq.schedule(&ev, 1);
            // ev destroyed while scheduled
        },
        "destroyed while scheduled");
}

} // namespace
} // namespace dramless
