/**
 * @file
 * Unit tests of the event-driven simulation kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/event_pool.hh"
#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace
{

TEST(EventQueueTest, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextTick(), maxTick);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueTest, ProcessesEventAtScheduledTick)
{
    EventQueue eq;
    Tick seen = maxTick;
    EventFunctionWrapper ev([&] { seen = eq.curTick(); }, "probe");
    eq.schedule(&ev, 100);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 100u);
    eq.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_FALSE(ev.scheduled());
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueueTest, OrdersByTick)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");
    eq.schedule(&c, 30);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTickOrdersByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper low([&] { order.push_back(3); }, "low");
    EventFunctionWrapper first([&] { order.push_back(1); }, "first");
    EventFunctionWrapper second([&] { order.push_back(2); }, "second");
    eq.schedule(&low, 50, Event::lowPriority);
    eq.schedule(&first, 50);
    eq.schedule(&second, 50);
    eq.run();
    // Priority dominates; FIFO among equals.
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, DeschedulePreventsProcessing)
{
    EventQueue eq;
    bool ran = false;
    EventFunctionWrapper ev([&] { ran = true; }, "victim");
    eq.schedule(&ev, 10);
    eq.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue eq;
    Tick seen = 0;
    EventFunctionWrapper ev([&] { seen = eq.curTick(); }, "mover");
    eq.schedule(&ev, 10);
    eq.reschedule(&ev, 42);
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueueTest, RescheduleWorksOnIdleEvent)
{
    EventQueue eq;
    int runs = 0;
    EventFunctionWrapper ev([&] { ++runs; }, "idle");
    eq.reschedule(&ev, 5);
    eq.run();
    EXPECT_EQ(runs, 1);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int hops = 0;
    EventFunctionWrapper ev(
        [&] {
            if (++hops < 5) {
                eq.schedule(&ev, eq.curTick() + 7);
            }
        },
        "chain");
    eq.schedule(&ev, 0);
    eq.run();
    EXPECT_EQ(hops, 5);
    EXPECT_EQ(eq.curTick(), 28u);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int runs = 0;
    EventFunctionWrapper a([&] { ++runs; }, "a");
    EventFunctionWrapper b([&] { ++runs; }, "b");
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.runUntil(10);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(eq.curTick(), 10u);
    eq.runUntil(15);
    EXPECT_EQ(runs, 1);
    // Time advances to the boundary even with no events.
    EXPECT_EQ(eq.curTick(), 15u);
    eq.runUntil(20);
    EXPECT_EQ(runs, 2);
}

TEST(EventQueueTest, BoundedRunProcessesExactlyLimit)
{
    EventQueue eq;
    int runs = 0;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 10; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&] { ++runs; }, "e"));
        eq.schedule(events.back().get(), Tick(i));
    }
    EXPECT_EQ(eq.run(std::uint64_t(4)), 4u);
    EXPECT_EQ(runs, 4);
    EXPECT_EQ(eq.numPending(), 6u);
    // Drain the rest so no scheduled event is destroyed.
    eq.run();
}

TEST(EventQueueTest, NumProcessedCounts)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "x");
    eq.schedule(&ev, 1);
    eq.run();
    eq.schedule(&ev, 2);
    eq.run();
    EXPECT_EQ(eq.numProcessed(), 2u);
}

TEST(EventQueueTest, RescheduleIdleEventToCurrentTick)
{
    EventQueue eq;
    // Advance time first so "current tick" is nonzero.
    EventFunctionWrapper warm([] {}, "warm");
    eq.schedule(&warm, 25);
    eq.run();
    ASSERT_EQ(eq.curTick(), 25u);

    int runs = 0;
    EventFunctionWrapper ev([&] { ++runs; }, "now");
    // Rescheduling a never-scheduled event to the current tick must
    // schedule it there, not panic or drop it.
    eq.reschedule(&ev, eq.curTick());
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 25u);
    eq.run();
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(eq.curTick(), 25u);
}

TEST(EventQueueTest, RescheduleToSameTickKeepsSingleOccurrence)
{
    EventQueue eq;
    int runs = 0;
    EventFunctionWrapper ev([&] { ++runs; }, "same");
    eq.schedule(&ev, 10);
    eq.reschedule(&ev, 10);
    eq.reschedule(&ev, 10);
    EXPECT_EQ(eq.numPending(), 1u);
    eq.run();
    EXPECT_EQ(runs, 1);
}

TEST(EventQueueTest, DescheduledEventCanMoveToAnotherQueue)
{
    EventQueue a, b;
    int runs = 0;
    EventFunctionWrapper ev([&] { ++runs; }, "migrant");
    a.schedule(&ev, 10);
    a.deschedule(&ev);
    b.schedule(&ev, 10);
    b.run();
    EXPECT_EQ(runs, 1);
    // The stale entry left in a must drain without touching ev.
    EXPECT_EQ(a.nextTick(), maxTick);
    EXPECT_TRUE(a.empty());
}

TEST(EventQueueTest, DescheduledEventMayBeDestroyedBeforeDrain)
{
    // A lazily-removed heap entry must never dereference its event:
    // the owner may destroy the event right after deschedule().
    EventQueue eq;
    auto ev = std::make_unique<EventFunctionWrapper>([] {}, "gone");
    EventFunctionWrapper keep([] {}, "keep");
    eq.schedule(ev.get(), 10);
    eq.schedule(&keep, 20);
    eq.deschedule(ev.get());
    ev.reset();
    eq.run();
    EXPECT_EQ(eq.curTick(), 20u);
}

TEST(EventQueueTest, PriorityAccessorReflectsSchedule)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "prio");
    eq.schedule(&ev, 5, Event::highPriority);
    EXPECT_EQ(ev.priority(), Event::highPriority);
    eq.reschedule(&ev, 6, Event::lowPriority);
    EXPECT_EQ(ev.priority(), Event::lowPriority);
    eq.run();
}

TEST(EventQueueTest, MidHeapDescheduleKeepsHeapConsistent)
{
    // Removing events from the middle of the heap (not the root, not
    // the tail) exercises removeAt's sift-both-ways repair; the
    // survivors must still pop in exact (tick, priority, seq) order.
    EventQueue eq;
    std::vector<int> fired;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 32; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&fired, i] { fired.push_back(i); }, "mid"));
        // Scatter ticks so the heap is well mixed.
        eq.schedule(events.back().get(), Tick((i * 37) % 61));
    }
    ASSERT_TRUE(eq.selfCheck());
    std::vector<int> expected;
    for (int i = 0; i < 32; ++i) {
        if (i % 3 == 1) {
            eq.deschedule(events[i].get());
            ASSERT_TRUE(eq.selfCheck());
        }
    }
    EXPECT_EQ(eq.numPending(), 32u - 11u);
    std::vector<std::pair<Tick, int>> keep;
    for (int i = 0; i < 32; ++i)
        if (i % 3 != 1)
            keep.emplace_back(Tick((i * 37) % 61), i);
    std::stable_sort(keep.begin(), keep.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    for (const auto &[_, id] : keep)
        expected.push_back(id);
    eq.run();
    EXPECT_EQ(fired, expected);
    EXPECT_TRUE(eq.selfCheck());
}

TEST(EventQueueTest, MemberEventInvokesBoundHandler)
{
    struct Widget
    {
        int pokes = 0;
        void poke() { ++pokes; }
        MemberEvent<Widget, &Widget::poke> pokeEvent{this, "w.poke"};
    };
    EventQueue eq;
    Widget w;
    EXPECT_EQ(w.pokeEvent.name(), "w.poke");
    eq.schedule(&w.pokeEvent, 10);
    eq.run();
    EXPECT_EQ(w.pokes, 1);
    // Persistent events are reusable after firing.
    eq.schedule(&w.pokeEvent, 20);
    eq.run();
    EXPECT_EQ(w.pokes, 2);
}

TEST(EventPoolTest, RecyclesSlotsAcrossBursts)
{
    EventQueue eq;
    EventPool pool(eq, "test.pool");
    int runs = 0;
    for (int burst = 0; burst < 4; ++burst) {
        for (int i = 0; i < 8; ++i)
            pool.schedule(eq.curTick() + Tick(i),
                          [&runs] { ++runs; });
        eq.run();
    }
    EXPECT_EQ(runs, 32);
    // Steady state: the first burst's slots serve every later burst.
    EXPECT_EQ(pool.capacity(), 8u);
    EXPECT_EQ(pool.idle(), 8u);
}

TEST(EventPoolTest, CallbackCanRescheduleIntoOwnPool)
{
    // A slot frees itself before invoking its callback, so a chain of
    // self-rescheduling transients needs only one slot.
    EventQueue eq;
    EventPool pool(eq, "test.chain");
    int hops = 0;
    std::function<void()> hop = [&] {
        if (++hops < 5)
            pool.schedule(eq.curTick() + 3, hop);
    };
    pool.schedule(0, hop);
    eq.run();
    EXPECT_EQ(hops, 5);
    EXPECT_EQ(pool.capacity(), 1u);
}

TEST(EventPoolTest, DestructorCancelsPendingEvents)
{
    EventQueue eq;
    bool ran = false;
    {
        EventPool pool(eq, "test.dtor");
        pool.schedule(10, [&ran] { ran = true; });
    }
    // The pool descheduled its pending slot on destruction.
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueueDeathTest, DoubleSchedulePanics)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "dup");
    eq.schedule(&ev, 5);
    EXPECT_DEATH(eq.schedule(&ev, 6), "double-scheduled");
    eq.run();
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    EventFunctionWrapper past([] {}, "past");
    EventFunctionWrapper ev([&] { /* now at 10 */ }, "now");
    eq.schedule(&ev, 10);
    eq.run();
    EXPECT_DEATH(eq.schedule(&past, 5), "in the past");
}

TEST(EventQueueDeathTest, DestroyWhileScheduledPanics)
{
    EventQueue eq;
    EXPECT_DEATH(
        {
            EventFunctionWrapper ev([] {}, "leak");
            eq.schedule(&ev, 1);
            // ev destroyed while scheduled
        },
        "destroyed while scheduled");
}

TEST(EventQueueDeathTest, RescheduleIntoThePastPanics)
{
    EventQueue eq;
    EventFunctionWrapper warm([] {}, "warm");
    eq.schedule(&warm, 10);
    eq.run();
    EventFunctionWrapper ev([] {}, "late");
    eq.schedule(&ev, 20);
    EXPECT_DEATH(eq.reschedule(&ev, 5), "into the past");
    // The failed reschedule must not have descheduled the event.
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 20u);
    eq.run();
}

TEST(EventQueueDeathTest, DescheduleFromWrongQueuePanics)
{
    EventQueue a, b;
    EventFunctionWrapper ev([] {}, "confused");
    a.schedule(&ev, 10);
    EXPECT_DEATH(b.deschedule(&ev), "not on");
    a.deschedule(&ev);
}

TEST(EventQueueDeathTest, DescheduleIdleEventPanics)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "idle");
    EXPECT_DEATH(eq.deschedule(&ev), "not scheduled");
}

} // namespace
} // namespace dramless
