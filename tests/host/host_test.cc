/**
 * @file
 * Unit tests of the host-side models: software stack costs and the
 * PCIe link.
 */

#include <gtest/gtest.h>

#include "host/pcie.hh"
#include "host/software_stack.hh"

namespace dramless
{
namespace host
{
namespace
{

TEST(StackTest, ReadPathScalesWithBytesAndRequests)
{
    SoftwareStack stack(StackConfig::conventional(), "s");
    Tick small = stack.readPathCost(4096);
    Tick big = stack.readPathCost(1 << 20);
    EXPECT_GT(big, small);
    // 1 MiB = 8 x 128 KiB I/O requests worth of syscall+block cost.
    StackConfig cfg = StackConfig::conventional();
    Tick expected_sw = 8 * (cfg.syscallOverhead +
                            cfg.blockLayerPerRequest);
    EXPECT_GE(big, expected_sw);
    EXPECT_EQ(stack.stackStats().ioRequests, 1u + 8u);
    EXPECT_EQ(stack.stackStats().bytesMoved, 4096u + (1u << 20));
}

TEST(StackTest, ReadPathIncludesDeserialization)
{
    SoftwareStack stack(StackConfig::conventional(), "s");
    // Deserialization applies to reads, not writes.
    Tick rd = stack.readPathCost(1 << 20);
    Tick wr = stack.writePathCost(1 << 20);
    EXPECT_GT(rd, wr);
    StackConfig cfg = StackConfig::conventional();
    Tick deser = Tick(double(1 << 20) /
                      cfg.deserializeBytesPerSec * 1e12);
    EXPECT_NEAR(double(rd - wr), double(deser), double(deser) * 0.01);
}

TEST(StackTest, PeerToPeerSkipsCopiesAndDeserialization)
{
    SoftwareStack conv(StackConfig::conventional(), "c");
    SoftwareStack p2p(StackConfig::peerToPeer(), "p");
    Tick tc = conv.readPathCost(1 << 20);
    Tick tp = p2p.readPathCost(1 << 20);
    // The p2p control plane is at least 5x cheaper per byte.
    EXPECT_LT(tp * 5, tc);
}

TEST(StackTest, CpuBusyAccumulates)
{
    SoftwareStack stack(StackConfig::conventional(), "s");
    Tick a = stack.readPathCost(65536);
    Tick b = stack.dmaSetupCost();
    Tick c = stack.writePathCost(65536);
    EXPECT_EQ(stack.stackStats().cpuBusyTicks, a + b + c);
}

TEST(PcieTest, TransferTimeIsLatencyPlusBandwidth)
{
    EventQueue eq;
    PcieConfig cfg;
    PcieLink link(eq, cfg, "pcie");
    Tick done = link.transfer(1 << 20);
    // Serialization rounds up to whole ticks (see serializationTicks)
    // instead of truncating through a double.
    Tick expect = cfg.perTransferLatency +
                  serializationTicks(1 << 20, cfg.bytesPerSec);
    EXPECT_EQ(done, expect);
    EXPECT_EQ(link.pcieStats().transfers, 1u);
    EXPECT_EQ(link.pcieStats().bytes, 1u << 20);
}

TEST(PcieTest, LinkIsASerialResource)
{
    EventQueue eq;
    PcieLink link(eq, PcieConfig{}, "pcie");
    Tick a = link.transfer(1 << 20);
    Tick b = link.transfer(1 << 20);
    EXPECT_GE(b, 2 * a - 1);
    EXPECT_EQ(link.busyUntil(), b);
}

TEST(PcieTest, EarliestParameterDefersTransfer)
{
    EventQueue eq;
    PcieLink link(eq, PcieConfig{}, "pcie");
    Tick done = link.transfer(4096, fromUs(100));
    EXPECT_GT(done, fromUs(100));
}

TEST(PcieDeathTest, EmptyTransferPanics)
{
    EventQueue eq;
    PcieLink link(eq, PcieConfig{}, "pcie");
    EXPECT_DEATH(link.transfer(0), "empty transfer");
}

} // namespace
} // namespace host
} // namespace dramless
