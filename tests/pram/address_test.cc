/**
 * @file
 * Unit and property tests of PRAM geometry and address decomposition.
 */

#include <gtest/gtest.h>

#include "pram/address.hh"
#include "pram/geometry.hh"
#include "pram/pram_module.hh"
#include "pram/timing.hh"
#include "sim/random.hh"

namespace dramless
{
namespace pram
{
namespace
{

TEST(GeometryTest, PaperDefaultCapacity)
{
    PramGeometry g = PramGeometry::paperDefault();
    EXPECT_TRUE(g.valid());
    // 64 tiles x 2048 BL x 4096 WL bits = 64 MiB per partition.
    EXPECT_EQ(g.partitionBytes(), 64ull << 20);
    // 16 partitions = 1 GiB per module.
    EXPECT_EQ(g.moduleBytes(), 1ull << 30);
    EXPECT_EQ(g.rowsPerPartition(), (64ull << 20) / 32);
}

TEST(GeometryTest, InvalidConfigurationsDetected)
{
    PramGeometry g;
    g.partitionsPerBank = 0;
    EXPECT_FALSE(g.valid());
    g = PramGeometry{};
    g.rowBufferBytes = 24; // not a power of two
    EXPECT_FALSE(g.valid());
}

TEST(TimingTest, PaperDefaultSanity)
{
    PramTiming t = PramTiming::paperDefault();
    EXPECT_TRUE(t.valid());
    EXPECT_EQ(t.tCK, fromNs(2.5));
    EXPECT_EQ(t.preActiveTime(), fromNs(7.5));      // 3 cycles
    EXPECT_EQ(t.readPreamble(), fromNs(15 + 4));    // RL=6 + tDQSCK
    EXPECT_EQ(t.writePreamble(), fromNs(7.5 + 1));  // WL=3 + tDQSS
    EXPECT_EQ(t.burstTime(BurstLength::BL16), fromNs(40));
    // Overwrite carries the extra 8 us RESET train (Section VI).
    EXPECT_EQ(t.cellOverwrite - t.cellProgram, fromUs(8));
}

TEST(TimingTest, PaperReadLatencyIsAboutHundredNs)
{
    // Section VI: read latency ~100 ns including three-phase
    // addressing (RL, tRCD, tRP and tBURST).
    PramTiming t;
    Tick total = t.preActiveTime() + t.tRCD + t.readPreamble() +
                 t.burstTime(BurstLength::BL16);
    EXPECT_GE(total, fromNs(100));
    EXPECT_LE(total, fromNs(160));
}

TEST(AddressTest, DecomposeComposeIdentityExhaustiveSmall)
{
    PramGeometry g;
    g.tilesPerPartition = 1;
    g.wordlinesPerTile = 64;
    g.bitlinesPerTile = 2048;
    g.partitionsPerBank = 4;
    g.lowerRowBits = 3;
    ASSERT_TRUE(g.valid());
    AddressDecomposer dec(g);
    for (std::uint64_t addr = 0; addr < g.moduleBytes(); ++addr) {
        DecomposedAddress d = dec.decompose(addr);
        EXPECT_LT(d.partition, g.partitionsPerBank);
        EXPECT_LT(d.column, g.rowBufferBytes);
        EXPECT_EQ(dec.compose(d.partition, d.row, d.column), addr);
        EXPECT_EQ(dec.mergeRow(d.upperRow, d.lowerRow), d.row);
    }
}

TEST(AddressTest, ConsecutiveWordsInterleavePartitions)
{
    PramGeometry g;
    AddressDecomposer dec(g);
    for (std::uint32_t w = 0; w < 64; ++w) {
        DecomposedAddress d =
            dec.decompose(std::uint64_t(w) * g.rowBufferBytes);
        EXPECT_EQ(d.partition, w % g.partitionsPerBank);
        EXPECT_EQ(d.row, w / g.partitionsPerBank);
    }
}

TEST(AddressTest, RandomRoundTripFullGeometry)
{
    PramGeometry g;
    AddressDecomposer dec(g);
    Random rng(123);
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t addr = rng.below(g.moduleBytes());
        DecomposedAddress d = dec.decompose(addr);
        EXPECT_EQ(dec.compose(d.partition, d.row, d.column), addr);
        EXPECT_EQ(dec.mergeRow(d.upperRow, d.lowerRow), d.row);
        EXPECT_EQ(d.lowerRow,
                  d.row & ((1ull << g.lowerRowBits) - 1));
    }
}

TEST(AddressDeathTest, OutOfRangePanics)
{
    PramGeometry g;
    AddressDecomposer dec(g);
    EXPECT_DEATH(dec.decompose(g.moduleBytes()), "beyond module");
}

TEST(BurstTest, BurstForBytesPicksSmallestCover)
{
    EXPECT_EQ(burstForBytes(1), BurstLength::BL4);
    EXPECT_EQ(burstForBytes(8), BurstLength::BL4);
    EXPECT_EQ(burstForBytes(9), BurstLength::BL8);
    EXPECT_EQ(burstForBytes(16), BurstLength::BL8);
    EXPECT_EQ(burstForBytes(17), BurstLength::BL16);
    EXPECT_EQ(burstForBytes(32), BurstLength::BL16);
}

TEST(BurstDeathTest, RejectsZeroAndOversize)
{
    EXPECT_DEATH(burstForBytes(0), "zero-length");
    EXPECT_DEATH(burstForBytes(33), "longer than one row buffer");
}

} // namespace
} // namespace pram
} // namespace dramless
