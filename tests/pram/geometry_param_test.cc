/**
 * @file
 * Parameterized property tests over PRAM geometries: address
 * decomposition bijectivity and module protocol invariants must
 * hold for every layout, not just the paper's.
 */

#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "pram/pram_module.hh"
#include "sim/random.hh"

namespace dramless
{
namespace pram
{
namespace
{

/** (partitions, tiles, wordlines, rowBuffers, lowerRowBits). */
using GeomParam =
    std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
               std::uint32_t, std::uint32_t>;

PramGeometry
geometryOf(const GeomParam &p)
{
    PramGeometry g;
    g.partitionsPerBank = std::get<0>(p);
    g.tilesPerPartition = std::get<1>(p);
    g.wordlinesPerTile = std::get<2>(p);
    g.numRowBuffers = std::get<3>(p);
    g.lowerRowBits = std::get<4>(p);
    return g;
}

class GeometryParamTest : public ::testing::TestWithParam<GeomParam>
{
};

TEST_P(GeometryParamTest, GeometryIsValid)
{
    EXPECT_TRUE(geometryOf(GetParam()).valid());
}

TEST_P(GeometryParamTest, DecomposeComposeBijective)
{
    PramGeometry g = geometryOf(GetParam());
    AddressDecomposer dec(g);
    Random rng(std::get<0>(GetParam()) * 31 +
               std::get<3>(GetParam()));
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t addr = rng.below(g.moduleBytes());
        DecomposedAddress d = dec.decompose(addr);
        EXPECT_LT(d.partition, g.partitionsPerBank);
        EXPECT_EQ(dec.compose(d.partition, d.row, d.column), addr);
        EXPECT_EQ(dec.mergeRow(d.upperRow, d.lowerRow), d.row);
    }
}

TEST_P(GeometryParamTest, ProtocolReadWorksOnEveryRowBuffer)
{
    PramGeometry g = geometryOf(GetParam());
    EventQueue eq;
    PramModule mod(eq, g, PramTiming::paperDefault(), "mod");
    for (std::uint32_t ba = 0; ba < g.numRowBuffers; ++ba) {
        std::uint64_t addr =
            std::uint64_t(ba) * g.rowBufferBytes * 7;
        std::array<std::uint8_t, 32> pattern;
        pattern.fill(std::uint8_t(ba + 1));
        mod.functionalWrite(addr, pattern.data(), 32);

        DecomposedAddress d = mod.decomposer().decompose(addr);
        eq.runUntil(mod.preActive(ba, d.upperRow, d.partition));
        eq.runUntil(mod.activate(ba, d.lowerRow));
        std::array<std::uint8_t, 32> out{};
        BurstTiming bt = mod.readBurst(ba, 0, 32, out.data());
        eq.runUntil(bt.lastData);
        EXPECT_EQ(out, pattern) << "row buffer " << ba;
    }
}

TEST_P(GeometryParamTest, ProgramRoundTripsOnEveryPartition)
{
    PramGeometry g = geometryOf(GetParam());
    EventQueue eq;
    PramModule mod(eq, g, PramTiming::paperDefault(), "mod");
    auto ow_write = [&](std::uint32_t off, const void *src,
                        std::uint32_t len) {
        std::uint64_t a = mod.overlayWindow().base() + off;
        DecomposedAddress d = mod.decomposer().decompose(a);
        eq.runUntil(mod.preActive(0, d.upperRow, d.partition));
        eq.runUntil(mod.activate(0, d.lowerRow));
        BurstTiming bt = mod.writeBurst(0, d.column, len, src);
        eq.runUntil(bt.lastData + mod.timing().tWRA);
    };
    for (std::uint32_t p = 0; p < g.partitionsPerBank; ++p) {
        std::uint64_t word = p; // word p lives in partition p
        std::array<std::uint8_t, 32> data;
        data.fill(std::uint8_t(0x30 + p));
        std::uint32_t code = ow::cmdBufferProgram;
        ow_write(ow::codeReg, &code, 4);
        std::uint32_t w32 = std::uint32_t(word);
        ow_write(ow::addressReg, &w32, 4);
        std::uint32_t n = 32;
        ow_write(ow::multiPurposeReg, &n, 4);
        ow_write(ow::programBufferBase, data.data(), 32);
        std::uint32_t go = 1;
        ow_write(ow::executeReg, &go, 4);
        eq.runUntil(mod.programBusyUntil());

        std::array<std::uint8_t, 32> out{};
        mod.functionalRead(word * 32, out.data(), 32);
        EXPECT_EQ(out, data) << "partition " << p;
        EXPECT_EQ(mod.partitionProgramCount(p), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, GeometryParamTest,
    ::testing::Values(
        GeomParam{16, 64, 4096, 4, 8},  // the paper's sample
        GeomParam{4, 16, 1024, 2, 4},   // small dev board
        GeomParam{8, 32, 2048, 4, 10},  // mid-density
        GeomParam{32, 64, 4096, 8, 6},  // future high-parallelism
        GeomParam{16, 8, 512, 1, 3}),   // single row buffer
    [](const ::testing::TestParamInfo<GeomParam> &info) {
        return "p" + std::to_string(std::get<0>(info.param)) + "_t" +
               std::to_string(std::get<1>(info.param)) + "_rb" +
               std::to_string(std::get<3>(info.param));
    });

} // namespace
} // namespace pram
} // namespace dramless
