/**
 * @file
 * Unit tests of the PRAM module state machine: three-phase protocol
 * timing, overlay-window programs, selective-erase classification and
 * partition busy accounting.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "pram/overlay_window.hh"
#include "pram/pram_module.hh"
#include "sim/event_queue.hh"

namespace dramless
{
namespace pram
{
namespace
{

/** Harness owning a queue and a single module. */
class PramModuleTest : public ::testing::Test
{
  protected:
    PramModuleTest()
        : mod(eq, PramGeometry::paperDefault(),
              PramTiming::paperDefault(), "mod0")
    {}

    /** Advance simulated time to @p t. */
    void
    at(Tick t)
    {
        eq.runUntil(t);
    }

    /** Run a full three-phase read of module byte address @p addr. */
    std::array<std::uint8_t, 32>
    fullRead(std::uint32_t ba, std::uint64_t addr)
    {
        DecomposedAddress d = mod.decomposer().decompose(addr);
        Tick rab = mod.preActive(ba, d.upperRow, d.partition);
        at(rab);
        Tick rdb = mod.activate(ba, d.lowerRow);
        at(rdb);
        std::array<std::uint8_t, 32> out{};
        BurstTiming bt = mod.readBurst(ba, 0, 32, out.data());
        at(bt.lastData);
        return out;
    }

    /**
     * Run the full overlay-window program sequence for one 32-byte
     * word at @p word index, mimicking the controller's translator.
     * @return the tick the program completes.
     */
    Tick
    programWord(std::uint64_t word, const std::uint8_t *data)
    {
        const std::uint64_t base = mod.overlayWindow().base();
        auto ow_write = [&](std::uint32_t off, const void *src,
                            std::uint32_t len) {
            std::uint64_t addr = base + off;
            DecomposedAddress d = mod.decomposer().decompose(addr);
            at(mod.preActive(0, d.upperRow, d.partition));
            at(mod.activate(0, d.lowerRow));
            BurstTiming bt = mod.writeBurst(0, d.column, len, src);
            // Register effects land after tWRA.
            at(bt.lastData + mod.timing().tWRA);
        };
        std::uint32_t code = ow::cmdBufferProgram;
        ow_write(ow::codeReg, &code, 4);
        std::uint32_t w32 = std::uint32_t(word);
        ow_write(ow::addressReg, &w32, 4);
        std::uint32_t n = 32;
        ow_write(ow::multiPurposeReg, &n, 4);
        ow_write(ow::programBufferBase, data, 32);
        std::uint32_t go = 1;
        ow_write(ow::executeReg, &go, 4);
        return mod.programBusyUntil();
    }

    EventQueue eq;
    PramModule mod;
};

TEST_F(PramModuleTest, PreActiveTakesTrpAndLatchesRab)
{
    Tick done = mod.preActive(1, 0x1234, 5);
    EXPECT_EQ(done, fromNs(7.5)); // 3 cycles at 2.5 ns
    EXPECT_TRUE(mod.rabValid(1));
    EXPECT_EQ(mod.rabUpperRow(1), 0x1234u);
    EXPECT_EQ(mod.rabPartition(1), 5u);
    EXPECT_FALSE(mod.rabValid(0));
}

TEST_F(PramModuleTest, ActivateSensesRowAfterTrcd)
{
    DecomposedAddress d = mod.decomposer().decompose(0);
    Tick rab = mod.preActive(0, d.upperRow, d.partition);
    at(rab);
    Tick rdb = mod.activate(0, d.lowerRow);
    EXPECT_EQ(rdb - rab, mod.timing().tRCD);
    EXPECT_TRUE(mod.rdbValid(0));
    EXPECT_EQ(mod.rdbRow(0), d.row);
    EXPECT_EQ(mod.rdbPartition(0), d.partition);
    EXPECT_FALSE(mod.rdbIsOverlay(0));
    // The partition is busy for the duration of the sense.
    EXPECT_EQ(mod.partitionBusyUntil(d.partition), rdb);
}

TEST_F(PramModuleTest, ReadBurstTimingMatchesTableTwo)
{
    DecomposedAddress d = mod.decomposer().decompose(0);
    at(mod.preActive(0, d.upperRow, d.partition));
    at(mod.activate(0, d.lowerRow));
    Tick start = eq.curTick();
    BurstTiming bt = mod.readBurst(0, 0, 32);
    // RL (6 cyc) + tDQSCK then a BL16 burst.
    EXPECT_EQ(bt.firstData - start, fromNs(15 + 4));
    EXPECT_EQ(bt.lastData - bt.firstData, fromNs(40));
}

TEST_F(PramModuleTest, FunctionalReadBackThroughProtocol)
{
    std::array<std::uint8_t, 32> pattern;
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = std::uint8_t(i + 1);
    mod.functionalWrite(7 * 32, pattern.data(), 32);
    auto out = fullRead(2, 7 * 32);
    EXPECT_EQ(std::memcmp(out.data(), pattern.data(), 32), 0);
}

TEST_F(PramModuleTest, OverlayActivateDoesNotTouchPartitions)
{
    std::uint64_t base = mod.overlayWindow().base();
    DecomposedAddress d = mod.decomposer().decompose(base);
    at(mod.preActive(0, d.upperRow, d.partition));
    Tick before = mod.partitionBusyUntil(d.partition);
    at(mod.activate(0, d.lowerRow));
    EXPECT_TRUE(mod.rdbIsOverlay(0));
    EXPECT_EQ(mod.partitionBusyUntil(d.partition), before);
    EXPECT_EQ(mod.moduleStats().numOverlayActivate, 1u);
}

TEST_F(PramModuleTest, ProgramPristineVersusOverwriteLatency)
{
    std::array<std::uint8_t, 32> data;
    data.fill(0x5A);

    // First program of an untouched (programmed-by-default) word: the
    // module treats unknown cells as programmed, so it is an
    // overwrite (RESET+SET, 18 us).
    Tick t0 = eq.curTick();
    Tick done = programWord(100, data.data());
    EXPECT_GE(done - t0, mod.timing().cellOverwrite);
    at(done);

    EXPECT_EQ(mod.moduleStats().numOverwrites, 1u);
    EXPECT_EQ(mod.moduleStats().numPrograms, 1u);

    // Functional content landed in the array.
    std::array<std::uint8_t, 32> out{};
    mod.functionalRead(100 * 32, out.data(), 32);
    EXPECT_EQ(std::memcmp(out.data(), data.data(), 32), 0);
}

TEST_F(PramModuleTest, AllZeroProgramIsResetOnlyAndMarksPristine)
{
    std::array<std::uint8_t, 32> zeros{};
    Tick before = eq.curTick();
    Tick done = programWord(200, zeros.data());
    at(done);
    // RESET-only pulse train: strictly shorter than a pristine SET
    // program and far shorter than an overwrite.
    EXPECT_LT(done - before,
              mod.timing().cellProgram + fromUs(2));
    EXPECT_TRUE(mod.wordIsPristine(200));
    EXPECT_EQ(mod.moduleStats().numResetOnlyPrograms, 1u);

    // A subsequent data program of the pristine word is SET-only.
    std::array<std::uint8_t, 32> data;
    data.fill(0x77);
    Tick t1 = eq.curTick();
    Tick done2 = programWord(200, data.data());
    at(done2);
    // The program itself takes cellProgram, not cellOverwrite; allow
    // the protocol overhead of the five register writes.
    EXPECT_LT(done2 - t1, mod.timing().cellProgram + fromUs(2));
    EXPECT_EQ(mod.moduleStats().numPristinePrograms, 1u);
    EXPECT_FALSE(mod.wordIsPristine(200));
}

TEST_F(PramModuleTest, SelectiveErasingSavingMatchesPaper)
{
    // Section V-A: selective erasing reduces overwrite latency by
    // roughly half (44-55%); with Table II numbers, 18 us -> 10 us.
    PramTiming t = mod.timing();
    double saving =
        1.0 - double(t.cellProgram) / double(t.cellOverwrite);
    EXPECT_NEAR(saving, 0.44, 0.02);
}

TEST_F(PramModuleTest, ClassifyProgramMatrix)
{
    EXPECT_EQ(mod.classifyProgram(5, true), ProgramKind::resetOnly);
    EXPECT_EQ(mod.classifyProgram(5, false), ProgramKind::overwrite);
    std::array<std::uint8_t, 32> zeros{};
    at(programWord(5, zeros.data()));
    EXPECT_EQ(mod.classifyProgram(5, false),
              ProgramKind::pristineProgram);
}

TEST_F(PramModuleTest, ProgramOccupiesOnlyTargetPartition)
{
    std::array<std::uint8_t, 32> data;
    data.fill(1);
    DecomposedAddress d = mod.decomposer().decompose(0);
    Tick done = programWord(0, data.data());
    EXPECT_GT(mod.partitionBusyUntil(d.partition), eq.curTick());
    // Word 1 sits in partition 1: free during word 0's program.
    EXPECT_LE(mod.partitionBusyUntil(1), eq.curTick());
    at(done);
}

TEST_F(PramModuleTest, StatusRegisterReflectsProgramProgress)
{
    std::array<std::uint8_t, 32> data;
    data.fill(3);
    Tick done = programWord(42, data.data());
    // Re-read the status register through the protocol while busy.
    std::uint64_t base = mod.overlayWindow().base();
    DecomposedAddress d =
        mod.decomposer().decompose(base + ow::statusReg);
    at(mod.preActive(1, d.upperRow, d.partition));
    at(mod.activate(1, d.lowerRow));
    std::uint32_t status = 0xFFFF;
    BurstTiming bt = mod.readBurst(1, d.column, 4, &status);
    EXPECT_EQ(status, ow::statusBusy);
    at(std::max(bt.lastData, done));
    status = 0xFFFF;
    mod.readBurst(1, d.column, 4, &status);
    EXPECT_EQ(status, ow::statusReady);
}

TEST_F(PramModuleTest, EraseMarksPartitionPristineAndTakes60ms)
{
    // Program a word in partition 3 first.
    std::array<std::uint8_t, 32> data;
    data.fill(9);
    at(programWord(3, data.data())); // word 3 -> partition 3
    EXPECT_FALSE(mod.wordIsPristine(3));

    // Erase partition 3 through the overlay window.
    std::uint64_t base = mod.overlayWindow().base();
    auto ow_write = [&](std::uint32_t off, std::uint32_t v) {
        DecomposedAddress d = mod.decomposer().decompose(base + off);
        at(mod.preActive(0, d.upperRow, d.partition));
        at(mod.activate(0, d.lowerRow));
        BurstTiming bt = mod.writeBurst(0, d.column, 4, &v);
        at(bt.lastData + mod.timing().tWRA);
    };
    ow_write(ow::codeReg, ow::cmdPartitionErase);
    ow_write(ow::addressReg, 3);
    Tick start = eq.curTick();
    ow_write(ow::executeReg, 1);
    Tick done = mod.programBusyUntil();
    EXPECT_GE(done - start, mod.timing().eraseLatency);
    at(done);
    EXPECT_TRUE(mod.wordIsPristine(3));
    // Words 3+16, 3+32... share partition 3 and are pristine too.
    EXPECT_TRUE(mod.wordIsPristine(3 + 16));
    EXPECT_EQ(mod.moduleStats().numErases, 1u);
}

TEST_F(PramModuleTest, EraseLatencyIsThousandsOfOverwrites)
{
    // Section V-A: erase ~60 ms is ~3000x an overwrite.
    PramTiming t = mod.timing();
    double ratio = double(t.eraseLatency) / double(t.cellOverwrite);
    EXPECT_GT(ratio, 3000.0);
    EXPECT_LT(ratio, 3500.0);
}

TEST_F(PramModuleTest, DeathOnProtocolViolations)
{
    DecomposedAddress d = mod.decomposer().decompose(0);
    // Activate without a valid RAB.
    EXPECT_DEATH(mod.activate(0, d.lowerRow), "invalid RAB");
    // Activate before the pre-active completes.
    mod.preActive(0, d.upperRow, d.partition);
    EXPECT_DEATH(mod.activate(0, d.lowerRow), "before pre-active");
    at(fromNs(7.5));
    at(mod.activate(0, d.lowerRow));
    // Direct array writes are illegal.
    std::uint32_t v = 1;
    EXPECT_DEATH(mod.writeBurst(0, 0, 4, &v), "illegal");
    // Reads beyond the row buffer.
    EXPECT_DEATH(mod.readBurst(0, 16, 32), "beyond row buffer");
}

TEST_F(PramModuleTest, WearCountersTrackPrograms)
{
    std::array<std::uint8_t, 32> data;
    data.fill(1);
    at(programWord(0, data.data()));
    at(programWord(16, data.data())); // same partition (0)
    at(programWord(1, data.data()));  // partition 1
    EXPECT_EQ(mod.partitionProgramCount(0), 2u);
    EXPECT_EQ(mod.partitionProgramCount(1), 1u);
    EXPECT_EQ(mod.partitionProgramCount(2), 0u);
}

TEST_F(PramModuleTest, ProgramInvalidatesStaleRowBuffers)
{
    // Sense a row into an RDB, program new data to that row, then
    // verify the RDB no longer claims to hold it: a phase-skipping
    // controller must not read the stale sensed copy.
    std::array<std::uint8_t, 32> before;
    before.fill(0x11);
    mod.functionalWrite(5 * 32, before.data(), 32); // word 5
    auto out = fullRead(1, 5 * 32);
    EXPECT_EQ(out[0], 0x11);
    EXPECT_TRUE(mod.rdbValid(1));

    std::array<std::uint8_t, 32> after;
    after.fill(0x22);
    at(programWord(5, after.data()));
    EXPECT_FALSE(mod.rdbValid(1)) << "stale RDB survived a program";

    auto out2 = fullRead(2, 5 * 32);
    EXPECT_EQ(out2[0], 0x22);
}

TEST_F(PramModuleTest, EraseInvalidatesPartitionRowBuffers)
{
    mod.functionalWrite(3 * 32, "x", 1);
    fullRead(1, 3 * 32); // word 3 -> partition 3 in an RDB
    ASSERT_TRUE(mod.rdbValid(1));
    // Erase partition 3 through the overlay window.
    std::uint64_t base = mod.overlayWindow().base();
    auto ow_write = [&](std::uint32_t off, std::uint32_t v) {
        DecomposedAddress d = mod.decomposer().decompose(base + off);
        at(mod.preActive(0, d.upperRow, d.partition));
        at(mod.activate(0, d.lowerRow));
        BurstTiming bt = mod.writeBurst(0, d.column, 4, &v);
        at(bt.lastData + mod.timing().tWRA);
    };
    ow_write(ow::codeReg, ow::cmdPartitionErase);
    ow_write(ow::addressReg, 3);
    ow_write(ow::executeReg, 1);
    EXPECT_FALSE(mod.rdbValid(1));
    at(mod.programBusyUntil());
}

TEST(OverlayWindowTest, RegisterFileReadWrite)
{
    OverlayWindow w;
    w.writeReg(ow::codeReg, ow::cmdBufferProgram);
    w.writeReg(ow::addressReg, 0xABCD);
    w.writeReg(ow::multiPurposeReg, 32);
    EXPECT_EQ(w.readReg(ow::codeReg), ow::cmdBufferProgram);
    EXPECT_EQ(w.readReg(ow::addressReg), 0xABCDu);
    EXPECT_EQ(w.readReg(ow::multiPurposeReg), 32u);
    EXPECT_EQ(w.readReg(ow::statusReg), ow::statusReady);
}

TEST(OverlayWindowTest, ProgramBufferRoundTrip)
{
    OverlayWindow w(256);
    std::array<std::uint8_t, 64> data;
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i);
    w.writeProgramBuffer(32, data.data(), data.size());
    std::array<std::uint8_t, 64> out{};
    w.readProgramBuffer(32, out.data(), out.size());
    EXPECT_EQ(data, out);
}

TEST(OverlayWindowTest, ContainsRespectsBase)
{
    OverlayWindow w(256);
    w.setBase(0x10000);
    EXPECT_FALSE(w.contains(0xFFFF));
    EXPECT_TRUE(w.contains(0x10000));
    EXPECT_TRUE(w.contains(0x10000 + w.windowBytes() - 1));
    EXPECT_FALSE(w.contains(0x10000 + w.windowBytes()));
}

TEST(OverlayWindowDeathTest, GuardsInvalidAccess)
{
    OverlayWindow w(256);
    EXPECT_DEATH(w.writeReg(ow::statusReg, 1), "read-only");
    EXPECT_DEATH(w.writeReg(0x55, 1), "unknown overlay register");
    std::uint8_t b = 0;
    EXPECT_DEATH(w.writeProgramBuffer(250, &b, 16), "overflow");
}

} // namespace
} // namespace pram
} // namespace dramless
