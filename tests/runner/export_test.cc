/**
 * @file
 * Tests of the structured export layer: the JSON writer (escaping,
 * round-trip number formatting, non-finite handling, stats
 * serialization) and the ResultSink CSV/JSON renderers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>

#include "runner/result_sink.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

namespace dramless
{
namespace
{

// ---------------------------------------------------------------
// json::escape
// ---------------------------------------------------------------

TEST(JsonEscapeTest, PlainStringsPassThrough)
{
    EXPECT_EQ(json::escape("gemver"), "gemver");
    EXPECT_EQ(json::escape("DRAM-less (firmware)"),
              "DRAM-less (firmware)");
}

TEST(JsonEscapeTest, QuotesAndBackslashes)
{
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
}

TEST(JsonEscapeTest, ControlCharacters)
{
    EXPECT_EQ(json::escape("a\nb"), "a\\nb");
    EXPECT_EQ(json::escape("a\tb"), "a\\tb");
    EXPECT_EQ(json::escape("a\rb"), "a\\rb");
    EXPECT_EQ(json::escape(std::string("a") + '\x01' + "b"),
              "a\\u0001b");
    EXPECT_EQ(json::escape(std::string(1, '\0')), "\\u0000");
}

TEST(JsonEscapeTest, Utf8BytesAreLeftAlone)
{
    // Multi-byte UTF-8 sequences are valid inside JSON strings.
    EXPECT_EQ(json::escape("µs latency"), "µs latency");
}

// ---------------------------------------------------------------
// json::number
// ---------------------------------------------------------------

TEST(JsonNumberTest, NonFiniteBecomesNull)
{
    EXPECT_EQ(json::number(std::nan("")), "null");
    EXPECT_EQ(json::number(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(json::number(-std::numeric_limits<double>::infinity()),
              "null");
}

TEST(JsonNumberTest, RoundTripsExactly)
{
    const double values[] = {
        0.0,       1.0,         -1.5,          0.1,
        1.0 / 3.0, 1e-300,      1.7976931e308, 123456789.123456789,
        2.5e-10,   3.14159265358979311599796346854,
    };
    for (double v : values) {
        std::string tok = json::number(v);
        char *end = nullptr;
        double back = std::strtod(tok.c_str(), &end);
        EXPECT_EQ(*end, '\0') << tok;
        EXPECT_EQ(back, v) << tok;
    }
}

TEST(JsonNumberTest, PrefersShortRepresentation)
{
    // %.15g suffices for these; no 17-digit noise.
    EXPECT_EQ(json::number(0.1), "0.1");
    EXPECT_EQ(json::number(2.0), "2");
    EXPECT_EQ(json::number(-42.5), "-42.5");
}

// ---------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------

TEST(JsonWriterTest, CompactDocument)
{
    std::ostringstream os;
    json::JsonWriter w(os, /*pretty=*/false);
    w.beginObject()
        .keyValue("name", "sweep")
        .key("counts")
        .beginArray()
        .value(1)
        .value(2)
        .value(3)
        .endArray()
        .keyValue("ok", true)
        .key("missing")
        .null()
        .endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(os.str(), "{\"name\":\"sweep\",\"counts\":[1,2,3],"
                        "\"ok\":true,\"missing\":null}");
}

TEST(JsonWriterTest, NonFiniteValueSerializesAsNull)
{
    std::ostringstream os;
    json::JsonWriter w(os, false);
    w.beginArray()
        .value(std::nan(""))
        .value(std::numeric_limits<double>::infinity())
        .endArray();
    EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriterTest, LargeIntegersKeepFullPrecision)
{
    // uint64 values beyond 2^53 must not go through a double.
    std::ostringstream os;
    json::JsonWriter w(os, false);
    w.beginArray()
        .value(std::uint64_t(18446744073709551615ull))
        .value(std::int64_t(-9007199254740993ll))
        .endArray();
    EXPECT_EQ(os.str(), "[18446744073709551615,-9007199254740993]");
}

TEST(JsonWriterDeathTest, MismatchedEndPanics)
{
    setQuiet(true);
    EXPECT_DEATH(
        {
            std::ostringstream os;
            json::JsonWriter w(os, false);
            w.beginObject().endArray();
        },
        "endArray");
}

// ---------------------------------------------------------------
// stats serialization
// ---------------------------------------------------------------

/** Parse-check helper: the fragment must be valid standalone JSON. */
std::string
writeFragment(const std::function<void(json::JsonWriter &)> &fn)
{
    std::ostringstream os;
    json::JsonWriter w(os, false);
    fn(w);
    EXPECT_TRUE(w.complete());
    return os.str();
}

TEST(StatsJsonTest, HistogramSerializesBuckets)
{
    stats::Histogram h("lat", 0.0, 4.0, 4);
    h.sample(0.5);      // bucket 0
    h.sample(1.5);      // bucket 1
    h.sample(1.6);      // bucket 1
    h.sample(-1.0);     // underflow
    h.sample(9.0, 2);   // overflow, weight 2
    std::string doc =
        writeFragment([&](json::JsonWriter &w) { json::write(w, h); });
    EXPECT_NE(doc.find("\"name\":\"lat\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"underflow\":1"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"overflow\":2"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"total\":6"), std::string::npos) << doc;
    EXPECT_NE(doc.find("{\"lo\":0,\"hi\":1,\"count\":1}"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("{\"lo\":1,\"hi\":2,\"count\":2}"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"nan\":0"), std::string::npos) << doc;
}

// NaN samples surface in the export next to underflow/overflow
// instead of silently landing in (or corrupting) the last bucket.
TEST(StatsJsonTest, HistogramSerializesNanCount)
{
    stats::Histogram h("lat", 0.0, 4.0, 4);
    h.sample(std::numeric_limits<double>::quiet_NaN(), 3);
    h.sample(1.0);
    std::string doc =
        writeFragment([&](json::JsonWriter &w) { json::write(w, h); });
    EXPECT_NE(doc.find("\"nan\":3"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"total\":1"), std::string::npos) << doc;
}

TEST(StatsJsonTest, TimeSeriesSerializesSamples)
{
    stats::TimeSeries ts("ipc");
    ts.record(0, 1.0);
    ts.record(fromUs(1), 2.0);
    ts.record(fromUs(2), 3.0);
    std::string doc = writeFragment(
        [&](json::JsonWriter &w) { json::write(w, ts); });
    EXPECT_NE(doc.find("\"name\":\"ipc\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"num_samples\":3"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"mean\":2"), std::string::npos) << doc;
    EXPECT_NE(doc.find("[0,1]"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"downsampled\":false"), std::string::npos)
        << doc;
}

TEST(StatsJsonTest, TimeSeriesDownsamplesWhenCapped)
{
    stats::TimeSeries ts("power");
    for (int i = 0; i < 100; ++i)
        ts.record(Tick(i) * 1000, double(i));
    std::string doc = writeFragment(
        [&](json::JsonWriter &w) { json::write(w, ts, 10); });
    EXPECT_NE(doc.find("\"downsampled\":true"), std::string::npos)
        << doc;
    // Full-series summary stays intact even when samples are capped.
    EXPECT_NE(doc.find("\"num_samples\":100"), std::string::npos)
        << doc;
    // At most 10 sample pairs emitted.
    std::size_t pairs = 0;
    for (std::size_t p = doc.find("["); p != std::string::npos;
         p = doc.find("[", p + 1))
        ++pairs;
    EXPECT_LE(pairs, 1 + 10u) << doc; // samples array + pairs
}

// ---------------------------------------------------------------
// CSV
// ---------------------------------------------------------------

TEST(CsvFieldTest, QuotingRules)
{
    EXPECT_EQ(json::csvField("plain"), "plain");
    EXPECT_EQ(json::csvField("has,comma"), "\"has,comma\"");
    EXPECT_EQ(json::csvField("has\"quote"), "\"has\"\"quote\"");
    EXPECT_EQ(json::csvField("two\nlines"), "\"two\nlines\"");
    EXPECT_EQ(json::csvField(""), "");
}

systems::RunResult
sampleRun(const std::string &system, const std::string &workload)
{
    systems::RunResult r;
    r.system = system;
    r.workload = workload;
    r.execTime = fromUs(120);
    r.hostStackTime = fromUs(30);
    r.transferTime = fromUs(20);
    r.storageStallTime = fromUs(40);
    r.computeTime = fromUs(30);
    r.bandwidthMBps = 812.5;
    r.totalInstructions = 123456;
    r.bytesProcessed = 1 << 20;
    r.energy.accelCores = 0.25;
    r.energy.storageMedia = 0.125;
    r.ipc.record(0, 1.5);
    r.ipc.record(fromUs(60), 2.5);
    r.reliability.verifyRetries = 7;
    r.reliability.badLineRemaps = 2;
    return r;
}

TEST(ResultSinkTest, CsvHasHeaderAndOneRowPerRun)
{
    runner::ResultSink sink("unit", "exporter test");
    sink.add(sampleRun("DRAM-less", "gemver"));
    sink.add(sampleRun("Hetero, direct", "doitg"));

    std::ostringstream os;
    sink.writeCsv(os);
    std::istringstream in(os.str());
    std::string header, row1, row2, extra;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row1));
    ASSERT_TRUE(std::getline(in, row2));
    EXPECT_FALSE(std::getline(in, extra)) << extra;

    EXPECT_EQ(header.substr(0, 15), "system,workload");
    // Same column count everywhere (commas inside quotes don't count
    // here: the quoted label is the only comma-bearing field).
    auto columns = [](const std::string &line) {
        std::size_t n = 1;
        bool quoted = false;
        for (char c : line) {
            if (c == '"')
                quoted = !quoted;
            else if (c == ',' && !quoted)
                ++n;
        }
        return n;
    };
    EXPECT_EQ(columns(row1), columns(header));
    EXPECT_EQ(columns(row2), columns(header));
    EXPECT_NE(header.find("verify_retries"), std::string::npos);
    EXPECT_NE(header.find("writes_before_first_remap"),
              std::string::npos);
    EXPECT_EQ(row1.substr(0, 10), "DRAM-less,");
    EXPECT_EQ(row2.substr(0, 16), "\"Hetero, direct\"");
}

TEST(ResultSinkTest, JsonDocumentShape)
{
    runner::ResultSink sink("unit", "exporter \"quoted\" test");
    sink.add(sampleRun("DRAM-less", "gemver"));
    sink.metric("gm_speedup", 1.75);
    sink.metric("bad_ratio", std::nan(""));
    sink.label("workload_scale", "0.02");

    std::ostringstream os;
    sink.writeJson(os);
    const std::string doc = os.str();

    EXPECT_NE(doc.find("\"experiment\": \"unit\""), std::string::npos)
        << doc;
    EXPECT_NE(doc.find("exporter \\\"quoted\\\" test"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"gm_speedup\": 1.75"), std::string::npos)
        << doc;
    // NaN metric must surface as null, not break the document.
    EXPECT_NE(doc.find("\"bad_ratio\": null"), std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"workload_scale\": \"0.02\""),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"system\": \"DRAM-less\""),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"bandwidth_mbps\": 812.5"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"reliability\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"verify_retries\": 7"), std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"bad_line_remaps\": 2"), std::string::npos)
        << doc;

    // Balanced braces/brackets outside strings -> structurally sound.
    int depth = 0;
    bool instr = false, esc = false;
    for (char c : doc) {
        if (esc) { esc = false; continue; }
        if (instr) {
            if (c == '\\')
                esc = true;
            else if (c == '"')
                instr = false;
            continue;
        }
        if (c == '"')
            instr = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(instr);
}

TEST(ResultSinkTest, MatrixRegroupsRunsByLabels)
{
    runner::ResultSink sink("unit");
    sink.add(sampleRun("A", "w1"));
    sink.add(sampleRun("A", "w2"));
    sink.add(sampleRun("B", "w1"));
    auto m = sink.matrix();
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m.at("A").size(), 2u);
    EXPECT_EQ(m.at("B").size(), 1u);
    EXPECT_EQ(m.at("A").at("w2").workload, "w2");
}

TEST(ResultSinkTest, ExportFromEnvWritesRequestedFiles)
{
    runner::ResultSink sink("unit", "env export test");
    sink.add(sampleRun("DRAM-less", "gemver"));

    std::string jsonPath = std::string(::testing::TempDir()) +
                           "/dramless_export_test.json";
    std::string csvPath = std::string(::testing::TempDir()) +
                          "/dramless_export_test.csv";
    ASSERT_EQ(setenv("DRAMLESS_OUT_JSON", jsonPath.c_str(), 1), 0);
    ASSERT_EQ(setenv("DRAMLESS_OUT_CSV", csvPath.c_str(), 1), 0);
    sink.exportFromEnv();
    ASSERT_EQ(unsetenv("DRAMLESS_OUT_JSON"), 0);
    ASSERT_EQ(unsetenv("DRAMLESS_OUT_CSV"), 0);

    std::ifstream js(jsonPath), cs(csvPath);
    ASSERT_TRUE(js.good());
    ASSERT_TRUE(cs.good());
    std::stringstream jbuf, cbuf;
    jbuf << js.rdbuf();
    cbuf << cs.rdbuf();
    EXPECT_NE(jbuf.str().find("\"experiment\": \"unit\""),
              std::string::npos);
    EXPECT_NE(cbuf.str().find("system,workload"), std::string::npos);
    std::remove(jsonPath.c_str());
    std::remove(csvPath.c_str());
}

// Regression: export failures must be fatal and name the offending
// path; a sweep that silently drops its results is worse than one
// that dies loudly.
TEST(ResultSinkDeathTest, FatalOnUnopenablePath)
{
    setQuiet(true);
    runner::ResultSink sink("unit");
    sink.add(sampleRun("A", "w"));
    EXPECT_DEATH(
        {
            setenv("DRAMLESS_OUT_JSON",
                   "/nonexistent_dramless_dir/out.json", 1);
            sink.exportFromEnv();
        },
        "cannot open JSON output file "
        "'/nonexistent_dramless_dir/out.json'");
}

TEST(ResultSinkDeathTest, FatalWhenDeviceRejectsWrite)
{
    // /dev/full accepts the open but fails on flush; the error used
    // to be swallowed by the ofstream destructor.
    {
        std::ofstream probe("/dev/full");
        if (!probe.is_open())
            GTEST_SKIP() << "/dev/full unavailable";
    }
    setQuiet(true);
    runner::ResultSink sink("unit");
    sink.add(sampleRun("A", "w"));
    EXPECT_DEATH(
        {
            setenv("DRAMLESS_OUT_CSV", "/dev/full", 1);
            sink.exportFromEnv();
        },
        "error writing CSV output file '/dev/full'");
}

} // namespace
} // namespace dramless
