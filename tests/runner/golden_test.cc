/**
 * @file
 * Golden-file regression test pinning the key Figure 16 (execution
 * time decomposition) and Figure 17 (energy decomposition) metrics at
 * a fixed small workload scale. The simulator is deterministic, so
 * any drift in these numbers is a behavioral change that must be
 * reviewed — and, if intended, blessed by regenerating the golden
 * file with DRAMLESS_UPDATE_GOLDEN=1.
 *
 * Regenerate with:
 *   DRAMLESS_UPDATE_GOLDEN=1 build/tests/runner/runner_tests \
 *       --gtest_filter='GoldenTest.*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/sweep_runner.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

#ifndef DRAMLESS_GOLDEN_DIR
#error "DRAMLESS_GOLDEN_DIR must point at tests/runner/golden"
#endif

namespace dramless
{
namespace
{

/** The pinned configuration: small, fast, and covers both figures. */
constexpr double kGoldenScale = 0.05;

const std::vector<systems::SystemKind> kGoldenKinds = {
    systems::SystemKind::dramLess,
    systems::SystemKind::integratedSlc,
    systems::SystemKind::hetero,
};

const std::vector<const char *> kGoldenWorkloads = {"gemver",
                                                    "doitg"};

/** Render one run as stable "system/workload key value" lines. */
void
emitRun(std::ostringstream &os, const systems::RunResult &r)
{
    const std::string id = r.system + "/" + r.workload;
    auto tick = [&](const char *key, Tick t) {
        os << id << " " << key << " " << t << "\n";
    };
    auto num = [&](const char *key, double v) {
        os << id << " " << key << " " << json::number(v) << "\n";
    };
    // Figure 16: execution time and its decomposition.
    tick("exec_time_ticks", r.execTime);
    tick("host_stack_ticks", r.hostStackTime);
    tick("transfer_ticks", r.transferTime);
    tick("storage_stall_ticks", r.storageStallTime);
    tick("compute_ticks", r.computeTime);
    // Figure 17: energy by architectural category.
    num("energy_host_stack_j", r.energy.hostStack);
    num("energy_pcie_j", r.energy.pcie);
    num("energy_accel_cores_j", r.energy.accelCores);
    num("energy_dram_j", r.energy.dram);
    num("energy_storage_media_j", r.energy.storageMedia);
    num("energy_controller_j", r.energy.controller);
    num("energy_total_j", r.energy.total());
    // Headline throughput.
    num("bandwidth_mbps", r.bandwidthMBps);
    os << id << " total_instructions " << r.totalInstructions << "\n";
    os << id << " bytes_processed " << r.bytesProcessed << "\n";
}

std::string
currentSnapshot()
{
    setQuiet(true);
    systems::SystemOptions opts;
    opts.workloadScale = kGoldenScale;

    std::vector<workload::WorkloadSpec> specs;
    for (const char *name : kGoldenWorkloads)
        specs.push_back(workload::Polybench::byName(name));

    auto jobs = runner::makeMatrixJobs(kGoldenKinds, specs, opts);
    auto results = runner::SweepRunner(2).run(jobs);

    std::ostringstream os;
    os << "# Golden Fig16/Fig17 metrics, scale " << kGoldenScale
       << ". Regenerate with DRAMLESS_UPDATE_GOLDEN=1.\n";
    for (const auto &r : results)
        emitRun(os, r);
    return os.str();
}

std::string
goldenPath()
{
    return std::string(DRAMLESS_GOLDEN_DIR) +
           "/fig16_fig17_metrics.txt";
}

TEST(GoldenTest, Fig16Fig17MetricsMatchGoldenFile)
{
    const std::string snapshot = currentSnapshot();

    if (std::getenv("DRAMLESS_UPDATE_GOLDEN")) {
        std::ofstream out(goldenPath(), std::ios::trunc);
        ASSERT_TRUE(out.good())
            << "cannot write golden file " << goldenPath();
        out << snapshot;
        out.close();
        GTEST_SKIP() << "golden file regenerated: " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.good())
        << "missing golden file " << goldenPath()
        << " — regenerate with DRAMLESS_UPDATE_GOLDEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string golden = buf.str();

    if (snapshot == golden)
        return;

    // Report the first differing line for a readable failure.
    std::istringstream a(golden), b(snapshot);
    std::string la, lb;
    std::size_t lineno = 0;
    while (true) {
        bool ga = bool(std::getline(a, la));
        bool gb = bool(std::getline(b, lb));
        ++lineno;
        if (!ga && !gb)
            break;
        if (!ga || !gb || la != lb) {
            FAIL() << "golden mismatch at line " << lineno
                   << "\n  golden:  " << (ga ? la : "<eof>")
                   << "\n  current: " << (gb ? lb : "<eof>")
                   << "\nIf this change is intended, regenerate with "
                      "DRAMLESS_UPDATE_GOLDEN=1";
        }
    }
    FAIL() << "snapshot differs from golden file";
}

TEST(GoldenTest, SnapshotIsStableAcrossRepeatedRuns)
{
    // Guards the golden test itself: the snapshot must be a pure
    // function of the configuration.
    EXPECT_EQ(currentSnapshot(), currentSnapshot());
}

} // namespace
} // namespace dramless
