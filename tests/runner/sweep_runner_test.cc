/**
 * @file
 * Tests of the SweepRunner job-exception path: a throwing job must
 * keep its result slot, leave sibling rows untouched, and either
 * abort the sweep (default) or surface the failure in its row when
 * continue-on-error is requested.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runner/sweep_runner.hh"
#include "sim/logging.hh"
#include "systems/metrics.hh"

namespace dramless
{
namespace
{

using runner::SweepJob;
using runner::SweepRunner;
using systems::RunResult;

/**
 * A matrix of trivial jobs where job @p throw_at throws mid-sweep.
 * Successful jobs stamp their index into bandwidthMBps so slot
 * alignment is checkable from the outside.
 */
std::vector<SweepJob>
makeMarkedJobs(std::size_t count, std::size_t throw_at)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        SweepJob job;
        job.system = "sys" + std::to_string(i);
        job.workload = "wl" + std::to_string(i);
        job.run = [i, throw_at]() {
            if (i == throw_at)
                throw std::runtime_error("injected fault");
            RunResult r;
            r.system = "sys" + std::to_string(i);
            r.workload = "wl" + std::to_string(i);
            r.bandwidthMBps = double(i) + 1.0;
            r.execTime = Tick(i + 1) * 1000;
            return r;
        };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

void
expectMatrixIntact(const std::vector<RunResult> &results,
                   std::size_t count, std::size_t throw_at)
{
    ASSERT_EQ(results.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
        // Every row keeps its labels, failed or not: indexing into
        // the (system, workload) matrix never skews.
        EXPECT_EQ(results[i].system, "sys" + std::to_string(i));
        EXPECT_EQ(results[i].workload, "wl" + std::to_string(i));
        if (i == throw_at) {
            EXPECT_TRUE(results[i].failed());
            EXPECT_EQ(results[i].error, "injected fault");
            EXPECT_DOUBLE_EQ(results[i].bandwidthMBps, 0.0);
        } else {
            EXPECT_FALSE(results[i].failed());
            EXPECT_DOUBLE_EQ(results[i].bandwidthMBps,
                             double(i) + 1.0);
            EXPECT_EQ(results[i].execTime, Tick(i + 1) * 1000);
        }
    }
}

TEST(SweepRunnerTest, AllJobsSucceedInOrder)
{
    // throw_at past the end: nothing throws.
    auto jobs = makeMarkedJobs(6, 99);
    SweepRunner runner(3);
    auto results = runner.run(jobs);
    ASSERT_EQ(results.size(), 6u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_FALSE(results[i].failed());
        EXPECT_DOUBLE_EQ(results[i].bandwidthMBps, double(i) + 1.0);
    }
}

TEST(SweepRunnerTest, ThrowingJobKeepsSlotWithContinueOnError)
{
    auto jobs = makeMarkedJobs(7, 3);
    SweepRunner runner(4);
    runner.setContinueOnError(true);
    auto results = runner.run(jobs);
    expectMatrixIntact(results, 7, 3);
}

TEST(SweepRunnerTest, SerialRunnerSurvivesMidSweepThrow)
{
    // One worker degenerates to a serial loop on the calling
    // thread: jobs after the throwing one must still run.
    auto jobs = makeMarkedJobs(5, 1);
    SweepRunner runner(1);
    runner.setContinueOnError(true);
    auto results = runner.run(jobs);
    expectMatrixIntact(results, 5, 1);
}

TEST(SweepRunnerTest, FailedJobStillCountsTowardProgress)
{
    auto jobs = makeMarkedJobs(6, 2);
    SweepRunner runner(2);
    runner.setContinueOnError(true);
    std::atomic<std::size_t> calls{0};
    std::size_t max_done = 0;
    auto results = runner.run(
        jobs, [&](std::size_t done, std::size_t total,
                  const SweepJob &) {
            ++calls;
            EXPECT_EQ(total, 6u);
            if (done > max_done)
                max_done = done;
        });
    expectMatrixIntact(results, 6, 2);
    // The failed job is reported like any other completion, so the
    // progress line always reaches total.
    EXPECT_EQ(calls.load(), 6u);
    EXPECT_EQ(max_done, 6u);
}

TEST(SweepRunnerDeathTest, DefaultPolicyAbortsOnFailure)
{
    // Without continue-on-error a failed row must never escape into
    // golden exports: the sweep fatal()s after the pool drains.
    auto jobs = makeMarkedJobs(4, 2);
    SweepRunner runner(2);
    EXPECT_EXIT(runner.run(jobs),
                ::testing::ExitedWithCode(1),
                "sweep job 'sys2/wl2' failed: injected fault");
}

/**
 * jobsFromEnv must reject anything that is not a fully-formed
 * non-negative integer with a warn() and fall back to the default,
 * instead of the old atol() behavior that silently turned "abc"
 * into 0 workers-per-thread and truncated "4x" to 4.
 */
class JobsFromEnvTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (const char *old = std::getenv("DRAMLESS_JOBS")) {
            saved_ = old;
            had_ = true;
        }
        // warn() prints only when not quiet; other tests flip the
        // global, so pin it for stderr capture.
        setQuiet(false);
    }

    void TearDown() override
    {
        if (had_)
            setenv("DRAMLESS_JOBS", saved_.c_str(), 1);
        else
            unsetenv("DRAMLESS_JOBS");
        setQuiet(true);
    }

    /** @return (parsed value, captured stderr) for @p env. */
    std::pair<unsigned, std::string> parse(const char *env)
    {
        if (env == nullptr)
            unsetenv("DRAMLESS_JOBS");
        else
            setenv("DRAMLESS_JOBS", env, 1);
        ::testing::internal::CaptureStderr();
        unsigned v = runner::jobsFromEnv();
        return {v, ::testing::internal::GetCapturedStderr()};
    }

  private:
    std::string saved_;
    bool had_ = false;
};

TEST_F(JobsFromEnvTest, UnsetAndValidValuesParseSilently)
{
    auto [unset, unset_err] = parse(nullptr);
    EXPECT_EQ(unset, 0u);
    EXPECT_EQ(unset_err, "");

    auto [three, three_err] = parse("3");
    EXPECT_EQ(three, 3u);
    EXPECT_EQ(three_err, "");

    // Explicit 0 is valid: it means one worker per hardware thread.
    auto [zero, zero_err] = parse("0");
    EXPECT_EQ(zero, 0u);
    EXPECT_EQ(zero_err, "");
}

TEST_F(JobsFromEnvTest, GarbageFallsBackWithWarning)
{
    // atol("abc") was silently 0; now the typo is called out.
    auto [abc, abc_err] = parse("abc");
    EXPECT_EQ(abc, 0u);
    EXPECT_NE(abc_err.find("DRAMLESS_JOBS"), std::string::npos);
    EXPECT_NE(abc_err.find("abc"), std::string::npos);
}

TEST_F(JobsFromEnvTest, TrailingGarbageIsNotTruncated)
{
    // atol("4x") silently took the prefix and ran 4 workers.
    auto [v, err] = parse("4x");
    EXPECT_EQ(v, 0u);
    EXPECT_NE(err.find("DRAMLESS_JOBS"), std::string::npos);
}

TEST_F(JobsFromEnvTest, NegativeCountIsRejected)
{
    // atol("-2") wrapped through unsigned into ~4 billion workers.
    auto [v, err] = parse("-2");
    EXPECT_EQ(v, 0u);
    EXPECT_NE(err.find("DRAMLESS_JOBS"), std::string::npos);
}

TEST_F(JobsFromEnvTest, EmptyStringIsRejected)
{
    auto [v, err] = parse("");
    EXPECT_EQ(v, 0u);
    EXPECT_NE(err.find("DRAMLESS_JOBS"), std::string::npos);
}

/** Same strict-parsing contract for the DRAMLESS_SHARDS knob, with
 *  the serial kernel (1) as the fallback instead of all-cores. */
class ShardsFromEnvTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (const char *old = std::getenv("DRAMLESS_SHARDS")) {
            saved_ = old;
            had_ = true;
        }
        setQuiet(false);
    }

    void TearDown() override
    {
        if (had_)
            setenv("DRAMLESS_SHARDS", saved_.c_str(), 1);
        else
            unsetenv("DRAMLESS_SHARDS");
        setQuiet(true);
    }

    /** @return (parsed value, captured stderr) for @p env. */
    std::pair<unsigned, std::string> parse(const char *env)
    {
        if (env == nullptr)
            unsetenv("DRAMLESS_SHARDS");
        else
            setenv("DRAMLESS_SHARDS", env, 1);
        ::testing::internal::CaptureStderr();
        unsigned v = runner::shardsFromEnv();
        return {v, ::testing::internal::GetCapturedStderr()};
    }

  private:
    std::string saved_;
    bool had_ = false;
};

TEST_F(ShardsFromEnvTest, UnsetMeansSerialKernel)
{
    auto [v, err] = parse(nullptr);
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(err, "");
}

TEST_F(ShardsFromEnvTest, ExplicitValuesParse)
{
    EXPECT_EQ(parse("4").first, 4u);
    // 0 is valid: one kernel worker per hardware thread.
    EXPECT_EQ(parse("0").first, 0u);
}

TEST_F(ShardsFromEnvTest, GarbageFallsBackToSerial)
{
    for (const char *bad : {"abc", "4x", "-2", ""}) {
        auto [v, err] = parse(bad);
        EXPECT_EQ(v, 1u) << "input '" << bad << "'";
        EXPECT_NE(err.find("DRAMLESS_SHARDS"), std::string::npos);
    }
}

TEST(CoreBudgetTest, WithinBudgetIsUntouched)
{
    EXPECT_EQ(runner::clampWorkersToBudget(4, 2, 8), 4u);
    EXPECT_EQ(runner::clampWorkersToBudget(8, 1, 8), 8u);
    EXPECT_EQ(runner::clampWorkersToBudget(1, 8, 8), 1u);
}

TEST(CoreBudgetTest, OversubscriptionClampsAndWarns)
{
    setQuiet(false);
    ::testing::internal::CaptureStderr();
    // 8 jobs x 4 shards on 8 threads -> 2 concurrent jobs.
    EXPECT_EQ(runner::clampWorkersToBudget(8, 4, 8), 2u);
    std::string err = ::testing::internal::GetCapturedStderr();
    setQuiet(true);
    EXPECT_NE(err.find("oversubscribes"), std::string::npos);
}

TEST(CoreBudgetTest, NeverClampsToZero)
{
    // One job must always run, even when a single job's shards
    // exceed the machine.
    EXPECT_EQ(runner::clampWorkersToBudget(4, 16, 8), 1u);
    EXPECT_EQ(runner::clampWorkersToBudget(2, 3, 4), 1u);
}

TEST(CoreBudgetTest, AutoShardsClaimWholeBudget)
{
    // shards=0 ("one kernel worker per core"): any second concurrent
    // job would oversubscribe by construction.
    EXPECT_EQ(runner::clampWorkersToBudget(8, 0, 8), 1u);
    EXPECT_EQ(runner::clampWorkersToBudget(1, 0, 8), 1u);
}

TEST(CoreBudgetTest, RunnerCtorAppliesTheBudget)
{
    // With the serial kernel the historical contract holds: explicit
    // worker counts are honored unclamped.
    EXPECT_EQ(SweepRunner(64, 1).numWorkers(), 64u);
    // With sharded jobs the jobs x shards product is capped by the
    // host's thread count, whatever it is.
    unsigned hw = std::thread::hardware_concurrency();
    hw = hw > 0 ? hw : 1;
    SweepRunner sharded(64, 4);
    EXPECT_LE(sharded.numWorkers() * 4, std::max(hw, 4u));
    EXPECT_GE(sharded.numWorkers(), 1u);
}

} // namespace
} // namespace dramless
