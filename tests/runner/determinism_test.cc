/**
 * @file
 * Determinism guarantees of the parallel experiment runner: running
 * the same (system, workload) configurations through SweepRunner
 * with any worker count must produce stats snapshots bit-identical
 * to a serial run. Each job owns a private EventQueue and system
 * instance, so this holds by construction — these tests lock it in.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "runner/sweep_runner.hh"
#include "runner/trace_export.hh"
#include "sim/logging.hh"

namespace dramless
{
namespace
{

using runner::SweepJob;
using runner::SweepRunner;
using systems::RunResult;
using systems::SystemKind;

/** Tiny but non-trivial configuration for fast runs. */
systems::SystemOptions
tinyOptions()
{
    setQuiet(true);
    systems::SystemOptions opts;
    opts.workloadScale = 0.02;
    return opts;
}

/** A small mixed job list covering three organizations. */
std::vector<SweepJob>
sampleJobs()
{
    const std::vector<SystemKind> kinds = {
        SystemKind::dramLess,
        SystemKind::integratedSlc,
        SystemKind::hetero,
    };
    std::vector<workload::WorkloadSpec> specs = {
        workload::Polybench::byName("gemver"),
        workload::Polybench::byName("doitg"),
        workload::Polybench::byName("trmm"),
    };
    return runner::makeMatrixJobs(kinds, specs, tinyOptions());
}

void
expectSeriesIdentical(const stats::TimeSeries &a,
                      const stats::TimeSeries &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Bit-identical: exact tick and exact double equality.
        EXPECT_EQ(a.samples()[i].when, b.samples()[i].when);
        EXPECT_EQ(a.samples()[i].value, b.samples()[i].value);
    }
}

void
expectResultIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.system, b.system);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.hostStackTime, b.hostStackTime);
    EXPECT_EQ(a.transferTime, b.transferTime);
    EXPECT_EQ(a.storageStallTime, b.storageStallTime);
    EXPECT_EQ(a.computeTime, b.computeTime);
    EXPECT_EQ(a.bandwidthMBps, b.bandwidthMBps);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.bytesProcessed, b.bytesProcessed);
    EXPECT_EQ(a.energy.hostStack, b.energy.hostStack);
    EXPECT_EQ(a.energy.pcie, b.energy.pcie);
    EXPECT_EQ(a.energy.accelCores, b.energy.accelCores);
    EXPECT_EQ(a.energy.dram, b.energy.dram);
    EXPECT_EQ(a.energy.storageMedia, b.energy.storageMedia);
    EXPECT_EQ(a.energy.controller, b.energy.controller);
    EXPECT_EQ(a.reliability.verifyRetries, b.reliability.verifyRetries);
    EXPECT_EQ(a.reliability.failedWrites, b.reliability.failedWrites);
    EXPECT_EQ(a.reliability.badLineRemaps, b.reliability.badLineRemaps);
    EXPECT_EQ(a.reliability.spareLinesUsed,
              b.reliability.spareLinesUsed);
    EXPECT_EQ(a.reliability.gapMoveWrites, b.reliability.gapMoveWrites);
    EXPECT_EQ(a.reliability.firmwareTimeouts,
              b.reliability.firmwareTimeouts);
    EXPECT_EQ(a.reliability.firmwareGiveUps,
              b.reliability.firmwareGiveUps);
    EXPECT_EQ(a.reliability.maxLineWear, b.reliability.maxLineWear);
    EXPECT_EQ(a.reliability.writesBeforeFirstRemap,
              b.reliability.writesBeforeFirstRemap);
    expectSeriesIdentical(a.ipc, b.ipc);
    expectSeriesIdentical(a.corePower, b.corePower);
    expectSeriesIdentical(a.cumulativeEnergy, b.cumulativeEnergy);
}

TEST(DeterminismTest, RepeatedSerialRunsAreBitIdentical)
{
    auto opts = tinyOptions();
    const auto &spec = workload::Polybench::byName("gemver");
    auto a = systems::SystemFactory::create(SystemKind::dramLess,
                                            opts)
                 ->run(spec);
    auto b = systems::SystemFactory::create(SystemKind::dramLess,
                                            opts)
                 ->run(spec);
    expectResultIdentical(a, b);
}

TEST(DeterminismTest, FaultInjectionIsSeedDeterministic)
{
    // A fixed fault seed with a nonzero error rate must reproduce
    // bit-identically — including every reliability counter — and
    // must actually exercise the retry machinery.
    auto opts = tinyOptions();
    opts.wearLeveling = true;
    opts.gapMovePeriod = 50;
    opts.reliability.enabled = true;
    opts.reliability.seed = 42;
    opts.reliability.writeFailProb = 0.05;
    const auto &spec = workload::Polybench::byName("gemver");
    auto a = systems::SystemFactory::create(SystemKind::dramLess,
                                            opts)
                 ->run(spec);
    auto b = systems::SystemFactory::create(SystemKind::dramLess,
                                            opts)
                 ->run(spec);
    expectResultIdentical(a, b);
    EXPECT_GT(a.reliability.verifyRetries, 0u);
    EXPECT_GT(a.reliability.maxLineWear, 0u);
    EXPECT_GT(a.reliability.gapMoveWrites, 0u);
}

TEST(DeterminismTest, InjectionDisabledReportsAllZeroOutcome)
{
    auto opts = tinyOptions();
    const auto &spec = workload::Polybench::byName("doitg");
    auto r = systems::SystemFactory::create(SystemKind::dramLess,
                                            opts)
                 ->run(spec);
    EXPECT_EQ(r.reliability.verifyRetries, 0u);
    EXPECT_EQ(r.reliability.failedWrites, 0u);
    EXPECT_EQ(r.reliability.badLineRemaps, 0u);
    EXPECT_EQ(r.reliability.gapMoveWrites, 0u);
    EXPECT_EQ(r.reliability.firmwareTimeouts, 0u);
    EXPECT_EQ(r.reliability.maxLineWear, 0u);
}

TEST(DeterminismTest, ParallelSweepMatchesSerialSweep)
{
    auto jobs = sampleJobs();

    SweepRunner serial(1);
    std::vector<RunResult> ref = serial.run(jobs);
    ASSERT_EQ(ref.size(), jobs.size());

    SweepRunner parallel(4);
    ASSERT_EQ(parallel.numWorkers(), 4u);
    std::vector<RunResult> par = parallel.run(jobs);
    ASSERT_EQ(par.size(), ref.size());

    for (std::size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE(jobs[i].system + "/" + jobs[i].workload);
        expectResultIdentical(ref[i], par[i]);
    }
}

TEST(DeterminismTest, DramlessJobsEnvSelectsWorkerCount)
{
    ASSERT_EQ(setenv("DRAMLESS_JOBS", "3", 1), 0);
    EXPECT_EQ(runner::jobsFromEnv(), 3u);
    SweepRunner pool(runner::jobsFromEnv());
    EXPECT_EQ(pool.numWorkers(), 3u);

    // A run through the env-selected pool is still bit-identical
    // to a serial run.
    auto jobs = sampleJobs();
    jobs.resize(3);
    auto par = pool.run(jobs);
    auto ref = SweepRunner(1).run(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].system + "/" + jobs[i].workload);
        expectResultIdentical(ref[i], par[i]);
    }

    ASSERT_EQ(unsetenv("DRAMLESS_JOBS"), 0);
    EXPECT_EQ(runner::jobsFromEnv(), 0u);
}

TEST(DeterminismTest, TracingOnDoesNotPerturbResults)
{
    // Tracing only observes the simulation; results with
    // DRAMLESS_TRACE set must stay bit-identical to an untraced
    // serial run, and the merged session file must be produced.
    auto jobs = sampleJobs();

    std::vector<RunResult> ref = SweepRunner(1).run(jobs);

    std::string tracePath = std::string(::testing::TempDir()) +
                            "/dramless_determinism_trace.json";
    ASSERT_EQ(setenv("DRAMLESS_TRACE", tracePath.c_str(), 1), 0);
    std::vector<RunResult> par = SweepRunner(4).run(jobs);
    runner::flushTraceSessions();
    ASSERT_EQ(unsetenv("DRAMLESS_TRACE"), 0);

    ASSERT_EQ(par.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE(jobs[i].system + "/" + jobs[i].workload);
        expectResultIdentical(ref[i], par[i]);
    }

    std::ifstream trace(tracePath);
    ASSERT_TRUE(trace.good()) << tracePath;
    std::stringstream buf;
    buf << trace.rdbuf();
    EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(buf.str().find("\"ph\":\"X\""), std::string::npos);

    std::remove(tracePath.c_str());
    for (const auto &job : jobs) {
        std::remove(runner::jobTracePath(tracePath, job.system,
                                         job.workload)
                        .c_str());
    }
}

TEST(DeterminismTest, ResultsKeepJobOrderRegardlessOfFinishOrder)
{
    // Mix fast and slow jobs so completion order differs from
    // submission order under parallel execution.
    auto opts = tinyOptions();
    std::vector<SweepJob> jobs;
    jobs.push_back(runner::makeJob(
        SystemKind::norIntf, workload::Polybench::byName("durbin"),
        opts)); // slowest organization
    jobs.push_back(runner::makeJob(
        SystemKind::ideal, workload::Polybench::byName("trisolv"),
        opts)); // fastest
    jobs.push_back(runner::makeJob(
        SystemKind::dramLess, workload::Polybench::byName("jaco1D"),
        opts));

    auto results = SweepRunner(3).run(jobs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].system, "NOR-intf");
    EXPECT_EQ(results[0].workload, "durbin");
    EXPECT_EQ(results[1].system, "Ideal");
    EXPECT_EQ(results[1].workload, "trisolv");
    EXPECT_EQ(results[2].system, "DRAM-less");
    EXPECT_EQ(results[2].workload, "jaco1D");
}

TEST(DeterminismTest, ProgressReportsEveryCompletion)
{
    auto jobs = sampleJobs();
    jobs.resize(4);
    std::vector<std::size_t> seen;
    std::size_t total = 0;
    SweepRunner pool(2);
    pool.run(jobs, [&](std::size_t done, std::size_t n,
                       const SweepJob &) {
        seen.push_back(done);
        total = n;
    });
    EXPECT_EQ(total, jobs.size());
    // Every completion count 1..N observed exactly once (the
    // callback runs under a mutex, but order may vary).
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), jobs.size());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], i + 1);
}

} // namespace
} // namespace dramless
