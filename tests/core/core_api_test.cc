/**
 * @file
 * Tests of the public API: kernel image pack/unpack round trips and
 * the DramLessAccelerator facade.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "core/dramless.hh"

namespace dramless
{
namespace core
{
namespace
{

// --------------------------- KernelImage --------------------------

std::vector<KernelSegment>
sampleSegments()
{
    KernelSegment shared;
    shared.name = "shared";
    shared.loadAddress = 0x1000;
    shared.payload.assign(512, 0xAB);
    KernelSegment app0;
    app0.name = "app0";
    app0.loadAddress = 0x20000;
    app0.entryOffset = 0x40;
    app0.payload.resize(2048);
    std::iota(app0.payload.begin(), app0.payload.end(), 0);
    return {shared, app0};
}

TEST(KernelImageTest, PackUnpackRoundTrip)
{
    KernelImage img = KernelImage::pack(sampleSegments());
    EXPECT_GT(img.size(), 2560u); // payloads + metadata
    KernelImage back = KernelImage::unpack(img.bytes());
    ASSERT_EQ(back.segments().size(), 2u);
    EXPECT_EQ(back.segment("shared").payload,
              img.segment("shared").payload);
    EXPECT_EQ(back.segment("app0").loadAddress, 0x20000u);
    EXPECT_EQ(back.segment("app0").entryOffset, 0x40u);
    EXPECT_EQ(back.segment("app0").payload.size(), 2048u);
    EXPECT_EQ(back.segment("app0").payload[100], 100u);
}

TEST(KernelImageTest, MetadataDescribesPerAppAddresses)
{
    // Figure 10: meta holds download addresses for app0..appN and
    // shared code.
    std::vector<KernelSegment> segs;
    for (int i = 0; i < 4; ++i) {
        KernelSegment s;
        s.name = csprintf("app%d", i);
        s.loadAddress = std::uint64_t(i + 1) << 20;
        s.payload.assign(64, std::uint8_t(i));
        segs.push_back(s);
    }
    KernelImage img = KernelImage::pack(segs);
    KernelImage back = KernelImage::unpack(img.bytes());
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(back.segment(csprintf("app%d", i)).loadAddress,
                  std::uint64_t(i + 1) << 20);
    }
}

TEST(KernelImageDeathTest, RejectsCorruptBlobs)
{
    KernelImage img = KernelImage::pack(sampleSegments());
    std::vector<std::uint8_t> bad = img.bytes();
    bad[0] ^= 0xFF; // break the magic
    EXPECT_DEATH(KernelImage::unpack(bad), "magic");
    std::vector<std::uint8_t> truncated(img.bytes().begin(),
                                        img.bytes().begin() + 10);
    EXPECT_DEATH(KernelImage::unpack(truncated), "truncated");
    EXPECT_DEATH(KernelImage::pack({}), "no segments");
    EXPECT_DEATH(img.segment("nosuch"), "no segment");
}

// ----------------------- DramLessAccelerator ----------------------

class FacadeTest : public ::testing::Test
{
  protected:
    static DramLessConfig
    quickConfig()
    {
        setQuiet(true);
        return DramLessConfig{};
    }
};

TEST_F(FacadeTest, ConstructionBootsTheSubsystem)
{
    DramLessAccelerator dl(quickConfig());
    EXPECT_GE(dl.now(), fromUs(150)); // initializer boot latency
    EXPECT_GT(dl.capacity(), 1ull << 30);
}

TEST_F(FacadeTest, WriteReadDataRoundTrip)
{
    DramLessAccelerator dl(quickConfig());
    std::vector<std::uint8_t> data(4096);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i * 13 + 7);
    Tick before = dl.now();
    dl.writeData(0x10000, data.data(), data.size());
    EXPECT_GT(dl.now(), before); // simulated time advanced
    std::vector<std::uint8_t> out(data.size(), 0);
    dl.readData(0x10000, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST_F(FacadeTest, StageAndFetchAreUntimed)
{
    DramLessAccelerator dl(quickConfig());
    std::vector<std::uint8_t> data(1024, 0x5C);
    Tick before = dl.now();
    dl.stageData(0, data.data(), data.size());
    std::vector<std::uint8_t> out(1024, 0);
    dl.fetchData(0, out.data(), out.size());
    EXPECT_EQ(dl.now(), before);
    EXPECT_EQ(out, data);
}

TEST_F(FacadeTest, OffloadWorkloadRunsToCompletion)
{
    DramLessAccelerator dl(quickConfig());
    auto spec = workload::Polybench::byName("trisolv").scaled(0.03);
    OffloadResult r = dl.offload(spec);
    EXPECT_GT(r.completedAt, r.startedAt);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_FALSE(r.ipc.empty());
}

TEST_F(FacadeTest, OffloadedImageUnpacksFromPram)
{
    DramLessAccelerator dl(quickConfig());
    auto spec = workload::Polybench::byName("trisolv").scaled(0.02);
    dl.offload(spec);
    KernelImage img = dl.readBackImage();
    EXPECT_EQ(img.segment("shared").payload.size(), 4096u);
    EXPECT_EQ(img.segment("app0").payload[0], 0u);
    EXPECT_EQ(img.segment("app3").payload[0], 3u);
}

TEST_F(FacadeTest, CustomTraceOffload)
{
    DramLessAccelerator dl(quickConfig());
    class TinyTrace : public accel::TraceSource
    {
      public:
        bool
        next(accel::TraceItem &out) override
        {
            if (n_ >= 16)
                return false;
            out = (n_ % 2 == 0)
                      ? accel::TraceItem::computeOf(1000)
                      : accel::TraceItem::loadOf(n_ * 1024, 32);
            ++n_;
            return true;
        }

      private:
        int n_ = 0;
    };
    TinyTrace t0, t1;
    KernelImage img = KernelImage::pack(
        {KernelSegment{"k", 0, 0,
                       std::vector<std::uint8_t>(512, 1)}});
    OffloadResult r = dl.offload(img, {&t0, &t1});
    EXPECT_GT(r.completedAt, 0u);
    EXPECT_EQ(r.instructions, 2u * 8 * 1000);
}

TEST_F(FacadeTest, SequentialOffloadsAccumulateTime)
{
    DramLessAccelerator dl(quickConfig());
    auto spec = workload::Polybench::byName("durbin").scaled(0.02);
    OffloadResult a = dl.offload(spec);
    OffloadResult b = dl.offload(spec);
    EXPECT_GE(b.startedAt, a.completedAt);
    EXPECT_GT(b.completedAt, b.startedAt);
    // Per-offload energy is windowed, not cumulative: the second run
    // of the same kernel must cost about the same as the first (it
    // is cheaper in fact: warmed row buffers, pre-erased outputs).
    EXPECT_GT(b.energy.total(), 0.0);
    EXPECT_LT(b.energy.total(), 1.5 * a.energy.total());
}

TEST_F(FacadeTest, WearLevelingConfigRotatesAddresses)
{
    DramLessConfig cfg = quickConfig();
    cfg.wearLeveling = true;
    DramLessAccelerator dl(cfg);
    std::vector<std::uint8_t> data(512, 0x77);
    for (int i = 0; i < 200; ++i)
        dl.writeData(0, data.data(), data.size());
    ASSERT_NE(dl.pram().wearLeveler(), nullptr);
    EXPECT_GT(dl.pram().wearLeveler()->gapMoves(), 0u);
    // Data remains intact under rotation.
    std::vector<std::uint8_t> out(512, 0);
    dl.fetchData(0, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST_F(FacadeTest, DumpStatsListsComponents)
{
    DramLessAccelerator dl(quickConfig());
    auto spec = workload::Polybench::byName("trisolv").scaled(0.02);
    dl.offload(spec);
    std::ostringstream os;
    dl.dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("pram.ch0.readRequests"), std::string::npos);
    EXPECT_NE(out.find("pram.ch1.modules.programs"),
              std::string::npos);
    EXPECT_NE(out.find("mcu.reads"), std::string::npos);
    EXPECT_NE(out.find("accel.pe1.instructions"), std::string::npos);
}

TEST_F(FacadeTest, DeathOnMisalignedAccess)
{
    DramLessAccelerator dl(quickConfig());
    std::uint8_t b[32];
    EXPECT_DEATH(dl.writeData(7, b, 32), "aligned");
    EXPECT_DEATH(dl.readData(0, b, 17), "aligned");
    EXPECT_DEATH(dl.readBackImage(), "no image");
}

} // namespace
} // namespace core
} // namespace dramless
