/**
 * @file
 * Regression tests of the firmware watchdog-timeout + retry path:
 * deterministic timeout draws, bounded retries with graceful
 * give-up, and zero overhead when the knob is off.
 */

#include <gtest/gtest.h>

#include "flash/firmware.hh"

namespace dramless
{
namespace flash
{
namespace
{

TEST(FirmwareTimeoutTest, DisabledKnobAddsNothing)
{
    FirmwareConfig cfg = FirmwareConfig::traditionalSsd();
    FirmwareModel fw(cfg, "fw");
    EXPECT_EQ(fw.service(0), cfg.perRequestLatency);
    EXPECT_EQ(fw.numTimeouts(), 0u);
    EXPECT_EQ(fw.numTimeoutGiveUps(), 0u);
}

TEST(FirmwareTimeoutTest, CertainTimeoutExhaustsRetriesAndGivesUp)
{
    FirmwareConfig cfg = FirmwareConfig::traditionalSsd();
    cfg.timeoutProb = 1.0;
    cfg.timeoutPenalty = fromUs(20);
    cfg.timeoutRetries = 2;
    FirmwareModel fw(cfg, "fw");
    // Initial attempt + 2 re-issues, each hanging until the
    // watchdog; the request still completes (graceful, never a
    // stall forever).
    Tick done = fw.service(0);
    EXPECT_EQ(done,
              3 * cfg.perRequestLatency + 3 * cfg.timeoutPenalty);
    EXPECT_EQ(fw.numTimeouts(), 3u);
    EXPECT_EQ(fw.numTimeoutGiveUps(), 1u);
    EXPECT_EQ(fw.numRequests(), 1u);
}

TEST(FirmwareTimeoutTest, TimeoutDrawsAreSeedDeterministic)
{
    FirmwareConfig cfg = FirmwareConfig::traditionalSsd();
    cfg.timeoutProb = 0.3;
    cfg.faultSeed = 11;
    FirmwareModel a(cfg, "a"), b(cfg, "b");
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.service(0), b.service(0)) << "request " << i;
    EXPECT_EQ(a.numTimeouts(), b.numTimeouts());
    EXPECT_EQ(a.numTimeoutGiveUps(), b.numTimeoutGiveUps());
    EXPECT_GT(a.numTimeouts(), 0u);

    cfg.faultSeed = 12;
    FirmwareModel c(cfg, "c");
    for (int i = 0; i < 200; ++i)
        c.service(0);
    EXPECT_GT(c.numTimeouts(), 0u);
}

TEST(FirmwareTimeoutTest, TimeoutsInflateBusyTimeAccounting)
{
    FirmwareConfig cfg = FirmwareConfig::traditionalSsd();
    cfg.timeoutProb = 1.0;
    cfg.timeoutRetries = 0;
    FirmwareModel fw(cfg, "fw");
    Tick done = fw.service(0);
    EXPECT_EQ(done, cfg.perRequestLatency + cfg.timeoutPenalty);
    EXPECT_EQ(fw.busyTicks(), done);
    EXPECT_EQ(fw.numTimeoutGiveUps(), 1u);
}

TEST(FirmwareTimeoutTest, OraclePathBypassesTimeouts)
{
    FirmwareConfig cfg = FirmwareConfig::oracle();
    cfg.timeoutProb = 1.0;
    FirmwareModel fw(cfg, "fw");
    EXPECT_EQ(fw.service(fromUs(5)), fromUs(5));
    EXPECT_EQ(fw.numTimeouts(), 0u);
}

} // namespace
} // namespace flash
} // namespace dramless
