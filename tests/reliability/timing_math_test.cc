/**
 * @file
 * Regression tests of the serialization-delay integer math. The old
 * code computed `Tick(double(bytes) / bps * 1e12)`, which truncates:
 * small transfers on fast links cost 0 ticks and large ones silently
 * lose up to a tick. serializationTicks() rounds up in 128-bit
 * integer math; these tests pin the fixed behavior at the helper, at
 * the PCIe link, and at the DRAM backend that both used the broken
 * expression.
 */

#include <gtest/gtest.h>

#include "host/pcie.hh"
#include "sim/ticks.hh"
#include "systems/backends.hh"

namespace dramless
{
namespace
{

TEST(SerializationTicksTest, ZeroBytesIsFree)
{
    EXPECT_EQ(serializationTicks(0, 7.9e9), 0u);
}

TEST(SerializationTicksTest, NonzeroTransferAlwaysCostsATick)
{
    // 1 byte at 2 TB/s is 0.5 ps: the old float math truncated this
    // to 0 ticks, letting tiny transfers ride for free.
    EXPECT_EQ(serializationTicks(1, 2e12), 1u);
    EXPECT_EQ(serializationTicks(1, 1e13), 1u);
}

TEST(SerializationTicksTest, ExactDivisionsStayExact)
{
    // 1 GB/s == 1 byte per ns == 1000 ticks per byte.
    EXPECT_EQ(serializationTicks(1, 1e9), 1000u);
    EXPECT_EQ(serializationTicks(4096, 1e9), 4096u * 1000u);
    // 1 TB/s == 1 tick per byte.
    EXPECT_EQ(serializationTicks(123456789, 1e12), 123456789u);
}

TEST(SerializationTicksTest, RoundsUpNotDown)
{
    // 3 bytes at 2 bytes/sec: 1.5 s must become ceil, not floor.
    EXPECT_EQ(serializationTicks(3, 2.0), Tick(1.5 * tickPerSec));
    // 7.9 GB/s (the PCIe default): 1 byte is ~126.58 ps -> 127.
    EXPECT_EQ(serializationTicks(1, 7.9e9), 127u);
}

TEST(SerializationTicksTest, LargeTransfersDoNotOverflow)
{
    // 1 TiB at 7.9 GB/s ~ 139 s; the 128-bit intermediate must not
    // wrap (bytes * 1e12 alone overflows 64 bits past ~18 MB).
    const std::uint64_t tib = 1ull << 40;
    Tick t = serializationTicks(tib, 7.9e9);
    double expect_sec = double(tib) / 7.9e9;
    EXPECT_NEAR(toSec(t), expect_sec, 1e-9);
}

TEST(PcieRoundingTest, TinyTransferOccupiesTheLink)
{
    EventQueue eq;
    host::PcieConfig cfg;
    cfg.bytesPerSec = 2e12;
    cfg.perTransferLatency = 0;
    host::PcieLink link(eq, cfg, "pcie");
    // Sub-tick payload: must still consume at least one tick of link
    // occupancy instead of truncating to a free transfer.
    Tick done = link.transfer(1);
    EXPECT_EQ(done, 1u);
    EXPECT_EQ(link.pcieStats().busyTicks, 1u);
}

TEST(PcieRoundingTest, BackToBackTransfersSerializeExactly)
{
    EventQueue eq;
    host::PcieConfig cfg;
    cfg.bytesPerSec = 1e9; // 1000 ticks per byte, exact
    cfg.perTransferLatency = fromNs(10);
    host::PcieLink link(eq, cfg, "pcie");
    Tick first = link.transfer(100);
    EXPECT_EQ(first, fromNs(10) + 100u * 1000u);
    Tick second = link.transfer(100);
    EXPECT_EQ(second, 2 * first);
}

TEST(DramBackendRoundingTest, SmallAccessKeepsBandwidthCost)
{
    EventQueue eq;
    systems::DramBackend::Config cfg;
    cfg.bytesPerSec = 2e12;
    Tick completed = 0;
    systems::DramBackend dram(eq, cfg, "dram");
    dram.setCallback(
        [&](std::uint64_t, Tick when) { completed = when; });
    dram.submit(0, 32, false);
    eq.run();
    // 32 bytes at 2 TB/s is 16 ps of occupancy on top of the access
    // latency; the old math charged zero transfer time.
    EXPECT_EQ(completed, cfg.accessLatency + 16u);
}

} // namespace
} // namespace dramless
