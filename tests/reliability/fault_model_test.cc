/**
 * @file
 * Unit tests of the deterministic fault model: decisions must be
 * pure functions of (seed, salt, line, wear), probability knobs must
 * bound behavior at 0 and 1, and the endurance budget must switch
 * failure rates exactly past the configured write count.
 */

#include <gtest/gtest.h>

#include "reliability/fault_model.hh"

namespace dramless
{
namespace reliability
{
namespace
{

ReliabilityConfig
baseConfig()
{
    ReliabilityConfig cfg;
    cfg.enabled = true;
    cfg.seed = 42;
    return cfg;
}

TEST(FaultModelTest, DecisionsArePureFunctionsOfCoordinates)
{
    ReliabilityConfig cfg = baseConfig();
    cfg.writeFailProb = 0.5;
    cfg.programJitter = 0.3;
    cfg.firmwareTimeoutProb = 0.5;
    FaultModel a(cfg), b(cfg);
    for (std::uint64_t line = 0; line < 64; ++line) {
        for (std::uint64_t wear = 1; wear <= 8; ++wear) {
            EXPECT_EQ(a.programFails(3, line, wear),
                      b.programFails(3, line, wear));
            EXPECT_EQ(a.programLatency(3, line, wear, fromUs(10)),
                      b.programLatency(3, line, wear, fromUs(10)));
            EXPECT_EQ(a.firmwareTimesOut(3, line, 0),
                      b.firmwareTimesOut(3, line, 0));
        }
    }
    // Querying in a different order must not change any outcome
    // (order independence is what makes parallel sweeps safe).
    for (std::uint64_t line = 64; line-- > 0;)
        EXPECT_EQ(a.programFails(3, line, 1),
                  b.programFails(3, line, 1));
}

TEST(FaultModelTest, SeedAndSaltSeparateDecisionStreams)
{
    ReliabilityConfig cfg = baseConfig();
    cfg.writeFailProb = 0.5;
    ReliabilityConfig other = cfg;
    other.seed = 43;
    FaultModel a(cfg), b(other);
    int differing = 0;
    for (std::uint64_t line = 0; line < 256; ++line)
        differing += a.programFails(0, line, 1) !=
                             b.programFails(0, line, 1)
                         ? 1
                         : 0;
    EXPECT_GT(differing, 0) << "seed must matter";

    differing = 0;
    for (std::uint64_t line = 0; line < 256; ++line)
        differing += a.programFails(0, line, 1) !=
                             a.programFails(1, line, 1)
                         ? 1
                         : 0;
    EXPECT_GT(differing, 0) << "salt must matter";
}

TEST(FaultModelTest, ProbabilityZeroNeverFailsProbabilityOneAlways)
{
    ReliabilityConfig cfg = baseConfig();
    FaultModel never(cfg);
    cfg.writeFailProb = 1.0;
    FaultModel always(cfg);
    for (std::uint64_t line = 0; line < 128; ++line) {
        EXPECT_FALSE(never.programFails(0, line, 1));
        EXPECT_TRUE(always.programFails(0, line, 1));
    }
}

TEST(FaultModelTest, EnduranceBudgetEscalatesExactlyPastTheLimit)
{
    ReliabilityConfig cfg = baseConfig();
    cfg.writeFailProb = 0.0;
    cfg.enduranceWrites = 10;
    cfg.wornWriteFailProb = 1.0;
    FaultModel m(cfg);
    for (std::uint64_t wear = 1; wear <= 10; ++wear)
        EXPECT_FALSE(m.programFails(0, 5, wear)) << "wear " << wear;
    for (std::uint64_t wear = 11; wear <= 20; ++wear)
        EXPECT_TRUE(m.programFails(0, 5, wear)) << "wear " << wear;
}

TEST(FaultModelTest, ZeroEnduranceMeansUnlimited)
{
    ReliabilityConfig cfg = baseConfig();
    cfg.enduranceWrites = 0;
    cfg.wornWriteFailProb = 1.0;
    FaultModel m(cfg);
    EXPECT_FALSE(m.programFails(0, 0, 1u << 30));
}

TEST(FaultModelTest, JitterScalesLatencyWithinTheConfiguredBand)
{
    ReliabilityConfig cfg = baseConfig();
    FaultModel plain(cfg);
    EXPECT_EQ(plain.programLatency(0, 0, 1, fromUs(18)), fromUs(18));

    cfg.programJitter = 0.25;
    FaultModel jittery(cfg);
    const Tick nominal = fromUs(18);
    bool any_stretch = false;
    for (std::uint64_t line = 0; line < 64; ++line) {
        Tick t = jittery.programLatency(0, line, 1, nominal);
        EXPECT_GE(t, nominal);
        EXPECT_LE(t, Tick(double(nominal) * 1.25) + 1);
        any_stretch |= t > nominal;
    }
    EXPECT_TRUE(any_stretch);
}

TEST(FaultModelTest, DescribeMentionsTheActiveKnobs)
{
    ReliabilityConfig cfg = baseConfig();
    cfg.writeFailProb = 0.01;
    std::string s = cfg.describe();
    EXPECT_NE(s.find("0.01"), std::string::npos) << s;
}

} // namespace
} // namespace reliability
} // namespace dramless
