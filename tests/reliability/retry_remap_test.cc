/**
 * @file
 * Behavioral tests of the program-and-verify retry path in the
 * channel controller and the bad-line remapping / graceful
 * degradation path in the PRAM subsystem, including the fatal
 * spare-pool-exhaustion endpoint.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "ctrl/channel_controller.hh"
#include "ctrl/pram_subsystem.hh"
#include "sim/logging.hh"

namespace dramless
{
namespace ctrl
{
namespace
{

reliability::ReliabilityConfig
injection(double p_fail, std::uint32_t retries,
          std::uint32_t spares = 8)
{
    reliability::ReliabilityConfig cfg;
    cfg.enabled = true;
    cfg.seed = 7;
    cfg.writeFailProb = p_fail;
    cfg.maxProgramRetries = retries;
    cfg.spareLines = spares;
    return cfg;
}

class RetryTest : public ::testing::Test
{
  protected:
    std::unique_ptr<ChannelController>
    make(const reliability::ReliabilityConfig &rel,
         std::uint32_t modules = 1)
    {
        auto ctl = std::make_unique<ChannelController>(
            eq, modules, pram::PramGeometry::paperDefault(),
            pram::PramTiming::paperDefault(),
            SchedulerConfig::finalConfig(), "ch0");
        ctl->configureReliability(rel, 0);
        ctl->setCallback([this](const MemResponse &resp) {
            done[resp.id] = resp;
        });
        return ctl;
    }

    EventQueue eq;
    std::map<std::uint64_t, MemResponse> done;
};

TEST_F(RetryTest, AlwaysFailingWriteExhaustsExactlyMaxRetries)
{
    auto ctl = make(injection(1.0, 2));
    MemRequest req;
    req.kind = ReqKind::write;
    req.addr = 0;
    req.size = 32;
    std::uint64_t id = ctl->enqueue(req);
    eq.run();
    ASSERT_TRUE(done.count(id));
    EXPECT_TRUE(done[id].failed);
    EXPECT_EQ(ctl->ctrlStats().verifyRetries, 2u);
    EXPECT_EQ(ctl->ctrlStats().verifyFailedWrites, 1u);
    // Each re-pulse wears the cell again: initial + 2 retries.
    EXPECT_EQ(ctl->module(0).moduleStats().numVerifyFailures, 3u);
    EXPECT_EQ(ctl->module(0).maxWordWear(), 3u);
}

TEST_F(RetryTest, RetriesCostProgramTimePlusVerifyPoll)
{
    reliability::ReliabilityConfig rel = injection(1.0, 2);
    auto ctl = make(rel);
    MemRequest req;
    req.kind = ReqKind::write;
    req.addr = 0;
    req.size = 32;
    std::uint64_t id = ctl->enqueue(req);
    eq.run();
    ASSERT_TRUE(done.count(id));
    // A clean overwrite is ~18 us; three pulses plus two status
    // polls must take at least 3x the program plus the polls.
    EXPECT_GE(done[id].completedAt,
              3 * fromUs(18) + 2 * rel.verifyCost);
}

TEST_F(RetryTest, CleanMediaNeverRetriesAndMatchesBaseline)
{
    // p=0 with injection enabled must behave like injection off.
    auto ctl = make(injection(0.0, 3));
    MemRequest req;
    req.kind = ReqKind::write;
    req.addr = 0;
    req.size = 32;
    std::uint64_t id = ctl->enqueue(req);
    eq.run();
    ASSERT_TRUE(done.count(id));
    EXPECT_FALSE(done[id].failed);
    EXPECT_EQ(ctl->ctrlStats().verifyRetries, 0u);
    EXPECT_GE(done[id].completedAt, fromUs(18));
    EXPECT_LE(done[id].completedAt, fromUs(19));
}

TEST_F(RetryTest, FlakyMediaRecoversWithDataIntact)
{
    // A 50% failure rate with generous retries: every write must
    // still complete successfully (p_exhaust = 0.5^9) and the
    // functional image must match what was written.
    auto ctl = make(injection(0.5, 8), 2);
    std::vector<std::vector<std::uint8_t>> bufs;
    std::vector<std::uint8_t> shadow(16 * 32, 0);
    for (int i = 0; i < 16; ++i) {
        bufs.emplace_back(32);
        for (auto &b : bufs.back())
            b = std::uint8_t(i * 31 + 5);
        std::memcpy(shadow.data() + i * 32, bufs.back().data(), 32);
        MemRequest req;
        req.kind = ReqKind::write;
        req.addr = std::uint64_t(i) * 32;
        req.size = 32;
        req.writeFrom = bufs.back().data();
        ctl->enqueue(req);
    }
    eq.run();
    EXPECT_GT(ctl->ctrlStats().verifyRetries, 0u);
    EXPECT_EQ(ctl->ctrlStats().verifyFailedWrites, 0u);
    std::vector<std::uint8_t> out(shadow.size(), 0);
    ctl->functionalRead(0, out.data(), out.size());
    EXPECT_EQ(out, shadow);
}

class RemapTest : public ::testing::Test
{
  protected:
    SubsystemConfig
    config(const reliability::ReliabilityConfig &rel)
    {
        SubsystemConfig cfg;
        cfg.channels = 2;
        cfg.modulesPerChannel = 2;
        cfg.stripeBytes = 128;
        cfg.reliability = rel;
        return cfg;
    }

    std::unique_ptr<PramSubsystem>
    make(const SubsystemConfig &cfg)
    {
        auto sys = std::make_unique<PramSubsystem>(eq, cfg, "pram");
        sys->setCallback([this](const MemResponse &resp) {
            done[resp.id] = resp;
        });
        return sys;
    }

    /** One stripe-sized write of @p fill at stripe @p s. */
    std::uint64_t
    writeStripe(PramSubsystem &sys, std::uint64_t s,
                std::uint8_t fill)
    {
        buf_.assign(128, fill);
        MemRequest wr;
        wr.kind = ReqKind::write;
        wr.addr = s * 128;
        wr.size = 128;
        wr.writeFrom = buf_.data();
        std::uint64_t id = sys.enqueue(wr);
        eq.run();
        return id;
    }

    EventQueue eq;
    std::map<std::uint64_t, MemResponse> done;
    std::vector<std::uint8_t> buf_;
};

TEST_F(RemapTest, WornLineIsRetiredIntoSparePoolWithDataIntact)
{
    // Endurance 4 and a certain worn-failure rate: the 5th write to
    // the same stripe must exhaust its retries, retire the line into
    // the spare pool, and complete on the spare — gracefully, with
    // the latest data readable.
    reliability::ReliabilityConfig rel = injection(0.0, 1, 8);
    rel.enduranceWrites = 4;
    rel.wornWriteFailProb = 1.0;
    auto sys = make(config(rel));
    sys->initialize();
    std::uint32_t spares_before = sys->spareLinesFree();

    for (int i = 0; i < 7; ++i)
        writeStripe(*sys, 0, std::uint8_t(0x10 + i));

    const auto &st = sys->subsystemStats();
    EXPECT_GE(st.badLineRemaps, 1u);
    EXPECT_EQ(st.spareLinesUsed, st.badLineRemaps);
    EXPECT_LT(sys->spareLinesFree(), spares_before);
    EXPECT_GT(st.writesBeforeFirstRemap, 0u);
    EXPECT_GT(st.firstRemapTick, 0u);
    EXPECT_EQ(done.size(), 7u);
    for (const auto &[_, resp] : done)
        EXPECT_FALSE(resp.failed) << "remap must hide the failure";

    std::vector<std::uint8_t> out(128, 0);
    sys->functionalRead(0, out.data(), out.size());
    EXPECT_EQ(out, std::vector<std::uint8_t>(128, 0x16));
}

TEST_F(RemapTest, RemappedLineKeepsServingReadsAndWrites)
{
    reliability::ReliabilityConfig rel = injection(0.0, 1, 8);
    rel.enduranceWrites = 2;
    rel.wornWriteFailProb = 1.0;
    auto sys = make(config(rel));
    sys->initialize();

    for (int i = 0; i < 4; ++i)
        writeStripe(*sys, 1, std::uint8_t(0x40 + i));
    ASSERT_GE(sys->subsystemStats().badLineRemaps, 1u);

    // The logical stripe still round-trips through the spare.
    std::vector<std::uint8_t> out(128, 0);
    MemRequest rd;
    rd.kind = ReqKind::read;
    rd.addr = 128;
    rd.size = 128;
    rd.readInto = out.data();
    sys->enqueue(rd);
    eq.run();
    EXPECT_EQ(out, std::vector<std::uint8_t>(128, 0x43));
}

TEST_F(RemapTest, SparePoolReservationShrinksCapacity)
{
    SubsystemConfig plain;
    plain.channels = 2;
    plain.modulesPerChannel = 2;
    plain.stripeBytes = 128;
    EventQueue eq2;
    PramSubsystem a(eq2, plain, "plain");

    SubsystemConfig rel_cfg = plain;
    rel_cfg.reliability = injection(0.0, 1, 4);
    EventQueue eq3;
    PramSubsystem b(eq3, rel_cfg, "spared");
    EXPECT_EQ(b.capacity(), a.capacity() - 4 * 128);
    EXPECT_EQ(b.spareLinesFree(), 4u);
}

TEST_F(RemapTest, DisabledInjectionReservesNoSpares)
{
    auto sys = make(config(reliability::ReliabilityConfig{}));
    EXPECT_EQ(sys->spareLinesFree(), 0u);
    EXPECT_EQ(sys->maxLineWear(), 0u);
}

using RemapDeathTest = RemapTest;

TEST_F(RemapDeathTest, SpareExhaustionIsFatal)
{
    // Every write always fails: the line is retired, the spare fails
    // too, and the chain burns through the whole pool.
    reliability::ReliabilityConfig rel = injection(1.0, 0, 2);
    auto sys = make(config(rel));
    sys->initialize();
    EXPECT_DEATH(
        {
            setQuiet(true);
            for (int i = 0; i < 4; ++i)
                writeStripe(*sys, 0, 0xAB);
        },
        "spare pool exhausted");
}

} // namespace
} // namespace ctrl
} // namespace dramless
