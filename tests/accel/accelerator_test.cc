/**
 * @file
 * Tests of the accelerator's kernel offload and execution model
 * (Figure 9b): image download, PSC-staggered agent boot, completion,
 * IPC sampling and selective-erase hinting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "accel/accelerator.hh"
#include "fake_backend.hh"

namespace dramless
{
namespace accel
{
namespace
{

class AcceleratorTest : public ::testing::Test
{
  protected:
    AcceleratorTest() : backend(eq, fromNs(200), fromUs(10)) {}

    Accelerator &
    make(std::uint32_t num_pes = 8)
    {
        AcceleratorConfig cfg;
        cfg.numPes = num_pes;
        accel = std::make_unique<Accelerator>(eq, cfg, "accel");
        accel->attachBackend(&backend);
        return *accel;
    }

    /** Build a simple compute+load trace. */
    std::unique_ptr<VectorTrace>
    simpleTrace(std::uint64_t base)
    {
        std::vector<TraceItem> items;
        for (int i = 0; i < 8; ++i) {
            items.push_back(TraceItem::computeOf(1000));
            items.push_back(
                TraceItem::loadOf(base + std::uint64_t(i) * 512, 32));
        }
        return std::make_unique<VectorTrace>(std::move(items));
    }

    EventQueue eq;
    FakeBackend backend;
    std::unique_ptr<Accelerator> accel;
};

TEST_F(AcceleratorTest, SingleAgentLaunchCompletes)
{
    Accelerator &a = make();
    auto trace = simpleTrace(1 << 20);
    KernelLaunch launch;
    launch.agentTraces = {trace.get()};
    Tick completed = 0;
    a.launch(launch, [&](Tick when) { completed = when; });
    eq.run();
    EXPECT_GT(completed, 0u);
    EXPECT_FALSE(a.busy());
    EXPECT_TRUE(a.agent(0).finished());
    EXPECT_EQ(a.metrics().completedAt, completed);
    EXPECT_EQ(a.metrics().totalInstructions, 8000u);
}

TEST_F(AcceleratorTest, ImageDownloadPrecedesAgentBoot)
{
    Accelerator &a = make();
    auto trace = simpleTrace(1 << 20);
    KernelLaunch launch;
    launch.agentTraces = {trace.get()};
    launch.imageBytes = 4096;
    a.launch(launch, [](Tick) {});
    eq.run();
    const LaunchMetrics &m = a.metrics();
    EXPECT_GE(m.imageDownloadedAt, m.interruptAt);
    EXPECT_GT(m.firstAgentStartAt, m.imageDownloadedAt);
    // 4096/512 = 8 image chunk writes reached the backend.
    EXPECT_GE(backend.writes, 8u);
}

TEST_F(AcceleratorTest, ResidentImageSkipsDownload)
{
    Accelerator &a = make();
    auto trace = simpleTrace(1 << 20);
    KernelLaunch launch;
    launch.agentTraces = {trace.get()};
    launch.imageResident = true;
    a.launch(launch, [](Tick) {});
    eq.run();
    EXPECT_EQ(a.metrics().imageDownloadedAt, a.metrics().interruptAt);
}

TEST_F(AcceleratorTest, AgentsBootStaggeredByPsc)
{
    Accelerator &a = make();
    std::vector<std::unique_ptr<VectorTrace>> traces;
    KernelLaunch launch;
    for (int i = 0; i < 4; ++i) {
        traces.push_back(simpleTrace((1 + i) << 20));
        launch.agentTraces.push_back(traces.back().get());
    }
    launch.imageResident = true;
    Tick completed = 0;
    a.launch(launch, [&](Tick when) { completed = when; });
    eq.run();
    EXPECT_GT(completed, 0u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(a.agent(std::uint32_t(i)).finished());
    // Unused agents never ran.
    EXPECT_FALSE(a.agent(4).finished());
    // The PSC saw every scheduled agent go active.
    for (std::uint32_t i = 1; i <= 4; ++i)
        EXPECT_GT(a.psc().residency(i, PowerState::active, completed),
                  0u);
}

TEST_F(AcceleratorTest, OutputRegionHintsReachBackend)
{
    Accelerator &a = make();
    auto trace = simpleTrace(1 << 20);
    KernelLaunch launch;
    launch.agentTraces = {trace.get()};
    launch.outputRegions = {{0x100000, 65536}, {0x200000, 4096}};
    a.launch(launch, [](Tick) {});
    eq.run();
    ASSERT_EQ(backend.hints.size(), 2u);
    EXPECT_EQ(backend.hints[0].first, 0x100000u);
    EXPECT_EQ(backend.hints[1].second, 4096u);
}

TEST_F(AcceleratorTest, IpcSeriesIsRecorded)
{
    Accelerator &a = make();
    // A long compute gives several sample intervals.
    std::vector<TraceItem> items;
    for (int i = 0; i < 100; ++i)
        items.push_back(TraceItem::computeOf(100000));
    VectorTrace trace(std::move(items));
    KernelLaunch launch;
    launch.agentTraces = {&trace};
    launch.imageResident = true;
    a.launch(launch, [](Tick) {});
    eq.run();
    EXPECT_GE(a.ipcSeries().size(), 2u);
    // Sustained compute at 4 ops/cycle from one agent.
    EXPECT_NEAR(a.ipcSeries().samples().back().value, 0.0, 4.1);
    double peak = 0;
    for (const auto &p : a.ipcSeries().samples())
        peak = std::max(peak, p.value);
    EXPECT_GT(peak, 3.0);
}

TEST_F(AcceleratorTest, LaunchWhileBusyDies)
{
    Accelerator &a = make();
    auto trace = simpleTrace(1 << 20);
    KernelLaunch launch;
    launch.agentTraces = {trace.get()};
    a.launch(launch, [](Tick) {});
    EXPECT_DEATH(a.launch(launch, [](Tick) {}), "busy");
    eq.run();
}

TEST_F(AcceleratorTest, TooManyTracesDies)
{
    Accelerator &a = make(3); // server + 2 agents
    auto t1 = simpleTrace(1 << 20);
    auto t2 = simpleTrace(2 << 20);
    auto t3 = simpleTrace(3 << 20);
    KernelLaunch launch;
    launch.agentTraces = {t1.get(), t2.get(), t3.get()};
    EXPECT_DEATH(a.launch(launch, [](Tick) {}),
                 "more traces than agents");
}

} // namespace
} // namespace accel
} // namespace dramless
