/**
 * @file
 * Fixed-latency MemoryBackend used by the accelerator unit tests.
 */

#ifndef DRAMLESS_TESTS_FAKE_BACKEND_HH
#define DRAMLESS_TESTS_FAKE_BACKEND_HH

#include <cstdint>
#include <map>
#include <vector>

#include "accel/backend.hh"
#include "accel/trace.hh"
#include "sim/event_queue.hh"

namespace dramless
{
namespace accel
{

/** Completes reads/writes after fixed latencies. */
class FakeBackend : public MemoryBackend
{
  public:
    FakeBackend(EventQueue &eq, Tick read_latency, Tick write_latency,
                std::uint32_t accept_limit = 1000000)
        : eventq_(eq), readLatency_(read_latency),
          writeLatency_(write_latency), acceptLimit_(accept_limit),
          event_([this] { fire(); }, "fake.complete")
    {}

    void setCallback(Callback cb) override { cb_ = std::move(cb); }

    bool
    canAccept(std::uint32_t) const override
    {
        return pending_.size() < acceptLimit_;
    }

    std::uint64_t
    submit(std::uint64_t addr, std::uint32_t size,
           bool is_write) override
    {
        std::uint64_t id = nextId_++;
        if (is_write) {
            ++writes;
            writtenBytes += size;
        } else {
            ++reads;
            readBytes += size;
        }
        lastAddr = addr;
        Tick when = eventq_.curTick() +
                    (is_write ? writeLatency_ : readLatency_);
        pending_[when].push_back(id);
        eventq_.reschedule(&event_, pending_.begin()->first);
        return id;
    }

    void
    hintFutureWrite(std::uint64_t addr, std::uint64_t size) override
    {
        hints.emplace_back(addr, size);
    }

    std::uint64_t capacity() const override { return 1ull << 40; }

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writtenBytes = 0;
    std::uint64_t lastAddr = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hints;

  private:
    void
    fire()
    {
        Tick now = eventq_.curTick();
        while (!pending_.empty() && pending_.begin()->first <= now) {
            auto ids = std::move(pending_.begin()->second);
            pending_.erase(pending_.begin());
            for (auto id : ids) {
                if (cb_)
                    cb_(id, now);
            }
        }
        if (!pending_.empty())
            eventq_.reschedule(&event_, pending_.begin()->first);
    }

    EventQueue &eventq_;
    Tick readLatency_;
    Tick writeLatency_;
    std::size_t acceptLimit_;
    Callback cb_;
    std::map<Tick, std::vector<std::uint64_t>> pending_;
    std::uint64_t nextId_ = 1;
    EventFunctionWrapper event_;
};

/** In-memory vector-backed trace source. */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<TraceItem> items)
        : items_(std::move(items))
    {}

    bool
    next(TraceItem &out) override
    {
        if (pos_ >= items_.size())
            return false;
        out = items_[pos_++];
        return true;
    }

    /** Restart from the beginning (reuse across launches). */
    void rewind() { pos_ = 0; }

  private:
    std::vector<TraceItem> items_;
    std::size_t pos_ = 0;
};

} // namespace accel
} // namespace dramless

#endif // DRAMLESS_TESTS_FAKE_BACKEND_HH
