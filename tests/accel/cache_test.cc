/**
 * @file
 * Unit tests of the set-associative cache model and the PSC.
 */

#include <gtest/gtest.h>

#include "accel/cache.hh"
#include "accel/psc.hh"
#include "sim/random.hh"

namespace dramless
{
namespace accel
{
namespace
{

CacheConfig
tiny()
{
    // 4 sets x 2 ways x 64 B = 512 B.
    return CacheConfig{512, 64, 2, 1};
}

TEST(CacheTest, MissThenHit)
{
    SetAssocCache c(tiny(), "c");
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13F, false).hit); // same 64 B block
    EXPECT_FALSE(c.access(0x140, false).hit);
    EXPECT_EQ(c.cacheStats().hits, 2u);
    EXPECT_EQ(c.cacheStats().misses, 2u);
}

TEST(CacheTest, LruVictimSelection)
{
    SetAssocCache c(tiny(), "c");
    // Set index = (addr/64) % 4; 0x000, 0x100, 0x200 share set 0.
    c.access(0x000, false);
    c.access(0x100, false);
    c.access(0x000, false);     // refresh 0x000
    c.access(0x200, false);     // evicts 0x100 (LRU)
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_TRUE(c.contains(0x200));
}

TEST(CacheTest, DirtyEvictionReportsWriteback)
{
    SetAssocCache c(tiny(), "c");
    c.access(0x000, true); // dirty fill
    c.access(0x100, false);
    CacheAccessResult r = c.access(0x200, false); // evicts dirty 0x000
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, 0x000u);
    EXPECT_EQ(c.cacheStats().writebacks, 1u);
}

TEST(CacheTest, NoAllocateLeavesCacheUntouched)
{
    SetAssocCache c(tiny(), "c");
    CacheAccessResult r = c.access(0x300, true, false);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(c.contains(0x300));
    // But a no-allocate hit still marks dirty.
    c.access(0x300, false);
    c.access(0x300, true, false);
    c.access(0x340, false);
    CacheAccessResult ev = c.access(0x380, false);
    (void)ev; // different sets; just ensure no crash
    EXPECT_TRUE(c.contains(0x300));
}

TEST(CacheTest, WriteHitMakesBlockDirty)
{
    SetAssocCache c(tiny(), "c");
    c.access(0x000, false); // clean fill
    c.access(0x000, true);  // dirty it
    c.access(0x100, false);
    CacheAccessResult r = c.access(0x200, false);
    EXPECT_TRUE(r.writeback);
}

TEST(CacheTest, InvalidateAllEmptiesCache)
{
    SetAssocCache c(tiny(), "c");
    c.access(0x000, true);
    c.invalidateAll();
    EXPECT_FALSE(c.contains(0x000));
    EXPECT_FALSE(c.access(0x000, false).writeback);
}

TEST(CacheTest, BlockBaseAligns)
{
    SetAssocCache c(CacheConfig::l2Default(), "l2");
    EXPECT_EQ(c.blockBase(2345), 2048u);
    EXPECT_EQ(c.blockBase(1023), 0u);
}

TEST(CacheTest, DefaultsMatchPaperPlatform)
{
    // 64 KiB L1, 512 KiB L2 per PE (Section VI).
    EXPECT_EQ(CacheConfig::l1Default().capacityBytes, 64u * 1024);
    EXPECT_EQ(CacheConfig::l2Default().capacityBytes, 512u * 1024);
    // L2 block matches 512 B per channel across two channels.
    EXPECT_EQ(CacheConfig::l2Default().blockBytes, 1024u);
}

TEST(CacheTest, HitRateOnLoopedWorkingSet)
{
    SetAssocCache c(CacheConfig::l1Default(), "l1");
    // A 32 KiB working set fits; loop it twice.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 32 * 1024; a += 64)
            c.access(a, false);
    // Second pass hits everywhere: 512 misses, 512 hits.
    EXPECT_EQ(c.cacheStats().misses, 512u);
    EXPECT_EQ(c.cacheStats().hits, 512u);
}

TEST(CacheDeathTest, RejectsBadGeometry)
{
    EXPECT_DEATH(SetAssocCache(CacheConfig{512, 48, 2, 1}, "x"),
                 "power of two");
    EXPECT_DEATH(SetAssocCache(CacheConfig{512, 64, 3, 1}, "x"),
                 "mismatch");
}

TEST(PscTest, TracksResidency)
{
    PowerSleepController psc(2);
    EXPECT_EQ(psc.state(1), PowerState::sleep);
    psc.setState(1, PowerState::active, 100);
    psc.setState(1, PowerState::sleep, 300);
    EXPECT_EQ(psc.residency(1, PowerState::sleep, 400), 200u);
    EXPECT_EQ(psc.residency(1, PowerState::active, 400), 200u);
}

TEST(PscTest, OpenIntervalCountsUntilQueryTick)
{
    PowerSleepController psc(1);
    psc.setState(0, PowerState::active, 50);
    EXPECT_EQ(psc.residency(0, PowerState::active, 150), 100u);
    EXPECT_EQ(psc.residency(0, PowerState::sleep, 150), 50u);
}

TEST(PscDeathTest, RejectsBackwardsTransitions)
{
    PowerSleepController psc(1);
    psc.setState(0, PowerState::active, 100);
    EXPECT_DEATH(psc.setState(0, PowerState::sleep, 50), "before");
}

} // namespace
} // namespace accel
} // namespace dramless
