/**
 * @file
 * Unit tests of the MCU and the trace-driven processing element.
 */

#include <gtest/gtest.h>

#include <vector>

#include "accel/mcu.hh"
#include "accel/pe.hh"
#include "fake_backend.hh"

namespace dramless
{
namespace accel
{
namespace
{

class McuTest : public ::testing::Test
{
  protected:
    McuTest()
        : backend(eq, fromNs(100), fromUs(10)),
          mcu(eq, McuConfig{}, "mcu")
    {
        mcu.attachBackend(&backend);
    }

    EventQueue eq;
    FakeBackend backend;
    Mcu mcu;
};

TEST_F(McuTest, ReadCompletesAfterBackendLatency)
{
    Tick done = 0;
    mcu.read(0x1000, 512, [&](Tick when) { done = when; });
    eq.run();
    EXPECT_EQ(done, fromNs(100));
    EXPECT_EQ(backend.reads, 1u);
    EXPECT_EQ(backend.readBytes, 512u);
    EXPECT_TRUE(mcu.idle());
}

TEST_F(McuTest, PostedWriteNeedsNoCallback)
{
    mcu.write(0x2000, 32);
    eq.run();
    EXPECT_EQ(backend.writes, 1u);
    EXPECT_TRUE(mcu.idle());
}

TEST_F(McuTest, RequestOverheadSerializesAdmission)
{
    // Default overhead 20 ns: the second submit goes 20 ns later.
    std::vector<Tick> done;
    mcu.read(0, 32, [&](Tick w) { done.push_back(w); });
    mcu.read(64, 32, [&](Tick w) { done.push_back(w); });
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], fromNs(100));
    EXPECT_EQ(done[1], fromNs(120));
}

TEST_F(McuTest, HintsForwardToBackend)
{
    mcu.hintFutureWrite(0x100, 4096);
    ASSERT_EQ(backend.hints.size(), 1u);
    EXPECT_EQ(backend.hints[0].first, 0x100u);
    EXPECT_EQ(backend.hints[0].second, 4096u);
}

TEST_F(McuTest, BackpressureDrainsOnCompletions)
{
    // A backend that admits only two requests at a time: the MCU
    // must queue the rest and drain as completions free slots.
    FakeBackend tight(eq, fromUs(1), fromUs(1), /*accept_limit=*/2);
    Mcu m2(eq, McuConfig{fromNs(0), 64}, "m2");
    m2.attachBackend(&tight);
    int done_count = 0;
    for (int i = 0; i < 10; ++i)
        m2.read(std::uint64_t(i) * 64, 32,
                [&](Tick) { ++done_count; });
    EXPECT_GT(m2.outstanding(), 0u);
    eq.run();
    EXPECT_EQ(done_count, 10);
    EXPECT_TRUE(m2.idle());
    EXPECT_EQ(tight.reads, 10u);
}

TEST_F(McuTest, LatencyStatsSampled)
{
    mcu.read(0, 32, [](Tick) {});
    mcu.write(0, 32, [](Tick) {});
    eq.run();
    EXPECT_EQ(mcu.mcuStats().readLatencyNs.count(), 1u);
    EXPECT_NEAR(mcu.mcuStats().readLatencyNs.mean(), 100.0, 1.0);
    EXPECT_EQ(mcu.mcuStats().writeLatencyNs.count(), 1u);
    EXPECT_NEAR(mcu.mcuStats().writeLatencyNs.mean(), 10000.0, 50.0);
}

// ------------------------------- PE -------------------------------

class PeTest : public ::testing::Test
{
  protected:
    PeTest()
        : backend(eq, fromNs(200), fromUs(10)),
          mcu(eq, McuConfig{fromNs(0), 128}, "mcu"),
          pe(eq, PeConfig{}, "pe")
    {
        mcu.attachBackend(&backend);
        pe.attachMcu(&mcu);
        pe.setOnDone([this] { doneAt = eq.curTick(); });
    }

    void
    run(std::vector<TraceItem> items)
    {
        trace = std::make_unique<VectorTrace>(std::move(items));
        pe.setTrace(trace.get());
        pe.start(0);
        eq.run();
    }

    EventQueue eq;
    FakeBackend backend;
    Mcu mcu;
    ProcessingElement pe;
    std::unique_ptr<VectorTrace> trace;
    Tick doneAt = 0;
};

TEST_F(PeTest, ComputeRetiresAtEffectiveIssue)
{
    // 4000 instructions at 4/cycle = 1000 cycles = 1 us at 1 GHz.
    run({TraceItem::computeOf(4000)});
    EXPECT_TRUE(pe.finished());
    EXPECT_EQ(pe.peStats().instructions, 4000u);
    EXPECT_EQ(pe.peStats().computeCycles, 1000u);
    EXPECT_GE(doneAt, fromUs(1));
    EXPECT_LE(doneAt, fromUs(1) + fromNs(10));
}

TEST_F(PeTest, ColdLoadStallsForBackend)
{
    run({TraceItem::loadOf(0x1000, 32)});
    EXPECT_EQ(pe.peStats().l2MissReads, 1u);
    EXPECT_EQ(backend.reads, 1u);
    // The MCU fetched a whole 1 KiB L2 block (512 B per channel).
    EXPECT_EQ(backend.readBytes, 1024u);
    EXPECT_GE(pe.peStats().loadStallTicks, fromNs(200));
}

TEST_F(PeTest, WarmLoadsHitCaches)
{
    run({TraceItem::loadOf(0x1000, 32), TraceItem::loadOf(0x1000, 32),
         TraceItem::loadOf(0x1020, 32)});
    // One L2 miss; the rest are cache hits.
    EXPECT_EQ(backend.reads, 1u);
    EXPECT_EQ(pe.l1Stats().hits, 2u);
}

TEST_F(PeTest, SpatialLocalityWithinL2Block)
{
    // 16 loads covering half of one 1 KiB L2 block: one fetch.
    std::vector<TraceItem> items;
    for (int i = 0; i < 16; ++i)
        items.push_back(TraceItem::loadOf(0x2000 + i * 32, 32));
    run(items);
    EXPECT_EQ(backend.reads, 1u);
}

TEST_F(PeTest, WriteAllocateStoreMissFetchesBlock)
{
    // Default policy: a store miss fetches the L2 block (RMW in the
    // cache) and dirties it; the dirty line is flushed at kernel end.
    run({TraceItem::storeOf(0x8000, 32)});
    EXPECT_EQ(backend.reads, 1u);
    EXPECT_EQ(pe.peStats().l2MissReads, 1u);
    EXPECT_GT(pe.peStats().loadStallTicks, 0u);
    // End-of-kernel flush pushed the dirty line(s) out.
    EXPECT_GE(backend.writes, 1u);
}

TEST_F(PeTest, DirtyBlocksWriteBackAtBlockGranularity)
{
    // Dirty enough L2 sets to force dirty evictions: stores marching
    // through many blocks that map to the same sets.
    std::vector<TraceItem> items;
    std::uint64_t l2_bytes = PeConfig{}.l2.capacityBytes;
    for (int i = 0; i < 3; ++i) // 3x the L2 capacity
        for (std::uint64_t a = 0; a < l2_bytes; a += 1024)
            items.push_back(
                TraceItem::storeOf(std::uint64_t(i) * l2_bytes + a,
                                   32));
    run(items);
    EXPECT_GT(pe.peStats().writebackWrites, 0u);
    EXPECT_GT(backend.writes, 0u);
    // Writebacks carry whole L2 blocks.
    EXPECT_EQ(backend.writtenBytes % 1024, 0u);
}

TEST_F(PeTest, WritebackBackpressureStallsTheCore)
{
    // A slow-write backend plus streaming dirty evictions must fill
    // the posted-write queue and pause the core.
    std::vector<TraceItem> items;
    std::uint64_t l2_bytes = PeConfig{}.l2.capacityBytes;
    for (int i = 0; i < 4; ++i)
        for (std::uint64_t a = 0; a < l2_bytes; a += 1024)
            items.push_back(
                TraceItem::storeOf(std::uint64_t(i) * l2_bytes + a,
                                   32));
    run(items);
    EXPECT_GT(pe.peStats().storeStallTicks, 0u);
}

class PeNoAllocTest : public PeTest
{
  protected:
    PeNoAllocTest()
    {
        PeConfig cfg;
        cfg.writeAllocate = false;
        cfg.storeQueueDepth = 8;
        na = std::make_unique<ProcessingElement>(eq, cfg, "pe.na");
        na->attachMcu(&mcu);
        na->setOnDone([this] { doneAt = eq.curTick(); });
    }

    void
    runNa(std::vector<TraceItem> items)
    {
        trace = std::make_unique<VectorTrace>(std::move(items));
        na->setTrace(trace.get());
        na->start(0);
        eq.run();
    }

    std::unique_ptr<ProcessingElement> na;
};

TEST_F(PeNoAllocTest, MissedStoresDrainThroughStoreQueue)
{
    std::vector<TraceItem> items;
    for (int i = 0; i < 4; ++i)
        items.push_back(
            TraceItem::storeOf(0x8000 + std::uint64_t(i) * 512, 32));
    runNa(items);
    EXPECT_EQ(na->peStats().missedStoreWrites, 4u);
    EXPECT_EQ(backend.writes, 4u);
    // Store queue depth 8: no stall for only 4 stores.
    EXPECT_EQ(na->peStats().storeStallTicks, 0u);
    // Completion waits for the writes to drain (posted but tracked).
    EXPECT_GE(doneAt, fromUs(10));
}

TEST_F(PeNoAllocTest, StoreQueueBackpressureStalls)
{
    std::vector<TraceItem> items;
    for (int i = 0; i < 20; ++i)
        items.push_back(
            TraceItem::storeOf(0x8000 + std::uint64_t(i) * 512, 32));
    runNa(items);
    // Depth 8: the 9th missed store stalls until a write drains.
    EXPECT_GT(na->peStats().storeStallTicks, 0u);
    EXPECT_EQ(backend.writes, 20u);
}

TEST_F(PeTest, StoreHitsDirtyCacheThenFlushesAtKernelEnd)
{
    run({TraceItem::loadOf(0x3000, 32),
         TraceItem::storeOf(0x3000, 32)});
    EXPECT_EQ(pe.peStats().missedStoreWrites, 0u);
    // The dirtied line reached storage only via the final flush.
    EXPECT_GE(backend.writes, 1u);
    EXPECT_EQ(backend.reads, 1u);
}

TEST_F(PeTest, MixedTraceFinishesAndCountsCycles)
{
    run({TraceItem::computeOf(400), TraceItem::loadOf(0, 32),
         TraceItem::computeOf(400), TraceItem::storeOf(0, 32),
         TraceItem::computeOf(400)});
    EXPECT_TRUE(pe.finished());
    EXPECT_EQ(pe.peStats().instructions, 1200u);
    EXPECT_GT(pe.peStats().computeCycles, 0u);
    EXPECT_GT(pe.peStats().memAccessCycles, 0u);
}

TEST_F(PeTest, SampleDrainsAreIncremental)
{
    run({TraceItem::computeOf(4000)});
    EXPECT_EQ(pe.drainInstructionSample(), 4000u);
    EXPECT_EQ(pe.drainInstructionSample(), 0u);
}

TEST_F(PeTest, DeathOnMisuse)
{
    EXPECT_DEATH(pe.start(0), "without a trace");
    VectorTrace t({TraceItem::computeOf(10)});
    pe.setTrace(&t);
    pe.start(0);
    EXPECT_DEATH(pe.start(0), "double start");
    eq.run();
}

} // namespace
} // namespace accel
} // namespace dramless
