/**
 * @file
 * Tests of the conservative sharded event kernel: window protocol
 * timing, lookahead enforcement, worker-count equivalence, and a
 * randomized mailbox-ordering stress asserting that delivery order
 * never depends on send interleaving.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_pool.hh"
#include "sim/pdes.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace pdes
{
namespace
{

constexpr Tick kHop = fromUs(1.0);

TEST(PdesKernelTest, PingPongTiming)
{
    // Two clusters exchanging one message per hop: every delivery
    // must land exactly one hop after its send, in send order.
    ShardedKernel kernel(kHop);
    Cluster &a = kernel.addCluster("a");
    Cluster &b = kernel.addCluster("b");

    const int hops = 8;
    std::vector<Tick> a_log, b_log;
    std::function<void(int)> bounce = [&](int left) {
        Cluster &here = (left % 2 == 0) ? a : b;
        Cluster &there = (left % 2 == 0) ? b : a;
        (here.id() == a.id() ? a_log : b_log)
            .push_back(here.eq().curTick());
        if (left == 0)
            return;
        kernel.send(here, there, here.eq().curTick() + kHop,
                    [&, left] { bounce(left - 1); });
    };

    EventPool seed(a.eq(), "seed");
    seed.schedule(0, [&] { bounce(hops); });
    kernel.run(1);

    ASSERT_EQ(a_log.size(), 5u);
    ASSERT_EQ(b_log.size(), 4u);
    for (std::size_t i = 0; i < a_log.size(); ++i)
        EXPECT_EQ(a_log[i], Tick(2 * i) * kHop);
    for (std::size_t i = 0; i < b_log.size(); ++i)
        EXPECT_EQ(b_log[i], Tick(2 * i + 1) * kHop);

    const KernelStats &ks = kernel.kernelStats();
    EXPECT_EQ(ks.messages, std::uint64_t(hops));
    // One window per occupied tick: nothing else is ever pending.
    EXPECT_EQ(ks.windows, std::uint64_t(hops) + 1);
    EXPECT_EQ(ks.events, std::uint64_t(hops) + 1);
}

TEST(PdesKernelTest, SetupSendsDeliverBeforeFirstWindow)
{
    ShardedKernel kernel(kHop);
    Cluster &a = kernel.addCluster("a");
    Cluster &b = kernel.addCluster("b");
    std::vector<int> order;
    // Pre-run mail is not bounded by any window and may carry any
    // timestamp, including tick 0; delivery is (tick, src, seq).
    kernel.send(a, b, 5, [&] { order.push_back(2); });
    kernel.send(a, b, 0, [&] { order.push_back(1); });
    kernel.run(1);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(PdesKernelTest, ZeroLookaheadRefused)
{
    EXPECT_DEATH(ShardedKernel(0), "lookahead");
}

TEST(PdesKernelTest, LookaheadViolationDies)
{
    // A send dated inside the currently executing window must panic:
    // the receiver may already be past that tick.
    EXPECT_DEATH(
        {
            ShardedKernel kernel(kHop);
            Cluster &a = kernel.addCluster("a");
            Cluster &b = kernel.addCluster("b");
            EventPool seed(a.eq(), "seed");
            seed.schedule(100, [&] {
                kernel.send(a, b, a.eq().curTick(), [] {});
            });
            kernel.run(1);
        },
        "lookahead");
}

/**
 * Build a fan-in topology: @p srcs source clusters each firing
 * @p burst messages at each of @p rounds shared ticks into one sink
 * cluster, with per-source send-issue order shuffled by @p seed.
 * @return the sink's observed payload log after running on
 * @p workers threads.
 */
std::vector<std::uint32_t>
fanInLog(unsigned srcs, unsigned burst, unsigned rounds,
         std::uint64_t seed, unsigned workers)
{
    ShardedKernel kernel(kHop);
    Cluster &sink = kernel.addCluster("sink");
    std::vector<Cluster *> sources;
    for (unsigned s = 0; s < srcs; ++s)
        sources.push_back(
            &kernel.addCluster("src" + std::to_string(s)));

    std::vector<std::uint32_t> log;
    std::vector<std::unique_ptr<EventPool>> seeds;
    std::uint64_t rng = seed ? seed : 1;
    auto next = [&rng] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return std::uint32_t(rng >> 33);
    };

    for (unsigned s = 0; s < srcs; ++s) {
        seeds.push_back(
            std::make_unique<EventPool>(sources[s]->eq(), "seed"));
        for (unsigned r = 0; r < rounds; ++r) {
            // Shuffle the issue order of the burst within the tick:
            // the (when, src, seq) key must erase it... except seq,
            // which preserves exactly the per-source program order.
            std::vector<unsigned> order(burst);
            for (unsigned i = 0; i < burst; ++i)
                order[i] = i;
            for (unsigned i = burst; i > 1; --i)
                std::swap(order[i - 1], order[next() % i]);
            Tick at = Tick(r) * kHop;
            seeds.back()->schedule(at, [&, s, r, at, order] {
                for (unsigned idx : order) {
                    std::uint32_t payload =
                        (s << 16) | (r << 8) | idx;
                    kernel.send(*sources[s], sink, at + kHop,
                                [&log, payload] {
                                    log.push_back(payload);
                                });
                }
            });
        }
    }
    kernel.run(workers);
    EXPECT_EQ(kernel.kernelStats().messages,
              std::uint64_t(srcs) * burst * rounds);
    return log;
}

TEST(PdesKernelTest, MailboxOrderIndependentOfSendOrder)
{
    // Same-tick fan-in from several sources: delivery at the sink is
    // sorted by (tick, source, per-source sequence), where the
    // per-source sequence is the order *send was issued* in, i.e.
    // each source's shuffled program order is preserved while the
    // interleaving across sources is canonicalized.
    for (std::uint64_t seed : {std::uint64_t(42), std::uint64_t(7),
                               std::uint64_t(1234)}) {
        auto reference = fanInLog(3, 5, 4, seed, 1);
        ASSERT_EQ(reference.size(), 3u * 5 * 4);
        for (std::size_t i = 1; i < reference.size(); ++i) {
            // Rounds (ticks) ascend; within one tick, source index
            // ascends — whatever order the sends were issued in.
            std::uint32_t prev_round =
                (reference[i - 1] >> 8) & 0xff;
            std::uint32_t round = (reference[i] >> 8) & 0xff;
            if (prev_round == round)
                EXPECT_LE(reference[i - 1] >> 16,
                          reference[i] >> 16);
            else
                EXPECT_LT(prev_round, round);
        }
        // Threaded execution reproduces the serial log exactly; the
        // per-source shuffle only permutes idx *within* one
        // (tick, source) group, never the group interleaving.
        EXPECT_EQ(fanInLog(3, 5, 4, seed, 2), reference);
        EXPECT_EQ(fanInLog(3, 5, 4, seed, 4), reference);
    }
}

TEST(PdesKernelTest, WorkerCountEquivalence)
{
    // A ring of clusters forwarding tokens: per-cluster event logs
    // must match between serial and threaded execution exactly.
    auto runRing = [&](unsigned workers) {
        ShardedKernel kernel(kHop);
        const unsigned n = 4;
        std::vector<Cluster *> ring;
        for (unsigned i = 0; i < n; ++i)
            ring.push_back(
                &kernel.addCluster("r" + std::to_string(i)));
        std::vector<std::vector<Tick>> logs(n);
        std::function<void(unsigned, int)> forward =
            [&](unsigned at, int left) {
                logs[at].push_back(ring[at]->eq().curTick());
                if (left == 0)
                    return;
                unsigned nxt = (at + 1) % n;
                kernel.send(*ring[at], *ring[nxt],
                            ring[at]->eq().curTick() + kHop,
                            [&, nxt, left] {
                                forward(nxt, left - 1);
                            });
            };
        std::vector<std::unique_ptr<EventPool>> seeds;
        for (unsigned i = 0; i < n; ++i) {
            seeds.push_back(
                std::make_unique<EventPool>(ring[i]->eq(), "seed"));
            // Every cluster launches its own token, so several run
            // concurrently in every window.
            seeds.back()->schedule(Tick(i) * (kHop / 2),
                                   [&, i] { forward(i, 17); });
        }
        kernel.run(workers);
        return logs;
    };

    auto serial = runRing(1);
    EXPECT_EQ(runRing(2), serial);
    EXPECT_EQ(runRing(4), serial);
    EXPECT_EQ(runRing(0), serial); // auto = one per core
}

} // anonymous namespace
} // namespace pdes
} // namespace dramless
