/**
 * @file
 * Tests of the co-simulated serving fleet on the sharded kernel:
 * the shards=1 vs shards=N differential (bit-identical ServingResult
 * JSON including the full per-request timestamp table), run-to-run
 * determinism, admission bounds, and timing invariants of the
 * dispatch hop.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "serve/arrival.hh"
#include "serve/cosim.hh"
#include "sim/json.hh"
#include "workload/polybench.hh"
#include "workload/workload_model.hh"

namespace dramless
{
namespace serve
{
namespace
{

/** Tiny workload mix so each kernel launch costs microseconds. */
std::vector<std::shared_ptr<const workload::WorkloadModel>>
tinyMix()
{
    return {
        workload::modelFor(workload::Polybench::byName("gemver"))
            ->scaled(0.002),
        workload::modelFor(workload::Polybench::byName("trisolv"))
            ->scaled(0.002),
    };
}

CoSimConfig
baseConfig()
{
    CoSimConfig cfg;
    cfg.fleet.numNodes = 3;
    cfg.fleet.queueCapacity = 4;
    cfg.fleet.policy = DispatchPolicy::joinShortestQueue;
    cfg.node.numPes = 4;
    cfg.node.seed = 7;
    return cfg;
}

std::vector<Request>
poissonSchedule(std::uint64_t n, double rate_per_sec,
                std::uint64_t seed)
{
    ArrivalConfig ac;
    ac.numRequests = n;
    ac.ratePerSec = rate_per_sec;
    ac.seed = seed;
    ac.mixWeights = {2.0, 1.0};
    return PoissonArrivals(ac).generate();
}

std::string
resultJson(const ServingResult &res)
{
    std::ostringstream os;
    json::JsonWriter w(os, /*pretty=*/false);
    // Full per-request table: "bit-identical" means every timestamp
    // of every request, not just the aggregates.
    res.writeJson(w, 0, /*with_records=*/true);
    return os.str();
}

TEST(CoSimFleetTest, ShardCountsAreBitIdentical)
{
    auto schedule = poissonSchedule(24, 30000.0, 11);
    CoSimConfig cfg = baseConfig();

    cfg.node.shards = 1;
    CoSimFleet serial(cfg, tinyMix());
    ServingResult ref = serial.run(schedule);
    std::string ref_json = resultJson(ref);
    EXPECT_GT(ref.completed, 0u);

    for (unsigned shards : {2u, 4u, 0u}) {
        cfg.node.shards = shards;
        CoSimFleet fleet(cfg, tinyMix());
        ServingResult got = fleet.run(schedule);
        EXPECT_EQ(resultJson(got), ref_json)
            << "shards=" << shards
            << " diverged from the serial kernel";
        EXPECT_EQ(fleet.kernelStats().messages,
                  serial.kernelStats().messages);
        EXPECT_EQ(fleet.kernelStats().windows,
                  serial.kernelStats().windows);
        EXPECT_EQ(fleet.kernelStats().events,
                  serial.kernelStats().events);
    }
}

TEST(CoSimFleetTest, RunToRunDeterminism)
{
    auto schedule = poissonSchedule(16, 20000.0, 3);
    CoSimConfig cfg = baseConfig();
    cfg.node.shards = 4;
    CoSimFleet fleet(cfg, tinyMix());
    std::string first = resultJson(fleet.run(schedule));
    std::string second = resultJson(fleet.run(schedule));
    EXPECT_EQ(first, second);
}

TEST(CoSimFleetTest, HopTimingInvariants)
{
    auto schedule = poissonSchedule(12, 15000.0, 5);
    CoSimConfig cfg = baseConfig();
    CoSimFleet fleet(cfg, tinyMix());
    ServingResult res = fleet.run(schedule);
    const Tick hop = fleet.hopLatency();
    ASSERT_GT(hop, 0u);

    for (const RequestRecord &rec : res.records) {
        if (rec.rejected) {
            EXPECT_EQ(rec.completion, rec.arrival);
            continue;
        }
        // Service cannot start before the dispatch message crossed
        // the link, and every launch takes real simulated time.
        EXPECT_GE(rec.start, rec.dispatch + hop);
        EXPECT_GT(rec.completion, rec.start);
        EXPECT_GE(rec.node, 0);
        EXPECT_LT(rec.node, std::int32_t(cfg.fleet.numNodes));
    }
    // Dispatch + completion notice per admitted request.
    EXPECT_EQ(fleet.kernelStats().messages, 2 * res.completed);
    EXPECT_GT(fleet.kernelStats().windows, 0u);
}

TEST(CoSimFleetTest, AdmissionBoundRejectsBursts)
{
    // One node, no waiting room, a burst at one tick: exactly one
    // request is admitted before the dispatcher's view fills.
    CoSimConfig cfg = baseConfig();
    cfg.fleet.numNodes = 1;
    cfg.fleet.queueCapacity = 0;
    std::vector<Request> burst(6);
    for (std::size_t i = 0; i < burst.size(); ++i) {
        burst[i].id = i;
        burst[i].arrival = fromUs(1.0);
        burst[i].workloadIndex = 0;
    }
    CoSimFleet fleet(cfg, tinyMix());
    ServingResult res = fleet.run(burst);
    EXPECT_EQ(res.offered, burst.size());
    EXPECT_EQ(res.completed, 1u);
    EXPECT_EQ(res.rejected, burst.size() - 1);
}

TEST(CoSimFleetTest, PriorityAndPolicyKnobsChangeOutcomes)
{
    auto schedule = poissonSchedule(20, 40000.0, 9);
    CoSimConfig cfg = baseConfig();
    cfg.fleet.policy = DispatchPolicy::roundRobin;
    CoSimFleet rr(cfg, tinyMix());
    ServingResult rr_res = rr.run(schedule);
    EXPECT_EQ(rr_res.policy, "rr");
    EXPECT_EQ(rr_res.completed + rr_res.rejected, rr_res.offered);
    // The schedule must actually exercise both mix entries.
    bool saw[2] = {false, false};
    for (const auto &rec : rr_res.records)
        saw[rec.workloadIndex] = true;
    EXPECT_TRUE(saw[0]);
    EXPECT_TRUE(saw[1]);
}

} // anonymous namespace
} // namespace serve
} // namespace dramless
