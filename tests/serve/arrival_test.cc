/**
 * @file
 * Tests of the open-loop arrival processes: schedule determinism
 * (the property the serving results' reproducibility rests on),
 * statistical sanity of the Poisson and MMPP generators, mix
 * sampling, trace replay, and config validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "serve/arrival.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace serve
{
namespace
{

ArrivalConfig
baseConfig()
{
    ArrivalConfig cfg;
    cfg.ratePerSec = 10000.0;
    cfg.numRequests = 2000;
    cfg.seed = 42;
    return cfg;
}

void
expectIdentical(const std::vector<Request> &a,
                const std::vector<Request> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << i;
        EXPECT_EQ(a[i].arrival, b[i].arrival) << i;
        EXPECT_EQ(a[i].workloadIndex, b[i].workloadIndex) << i;
        EXPECT_EQ(a[i].priority, b[i].priority) << i;
    }
}

void
expectWellFormed(const std::vector<Request> &s, std::uint64_t count)
{
    ASSERT_EQ(s.size(), count);
    for (std::size_t i = 0; i < s.size(); ++i) {
        EXPECT_EQ(s[i].id, i);
        if (i > 0)
            EXPECT_GE(s[i].arrival, s[i - 1].arrival);
    }
}

/** Mean inter-arrival gap in seconds. */
double
meanGapSec(const std::vector<Request> &s)
{
    return toSec(s.back().arrival) / double(s.size());
}

/** Coefficient of variation of the inter-arrival gaps. */
double
gapCv(const std::vector<Request> &s)
{
    std::vector<double> gaps;
    Tick prev = 0;
    for (const Request &r : s) {
        gaps.push_back(toSec(r.arrival - prev));
        prev = r.arrival;
    }
    double mean = 0.0;
    for (double g : gaps)
        mean += g;
    mean /= double(gaps.size());
    double var = 0.0;
    for (double g : gaps)
        var += (g - mean) * (g - mean);
    var /= double(gaps.size());
    return std::sqrt(var) / mean;
}

TEST(PoissonArrivalsTest, SameSeedIdenticalSchedule)
{
    auto cfg = baseConfig();
    cfg.mixWeights = {0.6, 0.3, 0.1};
    PoissonArrivals a(cfg), b(cfg);
    auto sa = a.generate();
    expectWellFormed(sa, cfg.numRequests);
    // A second instance with the same config and a repeated call on
    // the same instance both reproduce the schedule bit-identically.
    expectIdentical(sa, b.generate());
    expectIdentical(sa, a.generate());
}

TEST(PoissonArrivalsTest, DifferentSeedDifferentSchedule)
{
    auto cfg = baseConfig();
    PoissonArrivals a(cfg);
    cfg.seed = 43;
    PoissonArrivals b(cfg);
    auto sa = a.generate(), sb = b.generate();
    bool any_diff = false;
    for (std::size_t i = 0; i < sa.size(); ++i)
        any_diff |= sa[i].arrival != sb[i].arrival;
    EXPECT_TRUE(any_diff);
}

TEST(PoissonArrivalsTest, MeanRateMatchesConfig)
{
    auto cfg = baseConfig();
    cfg.numRequests = 20000;
    auto s = PoissonArrivals(cfg).generate();
    // Mean gap must be 1/rate within a loose sampling tolerance.
    EXPECT_NEAR(meanGapSec(s), 1.0 / cfg.ratePerSec,
                0.05 / cfg.ratePerSec);
    // Exponential gaps: coefficient of variation ~ 1.
    EXPECT_NEAR(gapCv(s), 1.0, 0.1);
}

TEST(PoissonArrivalsTest, MixWeightsRespected)
{
    auto cfg = baseConfig();
    cfg.mixWeights = {0.0, 1.0, 0.0};
    for (const Request &r : PoissonArrivals(cfg).generate())
        ASSERT_EQ(r.workloadIndex, 1u);

    cfg.mixWeights = {3.0, 1.0};
    cfg.numRequests = 20000;
    std::uint64_t first = 0;
    for (const Request &r : PoissonArrivals(cfg).generate())
        first += r.workloadIndex == 0 ? 1 : 0;
    EXPECT_NEAR(double(first) / double(cfg.numRequests), 0.75, 0.02);
}

TEST(PoissonArrivalsTest, MixPrioritiesFollowWorkload)
{
    auto cfg = baseConfig();
    cfg.mixWeights = {1.0, 1.0};
    cfg.mixPriorities = {0, 7};
    for (const Request &r : PoissonArrivals(cfg).generate())
        EXPECT_EQ(r.priority, r.workloadIndex == 1 ? 7u : 0u);
}

TEST(MmppArrivalsTest, SameSeedIdenticalSchedule)
{
    auto cfg = baseConfig();
    MmppArrivals::Burst burst;
    MmppArrivals a(cfg, burst), b(cfg, burst);
    auto sa = a.generate();
    expectWellFormed(sa, cfg.numRequests);
    expectIdentical(sa, b.generate());
    expectIdentical(sa, a.generate());
}

TEST(MmppArrivalsTest, BurstierThanPoisson)
{
    auto cfg = baseConfig();
    cfg.numRequests = 20000;
    MmppArrivals::Burst burst;
    burst.burstMultiplier = 10.0;
    auto poisson = PoissonArrivals(cfg).generate();
    auto mmpp = MmppArrivals(cfg, burst).generate();
    // Modulation adds variance on top of the exponential gaps; the
    // burst stream's inter-arrival CV must visibly exceed Poisson's.
    EXPECT_GT(gapCv(mmpp), gapCv(poisson) * 1.1);
}

TEST(TraceArrivalsTest, ReplaysAndRewritesIds)
{
    std::vector<Request> trace(3);
    trace[0].arrival = fromUs(10.0);
    trace[0].id = 99; // ids in the input are ignored
    trace[1].arrival = fromUs(10.0); // equal ticks are fine
    trace[2].arrival = fromUs(30.0);
    trace[2].workloadIndex = 1;
    TraceArrivals t(trace);
    auto s = t.generate();
    expectWellFormed(s, 3);
    EXPECT_EQ(s[2].workloadIndex, 1u);
    expectIdentical(s, t.generate());
}

TEST(TraceArrivalsDeathTest, RejectsUnsortedTrace)
{
    std::vector<Request> trace(2);
    trace[0].arrival = fromUs(20.0);
    trace[1].arrival = fromUs(10.0);
    EXPECT_EXIT(TraceArrivals{trace},
                ::testing::ExitedWithCode(1), "not sorted");
}

TEST(ArrivalConfigDeathTest, RejectsInvalidConfigs)
{
    auto bad_rate = baseConfig();
    bad_rate.ratePerSec = 0.0;
    EXPECT_EXIT(PoissonArrivals{bad_rate},
                ::testing::ExitedWithCode(1), "rate must be positive");

    auto empty_mix = baseConfig();
    empty_mix.mixWeights = {};
    EXPECT_EXIT(PoissonArrivals{empty_mix},
                ::testing::ExitedWithCode(1), "non-empty");

    auto negative = baseConfig();
    negative.mixWeights = {1.0, -0.5};
    EXPECT_EXIT(PoissonArrivals{negative},
                ::testing::ExitedWithCode(1), ">= 0");

    auto zero_sum = baseConfig();
    zero_sum.mixWeights = {0.0, 0.0};
    EXPECT_EXIT(PoissonArrivals{zero_sum},
                ::testing::ExitedWithCode(1), "sum > 0");

    auto skewed = baseConfig();
    skewed.mixWeights = {1.0, 1.0};
    skewed.mixPriorities = {1};
    EXPECT_EXIT(PoissonArrivals{skewed},
                ::testing::ExitedWithCode(1), "parallel");

    MmppArrivals::Burst bad_burst;
    bad_burst.burstMultiplier = 0.5;
    EXPECT_EXIT((MmppArrivals{baseConfig(), bad_burst}),
                ::testing::ExitedWithCode(1), ">= 1");
}

} // namespace
} // namespace serve
} // namespace dramless
