/**
 * @file
 * Tests of the fleet queueing simulation: per-request timestamps on
 * handcrafted schedules, admission bounds and rejection, the two
 * dispatch policies, priority scheduling, metric roll-up consistency
 * against the exact percentile reference, and run() determinism.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "serve/arrival.hh"
#include "serve/fleet.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace dramless
{
namespace serve
{
namespace
{

/** A schedule with the given arrival ticks (single workload 0). */
std::vector<Request>
scheduleAt(const std::vector<Tick> &arrivals)
{
    std::vector<Request> s(arrivals.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        s[i].id = i;
        s[i].arrival = arrivals[i];
    }
    return s;
}

TEST(FleetTest, SingleNodeFifoTimestamps)
{
    FleetConfig cfg;
    cfg.numNodes = 1;
    cfg.queueCapacity = 8;
    const Tick service = fromUs(100.0);
    Fleet fleet(cfg, {service});

    auto res =
        fleet.run(scheduleAt({0, fromUs(10.0), fromUs(250.0)}));
    ASSERT_EQ(res.records.size(), 3u);
    // First request starts immediately.
    EXPECT_EQ(res.records[0].start, 0u);
    EXPECT_EQ(res.records[0].completion, service);
    EXPECT_EQ(res.records[0].queueingTicks(), 0u);
    // Second queues behind it and starts at its completion.
    EXPECT_EQ(res.records[1].dispatch, fromUs(10.0));
    EXPECT_EQ(res.records[1].start, service);
    EXPECT_EQ(res.records[1].completion, 2 * service);
    EXPECT_EQ(res.records[1].queueingTicks(),
              service - fromUs(10.0));
    // Third arrives after the node drained: no queueing.
    EXPECT_EQ(res.records[2].start, fromUs(250.0));
    EXPECT_EQ(res.records[2].queueingTicks(), 0u);
    EXPECT_EQ(res.completed, 3u);
    EXPECT_EQ(res.rejected, 0u);
    EXPECT_DOUBLE_EQ(res.completionRatio(), 1.0);
    EXPECT_EQ(res.lastCompletion, fromUs(350.0));
}

TEST(FleetTest, RejectsBeyondQueueCapacity)
{
    FleetConfig cfg;
    cfg.numNodes = 1;
    cfg.queueCapacity = 1; // one waiting slot + one in service
    Fleet fleet(cfg, {fromUs(1000.0)});

    auto res = fleet.run(scheduleAt({0, 1, 2, 3}));
    EXPECT_FALSE(res.records[0].rejected); // in service
    EXPECT_FALSE(res.records[1].rejected); // waiting
    EXPECT_TRUE(res.records[2].rejected);
    EXPECT_TRUE(res.records[3].rejected);
    EXPECT_EQ(res.records[2].node, -1);
    EXPECT_EQ(res.offered, 4u);
    EXPECT_EQ(res.completed, 2u);
    EXPECT_EQ(res.rejected, 2u);
    EXPECT_DOUBLE_EQ(res.completionRatio(), 0.5);
    // Rejected rows keep benign timestamps at the arrival tick.
    EXPECT_EQ(res.records[2].endToEndTicks(), 0u);
}

TEST(FleetTest, CompletionAtArrivalTickFreesTheSlot)
{
    FleetConfig cfg;
    cfg.numNodes = 1;
    cfg.queueCapacity = 0; // admission only onto an idle node
    const Tick service = fromUs(50.0);
    Fleet fleet(cfg, {service});

    // Second arrival lands exactly at the first one's completion:
    // the finished request vacates before admission is decided.
    auto res = fleet.run(scheduleAt({0, service}));
    EXPECT_FALSE(res.records[1].rejected);
    EXPECT_EQ(res.records[1].start, service);
    // A hair earlier and the node is still busy: rejected.
    auto res2 = fleet.run(scheduleAt({0, service - 1}));
    EXPECT_TRUE(res2.records[1].rejected);
}

TEST(FleetTest, JoinShortestQueuePicksLeastLoaded)
{
    FleetConfig cfg;
    cfg.numNodes = 2;
    cfg.policy = DispatchPolicy::joinShortestQueue;
    Fleet fleet(cfg, {fromUs(1000.0)});

    auto res = fleet.run(scheduleAt({0, 1, 2, 3}));
    // Ties break toward the lowest node id, so the spread is
    // 0, 1, then back to 0 (both busy, equal occupancy), then 1.
    EXPECT_EQ(res.records[0].node, 0);
    EXPECT_EQ(res.records[1].node, 1);
    EXPECT_EQ(res.records[2].node, 0);
    EXPECT_EQ(res.records[3].node, 1);
}

TEST(FleetTest, RoundRobinRotatesAndSkipsFullNodes)
{
    FleetConfig cfg;
    cfg.numNodes = 3;
    cfg.policy = DispatchPolicy::roundRobin;
    cfg.queueCapacity = 0;
    Fleet fleet(cfg, {fromUs(1000.0)});

    // Four back-to-back arrivals on three nodes: the fourth finds
    // node 0 (its rotation target) busy with no waiting room and
    // every other node equally full — rejected.
    auto res = fleet.run(scheduleAt({0, 1, 2, 3}));
    EXPECT_EQ(res.records[0].node, 0);
    EXPECT_EQ(res.records[1].node, 1);
    EXPECT_EQ(res.records[2].node, 2);
    EXPECT_TRUE(res.records[3].rejected);
}

TEST(FleetTest, PrioritySchedulingRunsHighestFirst)
{
    FleetConfig cfg;
    cfg.numNodes = 1;
    cfg.queueCapacity = 8;
    cfg.priorityScheduling = true;
    const Tick service = fromUs(100.0);
    Fleet fleet(cfg, {service, service});

    auto schedule = scheduleAt(
        {0, fromUs(10.0), fromUs(20.0), fromUs(30.0)});
    schedule[1].priority = 1;
    schedule[2].priority = 5;
    schedule[3].priority = 5;
    auto res = fleet.run(schedule);
    // While request 0 serves, 1..3 queue; highest priority first,
    // FIFO within the tied priority level.
    EXPECT_EQ(res.records[2].start, 1 * service);
    EXPECT_EQ(res.records[3].start, 2 * service);
    EXPECT_EQ(res.records[1].start, 3 * service);

    // The same schedule under plain FIFO serves in arrival order.
    cfg.priorityScheduling = false;
    auto fifo = Fleet(cfg, {service, service}).run(schedule);
    EXPECT_EQ(fifo.records[1].start, 1 * service);
    EXPECT_EQ(fifo.records[2].start, 2 * service);
    EXPECT_EQ(fifo.records[3].start, 3 * service);
}

TEST(FleetTest, ServiceTimeTableIndexedByWorkload)
{
    FleetConfig cfg;
    cfg.numNodes = 2;
    Fleet fleet(cfg, {fromUs(10.0), fromUs(500.0)});

    auto schedule = scheduleAt({0, 0});
    schedule[1].workloadIndex = 1;
    auto res = fleet.run(schedule);
    EXPECT_EQ(res.records[0].completion, fromUs(10.0));
    EXPECT_EQ(res.records[1].completion, fromUs(500.0));
}

TEST(FleetTest, MetricsMatchRecords)
{
    FleetConfig cfg;
    cfg.numNodes = 2;
    cfg.queueCapacity = 4;
    ArrivalConfig acfg;
    acfg.ratePerSec = 20000.0;
    acfg.numRequests = 500;
    acfg.seed = 7;
    Fleet fleet(cfg, {fromUs(80.0)});
    auto res = fleet.run(PoissonArrivals(acfg).generate());

    // Counters must tie out against the per-request table, and the
    // rolled-up percentiles must equal the exact reference computed
    // from the same records.
    std::uint64_t completed = 0, rejected = 0;
    std::vector<double> queue_us, e2e_us;
    for (const auto &r : res.records) {
        if (r.rejected) {
            ++rejected;
            continue;
        }
        ++completed;
        queue_us.push_back(toUs(r.queueingTicks()));
        e2e_us.push_back(toUs(r.endToEndTicks()));
    }
    EXPECT_EQ(res.completed, completed);
    EXPECT_EQ(res.rejected, rejected);
    EXPECT_EQ(res.offered, completed + rejected);
    EXPECT_DOUBLE_EQ(res.p50QueueUs,
                     stats::percentileExact(queue_us, 0.50));
    EXPECT_DOUBLE_EQ(res.p99QueueUs,
                     stats::percentileExact(queue_us, 0.99));
    EXPECT_DOUBLE_EQ(res.p999E2eUs,
                     stats::percentileExact(e2e_us, 0.999));
    // Histogram totals exclude nothing but rejections.
    EXPECT_EQ(res.e2eLatencyUs.totalSamples(), completed);
    // And the histogram percentile estimate tracks the exact one to
    // within a bucket width.
    double width = res.e2eLatencyUs.bucketHigh(0) -
                   res.e2eLatencyUs.bucketLow(0);
    EXPECT_NEAR(res.e2eLatencyUs.percentile(0.99), res.p99E2eUs,
                width);
}

TEST(FleetTest, EmptyScheduleAndNoCompletions)
{
    FleetConfig cfg;
    cfg.numNodes = 1;
    Fleet fleet(cfg, {fromUs(10.0)});
    auto res = fleet.run({});
    EXPECT_EQ(res.offered, 0u);
    EXPECT_DOUBLE_EQ(res.completionRatio(), 0.0);
    // No completed request: percentiles have no defined value.
    EXPECT_TRUE(std::isnan(res.p99E2eUs));
}

TEST(FleetTest, RunIsDeterministic)
{
    FleetConfig cfg;
    cfg.numNodes = 3;
    cfg.queueCapacity = 2;
    ArrivalConfig acfg;
    acfg.ratePerSec = 50000.0;
    acfg.numRequests = 1000;
    acfg.mixWeights = {0.8, 0.2};
    Fleet fleet(cfg, {fromUs(30.0), fromUs(200.0)});
    auto schedule = PoissonArrivals(acfg).generate();

    auto a = fleet.run(schedule);
    auto b = fleet.run(schedule);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].start, b.records[i].start) << i;
        EXPECT_EQ(a.records[i].completion, b.records[i].completion)
            << i;
        EXPECT_EQ(a.records[i].node, b.records[i].node) << i;
    }
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.p99E2eUs, b.p99E2eUs);
}

TEST(FleetDeathTest, RejectsMalformedInputs)
{
    FleetConfig cfg;
    EXPECT_EXIT(Fleet(cfg, {}), ::testing::ExitedWithCode(1),
                "at least one service time");
    EXPECT_EXIT(Fleet(cfg, {0}), ::testing::ExitedWithCode(1),
                "positive");
    cfg.numNodes = 0;
    EXPECT_EXIT(Fleet(cfg, {100}), ::testing::ExitedWithCode(1),
                "at least one node");

    cfg.numNodes = 1;
    Fleet fleet(cfg, {fromUs(10.0)});
    auto unsorted = scheduleAt({fromUs(20.0), fromUs(10.0)});
    EXPECT_EXIT(fleet.run(unsorted), ::testing::ExitedWithCode(1),
                "not sorted");
    auto bad_index = scheduleAt({0});
    bad_index[0].workloadIndex = 5;
    EXPECT_EXIT(fleet.run(bad_index), ::testing::ExitedWithCode(1),
                "outside the");
}

} // namespace
} // namespace serve
} // namespace dramless
