/**
 * @file
 * Serving-layer coverage of the DNN inference workload family: a
 * dnn-mix fleet whose service times are calibrated by live
 * cycle-level probe runs, driven through both dispatch policies with
 * metrics-vs-records consistency, plus the shards=1 vs shards=N
 * bit-identical co-simulation differential over an inference mix so
 * the PDES oracle also covers the new traces.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "serve/arrival.hh"
#include "serve/cosim.hh"
#include "serve/fleet.hh"
#include "sim/json.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "systems/factory.hh"
#include "workload/dnn.hh"

namespace dramless
{
namespace serve
{
namespace
{

/** Tiny inference mix so each kernel launch costs microseconds. */
std::vector<std::shared_ptr<const workload::WorkloadModel>>
inferenceMix()
{
    return {
        workload::dnnModelFor("mlp", 1)->scaled(0.02),
        workload::dnnModelFor("lenet", 1)->scaled(0.25),
    };
}

TEST(DnnServingTest, InferenceFleetMetricsMatchRecords)
{
    // Calibrate per-request service times with live probe runs of
    // the inference mix on the DRAM-less organization, then drive
    // the queueing fleet through both dispatch policies.
    setQuiet(true);
    systems::SystemOptions opts;
    std::vector<Tick> service;
    for (const auto &m : inferenceMix()) {
        auto sys = systems::SystemFactory::create(
            systems::SystemKind::dramLess, opts);
        systems::RunResult r = sys->run(*m);
        ASSERT_FALSE(r.failed());
        ASSERT_GT(r.execTime, 0u);
        service.push_back(r.execTime);
    }

    for (DispatchPolicy policy : {DispatchPolicy::roundRobin,
                                  DispatchPolicy::joinShortestQueue}) {
        SCOPED_TRACE(dispatchPolicyName(policy));
        FleetConfig cfg;
        cfg.numNodes = 2;
        cfg.queueCapacity = 4;
        cfg.policy = policy;
        Fleet fleet(cfg, service);

        ArrivalConfig acfg;
        // Offer ~80% of fleet capacity so queues form without
        // collapsing into pure rejection.
        double mean_service_sec =
            0.6 * toSec(service[0]) + 0.4 * toSec(service[1]);
        acfg.ratePerSec =
            0.8 * double(cfg.numNodes) / mean_service_sec;
        acfg.numRequests = 400;
        acfg.seed = 13;
        acfg.mixWeights = {0.6, 0.4};
        ServingResult res = fleet.run(PoissonArrivals(acfg).generate());

        // Counters must tie out against the per-request table, and
        // the rolled-up percentiles must equal the exact reference
        // computed from the same records.
        std::uint64_t completed = 0, rejected = 0;
        std::vector<double> queue_us, e2e_us;
        for (const auto &r : res.records) {
            EXPECT_LT(r.workloadIndex, 2u);
            if (r.rejected) {
                ++rejected;
                continue;
            }
            ++completed;
            queue_us.push_back(toUs(r.queueingTicks()));
            e2e_us.push_back(toUs(r.endToEndTicks()));
        }
        EXPECT_GT(completed, 0u);
        EXPECT_EQ(res.completed, completed);
        EXPECT_EQ(res.rejected, rejected);
        EXPECT_EQ(res.offered, completed + rejected);
        EXPECT_DOUBLE_EQ(res.p50QueueUs,
                         stats::percentileExact(queue_us, 0.50));
        EXPECT_DOUBLE_EQ(res.p99QueueUs,
                         stats::percentileExact(queue_us, 0.99));
        EXPECT_DOUBLE_EQ(res.p999E2eUs,
                         stats::percentileExact(e2e_us, 0.999));
        EXPECT_EQ(res.e2eLatencyUs.totalSamples(), completed);
    }
}

std::string
resultJson(const ServingResult &res)
{
    std::ostringstream os;
    json::JsonWriter w(os, /*pretty=*/false);
    // Full per-request table: "bit-identical" means every timestamp
    // of every request, not just the aggregates.
    res.writeJson(w, 0, /*with_records=*/true);
    return os.str();
}

TEST(DnnServingTest, CoSimShardCountsAreBitIdenticalOnInference)
{
    CoSimConfig cfg;
    cfg.fleet.numNodes = 3;
    cfg.fleet.queueCapacity = 4;
    cfg.fleet.policy = DispatchPolicy::joinShortestQueue;
    cfg.node.numPes = 4;
    cfg.node.seed = 7;

    ArrivalConfig ac;
    ac.numRequests = 24;
    ac.ratePerSec = 30000.0;
    ac.seed = 11;
    ac.mixWeights = {2.0, 1.0};
    auto schedule = PoissonArrivals(ac).generate();

    cfg.node.shards = 1;
    CoSimFleet serial(cfg, inferenceMix());
    ServingResult ref = serial.run(schedule);
    std::string ref_json = resultJson(ref);
    EXPECT_GT(ref.completed, 0u);

    for (unsigned shards : {3u, 0u}) {
        cfg.node.shards = shards;
        CoSimFleet fleet(cfg, inferenceMix());
        ServingResult got = fleet.run(schedule);
        EXPECT_EQ(resultJson(got), ref_json)
            << "shards=" << shards
            << " diverged from the serial kernel";
        EXPECT_EQ(fleet.kernelStats().messages,
                  serial.kernelStats().messages);
        EXPECT_EQ(fleet.kernelStats().windows,
                  serial.kernelStats().windows);
    }
}

} // anonymous namespace
} // namespace serve
} // namespace dramless
